#!/usr/bin/env bash
# Diff-aware clang-tidy driver for the GDELT mining engine.
#
# Usage:
#   tools/lint/run_clang_tidy.sh [options] [-- <extra clang-tidy args>]
#
# Options:
#   --build-dir DIR   build tree with compile_commands.json (default: build)
#   --base REF        lint only .cpp files changed since merge-base with REF
#                     (default mode; REF defaults to origin/main, falling
#                     back to main, falling back to HEAD~1)
#   --all             lint every src/ .cpp in the compilation database
#   --require         fail (exit 2) if clang-tidy is not installed; the
#                     default is a clearly-labelled skip so GCC-only dev
#                     boxes are not blocked. CI passes --require.
#
# Exit codes: 0 clean (or skipped), 1 findings, 2 environment error.
set -u -o pipefail

cd "$(git -C "$(dirname "$0")" rev-parse --show-toplevel 2>/dev/null || dirname "$0")" || exit 2

BUILD_DIR=build
BASE_REF=""
ALL=0
REQUIRE=0
EXTRA_ARGS=()
while [ $# -gt 0 ]; do
  case "$1" in
    --build-dir) BUILD_DIR=$2; shift 2 ;;
    --base) BASE_REF=$2; shift 2 ;;
    --all) ALL=1; shift ;;
    --require) REQUIRE=1; shift ;;
    --) shift; EXTRA_ARGS=("$@"); break ;;
    *) echo "unknown option: $1" >&2; exit 2 ;;
  esac
done

# Find a clang-tidy, preferring unversioned then newest versioned.
TIDY=""
for cand in clang-tidy clang-tidy-20 clang-tidy-19 clang-tidy-18 \
            clang-tidy-17 clang-tidy-16 clang-tidy-15 clang-tidy-14; do
  if command -v "$cand" > /dev/null 2>&1; then TIDY=$cand; break; fi
done
if [ -z "$TIDY" ]; then
  if [ "$REQUIRE" = 1 ]; then
    echo "run_clang_tidy: clang-tidy not found and --require given" >&2
    exit 2
  fi
  echo "run_clang_tidy: SKIPPED — clang-tidy not installed"
  exit 0
fi

DB="$BUILD_DIR/compile_commands.json"
if [ ! -f "$DB" ]; then
  echo "run_clang_tidy: $DB missing — configure with cmake first" >&2
  echo "  (CMAKE_EXPORT_COMPILE_COMMANDS is on by default in this repo)" >&2
  exit 2
fi

# Select the translation units to lint. Headers are covered transitively
# through HeaderFilterRegex in .clang-tidy.
FILES=()
if [ "$ALL" = 1 ]; then
  while IFS= read -r f; do FILES+=("$f"); done \
    < <(git ls-files 'src/**/*.cpp' 'src/*.cpp')
else
  if [ -z "$BASE_REF" ]; then
    for ref in origin/main main 'HEAD~1'; do
      if git rev-parse --verify --quiet "$ref" > /dev/null; then
        BASE_REF=$ref
        break
      fi
    done
  fi
  MERGE_BASE=$(git merge-base "$BASE_REF" HEAD 2>/dev/null || echo "$BASE_REF")
  while IFS= read -r f; do
    case "$f" in
      src/*.cpp | src/*/*.cpp) [ -f "$f" ] && FILES+=("$f") ;;
    esac
  done < <(git diff --name-only "$MERGE_BASE" HEAD; git diff --name-only)
fi

if [ ${#FILES[@]} -eq 0 ]; then
  echo "run_clang_tidy: no .cpp files to lint (clean diff)"
  exit 0
fi

echo "run_clang_tidy: $TIDY over ${#FILES[@]} file(s) (db: $DB)"
STATUS=0
# Batch to keep command lines short while sharing one process per chunk.
printf '%s\n' "${FILES[@]}" | sort -u | xargs -n 8 \
  "$TIDY" -p "$BUILD_DIR" --quiet --warnings-as-errors='*' \
  "${EXTRA_ARGS[@]}" || STATUS=1

if [ "$STATUS" = 0 ]; then
  echo "run_clang_tidy: clean"
else
  echo "run_clang_tidy: findings above must be fixed or suppressed in .clang-tidy" >&2
fi
exit $STATUS
