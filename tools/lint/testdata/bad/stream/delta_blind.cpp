// Fixture: a full delta-chunk walk that can never observe cancellation.
#include <cstddef>
#include <memory>
#include <vector>

struct Chunk {
  std::vector<unsigned> mention_source;
};

struct Snapshot {
  std::vector<std::shared_ptr<const Chunk>> chunks_;

  std::size_t BlindWalk() const {
    std::size_t acc = 0;
    for (const auto& chunk : chunks_) {
      acc += chunk->mention_source.size();
    }
    return acc;
  }
};
