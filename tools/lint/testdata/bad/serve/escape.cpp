// Fixture: an unexplained TSA escape hatch must be flagged.
#define GDELT_NO_THREAD_SAFETY_ANALYSIS

namespace fixture {

struct Widget {
  int value = 0;

  int Read() GDELT_NO_THREAD_SAFETY_ANALYSIS { return value; }
};

}  // namespace fixture
