// Fixture: every raw standard-library synchronization primitive here
// must be flagged by the raw-mutex rule.
#include <condition_variable>
#include <mutex>

namespace fixture {

std::mutex g_mu;                 // finding: raw std::mutex
std::condition_variable g_cv;    // finding: raw std::condition_variable

int Locked() {
  std::lock_guard<std::mutex> lock(g_mu);  // finding: raw std::lock_guard
  return 1;
}

}  // namespace fixture
