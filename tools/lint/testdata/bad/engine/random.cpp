// Fixture: unseeded randomness outside src/gen must be flagged.
#include <cstdlib>
#include <random>

namespace fixture {

int Roll() {
  std::random_device entropy;  // finding: raw entropy source
  (void)entropy;
  return rand() % 6;  // finding: rand()
}

}  // namespace fixture
