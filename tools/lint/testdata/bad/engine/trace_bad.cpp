// Fixture: span names that break the area.verb convention must be
// flagged.
#define TRACE_SPAN(name)

namespace fixture {

void Run() {
  TRACE_SPAN("Engine.TopSources");  // finding: uppercase
  TRACE_SPAN("standalone");         // finding: no dot
}

}  // namespace fixture
