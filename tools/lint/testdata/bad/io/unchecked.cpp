// Fixture: copies and resizes sized by parsed input with no visible
// bounds check must be flagged under io/.
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace fixture {

struct Reader {
  std::uint32_t ReadU32();
  const char* cursor;
};

std::vector<char> Load(Reader& in) {
  std::vector<char> out;
  const std::uint32_t len = in.ReadU32();
  out.resize(len);                        // finding: unchecked resize
  std::memcpy(out.data(), in.cursor, len);  // finding: unchecked memcpy
  return out;
}

std::string LoadName(Reader& in) {
  std::string name;
  const std::uint32_t count = in.ReadU32();
  if (in.cursor == nullptr) return name;  // guards something else entirely
  name.resize(count);                     // finding: count is never checked
  return name;
}

}  // namespace fixture
