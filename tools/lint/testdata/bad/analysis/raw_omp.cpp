// Fixture: untagged OpenMP team in a migrated kernel directory.
#include <cstddef>

void Kernel(std::size_t n) {
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < n; ++i) {
    (void)i;
  }
}

void Kernel2(std::size_t n) {
  // A comment that is not the allow tag does not excuse the pragma.
#pragma omp parallel
  { (void)n; }
}
