// Fixture: full row-range scans that can never observe cancellation.
#include <cstddef>

struct Db {
  std::size_t num_events() const;
  std::size_t num_mentions() const;
};

std::size_t ScanEvents(const Db& db) {
  std::size_t acc = 0;
  for (std::size_t e = 0; e < db.num_events(); ++e) {
    acc += e;
  }
  return acc;
}

std::size_t ScanMentions(const Db& db) {
  std::size_t acc = 0;
  // A comment that is not the allow tag does not excuse the loop.
  for (std::size_t m = 0; m < db.num_mentions(); ++m) {
    acc += m;
  }
  return acc;
}
