// Fixture: untrusted-length copies done right — a visible bounds check,
// a sizeof()-derived length, and an audited allow tag. No findings.
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace fixture {

struct Reader {
  std::uint32_t ReadU32();
  std::size_t remaining() const;
  const char* cursor;
};

bool Load(Reader& in, std::vector<char>& out) {
  const std::uint32_t len = in.ReadU32();
  if (len > in.remaining()) return false;
  out.resize(len);
  std::memcpy(out.data(), in.cursor, len);
  return true;
}

void FixedHeader(Reader& in, std::uint64_t& header) {
  std::memcpy(&header, in.cursor, sizeof(header));
}

bool Capped(Reader& in, std::vector<char>& out) {
  const std::uint32_t len = in.ReadU32();
  if (len > 4096) return false;  // the check names the size it bounds
  out.resize(len);
  return true;
}

void TrustedScratch(std::vector<std::uint64_t>& scratch,
                    std::size_t num_keys) {
  // gdelt-lint: allow(unchecked-copy) — num_keys is an in-memory
  // dictionary size, not parsed input.
  scratch.resize(num_keys + 1);
}

}  // namespace fixture
