// Fixture: the blessed path — sync primitives, clean span names, and
// violations that live only inside comments. Must produce no findings.
#define TRACE_SPAN(name)

namespace sync {
struct Mutex {};
struct MutexLock {
  explicit MutexLock(Mutex&) {}
};
}  // namespace sync

namespace fixture {

sync::Mutex g_mu;

// A std::mutex mentioned in prose (like this one) is not a violation.
/* Nor is commented-out code:
   std::lock_guard<std::mutex> lock(g_mu);
   std::random_device entropy; rand();
*/

int Locked() {
  sync::MutexLock lock(g_mu);
  TRACE_SPAN("serve.handle_request");
  TRACE_SPAN("engine.top_sources");
  return 1;  // std::condition_variable in a trailing comment is fine too
}

}  // namespace fixture
