// Fixture: row-range loops that satisfy cancel-blind-loop — by polling
// the token, by carrying the allow tag, or by iterating a morsel's
// sub-range instead of the full table.
#include <cstddef>

namespace util {
struct CancelToken;
bool Cancelled(const CancelToken* token);
}  // namespace util

struct Db {
  std::size_t num_events() const;
};

std::size_t PolledScan(const Db& db, const util::CancelToken* cancel) {
  std::size_t acc = 0;
  for (std::size_t e = 0; e < db.num_events(); ++e) {
    if ((e & 255) == 0 && util::Cancelled(cancel)) break;
    acc += e;
  }
  return acc;
}

std::size_t PolledScanMultilineHeader(const Db& db,
                                      const util::CancelToken* cancel) {
  std::size_t acc = 0;
  for (std::size_t e = 0;
       e < db.num_events();
       ++e) {
    if ((e & 255) == 0 && util::Cancelled(cancel)) break;
    acc += e;
  }
  return acc;
}

std::size_t TaggedBaseline(const Db& db) {
  std::size_t acc = 0;
  // Ablation holdout: deliberately runs the scan to completion.
  // gdelt-lint: allow(cancel-blind-loop)
  for (std::size_t e = 0; e < db.num_events(); ++e) {
    acc += e;
  }
  return acc;
}

std::size_t MorselBody(std::size_t events_begin, std::size_t end) {
  // The pool polls the token between morsels; a loop over the morsel's
  // own rows (not `events_end`, not the full table) is outside the rule.
  std::size_t acc = 0;
  for (std::size_t e = events_begin; e < end; ++e) {
    acc += e;
  }
  return acc;
}
