// Fixture: ablation baselines keep their private OpenMP teams under the
// allow tag; non-parallel omp pragmas and non-kernel directories are
// outside the rule.
#include <cstddef>

void Baseline(std::size_t n) {
  // Contended-atomics baseline of the representation ablation.
  // gdelt-lint: allow(raw-omp)
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < n; ++i) {
    (void)i;
  }
}

void AtomicOnly(std::size_t* slot) {
  // `omp atomic` inside a morsel body is fine; only team creation is
  // restricted.
#pragma omp atomic
  ++*slot;
}
