// Fixture: delta-chunk walks that satisfy cancel-blind-loop — by
// polling the token each chunk, or by carrying the allow tag.
#include <cstddef>
#include <memory>
#include <vector>

namespace util {
struct CancelToken;
bool Cancelled(const CancelToken* token);
}  // namespace util

struct Chunk {
  std::vector<unsigned> mention_source;
};

struct Snapshot {
  std::vector<std::shared_ptr<const Chunk>> chunks_;

  std::size_t PolledWalk(const util::CancelToken* cancel) const {
    std::size_t acc = 0;
    for (const auto& chunk : chunks_) {
      if (util::Cancelled(cancel)) break;
      acc += chunk->mention_source.size();
    }
    return acc;
  }

  std::size_t TaggedWalk() const {
    std::size_t acc = 0;
    // Startup rebuild: deliberately runs to completion.
    // gdelt-lint: allow(cancel-blind-loop)
    for (const auto& chunk : chunks_) {
      acc += chunk->mention_source.size();
    }
    return acc;
  }
};
