// Fixture: src/gen is the one place allowed to touch raw entropy (it
// seeds the deterministic generators). No findings.
#include <cstdlib>
#include <random>

namespace fixture {

std::uint64_t FreshSeed() {
  std::random_device entropy;
  return (static_cast<std::uint64_t>(entropy()) << 32) ^ rand();
}

}  // namespace fixture
