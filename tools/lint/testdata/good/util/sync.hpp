// Fixture: stands in for src/util/sync.hpp — the one file allowed to
// hold raw standard-library primitives and the escape-hatch macro.
#pragma once

#include <condition_variable>
#include <mutex>

#define GDELT_NO_THREAD_SAFETY_ANALYSIS

namespace sync {

class Mutex {
 private:
  std::mutex mu_;
  std::condition_variable_any cv_;
};

}  // namespace sync
