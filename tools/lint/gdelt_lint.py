#!/usr/bin/env python3
"""Project-rule linter for the GDELT mining engine.

Mechanically enforces conventions that the compiler cannot (or that only
Clang enforces, leaving GCC-only boxes unprotected):

  raw-mutex       Raw std::mutex / std::lock_guard / std::unique_lock /
                  std::scoped_lock / std::condition_variable are only
                  allowed inside src/util/sync.hpp. Everything else uses
                  sync::Mutex so Clang Thread-Safety Analysis sees every
                  lock site.
  tsa-escape      GDELT_NO_THREAD_SAFETY_ANALYSIS outside sync.hpp must
                  carry an explanatory comment within the three lines
                  above it; a silent escape hatch defeats the analysis.
  unchecked-copy  In src/io and src/columnar, memcpy/resize whose size
                  comes from parsed (untrusted) data must be preceded by
                  a visible bounds check *on that size*: a nearby
                  remaining()/std::min/CheckedMul line, or an if/assert
                  mentioning an identifier from the call's arguments.
                  A `sizeof(` in the argument list (length derived from
                  a type) or an explicit
                  `// gdelt-lint: allow(unchecked-copy)` also satisfies
                  it; an unrelated `if` nearby does not.
  trace-name      TRACE_SPAN string literals follow the `area.verb`
                  convention (lowercase dotted path), keeping the trace
                  aggregation table and the Prometheus stage metrics
                  consistent.
  raw-random      rand() and std::random_device are banned outside
                  src/gen: kernels and tests must use the seeded
                  Xoshiro256 helpers so every run is replayable.
  raw-omp         `#pragma omp parallel` in src/analysis and src/engine
                  is banned: migrated kernels run on the shared morsel
                  pool (parallel/morsel.hpp) so one saturating query
                  cannot monopolize a private thread team. Ablation
                  baselines that must keep a private OpenMP team carry
                  `// gdelt-lint: allow(raw-omp)` with a reason.
  cancel-blind-loop  (fallback only — run with --no-ast)
                  In src/analysis, src/engine and src/stream, a `for`
                  loop bounded by the full row range (num_events()/
                  num_mentions()/events_end) or walking every delta
                  chunk (chunks_/chunks()) must consult the cooperative
                  cancel token — a util::Cancelled(...) poll on the loop
                  line or within the first few body lines. Such loops are exactly the
                  scans that make a query outlive its deadline; a loop
                  that cannot observe cancellation holds a worker hostage
                  until the full scan completes. Ablation baselines and
                  setup passes that deliberately run to completion carry
                  `// gdelt-lint: allow(cancel-blind-loop)` with a reason.

                  RETIRED from the default run: the AST-accurate
                  cancel-poll rule in tools/analyze/gdelt_astcheck.py
                  analyzes the real brace-matched loop body instead of a
                  6-line window (no false findings on deep polls, no
                  false confidence from polls in comments). The regex
                  version stays available behind --no-ast for quick
                  checks in environments where running the analyzer is
                  inconvenient; both honor the same allow tag.

Usage:
  gdelt_lint.py [--root DIR] [--no-ast] [paths...]

With no paths, lints `src/` under --root (default: the repository root
two levels above this script). Paths may be files or directories.
Exit status: 0 clean, 1 findings, 2 usage/environment error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from typing import Iterator, List, NamedTuple

EXTENSIONS = (".hpp", ".h", ".cpp", ".cc")

# How many lines above a copy/resize we search for a bounds check.
CHECK_WINDOW = 12

ALLOW_TAG = "gdelt-lint: allow({rule})"

RAW_MUTEX_RE = re.compile(
    r"\bstd::(mutex|recursive_mutex|shared_mutex|timed_mutex|lock_guard|"
    r"unique_lock|scoped_lock|shared_lock|condition_variable(_any)?)\b"
)
TSA_ESCAPE_RE = re.compile(r"\bGDELT_NO_THREAD_SAFETY_ANALYSIS\b")
MEMCPY_RE = re.compile(r"\b(?:std::)?memcpy\s*\(")
RESIZE_RE = re.compile(r"\.\s*(resize|reserve)\s*\(")
TRACE_SPAN_RE = re.compile(r"\bTRACE_SPAN\s*\(\s*\"([^\"]*)\"")
TRACE_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")
RAW_RANDOM_RE = re.compile(r"(?<![\w:])rand\s*\(\s*\)|\bstd::random_device\b")
RAW_OMP_RE = re.compile(r"#\s*pragma\s+omp\s+parallel\b")
# A row-range loop: a `for` whose header names the full event/mention
# extent, or walks the streaming store's full chunk list (every delta
# row accumulated since startup). Morsel bodies iterate IndexRange
# begin/end instead, so this only matches whole-table scans.
ROW_LOOP_RE = re.compile(
    r"\bfor\s*\(.*\b(?:num_events\s*\(\s*\)|num_mentions\s*\(\s*\)|"
    r"events_end\b|chunks_\b|chunks\s*\(\s*\))")
CANCEL_POLL_RE = re.compile(r"\bCancelled\s*\(")
# How many lines below a row-range loop header we search for the poll
# (the idiom puts it on the first body line; multi-line headers push it
# a couple of lines further down).
CANCEL_WINDOW = 6
# A nearby line is a bounds check if it contains one of these tokens
# (which only appear in limit arithmetic in this codebase), or if it is
# an if/assert that mentions an identifier from the copy's own argument
# list. A guard over unrelated state does not count: `if (flag) ...`
# above `out.resize(len)` says nothing about len.
STRONG_BOUNDS_TOKENS = ("remaining()", "std::min(", "CheckedMul")
GUARD_RE = re.compile(r"(?:^|[^\w])(?:if|assert)\s*\(")
IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
# Identifiers too generic to tie a guard to a specific copy.
GENERIC_IDENTS = frozenset({
    "std", "memcpy", "data", "size", "sizeof", "static_cast",
    "reinterpret_cast", "size_t", "uint8_t", "uint16_t", "uint32_t",
    "uint64_t", "int64_t", "begin", "end", "c_str", "get",
})


class Finding(NamedTuple):
    path: str
    line: int
    rule: str
    message: str


def strip_comment(line: str) -> str:
    """Drops a trailing // comment (naive: ignores // inside strings,
    which the codebase's style never produces on rule-relevant lines)."""
    idx = line.find("//")
    return line if idx < 0 else line[:idx]


def call_args(first: str, lines: List[str], index: int) -> str:
    """Argument-list text of a call whose opening paren was just consumed;
    `first` is the rest of the match line, and the scan continues over the
    next few lines until the parens balance (multi-line calls)."""
    chunks = [first] + [strip_comment(lines[j])
                        for j in range(index + 1, min(index + 4, len(lines)))]
    depth = 1
    buf: List[str] = []
    for text in chunks:
        for ch in text:
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
                if depth == 0:
                    return "".join(buf)
            buf.append(ch)
        buf.append(" ")
    return "".join(buf)


def is_bounds_check(line: str, idents: frozenset) -> bool:
    """True if `line` plausibly bounds one of the copy's identifiers."""
    if any(tok in line for tok in STRONG_BOUNDS_TOKENS):
        return True
    if not GUARD_RE.search(line):
        return False
    return any(re.search(r"\b" + re.escape(t) + r"\b", line)
               for t in idents)


def has_allow(lines: List[str], index: int, rule: str) -> bool:
    """True if the allow tag appears on the line itself or in the few
    lines above it (room for a multi-line justification comment)."""
    tag = ALLOW_TAG.format(rule=rule)
    lo = max(0, index - 4)
    return any(tag in lines[i] for i in range(lo, index + 1))


def norm(path: str) -> str:
    return path.replace(os.sep, "/")


def is_sync_header(path: str) -> bool:
    return norm(path).endswith("util/sync.hpp")


def in_untrusted_scope(path: str) -> bool:
    p = norm(path)
    return "/io/" in p or p.startswith("io/") or "/columnar/" in p or \
        p.startswith("columnar/")


def in_gen_scope(path: str) -> bool:
    p = norm(path)
    return "/gen/" in p or p.startswith("gen/")


def in_morsel_scope(path: str) -> bool:
    """Directories whose kernels were migrated onto the morsel pool."""
    p = norm(path)
    return "/analysis/" in p or p.startswith("analysis/") or \
        "/engine/" in p or p.startswith("engine/")


def in_cancel_scope(path: str) -> bool:
    """Directories whose full-table scans must observe cancellation:
    the morsel-pool kernels plus the streaming delta scans."""
    p = norm(path)
    return in_morsel_scope(path) or "/stream/" in p or \
        p.startswith("stream/")


def check_file(path: str, rel: str,
               cancel_fallback: bool = False) -> Iterator[Finding]:
    try:
        with open(path, encoding="utf-8") as fh:
            lines = fh.read().splitlines()
    except OSError as err:
        yield Finding(rel, 0, "io-error", str(err))
        return

    in_block_comment = False
    for i, raw in enumerate(lines):
        line = raw
        # Track /* ... */ blocks so commented-out code cannot trip rules.
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                continue
            line = line[end + 2:]
            in_block_comment = False
        while True:
            start = line.find("/*")
            if start < 0:
                break
            end = line.find("*/", start + 2)
            if end < 0:
                line = line[:start]
                in_block_comment = True
                break
            line = line[:start] + line[end + 2:]
        code = strip_comment(line)
        lineno = i + 1

        # --- raw-mutex ---------------------------------------------------
        if not is_sync_header(rel):
            m = RAW_MUTEX_RE.search(code)
            if m and not has_allow(lines, i, "raw-mutex"):
                yield Finding(
                    rel, lineno, "raw-mutex",
                    f"raw {m.group(0)} outside util/sync.hpp; use "
                    "sync::Mutex / sync::MutexLock / sync::CondVar so "
                    "thread-safety analysis sees the lock")

        # --- tsa-escape --------------------------------------------------
        if not is_sync_header(rel) and TSA_ESCAPE_RE.search(code):
            window = lines[max(0, i - 3):i]
            if not any("//" in w for w in window):
                yield Finding(
                    rel, lineno, "tsa-escape",
                    "GDELT_NO_THREAD_SAFETY_ANALYSIS needs a comment "
                    "directly above explaining why the analysis must be "
                    "suppressed")

        # --- unchecked-copy ----------------------------------------------
        if in_untrusted_scope(rel):
            for pattern in (MEMCPY_RE, RESIZE_RE):
                m = pattern.search(code)
                if not m:
                    continue
                args = call_args(code[m.end():], lines, i)
                if "sizeof(" in args:
                    continue  # length derived from a type, not from input
                idents = frozenset(IDENT_RE.findall(args)) - GENERIC_IDENTS
                if not idents:
                    continue  # constant size, nothing to bound
                window = lines[max(0, i - CHECK_WINDOW):i + 1]
                if any(is_bounds_check(w, idents) for w in window):
                    continue
                if has_allow(lines, i, "unchecked-copy"):
                    continue
                yield Finding(
                    rel, lineno, "unchecked-copy",
                    "memcpy/resize in untrusted-input code without a "
                    f"bounds check on its size in the preceding "
                    f"{CHECK_WINDOW} lines; check the size against "
                    "remaining()/a parsed limit or annotate "
                    "`// gdelt-lint: allow(unchecked-copy)` with a reason")

        # --- trace-name --------------------------------------------------
        for m in TRACE_SPAN_RE.finditer(code):
            name = m.group(1)
            if not TRACE_NAME_RE.match(name):
                yield Finding(
                    rel, lineno, "trace-name",
                    f'TRACE_SPAN name "{name}" does not match the '
                    "area.verb convention (lowercase dotted path, e.g. "
                    '"convert.parse_events")')

        # --- raw-omp -----------------------------------------------------
        if in_morsel_scope(rel):
            m = RAW_OMP_RE.search(code)
            if m and not has_allow(lines, i, "raw-omp"):
                yield Finding(
                    rel, lineno, "raw-omp",
                    "raw `#pragma omp parallel` in a migrated kernel "
                    "directory; use parallel::PoolParallelFor (shared "
                    "morsel pool) or annotate an ablation baseline with "
                    "`// gdelt-lint: allow(raw-omp)` and a reason")

        # --- cancel-blind-loop (fallback; gdelt_astcheck owns this) ------
        if cancel_fallback and in_cancel_scope(rel) and \
                ROW_LOOP_RE.search(code):
            window = lines[i:min(len(lines), i + 1 + CANCEL_WINDOW)]
            if not any(CANCEL_POLL_RE.search(strip_comment(w))
                       for w in window) \
                    and not has_allow(lines, i, "cancel-blind-loop"):
                yield Finding(
                    rel, lineno, "cancel-blind-loop",
                    "full row-range loop never consults the cancel "
                    "token; poll util::Cancelled(cancel) every few "
                    "hundred rows (see country.cpp) or annotate "
                    "`// gdelt-lint: allow(cancel-blind-loop)` with a "
                    "reason")

        # --- raw-random --------------------------------------------------
        if not in_gen_scope(rel):
            m = RAW_RANDOM_RE.search(code)
            if m and not has_allow(lines, i, "raw-random"):
                yield Finding(
                    rel, lineno, "raw-random",
                    f"{m.group(0).strip()} is not replayable; use the "
                    "seeded Xoshiro256 from util/rng.hpp (raw entropy is "
                    "allowed only under src/gen)")


def collect_files(root: str, paths: List[str]) -> List[str]:
    if not paths:
        src = os.path.join(root, "src")
        if not os.path.isdir(src):
            print(f"gdelt_lint: no src/ under {root}", file=sys.stderr)
            sys.exit(2)
        paths = [src]
    files: List[str] = []
    for p in paths:
        full = p if os.path.isabs(p) else os.path.join(root, p)
        if os.path.isfile(full):
            files.append(full)
        elif os.path.isdir(full):
            for dirpath, _dirnames, filenames in os.walk(full):
                for name in sorted(filenames):
                    if name.endswith(EXTENSIONS):
                        files.append(os.path.join(dirpath, name))
        else:
            print(f"gdelt_lint: no such path: {p}", file=sys.stderr)
            sys.exit(2)
    return files


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="gdelt_lint.py",
        description="project-rule linter (see module docstring)")
    default_root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    parser.add_argument("--root", default=default_root,
                        help="repository root (default: two levels above "
                             "this script)")
    parser.add_argument("--no-ast", action="store_true",
                        help="also run the retired regex cancel-blind-loop "
                             "heuristic (fallback for environments not "
                             "running tools/analyze/gdelt_astcheck.py, "
                             "whose AST cancel-poll rule supersedes it)")
    parser.add_argument("paths", nargs="*",
                        help="files or directories (default: ROOT/src)")
    args = parser.parse_args(argv)

    root = os.path.abspath(args.root)
    findings: List[Finding] = []
    for path in collect_files(root, args.paths):
        rel = os.path.relpath(path, root)
        findings.extend(check_file(path, rel, cancel_fallback=args.no_ast))

    for f in sorted(findings):
        print(f"{f.path}:{f.line}: [{f.rule}] {f.message}")
    if findings:
        print(f"gdelt_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("gdelt_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
