#!/usr/bin/env python3
"""Self-test for gdelt_lint.py against the seeded fixtures in testdata/.

Run directly (python3 tools/lint/gdelt_lint_test.py) or via ctest as
`gdelt_lint_selftest`. Guards the linter itself: every rule must fire on
its bad fixture and stay silent on the good ones, so a refactor of the
linter cannot quietly stop enforcing a rule.
"""

import os
import subprocess
import sys
import unittest

LINT_DIR = os.path.dirname(os.path.abspath(__file__))
LINTER = os.path.join(LINT_DIR, "gdelt_lint.py")
TESTDATA = os.path.join(LINT_DIR, "testdata")


def run_lint(*paths):
    """Runs the linter with TESTDATA as root; returns (exit, stdout)."""
    proc = subprocess.run(
        [sys.executable, LINTER, "--root", TESTDATA, *paths],
        capture_output=True, text=True, check=False)
    return proc.returncode, proc.stdout


def findings_by_rule(output):
    counts = {}
    for line in output.splitlines():
        if "] " not in line or not line.startswith(("bad", "good")):
            continue
        rule = line.split("[", 1)[1].split("]", 1)[0]
        counts[rule] = counts.get(rule, 0) + 1
    return counts


class GdeltLintTest(unittest.TestCase):
    def test_bad_fixtures_fire_every_rule(self):
        code, out = run_lint("bad")
        self.assertEqual(code, 1, out)
        counts = findings_by_rule(out)
        self.assertEqual(counts.get("raw-mutex"), 3, out)
        self.assertEqual(counts.get("tsa-escape"), 1, out)
        self.assertEqual(counts.get("unchecked-copy"), 3, out)
        self.assertEqual(counts.get("trace-name"), 2, out)
        self.assertEqual(counts.get("raw-random"), 2, out)
        self.assertEqual(counts.get("raw-omp"), 2, out)
        # Retired from the default run: the AST cancel-poll rule in
        # tools/analyze/gdelt_astcheck.py owns this class now.
        self.assertNotIn("cancel-blind-loop", counts, out)

    def test_cancel_fallback_still_works_behind_no_ast(self):
        code, out = run_lint("--no-ast", "bad")
        self.assertEqual(code, 1, out)
        counts = findings_by_rule(out)
        self.assertEqual(counts.get("cancel-blind-loop"), 3, out)

    def test_good_fixtures_are_clean(self):
        code, out = run_lint("good")
        self.assertEqual(code, 0, out)
        self.assertEqual(findings_by_rule(out), {}, out)

    def test_good_fixtures_are_clean_with_fallback(self):
        code, out = run_lint("--no-ast", "good")
        self.assertEqual(code, 0, out)
        self.assertEqual(findings_by_rule(out), {}, out)

    def test_finding_lines_are_precise(self):
        _code, out = run_lint("bad/serve/raw_mutex.cpp")
        lines = sorted(int(l.split(":")[1]) for l in out.splitlines()
                       if "[raw-mutex]" in l)
        self.assertEqual(lines, [8, 9, 12], out)

    def test_missing_path_is_a_usage_error(self):
        code, _out = run_lint("no/such/dir")
        self.assertEqual(code, 2)

    def test_real_tree_is_clean(self):
        # The repo's own sources must satisfy the rules the repo ships.
        repo_root = os.path.dirname(os.path.dirname(LINT_DIR))
        proc = subprocess.run(
            [sys.executable, LINTER, "--root", repo_root],
            capture_output=True, text=True, check=False)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)


if __name__ == "__main__":
    unittest.main()
