#!/usr/bin/env python3
"""AST-level semantic analyzer for the GDELT mining engine.

Where tools/lint/gdelt_lint.py enforces *syntactic* conventions with
regexes and line windows, this analyzer builds a semantic model of every
translation unit — functions with real body extents, lock scopes, loop
bodies, return expressions, guard dominance — and enforces five
project-specific rules that line-window heuristics cannot express:

  lock-order           Builds the inter-mutex acquisition graph from
                       `sync::MutexLock` scopes (including one level of
                       interprocedural acquisition through resolvable
                       calls) and fails on any cycle, printing the full
                       witness path. A cycle is a potential deadlock the
                       instant two threads run the two paths concurrently.
  view-escape          Functions returning `std::string_view`/`std::span`
                       must not derive the view from a local, a
                       temporary, or a reallocatable container member
                       (`std::vector<std::string>` elements, `.data()` of
                       a member `std::string`). This is the exact PR 5
                       `DeltaStore::source_domain` use-after-free class:
                       an SSO-length string dies with its owner even when
                       the heap block would have survived. Members of
                       `std::deque<std::string>` are address-stable under
                       growth and are deliberately not flagged.
  snapshot-discipline  Two or more `DeltaStore` convenience accessors
                       (`delta_events()`, `Generation()`, ...) in one
                       function body read *different* snapshots — each
                       call acquires its own — so the values can straddle
                       an ingest tick. Callers needing two facts must
                       `Acquire()` once and read both from the snapshot.
  cancel-poll          Row-range loops (full event/mention extent, delta
                       chunk walks) in src/analysis, src/engine and
                       src/stream must consult `util::Cancelled` somewhere
                       in the real, brace-matched loop body. Replaces the
                       6-line regex window of gdelt_lint's
                       `cancel-blind-loop` (kept there behind --no-ast as
                       a GCC-only fallback); the legacy
                       `// gdelt-lint: allow(cancel-blind-loop)` tag is
                       honored as a suppression for this rule.
  bounded-alloc        In src/io, src/columnar and src/serve/partial.cpp,
                       `resize`/`reserve`/`assign` whose size argument
                       carries an untrusted identifier must be *dominated*
                       by a guard naming that identifier: the allocation
                       sits inside an `if` on it, or follows an early-exit
                       guard on it in an enclosing scope, or the
                       identifier was initialized from a clamping
                       expression (`std::min`, `.size()`, `remaining()`,
                       `CheckedMul`). Supersedes the token-window
                       heuristic of gdelt_lint's `unchecked-copy` for
                       allocation sites.

Suppressions: `// gdelt-astcheck: allow(rule) — reason` on the finding
line or up to four lines above it. The justification text is mandatory;
a tag without one still suppresses the base finding but is itself
reported under the `bare-allow` rule, so silent escapes cannot
accumulate.

Frontends: with `--frontend clang` (or `auto` when clang++ and a
compilation database are available) each file's function inventory —
boundaries, qualified names, return types — is extracted from
`clang++ -Xclang -ast-dump=json -fsyntax-only` run with the exact flags
recorded in `compile_commands.json`; statement-level facts are then
collected over the clang-reported extents. With `--frontend builtin`
(any box, no clang needed) the same model is built by the analyzer's own
comment-stripping, brace-matching parser. Either way the distilled
per-file facts are cached keyed by content hash, so incremental runs
re-analyze only what changed.

Usage:
  gdelt_astcheck.py [--root DIR] [--build-dir DIR] [--frontend F]
                    [--cache-dir DIR] [--no-cache] [--json PATH]
                    [--rule RULE ...] [paths...]

Exit status: 0 clean, 1 findings, 2 usage/environment error.
"""

from __future__ import annotations

import argparse
import bisect
import hashlib
import json
import os
import re
import shlex
import subprocess
import sys
from typing import Dict, Iterable, List, NamedTuple, Optional, Set, Tuple

ANALYZER_VERSION = 3  # bump to invalidate cached facts after rule changes

EXTENSIONS = (".hpp", ".h", ".cpp", ".cc")

ALLOW_TAG_RE = re.compile(r"gdelt-astcheck:\s*allow\(([\w-]+)\)\s*(.*)")
LEGACY_CANCEL_TAG = "gdelt-lint: allow(cancel-blind-loop)"
# Lines above a finding (inclusive of the finding line) searched for a tag.
ALLOW_WINDOW = 4
# A justification must say something: at least this many non-space chars
# after the tag (separators like "—" or ":" are stripped first).
MIN_JUSTIFICATION = 8

RULES = (
    "lock-order",
    "view-escape",
    "snapshot-discipline",
    "cancel-poll",
    "bounded-alloc",
    "bare-allow",
)

KEYWORDS = frozenset({
    "if", "for", "while", "switch", "return", "catch", "sizeof", "do",
    "else", "case", "new", "delete", "throw", "alignof", "decltype",
    "static_cast", "const_cast", "reinterpret_cast", "dynamic_cast",
    "template", "typename", "operator", "noexcept", "static_assert",
})

GENERIC_IDENTS = frozenset({
    "std", "size", "sizeof", "data", "begin", "end", "first", "second",
    "size_t", "uint8_t", "uint16_t", "uint32_t", "uint64_t", "int8_t",
    "int16_t", "int32_t", "int64_t", "ptrdiff_t", "true", "false",
    "nullptr", "static_cast", "reinterpret_cast", "const_cast",
})

# Types whose instances own string storage that dies (or moves) with them.
OWNING_TYPE_RE = re.compile(
    r"\bstd::(string|ostringstream|stringstream)\b(?!_view)")
VECTOR_OF_STRING_RE = re.compile(
    r"\bstd::vector\s*<\s*(?:const\s+)?std::string\s*>")
DEQUE_OF_STRING_RE = re.compile(
    r"\bstd::deque\s*<\s*(?:const\s+)?std::string\s*>")
VIEW_RET_RE = re.compile(r"\bstd::(string_view|span)\b|(?<![\w:])span\s*<")
# Expressions that materialize an owning temporary inside a return.
TEMP_OWNER_RE = re.compile(
    r"\bstd::string\s*\(|\bstd::to_string\s*\(|\bStrFormat\s*\(|"
    r"\bToLowerAscii\s*\(|\.str\s*\(\s*\)")

LOCK_RE = re.compile(r"\bsync::MutexLock\s+(\w+)\s*\(")
CANCEL_POLL_RE = re.compile(r"\bCancelled\s*\(")
ROW_LOOP_RE = re.compile(
    r"\b(?:num_events\s*\(\s*\)|num_mentions\s*\(\s*\)|events_end\b|"
    r"chunks_\b|chunks\s*\(\s*\))")
ALLOC_RE = re.compile(r"[\w\)\]]\s*(?:\.|->)\s*(resize|reserve|assign)\s*\(")
GUARD_RE = re.compile(r"(?<![\w.])(if|assert|GDELT_CHECK)\s*\(")
EARLY_EXIT_RE = re.compile(
    r"\breturn\b|\bthrow\b|\bcontinue\b|\bbreak\b|\babort\s*\(|"
    r"GDELT_RETURN_IF_ERROR|GDELT_ASSIGN_OR_RETURN")
# Size expressions containing any of these are bounded by construction.
CLAMP_TOKEN_RE = re.compile(
    r"\.size\s*\(\s*\)|\.length\s*\(\s*\)|\bstd::min\b|\bstd::clamp\b|"
    r"\bCheckedMul\b|\bremaining\s*\(\s*\)|\bsizeof\b")
IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")

DELTA_ACCESSORS = frozenset({
    "delta_events", "delta_mentions", "malformed_rows", "Generation",
    "num_sources", "source_domain", "CombinedArticlesPerSource",
    "CombinedMentionCount", "CombinedTopSources",
    "CombinedArticlesAboutCountry",
})

CALL_RE = re.compile(r"([\w\]\)]*)\s*(\.|->|::)?\s*\b(\w+)\s*\(")


def _split_args(args: str) -> List[str]:
    """Splits an argument list on top-level commas."""
    out = []
    depth = 0
    start = 0
    for i, ch in enumerate(args):
        if ch in "(<[{":
            depth += 1
        elif ch in ")>]}":
            depth -= 1
        elif ch == "," and depth == 0:
            out.append(args[start:i])
            start = i + 1
    out.append(args[start:])
    return [a.strip() for a in out if a.strip()]


class Finding(NamedTuple):
    path: str
    line: int
    rule: str
    message: str


# --------------------------------------------------------------------------
# Source model: comment/string stripping, line table, brace block tree.
# --------------------------------------------------------------------------


class Source:
    """One file's code with comments/strings blanked (same offsets as the
    original), its comment text per line, and a brace block tree."""

    def __init__(self, path: str, text: str):
        self.path = path
        self.raw = text
        self.code, self.comments = _strip(text)
        self.line_starts = [0]
        for i, ch in enumerate(text):
            if ch == "\n":
                self.line_starts.append(i + 1)
        self.blocks = _match_blocks(self.code)

    def line_of(self, offset: int) -> int:
        return bisect.bisect_right(self.line_starts, offset)

    def innermost_block(self, offset: int) -> Optional[Tuple[int, int]]:
        best = None
        for b, e in self.blocks:
            if b < offset < e and (best is None or b > best[0]):
                best = (b, e)
        return best

    def enclosing_blocks(self, offset: int) -> List[Tuple[int, int]]:
        out = [(b, e) for b, e in self.blocks if b < offset < e]
        out.sort()
        return out


def _strip(text: str) -> Tuple[str, Dict[int, str]]:
    """Blanks comments, string and char literals (newlines preserved) and
    returns (code, {line: comment text})."""
    out = list(text)
    comments: Dict[int, str] = {}
    i, n = 0, len(text)
    line = 1

    def blank(a: int, b: int) -> None:
        for k in range(a, b):
            if out[k] != "\n":
                out[k] = " "

    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            comments[line] = comments.get(line, "") + text[i:j]
            blank(i, j)
            i = j
            continue
        if ch == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            seg_line = line
            for part in text[i:j].split("\n"):
                comments[seg_line] = comments.get(seg_line, "") + part
                seg_line += 1
            line = seg_line - 1
            blank(i, j)
            i = j
            continue
        if ch == 'R' and text[i:i + 2] == 'R"':
            m = re.match(r'R"([^(\s]*)\(', text[i:])
            if m:
                end = text.find(")" + m.group(1) + '"', i)
                j = n if end < 0 else end + len(m.group(1)) + 2
                line += text.count("\n", i, j)
                blank(i + 2, max(i + 2, j - 1))
                i = j
                continue
        if ch == '"' or ch == "'":
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == ch:
                    break
                if text[j] == "\n":
                    break  # unterminated; don't eat the file
                j += 1
            blank(i + 1, min(j, n))
            i = min(j + 1, n)
            continue
        i += 1
    return "".join(out), comments


def _match_blocks(code: str) -> List[Tuple[int, int]]:
    blocks: List[Tuple[int, int]] = []
    stack: List[int] = []
    for i, ch in enumerate(code):
        if ch == "{":
            stack.append(i)
        elif ch == "}":
            if stack:
                blocks.append((stack.pop(), i))
    blocks.sort()
    return blocks


def _match_paren(code: str, open_idx: int) -> int:
    """Offset of the ')' matching code[open_idx] == '('; -1 if unbalanced."""
    depth = 0
    for i in range(open_idx, len(code)):
        if code[i] == "(":
            depth += 1
        elif code[i] == ")":
            depth -= 1
            if depth == 0:
                return i
    return -1


# --------------------------------------------------------------------------
# Per-file facts (cacheable as JSON).
# --------------------------------------------------------------------------


SIG_TRAIL_RE = re.compile(
    r"^(?:\s|const\b|noexcept\b|final\b|override\b|mutable\b|&&?|"
    r"->\s*[\w:<>,\*&\s]+|GDELT_\w+\s*\([^()]*(?:\([^()]*\))?[^()]*\)|"
    r"noexcept\s*\([^)]*\)|:\s*.*)*$", re.S)

CLASS_HEAD_RE = re.compile(r"\b(class|struct)\s+(\w+)\s*(?:final\s*)?"
                           r"(?::[^{;]*)?$")
NAMESPACE_HEAD_RE = re.compile(r"\bnamespace\b[^{;]*$")
MEMBER_DECL_RE = re.compile(
    r"^\s*(?:mutable\s+|static\s+|constexpr\s+|inline\s+|const\s+)*"
    r"([\w:]+(?:\s*<[\w:<>,\s\*&]*>)?(?:\s*[\*&]+)?)\s+(\w+)\s*"
    r"(?:GDELT_\w+\s*\([^)]*\)\s*)?(?:=[^;]*|\{[^;]*\})?;\s*$")
LOCAL_DECL_RE = re.compile(
    r"(?:^|[;{}\(])\s*(?:const\s+|constexpr\s+|static\s+)*"
    r"([\w:]+(?:\s*<[\w:<>,\s\*&]*>)?(?:\s*[\*&]+)?)\s+(\w+)\s*"
    r"(=[^;]*|\([^;]*\)|\{[^;]*\})?;")
AUTO_MAKE_RE = re.compile(r"make_(?:shared|unique)\s*<\s*([\w:]+)")

TYPE_KEYWORDS = frozenset({
    "const", "constexpr", "static", "mutable", "inline", "return",
    "auto", "void", "bool", "char", "int", "long", "short", "float",
    "double", "unsigned", "signed", "if", "for", "while", "else", "new",
    "delete", "case", "break", "continue", "throw", "struct", "class",
})


def type_tail(type_text: str) -> str:
    """Last project-class-looking identifier in a type, so
    `std::vector<std::unique_ptr<Worker>>&` resolves to `Worker`."""
    ids = re.findall(r"[A-Za-z_]\w*", type_text)
    for name in reversed(ids):
        if name not in TYPE_KEYWORDS and name not in (
                "std", "vector", "unique_ptr", "shared_ptr", "deque",
                "string", "string_view", "optional", "span", "map",
                "unordered_map", "list", "array", "atomic", "pair",
                "size_t", "uint8_t", "uint16_t", "uint32_t", "uint64_t",
                "int8_t", "int16_t", "int32_t", "int64_t"):
            return name
    return ""


class FileFacts:
    """Everything the rules need about one file, JSON-serializable."""

    def __init__(self) -> None:
        self.classes: Dict[str, Dict[str, str]] = {}
        self.functions: List[dict] = []
        self.suppressions: List[dict] = []
        self.frontend = "builtin"

    def to_json(self) -> dict:
        return {
            "classes": self.classes,
            "functions": self.functions,
            "suppressions": self.suppressions,
            "frontend": self.frontend,
        }

    @staticmethod
    def from_json(data: dict) -> "FileFacts":
        f = FileFacts()
        f.classes = data["classes"]
        f.functions = data["functions"]
        f.suppressions = data["suppressions"]
        f.frontend = data.get("frontend", "builtin")
        return f


def _collect_suppressions(src: Source) -> List[dict]:
    out = []
    for line, text in sorted(src.comments.items()):
        m = ALLOW_TAG_RE.search(text)
        if m:
            reason = m.group(2).strip().lstrip("—-–: ").strip()
            out.append({"line": line, "rule": m.group(1),
                        "reason": reason})
        if LEGACY_CANCEL_TAG in text:
            tail = text.split(LEGACY_CANCEL_TAG, 1)[1]
            out.append({"line": line, "rule": "cancel-poll",
                        "reason": tail.strip().lstrip("—-–: ").strip(),
                        "legacy": True})
    return out


def _class_context(src: Source, offset: int) -> str:
    """Name of the innermost class/struct block containing offset."""
    name = ""
    for b, e in src.enclosing_blocks(offset):
        head = _chunk_before(src.code, b)
        m = CLASS_HEAD_RE.search(head)
        if m:
            name = m.group(2)
    return name


def _chunk_before(code: str, brace: int) -> str:
    """Text between the previous ';', '{', '}' or '#' line and `brace`."""
    j = brace - 1
    depth = 0
    while j >= 0:
        ch = code[j]
        if ch in ">)":
            depth += 1
        elif ch in "<(":
            depth -= 1 if depth > 0 else 0
        elif depth == 0 and ch in ";{}":
            break
        j -= 1
    return code[j + 1:brace]


def _parse_signature(chunk: str) -> Optional[Tuple[str, str, str]]:
    """(ret_type, name, params) if `chunk` looks like a function signature
    ending just before its body's '{'. Handles member-init lists and
    trailing qualifiers; rejects control statements and lambdas."""
    stripped = chunk.strip()
    if not stripped or stripped.endswith(("]", "=", ",", "do", "else",
                                          "try")):
        return None
    first_word = re.match(r"[A-Za-z_]\w*", stripped)
    if first_word and first_word.group(0) in (
            "if", "for", "while", "switch", "catch", "namespace", "class",
            "struct", "enum", "union", "do", "else", "return", "case"):
        return None
    # Find the parameter list: first '(' whose preceding identifier chain
    # is the function name (the part before it must contain no parens —
    # it is the return type, empty for constructors/destructors).
    for m in re.finditer(r"((?:[\w~]+::)*[\w~]+)\s*\(", chunk):
        before = chunk[:m.start()]
        if "(" in before or ")" in before:
            return None  # e.g. macro invocation already consumed parens
        name = m.group(1)
        base = name.rsplit("::", 1)[-1].lstrip("~")
        if base in KEYWORDS:
            return None
        open_idx = m.end() - 1
        close = _match_paren(chunk, open_idx)
        if close < 0:
            return None
        trail = chunk[close + 1:]
        if not SIG_TRAIL_RE.match(trail):
            return None
        ret = before.strip()
        if re.search(r"\boperator\b", ret + name):
            return None
        return ret, name, chunk[open_idx + 1:close]
    return None


def _parse_params(params: str) -> List[Tuple[str, str]]:
    out = []
    depth = 0
    start = 0
    parts = []
    for i, ch in enumerate(params):
        if ch in "<([":
            depth += 1
        elif ch in ">)]":
            depth -= 1
        elif ch == "," and depth == 0:
            parts.append(params[start:i])
            start = i + 1
    parts.append(params[start:])
    for p in parts:
        p = p.split("=")[0].strip()
        if not p or p == "void":
            continue
        m = re.match(r"(.+?)\s*[\*&]*\s*(\w+)\s*$", p)
        if m and m.group(2) not in TYPE_KEYWORDS:
            out.append((m.group(2), m.group(1)))
    return out


def _collect_classes(src: Source) -> Dict[str, Dict[str, str]]:
    classes: Dict[str, Dict[str, str]] = {}
    for b, e in src.blocks:
        head = _chunk_before(src.code, b)
        m = CLASS_HEAD_RE.search(head)
        if not m:
            continue
        cls = m.group(2)
        members = classes.setdefault(cls, {})
        # Member declarations at this block's own depth only.
        inner = [(ib, ie) for ib, ie in src.blocks if b < ib < e]
        body = src.code[b + 1:e]
        # Blank nested blocks so method bodies don't contribute decls.
        body_chars = list(body)
        for ib, ie in inner:
            for k in range(ib - b - 1, min(ie - b, len(body_chars))):
                if body_chars[k] != "\n":
                    body_chars[k] = " "
        # Access-specifier labels would otherwise prefix (and break) the
        # declaration that follows them.
        body_text = re.sub(r"\b(?:public|private|protected)\s*:(?!:)", " ",
                           "".join(body_chars))
        for stmt in body_text.split(";"):
            dm = MEMBER_DECL_RE.match(stmt + ";")
            if dm:
                members[dm.group(2)] = dm.group(1)
    return classes


def _function_records(src: Source) -> List[dict]:
    fns = []
    for b, e in src.blocks:
        chunk = _chunk_before(src.code, b)
        sig = _parse_signature(chunk)
        if not sig:
            continue
        ret, name, params = sig
        cls = ""
        if "::" in name:
            cls = name.rsplit("::", 2)[-2]
        else:
            cls = _class_context(src, b)
        # Skip blocks that are nested inside another function body (the
        # enclosing record already covers their statements; lambdas and
        # local structs must not double-report).
        enclosing = src.enclosing_blocks(b)
        nested = False
        for eb, _ee in enclosing:
            ch = _chunk_before(src.code, eb)
            s2 = _parse_signature(ch)
            if s2:
                nested = True
                break
        if nested:
            continue
        fns.append({
            "name": name.rsplit("::", 1)[-1],
            "qual": name,
            "cls": cls,
            "ret": ret,
            "params": _parse_params(params),
            "body": [b + 1, e],
            "line": src.line_of(b),
        })
    return fns


# ----- statement-level facts inside one function body ---------------------


def _scope_end(src: Source, offset: int, body_end: int) -> int:
    blk = src.innermost_block(offset)
    if blk is None:
        return body_end
    return min(blk[1], body_end)


def _collect_locals(code: str, base: int, src: Source) -> List[dict]:
    out = []
    for m in LOCAL_DECL_RE.finditer(code):
        type_text, name = m.group(1), m.group(2)
        init = (m.group(3) or "")
        first = re.match(r"[A-Za-z_]\w*", type_text.strip())
        if not first or first.group(0) in ("return", "delete", "throw",
                                           "case", "goto", "new"):
            continue
        if type_text.strip() == "auto":
            am = AUTO_MAKE_RE.search(init)
            type_text = am.group(1) if am else "auto"
        out.append({"name": name, "type": type_text.strip(),
                    "init": init.lstrip("=({").strip(),
                    "line": src.line_of(base + m.start(2))})
    return out


def _collect_statement_facts(src: Source, fn: dict) -> None:
    b, e = fn["body"]
    code = src.code[b:e]

    locks = []
    for m in LOCK_RE.finditer(code):
        open_idx = b + m.end() - 1
        close = _match_paren(src.code, open_idx)
        expr = src.code[open_idx + 1:close] if close > 0 else ""
        locks.append({
            "var": m.group(1),
            "expr": re.sub(r"\s+", "", expr),
            "line": src.line_of(b + m.start()),
            "scope_end_line": src.line_of(_scope_end(src, b + m.start(), e)),
            "off": b + m.start(),
            "scope_end_off": _scope_end(src, b + m.start(), e),
        })
    fn["locks"] = locks

    calls = []
    for m in CALL_RE.finditer(code):
        name = m.group(3)
        if name in KEYWORDS or name in ("MutexLock",):
            continue
        recv = ""
        sep = m.group(2) or ""
        if sep in (".", "->") and m.group(1):
            recv = m.group(1)
        elif sep == "::":
            recv = ""
        calls.append({"recv": re.sub(r"[\)\]]+$", "", recv), "name": name,
                      "line": src.line_of(b + m.start(3)),
                      "off": b + m.start(3)})
    fn["calls"] = calls

    returns = []
    for m in re.finditer(r"\breturn\b", code):
        semi = code.find(";", m.end())
        if semi < 0:
            continue
        returns.append({"expr": code[m.end():semi].strip(),
                        "line": src.line_of(b + m.start())})
    fn["returns"] = returns

    loops = []
    for m in re.finditer(r"\b(for|while)\s*\(", code):
        open_idx = b + m.end() - 1
        close = _match_paren(src.code, open_idx)
        if close < 0:
            continue
        header = src.code[open_idx + 1:close]
        # Body: next '{' block, or a single statement up to ';'.
        k = close + 1
        while k < e and src.code[k] in " \n\t":
            k += 1
        if k < e and src.code[k] == "{":
            blk = next(((bb, ee) for bb, ee in src.blocks if bb == k), None)
            body_b, body_e = (blk if blk else (k, e))
        else:
            body_b, body_e = k, max(k, src.code.find(";", k, e))
        loops.append({
            "header": header,
            "line": src.line_of(b + m.start()),
            "body": [body_b, body_e],
            "polls": bool(
                CANCEL_POLL_RE.search(src.code[body_b:body_e]) or
                CANCEL_POLL_RE.search(header)),
        })
    fn["loops"] = loops

    allocs = []
    for m in ALLOC_RE.finditer(code):
        open_idx = b + m.end() - 1
        close = _match_paren(src.code, open_idx)
        if close < 0:
            continue
        args = src.code[open_idx + 1:close]
        arg_list = _split_args(args)
        size_arg = arg_list[0] if arg_list else ""
        # string::assign(ptr, len) / vector::assign(first, last): the
        # first argument is a pointer, the count (if any) comes second.
        if len(arg_list) >= 2 and (
                "_cast<" in size_arg or ".data()" in size_arg or
                size_arg.lstrip().startswith("&")):
            size_arg = arg_list[1]
        allocs.append({"method": m.group(1),
                       "size": size_arg.strip(),
                       "line": src.line_of(b + m.start()),
                       "off": b + m.start()})
    fn["allocs"] = allocs

    guards = []
    for m in GUARD_RE.finditer(code):
        open_idx = b + m.end() - 1
        close = _match_paren(src.code, open_idx)
        if close < 0:
            continue
        cond = src.code[open_idx + 1:close]
        k = close + 1
        while k < e and src.code[k] in " \n\t":
            k += 1
        if k < e and src.code[k] == "{":
            blk = next(((bb, ee) for bb, ee in src.blocks if bb == k), None)
            body_b, body_e = (blk if blk else (k, e))
        else:
            body_b, body_e = k, max(k, src.code.find(";", k, e))
        body_text = src.code[body_b:body_e]
        kind = m.group(1)
        guards.append({
            "cond": cond,
            "kind": kind,
            "line": src.line_of(b + m.start()),
            "body": [body_b, body_e],
            "body_end_line": src.line_of(body_e),
            "exits": bool(EARLY_EXIT_RE.search(body_text)) or
            kind in ("assert", "GDELT_CHECK"),
            "scope_end_line": src.line_of(_scope_end(src, b + m.start(), e)),
        })
    fn["guards"] = guards

    fn["locals"] = _collect_locals(code, b, src)
    fn["body_lines"] = [src.line_of(b), src.line_of(e)]
    del fn["body"]
    for lk in fn["locks"]:
        del lk["off"], lk["scope_end_off"]
    for c in fn["calls"]:
        del c["off"]
    for a in fn["allocs"]:
        del a["off"]
    for lp in fn["loops"]:
        lp["body_lines"] = [src.line_of(lp["body"][0]),
                            src.line_of(lp["body"][1])]
        del lp["body"]
    for g in fn["guards"]:
        g["body_lines"] = [src.line_of(g["body"][0]),
                           src.line_of(g["body"][1])]
        del g["body"]


# --------------------------------------------------------------------------
# Clang frontend: function inventory from -ast-dump=json.
# --------------------------------------------------------------------------


def load_compile_db(build_dir: str) -> Dict[str, List[str]]:
    path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.isfile(path):
        return {}
    try:
        with open(path, encoding="utf-8") as fh:
            entries = json.load(fh)
    except (OSError, ValueError):
        return {}
    db: Dict[str, List[str]] = {}
    for entry in entries:
        f = os.path.normpath(os.path.join(entry.get("directory", "."),
                                          entry["file"]))
        if "command" in entry:
            args = shlex.split(entry["command"])
        else:
            args = list(entry.get("arguments", []))
        db[f] = args
    return db


def find_clang() -> Optional[str]:
    for cand in ("clang++", "clang++-20", "clang++-19", "clang++-18",
                 "clang++-17", "clang++-16", "clang++-15", "clang++-14"):
        try:
            subprocess.run([cand, "--version"], capture_output=True,
                           check=False)
            return cand
        except OSError:
            continue
    return None


def _clang_flags(args: List[str]) -> List[str]:
    """Compile flags without compiler/-c/-o/input, suitable for reuse."""
    out = []
    skip = False
    for a in args[1:]:
        if skip:
            skip = False
            continue
        if a in ("-c", "-o"):
            skip = a == "-o"
            continue
        if a.endswith((".cpp", ".cc", ".o")):
            continue
        out.append(a)
    return out


def clang_function_inventory(clang: str, path: str,
                             flags: List[str]) -> Optional[List[dict]]:
    """[{qual, line_begin, line_end, ret}] from clang's JSON AST, or None
    if clang or the JSON walk fails (caller falls back to builtin)."""
    cmd = [clang] + flags + ["-fsyntax-only", "-Xclang", "-ast-dump=json",
                             "-Wno-everything", path]
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              check=False, timeout=120)
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0 or not proc.stdout:
        return None
    try:
        root = json.loads(proc.stdout)
    except ValueError:
        return None

    want = os.path.abspath(path)
    fns: List[dict] = []

    def walk(node: dict, cls: str, cur_file: List[str]) -> None:
        if not isinstance(node, dict):
            return
        loc = node.get("loc") or {}
        f = loc.get("file") or (loc.get("spellingLoc") or {}).get("file")
        if f:
            cur_file = [os.path.abspath(f)]
        kind = node.get("kind", "")
        if kind in ("CXXRecordDecl", "ClassTemplateDecl"):
            cls = node.get("name", cls)
        if kind in ("FunctionDecl", "CXXMethodDecl", "CXXConstructorDecl",
                    "CXXDestructorDecl") and cur_file[0] == want:
            rng = node.get("range") or {}
            begin = (rng.get("begin") or {}).get("line") or \
                ((rng.get("begin") or {}).get("expansionLoc") or {}).get(
                    "line")
            end = (rng.get("end") or {}).get("line") or \
                ((rng.get("end") or {}).get("expansionLoc") or {}).get("line")
            qtype = (node.get("type") or {}).get("qualType", "")
            ret = qtype.split("(")[0].strip()
            has_body = any(isinstance(c, dict) and
                           c.get("kind") == "CompoundStmt"
                           for c in node.get("inner", []))
            if begin and end and has_body:
                name = node.get("name", "")
                fns.append({"qual": (cls + "::" + name) if cls else name,
                            "cls": cls, "name": name, "ret": ret,
                            "line_begin": begin, "line_end": end})
        for child in node.get("inner", []) or []:
            walk(child, cls, cur_file)

    try:
        walk(root, "", [""])
    except RecursionError:
        return None
    return fns


def merge_clang_inventory(facts: FileFacts, inventory: List[dict]) -> None:
    """Clang's return types and qualified names are authoritative where a
    builtin record overlaps a clang record's extent."""
    for fn in facts.functions:
        line = fn["line"]
        for c in inventory:
            if c["line_begin"] <= line <= c["line_end"] and \
                    c["name"] == fn["name"]:
                fn["ret"] = c["ret"] or fn["ret"]
                if c["cls"]:
                    fn["cls"] = c["cls"]
                break
    facts.frontend = "clang"


# --------------------------------------------------------------------------
# Facts extraction with caching.
# --------------------------------------------------------------------------


def extract_facts(path: str, frontend: str, clang: Optional[str],
                  compile_db: Dict[str, List[str]],
                  cache_dir: Optional[str]) -> FileFacts:
    with open(path, encoding="utf-8") as fh:
        text = fh.read()

    use_clang = frontend == "clang" or (
        frontend == "auto" and clang is not None and
        os.path.abspath(path) in compile_db)
    mode = "clang" if use_clang and clang else "builtin"

    key = hashlib.sha256(
        (text + "|" + mode + "|" + str(ANALYZER_VERSION)).encode()
    ).hexdigest()
    cache_path = os.path.join(cache_dir, key + ".json") if cache_dir else None
    if cache_path and os.path.isfile(cache_path):
        try:
            with open(cache_path, encoding="utf-8") as fh:
                return FileFacts.from_json(json.load(fh))
        except (OSError, ValueError, KeyError):
            pass

    src = Source(path, text)
    facts = FileFacts()
    facts.classes = _collect_classes(src)
    facts.functions = _function_records(src)
    for fn in facts.functions:
        _collect_statement_facts(src, fn)
    facts.suppressions = _collect_suppressions(src)

    if mode == "clang":
        args = compile_db.get(os.path.abspath(path))
        flags = _clang_flags(args) if args else []
        inventory = clang_function_inventory(clang, path, flags)
        if inventory is not None:
            merge_clang_inventory(facts, inventory)
        # else: builtin facts stand; the run is still valid.

    if cache_path:
        try:
            os.makedirs(cache_dir, exist_ok=True)
            tmp = cache_path + ".tmp"
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(facts.to_json(), fh)
            os.replace(tmp, cache_path)
        except OSError:
            pass
    return facts


# --------------------------------------------------------------------------
# Suppression helpers.
# --------------------------------------------------------------------------


class SuppressionIndex:
    def __init__(self, facts_by_file: Dict[str, FileFacts]):
        self.by_file = facts_by_file
        self.used: Set[Tuple[str, int]] = set()

    def suppressed(self, rel: str, line: int, rule: str) -> bool:
        facts = self.by_file.get(rel)
        if not facts:
            return False
        for s in facts.suppressions:
            if s["rule"] != rule and not (
                    rule == "cancel-poll" and s.get("legacy")):
                continue
            if s["rule"] == rule or (rule == "cancel-poll"
                                     and s.get("legacy")):
                if s["line"] <= line <= s["line"] + ALLOW_WINDOW:
                    self.used.add((rel, s["line"]))
                    return True
        return False

    def bare_allow_findings(self) -> List[Finding]:
        out = []
        for rel, facts in self.by_file.items():
            for s in facts.suppressions:
                if s.get("legacy"):
                    continue  # the legacy tag's contract lives in gdelt_lint
                if s["rule"] not in RULES:
                    out.append(Finding(
                        rel, s["line"], "bare-allow",
                        f"allow({s['rule']}) names no known rule "
                        f"(known: {', '.join(RULES)})"))
                elif len(s["reason"]) < MIN_JUSTIFICATION:
                    out.append(Finding(
                        rel, s["line"], "bare-allow",
                        f"allow({s['rule']}) carries no justification; "
                        "state why the rule does not apply here "
                        "(e.g. `// gdelt-astcheck: allow(view-escape) — "
                        "snapshot is immutable after publication`)"))
        return out


# --------------------------------------------------------------------------
# Rule: lock-order.
# --------------------------------------------------------------------------


def _resolve_type_of(name: str, fn: dict, facts: FileFacts,
                     classes: Dict[str, Dict[str, str]]) -> str:
    for p_name, p_type in fn.get("params", []):
        if p_name == name:
            return p_type
    for loc in fn.get("locals", []):
        if loc["name"] == name:
            return loc["type"]
    cls = fn.get("cls", "")
    if cls and cls in classes and name in classes[cls]:
        return classes[cls][name]
    return ""


def _mutex_id(expr: str, fn: dict, facts: FileFacts,
              classes: Dict[str, Dict[str, str]]) -> str:
    e = expr.replace("this->", "").lstrip("&*")
    parts = re.split(r"->|\.", e)
    parts = [re.sub(r"\[.*?\]", "", p) for p in parts if p]
    if not parts:
        return "?:" + expr
    if len(parts) == 1:
        name = parts[0]
        cls = fn.get("cls", "")
        if cls and name in classes.get(cls, {}):
            return f"{cls}::{name}"
        if cls and name.endswith("_"):
            return f"{cls}::{name}"
        return f"::{name}"
    # Chain: resolve the base, then walk member types.
    base_type = _resolve_type_of(parts[0], fn, facts, classes)
    cur = type_tail(base_type) if base_type else ""
    for member in parts[1:-1]:
        if cur and member in classes.get(cur, {}):
            cur = type_tail(classes[cur][member])
        else:
            cur = ""
            break
    if cur:
        return f"{cur}::{parts[-1]}"
    return "?:" + e


def _resolve_callee(call: dict, fn: dict, facts_by_file: Dict[str, FileFacts],
                    classes: Dict[str, Dict[str, str]],
                    fn_index: Dict[str, List[Tuple[str, dict]]]) -> Optional[
                        Tuple[str, dict]]:
    name = call["name"]
    cands = fn_index.get(name, [])
    if not cands:
        return None
    recv = call["recv"]
    if recv:
        recv_base = re.split(r"->|\.", recv.replace("this->", ""))[0]
        recv_base = re.sub(r"\[.*?\]", "", recv_base)
        rtype = _resolve_type_of(recv_base, fn,
                                 facts_by_file.get("", FileFacts()), classes)
        cls = type_tail(rtype) if rtype else ""
        if cls:
            matches = [c for c in cands if c[1].get("cls") == cls]
            if len(matches) == 1:
                return matches[0]
        return None
    # Unqualified: same class first, then a unique project-wide match.
    same = [c for c in cands if c[1].get("cls") == fn.get("cls")]
    if len(same) == 1:
        return same[0]
    if len(cands) == 1 and not cands[0][1].get("cls"):
        return cands[0]
    return None


def check_lock_order(facts_by_file: Dict[str, FileFacts],
                     supp: SuppressionIndex) -> List[Finding]:
    classes: Dict[str, Dict[str, str]] = {}
    for facts in facts_by_file.values():
        for cls, members in facts.classes.items():
            classes.setdefault(cls, {}).update(members)

    fn_index: Dict[str, List[Tuple[str, dict]]] = {}
    for rel, facts in facts_by_file.items():
        for fn in facts.functions:
            fn_index.setdefault(fn["name"], []).append((rel, fn))

    # Direct-acquisition summaries, then a small fixpoint over calls.
    summary: Dict[int, Set[str]] = {}
    for rel, facts in facts_by_file.items():
        for fn in facts.functions:
            ids = set()
            for lk in fn["locks"]:
                ids.add(_mutex_id(lk["expr"], fn, facts, classes))
            summary[id(fn)] = ids
    for _ in range(6):
        changed = False
        for rel, facts in facts_by_file.items():
            for fn in facts.functions:
                for call in fn["calls"]:
                    # Receiver types may live in this file's facts.
                    target = _resolve_callee(
                        call, _with_ctx(fn, facts), facts_by_file, classes,
                        fn_index)
                    if target is None:
                        continue
                    extra = summary.get(id(target[1]), set())
                    if not extra <= summary[id(fn)]:
                        summary[id(fn)] |= extra
                        changed = True
        if not changed:
            break

    # Edges from nesting: lock (or call that locks) inside a held scope.
    edges: Dict[Tuple[str, str], Tuple[str, int, str]] = {}
    for rel, facts in facts_by_file.items():
        for fn in facts.functions:
            held: List[Tuple[str, dict]] = [
                (_mutex_id(lk["expr"], fn, facts, classes), lk)
                for lk in fn["locks"]]
            for mid, lk in held:
                for mid2, lk2 in held:
                    if lk2 is lk:
                        continue
                    if lk["line"] < lk2["line"] <= lk["scope_end_line"]:
                        edges.setdefault(
                            (mid, mid2),
                            (rel, lk2["line"], fn["qual"]))
            for call in fn["calls"]:
                target = _resolve_callee(call, _with_ctx(fn, facts),
                                         facts_by_file, classes, fn_index)
                if target is None:
                    continue
                acquired = summary.get(id(target[1]), set())
                if not acquired:
                    continue
                for mid, lk in held:
                    if lk["line"] < call["line"] <= lk["scope_end_line"]:
                        for mid2 in acquired:
                            if mid2 != mid:
                                edges.setdefault(
                                    (mid, mid2),
                                    (rel, call["line"],
                                     fn["qual"] + " -> " + call["name"]))

    # Cycle detection over the acquisition graph.
    graph: Dict[str, Set[str]] = {}
    for (a, b) in edges:
        graph.setdefault(a, set()).add(b)
    findings = []
    seen_cycles: Set[Tuple[str, ...]] = set()

    def dfs(start: str) -> None:
        stack = [(start, [start])]
        while stack:
            node, path = stack.pop()
            for nxt in sorted(graph.get(node, ())):
                if nxt == start and len(path) > 1:
                    rot = min(range(len(path)),
                              key=lambda i: path[i])
                    canon = tuple(path[rot:] + path[:rot])
                    if canon in seen_cycles:
                        continue
                    seen_cycles.add(canon)
                    witness = []
                    cyc = list(path) + [start]
                    for i in range(len(cyc) - 1):
                        rel, line, where = edges[(cyc[i], cyc[i + 1])]
                        witness.append(
                            f"{cyc[i]} -> {cyc[i + 1]} at {rel}:{line} "
                            f"({where})")
                    rel0, line0, _ = edges[(cyc[0], cyc[1])]
                    if not supp.suppressed(rel0, line0, "lock-order"):
                        findings.append(Finding(
                            rel0, line0, "lock-order",
                            "mutex acquisition cycle (potential deadlock): "
                            + "; ".join(witness)))
                elif nxt not in path:
                    stack.append((nxt, path + [nxt]))

    for node in sorted(graph):
        dfs(node)
    return findings


def _with_ctx(fn: dict, facts: FileFacts) -> dict:
    """The resolver needs the fn's own locals/params plus its file's
    member maps; fn already carries the former, classes arg the latter."""
    return fn


# --------------------------------------------------------------------------
# Rule: view-escape.
# --------------------------------------------------------------------------


def _is_owning(type_text: str) -> str:
    """'' | 'owning' | 'stable' for a declared type."""
    if DEQUE_OF_STRING_RE.search(type_text):
        return "stable"
    if OWNING_TYPE_RE.search(type_text) or \
            VECTOR_OF_STRING_RE.search(type_text):
        return "owning"
    if re.search(r"\bstd::vector\s*<", type_text) and \
            "string_view" not in type_text:
        return "owning"  # vector<T> data()/element views dangle on realloc
    return ""


def _member_chain_kind(expr: str, fn: dict,
                       classes: Dict[str, Dict[str, str]]) -> str:
    """Classifies a returned expression that walks into members: 'owning'
    when the terminal storage is a reallocatable string container."""
    chain = re.split(r"->|\.", expr.replace("this->", ""))
    chain = [c.strip() for c in chain if c.strip()]
    if not chain:
        return ""
    first = re.match(r"(\w+)\s*(\[.*\])?$", chain[0])
    if not first:
        return ""
    base = first.group(1)
    cls = fn.get("cls", "")
    # The base must be a member of the enclosing class (or a local whose
    # type we can resolve into the class map).
    base_type = ""
    if cls and base in classes.get(cls, {}):
        base_type = classes[cls][base]
    else:
        for loc in fn.get("locals", []):
            if loc["name"] == base:
                base_type = loc["type"]
        for p_name, p_type in fn.get("params", []):
            if p_name == base:
                return ""  # parameter-derived: caller owns the storage
    if not base_type:
        return ""
    cur_type = base_type
    for part in chain[1:]:
        m = re.match(r"(\w+)\s*(\(.*)?(\[.*\])?$", part)
        if not m:
            return ""
        member = m.group(1)
        if m.group(2) is not None:  # method call on the way: give up
            if member in ("data", "c_str", "substr", "back", "front"):
                return _is_owning(cur_type) and "owning" or ""
            return ""
        tail = type_tail(cur_type)
        if tail and member in classes.get(tail, {}):
            cur_type = classes[tail][member]
        else:
            return ""
    kind = _is_owning(cur_type)
    # Indexing a vector<string> (or similar) yields a reference into
    # reallocatable storage; a whole-object mention is only a copy.
    last = chain[-1]
    if kind == "owning" and ("[" in last or last.endswith("()")):
        return "owning"
    if kind == "owning" and VECTOR_OF_STRING_RE.search(cur_type) and \
            "[" in expr:
        return "owning"
    if kind == "owning" and OWNING_TYPE_RE.search(cur_type):
        return "owning"
    return ""


def check_view_escape(facts_by_file: Dict[str, FileFacts],
                      supp: SuppressionIndex) -> List[Finding]:
    classes: Dict[str, Dict[str, str]] = {}
    for facts in facts_by_file.values():
        for cls, members in facts.classes.items():
            classes.setdefault(cls, {}).update(members)

    findings = []
    for rel, facts in facts_by_file.items():
        for fn in facts.functions:
            if not VIEW_RET_RE.search(fn.get("ret", "")):
                continue
            local_types = {loc["name"]: loc["type"]
                           for loc in fn.get("locals", [])}
            param_names = {p for p, _t in fn.get("params", [])}
            for ret in fn.get("returns", []):
                expr = ret["expr"].strip()
                if not expr or expr in ("{}", "nullptr"):
                    continue
                line = ret["line"]
                reason = ""
                # A braced return `{ptr_expr, len_expr}` builds the view
                # from its components; a dangling component dangles the
                # whole view, so each is classified separately.
                if expr.startswith("{") and expr.endswith("}"):
                    components = _split_args(expr[1:-1])
                else:
                    components = [expr]
                # Case 1: returning an owning local (implicit conversion
                # to view: the exact SSO dangling-string class).
                m = re.match(r"^\{?\s*(\w+)\s*[\}\s]*$", expr)
                if m and m.group(1) in local_types and \
                        _is_owning(local_types[m.group(1)]) == "owning":
                    reason = (f"returns a view of local "
                              f"`{m.group(1)}` "
                              f"({local_types[m.group(1)]}); the storage "
                              "dies with this frame (SSO strings die even "
                              "when the heap block would survive)")
                # Case 2: view built over an owning local's storage.
                if not reason:
                    for name, type_text in local_types.items():
                        if _is_owning(type_text) != "owning":
                            continue
                        if name in param_names:
                            continue
                        if re.search(
                                r"\b" + re.escape(name) +
                                r"\s*(\.|\[)\s*"
                                r"(data\b|c_str\b|substr\b|back\b|front\b|"
                                r"\d|\w)?", expr):
                            reason = (
                                f"returns a view into local `{name}` "
                                f"({type_text}); the storage dies when the "
                                "function returns")
                            break
                # Case 3: view of a temporary created in the return.
                if not reason and TEMP_OWNER_RE.search(expr):
                    reason = ("returns a view of a temporary string; the "
                              "temporary is destroyed before the caller "
                              "can look at the view")
                # Case 4: view into a reallocatable container member.
                if not reason and any(
                        _member_chain_kind(c, fn, classes) == "owning"
                        for c in components):
                    reason = (
                        "returns a view into a reallocatable container "
                        "member; a mutation that grows the container "
                        "invalidates the view (the PR 5 "
                        "DeltaStore::source_domain bug class)")
                if reason and not supp.suppressed(rel, line, "view-escape"):
                    findings.append(Finding(
                        rel, line, "view-escape",
                        f"{fn['qual']} {reason}; return std::string by "
                        "value, point at stable storage, or annotate "
                        "`// gdelt-astcheck: allow(view-escape)` with the "
                        "lifetime contract"))
    return findings


# --------------------------------------------------------------------------
# Rule: snapshot-discipline.
# --------------------------------------------------------------------------


def check_snapshot_discipline(facts_by_file: Dict[str, FileFacts],
                              supp: SuppressionIndex) -> List[Finding]:
    classes: Dict[str, Dict[str, str]] = {}
    for facts in facts_by_file.values():
        for cls, members in facts.classes.items():
            classes.setdefault(cls, {}).update(members)

    findings = []
    for rel, facts in facts_by_file.items():
        for fn in facts.functions:
            store_vars: Set[str] = set()
            for p_name, p_type in fn.get("params", []):
                if "DeltaStore" in p_type:
                    store_vars.add(p_name)
            for loc in fn.get("locals", []):
                if "DeltaStore" in loc["type"]:
                    store_vars.add(loc["name"])
            cls = fn.get("cls", "")
            for name, type_text in classes.get(cls, {}).items():
                if "DeltaStore" in type_text and "Snapshot" not in type_text:
                    store_vars.add(name)
            if not store_vars:
                continue
            by_recv: Dict[str, List[dict]] = {}
            for call in fn.get("calls", []):
                if call["name"] not in DELTA_ACCESSORS:
                    continue
                recv = re.sub(r"\[.*?\]", "",
                              call["recv"].replace("this->", ""))
                if recv in store_vars:
                    by_recv.setdefault(recv, []).append(call)
            for recv, calls in sorted(by_recv.items()):
                if len(calls) < 2:
                    continue
                second = sorted(calls, key=lambda c: c["line"])[1]
                lines = ", ".join(str(c["line"])
                                  for c in sorted(calls,
                                                  key=lambda c: c["line"]))
                if supp.suppressed(rel, second["line"],
                                   "snapshot-discipline"):
                    continue
                findings.append(Finding(
                    rel, second["line"], "snapshot-discipline",
                    f"{fn['qual']} calls {len(calls)} DeltaStore "
                    f"convenience accessors on `{recv}` (lines {lines}); "
                    "each acquires its own snapshot, so the values can "
                    "straddle an ingest tick — call Acquire() once and "
                    "read every fact from that snapshot"))
    return findings


# --------------------------------------------------------------------------
# Rule: cancel-poll.
# --------------------------------------------------------------------------


def in_cancel_scope(rel: str) -> bool:
    p = rel.replace(os.sep, "/")
    return any(seg in p for seg in ("/analysis/", "/engine/", "/stream/")) \
        or p.startswith(("analysis/", "engine/", "stream/"))


def check_cancel_poll(facts_by_file: Dict[str, FileFacts],
                      supp: SuppressionIndex) -> List[Finding]:
    findings = []
    for rel, facts in facts_by_file.items():
        if not in_cancel_scope(rel):
            continue
        for fn in facts.functions:
            for loop in fn.get("loops", []):
                if not ROW_LOOP_RE.search(loop["header"]):
                    continue
                if loop["polls"]:
                    continue
                if supp.suppressed(rel, loop["line"], "cancel-poll"):
                    continue
                findings.append(Finding(
                    rel, loop["line"], "cancel-poll",
                    f"{fn['qual']}: full row-range loop (lines "
                    f"{loop['body_lines'][0]}-{loop['body_lines'][1]}) "
                    "never consults the cancel token anywhere in its "
                    "body; poll util::Cancelled(cancel) every few hundred "
                    "rows or annotate "
                    "`// gdelt-astcheck: allow(cancel-poll)` with a "
                    "reason"))
    return findings


# --------------------------------------------------------------------------
# Rule: bounded-alloc.
# --------------------------------------------------------------------------


def in_alloc_scope(rel: str) -> bool:
    p = rel.replace(os.sep, "/")
    if any(seg in p for seg in ("/io/", "/columnar/")) or \
            p.startswith(("io/", "columnar/")):
        return True
    return p.endswith("serve/partial.cpp")


def _size_idents(size_expr: str) -> Set[str]:
    """Plain identifiers in a size expression that could carry untrusted
    magnitudes: not call names, not receivers of calls."""
    out = set()
    for m in IDENT_RE.finditer(size_expr):
        name = m.group(0)
        if name in GENERIC_IDENTS or name in KEYWORDS:
            continue
        after = size_expr[m.end():].lstrip()
        if after.startswith(("(", ".", "->", "::")):
            continue  # function name or object whose member is consumed
        before = size_expr[:m.start()].rstrip()
        if before.endswith((".", "->", "::")):
            continue  # member access: handled via the receiver
        out.add(name)
    return out


def check_bounded_alloc(facts_by_file: Dict[str, FileFacts],
                        supp: SuppressionIndex) -> List[Finding]:
    findings = []
    for rel, facts in facts_by_file.items():
        if not in_alloc_scope(rel):
            continue
        for fn in facts.functions:
            local_init = {loc["name"]: loc.get("init", "")
                          for loc in fn.get("locals", [])}
            guards = fn.get("guards", [])
            for alloc in fn.get("allocs", []):
                size = alloc["size"]
                if not size:
                    continue
                if CLAMP_TOKEN_RE.search(size):
                    continue
                idents = _size_idents(size)
                if not idents:
                    continue
                unbounded = []
                for ident in sorted(idents):
                    init = local_init.get(ident, "")
                    if init and CLAMP_TOKEN_RE.search(init):
                        continue  # initialized from a clamping expression
                    dominated = False
                    for g in guards:
                        if not re.search(r"\b" + re.escape(ident) + r"\b",
                                         g["cond"]):
                            continue
                        inside = (g["body_lines"][0] <= alloc["line"]
                                  <= g["body_lines"][1])
                        after_exit = (g["exits"] and
                                      g["line"] < alloc["line"] <=
                                      g["scope_end_line"])
                        if inside or after_exit:
                            dominated = True
                            break
                    if not dominated:
                        unbounded.append(ident)
                if not unbounded:
                    continue
                if supp.suppressed(rel, alloc["line"], "bounded-alloc"):
                    continue
                findings.append(Finding(
                    rel, alloc["line"], "bounded-alloc",
                    f"{fn['qual']}: .{alloc['method']}({size}) — size "
                    f"depends on `{', '.join(unbounded)}` with no "
                    "dominating guard naming it; bound it against a "
                    "parsed limit (early-exit `if` or std::min clamp) "
                    "before allocating, or annotate "
                    "`// gdelt-astcheck: allow(bounded-alloc)` with a "
                    "reason"))
    return findings


# --------------------------------------------------------------------------
# Driver.
# --------------------------------------------------------------------------


def collect_files(root: str, paths: List[str]) -> List[str]:
    if not paths:
        src = os.path.join(root, "src")
        if not os.path.isdir(src):
            print(f"gdelt_astcheck: no src/ under {root}", file=sys.stderr)
            sys.exit(2)
        paths = [src]
    files: List[str] = []
    for p in paths:
        full = p if os.path.isabs(p) else os.path.join(root, p)
        if os.path.isfile(full):
            files.append(full)
        elif os.path.isdir(full):
            for dirpath, _dirs, names in os.walk(full):
                for name in sorted(names):
                    if name.endswith(EXTENSIONS):
                        files.append(os.path.join(dirpath, name))
        else:
            print(f"gdelt_astcheck: no such path: {p}", file=sys.stderr)
            sys.exit(2)
    return files


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="gdelt_astcheck.py",
        description="AST-level semantic analyzer (see module docstring)")
    default_root = os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    parser.add_argument("--root", default=default_root)
    parser.add_argument("--build-dir", default=None,
                        help="build tree with compile_commands.json "
                             "(enables the clang frontend under auto)")
    parser.add_argument("--frontend", choices=("auto", "clang", "builtin"),
                        default="auto")
    parser.add_argument("--cache-dir", default=None,
                        help="AST-facts cache keyed by content hash "
                             "(default: <build-dir>/astcheck-cache when "
                             "--build-dir is given, else no cache)")
    parser.add_argument("--no-cache", action="store_true")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write machine-readable findings ('-' = "
                             "stdout)")
    parser.add_argument("--rule", action="append", default=None,
                        choices=RULES, help="run only these rules")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--stats", action="store_true",
                        help="print frontend/cache statistics")
    parser.add_argument("paths", nargs="*")
    args = parser.parse_args(argv)

    if args.list_rules:
        for r in RULES:
            print(r)
        return 0

    root = os.path.abspath(args.root)
    files = collect_files(root, args.paths)

    compile_db: Dict[str, List[str]] = {}
    clang = None
    if args.frontend in ("auto", "clang"):
        if args.build_dir:
            compile_db = load_compile_db(args.build_dir)
        clang = find_clang()
        if args.frontend == "clang" and (clang is None or not compile_db):
            print("gdelt_astcheck: --frontend clang needs clang++ and "
                  "--build-dir with compile_commands.json", file=sys.stderr)
            return 2

    cache_dir = None
    if not args.no_cache:
        if args.cache_dir:
            cache_dir = args.cache_dir
        elif args.build_dir:
            cache_dir = os.path.join(args.build_dir, "astcheck-cache")

    facts_by_file: Dict[str, FileFacts] = {}
    cache_hits = 0
    for path in files:
        rel = os.path.relpath(path, root)
        before = None
        if cache_dir:
            before = len(os.listdir(cache_dir)) if os.path.isdir(
                cache_dir) else 0
        facts = extract_facts(path, args.frontend, clang, compile_db,
                              cache_dir)
        if cache_dir and before is not None:
            after = len(os.listdir(cache_dir)) if os.path.isdir(
                cache_dir) else 0
            if after == before:
                cache_hits += 1
        facts_by_file[rel] = facts

    supp = SuppressionIndex(facts_by_file)
    selected = set(args.rule) if args.rule else set(RULES)
    findings: List[Finding] = []
    if "lock-order" in selected:
        findings += check_lock_order(facts_by_file, supp)
    if "view-escape" in selected:
        findings += check_view_escape(facts_by_file, supp)
    if "snapshot-discipline" in selected:
        findings += check_snapshot_discipline(facts_by_file, supp)
    if "cancel-poll" in selected:
        findings += check_cancel_poll(facts_by_file, supp)
    if "bounded-alloc" in selected:
        findings += check_bounded_alloc(facts_by_file, supp)
    if "bare-allow" in selected:
        findings += supp.bare_allow_findings()

    findings.sort()
    for f in findings:
        print(f"{f.path}:{f.line}: [{f.rule}] {f.message}")

    if args.stats:
        frontends = {}
        for facts in facts_by_file.values():
            frontends[facts.frontend] = frontends.get(facts.frontend, 0) + 1
        print(f"gdelt_astcheck: {len(files)} file(s), frontends={frontends},"
              f" cache_hits={cache_hits}", file=sys.stderr)

    if args.json:
        payload = {
            "version": ANALYZER_VERSION,
            "root": root,
            "files": len(files),
            "findings": [f._asdict() for f in findings],
            "counts": {},
        }
        for f in findings:
            payload["counts"][f.rule] = payload["counts"].get(f.rule, 0) + 1
        text = json.dumps(payload, indent=2, sort_keys=True)
        if args.json == "-":
            print(text)
        else:
            with open(args.json, "w", encoding="utf-8") as fh:
                fh.write(text + "\n")

    if findings:
        print(f"gdelt_astcheck: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("gdelt_astcheck: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
