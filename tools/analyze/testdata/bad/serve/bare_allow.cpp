// Seeded suppression-contract violations. gdelt_astcheck_test.py
// expects exactly TWO bare-allow findings from this file (and ZERO
// view-escape findings: a bare tag still suppresses, it just gets
// reported itself, so silent escapes cannot accumulate). Never
// compiled; analyzer fixture only.

#include <string>
#include <string_view>

// Tag with no justification: the base finding is suppressed, but the
// naked tag is a finding of its own.
std::string_view Nick() {
  std::string n = "x";
  // gdelt-astcheck: allow(view-escape)
  return n;
}

// Tag naming a rule that does not exist (typo'd rule names would
// otherwise rot silently, suppressing nothing while looking load-bearing).
std::string_view Alias() {
  // gdelt-astcheck: allow(view-escapes) — plausible but misspelled
  return "literal";
}
