// Seeded lock-order violations. gdelt_astcheck_test.py expects exactly
// TWO cycle findings from this file: one direct two-mutex inversion and
// one that only exists interprocedurally (neither function on its own
// ever holds two locks at once in source order — the cycle appears when
// call summaries are folded in).
//
// Never compiled; analyzer fixture only.

namespace sync {
class Mutex {};
class MutexLock {
 public:
  explicit MutexLock(Mutex& mu);
};
}  // namespace sync

class Ledger {
 public:
  void Credit();
  void Debit();
  void Reconcile();
  void Audit();
  void FlushJournal();
  void ReplayLog();

 private:
  sync::Mutex accounts_mu_;
  sync::Mutex journal_mu_;
  sync::Mutex replay_mu_;
  sync::Mutex flush_mu_;
};

// Direct cycle: Credit nests accounts_mu_ -> journal_mu_, Debit nests
// journal_mu_ -> accounts_mu_. Two threads, one in each, deadlock.
void Ledger::Credit() {
  sync::MutexLock accounts(accounts_mu_);
  sync::MutexLock journal(journal_mu_);
}

void Ledger::Debit() {
  sync::MutexLock journal(journal_mu_);
  sync::MutexLock accounts(accounts_mu_);
}

// Interprocedural cycle: Reconcile holds replay_mu_ while calling
// FlushJournal (which takes flush_mu_); Audit holds flush_mu_ while
// calling ReplayLog (which takes replay_mu_).
void Ledger::Reconcile() {
  sync::MutexLock replay(replay_mu_);
  FlushJournal();
}

void Ledger::FlushJournal() {
  sync::MutexLock flush(flush_mu_);
}

void Ledger::Audit() {
  sync::MutexLock flush(flush_mu_);
  ReplayLog();
}

void Ledger::ReplayLog() {
  sync::MutexLock replay(replay_mu_);
}
