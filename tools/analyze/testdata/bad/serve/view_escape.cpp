// Seeded view-escape violations. gdelt_astcheck_test.py expects exactly
// THREE findings from this file: an SSO-length local escape, a
// reallocatable member element, and an owning temporary. Never
// compiled; analyzer fixture only.

#include <string>
#include <string_view>
#include <vector>

class Catalog {
 public:
  std::string_view Name() const;
  std::string_view Mangled() const;

 private:
  std::vector<std::string> names_;
};

// An SSO-length string never touches the heap, so nothing "leaks" in a
// heap checker — but the bytes live in the dying stack frame. This is
// the shape ASan catches only with use-after-return instrumentation.
std::string_view ShortLabel() {
  std::string label = "ok";
  return label;
}

// names_ is a std::vector<std::string>: push_back can move every
// element, and the element's own growth can reallocate its buffer.
std::string_view Catalog::Name() const {
  return names_[0];
}

// The temporary from to_string dies at the end of the full expression;
// the caller receives a view of freed (or reused) stack bytes.
std::string_view Catalog::Mangled() const {
  return std::to_string(42);
}
