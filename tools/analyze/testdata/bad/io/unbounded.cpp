// Seeded bounded-alloc violations. gdelt_astcheck_test.py expects
// exactly FOUR findings from this file: a size with no guard at all, a
// guard naming the wrong variable, a guard that arrives after the
// allocation, and a quadratic size from input. Never compiled; analyzer
// fixture only.

#include <cstdint>
#include <vector>

struct Reader {
  std::uint64_t U64();
};

// No guard: a hostile header field becomes the allocation size verbatim
// (the 2^63 "please OOM me" frame).
void ReadBlob(Reader& r, std::vector<std::uint8_t>& out) {
  std::uint64_t len = r.U64();
  out.resize(len);
}

// A guard exists, but it bounds `cols` while the allocation is sized by
// `rows` — dominance must track the exact identifier.
void ReadRows(Reader& r, std::vector<std::uint8_t>& out) {
  std::uint64_t rows = r.U64();
  std::uint64_t cols = r.U64();
  if (cols > 4096) return;
  out.resize(rows);
}

// The guard names the right variable but runs after the damage; the
// allocation it should dominate precedes it.
void ReadLate(Reader& r, std::vector<std::uint8_t>& out) {
  std::uint64_t len = r.U64();
  out.resize(len);
  if (len > 4096) return;
}

// Quadratic amplification: n items in the frame demand n*n accumulator
// slots (the MergeCoreport shape before its top_k bound).
void ReadMatrix(Reader& r, std::vector<std::uint64_t>& out) {
  std::uint64_t n = r.U64();
  out.assign(n * n, 0);
}
