// Seeded snapshot-discipline violations. gdelt_astcheck_test.py expects
// exactly TWO findings from this file: one per function that reads two
// or more DeltaStore convenience accessors instead of holding a single
// Acquire()d snapshot. Never compiled; analyzer fixture only.

#include <cstdint>

class DeltaStore;

class StatusPage {
 public:
  void Render(const DeltaStore& store);
};

class Dashboard {
 public:
  void Refresh();

 private:
  DeltaStore* delta_ = nullptr;
  std::uint64_t last_gen_ = 0;
  std::uint64_t rows_ = 0;
};

// Generation() and delta_events() each acquire their own snapshot; an
// ingest between the two calls makes the page report a generation that
// does not match the row count beside it.
void StatusPage::Render(const DeltaStore& store) {
  const std::uint64_t gen = store.Generation();
  const std::uint64_t rows = store.delta_events();
  (void)gen;
  (void)rows;
}

// Same torn-read shape through a member pointer: three accessors, three
// independent snapshots.
void Dashboard::Refresh() {
  last_gen_ = delta_->Generation();
  rows_ = delta_->delta_events() + delta_->delta_mentions();
}
