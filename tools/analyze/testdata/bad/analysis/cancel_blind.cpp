// Seeded cancel-poll violations. gdelt_astcheck_test.py expects exactly
// TWO findings from this file: a full row-range loop with no poll at
// all, and one whose only "Cancelled" appears inside a comment (the AST
// rule strips comments; a naive grep would be fooled). Never compiled;
// analyzer fixture only.

#include <cstddef>

struct Db {
  std::size_t num_events() const;
  std::size_t num_mentions() const;
};

void Consume(std::size_t row);

// Scans every event row and never looks at the cancel token: a slow
// query holds its worker thread hostage past its deadline.
void ScanAll(const Db& db) {
  for (std::size_t e = 0; e < db.num_events(); ++e) {
    Consume(e);
  }
}

// The poll exists only in prose. Comment text must not count as
// coverage.
void ScanMentions(const Db& db) {
  for (std::size_t m = 0; m < db.num_mentions(); ++m) {
    // A production kernel would check util::Cancelled(cancel) here.
    Consume(m);
  }
}
