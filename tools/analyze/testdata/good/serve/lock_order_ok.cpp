// Clean lock-order patterns the analyzer must NOT flag: sequential
// (non-nested) scopes, a consistent one-directional nesting order, and
// same-named members of different classes (per-class mutex identity —
// a name-only graph would see a false cycle here). Never compiled;
// analyzer fixture only.

namespace sync {
class Mutex {};
class MutexLock {
 public:
  explicit MutexLock(Mutex& mu);
};
}  // namespace sync

class Pool {
 public:
  void Shutdown();
  void Join();
  void Submit();
  void Steal();

 private:
  sync::Mutex mu_;
  sync::Mutex join_mu_;
};

// Sequential scopes: mu_ is RELEASED at the inner closing brace before
// join_mu_ is taken, in both orders. Only brace-accurate scope extents
// keep this edge-free (a line-window heuristic would see a cycle).
void Pool::Shutdown() {
  {
    sync::MutexLock lock(mu_);
  }
  sync::MutexLock join(join_mu_);
}

void Pool::Join() {
  {
    sync::MutexLock join(join_mu_);
  }
  sync::MutexLock lock(mu_);
}

// Consistent nesting direction: mu_ -> join_mu_ in every path is a
// hierarchy, not a cycle.
void Pool::Submit() {
  sync::MutexLock lock(mu_);
  sync::MutexLock join(join_mu_);
}

void Pool::Steal() {
  sync::MutexLock lock(mu_);
  sync::MutexLock join(join_mu_);
}

// Same member names, different classes: Alpha::mu_ and Beta::mu_ are
// distinct mutexes, so opposite orders across the two classes are fine.
class Alpha {
 public:
  void Tick();

 private:
  sync::Mutex mu_;
  sync::Mutex aux_mu_;
};

class Beta {
 public:
  void Tock();

 private:
  sync::Mutex mu_;
  sync::Mutex aux_mu_;
};

void Alpha::Tick() {
  sync::MutexLock a(mu_);
  sync::MutexLock b(aux_mu_);
}

void Beta::Tock() {
  sync::MutexLock b(aux_mu_);
  sync::MutexLock a(mu_);
}
