// Clean view-returning patterns the analyzer must NOT flag:
// parameter-derived views, string literals, address-stable deque
// storage, vectors that already hold views, and a tagged escape whose
// justification documents the lifetime contract. Never compiled;
// analyzer fixture only.

#include <cstddef>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

// Parameter-derived: the caller owns the storage; a sub-view of it is
// exactly as valid as what was passed in.
std::string_view TrimFront(std::string_view s) {
  return s.substr(1);
}

// String literals live in static storage.
std::string_view KindName() {
  return "coreport";
}

class StableDictionary {
 public:
  std::string_view At(std::size_t id) const {
    // deque never moves settled elements on push_back: views into its
    // strings survive growth (the StringDictionary design).
    return strings_[id];
  }

 private:
  std::deque<std::string> strings_;
};

class ViewTable {
 public:
  std::string_view Pick(std::size_t i) const {
    // The vector holds views, not strings: reallocating the vector
    // copies the (non-owning) views; nothing dangles.
    return views_[i];
  }

 private:
  std::vector<std::string_view> views_;
};

class PinnedSnapshot {
 public:
  std::string_view Domain(std::size_t i) const {
    // gdelt-astcheck: allow(view-escape) — the snapshot is immutable
    // after publication and the caller's shared_ptr pins it for the
    // view's whole life.
    return domains_[i];
  }

 private:
  std::vector<std::string> domains_;
};
