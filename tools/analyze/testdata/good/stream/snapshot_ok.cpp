// Clean DeltaStore usage the analyzer must NOT flag: one Acquire() per
// scope with every fact read from that snapshot, and single-accessor
// convenience calls (one call cannot tear). Never compiled; analyzer
// fixture only.

#include <cstdint>

class DeltaStore;

class Dashboard {
 public:
  void Refresh();
  std::uint64_t Epoch() const;

 private:
  DeltaStore* delta_ = nullptr;
  std::uint64_t last_gen_ = 0;
  std::uint64_t rows_ = 0;
};

// The discipline the rule enforces: acquire once, read everything from
// the immutable snapshot — generation and counts cannot tear.
void Dashboard::Refresh() {
  const auto snap = delta_->Acquire();
  last_gen_ = snap->generation();
  rows_ = snap->delta_events() + snap->delta_mentions();
}

// A single convenience accessor is fine: there is no second read for
// it to be inconsistent with.
std::uint64_t Dashboard::Epoch() const {
  return delta_->Generation();
}
