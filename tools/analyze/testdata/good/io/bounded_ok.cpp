// Clean allocation patterns the analyzer must NOT flag: clamped
// initializers, early-exit guard dominance, allocation inside the
// guard's block, sizes derived from in-memory containers, and a
// justified allow tag. Never compiled; analyzer fixture only.

#include <algorithm>
#include <cstdint>
#include <vector>

struct Reader {
  std::uint64_t U64();
  std::size_t remaining() const;
};

inline constexpr std::uint64_t kMaxLen = 1 << 20;

// The size identifier is born clamped: its initializer is the bound.
void ReadClamped(Reader& r, std::vector<std::uint8_t>& out) {
  const std::uint64_t take = std::min<std::uint64_t>(r.U64(), kMaxLen);
  out.resize(take);
}

// Early-exit guard dominance: every path reaching the allocation has
// len <= remaining().
void ReadGuarded(Reader& r, std::vector<std::uint8_t>& out) {
  std::uint64_t len = r.U64();
  if (len > r.remaining()) {
    return;
  }
  out.resize(len);
}

// Allocation inside the guard's own block.
void ReadInside(Reader& r, std::vector<std::uint8_t>& out) {
  std::uint64_t len = r.U64();
  if (len <= kMaxLen) {
    out.resize(len);
  }
}

// Sized from an in-memory container: .size() cannot be hostile.
void CopyRows(const std::vector<std::uint8_t>& src,
              std::vector<std::uint8_t>& out) {
  out.reserve(src.size());
}

// A justified suppression for a size the surrounding system already
// bounds.
void ReadTrusted(Reader& r, std::vector<std::uint8_t>& out) {
  std::uint64_t len = r.U64();
  // gdelt-astcheck: allow(bounded-alloc) — len was validated against
  // the archive's framing by the caller before this reader was built.
  out.resize(len);
}
