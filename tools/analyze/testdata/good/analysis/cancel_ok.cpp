// Clean cancellation patterns the analyzer must NOT flag: a poll deep
// inside a long loop body (beyond any fixed line window — the reason
// the AST rule replaced the 6-line regex), a poll in the loop header,
// a non-row-range loop with no poll obligation, and a justified allow
// tag. Never compiled; analyzer fixture only.

#include <cstddef>

struct Db {
  std::size_t num_events() const;
  std::size_t num_mentions() const;
};

namespace util {
struct CancelToken;
bool Cancelled(const CancelToken* token);
}  // namespace util

void StageA(std::size_t row);
void StageB(std::size_t row);
void StageC(std::size_t row);
void StageD(std::size_t row);
void StageE(std::size_t row);
void StageF(std::size_t row);
void StageG(std::size_t row);

// The poll sits more than six lines into the body: a line-window regex
// declares this loop blind; real body analysis sees the poll.
void ScanDeep(const Db& db, const util::CancelToken* cancel) {
  for (std::size_t e = 0; e < db.num_events(); ++e) {
    StageA(e);
    StageB(e);
    StageC(e);
    StageD(e);
    StageE(e);
    StageF(e);
    StageG(e);
    if ((e & 1023) == 0 && util::Cancelled(cancel)) {
      return;
    }
  }
}

// Poll in the loop condition itself.
void ScanGuarded(const Db& db, const util::CancelToken* cancel) {
  for (std::size_t m = 0; m < db.num_mentions() && !util::Cancelled(cancel);
       ++m) {
    StageA(m);
  }
}

// Not a row-range loop: no obligation to poll.
void WarmCaches() {
  for (int pass = 0; pass < 3; ++pass) {
    StageA(0);
  }
}

// A justified suppression: bench-only kernel with no token parameter.
void BenchScan(const Db& db) {
  // gdelt-astcheck: allow(cancel-poll) — bench-only ablation kernel;
  // no cancel token is plumbed and benches want the uninterrupted scan.
  for (std::size_t e = 0; e < db.num_events(); ++e) {
    StageA(e);
  }
}
