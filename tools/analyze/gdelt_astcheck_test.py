#!/usr/bin/env python3
"""Self-test for gdelt_astcheck.py against the seeded fixtures in
testdata/.

Run directly (python3 tools/analyze/gdelt_astcheck_test.py) or via ctest
as `gdelt_astcheck_selftest`. Guards the analyzer itself: every rule
must fire on its bad fixtures with the exact expected counts and stay
silent on the good ones, so a refactor of the analyzer cannot quietly
stop enforcing a rule. The clang-frontend test SKIPs when no clang++ or
compilation database is available (mirrors tsa_negative_compile's
SKIPPED-under-GCC contract); the builtin frontend is exercised
everywhere.
"""

import json
import os
import shutil
import subprocess
import sys
import tempfile
import unittest

ANALYZE_DIR = os.path.dirname(os.path.abspath(__file__))
ANALYZER = os.path.join(ANALYZE_DIR, "gdelt_astcheck.py")
TESTDATA = os.path.join(ANALYZE_DIR, "testdata")
REPO_ROOT = os.path.dirname(os.path.dirname(ANALYZE_DIR))

EXPECTED_BAD = {
    "lock-order": 2,
    "view-escape": 3,
    "snapshot-discipline": 2,
    "cancel-poll": 2,
    "bounded-alloc": 4,
    "bare-allow": 2,
}


def run_check(*args, root=TESTDATA):
    proc = subprocess.run(
        [sys.executable, ANALYZER, "--root", root, "--frontend", "builtin",
         "--no-cache", *args],
        capture_output=True, text=True, check=False)
    return proc.returncode, proc.stdout, proc.stderr


def findings_by_rule(output):
    counts = {}
    for line in output.splitlines():
        if "] " not in line or not line.startswith(("bad", "good", "src")):
            continue
        rule = line.split("[", 1)[1].split("]", 1)[0]
        counts[rule] = counts.get(rule, 0) + 1
    return counts


class GdeltAstcheckTest(unittest.TestCase):
    def test_bad_fixtures_fire_every_rule_exactly(self):
        code, out, _err = run_check("bad")
        self.assertEqual(code, 1, out)
        self.assertEqual(findings_by_rule(out), EXPECTED_BAD, out)

    def test_good_fixtures_are_clean(self):
        code, out, _err = run_check("good")
        self.assertEqual(code, 0, out)
        self.assertEqual(findings_by_rule(out), {}, out)

    def test_view_escape_lines_are_precise(self):
        _code, out, _err = run_check("bad/serve/view_escape.cpp")
        lines = sorted(int(l.split(":")[1]) for l in out.splitlines()
                       if "[view-escape]" in l)
        self.assertEqual(lines, [24, 30, 36], out)

    def test_lock_cycle_reports_full_witness_path(self):
        _code, out, _err = run_check("bad/serve/lock_cycle.cpp")
        cycles = [l for l in out.splitlines() if "[lock-order]" in l]
        self.assertEqual(len(cycles), 2, out)
        direct = [c for c in cycles if "Ledger::Credit" in c]
        self.assertEqual(len(direct), 1, out)
        # The witness names both edges of the inversion.
        self.assertIn("Ledger::accounts_mu_ -> Ledger::journal_mu_",
                      direct[0])
        self.assertIn("Ledger::journal_mu_ -> Ledger::accounts_mu_",
                      direct[0])
        # The second cycle only exists through call summaries.
        inter = [c for c in cycles if "FlushJournal" in c]
        self.assertEqual(len(inter), 1, out)
        self.assertIn("->", inter[0])

    def test_deep_poll_defeats_the_old_line_window(self):
        # ScanDeep's poll is >6 lines into the body: the retired regex
        # window called it blind; the AST rule must not.
        code, out, _err = run_check("good/analysis/cancel_ok.cpp")
        self.assertEqual(code, 0, out)

    def test_bare_allow_still_suppresses_base_finding(self):
        _code, out, _err = run_check("bad/serve/bare_allow.cpp")
        counts = findings_by_rule(out)
        self.assertEqual(counts.get("bare-allow"), 2, out)
        self.assertNotIn("view-escape", counts, out)

    def test_rule_filter(self):
        code, out, _err = run_check("--rule", "bounded-alloc", "bad")
        self.assertEqual(code, 1, out)
        self.assertEqual(findings_by_rule(out), {"bounded-alloc": 4}, out)

    def test_json_output_shape(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "findings.json")
            code, out, _err = run_check("--json", path, "bad")
            self.assertEqual(code, 1, out)
            with open(path, encoding="utf-8") as fh:
                payload = json.load(fh)
        self.assertEqual(payload["counts"], EXPECTED_BAD, payload)
        self.assertEqual(len(payload["findings"]),
                         sum(EXPECTED_BAD.values()), payload)
        for f in payload["findings"]:
            self.assertIn(f["rule"], EXPECTED_BAD, f)
            self.assertIsInstance(f["line"], int, f)
            self.assertTrue(f["path"].startswith("bad"), f)
            self.assertTrue(f["message"], f)

    def test_cache_round_trip_is_stable(self):
        with tempfile.TemporaryDirectory() as tmp:
            cold = subprocess.run(
                [sys.executable, ANALYZER, "--root", TESTDATA,
                 "--frontend", "builtin", "--cache-dir", tmp, "--stats",
                 "bad"],
                capture_output=True, text=True, check=False)
            self.assertTrue(os.listdir(tmp), "cache stayed empty")
            warm = subprocess.run(
                [sys.executable, ANALYZER, "--root", TESTDATA,
                 "--frontend", "builtin", "--cache-dir", tmp, "--stats",
                 "bad"],
                capture_output=True, text=True, check=False)
        self.assertEqual(cold.stdout, warm.stdout)
        self.assertEqual(cold.returncode, warm.returncode)
        self.assertIn("cache_hits=6", warm.stderr, warm.stderr)

    def test_missing_path_is_a_usage_error(self):
        code, _out, _err = run_check("no/such/dir")
        self.assertEqual(code, 2)

    def test_list_rules(self):
        proc = subprocess.run(
            [sys.executable, ANALYZER, "--list-rules"],
            capture_output=True, text=True, check=False)
        self.assertEqual(proc.returncode, 0)
        self.assertEqual(
            proc.stdout.split(),
            ["lock-order", "view-escape", "snapshot-discipline",
             "cancel-poll", "bounded-alloc", "bare-allow"])

    def test_real_tree_is_clean(self):
        # The repo's own sources must satisfy the rules the repo ships,
        # and every allow tag must carry a justification (bare-allow).
        code, out, _err = run_check("src", root=REPO_ROOT)
        self.assertEqual(code, 0, out)

    def test_clang_frontend_matches_builtin(self):
        # The clang frontend refines the builtin facts with compiler-
        # accurate function inventories; findings on the real tree must
        # agree between the two. Needs clang++ plus a compilation
        # database (the CI static-analysis job has both).
        clang = shutil.which("clang++")
        build_dir = os.environ.get("GDELT_ASTCHECK_BUILD_DIR",
                                   os.path.join(REPO_ROOT, "build-tidy"))
        db = os.path.join(build_dir, "compile_commands.json")
        if clang is None or not os.path.isfile(db):
            print("SKIPPED: requires clang++ and compile_commands.json")
            return
        proc = subprocess.run(
            [sys.executable, ANALYZER, "--root", REPO_ROOT,
             "--frontend", "clang", "--build-dir", build_dir,
             "--no-cache", "src"],
            capture_output=True, text=True, check=False)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)


if __name__ == "__main__":
    unittest.main()
