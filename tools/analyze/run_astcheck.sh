#!/usr/bin/env bash
# Diff-aware driver for the gdelt_astcheck semantic analyzer, matching
# run_clang_tidy.sh semantics so the CI job (and muscle memory) treat
# the two walls identically.
#
# Usage:
#   tools/analyze/run_astcheck.sh [options] [-- <extra analyzer args>]
#
# Options:
#   --build-dir DIR   build tree with compile_commands.json; enables the
#                     clang frontend and hosts the AST-facts cache
#                     (default: build)
#   --base REF        analyze only src/ files changed since merge-base
#                     with REF (default mode; REF defaults to
#                     origin/main, falling back to main, then HEAD~1).
#                     Note: lock-order is a whole-program graph, so the
#                     diff mode analyzes the full tree whenever any
#                     lock-bearing file changed; other rules are
#                     per-file and honor the narrow file list.
#   --all             analyze every tracked src/ source and header
#   --require         fail (exit 2) if python3 is missing; the default
#                     is a clearly-labelled skip. CI passes --require.
#
# Exit codes: 0 clean (or skipped), 1 findings, 2 environment error.
set -u -o pipefail

cd "$(git -C "$(dirname "$0")" rev-parse --show-toplevel 2>/dev/null || dirname "$0")" || exit 2

BUILD_DIR=build
BASE_REF=""
ALL=0
REQUIRE=0
EXTRA_ARGS=()
while [ $# -gt 0 ]; do
  case "$1" in
    --build-dir) BUILD_DIR=$2; shift 2 ;;
    --base) BASE_REF=$2; shift 2 ;;
    --all) ALL=1; shift ;;
    --require) REQUIRE=1; shift ;;
    --) shift; EXTRA_ARGS=("$@"); break ;;
    *) echo "unknown option: $1" >&2; exit 2 ;;
  esac
done

if ! command -v python3 > /dev/null 2>&1; then
  if [ "$REQUIRE" = 1 ]; then
    echo "run_astcheck: python3 not found and --require given" >&2
    exit 2
  fi
  echo "run_astcheck: SKIPPED — python3 not installed"
  exit 0
fi

ANALYZER=tools/analyze/gdelt_astcheck.py
COMMON=(--build-dir "$BUILD_DIR")

# Select the files to analyze. Unlike clang-tidy, headers are analyzed
# directly (the builtin frontend needs no compilation database entry).
FILES=()
if [ "$ALL" = 1 ]; then
  while IFS= read -r f; do FILES+=("$f"); done \
    < <(git ls-files 'src/**/*.cpp' 'src/*.cpp' 'src/**/*.hpp' 'src/*.hpp')
else
  if [ -z "$BASE_REF" ]; then
    for ref in origin/main main 'HEAD~1'; do
      if git rev-parse --verify --quiet "$ref" > /dev/null; then
        BASE_REF=$ref
        break
      fi
    done
  fi
  MERGE_BASE=$(git merge-base "$BASE_REF" HEAD 2>/dev/null || echo "$BASE_REF")
  while IFS= read -r f; do
    case "$f" in
      src/*.cpp | src/*/*.cpp | src/*.hpp | src/*/*.hpp)
        [ -f "$f" ] && FILES+=("$f") ;;
    esac
  done < <(git diff --name-only "$MERGE_BASE" HEAD; git diff --name-only)
fi

if [ ${#FILES[@]} -eq 0 ]; then
  echo "run_astcheck: no source files to analyze (clean diff)"
  exit 0
fi

# Lock-order and interprocedural call summaries need the whole tree; a
# narrowed run would miss cross-file inversions. The facts cache in
# $BUILD_DIR/astcheck-cache makes the widened run cheap: only changed
# files re-parse; everything else is a content-hash hit.
if [ "$ALL" != 1 ]; then
  for f in "${FILES[@]}"; do
    if grep -q 'sync::MutexLock' "$f" 2>/dev/null; then
      echo "run_astcheck: $f holds locks — widening to the full tree" \
           "for the acquisition graph (cache keeps this cheap)"
      FILES=()
      break
    fi
  done
fi

if [ ${#FILES[@]} -eq 0 ]; then
  python3 "$ANALYZER" "${COMMON[@]}" "${EXTRA_ARGS[@]}" src
  STATUS=$?
else
  echo "run_astcheck: ${#FILES[@]} changed file(s)"
  python3 "$ANALYZER" "${COMMON[@]}" "${EXTRA_ARGS[@]}" "${FILES[@]}"
  STATUS=$?
fi

if [ "$STATUS" = 0 ]; then
  echo "run_astcheck: clean"
elif [ "$STATUS" = 1 ]; then
  echo "run_astcheck: findings above must be fixed or suppressed with a justified allow tag" >&2
fi
exit $STATUS
