// Lightweight span-based tracing for query-stage attribution.
//
// The paper's headline numbers are all measurements (Fig 12 scaling,
// Table VIII percentiles, per-query wall times); serving those workloads
// to real users needs the inverse capability — given one slow request,
// say which stage ate the time (filter, index build, kernel, render).
// This module provides that in the same shape as the io/fault hooks: a
// process-wide singleton whose hooks cost one relaxed atomic load when
// disarmed, so the instrumentation can stay compiled into production
// binaries.
//
// Three consumers sit on top:
//   * `TRACE_SPAN("coreport.merge")` RAII scopes in the engine/analysis/
//     convert/serve paths record {name, start, duration, thread, depth}
//     into a bounded, mutex-guarded ring buffer plus per-name aggregates.
//   * `WriteChromeTrace(path)` dumps the ring as Chrome `trace_event`
//     JSON (chrome://tracing, Perfetto) for flame-graph viewing
//     (`gdelt_serve --trace-dir`, `gdelt_query --trace-out`).
//   * `Aggregates()` feeds the Prometheus exposition of `metrics_prom`.
//
// Per-request stage breakdowns use `Collector`: a thread-local sink that
// captures every span finished on its thread while in scope, regardless
// of the global enable flag. The serve worker installs one around a
// request when the client asked for `"trace": true`, so one request can
// be attributed without turning tracing on for the whole process.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.hpp"

namespace gdelt::trace {

using Clock = std::chrono::steady_clock;

/// One finished span. Timestamps are microseconds since the tracer's
/// process-wide epoch (first use), so records from all threads share one
/// timeline.
struct SpanRecord {
  std::string name;
  std::uint64_t start_us = 0;
  std::uint64_t dur_us = 0;
  std::uint32_t tid = 0;    ///< small sequential thread id
  std::uint16_t depth = 0;  ///< nesting depth on its thread at start
};

/// Per-name aggregate over every span recorded while enabled.
struct SpanAggregate {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_us = 0;
  std::uint64_t max_us = 0;
};

/// Whether global tracing is armed. A single relaxed load — the only cost
/// a TRACE_SPAN pays on the hot path when tracing is off and no
/// per-request Collector is active.
bool Enabled() noexcept;
void SetEnabled(bool on) noexcept;

/// Ring capacity in spans (default 1 << 16). Resets the ring.
void SetRingCapacity(std::size_t spans);

/// Records a completed span given explicit endpoints. Used for stages
/// whose start lives on another thread (admission-queue wait: enqueued on
/// the connection thread, dequeued on a worker).
void RecordManual(std::string_view name, Clock::time_point start,
                  Clock::time_point end);

/// Spans recorded / dropped (ring overwrites) since the last reset.
std::uint64_t RecordedCount() noexcept;

/// Snapshot of the span ring, oldest first.
std::vector<SpanRecord> RingSnapshot();

/// Snapshot of the per-name aggregates, name-sorted.
std::vector<SpanAggregate> Aggregates();

/// Clears the ring and the aggregates (tests, between benchmark phases).
void Reset();

/// Writes the ring as a Chrome trace_event JSON file (crash-safe write).
Status WriteChromeTrace(const std::string& path);

/// Thread-local per-request span sink; see file comment. Nesting
/// collectors on one thread restores the outer one on scope exit.
class Collector {
 public:
  Collector();
  ~Collector();
  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  /// Spans finished on this thread while this collector was innermost.
  const std::vector<SpanRecord>& spans() const noexcept { return spans_; }
  std::vector<SpanRecord>& mutable_spans() noexcept { return spans_; }

  /// The innermost collector on the calling thread, or nullptr.
  static Collector* Current() noexcept;

 private:
  Collector* previous_ = nullptr;
  std::vector<SpanRecord> spans_;
};

namespace detail {
/// Slow path: records the finished span into the ring/aggregates (if
/// enabled) and the calling thread's collector (if any).
void FinishSpan(const char* name, Clock::time_point start,
                std::uint16_t depth);
int& ThreadDepth() noexcept;
}  // namespace detail

/// RAII span. Construction is a relaxed load + thread-local read when
/// tracing is off; everything else happens only while armed.
class Span {
 public:
  explicit Span(const char* name) noexcept {
    if (Enabled() || Collector::Current() != nullptr) {
      name_ = name;
      start_ = Clock::now();
      depth_ = static_cast<std::uint16_t>(detail::ThreadDepth()++);
    }
  }
  ~Span() { Finish(); }

  /// Ends the span before scope exit (phase spans in long functions).
  /// Idempotent; the destructor becomes a no-op afterwards.
  void Finish() noexcept {
    if (name_ != nullptr) {
      --detail::ThreadDepth();
      detail::FinishSpan(name_, start_, depth_);
      name_ = nullptr;
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;  ///< nullptr = disarmed at construction
  Clock::time_point start_{};
  std::uint16_t depth_ = 0;
};

#define GDELT_TRACE_CONCAT2(a, b) a##b
#define GDELT_TRACE_CONCAT(a, b) GDELT_TRACE_CONCAT2(a, b)

/// Opens a span covering the rest of the enclosing scope. `name` must be
/// a string literal (it is stored as a pointer until the span finishes).
#define TRACE_SPAN(name) \
  ::gdelt::trace::Span GDELT_TRACE_CONCAT(gdelt_trace_span_, __LINE__)(name)

}  // namespace gdelt::trace
