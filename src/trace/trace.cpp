#include "trace/trace.hpp"

#include <algorithm>
#include <map>

#include "io/file.hpp"
#include "util/strings.hpp"
#include "util/sync.hpp"

namespace gdelt::trace {
namespace {

struct Agg {
  std::uint64_t count = 0;
  std::uint64_t total_us = 0;
  std::uint64_t max_us = 0;
};

/// All mutable tracer state. One mutex guards the ring and the
/// aggregates: recording is a handful of integer stores next to spans
/// that are themselves microseconds long, so contention is irrelevant at
/// span granularity (the disabled path never takes the lock).
class Tracer {
 public:
  static Tracer& Get() {
    static Tracer tracer;
    return tracer;
  }

  Clock::time_point epoch() const noexcept { return epoch_; }

  void Record(std::string_view name, std::uint64_t start_us,
              std::uint64_t dur_us, std::uint32_t tid, std::uint16_t depth) {
    sync::MutexLock lock(mu_);
    Agg& agg = aggregates_[std::string(name)];
    ++agg.count;
    agg.total_us += dur_us;
    agg.max_us = std::max(agg.max_us, dur_us);
    if (ring_.size() < capacity_) {
      ring_.push_back({std::string(name), start_us, dur_us, tid, depth});
    } else {
      ring_[next_ % capacity_] =
          {std::string(name), start_us, dur_us, tid, depth};
    }
    ++next_;
    ++recorded_;
  }

  void SetCapacity(std::size_t spans) {
    sync::MutexLock lock(mu_);
    capacity_ = std::max<std::size_t>(1, spans);
    ring_.clear();
    ring_.shrink_to_fit();
    next_ = 0;
  }

  std::vector<SpanRecord> Snapshot() const {
    sync::MutexLock lock(mu_);
    std::vector<SpanRecord> out;
    out.reserve(ring_.size());
    // Oldest first: the slot at next_ % capacity_ is the oldest once the
    // ring has wrapped.
    const std::size_t n = ring_.size();
    const std::size_t first = next_ >= capacity_ ? next_ % capacity_ : 0;
    for (std::size_t k = 0; k < n; ++k) {
      out.push_back(ring_[(first + k) % n]);
    }
    return out;
  }

  std::vector<SpanAggregate> AggregateSnapshot() const {
    sync::MutexLock lock(mu_);
    std::vector<SpanAggregate> out;
    out.reserve(aggregates_.size());
    for (const auto& [name, agg] : aggregates_) {
      out.push_back({name, agg.count, agg.total_us, agg.max_us});
    }
    return out;
  }

  std::uint64_t recorded() const noexcept {
    sync::MutexLock lock(mu_);
    return recorded_;
  }

  void Reset() {
    sync::MutexLock lock(mu_);
    ring_.clear();
    next_ = 0;
    recorded_ = 0;
    aggregates_.clear();
  }

  std::atomic<bool> enabled{false};
  std::atomic<std::uint32_t> next_tid{0};

 private:
  Tracer() : epoch_(Clock::now()) {}

  const Clock::time_point epoch_;
  mutable sync::Mutex mu_;
  std::size_t capacity_ GDELT_GUARDED_BY(mu_) = 1 << 16;
  std::vector<SpanRecord> ring_ GDELT_GUARDED_BY(mu_);
  /// total pushes; next_ % capacity_ = slot
  std::size_t next_ GDELT_GUARDED_BY(mu_) = 0;
  std::uint64_t recorded_ GDELT_GUARDED_BY(mu_) = 0;
  std::map<std::string, Agg> aggregates_ GDELT_GUARDED_BY(mu_);
};

std::uint32_t ThisThreadId() {
  thread_local const std::uint32_t tid =
      Tracer::Get().next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

std::uint64_t MicrosSinceEpoch(Clock::time_point t) {
  const auto d = t - Tracer::Get().epoch();
  return d.count() <= 0
             ? 0
             : static_cast<std::uint64_t>(
                   std::chrono::duration_cast<std::chrono::microseconds>(d)
                       .count());
}

thread_local Collector* tl_collector = nullptr;
thread_local int tl_depth = 0;

}  // namespace

bool Enabled() noexcept {
  return Tracer::Get().enabled.load(std::memory_order_relaxed);
}

void SetEnabled(bool on) noexcept {
  Tracer::Get().enabled.store(on, std::memory_order_relaxed);
}

void SetRingCapacity(std::size_t spans) { Tracer::Get().SetCapacity(spans); }

void RecordManual(std::string_view name, Clock::time_point start,
                  Clock::time_point end) {
  if (end < start) end = start;
  const std::uint64_t start_us = MicrosSinceEpoch(start);
  const auto dur_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(end - start)
          .count());
  const std::uint32_t tid = ThisThreadId();
  const auto depth = static_cast<std::uint16_t>(tl_depth);
  if (Enabled()) {
    Tracer::Get().Record(name, start_us, dur_us, tid, depth);
  }
  if (tl_collector != nullptr) {
    tl_collector->mutable_spans().push_back(
        {std::string(name), start_us, dur_us, tid, depth});
  }
}

std::uint64_t RecordedCount() noexcept { return Tracer::Get().recorded(); }

std::vector<SpanRecord> RingSnapshot() { return Tracer::Get().Snapshot(); }

std::vector<SpanAggregate> Aggregates() {
  return Tracer::Get().AggregateSnapshot();
}

void Reset() { Tracer::Get().Reset(); }

Status WriteChromeTrace(const std::string& path) {
  const auto spans = RingSnapshot();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& span : spans) {
    if (!first) out += ",";
    first = false;
    // Complete events ("ph":"X") with microsecond timestamps — the
    // format chrome://tracing and Perfetto ingest directly.
    out += "{\"name\":\"";
    for (const char c : span.name) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += StrFormat("\",\"ph\":\"X\",\"ts\":%llu,\"dur\":%llu,"
                     "\"pid\":0,\"tid\":%u,\"args\":{\"depth\":%u}}",
                     static_cast<unsigned long long>(span.start_us),
                     static_cast<unsigned long long>(span.dur_us), span.tid,
                     static_cast<unsigned>(span.depth));
  }
  out += "]}\n";
  return WriteWholeFileAtomic(path, out);
}

Collector::Collector() {
  previous_ = tl_collector;
  tl_collector = this;
}

Collector::~Collector() { tl_collector = previous_; }

Collector* Collector::Current() noexcept { return tl_collector; }

namespace detail {

void FinishSpan(const char* name, Clock::time_point start,
                std::uint16_t depth) {
  const Clock::time_point end = Clock::now();
  const std::uint64_t start_us = MicrosSinceEpoch(start);
  const auto dur_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(end - start)
          .count());
  const std::uint32_t tid = ThisThreadId();
  if (Enabled()) {
    Tracer::Get().Record(name, start_us, dur_us, tid, depth);
  }
  if (tl_collector != nullptr) {
    tl_collector->mutable_spans().push_back(
        {name, start_us, dur_us, tid, depth});
  }
}

int& ThreadDepth() noexcept { return tl_depth; }

}  // namespace detail
}  // namespace gdelt::trace
