// Zero-copy parsing of GDELT's tab-separated files.
//
// GDELT 2.0 files carry a ".CSV" extension but are tab-delimited with no
// quoting and one record per line. Parsing them reduces to line splitting
// plus field splitting; both are done on string_views over the raw buffer
// so conversion of a multi-GB chunk does not allocate per row.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "util/status.hpp"

namespace gdelt {

/// Iterates lines of a buffer, handling "\n" and "\r\n" endings and a
/// missing final newline.
class LineIterator {
 public:
  explicit LineIterator(std::string_view buffer) noexcept
      : buffer_(buffer) {}

  /// Returns false when the buffer is exhausted; otherwise fills `line`
  /// (without the terminator) and advances.
  bool Next(std::string_view& line) noexcept {
    if (pos_ >= buffer_.size()) return false;
    const auto nl = buffer_.find('\n', pos_);
    std::size_t end = nl == std::string_view::npos ? buffer_.size() : nl;
    std::size_t next = nl == std::string_view::npos ? buffer_.size() : nl + 1;
    if (end > pos_ && buffer_[end - 1] == '\r') --end;
    line = buffer_.substr(pos_, end - pos_);
    pos_ = next;
    return true;
  }

  /// Byte offset of the next unread character.
  std::size_t position() const noexcept { return pos_; }

 private:
  std::string_view buffer_;
  std::size_t pos_ = 0;
};

/// One malformed input line, reported by RowReader.
struct RowError {
  std::uint64_t line_number = 0;  ///< 1-based
  std::string message;
};

/// Streams fixed-width TSV rows out of a buffer, collecting rows with the
/// wrong column count as errors instead of aborting — the preprocessing
/// tool counts these toward the Table II defect statistics.
class RowReader {
 public:
  /// `expected_fields` is the schema's column count.
  RowReader(std::string_view buffer, std::size_t expected_fields) noexcept
      : lines_(buffer), expected_fields_(expected_fields) {}

  /// Advances to the next well-formed row; its fields alias the buffer and
  /// stay valid until the next call. Returns false at end of input.
  bool Next(const std::vector<std::string_view>*& fields);

  const std::vector<RowError>& errors() const noexcept { return errors_; }
  std::uint64_t rows_read() const noexcept { return rows_read_; }
  std::uint64_t line_number() const noexcept { return line_number_; }

 private:
  LineIterator lines_;
  std::size_t expected_fields_;
  std::vector<std::string_view> fields_;
  std::vector<RowError> errors_;
  std::uint64_t rows_read_ = 0;
  std::uint64_t line_number_ = 0;
};

/// Serializes one row as tab-separated text plus newline (generator side).
void AppendTsvRow(std::string& out,
                  const std::vector<std::string_view>& fields);

}  // namespace gdelt
