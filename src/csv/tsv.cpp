#include "csv/tsv.hpp"

#include "util/strings.hpp"

namespace gdelt {

bool RowReader::Next(const std::vector<std::string_view>*& fields) {
  std::string_view line;
  while (lines_.Next(line)) {
    ++line_number_;
    if (line.empty()) continue;  // tolerate blank lines / trailing newline
    SplitInto(line, '\t', fields_);
    if (fields_.size() != expected_fields_) {
      errors_.push_back(
          {line_number_,
           StrFormat("expected %zu fields, got %zu", expected_fields_,
                     fields_.size())});
      continue;
    }
    ++rows_read_;
    fields = &fields_;
    return true;
  }
  return false;
}

void AppendTsvRow(std::string& out,
                  const std::vector<std::string_view>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out += '\t';
    out += fields[i];
  }
  out += '\n';
}

}  // namespace gdelt
