#include "parallel/morsel.hpp"

#include <algorithm>
#include <cstdlib>

namespace gdelt::parallel {
namespace {

std::size_t ReadMorselRowsEnv() {
  const char* env = std::getenv("GDELT_MORSEL_ROWS");
  if (env == nullptr || *env == '\0') return kDefaultMorselRows;
  char* end = nullptr;
  const long long v = std::strtoll(env, &end, 10);
  if (end == env || v <= 0) return kDefaultMorselRows;
  return std::clamp<std::size_t>(static_cast<std::size_t>(v), 64,
                                 std::size_t{1} << 22);
}

/// Submission priority of the calling thread (ScopedPriority).
thread_local Priority tls_priority = Priority::kBatch;

/// Pool this thread is currently executing a morsel for (worker thread,
/// or a caller draining its own job), and the scratch slot it holds.
/// A ParallelFor re-entered from inside a body of the *same* pool runs
/// inline on this slot instead of deadlocking on its own job.
thread_local const MorselPool* tls_pool = nullptr;
thread_local std::size_t tls_slot = 0;

}  // namespace

/// Bench override; 0 = none (use the latched env value).
std::atomic<std::size_t> g_morsel_rows_override{0};

std::size_t MorselRows() noexcept {
  const std::size_t override_rows =
      g_morsel_rows_override.load(std::memory_order_relaxed);
  if (override_rows != 0) return override_rows;
  static const std::size_t rows = ReadMorselRowsEnv();
  return rows;
}

void SetMorselRows(std::size_t rows) noexcept {
  g_morsel_rows_override.store(
      rows == 0 ? 0
                : std::clamp<std::size_t>(rows, 64, std::size_t{1} << 22),
      std::memory_order_relaxed);
}

ScopedPriority::ScopedPriority(Priority p) noexcept : previous_(tls_priority) {
  tls_priority = p;
}

ScopedPriority::~ScopedPriority() { tls_priority = previous_; }

Priority ScopedPriority::Current() noexcept { return tls_priority; }

// ---------------------------------------------------------------------------
// Pool internals
// ---------------------------------------------------------------------------

/// One submitted ParallelFor: the body plus completion accounting.
struct MorselPool::Job {
  std::function<void(IndexRange, std::size_t)> body;
  Priority priority = Priority::kBatch;
  /// Polled before each morsel body; cancelled jobs drain their queued
  /// morsels as skips so `remaining` always reaches zero exactly once.
  const util::CancelToken* cancel = nullptr;
  sync::Mutex mu;
  sync::CondVar done_cv;
  std::size_t remaining GDELT_GUARDED_BY(mu) = 0;
};

/// One morsel of one job: a contiguous row range.
struct MorselPool::Run {
  std::shared_ptr<Job> job;
  IndexRange range;
};

/// Per-worker state. Lock order: a deque lock may be held while taking
/// the pool-wide mu_ (take accounting), never the reverse, and no two
/// deque locks are ever held at once (steal-half releases the victim's
/// before touching the thief's).
struct MorselPool::Worker {
  sync::Mutex mu;
  /// One deque per priority class; index = static_cast<size_t>(Priority).
  std::deque<Run> deques[2] GDELT_GUARDED_BY(mu);
};

MorselPool::MorselPool(int workers) {
  std::size_t w = workers > 0 ? static_cast<std::size_t>(workers)
                              : static_cast<std::size_t>(
                                    std::max(1, gdelt::MaxThreads()));
  workers_.reserve(w);
  for (std::size_t i = 0; i < w; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  // Non-worker callers drain their own jobs, so they need scratch slots
  // too; a small fixed pool bounds partial-array sizes while letting a
  // few concurrent queries overlap. Slot ids: [0, w) workers, the rest
  // callers.
  const std::size_t caller_slots = std::max<std::size_t>(2, w);
  slots_ = w + caller_slots;
  {
    sync::MutexLock lock(mu_);
    for (std::size_t s = w; s < slots_; ++s) caller_slots_.push_back(s);
  }
  threads_.reserve(w);
  for (std::size_t i = 0; i < w; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

MorselPool::~MorselPool() { Shutdown(); }

MorselPool& MorselPool::Shared() {
  static MorselPool* pool = new MorselPool(0);  // leaked: outlives exit paths
  return *pool;
}

void PoolParallelFor(std::size_t n,
                     const std::function<void(IndexRange, std::size_t)>& body,
                     std::size_t morsel_rows, const util::CancelToken* cancel) {
  MorselPool::Shared().ParallelFor(n, body, morsel_rows, cancel);
}

std::size_t PoolSlots() noexcept { return MorselPool::Shared().num_slots(); }

bool MorselPool::ParallelFor(
    std::size_t n, const std::function<void(IndexRange, std::size_t)>& body,
    std::size_t morsel_rows, const util::CancelToken* cancel) {
  if (n == 0) return true;
  const std::size_t rows = morsel_rows > 0 ? morsel_rows : MorselRows();

  // Nested call from inside a morsel of this very pool: run serially on
  // the slot the thread already holds. Queuing instead would deadlock a
  // 1-worker pool (the worker would wait on work only it can execute).
  if (tls_pool == this) {
    RunInline(n, body, rows, tls_slot, cancel);
    sync::MutexLock lock(mu_);
    ++inline_jobs_;
    return true;
  }

  const std::size_t num_morsels = (n + rows - 1) / rows;
  const std::size_t W = workers_.size();

  // Single-morsel jobs skip distribution entirely: the caller runs the
  // one range itself (a point query must not wait behind deque traffic).
  if (num_morsels == 1 || W == 0) {
    const std::size_t slot = AcquireCallerSlot();
    RunInline(n, body, rows, slot, cancel);
    ReleaseCallerSlot(slot);
    sync::MutexLock lock(mu_);
    ++jobs_;
    return true;
  }

  auto job = std::make_shared<Job>();
  job->body = body;
  job->priority = ScopedPriority::Current();
  job->cancel = cancel;
  {
    sync::MutexLock lock(job->mu);
    job->remaining = num_morsels;
  }

  bool admitted = false;
  {
    sync::MutexLock lock(mu_);
    if (shutting_down_) {
      ++inline_jobs_;
    } else {
      ++jobs_;
      admitted = true;
    }
  }
  if (!admitted) {
    // Pool is going away; honor the call anyway (all-or-nothing: the
    // job still runs to completion, just not on the pool).
    const std::size_t slot = AcquireCallerSlot();
    RunInline(n, body, rows, slot, cancel);
    ReleaseCallerSlot(slot);
    return false;
  }

  // Distribute morsels round-robin across worker deques (contiguous
  // ranges; determinism comes from slot-ordered merges, not placement).
  const std::size_t pri = static_cast<std::size_t>(job->priority);
  for (std::size_t m = 0; m < num_morsels; ++m) {
    const std::size_t begin = m * rows;
    const std::size_t end = std::min(n, begin + rows);
    Worker& worker = *workers_[m % W];
    sync::MutexLock lock(worker.mu);
    worker.deques[pri].push_back(Run{job, IndexRange{begin, end}});
  }
  {
    sync::MutexLock lock(mu_);
    queued_ += static_cast<std::int64_t>(num_morsels);
    if (sleepers_ > 0) work_cv_.NotifyAll();
  }

  // The caller participates: it drains queued runs of its own job (any
  // deque), then waits for in-flight morsels to finish on the workers.
  const std::size_t slot = AcquireCallerSlot();
  const MorselPool* saved_pool = tls_pool;
  const std::size_t saved_slot = tls_slot;
  tls_pool = this;
  tls_slot = slot;
  Run run;
  while (TakeJobRun(job.get(), run)) Execute(run, slot);
  tls_pool = saved_pool;
  tls_slot = saved_slot;
  ReleaseCallerSlot(slot);
  {
    sync::MutexLock lock(job->mu);
    while (job->remaining > 0) job->done_cv.Wait(job->mu);
  }
  return true;
}

void MorselPool::RunInline(
    std::size_t n, const std::function<void(IndexRange, std::size_t)>& body,
    std::size_t morsel_rows, std::size_t slot,
    const util::CancelToken* cancel) {
  const MorselPool* saved_pool = tls_pool;
  const std::size_t saved_slot = tls_slot;
  tls_pool = this;
  tls_slot = slot;
  for (std::size_t begin = 0; begin < n; begin += morsel_rows) {
    if (util::Cancelled(cancel)) {
      morsels_skipped_.fetch_add(1, std::memory_order_relaxed);
      continue;  // keep counting skips so stats reflect the saved work
    }
    body(IndexRange{begin, std::min(n, begin + morsel_rows)}, slot);
    morsels_.fetch_add(1, std::memory_order_relaxed);
  }
  tls_pool = saved_pool;
  tls_slot = saved_slot;
}

void MorselPool::Execute(const Run& run, std::size_t slot) {
  // A cancelled job's queued morsels become skips; `remaining` still
  // counts down so the job completes exactly once, and the enforcement
  // boundary above the pool discards the (partial) result.
  if (util::Cancelled(run.job->cancel)) {
    morsels_skipped_.fetch_add(1, std::memory_order_relaxed);
  } else {
    run.job->body(run.range, slot);
    morsels_.fetch_add(1, std::memory_order_relaxed);
  }
  sync::MutexLock lock(run.job->mu);
  if (--run.job->remaining == 0) run.job->done_cv.NotifyAll();
}

bool MorselPool::TakeRun(std::size_t w, Run& out) {
  Worker& self = *workers_[w];
  {
    // Own deques: newest first (LIFO keeps the working set warm),
    // interactive before batch.
    sync::MutexLock lock(self.mu);
    for (auto& dq : self.deques) {
      if (!dq.empty()) {
        out = std::move(dq.back());
        dq.pop_back();
        sync::MutexLock pool_lock(mu_);
        --queued_;
        return true;
      }
    }
  }
  return StealInto(w, out);
}

bool MorselPool::StealInto(std::size_t thief, Run& out) {
  const std::size_t W = workers_.size();
  // Interactive work anywhere beats batch work anywhere.
  for (std::size_t pri = 0; pri < 2; ++pri) {
    for (std::size_t k = 1; k < W; ++k) {
      Worker& victim = *workers_[(thief + k) % W];
      std::vector<Run> loot;
      {
        sync::MutexLock lock(victim.mu);
        auto& dq = victim.deques[pri];
        if (dq.empty()) continue;
        // Steal the front half (oldest morsels; the victim keeps the
        // back, which is what it pops next — minimal interference).
        const std::size_t take = (dq.size() + 1) / 2;
        loot.reserve(take);
        for (std::size_t i = 0; i < take; ++i) {
          loot.push_back(std::move(dq.front()));
          dq.pop_front();
        }
      }
      steals_.fetch_add(loot.size(), std::memory_order_relaxed);
      // Thief executes the first stolen run; the rest go to its deque.
      out = std::move(loot.front());
      if (loot.size() > 1) {
        Worker& self = *workers_[thief];
        sync::MutexLock lock(self.mu);
        for (std::size_t i = 1; i < loot.size(); ++i) {
          self.deques[pri].push_back(std::move(loot[i]));
        }
      }
      sync::MutexLock pool_lock(mu_);
      --queued_;
      return true;
    }
  }
  return false;
}

bool MorselPool::TakeJobRun(const Job* job, Run& out) {
  for (auto& worker : workers_) {
    sync::MutexLock lock(worker->mu);
    auto& dq = worker->deques[static_cast<std::size_t>(job->priority)];
    for (auto it = dq.begin(); it != dq.end(); ++it) {
      if (it->job.get() != job) continue;
      out = std::move(*it);
      dq.erase(it);
      sync::MutexLock pool_lock(mu_);
      --queued_;
      return true;
    }
  }
  return false;
}

void MorselPool::WorkerLoop(std::size_t w) {
  tls_pool = this;
  tls_slot = w;  // worker w owns scratch slot w for its whole life
  Run run;
  for (;;) {
    if (TakeRun(w, run)) {
      Execute(run, w);
      run = Run{};  // drop the job reference promptly
      continue;
    }
    {
      sync::MutexLock lock(mu_);
      if (queued_ > 0) {
        // Work was pushed between the failed take and this lock, or a
        // take by another thread has not yet posted its decrement;
        // retry (briefly) rather than sleeping past it.
        continue;
      }
      if (shutting_down_) return;
      ++sleepers_;
      while (queued_ <= 0 && !shutting_down_) work_cv_.Wait(mu_);
      --sleepers_;
      if (shutting_down_ && queued_ <= 0) return;
    }
  }
}

std::size_t MorselPool::AcquireCallerSlot() {
  sync::MutexLock lock(mu_);
  while (caller_slots_.empty()) slot_cv_.Wait(mu_);
  const std::size_t slot = caller_slots_.back();
  caller_slots_.pop_back();
  return slot;
}

void MorselPool::ReleaseCallerSlot(std::size_t slot) {
  sync::MutexLock lock(mu_);
  caller_slots_.push_back(slot);
  slot_cv_.NotifyOne();
}

MorselPoolStats MorselPool::stats() const {
  MorselPoolStats s;
  {
    sync::MutexLock lock(mu_);
    s.jobs = jobs_;
    s.inline_jobs = inline_jobs_;
  }
  s.morsels = morsels_.load(std::memory_order_relaxed);
  s.steals = steals_.load(std::memory_order_relaxed);
  s.morsels_skipped = morsels_skipped_.load(std::memory_order_relaxed);
  return s;
}

void MorselPool::Shutdown() {
  {
    sync::MutexLock lock(mu_);
    shutting_down_ = true;
    work_cv_.NotifyAll();
  }
  // join_mu_ serializes concurrent Shutdown calls so no two threads join
  // the same std::thread (same fix as serve::Scheduler::Drain). It is
  // never taken while holding mu_ or a deque lock.
  sync::MutexLock join_lock(join_mu_);
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

}  // namespace gdelt::parallel
