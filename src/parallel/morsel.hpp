// Morsel-driven work-stealing execution (cf. HyPer's morsel model and
// RegionsMT's thread pool).
//
// The OpenMP wrappers in parallel.hpp give each kernel a private thread
// team: under the serve layer that means one saturating co-reporting
// query owns its whole team while a point query queues behind it. The
// MorselPool replaces per-query teams with one shared set of workers.
// A job is split into fixed-size row-range *morsels* (default
// kDefaultMorselRows rows, override with GDELT_MORSEL_ROWS); each worker
// owns a deque per priority class and steals the front half of a
// victim's deque when its own runs dry, so load balance emerges without
// a central queue on the hot path.
//
// Two priority classes exist so a small interactive query submitted
// while a big batch query is in flight gets its morsels drained first:
// workers always pop/steal kInteractive morsels before kBatch ones.
// Submitters tag work via ScopedPriority (thread-local, so the serve
// scheduler can wrap an entire query handler).
//
// Determinism: ParallelFor(job) partitions [0, n) into contiguous
// morsels and the per-slot reduction helpers merge partials in slot
// order, so results are bitwise identical regardless of which worker
// ran which morsel (integer sums commute; float-producing kernels
// confine their non-commutative math to a single morsel).
//
// Locking discipline (PR 5): every mutex is a sync::Mutex annotated for
// Clang TSA. Per-worker deque locks are leaves (never held while taking
// another lock); the pool-wide mu_ serializes sleep/wake and shutdown.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "parallel/parallel.hpp"  // IndexRange
#include "util/cancel.hpp"
#include "util/sync.hpp"

namespace gdelt::parallel {

/// Priority class for submitted work. Workers drain kInteractive morsels
/// before kBatch morsels, both when popping their own deque and when
/// choosing what to steal.
enum class Priority : std::uint8_t { kInteractive = 0, kBatch = 1 };

/// Execution backend for the migrated aggregate kernels: the shared
/// morsel pool (default) or the legacy per-query OpenMP team, kept as
/// the scheduling ablation baseline and the golden-equivalence
/// reference (every kernel produces bitwise-identical results on both).
enum class Backend : std::uint8_t { kMorselPool, kOpenMp };

/// Default rows per morsel. Small enough that a saturating batch job
/// reaches a priority/steal decision point every few hundred
/// microseconds; large enough to amortize deque traffic. Override per
/// process with GDELT_MORSEL_ROWS (clamped to [64, 2^22]).
inline constexpr std::size_t kDefaultMorselRows = 16384;

/// Rows per morsel currently in effect: the SetMorselRows override if
/// one is active, else the GDELT_MORSEL_ROWS env value (read once), else
/// kDefaultMorselRows.
std::size_t MorselRows() noexcept;

/// Process-wide morsel-size override for benches sweeping the knob
/// in-process (the env variable is latched on first use). 0 restores the
/// env/default value; nonzero is clamped like the env value.
void SetMorselRows(std::size_t rows) noexcept;

/// RAII tag: work submitted by this thread while the tag lives uses the
/// given priority. Nests; restores the previous value on destruction.
class ScopedPriority {
 public:
  explicit ScopedPriority(Priority p) noexcept;
  ~ScopedPriority();
  ScopedPriority(const ScopedPriority&) = delete;
  ScopedPriority& operator=(const ScopedPriority&) = delete;

  /// The calling thread's current submission priority (kBatch default).
  static Priority Current() noexcept;

 private:
  Priority previous_;
};

/// Counters exposed for tests and the stats endpoint. Snapshot values;
/// monotonically increasing over the pool's lifetime.
struct MorselPoolStats {
  std::uint64_t jobs = 0;     ///< ParallelFor jobs completed.
  std::uint64_t morsels = 0;  ///< morsels executed.
  std::uint64_t steals = 0;   ///< morsels obtained by stealing.
  std::uint64_t inline_jobs = 0;  ///< jobs run inline (nested/shutdown).
  std::uint64_t morsels_skipped = 0;  ///< morsels dropped by cancellation.
};

/// Shared work-stealing pool. Thread-safe; one instance normally serves
/// the whole process (Shared()), but tests construct private pools.
class MorselPool {
 public:
  /// Spawns `workers` threads (<=0: one per hardware thread).
  explicit MorselPool(int workers = 0);
  ~MorselPool();

  MorselPool(const MorselPool&) = delete;
  MorselPool& operator=(const MorselPool&) = delete;

  /// Runs body(range, slot) over [0, n) split into contiguous morsels
  /// of `morsel_rows` rows (0 = MorselRows()). Blocks until every
  /// morsel completed. `slot` is a dense scratch index in
  /// [0, num_slots()): morsels of one job running concurrently always
  /// hold distinct slots, so per-slot scratch needs no further locking.
  /// The calling thread participates (it drains its own job), so the
  /// pool makes progress even with zero workers; calls from inside a
  /// worker run inline serially (no nested-pool deadlock). Returns
  /// false only when the pool is shutting down and the job was instead
  /// run inline on the caller.
  ///
  /// With a non-null `cancel`, each morsel polls the token before its
  /// body runs; once cancelled the remaining morsels of the job are
  /// skipped (counted in MorselPoolStats::morsels_skipped) but the job
  /// still completes exactly once — the call returns normally and the
  /// *caller* is responsible for discarding the partial result (the
  /// enforcement boundary re-checks the token; see util/cancel.hpp).
  bool ParallelFor(std::size_t n,
                   const std::function<void(IndexRange, std::size_t)>& body,
                   std::size_t morsel_rows = 0,
                   const util::CancelToken* cancel = nullptr);

  /// Deterministic sum over [0, n): per-slot partials of map(i) merged
  /// in slot order. T must be an integral type for bitwise determinism
  /// under stealing.
  template <typename T, typename Map>
  T Sum(std::size_t n, Map&& map) {
    std::vector<T> partials(num_slots(), T{});
    ParallelFor(n, [&](IndexRange r, std::size_t slot) {
      T local{};
      for (std::size_t i = r.begin; i < r.end; ++i) {
        local += map(i);
      }
      partials[slot] += local;
    });
    T total{};
    for (const T& p : partials) total += p;
    return total;
  }

  /// Upper bound on concurrently-held scratch slots (workers + callers).
  std::size_t num_slots() const noexcept { return slots_; }

  /// Number of dedicated worker threads.
  std::size_t num_workers() const noexcept { return workers_.size(); }

  MorselPoolStats stats() const;

  /// Stops admitting jobs, drains queued morsels, joins the workers.
  /// Idempotent; safe to race with ParallelFor (the invariant: every
  /// submitted job still runs to completion, inline if need be).
  void Shutdown();

  /// Process-wide pool, sized by gdelt::MaxThreads(), created on first
  /// use and shut down at exit.
  static MorselPool& Shared();

 private:
  struct Job;
  struct Run;  // one morsel of one job
  struct Worker;

  void WorkerLoop(std::size_t w);
  /// Pops local work or steals; false when none exists right now.
  bool TakeRun(std::size_t w, Run& out);
  bool StealInto(std::size_t thief, Run& out);
  /// Takes a queued run belonging to `job` from any deque (caller-drain).
  bool TakeJobRun(const Job* job, Run& out);
  void Execute(const Run& run, std::size_t slot);
  std::size_t AcquireCallerSlot();
  void ReleaseCallerSlot(std::size_t slot);
  /// Serial in-place execution (nested call or shutting-down pool).
  void RunInline(std::size_t n,
                 const std::function<void(IndexRange, std::size_t)>& body,
                 std::size_t morsel_rows, std::size_t slot,
                 const util::CancelToken* cancel);

  std::size_t slots_ = 1;
  std::vector<std::unique_ptr<Worker>> workers_;
  /// Written by the constructor before any concurrency, then only read
  /// and cleared under join_mu_ in Shutdown.
  std::vector<std::thread> threads_;
  /// Serializes the join section of concurrent Shutdown calls.
  sync::Mutex join_mu_;

  mutable sync::Mutex mu_;
  sync::CondVar work_cv_;  // signalled when queued_ rises
  sync::CondVar slot_cv_;  // signalled when a caller slot frees
  bool shutting_down_ GDELT_GUARDED_BY(mu_) = false;
  std::size_t sleepers_ GDELT_GUARDED_BY(mu_) = 0;
  /// Runs sitting in deques. Signed: a take may be observed before the
  /// matching push's increment (both are sub-critical-section ordered);
  /// the value is transiently negative then, never at rest.
  std::int64_t queued_ GDELT_GUARDED_BY(mu_) = 0;
  /// Free scratch slots for non-worker callers draining their own job.
  std::vector<std::size_t> caller_slots_ GDELT_GUARDED_BY(mu_);
  std::uint64_t jobs_ GDELT_GUARDED_BY(mu_) = 0;
  std::uint64_t inline_jobs_ GDELT_GUARDED_BY(mu_) = 0;
  std::atomic<std::uint64_t> morsels_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> morsels_skipped_{0};
};

/// Convenience: MorselPool::Shared().ParallelFor(...). Kernels migrated
/// off raw OpenMP call this; a kernel that must not touch the shared
/// pool (ablation baselines) keeps its omp pragma under an allow tag.
void PoolParallelFor(std::size_t n,
                     const std::function<void(IndexRange, std::size_t)>& body,
                     std::size_t morsel_rows = 0,
                     const util::CancelToken* cancel = nullptr);

/// Scratch-slot count of the shared pool (for sizing partial arrays).
std::size_t PoolSlots() noexcept;

}  // namespace gdelt::parallel
