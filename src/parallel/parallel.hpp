// OpenMP-based parallel primitives used by the query engine.
//
// The paper's system parallelizes its heaviest aggregated queries with
// OpenMP on a 64-core / 8-NUMA-node EPYC machine (Section IV, Figure 12).
// These wrappers centralize the chunking, reduction and scratch-space
// patterns so query kernels stay free of raw pragmas, and they keep all
// results deterministic: reductions combine per-thread partials in thread
// order, independent of scheduling.
#pragma once

#include <omp.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace gdelt {

/// Number of worker threads a parallel region will use.
inline int MaxThreads() noexcept { return omp_get_max_threads(); }

/// Caps the number of OpenMP threads for subsequent regions.
inline void SetThreads(int n) noexcept { omp_set_num_threads(n); }

/// A half-open index range [begin, end).
struct IndexRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t size() const noexcept { return end - begin; }
  bool empty() const noexcept { return begin >= end; }
};

/// Splits [0, n) into at most `parts` contiguous near-equal ranges.
/// The first (n % parts) ranges get one extra element.
inline std::vector<IndexRange> SplitRange(std::size_t n, std::size_t parts) {
  parts = std::max<std::size_t>(1, std::min(parts, std::max<std::size_t>(n, 1)));
  std::vector<IndexRange> out(parts);
  const std::size_t base = n / parts;
  const std::size_t extra = n % parts;
  std::size_t at = 0;
  for (std::size_t p = 0; p < parts; ++p) {
    const std::size_t len = base + (p < extra ? 1 : 0);
    out[p] = {at, at + len};
    at += len;
  }
  return out;
}

/// Scheduling policy for ParallelFor; mirrors omp schedule kinds. The
/// ablation bench (DESIGN.md section 5) compares these on skewed work.
enum class Schedule { kStatic, kDynamic, kGuided };

/// Runs body(i) for each i in [0, n) across all threads.
template <typename Body>
void ParallelFor(std::size_t n, Body&& body,
                 Schedule schedule = Schedule::kStatic) {
  const auto sn = static_cast<std::int64_t>(n);
  switch (schedule) {
    case Schedule::kStatic:
#pragma omp parallel for schedule(static)
      for (std::int64_t i = 0; i < sn; ++i) body(static_cast<std::size_t>(i));
      break;
    case Schedule::kDynamic:
#pragma omp parallel for schedule(dynamic, 64)
      for (std::int64_t i = 0; i < sn; ++i) body(static_cast<std::size_t>(i));
      break;
    case Schedule::kGuided:
#pragma omp parallel for schedule(guided)
      for (std::int64_t i = 0; i < sn; ++i) body(static_cast<std::size_t>(i));
      break;
  }
}

/// Runs body(range, thread_id) once per thread over a contiguous chunk of
/// [0, n). Useful when the body wants per-thread scratch state.
template <typename Body>
void ParallelForChunks(std::size_t n, Body&& body) {
#pragma omp parallel
  {
    const int tid = omp_get_thread_num();
    const int nt = omp_get_num_threads();
    const auto ranges = SplitRange(n, static_cast<std::size_t>(nt));
    if (static_cast<std::size_t>(tid) < ranges.size()) {
      body(ranges[static_cast<std::size_t>(tid)], tid);
    }
  }
}

/// Parallel reduction: acc = combine(acc, map(i)) over i in [0, n).
/// `identity` seeds each thread-local accumulator; thread partials are
/// combined in thread order so the result is reproducible run-to-run.
template <typename T, typename Map, typename Combine>
T ParallelReduce(std::size_t n, T identity, Map&& map, Combine&& combine) {
  std::vector<T> partials(static_cast<std::size_t>(MaxThreads()), identity);
#pragma omp parallel
  {
    const int tid = omp_get_thread_num();
    T local = identity;
#pragma omp for schedule(static) nowait
    for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
      local = combine(std::move(local), map(static_cast<std::size_t>(i)));
    }
    partials[static_cast<std::size_t>(tid)] = std::move(local);
  }
  T result = identity;
  for (auto& p : partials) result = combine(std::move(result), std::move(p));
  return result;
}

/// Parallel sum of map(i) over [0, n) for arithmetic T.
template <typename T, typename Map>
T ParallelSum(std::size_t n, Map&& map) {
  return ParallelReduce<T>(
      n, T{}, map, [](T a, T b) { return a + b; });
}

/// Parallel histogram: for each i in [0, n), `binner(i)` yields a bin index
/// < num_bins (or SIZE_MAX to skip). Per-thread local histograms are merged
/// at the end — no atomics on the hot path.
template <typename Binner>
std::vector<std::uint64_t> ParallelHistogram(std::size_t n,
                                             std::size_t num_bins,
                                             Binner&& binner) {
  const auto nt = static_cast<std::size_t>(MaxThreads());
  std::vector<std::vector<std::uint64_t>> locals(nt);
#pragma omp parallel
  {
    const auto tid = static_cast<std::size_t>(omp_get_thread_num());
    auto& local = locals[tid];
    local.assign(num_bins, 0);
#pragma omp for schedule(static) nowait
    for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
      const std::size_t bin = binner(static_cast<std::size_t>(i));
      if (bin < num_bins) ++local[bin];
    }
  }
  std::vector<std::uint64_t> merged(num_bins, 0);
  for (const auto& local : locals) {
    if (local.size() != num_bins) continue;  // thread never entered region
    for (std::size_t b = 0; b < num_bins; ++b) merged[b] += local[b];
  }
  return merged;
}

/// Deterministic tiled merge of per-thread partial arrays:
///     out[i] += sum over t (in thread order) of partials[t][i]
/// parallelized over contiguous tiles of the output. Because every tile is
/// owned by exactly one task and thread partials are combined in a fixed
/// order within it, the result is bitwise reproducible run-to-run for any
/// element type (including floating point) and any schedule. Partials
/// shorter than `out` (threads that never entered the region) are skipped.
template <typename T>
void MergeTiledPartials(std::span<T> out,
                        const std::vector<std::vector<T>>& partials,
                        std::size_t tile_elems = 16384) {
  const std::size_t n = out.size();
  if (n == 0) return;
  tile_elems = std::max<std::size_t>(1, tile_elems);
  const std::size_t num_tiles = (n + tile_elems - 1) / tile_elems;
#pragma omp parallel for schedule(static)
  for (std::int64_t t = 0; t < static_cast<std::int64_t>(num_tiles); ++t) {
    const std::size_t begin = static_cast<std::size_t>(t) * tile_elems;
    const std::size_t end = std::min(n, begin + tile_elems);
    for (const auto& local : partials) {
      if (local.size() < n) continue;
      for (std::size_t i = begin; i < end; ++i) out[i] += local[i];
    }
  }
}

/// Exclusive prefix sum in place; returns the total.
template <typename T>
T ExclusivePrefixSum(std::vector<T>& v) {
  T acc{};
  for (auto& x : v) {
    const T next = acc + x;
    x = acc;
    acc = next;
  }
  return acc;
}

}  // namespace gdelt
