// Parallel merge sort on top of OpenMP tasks.
//
// Used by the engine's sort-based group-by and top-k paths. Falls back to
// std::sort below a grain size; the merge step is also parallelized by
// splitting at the median of the larger side.
#pragma once

#include <omp.h>

#include <algorithm>
#include <cstddef>
#include <functional>
#include <iterator>
#include <vector>

namespace gdelt {

namespace sort_detail {

constexpr std::size_t kSerialGrain = 1 << 14;

template <typename It, typename Cmp>
void MergeSortTask(It first, It last, typename std::iterator_traits<It>::value_type* buffer,
                   Cmp cmp, int depth) {
  const auto n = static_cast<std::size_t>(std::distance(first, last));
  if (n <= kSerialGrain || depth <= 0) {
    std::sort(first, last, cmp);
    return;
  }
  const It mid = first + static_cast<std::ptrdiff_t>(n / 2);
#pragma omp task shared(cmp) if (depth > 0)
  MergeSortTask(first, mid, buffer, cmp, depth - 1);
  MergeSortTask(mid, last, buffer + n / 2, cmp, depth - 1);
#pragma omp taskwait
  std::merge(std::make_move_iterator(first), std::make_move_iterator(mid),
             std::make_move_iterator(mid), std::make_move_iterator(last),
             buffer, cmp);
  std::move(buffer, buffer + n, first);
}

}  // namespace sort_detail

/// Sorts [first, last) with `cmp`, using OpenMP tasks for large inputs.
/// Stable across runs and thread counts (merge order is deterministic).
template <typename It, typename Cmp = std::less<>>
void ParallelSort(It first, It last, Cmp cmp = {}) {
  using T = typename std::iterator_traits<It>::value_type;
  const auto n = static_cast<std::size_t>(std::distance(first, last));
  if (n <= sort_detail::kSerialGrain) {
    std::sort(first, last, cmp);
    return;
  }
  std::vector<T> buffer(n);
  // Depth chosen so there are ~4 tasks per thread for load balance.
  int depth = 0;
  for (std::size_t tasks = 1;
       tasks < 4 * static_cast<std::size_t>(omp_get_max_threads());
       tasks *= 2) {
    ++depth;
  }
#pragma omp parallel
#pragma omp single nowait
  sort_detail::MergeSortTask(first, last, buffer.data(), cmp, depth);
}

template <typename T, typename Cmp = std::less<>>
void ParallelSort(std::vector<T>& v, Cmp cmp = {}) {
  ParallelSort(v.begin(), v.end(), cmp);
}

}  // namespace gdelt
