// NUMA topology awareness.
//
// The paper's machine (dual EPYC 7601) exposes eight NUMA nodes with limited
// inter-node bandwidth; Section IV stresses that threads and allocations
// must be placed deliberately. This module detects the topology from
// /sys/devices/system/node, supports pinning OpenMP threads to cores
// round-robin across nodes, and provides parallel first-touch page
// initialization so large tables are faulted in by the threads that will
// scan them. On non-NUMA machines everything degrades to a single node.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace gdelt {

/// One NUMA node and the logical CPUs it owns.
struct NumaNode {
  int id = 0;
  std::vector<int> cpus;
};

/// Detected (or degenerate single-node) machine topology.
struct NumaTopology {
  std::vector<NumaNode> nodes;

  int num_nodes() const noexcept { return static_cast<int>(nodes.size()); }
  std::size_t num_cpus() const noexcept {
    std::size_t n = 0;
    for (const auto& node : nodes) n += node.cpus.size();
    return n;
  }
  std::string ToString() const;
};

/// Reads /sys/devices/system/node; falls back to one node spanning all
/// online CPUs when the sysfs tree is absent (e.g. containers).
NumaTopology DetectNumaTopology();

/// Pins the calling thread to the given CPU. Returns false on failure
/// (non-fatal: placement is an optimization, not a correctness need).
bool PinThreadToCpu(int cpu) noexcept;

/// Inside a fresh parallel region, pins every OpenMP thread round-robin
/// across NUMA nodes (thread t -> node t % nodes, next free cpu there).
void PinOpenMpThreadsRoundRobin(const NumaTopology& topology);

/// Zeroes one byte per page with a static-scheduled parallel loop so fresh
/// (never-written) pages are first-touched by the same thread distribution
/// that later scans them. DESTRUCTIVE: only call on buffers that have not
/// been filled yet (it writes). For populated buffers use WarmPagesParallel.
void FirstTouchParallel(void* data, std::size_t bytes) noexcept;

/// Reads one byte per page in parallel, faulting lazily-mapped pages in
/// without modifying the data (e.g. after loading an mmap'd table).
void WarmPagesParallel(const void* data, std::size_t bytes) noexcept;

}  // namespace gdelt
