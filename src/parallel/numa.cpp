#include "parallel/numa.hpp"

#ifdef __linux__
#include <sched.h>
#endif
#include <omp.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "util/strings.hpp"

namespace gdelt {
namespace {

/// Parses a Linux cpulist like "0-3,8,10-11" into CPU ids.
std::vector<int> ParseCpuList(std::string_view text) {
  std::vector<int> cpus;
  for (std::string_view part : SplitView(TrimView(text), ',')) {
    part = TrimView(part);
    if (part.empty()) continue;
    const auto dash = part.find('-');
    if (dash == std::string_view::npos) {
      if (const auto v = ParseInt64(part)) cpus.push_back(static_cast<int>(*v));
      continue;
    }
    const auto lo = ParseInt64(part.substr(0, dash));
    const auto hi = ParseInt64(part.substr(dash + 1));
    if (lo && hi && *lo <= *hi) {
      for (std::int64_t c = *lo; c <= *hi; ++c) {
        cpus.push_back(static_cast<int>(c));
      }
    }
  }
  return cpus;
}

NumaTopology SingleNodeFallback() {
  NumaTopology topo;
  NumaNode node;
  node.id = 0;
  const long n = sysconf(_SC_NPROCESSORS_ONLN);
  for (int c = 0; c < std::max(1L, n); ++c) node.cpus.push_back(c);
  topo.nodes.push_back(std::move(node));
  return topo;
}

}  // namespace

std::string NumaTopology::ToString() const {
  std::string out = StrFormat("%d NUMA node(s):", num_nodes());
  for (const auto& node : nodes) {
    out += StrFormat(" node%d[%zu cpus]", node.id, node.cpus.size());
  }
  return out;
}

NumaTopology DetectNumaTopology() {
  namespace fs = std::filesystem;
  const fs::path root = "/sys/devices/system/node";
  std::error_code ec;
  if (!fs::is_directory(root, ec)) return SingleNodeFallback();

  NumaTopology topo;
  for (const auto& entry : fs::directory_iterator(root, ec)) {
    const std::string name = entry.path().filename().string();
    if (!StartsWith(name, "node")) continue;
    const auto id = ParseInt64(std::string_view(name).substr(4));
    if (!id) continue;
    std::ifstream cpulist(entry.path() / "cpulist");
    if (!cpulist) continue;
    std::string line;
    std::getline(cpulist, line);
    NumaNode node;
    node.id = static_cast<int>(*id);
    node.cpus = ParseCpuList(line);
    if (!node.cpus.empty()) topo.nodes.push_back(std::move(node));
  }
  if (topo.nodes.empty()) return SingleNodeFallback();
  std::sort(topo.nodes.begin(), topo.nodes.end(),
            [](const NumaNode& a, const NumaNode& b) { return a.id < b.id; });
  return topo;
}

bool PinThreadToCpu(int cpu) noexcept {
#ifdef __linux__
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  return sched_setaffinity(0, sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

void PinOpenMpThreadsRoundRobin(const NumaTopology& topology) {
  if (topology.nodes.empty()) return;
#pragma omp parallel
  {
    const int tid = omp_get_thread_num();
    const auto& node = topology.nodes[static_cast<std::size_t>(tid) %
                                      topology.nodes.size()];
    if (!node.cpus.empty()) {
      const int round = tid / topology.num_nodes();
      const int cpu =
          node.cpus[static_cast<std::size_t>(round) % node.cpus.size()];
      PinThreadToCpu(cpu);
    }
  }
}

void FirstTouchParallel(void* data, std::size_t bytes) noexcept {
  auto* p = static_cast<unsigned char*>(data);
  constexpr std::size_t kPage = 4096;
  const std::size_t pages = (bytes + kPage - 1) / kPage;
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(pages); ++i) {
    p[static_cast<std::size_t>(i) * kPage] = 0;
  }
}

void WarmPagesParallel(const void* data, std::size_t bytes) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  constexpr std::size_t kPage = 4096;
  const std::size_t pages = (bytes + kPage - 1) / kPage;
  unsigned char sink = 0;
#pragma omp parallel for schedule(static) reduction(^ : sink)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(pages); ++i) {
    sink ^= p[static_cast<std::size_t>(i) * kPage];
  }
  // The reduction keeps the reads observable so they are not elided.
  (void)sink;
}

}  // namespace gdelt
