// Country registry: FIPS 10-4 codes (used by GDELT geo columns) and
// top-level domains (used by the paper to attribute news sources to
// countries, Section VI-C).
//
// The paper assigns each news website a country from its TLD, with ".com"
// attributed to the USA — an acknowledged approximation (the Guardian is
// counted as US). We reproduce exactly that heuristic.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

namespace gdelt {

/// Dense country identifier; index into Countries().
using CountryId = std::uint16_t;

/// Sentinel for "no/unknown country".
constexpr CountryId kNoCountry = 0xFFFF;

struct CountryInfo {
  std::string_view fips;  ///< FIPS 10-4 code as used by ActionGeo_CountryCode
  std::string_view tld;   ///< ccTLD without dot; "com" maps to USA
  std::string_view name;
};

/// The full registry, ordered; CountryId indexes this vector.
const std::vector<CountryInfo>& Countries() noexcept;

/// Looks up by FIPS code (e.g. "US", "UK", "CH" = China). Case-sensitive.
std::optional<CountryId> CountryByFips(std::string_view fips) noexcept;

/// Looks up by TLD label (lower-case, no dot; "com" -> USA heuristic).
std::optional<CountryId> CountryByTld(std::string_view tld) noexcept;

/// Attributes a source domain/URL to a country via its TLD, per the paper.
std::optional<CountryId> CountryOfSourceDomain(std::string_view domain) noexcept;

/// Convenience accessors; `id` must be a valid CountryId.
std::string_view CountryName(CountryId id) noexcept;
std::string_view CountryFips(CountryId id) noexcept;

/// Well-known ids fixed by registry order (used by benches to label the
/// paper's Top-10 tables).
namespace country {
constexpr CountryId kUSA = 0;
constexpr CountryId kUK = 1;
constexpr CountryId kAustralia = 2;
constexpr CountryId kIndia = 3;
constexpr CountryId kItaly = 4;
constexpr CountryId kCanada = 5;
constexpr CountryId kSouthAfrica = 6;
constexpr CountryId kNigeria = 7;
constexpr CountryId kBangladesh = 8;
constexpr CountryId kPhilippines = 9;
constexpr CountryId kChina = 10;
constexpr CountryId kRussia = 11;
constexpr CountryId kIsrael = 12;
constexpr CountryId kPakistan = 13;
}  // namespace country

}  // namespace gdelt
