#include "schema/gdelt_schema.hpp"

namespace gdelt {
namespace {

constexpr std::array<std::string_view, kEventFieldCount> kEventNames = {
    "GlobalEventID",
    "Day",
    "MonthYear",
    "Year",
    "FractionDate",
    "Actor1Code",
    "Actor1Name",
    "Actor1CountryCode",
    "Actor1KnownGroupCode",
    "Actor1EthnicCode",
    "Actor1Religion1Code",
    "Actor1Religion2Code",
    "Actor1Type1Code",
    "Actor1Type2Code",
    "Actor1Type3Code",
    "Actor2Code",
    "Actor2Name",
    "Actor2CountryCode",
    "Actor2KnownGroupCode",
    "Actor2EthnicCode",
    "Actor2Religion1Code",
    "Actor2Religion2Code",
    "Actor2Type1Code",
    "Actor2Type2Code",
    "Actor2Type3Code",
    "IsRootEvent",
    "EventCode",
    "EventBaseCode",
    "EventRootCode",
    "QuadClass",
    "GoldsteinScale",
    "NumMentions",
    "NumSources",
    "NumArticles",
    "AvgTone",
    "Actor1Geo_Type",
    "Actor1Geo_FullName",
    "Actor1Geo_CountryCode",
    "Actor1Geo_ADM1Code",
    "Actor1Geo_ADM2Code",
    "Actor1Geo_Lat",
    "Actor1Geo_Long",
    "Actor1Geo_FeatureID",
    "Actor2Geo_Type",
    "Actor2Geo_FullName",
    "Actor2Geo_CountryCode",
    "Actor2Geo_ADM1Code",
    "Actor2Geo_ADM2Code",
    "Actor2Geo_Lat",
    "Actor2Geo_Long",
    "Actor2Geo_FeatureID",
    "ActionGeo_Type",
    "ActionGeo_FullName",
    "ActionGeo_CountryCode",
    "ActionGeo_ADM1Code",
    "ActionGeo_ADM2Code",
    "ActionGeo_Lat",
    "ActionGeo_Long",
    "ActionGeo_FeatureID",
    "DATEADDED",
    "SOURCEURL",
};

constexpr std::array<std::string_view, kMentionFieldCount> kMentionNames = {
    "GlobalEventID",
    "EventTimeDate",
    "MentionTimeDate",
    "MentionType",
    "MentionSourceName",
    "MentionIdentifier",
    "SentenceID",
    "Actor1CharOffset",
    "Actor2CharOffset",
    "ActionCharOffset",
    "InRawText",
    "Confidence",
    "MentionDocLen",
    "MentionDocTone",
    "MentionDocTranslationInfo",
    "Extras",
};

}  // namespace

std::string_view EventFieldName(EventField f) noexcept {
  return kEventNames[Index(f)];
}

std::string_view MentionFieldName(MentionField f) noexcept {
  return kMentionNames[Index(f)];
}

}  // namespace gdelt
