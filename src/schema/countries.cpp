#include "schema/countries.hpp"

#include <unordered_map>

#include "util/strings.hpp"

namespace gdelt {
namespace {

// The first 14 entries are the countries named in the paper's tables
// (Tables V-VII); the rest round out the global news landscape the
// generator models. FIPS 10-4 codes (note: CH = China, AS = Australia,
// SF = South Africa, RP = Philippines, NI = Nigeria, RS = Russia).
const std::vector<CountryInfo> kCountries = {
    {"US", "com", "USA"},
    {"UK", "uk", "UK"},
    {"AS", "au", "Australia"},
    {"IN", "in", "India"},
    {"IT", "it", "Italy"},
    {"CA", "ca", "Canada"},
    {"SF", "za", "South Africa"},
    {"NI", "ng", "Nigeria"},
    {"BG", "bd", "Bangladesh"},
    {"RP", "ph", "Philippines"},
    {"CH", "cn", "China"},
    {"RS", "ru", "Russia"},
    {"IS", "il", "Israel"},
    {"PK", "pk", "Pakistan"},
    {"GM", "de", "Germany"},
    {"FR", "fr", "France"},
    {"SP", "es", "Spain"},
    {"BR", "br", "Brazil"},
    {"MX", "mx", "Mexico"},
    {"JA", "jp", "Japan"},
    {"KS", "kr", "South Korea"},
    {"ID", "id", "Indonesia"},
    {"TU", "tr", "Turkey"},
    {"EG", "eg", "Egypt"},
    {"KE", "ke", "Kenya"},
    {"GH", "gh", "Ghana"},
    {"NZ", "nz", "New Zealand"},
    {"EI", "ie", "Ireland"},
    {"NL", "nl", "Netherlands"},
    {"SW", "se", "Sweden"},
    {"NO", "no", "Norway"},
    {"DA", "dk", "Denmark"},
    {"FI", "fi", "Finland"},
    {"PL", "pl", "Poland"},
    {"GR", "gr", "Greece"},
    {"PO", "pt", "Portugal"},
    {"SZ", "ch", "Switzerland"},
    {"AU", "at", "Austria"},
    {"BE", "be", "Belgium"},
    {"CE", "lk", "Sri Lanka"},
    {"NP", "np", "Nepal"},
    {"MY", "my", "Malaysia"},
    {"SN", "sg", "Singapore"},
    {"TH", "th", "Thailand"},
    {"VM", "vn", "Vietnam"},
    {"SA", "sa", "Saudi Arabia"},
    {"AE", "ae", "UAE"},
    {"QA", "qa", "Qatar"},
    {"JO", "jo", "Jordan"},
    {"LE", "lb", "Lebanon"},
    {"AR", "ar", "Argentina"},
    {"CI", "cl", "Chile"},
    {"CO", "co", "Colombia"},
    {"PE", "pe", "Peru"},
    {"VE", "ve", "Venezuela"},
    {"UP", "ua", "Ukraine"},
    {"RO", "ro", "Romania"},
    {"HU", "hu", "Hungary"},
    {"EZ", "cz", "Czechia"},
    {"TZ", "tz", "Tanzania"},
    {"UG", "ug", "Uganda"},
    {"ZI", "zw", "Zimbabwe"},
};

std::unordered_map<std::string_view, CountryId> MakeFipsIndex() {
  std::unordered_map<std::string_view, CountryId> index;
  for (std::size_t i = 0; i < kCountries.size(); ++i) {
    index.emplace(kCountries[i].fips, static_cast<CountryId>(i));
  }
  return index;
}

std::unordered_map<std::string_view, CountryId> MakeTldIndex() {
  std::unordered_map<std::string_view, CountryId> index;
  for (std::size_t i = 0; i < kCountries.size(); ++i) {
    index.emplace(kCountries[i].tld, static_cast<CountryId>(i));
  }
  return index;
}

}  // namespace

const std::vector<CountryInfo>& Countries() noexcept { return kCountries; }

std::optional<CountryId> CountryByFips(std::string_view fips) noexcept {
  static const auto index = MakeFipsIndex();
  const auto it = index.find(fips);
  if (it == index.end()) return std::nullopt;
  return it->second;
}

std::optional<CountryId> CountryByTld(std::string_view tld) noexcept {
  static const auto index = MakeTldIndex();
  const auto it = index.find(tld);
  if (it == index.end()) return std::nullopt;
  return it->second;
}

std::optional<CountryId> CountryOfSourceDomain(
    std::string_view domain) noexcept {
  const std::string_view tld = TopLevelDomain(domain);
  if (tld.empty()) return std::nullopt;
  return CountryByTld(tld);
}

std::string_view CountryName(CountryId id) noexcept {
  return kCountries[id].name;
}

std::string_view CountryFips(CountryId id) noexcept {
  return kCountries[id].fips;
}

}  // namespace gdelt
