// Column schemas of the GDELT 2.0 Event Database wire format.
//
// Every 15 minutes GDELT publishes an Events table ("export") and a
// Mentions table. Both are tab-separated. The converter parses the full
// column set; the analysis engine materializes only the columns the paper's
// queries need (see columnar/).
//
// Column lists follow the official GDELT 2.0 codebooks:
//   Events:   61 columns (event coding, actors, CAMEO, geo, DATEADDED, URL)
//   Mentions: 16 columns (event id, times, source, identifier, confidence)
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace gdelt {

/// Events ("export") table columns, in wire order.
enum class EventField : std::uint8_t {
  kGlobalEventId = 0,
  kDay,
  kMonthYear,
  kYear,
  kFractionDate,
  kActor1Code,
  kActor1Name,
  kActor1CountryCode,
  kActor1KnownGroupCode,
  kActor1EthnicCode,
  kActor1Religion1Code,
  kActor1Religion2Code,
  kActor1Type1Code,
  kActor1Type2Code,
  kActor1Type3Code,
  kActor2Code,
  kActor2Name,
  kActor2CountryCode,
  kActor2KnownGroupCode,
  kActor2EthnicCode,
  kActor2Religion1Code,
  kActor2Religion2Code,
  kActor2Type1Code,
  kActor2Type2Code,
  kActor2Type3Code,
  kIsRootEvent,
  kEventCode,
  kEventBaseCode,
  kEventRootCode,
  kQuadClass,
  kGoldsteinScale,
  kNumMentions,
  kNumSources,
  kNumArticles,
  kAvgTone,
  kActor1GeoType,
  kActor1GeoFullName,
  kActor1GeoCountryCode,
  kActor1GeoAdm1Code,
  kActor1GeoAdm2Code,
  kActor1GeoLat,
  kActor1GeoLong,
  kActor1GeoFeatureId,
  kActor2GeoType,
  kActor2GeoFullName,
  kActor2GeoCountryCode,
  kActor2GeoAdm1Code,
  kActor2GeoAdm2Code,
  kActor2GeoLat,
  kActor2GeoLong,
  kActor2GeoFeatureId,
  kActionGeoType,
  kActionGeoFullName,
  kActionGeoCountryCode,
  kActionGeoAdm1Code,
  kActionGeoAdm2Code,
  kActionGeoLat,
  kActionGeoLong,
  kActionGeoFeatureId,
  kDateAdded,
  kSourceUrl,
};

/// Number of columns in the Events wire format.
constexpr std::size_t kEventFieldCount = 61;

/// Mentions table columns, in wire order.
enum class MentionField : std::uint8_t {
  kGlobalEventId = 0,
  kEventTimeDate,     ///< YYYYMMDDHHMMSS of the event's first record
  kMentionTimeDate,   ///< YYYYMMDDHHMMSS of the 15-min capture interval
  kMentionType,       ///< 1 = web
  kMentionSourceName, ///< registered domain of the publishing site
  kMentionIdentifier, ///< article URL
  kSentenceId,
  kActor1CharOffset,
  kActor2CharOffset,
  kActionCharOffset,
  kInRawText,
  kConfidence,
  kMentionDocLen,
  kMentionDocTone,
  kMentionDocTranslationInfo,
  kExtras,
};

/// Number of columns in the Mentions wire format.
constexpr std::size_t kMentionFieldCount = 16;

/// Wire-order column names (Events), as in the GDELT codebook.
std::string_view EventFieldName(EventField f) noexcept;

/// Wire-order column names (Mentions).
std::string_view MentionFieldName(MentionField f) noexcept;

/// Index of a field within a parsed row.
constexpr std::size_t Index(EventField f) noexcept {
  return static_cast<std::size_t>(f);
}
constexpr std::size_t Index(MentionField f) noexcept {
  return static_cast<std::size_t>(f);
}

/// CAMEO quad classes (column kQuadClass).
enum class QuadClass : std::uint8_t {
  kVerbalCooperation = 1,
  kMaterialCooperation = 2,
  kVerbalConflict = 3,
  kMaterialConflict = 4,
};

}  // namespace gdelt
