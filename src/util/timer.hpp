// Wall-clock timing for query profiling and the scaling experiment (Fig 12).
#pragma once

#include <chrono>
#include <cstdint>

namespace gdelt {

/// Monotonic stopwatch. Starts on construction.
class WallTimer {
 public:
  WallTimer() noexcept : start_(Clock::now()) {}

  void Reset() noexcept { start_ = Clock::now(); }

  double ElapsedSeconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  std::uint64_t ElapsedMicros() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gdelt
