// Tiny command-line argument parser for the tools and examples.
//
// Supports `--flag`, `--key=value` and `--key value`; everything else is a
// positional argument. Unknown flags are an error so typos fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.hpp"

namespace gdelt {

/// Declarative argument parser: register options, then Parse(argc, argv).
class ArgParser {
 public:
  /// `program_description` is printed by HelpText().
  explicit ArgParser(std::string program_description)
      : description_(std::move(program_description)) {}

  /// Registers a string-valued option with a default.
  void AddString(std::string name, std::string default_value,
                 std::string help);
  /// Registers an integer-valued option with a default.
  void AddInt(std::string name, std::int64_t default_value, std::string help);
  /// Registers a double-valued option with a default.
  void AddDouble(std::string name, double default_value, std::string help);
  /// Registers a boolean flag (false unless present, or --name=false given).
  void AddBool(std::string name, bool default_value, std::string help);

  /// Parses argv. Returns an error for unknown/dup/badly-typed options.
  Status Parse(int argc, const char* const* argv);

  std::string GetString(std::string_view name) const;
  std::int64_t GetInt(std::string_view name) const;
  double GetDouble(std::string_view name) const;
  bool GetBool(std::string_view name) const;

  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Usage text listing all options with defaults and help strings.
  std::string HelpText() const;

 private:
  enum class Type { kString, kInt, kDouble, kBool };
  struct Option {
    Type type;
    std::string value;  ///< current textual value
    std::string help;
  };

  Status SetValue(const std::string& name, std::string value);

  std::string description_;
  std::map<std::string, Option, std::less<>> options_;
  std::vector<std::string> positional_;
};

}  // namespace gdelt
