#include "util/rng.hpp"

#include <algorithm>
#include <cassert>

namespace gdelt {

ZipfDistribution::ZipfDistribution(std::uint64_t n, double alpha)
    : alpha_(alpha) {
  assert(n >= 1);
  assert(alpha > 0.0);
  cdf_.resize(n);
  double acc = 0.0;
  for (std::uint64_t k = 1; k <= n; ++k) {
    acc += std::pow(static_cast<double>(k), -alpha);
    cdf_[k - 1] = acc;
  }
  const double norm = 1.0 / acc;
  for (auto& v : cdf_) v *= norm;
  cdf_.back() = 1.0;  // guard against rounding drift
}

std::uint64_t ZipfDistribution::operator()(Xoshiro256& rng) const noexcept {
  const double u = UniformDouble(rng);
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint64_t>(it - cdf_.begin()) + 1;
}

std::size_t SampleCumulative(const std::vector<double>& cumulative,
                             Xoshiro256& rng) noexcept {
  if (cumulative.empty()) return 0;
  const double u = UniformDouble(rng) * cumulative.back();
  const auto it = std::upper_bound(cumulative.begin(), cumulative.end(), u);
  const auto idx = static_cast<std::size_t>(it - cumulative.begin());
  return std::min(idx, cumulative.size() - 1);
}

}  // namespace gdelt
