// Hashing primitives for dictionary encoding and group-by aggregation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace gdelt {

/// FNV-1a 64-bit over raw bytes. Stable across platforms/runs, which matters
/// because the binary table format stores hash-partitioned dictionaries.
constexpr std::uint64_t Fnv1a64(std::string_view data) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Fast avalanche mix for integer keys (from Murmur3 finalizer).
constexpr std::uint64_t MixU64(std::uint64_t k) noexcept {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdull;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ull;
  k ^= k >> 33;
  return k;
}

/// Combines two hashes (boost::hash_combine style, 64-bit).
constexpr std::uint64_t HashCombine(std::uint64_t a, std::uint64_t b) noexcept {
  return a ^ (b + 0x9e3779b97f4a7c15ull + (a << 12) + (a >> 4));
}

}  // namespace gdelt
