#include "util/logging.hpp"

#include <atomic>
#include <cstdio>

#include "util/sync.hpp"

namespace gdelt {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};
/// Serializes stderr lines so concurrent workers cannot interleave them.
sync::Mutex g_log_mutex;

const char* LevelName(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarning: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) noexcept {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() noexcept {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

bool log_detail::Enabled(LogLevel level) noexcept {
  return static_cast<int>(level) >=
         g_min_level.load(std::memory_order_relaxed);
}

void LogMessage(LogLevel level, const std::string& message) {
  sync::MutexLock lock(g_log_mutex);
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
}

}  // namespace gdelt
