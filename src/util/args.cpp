#include "util/args.hpp"

#include <cassert>

#include "util/strings.hpp"

namespace gdelt {

void ArgParser::AddString(std::string name, std::string default_value,
                          std::string help) {
  options_[std::move(name)] =
      Option{Type::kString, std::move(default_value), std::move(help)};
}

void ArgParser::AddInt(std::string name, std::int64_t default_value,
                       std::string help) {
  options_[std::move(name)] =
      Option{Type::kInt, std::to_string(default_value), std::move(help)};
}

void ArgParser::AddDouble(std::string name, double default_value,
                          std::string help) {
  options_[std::move(name)] =
      Option{Type::kDouble, std::to_string(default_value), std::move(help)};
}

void ArgParser::AddBool(std::string name, bool default_value,
                        std::string help) {
  options_[std::move(name)] =
      Option{Type::kBool, default_value ? "true" : "false", std::move(help)};
}

Status ArgParser::SetValue(const std::string& name, std::string value) {
  const auto it = options_.find(name);
  if (it == options_.end()) {
    return status::InvalidArgument("unknown option --" + name);
  }
  Option& opt = it->second;
  switch (opt.type) {
    case Type::kInt:
      if (!ParseInt64(value)) {
        return status::InvalidArgument("option --" + name +
                                       " expects an integer, got '" + value +
                                       "'");
      }
      break;
    case Type::kDouble:
      if (!ParseDouble(value)) {
        return status::InvalidArgument("option --" + name +
                                       " expects a number, got '" + value +
                                       "'");
      }
      break;
    case Type::kBool:
      if (value != "true" && value != "false") {
        return status::InvalidArgument("option --" + name +
                                       " expects true/false, got '" + value +
                                       "'");
      }
      break;
    case Type::kString:
      break;
  }
  opt.value = std::move(value);
  return Status::Ok();
}

Status ArgParser::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (!StartsWith(arg, "--")) {
      positional_.emplace_back(arg);
      continue;
    }
    const std::string_view body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string_view::npos) {
      GDELT_RETURN_IF_ERROR(SetValue(std::string(body.substr(0, eq)),
                                     std::string(body.substr(eq + 1))));
      continue;
    }
    const std::string name(body);
    const auto it = options_.find(name);
    if (it == options_.end()) {
      return status::InvalidArgument("unknown option --" + name);
    }
    if (it->second.type == Type::kBool) {
      it->second.value = "true";
      continue;
    }
    // A value-taking flag must not swallow the next flag as its value
    // (`--db --query stats` should fail on --db, not misparse). Values
    // that legitimately start with "--" can be passed as --name=value.
    if (i + 1 >= argc || StartsWith(argv[i + 1], "--")) {
      return status::InvalidArgument("option --" + name + " needs a value");
    }
    GDELT_RETURN_IF_ERROR(SetValue(name, argv[++i]));
  }
  return Status::Ok();
}

std::string ArgParser::GetString(std::string_view name) const {
  const auto it = options_.find(name);
  assert(it != options_.end() && "GetString on unregistered option");
  return it->second.value;
}

std::int64_t ArgParser::GetInt(std::string_view name) const {
  const auto it = options_.find(name);
  assert(it != options_.end() && "GetInt on unregistered option");
  return ParseInt64(it->second.value).value_or(0);
}

double ArgParser::GetDouble(std::string_view name) const {
  const auto it = options_.find(name);
  assert(it != options_.end() && "GetDouble on unregistered option");
  return ParseDouble(it->second.value).value_or(0.0);
}

bool ArgParser::GetBool(std::string_view name) const {
  const auto it = options_.find(name);
  assert(it != options_.end() && "GetBool on unregistered option");
  return it->second.value == "true";
}

std::string ArgParser::HelpText() const {
  std::string out = description_;
  out += "\n\nOptions:\n";
  for (const auto& [name, opt] : options_) {
    out += "  --" + name + " (default: " + opt.value + ")\n      " +
           opt.help + "\n";
  }
  return out;
}

}  // namespace gdelt
