// Deterministic, fast pseudo-random generation for the synthetic GDELT
// world model and for test/benchmark workloads.
//
// xoshiro256** (Blackman & Vigna) is used instead of std::mt19937_64: it is
// ~4x faster, has a tiny state that can be split per OpenMP thread via
// jump(), and gives identical streams across platforms (std distributions
// are not portable, so all distributions here are hand-rolled).
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

namespace gdelt {

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words from `seed` via SplitMix64 so that even
  /// adjacent seeds produce decorrelated streams.
  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ull) noexcept {
    std::uint64_t x = seed;
    for (auto& w : state_) w = SplitMix64(x);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ull; }

  result_type operator()() noexcept {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Advances the stream by 2^128 steps; used to derive per-thread
  /// independent substreams from one master seed.
  void Jump() noexcept {
    static constexpr std::uint64_t kJump[] = {
        0x180ec6d33cfd0abaull, 0xd5a61266f0c9392cull,
        0xa9582618e03fc9aaull, 0x39abdc4529b1661cull};
    std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    for (std::uint64_t jump : kJump) {
      for (int b = 0; b < 64; ++b) {
        if (jump & (1ull << b)) {
          s0 ^= state_[0];
          s1 ^= state_[1];
          s2 ^= state_[2];
          s3 ^= state_[3];
        }
        (*this)();
      }
    }
    state_ = {s0, s1, s2, s3};
  }

  /// A generator 2^128 steps ahead; leaves *this unchanged.
  Xoshiro256 Split() const noexcept {
    Xoshiro256 child = *this;
    child.Jump();
    return child;
  }

 private:
  static std::uint64_t SplitMix64(std::uint64_t& x) noexcept {
    x += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
  static constexpr std::uint64_t Rotl(std::uint64_t v, int k) noexcept {
    return (v << k) | (v >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_;
};

/// Uniform double in [0, 1). Uses the top 53 bits for full mantissa entropy.
inline double UniformDouble(Xoshiro256& rng) noexcept {
  return static_cast<double>(rng() >> 11) * 0x1.0p-53;
}

/// Uniform integer in [0, bound). Lemire's multiply-shift rejection method.
inline std::uint64_t UniformBelow(Xoshiro256& rng,
                                  std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Rejection loop terminates quickly: the acceptance probability per round
  // is > 1 - bound/2^64.
  const std::uint64_t threshold = (-bound) % bound;
  for (;;) {
    const std::uint64_t x = rng();
    const unsigned __int128 m =
        static_cast<unsigned __int128>(x) * static_cast<unsigned __int128>(bound);
    if (static_cast<std::uint64_t>(m) >= threshold) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

/// Uniform integer in [lo, hi] inclusive.
inline std::int64_t UniformInt(Xoshiro256& rng, std::int64_t lo,
                               std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(UniformBelow(rng, span));
}

/// Standard normal via Box-Muller (deterministic across platforms).
inline double NormalDouble(Xoshiro256& rng) noexcept {
  double u1 = UniformDouble(rng);
  if (u1 <= 0.0) u1 = 0x1.0p-53;  // avoid log(0)
  const double u2 = UniformDouble(rng);
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
}

/// Log-normal with the given parameters of the underlying normal.
inline double LogNormalDouble(Xoshiro256& rng, double mu,
                              double sigma) noexcept {
  return std::exp(mu + sigma * NormalDouble(rng));
}

/// Exponential with rate lambda.
inline double ExponentialDouble(Xoshiro256& rng, double lambda) noexcept {
  double u = UniformDouble(rng);
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / lambda;
}

/// Bernoulli trial with success probability p.
inline bool Bernoulli(Xoshiro256& rng, double p) noexcept {
  return UniformDouble(rng) < p;
}

/// Poisson-distributed count (Knuth for small mean, normal approx above 64).
inline std::uint64_t PoissonCount(Xoshiro256& rng, double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean > 64.0) {
    const double v = mean + std::sqrt(mean) * NormalDouble(rng);
    return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
  }
  const double limit = std::exp(-mean);
  double prod = UniformDouble(rng);
  std::uint64_t n = 0;
  while (prod > limit) {
    ++n;
    prod *= UniformDouble(rng);
  }
  return n;
}

/// Samples integers in [1, n] with P(k) proportional to k^-alpha.
///
/// Precomputes the inverse CDF once; sampling is then a binary search.
/// This is the workhorse behind the paper's power-law event-popularity and
/// source-activity distributions (Figure 2).
class ZipfDistribution {
 public:
  /// `n` >= 1 elements, exponent `alpha` > 0.
  ZipfDistribution(std::uint64_t n, double alpha);

  /// A value in [1, n].
  std::uint64_t operator()(Xoshiro256& rng) const noexcept;

  std::uint64_t n() const noexcept { return cdf_.size(); }
  double alpha() const noexcept { return alpha_; }

 private:
  std::vector<double> cdf_;  ///< cdf_[k-1] = P(X <= k)
  double alpha_ = 0.0;
};

/// Fisher-Yates shuffle using our deterministic RNG.
template <typename T>
void Shuffle(std::vector<T>& v, Xoshiro256& rng) {
  for (std::size_t i = v.size(); i > 1; --i) {
    const std::size_t j = UniformBelow(rng, i);
    using std::swap;
    swap(v[i - 1], v[j]);
  }
}

/// Samples an index from a discrete distribution given cumulative weights.
/// `cumulative` must be non-decreasing with a positive final element.
std::size_t SampleCumulative(const std::vector<double>& cumulative,
                             Xoshiro256& rng) noexcept;

}  // namespace gdelt
