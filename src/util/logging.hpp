// Minimal leveled logging to stderr. Thread-safe line-at-a-time output so
// OpenMP workers can log without interleaving.
#pragma once

#include <string>

namespace gdelt {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that is emitted (default: kInfo).
void SetLogLevel(LogLevel level) noexcept;
LogLevel GetLogLevel() noexcept;

/// Emits one log line "[LEVEL] message\n" if `level` passes the filter.
void LogMessage(LogLevel level, const std::string& message);

namespace log_detail {
bool Enabled(LogLevel level) noexcept;
}

#define GDELT_LOG(level, msg)                                     \
  do {                                                            \
    if (::gdelt::log_detail::Enabled(::gdelt::LogLevel::level)) { \
      ::gdelt::LogMessage(::gdelt::LogLevel::level, (msg));       \
    }                                                             \
  } while (false)

}  // namespace gdelt
