// Annotated synchronization primitives: the repo's only lock vocabulary.
//
// Every mutex in the codebase is a sync::Mutex and every critical section
// a sync::MutexLock, so Clang's Thread Safety Analysis can prove lock
// discipline at compile time over *all* paths — not just the
// interleavings a TSan run happens to execute. Under Clang the build adds
// `-Wthread-safety -Werror=thread-safety`; under GCC the annotations
// compile away to nothing and the types are thin wrappers over the
// standard primitives.
//
// Usage pattern (see docs/STATIC_ANALYSIS.md for the full guide):
//
//   class Thing {
//     void Add(int v) {
//       sync::MutexLock lock(mu_);
//       total_ += v;               // OK: mu_ is held
//     }
//     void AddLocked(int v) GDELT_REQUIRES(mu_) { total_ += v; }
//    private:
//     mutable sync::Mutex mu_;
//     int total_ GDELT_GUARDED_BY(mu_) = 0;
//   };
//
// Raw std::mutex / std::lock_guard / std::condition_variable outside this
// header are a build failure (tools/lint/gdelt_lint.py, rule `raw-sync`).
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

// ---------------------------------------------------------------------------
// Clang Thread Safety Analysis attributes (no-ops on other compilers).
// ---------------------------------------------------------------------------
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define GDELT_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef GDELT_THREAD_ANNOTATION
#define GDELT_THREAD_ANNOTATION(x)
#endif

/// Marks a type as a lockable capability ("mutex" in diagnostics).
#define GDELT_CAPABILITY(x) GDELT_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define GDELT_SCOPED_CAPABILITY GDELT_THREAD_ANNOTATION(scoped_lockable)

/// Field may only be touched while holding the named capability.
#define GDELT_GUARDED_BY(x) GDELT_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field whose *pointee* is protected by the named capability.
#define GDELT_PT_GUARDED_BY(x) GDELT_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the capability held on entry (e.g. *Locked helpers).
#define GDELT_REQUIRES(...) \
  GDELT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the capability and holds it past return.
#define GDELT_ACQUIRE(...) \
  GDELT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases a held capability before return.
#define GDELT_RELEASE(...) \
  GDELT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function tries to acquire; first argument is the success return value.
#define GDELT_TRY_ACQUIRE(...) \
  GDELT_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function must NOT be entered holding the capability (deadlock guard).
#define GDELT_EXCLUDES(...) GDELT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the named capability.
#define GDELT_RETURN_CAPABILITY(x) GDELT_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch — requires a justification comment on the same line and is
/// audited by gdelt_lint (rule `tsa-escape`).
#define GDELT_NO_THREAD_SAFETY_ANALYSIS \
  GDELT_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace gdelt::sync {

class CondVar;

/// Annotated standard mutex. Prefer sync::MutexLock over manual
/// Lock/Unlock pairs; the manual calls exist for the rare staircase
/// pattern and for adapters.
class GDELT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() GDELT_ACQUIRE() { mu_.lock(); }
  void Unlock() GDELT_RELEASE() { mu_.unlock(); }
  bool TryLock() GDELT_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII critical section over a sync::Mutex.
class GDELT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) GDELT_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() GDELT_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to sync::Mutex. Wait takes the *mutex* (which
/// the caller must hold — enforced by the analysis), not the MutexLock,
/// so `GDELT_REQUIRES` can name the capability directly. Write waits as
/// explicit loops; predicate lambdas are analyzed as separate functions
/// and would defeat the annotations:
///
///   sync::MutexLock lock(mu_);
///   while (!ready_) cv_.Wait(mu_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and re-acquires before returning.
  void Wait(Mutex& mu) GDELT_REQUIRES(mu) { cv_.wait(mu.mu_); }

  /// Wait with a relative timeout; std::cv_status::timeout on expiry.
  template <class Rep, class Period>
  std::cv_status WaitFor(Mutex& mu,
                         const std::chrono::duration<Rep, Period>& timeout)
      GDELT_REQUIRES(mu) {
    return cv_.wait_for(mu.mu_, timeout);
  }

  void NotifyOne() noexcept { cv_.notify_one(); }
  void NotifyAll() noexcept { cv_.notify_all(); }

 private:
  // condition_variable_any waits on any BasicLockable — here the wrapped
  // std::mutex itself, keeping MutexLock scopes and waits composable.
  std::condition_variable_any cv_;
};

}  // namespace gdelt::sync
