#include "util/status.hpp"

namespace gdelt {

std::string_view StatusCodeName(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return "Ok";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kFailedPrecondition: return "FailedPrecondition";
    case StatusCode::kDataLoss: return "DataLoss";
    case StatusCode::kIoError: return "IoError";
    case StatusCode::kParseError: return "ParseError";
    case StatusCode::kUnimplemented: return "Unimplemented";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kCancelled: return "Cancelled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace gdelt
