// Small string utilities shared across the CSV parser, master-list handling
// and report formatting. All functions are allocation-conscious: anything on
// a parse hot path works on string_view.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace gdelt {

/// Removes ASCII whitespace from both ends.
std::string_view TrimView(std::string_view s) noexcept;

/// Lower-cases ASCII characters (locale-independent).
std::string ToLowerAscii(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix) noexcept;
bool EndsWith(std::string_view s, std::string_view suffix) noexcept;

/// Splits on a single-character delimiter. Keeps empty fields (GDELT rows
/// contain many empty tab-separated columns).
std::vector<std::string_view> SplitView(std::string_view s, char delim);

/// Splits into an existing buffer to avoid per-row allocation; returns the
/// number of fields written (the vector is resized to it).
void SplitInto(std::string_view s, char delim,
               std::vector<std::string_view>& out);

/// Joins parts with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Strict decimal integer parse over the whole view; rejects empty input,
/// trailing junk, and overflow. GDELT numeric fields may be empty, which the
/// callers treat as "missing" before calling this.
std::optional<std::int64_t> ParseInt64(std::string_view s) noexcept;
std::optional<std::uint64_t> ParseUint64(std::string_view s) noexcept;

/// Strict floating-point parse over the whole view.
std::optional<double> ParseDouble(std::string_view s) noexcept;

/// Extracts the registrable top-level domain label from a host or URL, e.g.
/// "https://www.example.co.uk/a/b" -> "uk". Returns empty view on failure.
/// Country attribution in the paper (Section VI-C) is done this way.
std::string_view TopLevelDomain(std::string_view url_or_host) noexcept;

/// Extracts the host part from a URL ("http://a.b.c/d" -> "a.b.c").
std::string_view HostOfUrl(std::string_view url) noexcept;

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Formats n with thousands separators: 1234567 -> "1,234,567".
std::string WithThousands(std::uint64_t n);

}  // namespace gdelt
