#include "util/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdarg>
#include <cstdio>

namespace gdelt {

std::string_view TrimView(std::string_view s) noexcept {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) noexcept {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::vector<std::string_view> SplitView(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  SplitInto(s, delim, out);
  return out;
}

void SplitInto(std::string_view s, char delim,
               std::vector<std::string_view>& out) {
  out.clear();
  std::size_t start = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == delim) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  out.push_back(s.substr(start));
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::optional<std::int64_t> ParseInt64(std::string_view s) noexcept {
  if (s.empty()) return std::nullopt;
  std::int64_t value = 0;
  const auto* first = s.data();
  const auto* last = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  return value;
}

std::optional<std::uint64_t> ParseUint64(std::string_view s) noexcept {
  if (s.empty()) return std::nullopt;
  std::uint64_t value = 0;
  const auto* first = s.data();
  const auto* last = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  return value;
}

std::optional<double> ParseDouble(std::string_view s) noexcept {
  if (s.empty()) return std::nullopt;
  double value = 0.0;
  const auto* first = s.data();
  const auto* last = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  return value;
}

std::string_view HostOfUrl(std::string_view url) noexcept {
  const auto scheme = url.find("://");
  std::string_view rest =
      scheme == std::string_view::npos ? url : url.substr(scheme + 3);
  const auto slash = rest.find('/');
  std::string_view host =
      slash == std::string_view::npos ? rest : rest.substr(0, slash);
  const auto colon = host.find(':');
  if (colon != std::string_view::npos) host = host.substr(0, colon);
  return host;
}

std::string_view TopLevelDomain(std::string_view url_or_host) noexcept {
  const std::string_view host = HostOfUrl(url_or_host);
  if (host.empty()) return {};
  const auto dot = host.rfind('.');
  if (dot == std::string_view::npos || dot + 1 >= host.size()) return {};
  std::string_view tld = host.substr(dot + 1);
  // Reject ports / raw IPv4 tails.
  for (char c : tld) {
    if (c >= '0' && c <= '9') return {};
  }
  return tld;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

std::string WithThousands(std::uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (digits.size() - i) % 3 == 0) out += ',';
    out += digits[i];
  }
  return out;
}

}  // namespace gdelt
