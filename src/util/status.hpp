// Lightweight status / result types used across the GDELT mining system.
//
// The engine is exception-free on hot paths: recoverable errors travel as
// `Status` / `Result<T>` values so that parallel regions and I/O loops can
// propagate failures without unwinding across OpenMP boundaries.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace gdelt {

/// Error category for a failed operation.
enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kDataLoss,     ///< corrupt file, bad checksum, truncated input
  kIoError,      ///< OS-level I/O failure
  kParseError,   ///< malformed CSV / master-list entry
  kUnimplemented,
  kInternal,
  kCancelled,    ///< cooperatively cancelled (deadline, disconnect, router)
};

/// Human-readable name of a status code ("Ok", "ParseError", ...).
std::string_view StatusCodeName(StatusCode code) noexcept;

/// A success-or-error value. Cheap to copy on success (no allocation).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  /// Constructs an error status with a message. `code` must not be kOk.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() noexcept { return Status(); }

  bool ok() const noexcept { return code_ == StatusCode::kOk; }
  StatusCode code() const noexcept { return code_; }
  const std::string& message() const noexcept { return message_; }

  /// "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A value or an error. Modeled after absl::StatusOr.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value: `return 42;`
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  /// Implicit from error status: `return Status(...);`. Must not be OK.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT(google-explicit-constructor)

  bool ok() const noexcept { return value_.has_value(); }
  const Status& status() const noexcept { return status_; }

  T& value() & { return *value_; }
  const T& value() const& { return *value_; }
  T&& value() && { return *std::move(value_); }

  T& operator*() & { return *value_; }
  const T& operator*() const& { return *value_; }
  T* operator->() { return &*value_; }
  const T* operator->() const { return &*value_; }

  /// Returns the value, or `fallback` on error.
  T value_or(T fallback) const& {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

namespace status {
inline Status InvalidArgument(std::string msg) {
  return {StatusCode::kInvalidArgument, std::move(msg)};
}
inline Status NotFound(std::string msg) {
  return {StatusCode::kNotFound, std::move(msg)};
}
inline Status AlreadyExists(std::string msg) {
  return {StatusCode::kAlreadyExists, std::move(msg)};
}
inline Status OutOfRange(std::string msg) {
  return {StatusCode::kOutOfRange, std::move(msg)};
}
inline Status FailedPrecondition(std::string msg) {
  return {StatusCode::kFailedPrecondition, std::move(msg)};
}
inline Status DataLoss(std::string msg) {
  return {StatusCode::kDataLoss, std::move(msg)};
}
inline Status IoError(std::string msg) {
  return {StatusCode::kIoError, std::move(msg)};
}
inline Status ParseError(std::string msg) {
  return {StatusCode::kParseError, std::move(msg)};
}
inline Status Unimplemented(std::string msg) {
  return {StatusCode::kUnimplemented, std::move(msg)};
}
inline Status Internal(std::string msg) {
  return {StatusCode::kInternal, std::move(msg)};
}
inline Status Cancelled(std::string msg) {
  return {StatusCode::kCancelled, std::move(msg)};
}
}  // namespace status

/// Propagates an error status from an expression that yields a Status.
#define GDELT_RETURN_IF_ERROR(expr)                  \
  do {                                               \
    ::gdelt::Status gdelt_status_ = (expr);          \
    if (!gdelt_status_.ok()) return gdelt_status_;   \
  } while (false)

/// Declares `lhs` from a Result-yielding expression, propagating errors.
#define GDELT_ASSIGN_OR_RETURN(lhs, expr)            \
  GDELT_ASSIGN_OR_RETURN_IMPL_(                      \
      GDELT_STATUS_CONCAT_(result_, __LINE__), lhs, expr)
#define GDELT_STATUS_CONCAT_INNER_(a, b) a##b
#define GDELT_STATUS_CONCAT_(a, b) GDELT_STATUS_CONCAT_INNER_(a, b)
#define GDELT_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

}  // namespace gdelt
