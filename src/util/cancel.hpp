// Cooperative cancellation for long-running queries.
//
// A CancelToken is created per request by the serve layer, threaded
// through the scheduler and RenderQuery into the engine, and polled at
// morsel granularity by the parallel runtime and the analysis kernels.
// Cancellation is never preemptive: a kernel that observes the token
// may stop early and return garbage, and the *enforcement boundary*
// (RenderQuery / the serve worker) re-checks the token and replaces any
// partial result with a Cancelled status, so no partial output escapes.
//
// The fast path is one relaxed atomic load; arming a deadline adds one
// steady_clock read per poll until it latches. All members are atomics,
// so the type is trivially TSA-clean (no capabilities to annotate) and
// safe to poll from every worker while any thread cancels.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace gdelt::util {

/// Why a token fired. First cause wins and is latched; later Cancel()
/// calls and deadline expiries do not overwrite it.
enum class CancelReason : std::uint8_t {
  kNone = 0,
  kDeadline = 1,    ///< armed deadline expired mid-execution
  kDisconnect = 2,  ///< the requesting client hung up
  kRouter = 3,      ///< the router abandoned this scatter
};

/// Shared cancellation flag + optional deadline. One token per request;
/// pointers to it outlive the request only via the registries that hand
/// them out (the serve layer owns the lifetime).
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Arms the deadline: Poll() latches kDeadline once steady_clock
  /// passes this point. Call at most once, before handing the token to
  /// the kernels (the serve worker arms it at dequeue).
  void ArmDeadline(std::chrono::steady_clock::time_point deadline) noexcept {
    deadline_ns_.store(deadline.time_since_epoch().count(),
                       std::memory_order_relaxed);
  }

  /// Latches `reason` unless some reason already fired (first wins).
  void Cancel(CancelReason reason) noexcept {
    std::uint8_t expected = 0;
    reason_.compare_exchange_strong(expected,
                                    static_cast<std::uint8_t>(reason),
                                    std::memory_order_relaxed,
                                    std::memory_order_relaxed);
  }

  /// True once cancelled; checks the armed deadline lazily so pollers
  /// observe expiry without anyone calling Cancel(). Cheap enough for
  /// per-morsel (and even per-chunk) polling.
  bool Poll() const noexcept {
    if (reason_.load(std::memory_order_relaxed) != 0) return true;
    const std::int64_t armed = deadline_ns_.load(std::memory_order_relaxed);
    if (armed == kUnarmed) return false;
    const std::int64_t now =
        std::chrono::steady_clock::now().time_since_epoch().count();
    if (now < armed) return false;
    std::uint8_t expected = 0;
    reason_.compare_exchange_strong(
        expected, static_cast<std::uint8_t>(CancelReason::kDeadline),
        std::memory_order_relaxed, std::memory_order_relaxed);
    return true;
  }

  /// The latched reason (kNone while running). Poll() first if you need
  /// deadline expiry reflected.
  CancelReason reason() const noexcept {
    return static_cast<CancelReason>(reason_.load(std::memory_order_relaxed));
  }

 private:
  static constexpr std::int64_t kUnarmed = INT64_MAX;
  mutable std::atomic<std::uint8_t> reason_{0};
  std::atomic<std::int64_t> deadline_ns_{kUnarmed};
};

/// Null-safe poll: kernels take `const CancelToken*` defaulted to
/// nullptr, so callers that never cancel (CLI, tests, benches) pass
/// nothing and pay one pointer compare.
inline bool Cancelled(const CancelToken* token) noexcept {
  return token != nullptr && token->Poll();
}

}  // namespace gdelt::util
