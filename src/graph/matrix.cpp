#include "graph/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "parallel/parallel.hpp"

namespace gdelt::graph {

SparseMatrix DenseToSparse(const DenseMatrix& dense, double threshold) {
  SparseMatrix out;
  out.rows = dense.rows();
  out.cols = dense.cols();
  out.row_offsets.assign(out.rows + 1, 0);
  for (std::size_t r = 0; r < out.rows; ++r) {
    std::uint64_t nnz = 0;
    for (const double v : dense.Row(r)) {
      if (std::abs(v) > threshold) ++nnz;
    }
    out.row_offsets[r + 1] = out.row_offsets[r] + nnz;
  }
  out.col_index.resize(out.row_offsets.back());
  out.values.resize(out.row_offsets.back());
  ParallelFor(out.rows, [&](std::size_t r) {
    std::uint64_t at = out.row_offsets[r];
    const auto row = dense.Row(r);
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (std::abs(row[c]) > threshold) {
        out.col_index[at] = static_cast<std::uint32_t>(c);
        out.values[at] = row[c];
        ++at;
      }
    }
  });
  return out;
}

DenseMatrix SparseToDense(const SparseMatrix& sparse) {
  DenseMatrix out(sparse.rows, sparse.cols);
  ParallelFor(sparse.rows, [&](std::size_t r) {
    for (std::uint64_t k = sparse.row_offsets[r];
         k < sparse.row_offsets[r + 1]; ++k) {
      out.At(r, sparse.col_index[k]) = sparse.values[k];
    }
  });
  return out;
}

SparseMatrix Multiply(const SparseMatrix& a, const SparseMatrix& b) {
  SparseMatrix out;
  out.rows = a.rows;
  out.cols = b.cols;
  out.row_offsets.assign(out.rows + 1, 0);

  // Two-phase Gustavson: count nnz per row, then fill. Parallel over rows
  // with a per-thread dense accumulator.
  std::vector<std::vector<std::uint32_t>> row_cols(out.rows);
  std::vector<std::vector<double>> row_vals(out.rows);
#pragma omp parallel
  {
    std::vector<double> acc(b.cols, 0.0);
    std::vector<std::uint32_t> touched;
#pragma omp for schedule(dynamic, 64)
    for (std::int64_t r = 0; r < static_cast<std::int64_t>(a.rows); ++r) {
      touched.clear();
      for (std::uint64_t ka = a.row_offsets[r]; ka < a.row_offsets[r + 1];
           ++ka) {
        const std::uint32_t j = a.col_index[ka];
        const double av = a.values[ka];
        for (std::uint64_t kb = b.row_offsets[j]; kb < b.row_offsets[j + 1];
             ++kb) {
          const std::uint32_t c = b.col_index[kb];
          if (acc[c] == 0.0) touched.push_back(c);
          acc[c] += av * b.values[kb];
        }
      }
      std::sort(touched.begin(), touched.end());
      auto& cols = row_cols[static_cast<std::size_t>(r)];
      auto& vals = row_vals[static_cast<std::size_t>(r)];
      cols.reserve(touched.size());
      vals.reserve(touched.size());
      for (const std::uint32_t c : touched) {
        if (acc[c] != 0.0) {
          cols.push_back(c);
          vals.push_back(acc[c]);
        }
        acc[c] = 0.0;
      }
    }
  }
  for (std::size_t r = 0; r < out.rows; ++r) {
    out.row_offsets[r + 1] = out.row_offsets[r] + row_cols[r].size();
  }
  out.col_index.resize(out.row_offsets.back());
  out.values.resize(out.row_offsets.back());
  ParallelFor(out.rows, [&](std::size_t r) {
    std::copy(row_cols[r].begin(), row_cols[r].end(),
              out.col_index.begin() +
                  static_cast<std::ptrdiff_t>(out.row_offsets[r]));
    std::copy(row_vals[r].begin(), row_vals[r].end(),
              out.values.begin() +
                  static_cast<std::ptrdiff_t>(out.row_offsets[r]));
  });
  return out;
}

void NormalizeRows(SparseMatrix& m) {
  // Zero rows get a self-loop appended; collect them first since appending
  // reshapes the CSR arrays.
  std::vector<std::size_t> zero_rows;
  for (std::size_t r = 0; r < m.rows; ++r) {
    double sum = 0.0;
    for (std::uint64_t k = m.row_offsets[r]; k < m.row_offsets[r + 1]; ++k) {
      sum += m.values[k];
    }
    if (sum <= 0.0) {
      zero_rows.push_back(r);
    } else {
      for (std::uint64_t k = m.row_offsets[r]; k < m.row_offsets[r + 1];
           ++k) {
        m.values[k] /= sum;
      }
    }
  }
  if (zero_rows.empty()) return;
  SparseMatrix rebuilt;
  rebuilt.rows = m.rows;
  rebuilt.cols = m.cols;
  rebuilt.row_offsets.assign(m.rows + 1, 0);
  std::size_t zi = 0;
  for (std::size_t r = 0; r < m.rows; ++r) {
    const bool is_zero = zi < zero_rows.size() && zero_rows[zi] == r;
    const std::uint64_t nnz =
        is_zero ? 1 : m.row_offsets[r + 1] - m.row_offsets[r];
    rebuilt.row_offsets[r + 1] = rebuilt.row_offsets[r] + nnz;
    if (is_zero) ++zi;
  }
  rebuilt.col_index.resize(rebuilt.row_offsets.back());
  rebuilt.values.resize(rebuilt.row_offsets.back());
  zi = 0;
  for (std::size_t r = 0; r < m.rows; ++r) {
    std::uint64_t at = rebuilt.row_offsets[r];
    if (zi < zero_rows.size() && zero_rows[zi] == r) {
      rebuilt.col_index[at] = static_cast<std::uint32_t>(r);
      rebuilt.values[at] = 1.0;
      ++zi;
      continue;
    }
    for (std::uint64_t k = m.row_offsets[r]; k < m.row_offsets[r + 1];
         ++k, ++at) {
      rebuilt.col_index[at] = m.col_index[k];
      rebuilt.values[at] = m.values[k];
    }
  }
  m = std::move(rebuilt);
}

double FrobeniusDistance(const SparseMatrix& a, const SparseMatrix& b) {
  // Walk both row streams simultaneously (columns are sorted within rows).
  double sum = 0.0;
  for (std::size_t r = 0; r < a.rows; ++r) {
    std::uint64_t ka = a.row_offsets[r];
    std::uint64_t kb = b.row_offsets[r];
    const std::uint64_t ea = a.row_offsets[r + 1];
    const std::uint64_t eb = b.row_offsets[r + 1];
    while (ka < ea || kb < eb) {
      std::uint32_t ca = ka < ea ? a.col_index[ka] : UINT32_MAX;
      std::uint32_t cb = kb < eb ? b.col_index[kb] : UINT32_MAX;
      double d = 0.0;
      if (ca == cb) {
        d = a.values[ka] - b.values[kb];
        ++ka;
        ++kb;
      } else if (ca < cb) {
        d = a.values[ka];
        ++ka;
      } else {
        d = -b.values[kb];
        ++kb;
      }
      sum += d * d;
    }
  }
  return std::sqrt(sum);
}

}  // namespace gdelt::graph
