#include "graph/mcl.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace gdelt::graph {
namespace {

/// Elementwise power + row renormalization + pruning.
void Inflate(SparseMatrix& m, double inflation, double prune_threshold) {
  for (std::size_t r = 0; r < m.rows; ++r) {
    double sum = 0.0;
    for (std::uint64_t k = m.row_offsets[r]; k < m.row_offsets[r + 1]; ++k) {
      m.values[k] = std::pow(m.values[k], inflation);
      sum += m.values[k];
    }
    if (sum > 0.0) {
      for (std::uint64_t k = m.row_offsets[r]; k < m.row_offsets[r + 1];
           ++k) {
        m.values[k] /= sum;
      }
    }
  }
  // Prune tiny entries and renormalize the survivors.
  SparseMatrix pruned;
  pruned.rows = m.rows;
  pruned.cols = m.cols;
  pruned.row_offsets.assign(m.rows + 1, 0);
  for (std::size_t r = 0; r < m.rows; ++r) {
    std::uint64_t nnz = 0;
    for (std::uint64_t k = m.row_offsets[r]; k < m.row_offsets[r + 1]; ++k) {
      if (m.values[k] > prune_threshold) ++nnz;
    }
    pruned.row_offsets[r + 1] = pruned.row_offsets[r] + std::max<std::uint64_t>(nnz, 1);
  }
  pruned.col_index.resize(pruned.row_offsets.back());
  pruned.values.resize(pruned.row_offsets.back());
  for (std::size_t r = 0; r < m.rows; ++r) {
    std::uint64_t at = pruned.row_offsets[r];
    std::uint64_t kept = 0;
    double best_val = -1.0;
    std::uint32_t best_col = static_cast<std::uint32_t>(r);
    double sum = 0.0;
    for (std::uint64_t k = m.row_offsets[r]; k < m.row_offsets[r + 1]; ++k) {
      if (m.values[k] > best_val) {
        best_val = m.values[k];
        best_col = m.col_index[k];
      }
      if (m.values[k] > prune_threshold) {
        pruned.col_index[at + kept] = m.col_index[k];
        pruned.values[at + kept] = m.values[k];
        sum += m.values[k];
        ++kept;
      }
    }
    if (kept == 0) {
      // Keep at least the strongest entry so the walk never dies.
      pruned.col_index[at] = best_col;
      pruned.values[at] = 1.0;
      continue;
    }
    for (std::uint64_t k = 0; k < kept; ++k) {
      pruned.values[at + k] /= sum;
    }
  }
  m = std::move(pruned);
}

/// Connected components over the symmetrized support of m.
void SupportComponents(const SparseMatrix& m, MclResult& result) {
  const std::size_t n = m.rows;
  std::vector<std::uint32_t> parent(n);
  std::iota(parent.begin(), parent.end(), 0u);
  const auto find = [&](std::uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (std::size_t r = 0; r < n; ++r) {
    for (std::uint64_t k = m.row_offsets[r]; k < m.row_offsets[r + 1]; ++k) {
      const std::uint32_t a = find(static_cast<std::uint32_t>(r));
      const std::uint32_t b = find(m.col_index[k]);
      if (a != b) parent[a] = b;
    }
  }
  result.cluster.assign(n, 0);
  std::vector<std::uint32_t> label(n, UINT32_MAX);
  std::uint32_t next = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t root = find(static_cast<std::uint32_t>(i));
    if (label[root] == UINT32_MAX) label[root] = next++;
    result.cluster[i] = label[root];
  }
  result.num_clusters = next;
}

}  // namespace

MclResult MarkovCluster(const SparseMatrix& similarity,
                        const MclOptions& options) {
  SparseMatrix m = similarity;
  if (options.add_self_loops) {
    DenseMatrix dense = SparseToDense(m);
    for (std::size_t i = 0; i < dense.rows(); ++i) {
      // Self-loop weight = max of the row (standard MCL preconditioning).
      double mx = 0.0;
      for (const double v : dense.Row(i)) mx = std::max(mx, v);
      dense.At(i, i) = mx > 0.0 ? mx : 1.0;
    }
    m = DenseToSparse(dense);
  }
  NormalizeRows(m);

  MclResult result;
  for (int it = 0; it < options.max_iterations; ++it) {
    SparseMatrix expanded = Multiply(m, m);
    Inflate(expanded, options.inflation, options.prune_threshold);
    const double delta = FrobeniusDistance(expanded, m);
    m = std::move(expanded);
    result.iterations = it + 1;
    if (delta < options.convergence_eps) {
      result.converged = true;
      break;
    }
  }
  SupportComponents(m, result);
  return result;
}

}  // namespace gdelt::graph
