// Markov Clustering (van Dongen 2000) over similarity matrices.
//
// The paper suggests applying MCL to the (symmetric) co-reporting matrix
// to discover clusters of co-owned news websites. Implemented with the
// row-stochastic convention (equivalent on symmetric input): alternate
// expansion (M <- M*M) and inflation (elementwise power + renormalize),
// pruning small entries, until the matrix stops changing; clusters are the
// connected components of the converged matrix's support.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/matrix.hpp"

namespace gdelt::graph {

struct MclOptions {
  double inflation = 2.0;       ///< > 1; higher = finer clusters
  double prune_threshold = 1e-5;
  int max_iterations = 60;
  double convergence_eps = 1e-6;
  bool add_self_loops = true;   ///< standard MCL preconditioning
};

struct MclResult {
  /// cluster[i] = cluster index of node i (dense, 0-based).
  std::vector<std::uint32_t> cluster;
  std::uint32_t num_clusters = 0;
  int iterations = 0;
  bool converged = false;
};

/// Runs MCL on a symmetric non-negative similarity matrix.
MclResult MarkovCluster(const SparseMatrix& similarity,
                        const MclOptions& options = {});

}  // namespace gdelt::graph
