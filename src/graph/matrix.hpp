// Dense and CSR sparse matrices for the graph-analysis extension
// (Markov clustering of the co-reporting matrix, paper Section VI-B).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace gdelt::graph {

/// Row-major dense matrix of doubles.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  double& At(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  double At(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }
  std::span<double> Row(std::size_t r) noexcept {
    // gdelt-astcheck: allow(view-escape) — data_ is sized once in the
    // constructor and never resized; element writes through At/Row
    // cannot reallocate, so row spans stay valid for the matrix's life.
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> Row(std::size_t r) const noexcept {
    // gdelt-astcheck: allow(view-escape) — same fixed-capacity contract
    // as the mutable overload above.
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> data() const noexcept { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Compressed-sparse-row matrix of doubles.
struct SparseMatrix {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<std::uint64_t> row_offsets;  ///< rows + 1
  std::vector<std::uint32_t> col_index;
  std::vector<double> values;

  std::size_t nnz() const noexcept { return values.size(); }
};

/// Converts dense -> sparse, dropping entries with |v| <= threshold.
SparseMatrix DenseToSparse(const DenseMatrix& dense, double threshold = 0.0);

/// Converts sparse -> dense.
DenseMatrix SparseToDense(const SparseMatrix& sparse);

/// Sparse * sparse (both CSR), parallel over result rows.
SparseMatrix Multiply(const SparseMatrix& a, const SparseMatrix& b);

/// Normalizes every row of a sparse matrix to sum 1 (row-stochastic).
/// Zero rows get an implicit self-loop (single diagonal 1).
/// MCL here uses the row-stochastic convention; for the symmetric
/// co-reporting matrix this is equivalent to the classic column form.
void NormalizeRows(SparseMatrix& m);

/// Frobenius distance between two same-shape sparse matrices.
double FrobeniusDistance(const SparseMatrix& a, const SparseMatrix& b);

}  // namespace gdelt::graph
