#include "serve/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "serve/json.hpp"
#include "util/strings.hpp"

namespace gdelt::serve {

void LatencyHistogram::Record(double seconds) {
  const double us = std::max(0.0, seconds * 1e6);
  int bucket = 0;
  while (bucket + 1 < kBuckets && us >= static_cast<double>(2ull << bucket)) {
    ++bucket;
  }
  sync::MutexLock lock(mu_);
  ++data_.count;
  data_.sum_ms += seconds * 1e3;
  data_.max_ms = std::max(data_.max_ms, seconds * 1e3);
  ++data_.buckets[bucket];
}

double LatencyHistogram::Snapshot::QuantileMs(double q) const noexcept {
  if (count == 0) return 0.0;
  // rank >= 1: with q == 0 an unclamped rank of 0 matched the very first
  // (possibly empty) bucket and reported 2 us out of thin air.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(std::clamp(q, 0.0, 1.0) * static_cast<double>(count))));
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets[b];
    if (seen >= rank) {
      // Bucket upper edge, clamped to the observed max: the top bucket is
      // open-ended (its edge would claim 16.7 s for anything >= 8.4 s) and
      // even interior edges can overshoot the largest sample seen.
      return std::min(static_cast<double>(BucketUpperUs(b)) / 1e3, max_ms);
    }
  }
  return max_ms;
}

LatencyHistogram::Snapshot LatencyHistogram::Snap() const {
  sync::MutexLock lock(mu_);
  return data_;
}

void ServerMetrics::RecordLatency(const std::string& kind, double seconds) {
  sync::MutexLock lock(histograms_mu_);
  histograms_[kind].Record(seconds);
}

std::map<std::string, LatencyHistogram::Snapshot>
ServerMetrics::HistogramSnapshots() const {
  sync::MutexLock lock(histograms_mu_);
  std::map<std::string, LatencyHistogram::Snapshot> out;
  for (const auto& [kind, histogram] : histograms_) {
    out.emplace(kind, histogram.Snap());
  }
  return out;
}

std::string ServerMetrics::ToJson(const Gauges& gauges) const {
  std::string out = "{";
  const auto counter = [&out](const char* name, std::uint64_t value,
                              bool comma = true) {
    out += StrFormat("\"%s\":%llu%s", name,
                     static_cast<unsigned long long>(value),
                     comma ? "," : "");
  };
  counter("requests_total", requests_total.load());
  counter("responses_ok", responses_ok.load());
  counter("cache_hits", cache_hits.load());
  counter("cache_misses", cache_misses.load());
  counter("rejected_overloaded", rejected_overloaded.load());
  counter("timeouts", timeouts.load());
  counter("cancelled_deadline", cancelled_deadline.load());
  counter("cancelled_disconnect", cancelled_disconnect.load());
  counter("cancelled_router", cancelled_router.load());
  counter("timeouts_salvaged_by_cache", timeouts_salvaged_by_cache.load());
  counter("bad_requests", bad_requests.load());
  counter("unknown_queries", unknown_queries.load());
  counter("internal_errors", internal_errors.load());
  counter("ingests", ingests.load());
  counter("ingest_failures", ingest_failures.load());
  counter("connections_opened", connections_opened.load());
  counter("ingest_retries", gauges.ingest_retries);
  counter("ingest_quarantined", gauges.ingest_quarantined);
  counter("last_ingest_generation", gauges.last_ingest_generation);
  out += StrFormat("\"last_ingest_age_s\":%.1f,", gauges.last_ingest_age_s);
  counter("queue_depth", gauges.queue_depth);
  counter("queue_capacity", gauges.queue_capacity);
  counter("workers", static_cast<std::uint64_t>(gauges.workers));
  counter("threads_per_query",
          static_cast<std::uint64_t>(gauges.threads_per_query));
  counter("epoch", gauges.epoch);
  counter("cache_entries", gauges.cache_entries);
  counter("cache_text_bytes", gauges.cache_text_bytes);
  counter("cache_evicted_stale", gauges.cache_evicted_stale);
  counter("morsels_skipped", gauges.morsels_skipped);
  out += StrFormat("\"retry_after_ms\":%lld,",
                   static_cast<long long>(gauges.retry_after_ms));
  out += StrFormat("\"uptime_s\":%.1f,", gauges.uptime_s);
  out += "\"latency_ms\":{";
  {
    sync::MutexLock lock(histograms_mu_);
    bool first = true;
    for (const auto& [kind, histogram] : histograms_) {
      const auto snap = histogram.Snap();
      if (!first) out += ",";
      first = false;
      AppendJsonString(out, kind);
      out += StrFormat(
          ":{\"count\":%llu,\"mean\":%.3f,\"p50\":%.3f,\"p90\":%.3f,"
          "\"p99\":%.3f,\"max\":%.3f}",
          static_cast<unsigned long long>(snap.count), snap.MeanMs(),
          snap.QuantileMs(0.50), snap.QuantileMs(0.90),
          snap.QuantileMs(0.99), snap.max_ms);
    }
  }
  out += "}}";
  return out;
}

std::string ServerMetrics::Summary(const Gauges& gauges) const {
  return StrFormat(
      "served=%llu ok=%llu hit=%llu miss=%llu overload=%llu timeout=%llu "
      "cancelled=%llu bad=%llu queue=%zu/%zu cache=%zu epoch=%llu "
      "ingest_fail=%llu retries=%llu quarantined=%llu ingest_age=%.0fs "
      "up=%.0fs",
      static_cast<unsigned long long>(requests_total.load()),
      static_cast<unsigned long long>(responses_ok.load()),
      static_cast<unsigned long long>(cache_hits.load()),
      static_cast<unsigned long long>(cache_misses.load()),
      static_cast<unsigned long long>(rejected_overloaded.load()),
      static_cast<unsigned long long>(timeouts.load()),
      static_cast<unsigned long long>(cancelled_deadline.load() +
                                      cancelled_disconnect.load() +
                                      cancelled_router.load()),
      static_cast<unsigned long long>(bad_requests.load()),
      gauges.queue_depth, gauges.queue_capacity, gauges.cache_entries,
      static_cast<unsigned long long>(gauges.epoch),
      static_cast<unsigned long long>(ingest_failures.load()),
      static_cast<unsigned long long>(gauges.ingest_retries),
      static_cast<unsigned long long>(gauges.ingest_quarantined),
      gauges.last_ingest_age_s, gauges.uptime_s);
}

}  // namespace gdelt::serve
