#include "serve/json.hpp"

#include <cstdio>
#include <cstdlib>

namespace gdelt::serve {
namespace {

constexpr int kMaxDepth = 16;

}  // namespace

/// Recursive-descent parser over a string_view cursor.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : at_(text) {}

  Result<JsonValue> ParseDocument() {
    SkipWhitespace();
    JsonValue root;
    GDELT_RETURN_IF_ERROR(ParseValue(root, 0));
    SkipWhitespace();
    if (!at_.empty()) {
      return status::ParseError("trailing characters after JSON value");
    }
    return root;
  }

 private:
  void SkipWhitespace() {
    std::size_t i = 0;
    while (i < at_.size() && (at_[i] == ' ' || at_[i] == '\t' ||
                              at_[i] == '\n' || at_[i] == '\r')) {
      ++i;
    }
    at_.remove_prefix(i);
  }

  bool Consume(char c) {
    if (at_.empty() || at_.front() != c) return false;
    at_.remove_prefix(1);
    return true;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (at_.substr(0, lit.size()) != lit) return false;
    at_.remove_prefix(lit.size());
    return true;
  }

  Status ParseValue(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return status::ParseError("JSON nested too deep");
    SkipWhitespace();
    if (at_.empty()) return status::ParseError("unexpected end of JSON");
    const char c = at_.front();
    if (c == '{') return ParseObject(out, depth);
    if (c == '[') return ParseArray(out, depth);
    if (c == '"') {
      out.kind_ = JsonValue::Kind::kString;
      return ParseString(out.string_);
    }
    if (ConsumeLiteral("true")) {
      out.kind_ = JsonValue::Kind::kBool;
      out.bool_ = true;
      return Status::Ok();
    }
    if (ConsumeLiteral("false")) {
      out.kind_ = JsonValue::Kind::kBool;
      out.bool_ = false;
      return Status::Ok();
    }
    if (ConsumeLiteral("null")) {
      out.kind_ = JsonValue::Kind::kNull;
      return Status::Ok();
    }
    return ParseNumber(out);
  }

  Status ParseObject(JsonValue& out, int depth) {
    Consume('{');
    out.kind_ = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::Ok();
    while (true) {
      SkipWhitespace();
      std::string key;
      if (at_.empty() || at_.front() != '"') {
        return status::ParseError("expected object key string");
      }
      GDELT_RETURN_IF_ERROR(ParseString(key));
      SkipWhitespace();
      if (!Consume(':')) return status::ParseError("expected ':' in object");
      JsonValue value;
      GDELT_RETURN_IF_ERROR(ParseValue(value, depth + 1));
      out.members_.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::Ok();
      return status::ParseError("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue& out, int depth) {
    Consume('[');
    out.kind_ = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::Ok();
    while (true) {
      JsonValue value;
      GDELT_RETURN_IF_ERROR(ParseValue(value, depth + 1));
      out.elements_.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::Ok();
      return status::ParseError("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string& out) {
    Consume('"');
    out.clear();
    while (true) {
      if (at_.empty()) return status::ParseError("unterminated string");
      const char c = at_.front();
      at_.remove_prefix(1);
      if (c == '"') return Status::Ok();
      if (static_cast<unsigned char>(c) < 0x20) {
        return status::ParseError("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (at_.empty()) return status::ParseError("dangling escape");
      const char e = at_.front();
      at_.remove_prefix(1);
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (at_.size() < 4) return status::ParseError("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = at_[static_cast<std::size_t>(i)];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return status::ParseError("bad \\u escape");
            }
          }
          at_.remove_prefix(4);
          // Encode the code point as UTF-8 (surrogate pairs unsupported;
          // the protocol never emits them).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return status::ParseError("unknown escape character");
      }
    }
  }

  Status ParseNumber(JsonValue& out) {
    std::size_t len = 0;
    while (len < at_.size()) {
      const char c = at_[len];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
          c == 'e' || c == 'E') {
        ++len;
      } else {
        break;
      }
    }
    if (len == 0) return status::ParseError("unexpected character in JSON");
    const std::string text(at_.substr(0, len));
    char* end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size()) {
      return status::ParseError("malformed number '" + text + "'");
    }
    at_.remove_prefix(len);
    out.kind_ = JsonValue::Kind::kNumber;
    out.number_ = value;
    return Status::Ok();
  }

  std::string_view at_;
};

Result<JsonValue> JsonValue::Parse(std::string_view text) {
  return JsonParser(text).ParseDocument();
}

const JsonValue* JsonValue::Find(std::string_view key) const noexcept {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void AppendJsonString(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace gdelt::serve
