#include "serve/prom.hpp"

#include "util/strings.hpp"

namespace gdelt::serve {
namespace {

void Counter(std::string& out, const char* name, std::uint64_t value) {
  out += StrFormat("# TYPE %s counter\n%s %llu\n", name, name,
                   static_cast<unsigned long long>(value));
}

void Gauge(std::string& out, const char* name, double value) {
  out += StrFormat("# TYPE %s gauge\n%s %.9g\n", name, name, value);
}

}  // namespace

std::string PromEscapeLabel(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string PrometheusText(const ServerMetrics& metrics,
                           const ServerMetrics::Gauges& gauges,
                           const std::vector<trace::SpanAggregate>& spans) {
  std::string out;
  out.reserve(4096);

  Counter(out, "gdelt_requests_total", metrics.requests_total.load());
  Counter(out, "gdelt_responses_ok_total", metrics.responses_ok.load());
  Counter(out, "gdelt_cache_hits_total", metrics.cache_hits.load());
  Counter(out, "gdelt_cache_misses_total", metrics.cache_misses.load());
  Counter(out, "gdelt_rejected_overloaded_total",
          metrics.rejected_overloaded.load());
  Counter(out, "gdelt_timeouts_total", metrics.timeouts.load());
  Counter(out, "gdelt_cancelled_deadline_total",
          metrics.cancelled_deadline.load());
  Counter(out, "gdelt_cancelled_disconnect_total",
          metrics.cancelled_disconnect.load());
  Counter(out, "gdelt_cancelled_router_total",
          metrics.cancelled_router.load());
  Counter(out, "gdelt_timeouts_salvaged_by_cache_total",
          metrics.timeouts_salvaged_by_cache.load());
  Counter(out, "gdelt_bad_requests_total", metrics.bad_requests.load());
  Counter(out, "gdelt_unknown_queries_total", metrics.unknown_queries.load());
  Counter(out, "gdelt_internal_errors_total", metrics.internal_errors.load());
  Counter(out, "gdelt_ingests_total", metrics.ingests.load());
  Counter(out, "gdelt_ingest_failures_total", metrics.ingest_failures.load());
  Counter(out, "gdelt_connections_opened_total",
          metrics.connections_opened.load());
  Counter(out, "gdelt_ingest_retries_total", gauges.ingest_retries);
  Counter(out, "gdelt_ingest_quarantined_total", gauges.ingest_quarantined);

  Gauge(out, "gdelt_queue_depth", static_cast<double>(gauges.queue_depth));
  Gauge(out, "gdelt_queue_capacity",
        static_cast<double>(gauges.queue_capacity));
  Gauge(out, "gdelt_workers", gauges.workers);
  Gauge(out, "gdelt_threads_per_query", gauges.threads_per_query);
  Gauge(out, "gdelt_epoch", static_cast<double>(gauges.epoch));
  Gauge(out, "gdelt_cache_entries", static_cast<double>(gauges.cache_entries));
  Gauge(out, "gdelt_cache_text_bytes",
        static_cast<double>(gauges.cache_text_bytes));
  Counter(out, "gdelt_cache_evicted_stale_total", gauges.cache_evicted_stale);
  Gauge(out, "gdelt_uptime_seconds", gauges.uptime_s);
  Gauge(out, "gdelt_last_ingest_age_seconds", gauges.last_ingest_age_s);
  Counter(out, "gdelt_morsels_skipped_total", gauges.morsels_skipped);
  Gauge(out, "gdelt_retry_after_ms",
        static_cast<double>(gauges.retry_after_ms));

  const auto histograms = metrics.HistogramSnapshots();
  if (!histograms.empty()) {
    out += "# TYPE gdelt_request_latency_seconds histogram\n";
    for (const auto& [kind, snap] : histograms) {
      const std::string label = PromEscapeLabel(kind);
      std::uint64_t cumulative = 0;
      for (int b = 0; b < LatencyHistogram::kBuckets; ++b) {
        cumulative += snap.buckets[b];
        // The last bucket is open-ended; only +Inf covers it.
        if (b + 1 == LatencyHistogram::kBuckets) break;
        out += StrFormat(
            "gdelt_request_latency_seconds_bucket{kind=\"%s\",le=\"%.9g\"} "
            "%llu\n",
            label.c_str(),
            static_cast<double>(LatencyHistogram::BucketUpperUs(b)) / 1e6,
            static_cast<unsigned long long>(cumulative));
      }
      out += StrFormat(
          "gdelt_request_latency_seconds_bucket{kind=\"%s\",le=\"+Inf\"} "
          "%llu\n",
          label.c_str(), static_cast<unsigned long long>(snap.count));
      out += StrFormat("gdelt_request_latency_seconds_sum{kind=\"%s\"} %.9g\n",
                       label.c_str(), snap.sum_ms / 1e3);
      out += StrFormat(
          "gdelt_request_latency_seconds_count{kind=\"%s\"} %llu\n",
          label.c_str(), static_cast<unsigned long long>(snap.count));
    }
  }

  if (!spans.empty()) {
    out += "# TYPE gdelt_trace_span_total counter\n";
    for (const auto& span : spans) {
      out += StrFormat("gdelt_trace_span_total{name=\"%s\"} %llu\n",
                       PromEscapeLabel(span.name).c_str(),
                       static_cast<unsigned long long>(span.count));
    }
    out += "# TYPE gdelt_trace_span_seconds_total counter\n";
    for (const auto& span : spans) {
      out += StrFormat("gdelt_trace_span_seconds_total{name=\"%s\"} %.9g\n",
                       PromEscapeLabel(span.name).c_str(),
                       static_cast<double>(span.total_us) / 1e6);
    }
    out += "# TYPE gdelt_trace_span_max_seconds gauge\n";
    for (const auto& span : spans) {
      out += StrFormat("gdelt_trace_span_max_seconds{name=\"%s\"} %.9g\n",
                       PromEscapeLabel(span.name).c_str(),
                       static_cast<double>(span.max_us) / 1e6);
    }
  }
  return out;
}

}  // namespace gdelt::serve
