#include "serve/scheduler.hpp"

#include <algorithm>

#include "parallel/parallel.hpp"

namespace gdelt::serve {

Scheduler::Scheduler(const Options& options) : opt_(options) {
  opt_.workers = std::max(1, opt_.workers);
  opt_.queue_capacity = std::max<std::size_t>(1, opt_.queue_capacity);
  threads_per_query_ =
      opt_.threads_per_query > 0
          ? opt_.threads_per_query
          : std::max(1, MaxThreads() / opt_.workers);
  sync::MutexLock lock(drain_mu_);
  workers_.reserve(static_cast<std::size_t>(opt_.workers));
  for (int w = 0; w < opt_.workers; ++w) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Scheduler::~Scheduler() { Drain(); }

bool Scheduler::Submit(Task task) {
  {
    sync::MutexLock lock(mu_);
    if (draining_ || queue_.size() >= opt_.queue_capacity) return false;
    queue_.push_back(std::move(task));
  }
  cv_.NotifyOne();
  return true;
}

void Scheduler::Drain() {
  // drain_mu_ makes concurrent drains safe: the second caller blocks here
  // until the first has joined and cleared the pool, then sees an empty
  // workers_ and returns. Checking a flag under mu_ instead (the previous
  // scheme) let both callers reach the join loop and double-join.
  sync::MutexLock drain_lock(drain_mu_);
  {
    sync::MutexLock lock(mu_);
    draining_ = true;
  }
  cv_.NotifyAll();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

std::size_t Scheduler::QueueDepth() const {
  sync::MutexLock lock(mu_);
  return queue_.size();
}

void Scheduler::WorkerLoop() {
  // The OpenMP num-threads ICV is per native thread: setting it here caps
  // every parallel region this worker opens, so concurrent queries share
  // the machine instead of each grabbing all cores.
  SetThreads(threads_per_query_);
  while (true) {
    Task task;
    {
      sync::MutexLock lock(mu_);
      // An explicit loop, not a predicate lambda: lambdas are analyzed as
      // separate functions and could not see that mu_ is held.
      while (!draining_ && queue_.empty()) cv_.Wait(mu_);
      if (queue_.empty()) return;  // draining and nothing left
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace gdelt::serve
