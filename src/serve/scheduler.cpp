#include "serve/scheduler.hpp"

#include <algorithm>

#include "parallel/parallel.hpp"

namespace gdelt::serve {

Scheduler::Scheduler(const Options& options) : opt_(options) {
  opt_.workers = std::max(1, opt_.workers);
  opt_.queue_capacity = std::max<std::size_t>(1, opt_.queue_capacity);
  threads_per_query_ =
      opt_.threads_per_query > 0
          ? opt_.threads_per_query
          : std::max(1, MaxThreads() / opt_.workers);
  sync::MutexLock lock(drain_mu_);
  workers_.reserve(static_cast<std::size_t>(opt_.workers));
  for (int w = 0; w < opt_.workers; ++w) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Scheduler::~Scheduler() { Drain(); }

bool Scheduler::Submit(Task task, parallel::Priority priority) {
  {
    sync::MutexLock lock(mu_);
    if (draining_ ||
        queues_[0].size() + queues_[1].size() >= opt_.queue_capacity) {
      return false;
    }
    // The two-lane queue is part of the morsel-pool scheduling model; in
    // thread-per-query mode everything lands in one FIFO lane so the
    // baseline measured by bench_serve_throughput is the genuine
    // arrival-order behavior, not priority admission with OpenMP teams.
    const std::size_t lane =
        opt_.use_morsel_pool ? static_cast<std::size_t>(priority) : 1;
    queues_[lane].push_back({std::move(task), priority});
  }
  cv_.NotifyOne();
  return true;
}

void Scheduler::Drain() {
  // drain_mu_ makes concurrent drains safe: the second caller blocks here
  // until the first has joined and cleared the pool, then sees an empty
  // workers_ and returns. Checking a flag under mu_ instead (the previous
  // scheme) let both callers reach the join loop and double-join.
  sync::MutexLock drain_lock(drain_mu_);
  {
    sync::MutexLock lock(mu_);
    draining_ = true;
  }
  cv_.NotifyAll();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

std::size_t Scheduler::QueueDepth() const {
  sync::MutexLock lock(mu_);
  return queues_[0].size() + queues_[1].size();
}

void Scheduler::WorkerLoop() {
  // The OpenMP num-threads ICV is per native thread: setting it here caps
  // every parallel region this worker opens, so concurrent queries share
  // the machine instead of each grabbing all cores. In morsel mode the
  // hot kernels run on the shared pool instead, but the budget still
  // caps the remaining OpenMP regions (engine row aggregates, merges).
  SetThreads(threads_per_query_);
  while (true) {
    Entry entry;
    {
      sync::MutexLock lock(mu_);
      // An explicit loop, not a predicate lambda: lambdas are analyzed as
      // separate functions and could not see that mu_ is held.
      while (!draining_ && queues_[0].empty() && queues_[1].empty()) {
        cv_.Wait(mu_);
      }
      // Interactive lane first: a cheap query admitted behind a batch
      // scan does not wait for it.
      auto& lane = !queues_[0].empty() ? queues_[0] : queues_[1];
      if (lane.empty()) return;  // draining and nothing left
      entry = std::move(lane.front());
      lane.pop_front();
    }
    if (opt_.use_morsel_pool) {
      // Morsels this task submits inherit the request's priority class.
      parallel::ScopedPriority priority(entry.priority);
      entry.task();
    } else {
      entry.task();
    }
  }
}

}  // namespace gdelt::serve
