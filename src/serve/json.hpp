// Minimal JSON parsing/escaping for the serve wire protocol.
//
// The protocol (docs/PROTOCOL.md) is one flat JSON object per line, so
// this intentionally implements just enough of RFC 8259 for that: objects,
// arrays, strings with escapes, numbers, booleans and null, with a depth
// limit. No external dependency; malformed input comes back as a
// ParseError Status instead of throwing.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.hpp"

namespace gdelt::serve {

/// A parsed JSON value (tree). Object member order is preserved.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };

  /// Parses a complete JSON document; trailing non-whitespace is an error.
  static Result<JsonValue> Parse(std::string_view text);

  Kind kind() const noexcept { return kind_; }
  bool is_object() const noexcept { return kind_ == Kind::kObject; }
  bool is_string() const noexcept { return kind_ == Kind::kString; }
  bool is_number() const noexcept { return kind_ == Kind::kNumber; }
  bool is_bool() const noexcept { return kind_ == Kind::kBool; }

  bool AsBool(bool fallback = false) const noexcept {
    return kind_ == Kind::kBool ? bool_ : fallback;
  }
  double AsNumber(double fallback = 0.0) const noexcept {
    return kind_ == Kind::kNumber ? number_ : fallback;
  }
  std::int64_t AsInt(std::int64_t fallback = 0) const noexcept {
    return kind_ == Kind::kNumber ? static_cast<std::int64_t>(number_)
                                  : fallback;
  }
  /// Empty string unless this is a string value.
  const std::string& AsString() const noexcept { return string_; }

  /// Object member by key; nullptr if absent or not an object.
  const JsonValue* Find(std::string_view key) const noexcept;

  const std::vector<std::pair<std::string, JsonValue>>& members()
      const noexcept {
    return members_;
  }
  const std::vector<JsonValue>& elements() const noexcept {
    return elements_;
  }

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<std::pair<std::string, JsonValue>> members_;
  std::vector<JsonValue> elements_;
};

/// Appends `s` as a quoted, escaped JSON string literal.
void AppendJsonString(std::string& out, std::string_view s);

}  // namespace gdelt::serve
