// Admission control for query execution.
//
// The paper's aggregated queries each want the whole machine (they scale
// to 64 cores, Fig 12), but a service answering many users cannot let
// every request spawn a full-width OpenMP team — the oversubscription
// collapses throughput. This scheduler bounds concurrency three ways:
// a bounded request queue (overflow is rejected up front as `overloaded`
// instead of building unbounded latency), a fixed pool of worker threads,
// and a per-query OpenMP thread budget (each worker pins its own
// omp_set_num_threads, so workers * budget ≈ the hardware).
//
// In the default morsel mode the kernels additionally run their row
// morsels on the shared work-stealing pool (parallel::MorselPool) instead
// of private OpenMP teams: each admitted request carries a priority
// class, workers execute it under parallel::ScopedPriority, and the
// two-lane queue below dequeues interactive requests ahead of batch ones
// — so a cheap query admitted behind a saturating co-reporting scan
// passes it both at dequeue and inside the pool.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "parallel/morsel.hpp"
#include "util/sync.hpp"

namespace gdelt::serve {

class Scheduler {
 public:
  struct Options {
    int workers = 2;                 ///< fixed worker pool size (>= 1)
    std::size_t queue_capacity = 64; ///< pending requests beyond the pool
    int threads_per_query = 0;       ///< OpenMP budget; 0 = cores / workers
    /// Run query kernels on the shared morsel pool (default) or leave
    /// each worker to its private OpenMP team (the thread-per-query
    /// scheduling baseline measured by bench_serve_throughput).
    bool use_morsel_pool = true;
  };

  /// Starts the worker pool immediately.
  explicit Scheduler(const Options& options);
  /// Drains (runs everything already admitted) and joins.
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  using Task = std::function<void()>;

  /// Admission control: enqueues the task, or returns false when the
  /// bounded queue is full or the scheduler is draining. Every admitted
  /// task is guaranteed to run, even during drain. Interactive tasks
  /// dequeue ahead of batch tasks regardless of arrival order; the
  /// priority also rides into the morsel pool while the task runs.
  bool Submit(Task task,
              parallel::Priority priority = parallel::Priority::kInteractive);

  /// Stops admission, runs all queued tasks to completion, joins the
  /// workers. Idempotent.
  void Drain();

  std::size_t QueueDepth() const;
  std::size_t queue_capacity() const noexcept { return opt_.queue_capacity; }
  int workers() const noexcept { return opt_.workers; }
  int threads_per_query() const noexcept { return threads_per_query_; }
  bool use_morsel_pool() const noexcept { return opt_.use_morsel_pool; }

 private:
  struct Entry {
    Task task;
    parallel::Priority priority;
  };

  void WorkerLoop();

  Options opt_;
  int threads_per_query_ = 1;

  /// Serializes Drain callers: without it two concurrent drains both see
  /// the workers still present and double-join the same std::threads.
  sync::Mutex drain_mu_;

  mutable sync::Mutex mu_;
  sync::CondVar cv_;
  /// One lane per parallel::Priority value; interactive (0) drains first.
  std::deque<Entry> queues_[2] GDELT_GUARDED_BY(mu_);
  bool draining_ GDELT_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_ GDELT_GUARDED_BY(drain_mu_);
};

}  // namespace gdelt::serve
