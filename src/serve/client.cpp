#include "serve/client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "util/hash.hpp"
#include "util/rng.hpp"

namespace gdelt::serve {
namespace {

/// Backoff before attempt `attempt` (2-based), ChunkFetcher-shaped:
/// exponential, capped, with deterministic jitter in [capped/2, capped]
/// seeded per endpoint and attempt.
std::uint64_t BackoffMs(const ConnectOptions& opt, const std::string& endpoint,
                        std::uint32_t attempt) {
  double base = static_cast<double>(opt.backoff_initial_ms);
  for (std::uint32_t i = 2; i < attempt; ++i) {
    base *= opt.backoff_multiplier;
  }
  const auto capped = static_cast<std::uint64_t>(
      std::min(base, static_cast<double>(opt.backoff_max_ms)));
  if (capped == 0) return 0;
  Xoshiro256 rng(opt.jitter_seed ^ Fnv1a64(endpoint) ^
                 (static_cast<std::uint64_t>(attempt) << 32));
  const std::uint64_t half = capped / 2;
  return half + UniformBelow(rng, capped - half + 1);
}

/// One bounded connect attempt: non-blocking connect, poll for
/// writability, then read back SO_ERROR. Returns the connected fd.
Result<int> ConnectOnce(const sockaddr_in& addr, const std::string& endpoint,
                        std::int64_t timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  if (timeout_ms <= 0) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) < 0) {
      const std::string err = std::strerror(errno);
      ::close(fd);
      return status::IoError("connect " + endpoint + ": " + err);
    }
    return fd;
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    if (errno != EINPROGRESS) {
      const std::string err = std::strerror(errno);
      ::close(fd);
      return status::IoError("connect " + endpoint + ": " + err);
    }
    pollfd pfd{fd, POLLOUT, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
    if (ready <= 0) {
      ::close(fd);
      return status::IoError("connect " + endpoint + ": timed out after " +
                             std::to_string(timeout_ms) + " ms");
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len);
    if (so_error != 0) {
      const std::string err = std::strerror(so_error);
      ::close(fd);
      return status::IoError("connect " + endpoint + ": " + err);
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  return fd;
}

}  // namespace

Result<LineClient> LineClient::Connect(const std::string& host, int port) {
  ConnectOptions options;
  options.connect_timeout_ms = 0;  // historical behavior: blocking connect
  return Connect(host, port, options);
}

Result<LineClient> LineClient::Connect(const std::string& host, int port,
                                       const ConnectOptions& options) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  const std::string numeric = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) != 1) {
    return status::InvalidArgument("bad host '" + host + "'");
  }
  const std::string endpoint = numeric + ":" + std::to_string(port);
  const std::uint32_t attempts = std::max<std::uint32_t>(1, options.max_attempts);
  Status last_error = status::Internal("connect never attempted");
  for (std::uint32_t attempt = 1; attempt <= attempts; ++attempt) {
    if (attempt > 1) {
      const std::uint64_t delay = BackoffMs(options, endpoint, attempt);
      if (delay > 0) {
        if (options.sleep_fn) {
          options.sleep_fn(delay);
        } else {
          std::this_thread::sleep_for(std::chrono::milliseconds(delay));
        }
      }
    }
    auto fd = ConnectOnce(addr, endpoint, options.connect_timeout_ms);
    if (fd.ok()) return LineClient(*fd);
    last_error = fd.status();
  }
  return last_error;
}

LineClient::LineClient(LineClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buffer_(std::move(other.buffer_)) {}

LineClient& LineClient::operator=(LineClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

LineClient::~LineClient() { Close(); }

void LineClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status LineClient::SetRecvTimeoutMs(std::int64_t ms) {
  if (fd_ < 0) return status::Internal("client is closed");
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) < 0) {
    return status::Internal(std::string("setsockopt(SO_RCVTIMEO): ") +
                            std::strerror(errno));
  }
  return Status::Ok();
}

Status LineClient::Send(std::string_view request_line) {
  if (fd_ < 0) return status::Internal("client is closed");
  std::string framed(request_line);
  if (framed.empty() || framed.back() != '\n') framed.push_back('\n');
  std::string_view rest = framed;
  while (!rest.empty()) {
    const ssize_t n = ::write(fd_, rest.data(), rest.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      return status::Internal(std::string("write: ") + std::strerror(errno));
    }
    rest.remove_prefix(static_cast<std::size_t>(n));
  }
  return Status::Ok();
}

Result<std::string> LineClient::ReadLine() {
  if (fd_ < 0) return status::Internal("client is closed");
  while (true) {
    if (const auto nl = buffer_.find('\n'); nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // SO_RCVTIMEO expired (SetRecvTimeoutMs).
      return status::IoError("recv: deadline expired");
    }
    if (n < 0) {
      return status::Internal(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) {
      return status::Internal("connection closed by server");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

Result<std::string> LineClient::RoundTrip(std::string_view request_line) {
  GDELT_RETURN_IF_ERROR(Send(request_line));
  return ReadLine();
}

}  // namespace gdelt::serve
