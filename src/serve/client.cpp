#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

namespace gdelt::serve {

Result<LineClient> LineClient::Connect(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  const std::string numeric = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return status::InvalidArgument("bad host '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return status::Internal("connect " + numeric + ":" +
                            std::to_string(port) + ": " + err);
  }
  return LineClient(fd);
}

LineClient::LineClient(LineClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buffer_(std::move(other.buffer_)) {}

LineClient& LineClient::operator=(LineClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

LineClient::~LineClient() { Close(); }

void LineClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status LineClient::Send(std::string_view request_line) {
  if (fd_ < 0) return status::Internal("client is closed");
  std::string framed(request_line);
  if (framed.empty() || framed.back() != '\n') framed.push_back('\n');
  std::string_view rest = framed;
  while (!rest.empty()) {
    const ssize_t n = ::write(fd_, rest.data(), rest.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      return status::Internal(std::string("write: ") + std::strerror(errno));
    }
    rest.remove_prefix(static_cast<std::size_t>(n));
  }
  return Status::Ok();
}

Result<std::string> LineClient::ReadLine() {
  if (fd_ < 0) return status::Internal("client is closed");
  while (true) {
    if (const auto nl = buffer_.find('\n'); nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      return status::Internal(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) {
      return status::Internal("connection closed by server");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

Result<std::string> LineClient::RoundTrip(std::string_view request_line) {
  GDELT_RETURN_IF_ERROR(Send(request_line));
  return ReadLine();
}

}  // namespace gdelt::serve
