// Wire protocol of gdelt_serve (docs/PROTOCOL.md).
//
// Newline-delimited JSON over TCP: the client sends one flat JSON object
// per line, the server answers with exactly one JSON object line per
// request, in order. Requests are parsed strictly — unknown keys, bad
// types and malformed timestamps are rejected with a structured
// `bad_request` error instead of being guessed at — and every request is
// reduced to a canonical text form that keys the server's result cache.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "engine/filter.hpp"
#include "util/status.hpp"

namespace gdelt::serve {

/// Structured protocol error codes (the `error.code` response field).
enum class ErrorCode {
  kBadRequest,    ///< malformed JSON / unknown key / bad value
  kUnknownQuery,  ///< well-formed request for a query kind we don't have
  kOverloaded,    ///< admission control rejected: request queue full
  kTimeout,       ///< per-request deadline expired
  kShuttingDown,  ///< server is draining after SIGTERM
  kInternal,      ///< dispatcher failure (bug)
  kUnavailable,   ///< router: no healthy replica answered for a shard
  kCancelled,     ///< cooperatively cancelled (disconnect / cancel verb)
};

std::string_view ErrorCodeName(ErrorCode code) noexcept;

/// A parsed, validated client request.
struct Request {
  std::string id;    ///< client correlation id, echoed back (may be empty)
  std::string kind;  ///< query name, or "metrics" | "ping" | "ingest" |
                     ///< "cancel" (cancel requires a non-empty id naming
                     ///< the in-flight request to abort)

  // query options (mirror the gdelt_query CLI flags)
  std::size_t top_k = 10;
  std::string from;        ///< raw YYYYMMDDHHMMSS lower bound ("" = open)
  std::string to;          ///< raw YYYYMMDDHHMMSS upper bound ("" = open)
  int min_confidence = 0;

  std::int64_t timeout_ms = 0;      ///< 0 = server default
  std::int64_t debug_sleep_ms = 0;  ///< testing aid: stall the worker
  bool trace = false;               ///< return per-stage timings inline

  /// Server-side only (never parsed): the deadline actually enforced
  /// after clamping `timeout_ms` to the server's --max-timeout-ms.
  /// Echoed as `"deadline_ms"` in ok responses when > 0.
  std::int64_t effective_timeout_ms = 0;

  // partial-aggregate execution (router scatter; docs/PROTOCOL.md).
  // When `partial` is set the backend computes only the partition
  // `shard` of `of` and answers with a versioned partial-result frame
  // instead of rendered text.
  bool partial = false;
  std::uint32_t shard = 0;
  std::uint32_t of = 1;

  // ingest options
  std::string export_path;
  std::string mentions_path;

  // derived from from/to/min_confidence during parsing
  engine::MentionFilter filter;
  bool restricted = false;

  /// True for kinds answered from the database (dispatchable, cacheable).
  bool IsQuery() const noexcept;
};

/// True if `kind` names one of the dispatchable query kinds.
bool IsKnownQueryKind(std::string_view kind) noexcept;

/// True for the whole-table matrix builders (coreport, follow,
/// country-coreport, first-reports) that can monopolize the machine for
/// seconds. The scheduler runs these at batch priority so the cheap
/// interactive kinds keep their latency under load.
bool IsBatchQueryKind(std::string_view kind) noexcept;

/// True for kinds that decompose into mergeable partial aggregates
/// (`"partial":true` requests). The floating-point reductions whose
/// result depends on evaluation order as a whole (stats, quarterly,
/// tone) are excluded: the router sends those to a single shard.
bool IsPartialQueryKind(std::string_view kind) noexcept;

/// Parses one request line (strict; see file comment).
Result<Request> ParseRequest(std::string_view line);

/// Canonical cache-key text: normalized fields in a fixed order, so two
/// requests that differ only in JSON member order / whitespace / defaults
/// spelled out share a cache entry.
std::string CanonicalKey(const Request& r);

/// One measured stage of a traced request (`"trace": true`). Stages are
/// disjoint, so their sum approximates the reported wall time.
struct StageTiming {
  std::string name;
  double ms = 0;
};

/// One captured span of a traced request: the kernel-level breakdown
/// nested inside the stages (spans overlap; they do not sum to the wall).
struct SpanTiming {
  std::string name;
  double ms = 0;
  int depth = 0;
};

/// Builds one successful query response line (terminating '\n' included).
/// For `r.partial` requests `text` is a pre-rendered partial-result frame
/// and is spliced in unquoted under `"partial"` instead of `"text"`.
std::string OkResponse(const Request& r, std::string_view text, bool cached,
                       double wall_ms);

/// Same, with a `"trace":{"stages":[...],"spans":[...]}` breakdown
/// spliced in (omitted entirely when `stages` is empty).
std::string OkResponse(const Request& r, std::string_view text, bool cached,
                       double wall_ms, const std::vector<StageTiming>& stages,
                       const std::vector<SpanTiming>& spans);

/// Builds an ok response whose payload is a pre-rendered JSON value
/// spliced in unquoted under `field` (used for `metrics`).
std::string OkJsonResponse(const Request& r, std::string_view field,
                           std::string_view payload_json);

/// Builds one error response line (terminating '\n' included).
std::string ErrorResponse(std::string_view id, ErrorCode code,
                          std::string_view message);

/// Same, with a client backoff hint: `"retry_after_ms"` inside the error
/// object (emitted when > 0). Sent on overload rejections/sheds, sized
/// from queue depth x observed p50 execution time (docs/PROTOCOL.md).
std::string ErrorResponse(std::string_view id, ErrorCode code,
                          std::string_view message,
                          std::int64_t retry_after_ms);

}  // namespace gdelt::serve
