#include "serve/render.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "analysis/coreport.hpp"
#include "analysis/country.hpp"
#include "analysis/delay.hpp"
#include "analysis/distributions.hpp"
#include "analysis/firstreport.hpp"
#include "analysis/followreport.hpp"
#include "analysis/stats.hpp"
#include "analysis/tone.hpp"
#include "engine/filter.hpp"
#include "engine/queries.hpp"
#include "serve/partial.hpp"
#include "serve/render_text.hpp"
#include "util/strings.hpp"

namespace gdelt::serve {
namespace {

/// Domain labels of a ranked source-id list.
std::vector<std::string> SourceLabels(const engine::Database& db,
                                      std::span<const std::uint32_t> ids) {
  std::vector<std::string> labels;
  labels.reserve(ids.size());
  for (const std::uint32_t s : ids) {
    labels.emplace_back(db.source_domain(s));
  }
  return labels;
}

/// Per-rank projection of a per-source-id count vector.
std::vector<std::uint64_t> CountsOf(const std::vector<std::uint64_t>& counts,
                                    std::span<const std::uint32_t> ids) {
  std::vector<std::uint64_t> out;
  out.reserve(ids.size());
  for (const std::uint32_t s : ids) out.push_back(counts[s]);
  return out;
}

/// The restricted (window/confidence-filtered) query family.
///
/// The morsel backend runs the vectorized bitmap filter and feeds the
/// selection bitmap straight into the filtered aggregates — mention rows
/// are materialized only when a kernel needs an explicit row list (the
/// restricted co-reporting rebuild). The OpenMP backend keeps the
/// original scalar two-pass row materialization as the ablation baseline.
Result<RenderedQuery> RenderRestricted(const engine::Database& db,
                                       const Request& r,
                                       parallel::Backend backend,
                                       const util::CancelToken* cancel) {
  RenderedQuery out;
  const bool bitmap_path = backend == parallel::Backend::kMorselPool;
  engine::SelectionBitmap sel;
  std::vector<std::uint64_t> rows;
  if (bitmap_path) {
    sel = engine::SelectMentionsBitmap(db, r.filter);
  } else {
    rows = engine::SelectMentionsBaseline(db, r.filter);
  }
  const std::uint64_t selected = bitmap_path ? sel.CountSet() : rows.size();
  out.note = StrFormat("[filter selects %llu of %zu mentions]",
                       static_cast<unsigned long long>(selected),
                       db.num_mentions());
  if (r.kind == "top-sources") {
    const auto counts = bitmap_path ? engine::ArticlesPerSource(db, sel)
                                    : engine::ArticlesPerSource(db, rows);
    const auto ids = RankSources(counts, r.top_k);
    AppendTopSourcesText(out.text, SourceLabels(db, ids), CountsOf(counts, ids),
                         /*restricted=*/true);
    return out;
  }
  if (r.kind == "coreport") {
    const auto counts = bitmap_path ? engine::ArticlesPerSource(db, sel)
                                    : engine::ArticlesPerSource(db, rows);
    const auto top = RankSources(counts, r.top_k);
    // The per-event rebuild wants explicit rows; pay the materialization
    // only on this branch.
    if (bitmap_path) rows = sel.ToRows();
    const auto matrix = analysis::ComputeCoReporting(db, top, rows, cancel);
    AppendCoreportText(out.text, SourceLabels(db, top), matrix,
                       /*restricted=*/true);
    return out;
  }
  // cross-report
  const auto report = bitmap_path ? engine::CountryCrossReporting(db, sel)
                                  : engine::CountryCrossReporting(db, rows);
  const auto reported = engine::CountriesByReportedEvents(db, r.top_k);
  const auto publishing = engine::CountriesByPublishedArticles(db, r.top_k);
  AppendCrossReportText(out.text, reported, publishing, report,
                        /*restricted=*/true);
  return out;
}

/// Unchecked dispatch; RenderQuery wraps it with the cancellation
/// enforcement boundary.
Result<RenderedQuery> RenderQueryImpl(const engine::Database& db,
                                      const Request& r,
                                      parallel::Backend backend,
                                      const util::CancelToken* cancel) {
  const std::string& query = r.kind;
  const std::size_t top_k = r.top_k;
  if (r.partial) {
    return RenderPartialFrame(db, r, backend, cancel);
  }
  if (r.restricted && (query == "top-sources" || query == "cross-report" ||
                       query == "coreport")) {
    return RenderRestricted(db, r, backend, cancel);
  }
  RenderedQuery out;
  if (query == "stats") {
    out.text = analysis::ComputeDatasetStatistics(db).ToText();
    Appendf(out.text, "Event-size power-law alpha (MLE, xmin=2): %.2f\n",
            analysis::EventSizePowerLawAlpha(db, 2));
    return out;
  }
  if (query == "top-sources") {
    const auto counts = engine::ArticlesPerSource(db);
    const auto top = engine::TopSourcesByArticles(db, top_k);
    AppendTopSourcesText(out.text, SourceLabels(db, top), CountsOf(counts, top),
                         /*restricted=*/false);
    return out;
  }
  if (query == "top-events") {
    const auto top = engine::TopReportedEvents(db, top_k);
    std::vector<std::uint32_t> articles;
    std::vector<std::string> urls;
    for (const auto& ev : top) {
      articles.push_back(ev.articles);
      urls.emplace_back(db.event_source_url(ev.event_row));
    }
    AppendTopEventsText(out.text, articles, urls);
    return out;
  }
  if (query == "quarterly") {
    AppendQuarterSeries(out.text, "Active sources per quarter (Fig 3):",
                        engine::ActiveSourcesPerQuarter(db));
    AppendQuarterSeries(out.text, "Events per quarter (Fig 4):",
                        engine::EventsPerQuarter(db));
    AppendQuarterSeries(out.text, "Articles per quarter (Fig 5):",
                        engine::ArticlesPerQuarter(db));
    return out;
  }
  if (query == "coreport") {
    const auto top = engine::TopSourcesByArticles(db, top_k);
    analysis::TiledCoReportOptions coreport_options;
    coreport_options.use_morsel_pool =
        backend == parallel::Backend::kMorselPool;
    coreport_options.cancel = cancel;
    const auto matrix = analysis::ComputeCoReporting(db, top, coreport_options);
    AppendCoreportText(out.text, SourceLabels(db, top), matrix,
                       /*restricted=*/false);
    return out;
  }
  if (query == "follow") {
    const auto top = engine::TopSourcesByArticles(db, top_k);
    const auto matrix = analysis::ComputeFollowReporting(db, top, backend,
                                                         cancel);
    AppendFollowText(out.text, SourceLabels(db, top), matrix);
    return out;
  }
  if (query == "country-coreport") {
    const auto report = analysis::ComputeCountryCoReporting(db, cancel);
    const auto top = engine::CountriesByPublishedArticles(db, top_k);
    AppendCountryCoreportText(out.text, top, report);
    return out;
  }
  if (query == "cross-report") {
    const auto report = engine::CountryCrossReporting(db);
    const auto reported = engine::CountriesByReportedEvents(db, top_k);
    const auto publishing = engine::CountriesByPublishedArticles(db, top_k);
    AppendCrossReportText(out.text, reported, publishing, report,
                          /*restricted=*/false);
    return out;
  }
  if (query == "delay") {
    const auto stats = analysis::PerSourceDelayStats(db, backend, cancel);
    const auto top = engine::TopSourcesByArticles(db, top_k);
    std::vector<analysis::DelayStats> top_stats;
    top_stats.reserve(top.size());
    for (const std::uint32_t s : top) top_stats.push_back(stats[s]);
    AppendDelayText(out.text, SourceLabels(db, top), top_stats,
                    analysis::QuarterlyDelayStats(db));
    return out;
  }
  if (query == "tone") {
    const auto by_quad = analysis::ToneByQuadClass(db);
    static constexpr const char* kQuadNames[] = {
        "", "verbal cooperation", "material cooperation", "verbal conflict",
        "material conflict"};
    Appendf(out.text, "Average tone / Goldstein by CAMEO quad class:\n");
    for (std::size_t q = 1; q <= 4; ++q) {
      Appendf(out.text, "  %-22s tone %+6.2f  goldstein %+6.2f  (%s events)\n",
              kQuadNames[q], by_quad.tone[q].Mean(),
              by_quad.goldstein[q].Mean(),
              WithThousands(by_quad.tone[q].count).c_str());
    }
    const auto by_country = analysis::AverageToneByCountry(db);
    const auto reported = engine::CountriesByReportedEvents(db, top_k);
    Appendf(out.text, "\nAverage event tone by located country:\n");
    for (const CountryId c : reported) {
      Appendf(out.text, "  %-14s %+6.2f  (%s events)\n",
              std::string(CountryName(c)).c_str(), by_country[c].Mean(),
              WithThousands(by_country[c].count).c_str());
    }
    return out;
  }
  if (query == "first-reports") {
    const auto stats = analysis::ComputeFirstReports(db, /*histogram_bins=*/18,
                                                     backend, cancel);
    const auto counts = engine::ArticlesPerSource(db);
    const auto by_breaks = RankSources(stats.first_reports, top_k);
    std::vector<std::uint64_t> breaks;
    std::vector<double> rate_pct;
    for (const std::uint32_t s : by_breaks) {
      breaks.push_back(stats.first_reports[s]);
      rate_pct.push_back(100.0 * stats.RepeatRate(s, counts[s]));
    }
    AppendFirstReportsText(out.text, SourceLabels(db, by_breaks), breaks,
                           CountsOf(counts, by_breaks), rate_pct,
                           stats.events_broken_within_hour, db.num_events());
    return out;
  }
  return status::InvalidArgument("unknown query '" + query + "'");
}

}  // namespace

Result<RenderedQuery> RenderQuery(const engine::Database& db,
                                  const Request& r,
                                  parallel::Backend backend,
                                  const util::CancelToken* cancel) {
  auto out = RenderQueryImpl(db, r, backend, cancel);
  // Enforcement boundary: a kernel that observed the token mid-scan bailed
  // with a short count, so whatever Impl rendered is garbage. Re-check the
  // token here and replace the result wholesale — callers either get the
  // complete text or kCancelled, never a truncated aggregate.
  if (util::Cancelled(cancel)) {
    return status::Cancelled("query cancelled during execution");
  }
  return out;
}

}  // namespace gdelt::serve
