#include "serve/render.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <numeric>
#include <vector>

#include "analysis/coreport.hpp"
#include "analysis/country.hpp"
#include "analysis/delay.hpp"
#include "analysis/distributions.hpp"
#include "analysis/firstreport.hpp"
#include "analysis/followreport.hpp"
#include "analysis/stats.hpp"
#include "analysis/tone.hpp"
#include "engine/filter.hpp"
#include "engine/queries.hpp"
#include "gtime/timestamp.hpp"
#include "util/strings.hpp"

namespace gdelt::serve {
namespace {

/// printf-append; the render bodies below are transcriptions of the
/// original gdelt_query printf calls, so keeping the printf idiom keeps
/// the bytes identical.
void Appendf(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void Appendf(std::string& out, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  char stack_buf[512];
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(stack_buf, sizeof(stack_buf), fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(copy);
    return;
  }
  if (static_cast<std::size_t>(needed) < sizeof(stack_buf)) {
    out.append(stack_buf, static_cast<std::size_t>(needed));
  } else {
    std::string big(static_cast<std::size_t>(needed) + 1, '\0');
    std::vsnprintf(big.data(), big.size(), fmt, copy);
    big.resize(static_cast<std::size_t>(needed));
    out += big;
  }
  va_end(copy);
}

void AppendQuarterSeries(std::string& out, const char* label,
                         const engine::QuarterSeries& series) {
  Appendf(out, "%s\n", label);
  for (std::size_t q = 0; q < series.values.size(); ++q) {
    Appendf(out, "  %s  %s\n",
            QuarterLabel(series.first_quarter + static_cast<QuarterId>(q))
                .c_str(),
            WithThousands(series.values[q]).c_str());
  }
}

/// Source ids ranked by a per-source count vector (restricted rankings).
std::vector<std::uint32_t> RankSources(
    const std::vector<std::uint64_t>& counts, std::size_t top_k) {
  std::vector<std::uint32_t> ids(counts.size());
  std::iota(ids.begin(), ids.end(), 0u);
  const std::size_t take = std::min(top_k, ids.size());
  std::partial_sort(ids.begin(),
                    ids.begin() + static_cast<std::ptrdiff_t>(take),
                    ids.end(), [&](std::uint32_t a, std::uint32_t b) {
                      return counts[a] > counts[b];
                    });
  ids.resize(take);
  return ids;
}

/// The restricted (window/confidence-filtered) query family.
///
/// The morsel backend runs the vectorized bitmap filter and feeds the
/// selection bitmap straight into the filtered aggregates — mention rows
/// are materialized only when a kernel needs an explicit row list (the
/// restricted co-reporting rebuild). The OpenMP backend keeps the
/// original scalar two-pass row materialization as the ablation baseline.
Result<RenderedQuery> RenderRestricted(const engine::Database& db,
                                       const Request& r,
                                       parallel::Backend backend) {
  RenderedQuery out;
  const bool bitmap_path = backend == parallel::Backend::kMorselPool;
  engine::SelectionBitmap sel;
  std::vector<std::uint64_t> rows;
  if (bitmap_path) {
    sel = engine::SelectMentionsBitmap(db, r.filter);
  } else {
    rows = engine::SelectMentionsBaseline(db, r.filter);
  }
  const std::uint64_t selected = bitmap_path ? sel.CountSet() : rows.size();
  out.note = StrFormat("[filter selects %llu of %zu mentions]",
                       static_cast<unsigned long long>(selected),
                       db.num_mentions());
  if (r.kind == "top-sources") {
    const auto counts = bitmap_path ? engine::ArticlesPerSource(db, sel)
                                    : engine::ArticlesPerSource(db, rows);
    const auto ids = RankSources(counts, r.top_k);
    Appendf(out.text, "Top %zu sources (restricted):\n", ids.size());
    for (const std::uint32_t s : ids) {
      Appendf(out.text, "  %-28s %s\n",
              std::string(db.source_domain(s)).c_str(),
              WithThousands(counts[s]).c_str());
    }
    return out;
  }
  if (r.kind == "coreport") {
    const auto counts = bitmap_path ? engine::ArticlesPerSource(db, sel)
                                    : engine::ArticlesPerSource(db, rows);
    const auto top = RankSources(counts, r.top_k);
    // The per-event rebuild wants explicit rows; pay the materialization
    // only on this branch.
    if (bitmap_path) rows = sel.ToRows();
    const auto matrix = analysis::ComputeCoReporting(db, top, rows);
    Appendf(out.text,
            "Co-reporting (Jaccard) among top %zu sources (restricted):\n",
            top.size());
    for (std::size_t i = 0; i < top.size(); ++i) {
      Appendf(out.text, "  %-28s",
              std::string(db.source_domain(top[i])).c_str());
      for (std::size_t j = 0; j < top.size(); ++j) {
        Appendf(out.text, " %.3f", matrix.Jaccard(i, j));
      }
      Appendf(out.text, "\n");
    }
    return out;
  }
  // cross-report
  const auto report = bitmap_path ? engine::CountryCrossReporting(db, sel)
                                  : engine::CountryCrossReporting(db, rows);
  const auto reported = engine::CountriesByReportedEvents(db, r.top_k);
  const auto publishing = engine::CountriesByPublishedArticles(db, r.top_k);
  Appendf(out.text, "Country cross-reporting (restricted window):\n");
  for (const CountryId rep : reported) {
    Appendf(out.text, "  %-14s", std::string(CountryName(rep)).c_str());
    for (const CountryId p : publishing) {
      Appendf(out.text, " %-12s", WithThousands(report.At(rep, p)).c_str());
    }
    Appendf(out.text, "\n");
  }
  return out;
}

}  // namespace

Result<RenderedQuery> RenderQuery(const engine::Database& db,
                                  const Request& r,
                                  parallel::Backend backend) {
  const std::string& query = r.kind;
  const std::size_t top_k = r.top_k;
  if (r.restricted && (query == "top-sources" || query == "cross-report" ||
                       query == "coreport")) {
    return RenderRestricted(db, r, backend);
  }
  RenderedQuery out;
  if (query == "stats") {
    out.text = analysis::ComputeDatasetStatistics(db).ToText();
    Appendf(out.text, "Event-size power-law alpha (MLE, xmin=2): %.2f\n",
            analysis::EventSizePowerLawAlpha(db, 2));
    return out;
  }
  if (query == "top-sources") {
    const auto counts = engine::ArticlesPerSource(db);
    const auto top = engine::TopSourcesByArticles(db, top_k);
    Appendf(out.text, "Top %zu sources by article count:\n", top.size());
    for (const std::uint32_t s : top) {
      Appendf(out.text, "  %-28s %s\n",
              std::string(db.source_domain(s)).c_str(),
              WithThousands(counts[s]).c_str());
    }
    return out;
  }
  if (query == "top-events") {
    const auto top = engine::TopReportedEvents(db, top_k);
    Appendf(out.text, "Top %zu most reported events (cf. Table III):\n",
            top.size());
    Appendf(out.text, "  %-9s %s\n", "Mentions", "Event source URL");
    for (const auto& ev : top) {
      Appendf(out.text, "  %-9u %s\n", ev.articles,
              std::string(db.event_source_url(ev.event_row)).c_str());
    }
    return out;
  }
  if (query == "quarterly") {
    AppendQuarterSeries(out.text, "Active sources per quarter (Fig 3):",
                        engine::ActiveSourcesPerQuarter(db));
    AppendQuarterSeries(out.text, "Events per quarter (Fig 4):",
                        engine::EventsPerQuarter(db));
    AppendQuarterSeries(out.text, "Articles per quarter (Fig 5):",
                        engine::ArticlesPerQuarter(db));
    return out;
  }
  if (query == "coreport") {
    const auto top = engine::TopSourcesByArticles(db, top_k);
    analysis::TiledCoReportOptions coreport_options;
    coreport_options.use_morsel_pool =
        backend == parallel::Backend::kMorselPool;
    const auto matrix = analysis::ComputeCoReporting(db, top, coreport_options);
    Appendf(out.text, "Co-reporting (Jaccard) among top %zu sources:\n",
            top.size());
    for (std::size_t i = 0; i < top.size(); ++i) {
      Appendf(out.text, "  %-28s",
              std::string(db.source_domain(top[i])).c_str());
      for (std::size_t j = 0; j < top.size(); ++j) {
        Appendf(out.text, " %.3f", matrix.Jaccard(i, j));
      }
      Appendf(out.text, "\n");
    }
    return out;
  }
  if (query == "follow") {
    const auto top = engine::TopSourcesByArticles(db, top_k);
    const auto matrix = analysis::ComputeFollowReporting(db, top, backend);
    Appendf(out.text,
            "Follow-reporting f_ij among top %zu sources "
            "(cf. Table IV):\n",
            top.size());
    for (std::size_t i = 0; i < top.size(); ++i) {
      Appendf(out.text, "  %-28s",
              std::string(db.source_domain(top[i])).c_str());
      for (std::size_t j = 0; j < top.size(); ++j) {
        Appendf(out.text, " %.3f", matrix.F(i, j));
      }
      Appendf(out.text, "\n");
    }
    Appendf(out.text, "  %-28s", "Sum");
    for (std::size_t j = 0; j < top.size(); ++j) {
      Appendf(out.text, " %.3f", matrix.ColumnSum(j));
    }
    Appendf(out.text, "\n");
    return out;
  }
  if (query == "country-coreport") {
    const auto report = analysis::ComputeCountryCoReporting(db);
    const auto top = engine::CountriesByPublishedArticles(db, top_k);
    Appendf(out.text, "Country co-reporting (Jaccard, cf. Table V):\n  %-14s",
            "");
    for (const CountryId c : top) {
      Appendf(out.text, " %-12s", std::string(CountryName(c)).c_str());
    }
    Appendf(out.text, "\n");
    for (const CountryId c : top) {
      Appendf(out.text, "  %-14s", std::string(CountryName(c)).c_str());
      for (const CountryId d : top) {
        if (c == d) {
          Appendf(out.text, " %-12s", "-");
        } else {
          Appendf(out.text, " %-12.3f", report.Jaccard(c, d));
        }
      }
      Appendf(out.text, "\n");
    }
    return out;
  }
  if (query == "cross-report") {
    const auto report = engine::CountryCrossReporting(db);
    const auto reported = engine::CountriesByReportedEvents(db, top_k);
    const auto publishing = engine::CountriesByPublishedArticles(db, top_k);
    Appendf(out.text,
            "Country cross-reporting counts (cf. Table VI):\n  %-14s", "");
    for (const CountryId p : publishing) {
      Appendf(out.text, " %-12s", std::string(CountryName(p)).c_str());
    }
    Appendf(out.text, "\n");
    for (const CountryId rep : reported) {
      Appendf(out.text, "  %-14s", std::string(CountryName(rep)).c_str());
      for (const CountryId p : publishing) {
        Appendf(out.text, " %-12s", WithThousands(report.At(rep, p)).c_str());
      }
      Appendf(out.text, "\n");
    }
    Appendf(out.text,
            "\nAs percentage of publisher's articles (cf. Table VII):\n");
    for (const CountryId rep : reported) {
      Appendf(out.text, "  %-14s", std::string(CountryName(rep)).c_str());
      for (const CountryId p : publishing) {
        Appendf(out.text, " %-12.2f", report.Percent(rep, p));
      }
      Appendf(out.text, "\n");
    }
    return out;
  }
  if (query == "delay") {
    const auto stats = analysis::PerSourceDelayStats(db, backend);
    const auto top = engine::TopSourcesByArticles(db, top_k);
    Appendf(out.text,
            "Publication delay for top %zu sources "
            "(cf. Table VIII; 15-min intervals):\n",
            top.size());
    Appendf(out.text, "  %-28s %8s %8s %8s %8s\n", "Publisher", "Min", "Max",
            "Average", "Median");
    for (const std::uint32_t s : top) {
      const auto& st = stats[s];
      Appendf(out.text, "  %-28s %8lld %8lld %8.0f %8lld\n",
              std::string(db.source_domain(s)).c_str(),
              static_cast<long long>(st.min),
              static_cast<long long>(st.max), st.average,
              static_cast<long long>(st.median));
    }
    const auto quarterly = analysis::QuarterlyDelayStats(db);
    Appendf(out.text, "\nQuarterly delay (Fig 10):\n");
    for (std::size_t q = 0; q < quarterly.average.size(); ++q) {
      Appendf(out.text, "  %s  avg %.1f  median %lld\n",
              QuarterLabel(quarterly.first_quarter +
                           static_cast<QuarterId>(q))
                  .c_str(),
              quarterly.average[q],
              static_cast<long long>(quarterly.median[q]));
    }
    return out;
  }
  if (query == "tone") {
    const auto by_quad = analysis::ToneByQuadClass(db);
    static constexpr const char* kQuadNames[] = {
        "", "verbal cooperation", "material cooperation", "verbal conflict",
        "material conflict"};
    Appendf(out.text, "Average tone / Goldstein by CAMEO quad class:\n");
    for (std::size_t q = 1; q <= 4; ++q) {
      Appendf(out.text, "  %-22s tone %+6.2f  goldstein %+6.2f  (%s events)\n",
              kQuadNames[q], by_quad.tone[q].Mean(),
              by_quad.goldstein[q].Mean(),
              WithThousands(by_quad.tone[q].count).c_str());
    }
    const auto by_country = analysis::AverageToneByCountry(db);
    const auto reported = engine::CountriesByReportedEvents(db, top_k);
    Appendf(out.text, "\nAverage event tone by located country:\n");
    for (const CountryId c : reported) {
      Appendf(out.text, "  %-14s %+6.2f  (%s events)\n",
              std::string(CountryName(c)).c_str(), by_country[c].Mean(),
              WithThousands(by_country[c].count).c_str());
    }
    return out;
  }
  if (query == "first-reports") {
    const auto stats =
        analysis::ComputeFirstReports(db, /*histogram_bins=*/18, backend);
    const auto counts = engine::ArticlesPerSource(db);
    std::vector<std::uint32_t> by_breaks(db.num_sources());
    std::iota(by_breaks.begin(), by_breaks.end(), 0u);
    std::partial_sort(by_breaks.begin(),
                      by_breaks.begin() + static_cast<std::ptrdiff_t>(
                          std::min<std::size_t>(top_k, by_breaks.size())),
                      by_breaks.end(),
                      [&](std::uint32_t a, std::uint32_t b) {
                        return stats.first_reports[a] > stats.first_reports[b];
                      });
    Appendf(out.text,
            "Sources breaking the most stories (wildfire pool "
            "candidates):\n");
    Appendf(out.text, "  %-28s %10s %10s %12s\n", "Source", "breaks",
            "articles", "repeat-rate");
    for (std::size_t k = 0; k < top_k && k < by_breaks.size(); ++k) {
      const auto s = by_breaks[k];
      Appendf(out.text, "  %-28s %10s %10s %11.1f%%\n",
              std::string(db.source_domain(s)).c_str(),
              WithThousands(stats.first_reports[s]).c_str(),
              WithThousands(counts[s]).c_str(),
              100.0 * stats.RepeatRate(s, counts[s]));
    }
    Appendf(out.text, "\nevents first reported within 1 hour: %s of %s\n",
            WithThousands(stats.events_broken_within_hour).c_str(),
            WithThousands(db.num_events()).c_str());
    return out;
  }
  return status::InvalidArgument("unknown query '" + query + "'");
}

}  // namespace gdelt::serve
