#include "serve/cache.hpp"

#include <algorithm>
#include <functional>

namespace gdelt::serve {

ResultCache::ResultCache(std::size_t max_entries)
    : max_entries_(max_entries) {
  const std::size_t n = max_entries_ >= kShardThreshold ? kShards : 1;
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto shard = std::make_unique<Shard>();
    // Distribute capacity; the first max%n shards absorb the remainder
    // so the shard capacities always sum to max_entries_.
    shard->max_entries = max_entries_ / n + (i < max_entries_ % n ? 1 : 0);
    shards_.push_back(std::move(shard));
  }
}

ResultCache::Shard& ResultCache::ShardFor(const std::string& key) {
  if (shards_.size() == 1) return *shards_[0];
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

void ResultCache::EraseLocked(Shard& shard, std::list<Entry>::iterator it,
                              bool stale) {
  shard.text_bytes -= it->text->size();
  shard.index.erase(it->key);
  shard.lru.erase(it);
  if (stale) evicted_stale_.fetch_add(1, std::memory_order_relaxed);
}

void ResultCache::SweepShardLocked(Shard& shard, std::uint64_t epoch) {
  if (epoch <= shard.seen_epoch) return;
  shard.seen_epoch = epoch;
  for (auto it = shard.lru.begin(); it != shard.lru.end();) {
    const auto cur = it++;
    if (cur->epoch != epoch) EraseLocked(shard, cur, /*stale=*/true);
  }
}

std::optional<std::string> ResultCache::Get(const std::string& key,
                                            std::uint64_t epoch) {
  auto hit = GetTagged(key, epoch);
  if (!hit) return std::nullopt;
  return *hit->text;
}

std::optional<ResultCache::Hit> ResultCache::GetTagged(const std::string& key,
                                                       std::uint64_t epoch) {
  if (max_entries_ == 0) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  Shard& shard = ShardFor(key);
  sync::MutexLock lock(shard.mu);
  // A lookup at a newer epoch proves everything older in this shard is
  // dead; collect it all now so entries()/text_bytes() stay honest even
  // for keys that are never asked about again.
  SweepShardLocked(shard, epoch);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  if (it->second->epoch != epoch) {
    // Stale epoch: the delta store ingested since this was cached.
    EraseLocked(shard, it->second, /*stale=*/true);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return Hit{it->second->text, it->second->late};
}

bool ResultCache::Put(const std::string& key, std::uint64_t epoch,
                      std::string text, bool late) {
  if (max_entries_ == 0) return false;
  Shard& shard = ShardFor(key);
  sync::MutexLock lock(shard.mu);
  if (epoch < shard.seen_epoch) {
    // Born stale: a slow render finished after the database moved on.
    // Inserting it would park dead bytes in the LRU until swept.
    return false;
  }
  if (const auto it = shard.index.find(key); it != shard.index.end()) {
    if (it->second->epoch > epoch) {
      // A fresher render already landed for this key; a late write from
      // a pre-ingest epoch must not clobber it.
      return false;
    }
    EraseLocked(shard, it->second, /*stale=*/it->second->epoch < epoch);
  }
  shard.seen_epoch = std::max(shard.seen_epoch, epoch);
  shard.text_bytes += text.size();
  shard.lru.push_front(Entry{
      key, epoch, std::make_shared<const std::string>(std::move(text)), late});
  shard.index[key] = shard.lru.begin();
  while (shard.lru.size() > shard.max_entries) {
    EraseLocked(shard, std::prev(shard.lru.end()), /*stale=*/false);
  }
  return true;
}

void ResultCache::ObserveEpoch(std::uint64_t epoch) {
  for (const auto& shard : shards_) {
    sync::MutexLock lock(shard->mu);
    SweepShardLocked(*shard, epoch);
  }
}

void ResultCache::Clear() {
  for (const auto& shard : shards_) {
    sync::MutexLock lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
    shard->text_bytes = 0;
  }
}

std::uint64_t ResultCache::hits() const {
  return hits_.load(std::memory_order_relaxed);
}

std::uint64_t ResultCache::misses() const {
  return misses_.load(std::memory_order_relaxed);
}

std::size_t ResultCache::entries() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    sync::MutexLock lock(shard->mu);
    n += shard->lru.size();
  }
  return n;
}

std::uint64_t ResultCache::text_bytes() const {
  std::uint64_t n = 0;
  for (const auto& shard : shards_) {
    sync::MutexLock lock(shard->mu);
    n += shard->text_bytes;
  }
  return n;
}

std::uint64_t ResultCache::evicted_stale() const {
  return evicted_stale_.load(std::memory_order_relaxed);
}

}  // namespace gdelt::serve
