#include "serve/cache.hpp"

namespace gdelt::serve {

std::optional<std::string> ResultCache::Get(const std::string& key,
                                            std::uint64_t epoch) {
  auto hit = GetTagged(key, epoch);
  if (!hit) return std::nullopt;
  return std::move(hit->text);
}

std::optional<ResultCache::Hit> ResultCache::GetTagged(const std::string& key,
                                                       std::uint64_t epoch) {
  sync::MutexLock lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  if (it->second->epoch != epoch) {
    // Stale epoch: the delta store ingested since this was cached.
    text_bytes_ -= it->second->text.size();
    lru_.erase(it->second);
    index_.erase(it);
    ++misses_;
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  return Hit{it->second->text, it->second->late};
}

void ResultCache::Put(const std::string& key, std::uint64_t epoch,
                      std::string text, bool late) {
  if (max_entries_ == 0) return;
  sync::MutexLock lock(mu_);
  if (const auto it = index_.find(key); it != index_.end()) {
    text_bytes_ -= it->second->text.size();
    lru_.erase(it->second);
    index_.erase(it);
  }
  text_bytes_ += text.size();
  lru_.push_front(Entry{key, epoch, std::move(text), late});
  index_[key] = lru_.begin();
  while (lru_.size() > max_entries_) {
    text_bytes_ -= lru_.back().text.size();
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
}

void ResultCache::Clear() {
  sync::MutexLock lock(mu_);
  lru_.clear();
  index_.clear();
  text_bytes_ = 0;
}

std::uint64_t ResultCache::hits() const {
  sync::MutexLock lock(mu_);
  return hits_;
}

std::uint64_t ResultCache::misses() const {
  sync::MutexLock lock(mu_);
  return misses_;
}

std::size_t ResultCache::entries() const {
  sync::MutexLock lock(mu_);
  return lru_.size();
}

std::uint64_t ResultCache::text_bytes() const {
  sync::MutexLock lock(mu_);
  return text_bytes_;
}

}  // namespace gdelt::serve
