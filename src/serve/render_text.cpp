#include "serve/render_text.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <numeric>

#include "gtime/timestamp.hpp"
#include "util/strings.hpp"

namespace gdelt::serve {

std::vector<std::uint32_t> RankSources(
    const std::vector<std::uint64_t>& counts, std::size_t top_k) {
  std::vector<std::uint32_t> ids(counts.size());
  std::iota(ids.begin(), ids.end(), 0u);
  const std::size_t take = std::min(top_k, ids.size());
  std::partial_sort(ids.begin(),
                    ids.begin() + static_cast<std::ptrdiff_t>(take),
                    ids.end(), [&](std::uint32_t a, std::uint32_t b) {
                      return counts[a] > counts[b];
                    });
  ids.resize(take);
  return ids;
}

void Appendf(std::string& out, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  char stack_buf[512];
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(stack_buf, sizeof(stack_buf), fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(copy);
    return;
  }
  if (static_cast<std::size_t>(needed) < sizeof(stack_buf)) {
    out.append(stack_buf, static_cast<std::size_t>(needed));
  } else {
    std::string big(static_cast<std::size_t>(needed) + 1, '\0');
    std::vsnprintf(big.data(), big.size(), fmt, copy);
    big.resize(static_cast<std::size_t>(needed));
    out += big;
  }
  va_end(copy);
}

void AppendQuarterSeries(std::string& out, const char* label,
                         const engine::QuarterSeries& series) {
  Appendf(out, "%s\n", label);
  for (std::size_t q = 0; q < series.values.size(); ++q) {
    Appendf(out, "  %s  %s\n",
            QuarterLabel(series.first_quarter + static_cast<QuarterId>(q))
                .c_str(),
            WithThousands(series.values[q]).c_str());
  }
}

void AppendTopSourcesText(std::string& out,
                          const std::vector<std::string>& labels,
                          const std::vector<std::uint64_t>& counts,
                          bool restricted) {
  if (restricted) {
    Appendf(out, "Top %zu sources (restricted):\n", labels.size());
  } else {
    Appendf(out, "Top %zu sources by article count:\n", labels.size());
  }
  for (std::size_t k = 0; k < labels.size(); ++k) {
    Appendf(out, "  %-28s %s\n", labels[k].c_str(),
            WithThousands(counts[k]).c_str());
  }
}

void AppendTopEventsText(std::string& out,
                         const std::vector<std::uint32_t>& articles,
                         const std::vector<std::string>& urls) {
  Appendf(out, "Top %zu most reported events (cf. Table III):\n",
          articles.size());
  Appendf(out, "  %-9s %s\n", "Mentions", "Event source URL");
  for (std::size_t k = 0; k < articles.size(); ++k) {
    Appendf(out, "  %-9u %s\n", articles[k], urls[k].c_str());
  }
}

void AppendCoreportText(std::string& out,
                        const std::vector<std::string>& labels,
                        const analysis::CoReportMatrix& matrix,
                        bool restricted) {
  if (restricted) {
    Appendf(out,
            "Co-reporting (Jaccard) among top %zu sources (restricted):\n",
            labels.size());
  } else {
    Appendf(out, "Co-reporting (Jaccard) among top %zu sources:\n",
            labels.size());
  }
  for (std::size_t i = 0; i < labels.size(); ++i) {
    Appendf(out, "  %-28s", labels[i].c_str());
    for (std::size_t j = 0; j < labels.size(); ++j) {
      Appendf(out, " %.3f", matrix.Jaccard(i, j));
    }
    Appendf(out, "\n");
  }
}

void AppendFollowText(std::string& out,
                      const std::vector<std::string>& labels,
                      const analysis::FollowReportMatrix& matrix) {
  Appendf(out,
          "Follow-reporting f_ij among top %zu sources "
          "(cf. Table IV):\n",
          labels.size());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    Appendf(out, "  %-28s", labels[i].c_str());
    for (std::size_t j = 0; j < labels.size(); ++j) {
      Appendf(out, " %.3f", matrix.F(i, j));
    }
    Appendf(out, "\n");
  }
  Appendf(out, "  %-28s", "Sum");
  for (std::size_t j = 0; j < labels.size(); ++j) {
    Appendf(out, " %.3f", matrix.ColumnSum(j));
  }
  Appendf(out, "\n");
}

void AppendCountryCoreportText(std::string& out,
                               const std::vector<CountryId>& top,
                               const analysis::CountryCoReport& report) {
  Appendf(out, "Country co-reporting (Jaccard, cf. Table V):\n  %-14s", "");
  for (const CountryId c : top) {
    Appendf(out, " %-12s", std::string(CountryName(c)).c_str());
  }
  Appendf(out, "\n");
  for (const CountryId c : top) {
    Appendf(out, "  %-14s", std::string(CountryName(c)).c_str());
    for (const CountryId d : top) {
      if (c == d) {
        Appendf(out, " %-12s", "-");
      } else {
        Appendf(out, " %-12.3f", report.Jaccard(c, d));
      }
    }
    Appendf(out, "\n");
  }
}

void AppendCrossReportText(std::string& out,
                           const std::vector<CountryId>& reported,
                           const std::vector<CountryId>& publishing,
                           const engine::CountryCrossReport& report,
                           bool restricted) {
  if (restricted) {
    Appendf(out, "Country cross-reporting (restricted window):\n");
    for (const CountryId rep : reported) {
      Appendf(out, "  %-14s", std::string(CountryName(rep)).c_str());
      for (const CountryId p : publishing) {
        Appendf(out, " %-12s", WithThousands(report.At(rep, p)).c_str());
      }
      Appendf(out, "\n");
    }
    return;
  }
  Appendf(out, "Country cross-reporting counts (cf. Table VI):\n  %-14s", "");
  for (const CountryId p : publishing) {
    Appendf(out, " %-12s", std::string(CountryName(p)).c_str());
  }
  Appendf(out, "\n");
  for (const CountryId rep : reported) {
    Appendf(out, "  %-14s", std::string(CountryName(rep)).c_str());
    for (const CountryId p : publishing) {
      Appendf(out, " %-12s", WithThousands(report.At(rep, p)).c_str());
    }
    Appendf(out, "\n");
  }
  Appendf(out, "\nAs percentage of publisher's articles (cf. Table VII):\n");
  for (const CountryId rep : reported) {
    Appendf(out, "  %-14s", std::string(CountryName(rep)).c_str());
    for (const CountryId p : publishing) {
      Appendf(out, " %-12.2f", report.Percent(rep, p));
    }
    Appendf(out, "\n");
  }
}

void AppendDelayText(std::string& out,
                     const std::vector<std::string>& labels,
                     const std::vector<analysis::DelayStats>& stats,
                     const analysis::QuarterlyDelay& quarterly) {
  Appendf(out,
          "Publication delay for top %zu sources "
          "(cf. Table VIII; 15-min intervals):\n",
          labels.size());
  Appendf(out, "  %-28s %8s %8s %8s %8s\n", "Publisher", "Min", "Max",
          "Average", "Median");
  for (std::size_t k = 0; k < labels.size(); ++k) {
    const auto& st = stats[k];
    Appendf(out, "  %-28s %8lld %8lld %8.0f %8lld\n", labels[k].c_str(),
            static_cast<long long>(st.min), static_cast<long long>(st.max),
            st.average, static_cast<long long>(st.median));
  }
  Appendf(out, "\nQuarterly delay (Fig 10):\n");
  for (std::size_t q = 0; q < quarterly.average.size(); ++q) {
    Appendf(out, "  %s  avg %.1f  median %lld\n",
            QuarterLabel(quarterly.first_quarter + static_cast<QuarterId>(q))
                .c_str(),
            quarterly.average[q], static_cast<long long>(quarterly.median[q]));
  }
}

void AppendFirstReportsText(std::string& out,
                            const std::vector<std::string>& labels,
                            const std::vector<std::uint64_t>& breaks,
                            const std::vector<std::uint64_t>& articles,
                            const std::vector<double>& repeat_rate_pct,
                            std::uint64_t within_hour,
                            std::uint64_t num_events) {
  Appendf(out,
          "Sources breaking the most stories (wildfire pool "
          "candidates):\n");
  Appendf(out, "  %-28s %10s %10s %12s\n", "Source", "breaks", "articles",
          "repeat-rate");
  for (std::size_t k = 0; k < labels.size(); ++k) {
    Appendf(out, "  %-28s %10s %10s %11.1f%%\n", labels[k].c_str(),
            WithThousands(breaks[k]).c_str(),
            WithThousands(articles[k]).c_str(), repeat_rate_pct[k]);
  }
  Appendf(out, "\nevents first reported within 1 hour: %s of %s\n",
          WithThousands(within_hour).c_str(),
          WithThousands(num_events).c_str());
}

}  // namespace gdelt::serve
