// Prometheus text exposition of the server's metrics surface.
//
// The `metrics_prom` request renders the same state as `metrics` (counters,
// gauges, per-kind latency histograms) plus the tracer's per-span
// aggregates in the Prometheus text format (version 0.0.4): `# TYPE` lines,
// `_total` counters, histograms with cumulative `le` buckets ending in
// `+Inf`, and backslash-escaped label values. A scraper sidecar can expose
// it over HTTP verbatim; the format is also stable enough to golden-test.
#pragma once

#include <string>
#include <vector>

#include "serve/metrics.hpp"
#include "trace/trace.hpp"

namespace gdelt::serve {

/// Escapes a Prometheus label value (backslash, double quote, newline).
std::string PromEscapeLabel(std::string_view value);

/// Renders the full exposition (ends with a trailing newline).
std::string PrometheusText(const ServerMetrics& metrics,
                           const ServerMetrics::Gauges& gauges,
                           const std::vector<trace::SpanAggregate>& spans);

}  // namespace gdelt::serve
