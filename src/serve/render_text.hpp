// Shared text formatting for the query renderers.
//
// The bodies here are the printf transcriptions that produce the exact
// bytes of every query's `text` payload. They take plain aggregates and
// pre-resolved labels — no database — so the same functions serve both
// the single-node renderer (render.cpp, aggregates straight from the
// kernels) and the router's partial-aggregate merge (partial.cpp,
// aggregates reassembled from shard frames). Byte-identical router
// output is by construction: there is exactly one copy of every format
// string.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/coreport.hpp"
#include "analysis/country.hpp"
#include "analysis/delay.hpp"
#include "analysis/followreport.hpp"
#include "engine/queries.hpp"

namespace gdelt::serve {

/// printf-append; the render bodies are transcriptions of the original
/// gdelt_query printf calls, so keeping the printf idiom keeps the bytes
/// identical.
void Appendf(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void AppendQuarterSeries(std::string& out, const char* label,
                         const engine::QuarterSeries& series);

/// Ids 0..counts.size() ranked by count, descending, truncated to
/// `top_k`. Deliberately NO tie-break (ties keep partial_sort's order):
/// this is the historical restricted-ranking comparator, and the
/// single-node renderer and the router's merge must run the exact same
/// code on the exact same count vector to rank identically.
std::vector<std::uint32_t> RankSources(
    const std::vector<std::uint64_t>& counts, std::size_t top_k);

/// Ranked source listing (`top-sources`); `labels[k]` / `counts[k]` are
/// the k-th ranked source's domain and article count.
void AppendTopSourcesText(std::string& out,
                          const std::vector<std::string>& labels,
                          const std::vector<std::uint64_t>& counts,
                          bool restricted);

/// Table III listing (`top-events`); parallel arrays over ranked events.
void AppendTopEventsText(std::string& out,
                         const std::vector<std::uint32_t>& articles,
                         const std::vector<std::string>& urls);

/// Jaccard matrix among ranked sources (`coreport`), plain or restricted.
void AppendCoreportText(std::string& out,
                        const std::vector<std::string>& labels,
                        const analysis::CoReportMatrix& matrix,
                        bool restricted);

/// Follow-reporting matrix + Sum row (`follow`).
void AppendFollowText(std::string& out,
                      const std::vector<std::string>& labels,
                      const analysis::FollowReportMatrix& matrix);

/// Country Jaccard matrix (`country-coreport`) over ranked country ids.
void AppendCountryCoreportText(std::string& out,
                               const std::vector<CountryId>& top,
                               const analysis::CountryCoReport& report);

/// Tables VI/VII (`cross-report`); the restricted flavor prints only the
/// windowed count matrix.
void AppendCrossReportText(std::string& out,
                           const std::vector<CountryId>& reported,
                           const std::vector<CountryId>& publishing,
                           const engine::CountryCrossReport& report,
                           bool restricted);

/// Table VIII + Fig 10 (`delay`); `stats[k]` belongs to `labels[k]`.
void AppendDelayText(std::string& out,
                     const std::vector<std::string>& labels,
                     const std::vector<analysis::DelayStats>& stats,
                     const analysis::QuarterlyDelay& quarterly);

/// First-reporter listing (`first-reports`); parallel arrays over the
/// ranked sources, plus the dataset-wide footer counters.
void AppendFirstReportsText(std::string& out,
                            const std::vector<std::string>& labels,
                            const std::vector<std::uint64_t>& breaks,
                            const std::vector<std::uint64_t>& articles,
                            const std::vector<double>& repeat_rate_pct,
                            std::uint64_t within_hour,
                            std::uint64_t num_events);

}  // namespace gdelt::serve
