// Observability surface of the query service.
//
// Counters are lock-free atomics bumped on the request path; latency
// histograms are per query kind with power-of-two microsecond buckets
// (mutex-guarded — the guarded work is a handful of adds, invisible next
// to a query scan). Snapshots render as the JSON payload of the `metrics`
// request and as the periodic one-line log summary.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace gdelt::serve {

/// Log2-bucketed latency histogram over microseconds.
class LatencyHistogram {
 public:
  /// Bucket b counts samples in [2^b, 2^(b+1)) microseconds; the last
  /// bucket is open-ended (>= ~8.4 s).
  static constexpr int kBuckets = 24;

  void Record(double seconds);

  struct Snapshot {
    std::uint64_t count = 0;
    double sum_ms = 0;
    double max_ms = 0;
    std::uint64_t buckets[kBuckets] = {};

    double MeanMs() const noexcept {
      return count == 0 ? 0.0 : sum_ms / static_cast<double>(count);
    }
    /// Upper bound of the bucket holding quantile `q` in [0, 1].
    double QuantileMs(double q) const noexcept;
  };
  Snapshot Snap() const;

 private:
  mutable std::mutex mu_;
  Snapshot data_;
};

/// All server-side counters plus the per-kind latency histograms.
class ServerMetrics {
 public:
  std::atomic<std::uint64_t> requests_total{0};
  std::atomic<std::uint64_t> responses_ok{0};
  std::atomic<std::uint64_t> cache_hits{0};
  std::atomic<std::uint64_t> cache_misses{0};
  std::atomic<std::uint64_t> rejected_overloaded{0};
  std::atomic<std::uint64_t> timeouts{0};
  std::atomic<std::uint64_t> bad_requests{0};
  std::atomic<std::uint64_t> unknown_queries{0};
  std::atomic<std::uint64_t> internal_errors{0};
  std::atomic<std::uint64_t> ingests{0};
  std::atomic<std::uint64_t> ingest_failures{0};
  std::atomic<std::uint64_t> connections_opened{0};

  void RecordLatency(const std::string& kind, double seconds);

  /// Gauges sampled by the caller at render time.
  struct Gauges {
    std::size_t queue_depth = 0;
    std::size_t queue_capacity = 0;
    int workers = 0;
    int threads_per_query = 0;
    std::uint64_t epoch = 0;
    std::size_t cache_entries = 0;
    std::uint64_t cache_text_bytes = 0;
    double uptime_s = 0;
    // ingest/fetch health (from the delta store's ChunkFetcher)
    std::uint64_t ingest_retries = 0;
    std::uint64_t ingest_quarantined = 0;
    std::uint64_t last_ingest_generation = 0;
    double last_ingest_age_s = -1;  ///< seconds since last success; -1 = never
  };

  /// The `metrics` response payload: one JSON object (no trailing
  /// newline), counters + gauges + per-kind histograms.
  std::string ToJson(const Gauges& gauges) const;

  /// One-line human summary for the periodic server log.
  std::string Summary(const Gauges& gauges) const;

 private:
  mutable std::mutex histograms_mu_;
  std::map<std::string, LatencyHistogram> histograms_;
};

}  // namespace gdelt::serve
