// Observability surface of the query service.
//
// Counters are lock-free atomics bumped on the request path; latency
// histograms are per query kind with power-of-two microsecond buckets
// (mutex-guarded — the guarded work is a handful of adds, invisible next
// to a query scan). Snapshots render as the JSON payload of the `metrics`
// request and as the periodic one-line log summary.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>

#include "util/sync.hpp"

namespace gdelt::serve {

/// Log2-bucketed latency histogram over microseconds.
class LatencyHistogram {
 public:
  /// Bucket 0 counts samples in [0, 2) microseconds (sub-microsecond and
  /// zero-length samples land here, not in a phantom [1, 2) bucket);
  /// bucket b >= 1 counts [2^b, 2^(b+1)); the last bucket (b = 23) is
  /// open-ended, >= 2^23 us (~8.4 s).
  static constexpr int kBuckets = 24;

  /// Exclusive upper edge of bucket `b` in microseconds (2^(b+1)). The
  /// last bucket has no finite edge; renderers report it as +Inf.
  static constexpr std::uint64_t BucketUpperUs(int b) noexcept {
    return 2ull << b;
  }

  void Record(double seconds);

  struct Snapshot {
    std::uint64_t count = 0;
    double sum_ms = 0;
    double max_ms = 0;
    std::uint64_t buckets[kBuckets] = {};

    double MeanMs() const noexcept {
      return count == 0 ? 0.0 : sum_ms / static_cast<double>(count);
    }
    /// Upper bound of the bucket holding quantile `q` in [0, 1], clamped
    /// to the observed maximum (the top bucket is open-ended, and any
    /// bucket's edge can overshoot the largest sample actually seen).
    double QuantileMs(double q) const noexcept;
  };
  Snapshot Snap() const;

 private:
  mutable sync::Mutex mu_;
  Snapshot data_ GDELT_GUARDED_BY(mu_);
};

/// All server-side counters plus the per-kind latency histograms.
class ServerMetrics {
 public:
  std::atomic<std::uint64_t> requests_total{0};
  std::atomic<std::uint64_t> responses_ok{0};
  std::atomic<std::uint64_t> cache_hits{0};
  std::atomic<std::uint64_t> cache_misses{0};
  std::atomic<std::uint64_t> rejected_overloaded{0};
  std::atomic<std::uint64_t> timeouts{0};
  // Cooperative-cancellation outcomes, split by who pulled the trigger:
  // the armed deadline expiring mid-execution, the client vanishing
  // (POLLHUP while queued/executing), or an explicit `cancel` verb (the
  // router's orphaned-scatter reaper, or any client by request id).
  std::atomic<std::uint64_t> cancelled_deadline{0};
  std::atomic<std::uint64_t> cancelled_disconnect{0};
  std::atomic<std::uint64_t> cancelled_router{0};
  // Deadline-expired renders whose full text was cached anyway (tagged
  // late) and later served a repeat of the same canonical key.
  std::atomic<std::uint64_t> timeouts_salvaged_by_cache{0};
  std::atomic<std::uint64_t> bad_requests{0};
  std::atomic<std::uint64_t> unknown_queries{0};
  std::atomic<std::uint64_t> internal_errors{0};
  std::atomic<std::uint64_t> ingests{0};
  std::atomic<std::uint64_t> ingest_failures{0};
  std::atomic<std::uint64_t> connections_opened{0};

  void RecordLatency(const std::string& kind, double seconds);

  /// Gauges sampled by the caller at render time.
  struct Gauges {
    std::size_t queue_depth = 0;
    std::size_t queue_capacity = 0;
    int workers = 0;
    int threads_per_query = 0;
    std::uint64_t epoch = 0;
    std::size_t cache_entries = 0;
    std::uint64_t cache_text_bytes = 0;
    /// Entries collected because their epoch went stale (cumulative).
    std::uint64_t cache_evicted_stale = 0;
    double uptime_s = 0;
    // ingest/fetch health (from the delta store's ChunkFetcher)
    std::uint64_t ingest_retries = 0;
    std::uint64_t ingest_quarantined = 0;
    std::uint64_t last_ingest_generation = 0;
    double last_ingest_age_s = -1;  ///< seconds since last success; -1 = never
    // cancellation/overload health
    std::uint64_t morsels_skipped = 0;   ///< pool morsels drained as no-ops
    std::int64_t retry_after_ms = 0;     ///< last backoff hint handed out
  };

  /// The `metrics` response payload: one JSON object (no trailing
  /// newline), counters + gauges + per-kind histograms.
  std::string ToJson(const Gauges& gauges) const;

  /// One-line human summary for the periodic server log.
  std::string Summary(const Gauges& gauges) const;

  /// Per-kind histogram snapshots (for the Prometheus exposition).
  std::map<std::string, LatencyHistogram::Snapshot> HistogramSnapshots() const;

 private:
  mutable sync::Mutex histograms_mu_;
  std::map<std::string, LatencyHistogram> histograms_
      GDELT_GUARDED_BY(histograms_mu_);
};

}  // namespace gdelt::serve
