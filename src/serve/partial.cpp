#include "serve/partial.hpp"

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "analysis/coreport.hpp"
#include "analysis/country.hpp"
#include "analysis/delay.hpp"
#include "analysis/firstreport.hpp"
#include "analysis/followreport.hpp"
#include "convert/binary_format.hpp"
#include "engine/filter.hpp"
#include "engine/queries.hpp"
#include "engine/sharded.hpp"
#include "parallel/parallel.hpp"
#include "schema/countries.hpp"
#include "serve/render_text.hpp"
#include "util/strings.hpp"

namespace gdelt::serve {
namespace {

PartialMatrixEncoding g_matrix_encoding = PartialMatrixEncoding::kAuto;

// ---------------------------------------------------------------------------
// Partition helpers.

/// Event-row range owned by partition `shard` of `of`. SplitRange clamps
/// the part count to the element count, so partitions past the clamp own
/// an empty range (their frames carry all-zero aggregates).
IndexRange EventRangeFor(const engine::Database& db, std::uint32_t shard,
                         std::uint32_t of) {
  const auto ranges = SplitRange(db.num_events(), of);
  if (shard >= ranges.size()) return {db.num_events(), db.num_events()};
  return ranges[shard];
}

/// Mention-row range owned by partition `shard` of `of` (time shards).
engine::Shard MentionShardFor(const engine::Database& db, std::uint32_t shard,
                              std::uint32_t of) {
  const auto shards = engine::MakeTimeShards(db, of);
  if (shard >= shards.size()) return {db.num_mentions(), db.num_mentions()};
  return shards[shard];
}

/// Source ids ranked (counts desc, id asc) — the TopSourcesByArticles
/// comparator, applied to a merged count vector at the router.
std::vector<std::uint32_t> RankByCountThenId(
    const std::vector<std::uint64_t>& counts, std::size_t top_k) {
  std::vector<std::uint32_t> ids(counts.size());
  std::iota(ids.begin(), ids.end(), 0u);
  const std::size_t take = std::min(top_k, ids.size());
  std::partial_sort(ids.begin(),
                    ids.begin() + static_cast<std::ptrdiff_t>(take), ids.end(),
                    [&](std::uint32_t a, std::uint32_t b) {
                      if (counts[a] != counts[b]) return counts[a] > counts[b];
                      return a < b;
                    });
  ids.resize(take);
  return ids;
}

std::vector<std::string> DomainsOf(const engine::Database& db,
                                   std::span<const std::uint32_t> ids) {
  std::vector<std::string> out;
  out.reserve(ids.size());
  for (const std::uint32_t s : ids) out.emplace_back(db.source_domain(s));
  return out;
}

std::vector<std::string> AllDomains(const engine::Database& db) {
  std::vector<std::string> out;
  out.reserve(db.num_sources());
  for (std::uint32_t s = 0; s < db.num_sources(); ++s) {
    out.emplace_back(db.source_domain(s));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Frame emission.

template <typename T>
void AppendIntArray(std::string& out, const std::vector<T>& values) {
  out += '[';
  for (std::size_t k = 0; k < values.size(); ++k) {
    if (k) out += ',';
    Appendf(out, "%lld", static_cast<long long>(values[k]));
  }
  out += ']';
}

void AppendDoubleArray(std::string& out, const std::vector<double>& values) {
  out += '[';
  for (std::size_t k = 0; k < values.size(); ++k) {
    if (k) out += ',';
    // %.17g round-trips every IEEE double through strtod, so the merged
    // averages re-parse to the exact bits the shard computed.
    Appendf(out, "%.17g", values[k]);
  }
  out += ']';
}

void AppendStringArray(std::string& out,
                       const std::vector<std::string>& values) {
  out += '[';
  for (std::size_t k = 0; k < values.size(); ++k) {
    if (k) out += ',';
    AppendJsonString(out, values[k]);
  }
  out += ']';
}

/// Emits a count matrix (full row-major n*n, symmetric matrices already
/// mirrored) as a frame matrix object. Symmetric matrices ship only the
/// upper triangle; the merger mirrors once after summing.
template <typename T>
void AppendCountMatrix(std::string& out, const std::vector<T>& full,
                       std::size_t n, bool sym) {
  const std::size_t dense_elems = sym ? n * (n + 1) / 2 : n * n;
  std::size_t nnz = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = sym ? i : 0; j < n; ++j) {
      if (full[i * n + j] != 0) ++nnz;
    }
  }
  bool sparse = false;
  switch (g_matrix_encoding) {
    case PartialMatrixEncoding::kDense: sparse = false; break;
    case PartialMatrixEncoding::kSparse: sparse = true; break;
    case PartialMatrixEncoding::kAuto: sparse = 3 * nnz < dense_elems; break;
  }
  Appendf(out, "{\"n\":%zu,\"sym\":%s,\"enc\":\"%s\",", n,
          sym ? "true" : "false", sparse ? "sparse" : "dense");
  if (sparse) {
    out += "\"items\":[";
    bool first = true;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = sym ? i : 0; j < n; ++j) {
        const T v = full[i * n + j];
        if (v == 0) continue;
        if (!first) out += ',';
        first = false;
        Appendf(out, "[%zu,%zu,%llu]", i, j,
                static_cast<unsigned long long>(v));
      }
    }
    out += ']';
  } else {
    out += sym ? "\"tri\":[" : "\"cells\":[";
    bool first = true;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = sym ? i : 0; j < n; ++j) {
        if (!first) out += ',';
        first = false;
        Appendf(out, "%llu", static_cast<unsigned long long>(full[i * n + j]));
      }
    }
    out += ']';
  }
  out += '}';
}

// ---------------------------------------------------------------------------
// Frame parsing.

Status FrameError(std::string what) {
  return status::InvalidArgument("bad partial frame: " + std::move(what));
}

Result<std::uint64_t> U64Of(const JsonValue& v, std::string_view what) {
  if (!v.is_number() || v.AsNumber() < 0) {
    return FrameError("'" + std::string(what) +
                      "' must be a non-negative number");
  }
  return static_cast<std::uint64_t>(v.AsInt());
}

Status TakeU64Vec(const JsonValue& data, std::string_view key,
                  std::vector<std::uint64_t>& out) {
  const JsonValue* arr = data.Find(key);
  if (arr == nullptr || arr->kind() != JsonValue::Kind::kArray) {
    return FrameError("missing array '" + std::string(key) + "'");
  }
  out.clear();
  out.reserve(arr->elements().size());
  for (const JsonValue& e : arr->elements()) {
    GDELT_ASSIGN_OR_RETURN(const std::uint64_t v, U64Of(e, key));
    out.push_back(v);
  }
  return Status::Ok();
}

Status TakeI64Vec(const JsonValue& data, std::string_view key,
                  std::vector<std::int64_t>& out) {
  const JsonValue* arr = data.Find(key);
  if (arr == nullptr || arr->kind() != JsonValue::Kind::kArray) {
    return FrameError("missing array '" + std::string(key) + "'");
  }
  out.clear();
  out.reserve(arr->elements().size());
  for (const JsonValue& e : arr->elements()) {
    if (!e.is_number()) {
      return FrameError("'" + std::string(key) + "' must hold numbers");
    }
    out.push_back(e.AsInt());
  }
  return Status::Ok();
}

Status TakeDoubleVec(const JsonValue& data, std::string_view key,
                     std::vector<double>& out) {
  const JsonValue* arr = data.Find(key);
  if (arr == nullptr || arr->kind() != JsonValue::Kind::kArray) {
    return FrameError("missing array '" + std::string(key) + "'");
  }
  out.clear();
  out.reserve(arr->elements().size());
  for (const JsonValue& e : arr->elements()) {
    if (!e.is_number()) {
      return FrameError("'" + std::string(key) + "' must hold numbers");
    }
    out.push_back(e.AsNumber());
  }
  return Status::Ok();
}

Status TakeStringVec(const JsonValue& data, std::string_view key,
                     std::vector<std::string>& out) {
  const JsonValue* arr = data.Find(key);
  if (arr == nullptr || arr->kind() != JsonValue::Kind::kArray) {
    return FrameError("missing array '" + std::string(key) + "'");
  }
  out.clear();
  out.reserve(arr->elements().size());
  for (const JsonValue& e : arr->elements()) {
    if (!e.is_string()) {
      return FrameError("'" + std::string(key) + "' must hold strings");
    }
    out.push_back(e.AsString());
  }
  return Status::Ok();
}

Status TakeU64Field(const JsonValue& data, std::string_view key,
                    std::uint64_t& out) {
  const JsonValue* v = data.Find(key);
  if (v == nullptr) return FrameError("missing '" + std::string(key) + "'");
  GDELT_ASSIGN_OR_RETURN(out, U64Of(*v, key));
  return Status::Ok();
}

/// Parses a frame matrix object and ADDS it into `acc` (row-major n*n).
/// Symmetric matrices accumulate only at upper-triangle positions; call
/// MirrorUpper once after all frames are summed.
Status ParseCountMatrixInto(const JsonValue* m, std::size_t n, bool sym,
                            std::vector<std::uint64_t>& acc) {
  if (m == nullptr || !m->is_object()) {
    return FrameError("missing matrix object");
  }
  const JsonValue* nv = m->Find("n");
  if (nv == nullptr || !nv->is_number() ||
      static_cast<std::size_t>(nv->AsInt()) != n) {
    return FrameError("matrix dimension mismatch");
  }
  const JsonValue* sv = m->Find("sym");
  if (sv == nullptr || !sv->is_bool() || sv->AsBool() != sym) {
    return FrameError("matrix symmetry mismatch");
  }
  const JsonValue* enc = m->Find("enc");
  if (enc == nullptr || !enc->is_string()) {
    return FrameError("matrix needs an 'enc' string");
  }
  if (enc->AsString() == "dense") {
    const std::string_view key = sym ? "tri" : "cells";
    const JsonValue* arr = m->Find(key);
    if (arr == nullptr || arr->kind() != JsonValue::Kind::kArray) {
      return FrameError("dense matrix needs '" + std::string(key) + "'");
    }
    const std::size_t expected = sym ? n * (n + 1) / 2 : n * n;
    if (arr->elements().size() != expected) {
      return FrameError("dense matrix length mismatch");
    }
    std::size_t at = 0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = sym ? i : 0; j < n; ++j) {
        GDELT_ASSIGN_OR_RETURN(const std::uint64_t v,
                               U64Of(arr->elements()[at++], key));
        acc[i * n + j] += v;
      }
    }
    return Status::Ok();
  }
  if (enc->AsString() == "sparse") {
    const JsonValue* items = m->Find("items");
    if (items == nullptr || items->kind() != JsonValue::Kind::kArray) {
      return FrameError("sparse matrix needs 'items'");
    }
    for (const JsonValue& item : items->elements()) {
      if (item.kind() != JsonValue::Kind::kArray ||
          item.elements().size() != 3) {
        return FrameError("sparse item must be [i,j,count]");
      }
      GDELT_ASSIGN_OR_RETURN(const std::uint64_t i,
                             U64Of(item.elements()[0], "items"));
      GDELT_ASSIGN_OR_RETURN(const std::uint64_t j,
                             U64Of(item.elements()[1], "items"));
      GDELT_ASSIGN_OR_RETURN(const std::uint64_t v,
                             U64Of(item.elements()[2], "items"));
      if (i >= n || j >= n || (sym && j < i)) {
        return FrameError("sparse item index out of range");
      }
      acc[i * n + j] += v;
    }
    return Status::Ok();
  }
  return FrameError("unknown matrix encoding '" + enc->AsString() + "'");
}

void MirrorUpper(std::vector<std::uint64_t>& full, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      full[j * n + i] = full[i * n + j];
    }
  }
}

/// First frame records a carried-global field; later frames must agree
/// byte-for-byte, or the shards answered over different data.
template <typename T>
Status CarryCheck(bool first, T& expected, T&& got, std::string_view what) {
  if (first) {
    expected = std::move(got);
    return Status::Ok();
  }
  if (!(expected == got)) {
    return status::Internal("shard partials disagree on '" +
                            std::string(what) +
                            "' (mixed data epochs behind the router?)");
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Per-kind frame renderers. Each emits only the members of `"data"`.

void PartialTopSources(const engine::Database& db, const Request& r,
                       std::string& out) {
  const engine::Shard shard = MentionShardFor(db, r.shard, r.of);
  const auto src = db.mention_source_id();
  std::vector<std::uint64_t> counts(db.num_sources(), 0);
  if (r.restricted) {
    const auto sel = engine::SelectMentionsBitmap(db, r.filter);
    for (std::uint64_t i = shard.begin; i < shard.end; ++i) {
      if (sel.Test(i)) ++counts[src[i]];
    }
  } else {
    for (std::uint64_t i = shard.begin; i < shard.end; ++i) {
      ++counts[src[i]];
    }
  }
  out += "\"counts\":";
  AppendIntArray(out, counts);
  out += ",\"domains\":";
  AppendStringArray(out, AllDomains(db));
}

void PartialTopEvents(const engine::Database& db, const Request& r,
                      std::string& out) {
  const IndexRange range = EventRangeFor(db, r.shard, r.of);
  const auto counts = db.event_article_count();
  std::vector<std::uint32_t> rows(range.size());
  std::iota(rows.begin(), rows.end(), static_cast<std::uint32_t>(range.begin));
  const std::size_t take = std::min(r.top_k, rows.size());
  std::partial_sort(rows.begin(),
                    rows.begin() + static_cast<std::ptrdiff_t>(take),
                    rows.end(), [&](std::uint32_t a, std::uint32_t b) {
                      if (counts[a] != counts[b]) return counts[a] > counts[b];
                      return a < b;
                    });
  rows.resize(take);
  std::vector<std::uint32_t> articles;
  std::vector<std::string> urls;
  articles.reserve(take);
  urls.reserve(take);
  for (const std::uint32_t row : rows) {
    articles.push_back(counts[row]);
    urls.emplace_back(db.event_source_url(row));
  }
  out += "\"rows\":";
  AppendIntArray(out, rows);
  out += ",\"articles\":";
  AppendIntArray(out, articles);
  out += ",\"urls\":";
  AppendStringArray(out, urls);
}

void PartialCoreport(const engine::Database& db, const Request& r,
                     std::string& out, const util::CancelToken* cancel) {
  const IndexRange range = EventRangeFor(db, r.shard, r.of);
  std::vector<std::uint32_t> top;
  analysis::CoReportMatrix matrix(0);
  if (r.restricted) {
    const auto sel = engine::SelectMentionsBitmap(db, r.filter);
    top = RankSources(engine::ArticlesPerSource(db, sel), r.top_k);
    // Partition the filtered rows by the event axis: a row contributes to
    // the shard owning its event. Orphan rows fall in no range, exactly
    // as the single-node restricted kernel skips them.
    auto rows = sel.ToRows();
    const auto event_row = db.mention_event_row();
    std::erase_if(rows, [&](std::uint64_t row) {
      const std::uint32_t ev = event_row[row];
      return ev < range.begin || ev >= range.end;
    });
    matrix = analysis::ComputeCoReporting(db, top, rows, cancel);
  } else {
    top = engine::TopSourcesByArticles(db, r.top_k);
    matrix = analysis::ComputeCoReportingOnEvents(db, top, range.begin,
                                                  range.end, cancel);
  }
  out += "\"subset\":";
  AppendIntArray(out, top);
  out += ",\"domains\":";
  AppendStringArray(out, DomainsOf(db, top));
  out += ",\"matrix\":";
  AppendCountMatrix(out, matrix.counts(), matrix.size(), /*sym=*/true);
}

void PartialFollow(const engine::Database& db, const Request& r,
                   std::string& out, const util::CancelToken* cancel) {
  const IndexRange range = EventRangeFor(db, r.shard, r.of);
  const auto top = engine::TopSourcesByArticles(db, r.top_k);
  const auto matrix =
      analysis::ComputeFollowReportingOnEvents(db, top, range.begin,
                                               range.end, cancel);
  out += "\"subset\":";
  AppendIntArray(out, top);
  out += ",\"domains\":";
  AppendStringArray(out, DomainsOf(db, top));
  out += ",\"articles\":";
  AppendIntArray(out, matrix.articles);
  out += ",\"matrix\":";
  AppendCountMatrix(out, matrix.follow_counts, matrix.n, /*sym=*/false);
}

void PartialCountryCoreport(const engine::Database& db, const Request& r,
                            std::string& out,
                            const util::CancelToken* cancel) {
  const IndexRange range = EventRangeFor(db, r.shard, r.of);
  const auto report = analysis::ComputeCountryCoReportingOnEvents(
      db, range.begin, range.end, cancel);
  const auto top = engine::CountriesByPublishedArticles(db, r.top_k);
  out += "\"top\":";
  AppendIntArray(out, top);
  out += ",\"pairs\":";
  AppendCountMatrix(out, report.pair_counts, report.n, /*sym=*/true);
}

void PartialCrossReport(const engine::Database& db, const Request& r,
                        std::string& out, const util::CancelToken* cancel) {
  const engine::Shard shard = MentionShardFor(db, r.shard, r.of);
  engine::CrossReportPartial partial;
  if (r.restricted) {
    const auto sel = engine::SelectMentionsBitmap(db, r.filter);
    partial = engine::CrossReportingOnShard(db, shard, sel, cancel);
  } else {
    partial = engine::CrossReportingOnShard(db, shard, cancel);
  }
  const std::size_t nc = Countries().size();
  out += "\"reported\":";
  AppendIntArray(out, engine::CountriesByReportedEvents(db, r.top_k));
  out += ",\"publishing\":";
  AppendIntArray(out, engine::CountriesByPublishedArticles(db, r.top_k));
  out += ",\"counts\":";
  AppendCountMatrix(out, partial.counts, nc, /*sym=*/false);
  out += ",\"untagged\":";
  AppendIntArray(out, partial.articles_per_publisher);
}

void PartialDelay(const engine::Database& db, const Request& r,
                  std::string& out, const util::CancelToken* cancel) {
  const auto top = engine::TopSourcesByArticles(db, r.top_k);
  const auto stats =
      analysis::PerSourceDelayStatsStrided(db, r.shard, r.of, cancel);
  const auto quarterly =
      analysis::QuarterlyDelayStatsStrided(db, r.shard, r.of);
  out += "\"top\":";
  AppendIntArray(out, top);
  out += ",\"domains\":";
  AppendStringArray(out, DomainsOf(db, top));
  // Owned Table VIII rows: the shard owning source id s (s % of) carries
  // that source's whole-source stats; parallel arrays over `slots`.
  std::vector<std::uint64_t> slots;
  std::vector<std::uint64_t> count;
  std::vector<std::int64_t> min;
  std::vector<std::int64_t> max;
  std::vector<double> avg;
  std::vector<std::int64_t> median;
  for (std::size_t k = 0; k < top.size(); ++k) {
    if (top[k] % r.of != r.shard) continue;
    const analysis::DelayStats& st = stats[top[k]];
    slots.push_back(k);
    count.push_back(st.article_count);
    min.push_back(st.min);
    max.push_back(st.max);
    avg.push_back(st.average);
    median.push_back(st.median);
  }
  out += ",\"slots\":";
  AppendIntArray(out, slots);
  out += ",\"count\":";
  AppendIntArray(out, count);
  out += ",\"min\":";
  AppendIntArray(out, min);
  out += ",\"max\":";
  AppendIntArray(out, max);
  out += ",\"avg\":";
  AppendDoubleArray(out, avg);
  out += ",\"median\":";
  AppendIntArray(out, median);
  // Owned Fig 10 quarters: quarter q (relative) belongs to shard q % of.
  Appendf(out, ",\"q_first\":%lld,\"q_count\":%zu",
          static_cast<long long>(quarterly.first_quarter),
          quarterly.average.size());
  std::vector<std::uint64_t> q_slots;
  std::vector<double> q_avg;
  std::vector<std::int64_t> q_median;
  for (std::size_t q = 0; q < quarterly.average.size(); ++q) {
    if (q % r.of != r.shard) continue;
    q_slots.push_back(q);
    q_avg.push_back(quarterly.average[q]);
    q_median.push_back(quarterly.median[q]);
  }
  out += ",\"q_slots\":";
  AppendIntArray(out, q_slots);
  out += ",\"q_avg\":";
  AppendDoubleArray(out, q_avg);
  out += ",\"q_median\":";
  AppendIntArray(out, q_median);
}

void PartialFirstReports(const engine::Database& db, const Request& r,
                         std::string& out, const util::CancelToken* cancel) {
  const IndexRange range = EventRangeFor(db, r.shard, r.of);
  const auto stats = analysis::ComputeFirstReportsOnEvents(
      db, range.begin, range.end, /*histogram_bins=*/18, cancel);
  out += "\"breaks\":";
  AppendIntArray(out, stats.first_reports);
  out += ",\"repeat_articles\":";
  AppendIntArray(out, stats.repeat_articles);
  Appendf(out, ",\"within_hour\":%llu",
          static_cast<unsigned long long>(stats.events_broken_within_hour));
  out += ",\"articles\":";
  AppendIntArray(out, engine::ArticlesPerSource(db));
  out += ",\"domains\":";
  AppendStringArray(out, AllDomains(db));
  Appendf(out, ",\"num_events\":%zu", db.num_events());
}

// ---------------------------------------------------------------------------
// Per-kind mergers. `frames` are the validated `"data"` objects.

Result<std::string> MergeTopSources(const Request& r,
                                    std::span<const JsonValue* const> frames) {
  std::vector<std::uint64_t> counts;
  std::vector<std::string> domains;
  bool first = true;
  for (const JsonValue* data : frames) {
    std::vector<std::uint64_t> c;
    GDELT_RETURN_IF_ERROR(TakeU64Vec(*data, "counts", c));
    std::vector<std::string> d;
    GDELT_RETURN_IF_ERROR(TakeStringVec(*data, "domains", d));
    if (c.size() != d.size()) {
      return FrameError("counts/domains length mismatch");
    }
    if (first) {
      counts.assign(c.size(), 0);
    } else if (c.size() != counts.size()) {
      return status::Internal("shard partials disagree on 'counts' size");
    }
    GDELT_RETURN_IF_ERROR(CarryCheck(first, domains, std::move(d), "domains"));
    for (std::size_t s = 0; s < c.size(); ++s) counts[s] += c[s];
    first = false;
  }
  const auto ids = r.restricted ? RankSources(counts, r.top_k)
                                : RankByCountThenId(counts, r.top_k);
  std::vector<std::string> labels;
  std::vector<std::uint64_t> top_counts;
  for (const std::uint32_t s : ids) {
    labels.push_back(domains[s]);
    top_counts.push_back(counts[s]);
  }
  std::string text;
  AppendTopSourcesText(text, labels, top_counts, r.restricted);
  return text;
}

Result<std::string> MergeTopEvents(const Request& r,
                                   std::span<const JsonValue* const> frames) {
  struct Candidate {
    std::uint64_t row;
    std::uint64_t articles;
    std::string url;
  };
  std::vector<Candidate> all;
  for (const JsonValue* data : frames) {
    std::vector<std::uint64_t> rows;
    std::vector<std::uint64_t> articles;
    std::vector<std::string> urls;
    GDELT_RETURN_IF_ERROR(TakeU64Vec(*data, "rows", rows));
    GDELT_RETURN_IF_ERROR(TakeU64Vec(*data, "articles", articles));
    GDELT_RETURN_IF_ERROR(TakeStringVec(*data, "urls", urls));
    if (rows.size() != articles.size() || rows.size() != urls.size()) {
      return FrameError("rows/articles/urls length mismatch");
    }
    for (std::size_t k = 0; k < rows.size(); ++k) {
      all.push_back({rows[k], articles[k], std::move(urls[k])});
    }
  }
  // Each event row lives in exactly one shard's range, so the global
  // top-k is the top-k of the union of local top-k lists — the same
  // (articles desc, row asc) order TopReportedEvents uses.
  std::sort(all.begin(), all.end(), [](const Candidate& a, const Candidate& b) {
    if (a.articles != b.articles) return a.articles > b.articles;
    return a.row < b.row;
  });
  const std::size_t take = std::min(r.top_k, all.size());
  std::vector<std::uint32_t> articles;
  std::vector<std::string> urls;
  for (std::size_t k = 0; k < take; ++k) {
    articles.push_back(static_cast<std::uint32_t>(all[k].articles));
    urls.push_back(std::move(all[k].url));
  }
  std::string text;
  AppendTopEventsText(text, articles, urls);
  return text;
}

Result<std::string> MergeCoreport(const Request& r,
                                  std::span<const JsonValue* const> frames) {
  std::vector<std::uint64_t> subset;
  std::vector<std::string> domains;
  std::vector<std::uint64_t> acc;
  std::size_t n = 0;
  bool first = true;
  for (const JsonValue* data : frames) {
    std::vector<std::uint64_t> sub;
    GDELT_RETURN_IF_ERROR(TakeU64Vec(*data, "subset", sub));
    std::vector<std::string> dom;
    GDELT_RETURN_IF_ERROR(TakeStringVec(*data, "domains", dom));
    if (first) {
      n = sub.size();
      // The subset a shard reports can never exceed the top_k the
      // request asked for; a larger n is a hostile or corrupt frame,
      // and n*n sizes the accumulator matrix (top_k=100k would demand
      // an 80 GB allocation), so reject before allocating.
      if (n > r.top_k) {
        return FrameError("subset larger than requested top_k");
      }
      acc.assign(n * n, 0);
    }
    GDELT_RETURN_IF_ERROR(CarryCheck(first, subset, std::move(sub), "subset"));
    GDELT_RETURN_IF_ERROR(CarryCheck(first, domains, std::move(dom),
                                     "domains"));
    GDELT_RETURN_IF_ERROR(
        ParseCountMatrixInto(data->Find("matrix"), n, /*sym=*/true, acc));
    first = false;
  }
  MirrorUpper(acc, n);
  analysis::CoReportMatrix matrix(n);
  for (std::size_t k = 0; k < acc.size(); ++k) {
    matrix.mutable_counts()[k] = static_cast<std::uint32_t>(acc[k]);
  }
  std::string text;
  AppendCoreportText(text, domains, matrix, r.restricted);
  return text;
}

Result<std::string> MergeFollow(const Request& r,
                                std::span<const JsonValue* const> frames) {
  std::vector<std::uint64_t> subset;
  std::vector<std::string> domains;
  std::vector<std::uint64_t> articles;
  std::vector<std::uint64_t> acc;
  std::size_t n = 0;
  bool first = true;
  for (const JsonValue* data : frames) {
    std::vector<std::uint64_t> sub;
    GDELT_RETURN_IF_ERROR(TakeU64Vec(*data, "subset", sub));
    std::vector<std::string> dom;
    GDELT_RETURN_IF_ERROR(TakeStringVec(*data, "domains", dom));
    std::vector<std::uint64_t> art;
    GDELT_RETURN_IF_ERROR(TakeU64Vec(*data, "articles", art));
    if (first) {
      n = sub.size();
      // Same bound as MergeCoreport: n*n sizes the accumulator, and no
      // honest shard reports more than top_k follow candidates.
      if (n > r.top_k) {
        return FrameError("subset larger than requested top_k");
      }
      acc.assign(n * n, 0);
    }
    GDELT_RETURN_IF_ERROR(CarryCheck(first, subset, std::move(sub), "subset"));
    GDELT_RETURN_IF_ERROR(CarryCheck(first, domains, std::move(dom),
                                     "domains"));
    GDELT_RETURN_IF_ERROR(CarryCheck(first, articles, std::move(art),
                                     "articles"));
    GDELT_RETURN_IF_ERROR(
        ParseCountMatrixInto(data->Find("matrix"), n, /*sym=*/false, acc));
    first = false;
  }
  analysis::FollowReportMatrix matrix;
  matrix.n = n;
  matrix.follow_counts = std::move(acc);
  matrix.articles = std::move(articles);
  std::string text;
  AppendFollowText(text, domains, matrix);
  return text;
}

Result<std::string> MergeCountryCoreport(
    const Request& /*r*/, std::span<const JsonValue* const> frames) {
  const std::size_t nc = Countries().size();
  std::vector<std::uint64_t> top;
  std::vector<std::uint64_t> acc(nc * nc, 0);
  bool first = true;
  for (const JsonValue* data : frames) {
    std::vector<std::uint64_t> t;
    GDELT_RETURN_IF_ERROR(TakeU64Vec(*data, "top", t));
    for (const std::uint64_t c : t) {
      if (c >= nc) return FrameError("country id out of range");
    }
    GDELT_RETURN_IF_ERROR(CarryCheck(first, top, std::move(t), "top"));
    GDELT_RETURN_IF_ERROR(
        ParseCountMatrixInto(data->Find("pairs"), nc, /*sym=*/true, acc));
    first = false;
  }
  MirrorUpper(acc, nc);
  analysis::CountryCoReport report;
  report.n = nc;
  report.event_counts.resize(nc);
  for (std::size_t c = 0; c < nc; ++c) {
    report.event_counts[c] = acc[c * nc + c];
  }
  report.pair_counts = std::move(acc);
  std::vector<CountryId> top_ids;
  for (const std::uint64_t c : top) {
    top_ids.push_back(static_cast<CountryId>(c));
  }
  std::string text;
  AppendCountryCoreportText(text, top_ids, report);
  return text;
}

Result<std::string> MergeCrossReport(const Request& r,
                                     std::span<const JsonValue* const> frames) {
  const std::size_t nc = Countries().size();
  std::vector<std::uint64_t> reported;
  std::vector<std::uint64_t> publishing;
  std::vector<std::uint64_t> counts(nc * nc, 0);
  std::vector<std::uint64_t> untagged(nc, 0);
  bool first = true;
  for (const JsonValue* data : frames) {
    std::vector<std::uint64_t> rep;
    GDELT_RETURN_IF_ERROR(TakeU64Vec(*data, "reported", rep));
    std::vector<std::uint64_t> pub;
    GDELT_RETURN_IF_ERROR(TakeU64Vec(*data, "publishing", pub));
    for (const std::uint64_t c : rep) {
      if (c >= nc) return FrameError("country id out of range");
    }
    for (const std::uint64_t c : pub) {
      if (c >= nc) return FrameError("country id out of range");
    }
    GDELT_RETURN_IF_ERROR(CarryCheck(first, reported, std::move(rep),
                                     "reported"));
    GDELT_RETURN_IF_ERROR(CarryCheck(first, publishing, std::move(pub),
                                     "publishing"));
    GDELT_RETURN_IF_ERROR(
        ParseCountMatrixInto(data->Find("counts"), nc, /*sym=*/false, counts));
    std::vector<std::uint64_t> unt;
    GDELT_RETURN_IF_ERROR(TakeU64Vec(*data, "untagged", unt));
    if (unt.size() != nc) return FrameError("'untagged' length mismatch");
    for (std::size_t c = 0; c < nc; ++c) untagged[c] += unt[c];
    first = false;
  }
  // The allreduce finish of engine::ReduceCrossReport: publisher totals =
  // untagged bucket + located column sums.
  engine::CountryCrossReport report;
  report.num_countries = nc;
  report.articles_per_publisher = std::move(untagged);
  for (std::size_t rep = 0; rep < nc; ++rep) {
    for (std::size_t pub = 0; pub < nc; ++pub) {
      report.articles_per_publisher[pub] += counts[rep * nc + pub];
    }
  }
  report.counts = std::move(counts);
  std::vector<CountryId> rep_ids;
  for (const std::uint64_t c : reported) {
    rep_ids.push_back(static_cast<CountryId>(c));
  }
  std::vector<CountryId> pub_ids;
  for (const std::uint64_t c : publishing) {
    pub_ids.push_back(static_cast<CountryId>(c));
  }
  std::string text;
  AppendCrossReportText(text, rep_ids, pub_ids, report, r.restricted);
  return text;
}

Result<std::string> MergeDelay(const Request& /*r*/,
                               std::span<const JsonValue* const> frames) {
  std::vector<std::uint64_t> top;
  std::vector<std::string> domains;
  std::vector<analysis::DelayStats> stats;
  analysis::QuarterlyDelay quarterly;
  std::int64_t q_first = 0;
  std::uint64_t q_count = 0;
  bool first = true;
  for (const JsonValue* data : frames) {
    std::vector<std::uint64_t> t;
    GDELT_RETURN_IF_ERROR(TakeU64Vec(*data, "top", t));
    std::vector<std::string> dom;
    GDELT_RETURN_IF_ERROR(TakeStringVec(*data, "domains", dom));
    if (first) {
      stats.assign(t.size(), analysis::DelayStats{});
    }
    GDELT_RETURN_IF_ERROR(CarryCheck(first, top, std::move(t), "top"));
    GDELT_RETURN_IF_ERROR(CarryCheck(first, domains, std::move(dom),
                                     "domains"));
    std::vector<std::uint64_t> slots;
    std::vector<std::uint64_t> count;
    std::vector<std::int64_t> min;
    std::vector<std::int64_t> max;
    std::vector<double> avg;
    std::vector<std::int64_t> median;
    GDELT_RETURN_IF_ERROR(TakeU64Vec(*data, "slots", slots));
    GDELT_RETURN_IF_ERROR(TakeU64Vec(*data, "count", count));
    GDELT_RETURN_IF_ERROR(TakeI64Vec(*data, "min", min));
    GDELT_RETURN_IF_ERROR(TakeI64Vec(*data, "max", max));
    GDELT_RETURN_IF_ERROR(TakeDoubleVec(*data, "avg", avg));
    GDELT_RETURN_IF_ERROR(TakeI64Vec(*data, "median", median));
    if (count.size() != slots.size() || min.size() != slots.size() ||
        max.size() != slots.size() || avg.size() != slots.size() ||
        median.size() != slots.size()) {
      return FrameError("delay slot array length mismatch");
    }
    for (std::size_t k = 0; k < slots.size(); ++k) {
      if (slots[k] >= stats.size()) {
        return FrameError("delay slot out of range");
      }
      analysis::DelayStats& st = stats[slots[k]];
      st.article_count = count[k];
      st.min = min[k];
      st.max = max[k];
      st.average = avg[k];
      st.median = median[k];
    }
    const JsonValue* qf = data->Find("q_first");
    if (qf == nullptr || !qf->is_number()) {
      return FrameError("missing 'q_first'");
    }
    GDELT_RETURN_IF_ERROR(CarryCheck(first, q_first, qf->AsInt(), "q_first"));
    std::uint64_t qc = 0;
    GDELT_RETURN_IF_ERROR(TakeU64Field(*data, "q_count", qc));
    GDELT_RETURN_IF_ERROR(
        CarryCheck(first, q_count, std::move(qc), "q_count"));
    // q_count arrives in the frame and sizes two quarterly arrays; a
    // hostile 2^63 value would be an OOM, so bound it to a span no real
    // dataset approaches before allocating.
    if (q_count > kMaxQuarterSlots) {
      return FrameError("quarterly span too large");
    }
    if (first) {
      quarterly.first_quarter = static_cast<QuarterId>(q_first);
      quarterly.average.assign(q_count, 0.0);
      quarterly.median.assign(q_count, 0);
    }
    std::vector<std::uint64_t> q_slots;
    std::vector<double> q_avg;
    std::vector<std::int64_t> q_median;
    GDELT_RETURN_IF_ERROR(TakeU64Vec(*data, "q_slots", q_slots));
    GDELT_RETURN_IF_ERROR(TakeDoubleVec(*data, "q_avg", q_avg));
    GDELT_RETURN_IF_ERROR(TakeI64Vec(*data, "q_median", q_median));
    if (q_avg.size() != q_slots.size() || q_median.size() != q_slots.size()) {
      return FrameError("quarterly slot array length mismatch");
    }
    for (std::size_t k = 0; k < q_slots.size(); ++k) {
      if (q_slots[k] >= quarterly.average.size()) {
        return FrameError("quarterly slot out of range");
      }
      quarterly.average[q_slots[k]] = q_avg[k];
      quarterly.median[q_slots[k]] = q_median[k];
    }
    first = false;
  }
  std::string text;
  AppendDelayText(text, domains, stats, quarterly);
  return text;
}

Result<std::string> MergeFirstReports(
    const Request& r, std::span<const JsonValue* const> frames) {
  std::vector<std::uint64_t> breaks;
  std::vector<std::uint64_t> repeat_articles;
  std::uint64_t within_hour = 0;
  std::vector<std::uint64_t> articles;
  std::vector<std::string> domains;
  std::uint64_t num_events = 0;
  bool first = true;
  for (const JsonValue* data : frames) {
    std::vector<std::uint64_t> br;
    GDELT_RETURN_IF_ERROR(TakeU64Vec(*data, "breaks", br));
    std::vector<std::uint64_t> ra;
    GDELT_RETURN_IF_ERROR(TakeU64Vec(*data, "repeat_articles", ra));
    std::uint64_t wh = 0;
    GDELT_RETURN_IF_ERROR(TakeU64Field(*data, "within_hour", wh));
    std::vector<std::uint64_t> art;
    GDELT_RETURN_IF_ERROR(TakeU64Vec(*data, "articles", art));
    std::vector<std::string> dom;
    GDELT_RETURN_IF_ERROR(TakeStringVec(*data, "domains", dom));
    std::uint64_t ne = 0;
    GDELT_RETURN_IF_ERROR(TakeU64Field(*data, "num_events", ne));
    if (br.size() != ra.size()) {
      return FrameError("breaks/repeat_articles length mismatch");
    }
    if (first) {
      breaks.assign(br.size(), 0);
      repeat_articles.assign(ra.size(), 0);
    } else if (br.size() != breaks.size()) {
      return status::Internal("shard partials disagree on 'breaks' size");
    }
    GDELT_RETURN_IF_ERROR(CarryCheck(first, articles, std::move(art),
                                     "articles"));
    GDELT_RETURN_IF_ERROR(CarryCheck(first, domains, std::move(dom),
                                     "domains"));
    GDELT_RETURN_IF_ERROR(
        CarryCheck(first, num_events, std::move(ne), "num_events"));
    if (articles.size() != breaks.size() || domains.size() != breaks.size()) {
      return FrameError("first-reports array length mismatch");
    }
    for (std::size_t s = 0; s < br.size(); ++s) {
      breaks[s] += br[s];
      repeat_articles[s] += ra[s];
    }
    within_hour += wh;
    first = false;
  }
  const auto by_breaks = RankSources(breaks, r.top_k);
  std::vector<std::string> labels;
  std::vector<std::uint64_t> top_breaks;
  std::vector<std::uint64_t> top_articles;
  std::vector<double> rate_pct;
  for (const std::uint32_t s : by_breaks) {
    labels.push_back(domains[s]);
    top_breaks.push_back(breaks[s]);
    top_articles.push_back(articles[s]);
    // Exactly FirstReportStats::RepeatRate scaled to percent, as the
    // single-node renderer computes it.
    rate_pct.push_back(
        100.0 * (articles[s] == 0
                     ? 0.0
                     : static_cast<double>(repeat_articles[s]) /
                           static_cast<double>(articles[s])));
  }
  std::string text;
  AppendFirstReportsText(text, labels, top_breaks, top_articles, rate_pct,
                         within_hour, num_events);
  return text;
}

}  // namespace

void SetPartialMatrixEncoding(PartialMatrixEncoding enc) noexcept {
  g_matrix_encoding = enc;
}

Result<RenderedQuery> RenderPartialFrame(const engine::Database& db,
                                         const Request& r,
                                         parallel::Backend /*backend*/,
                                         const util::CancelToken* cancel) {
  RenderedQuery out;
  Appendf(out.text, "{\"v\":%d,\"kind\":", kPartialVersion);
  AppendJsonString(out.text, r.kind);
  Appendf(out.text, ",\"shard\":%u,\"of\":%u,\"data\":{", r.shard, r.of);
  if (r.kind == "top-sources") {
    PartialTopSources(db, r, out.text);
  } else if (r.kind == "top-events") {
    PartialTopEvents(db, r, out.text);
  } else if (r.kind == "coreport") {
    PartialCoreport(db, r, out.text, cancel);
  } else if (r.kind == "follow") {
    PartialFollow(db, r, out.text, cancel);
  } else if (r.kind == "country-coreport") {
    PartialCountryCoreport(db, r, out.text, cancel);
  } else if (r.kind == "cross-report") {
    PartialCrossReport(db, r, out.text, cancel);
  } else if (r.kind == "delay") {
    PartialDelay(db, r, out.text, cancel);
  } else if (r.kind == "first-reports") {
    PartialFirstReports(db, r, out.text, cancel);
  } else {
    return status::InvalidArgument("query '" + r.kind +
                                   "' does not decompose into partials");
  }
  out.text += "}}";
  return out;
}

Result<std::string> MergePartialFrames(const Request& r,
                                       std::span<const JsonValue> frames) {
  if (frames.empty()) {
    return status::InvalidArgument("no partial frames to merge");
  }
  std::vector<const JsonValue*> data;
  // The partition count comes from the frames themselves (the merge is
  // run on behalf of the original, non-partial request): the first
  // frame pins it, the rest must agree — a mismatch means the frames
  // belong to different scatters.
  std::int64_t of = 0;
  std::vector<bool> seen;
  for (const JsonValue& frame : frames) {
    if (!frame.is_object()) return FrameError("frame must be an object");
    const JsonValue* v = frame.Find("v");
    if (v == nullptr || !v->is_number() || v->AsInt() != kPartialVersion) {
      return FrameError(StrFormat("unsupported frame version (want %d)",
                                  kPartialVersion));
    }
    const JsonValue* kind = frame.Find("kind");
    if (kind == nullptr || !kind->is_string() || kind->AsString() != r.kind) {
      return FrameError("frame kind mismatch");
    }
    const JsonValue* of_field = frame.Find("of");
    if (of_field == nullptr || !of_field->is_number() ||
        of_field->AsInt() < 1) {
      return FrameError("frame needs a positive 'of'");
    }
    if (of == 0) {
      // The request-side `of` is parse-clamped to kMaxPartitions, but
      // this one arrives inside the frame and sizes the seen-shard
      // table below — an unbounded int64 here is an OOM on demand.
      if (of_field->AsInt() > kMaxPartitions) {
        return FrameError("frame 'of' exceeds the partition limit");
      }
      of = of_field->AsInt();
      seen.assign(static_cast<std::size_t>(of), false);
    } else if (of_field->AsInt() != of) {
      return FrameError("frame 'of' mismatch (mixed partition counts)");
    }
    const JsonValue* shard = frame.Find("shard");
    if (shard == nullptr || !shard->is_number() || shard->AsInt() < 0 ||
        shard->AsInt() >= of) {
      return FrameError("frame 'shard' out of range");
    }
    const std::size_t s = static_cast<std::size_t>(shard->AsInt());
    if (seen[s]) return FrameError("duplicate frame for one shard");
    seen[s] = true;
    const JsonValue* d = frame.Find("data");
    if (d == nullptr || !d->is_object()) {
      return FrameError("frame needs a 'data' object");
    }
    data.push_back(d);
  }
  const std::span<const JsonValue* const> view(data);
  if (r.kind == "top-sources") return MergeTopSources(r, view);
  if (r.kind == "top-events") return MergeTopEvents(r, view);
  if (r.kind == "coreport") return MergeCoreport(r, view);
  if (r.kind == "follow") return MergeFollow(r, view);
  if (r.kind == "country-coreport") return MergeCountryCoreport(r, view);
  if (r.kind == "cross-report") return MergeCrossReport(r, view);
  if (r.kind == "delay") return MergeDelay(r, view);
  if (r.kind == "first-reports") return MergeFirstReports(r, view);
  return status::InvalidArgument("query '" + r.kind +
                                 "' does not decompose into partials");
}

std::string BuildShardRequestLine(const Request& r, std::uint32_t shard,
                                  std::uint32_t of) {
  std::string out = "{\"id\":";
  AppendJsonString(out, r.id);
  out += ",\"query\":";
  AppendJsonString(out, r.kind);
  Appendf(out, ",\"top\":%zu", r.top_k);
  if (!r.from.empty()) {
    out += ",\"from\":";
    AppendJsonString(out, r.from);
  }
  if (!r.to.empty()) {
    out += ",\"to\":";
    AppendJsonString(out, r.to);
  }
  if (r.min_confidence > 0) {
    Appendf(out, ",\"min_confidence\":%d", r.min_confidence);
  }
  if (r.timeout_ms > 0) {
    Appendf(out, ",\"timeout_ms\":%lld", static_cast<long long>(r.timeout_ms));
  }
  Appendf(out, ",\"partial\":true,\"shard\":%u,\"of\":%u}\n", shard, of);
  return out;
}

}  // namespace gdelt::serve
