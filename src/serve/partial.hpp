// Partial-aggregate wire format for scatter-gather serving
// (docs/PROTOCOL.md, "Partial-aggregate execution").
//
// A `"partial":true` request asks a backend to compute only partition
// `shard` of `of` of a query and answer with a versioned JSON frame of
// raw aggregates instead of rendered text. The router scatters one such
// sub-request per shard, parses the frames, sums/assembles them, and
// renders the final text through the shared formatting layer
// (serve/render_text.hpp) — so the merged output is byte-identical to a
// single-node `gdelt_serve` over the same data, by construction.
//
// Partition axes per kind (chosen so every partial is an exact integer
// decomposition of the single-node kernel):
//   - event ranges   (SplitRange over event rows): coreport, follow,
//                    country-coreport, first-reports
//   - mention ranges (engine::MakeTimeShards):     top-sources,
//                    cross-report, and the event-range axis again for
//                    top-events (local top-k per range)
//   - strided        (source id / quarter modulo `of`): delay, whose
//                    per-source stats are whole-source floats that must
//                    not be split
// The order-dependent floating-point kinds (stats, quarterly, tone) do
// not decompose; the router sends those to a single shard whole.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "engine/database.hpp"
#include "parallel/morsel.hpp"
#include "serve/json.hpp"
#include "serve/protocol.hpp"
#include "serve/render.hpp"
#include "util/cancel.hpp"
#include "util/status.hpp"

namespace gdelt::serve {

/// Version stamped into every frame as `"v"`; the merger rejects frames
/// from a different protocol revision instead of mis-summing them.
inline constexpr int kPartialVersion = 1;

/// Upper bound on a frame's `of` (partition count). Matches the clamp
/// ParseRequest applies to the request-side `of`; a frame claiming more
/// partitions than any scatter can produce is hostile or corrupt, and
/// `of` sizes the merger's seen-shard table, so it must be bounded
/// before anything allocates from it.
inline constexpr std::int64_t kMaxPartitions = 4096;

/// Upper bound on the quarterly-delay span a frame may carry. GDELT
/// coverage is a few hundred quarters; 4096 (a millennium) is far past
/// any real dataset while keeping the merge-side `assign(q_count, ...)`
/// allocations bounded against hostile frames.
inline constexpr std::uint64_t kMaxQuarterSlots = 4096;

/// Count-matrix encoding inside a frame. Auto picks sparse when the
/// triple list is smaller than the dense payload; the explicit values
/// are a process-global test hook to pin down both paths.
enum class PartialMatrixEncoding { kAuto, kDense, kSparse };

/// Test hook: forces every subsequently rendered frame to use `enc`.
/// Not thread-safe against in-flight renders; set it before serving.
void SetPartialMatrixEncoding(PartialMatrixEncoding enc) noexcept;

/// Computes partition `r.shard` of `r.of` of query `r.kind` and returns
/// the partial-result frame as `RenderedQuery::text` (a single JSON
/// object, no trailing newline). OkResponse splices it in unquoted.
/// `cancel` reaches the partial kernels; RenderQuery's enforcement
/// boundary discards a cancelled frame before it can be shipped.
Result<RenderedQuery> RenderPartialFrame(
    const engine::Database& db, const Request& r, parallel::Backend backend,
    const util::CancelToken* cancel = nullptr);

/// Merges shard frames (the parsed `"partial"` members of backend
/// responses, in any order) into the final rendered text. Validates the
/// version, kind, `of`, shard distinctness and the frame-carried global
/// fields (which every shard must agree on); a mismatch means the shards
/// answered over different data and yields an internal error rather than
/// a silently wrong merge. Frames may cover only a subset of the shards
/// (degraded mode); missing additive contributions simply undercount,
/// which the router reports via `"partial_failure"`.
Result<std::string> MergePartialFrames(const Request& r,
                                       std::span<const JsonValue> frames);

/// Serializes the sub-request line the router sends to the backend that
/// owns partition `shard` of `of` (terminating '\n' included).
std::string BuildShardRequestLine(const Request& r, std::uint32_t shard,
                                  std::uint32_t of);

}  // namespace gdelt::serve
