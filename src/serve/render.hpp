// Query dispatch + text rendering shared by the gdelt_query CLI and the
// gdelt_serve daemon.
//
// The daemon's acceptance bar is byte-identical results to the CLI for
// every query kind, so both call this single renderer: the CLI prints
// `text` to stdout (and `note` to stderr), the server ships `text` in the
// response envelope and caches it. Everything here is read-only over the
// database, so any number of worker threads can render concurrently.
#pragma once

#include <string>

#include "engine/database.hpp"
#include "parallel/morsel.hpp"
#include "serve/protocol.hpp"
#include "util/cancel.hpp"
#include "util/status.hpp"

namespace gdelt::serve {

/// A rendered query result.
struct RenderedQuery {
  std::string text;  ///< exact bytes the gdelt_query CLI prints to stdout
  std::string note;  ///< side-channel diagnostics (CLI: stderr); may be empty
};

/// Dispatches `r.kind` to the engine/analysis kernels and renders the
/// result. Window/confidence restrictions apply to the same kinds they
/// apply to in the CLI (top-sources, cross-report, coreport); other kinds
/// ignore them, also like the CLI. Unknown kinds -> InvalidArgument.
///
/// `backend` selects the execution substrate for the kernels that have
/// both: the shared morsel pool (default; restricted kinds additionally
/// take the vectorized bitmap filter path) or private OpenMP teams (the
/// scheduling-ablation baseline, scalar two-pass filter). Both render
/// byte-identical text.
///
/// `cancel` (optional) is threaded into every long-running kernel and
/// re-checked once after dispatch: a cancelled render returns
/// StatusCode::kCancelled and never leaks partially aggregated text —
/// the result is all-or-nothing by construction.
Result<RenderedQuery> RenderQuery(
    const engine::Database& db, const Request& r,
    parallel::Backend backend = parallel::Backend::kMorselPool,
    const util::CancelToken* cancel = nullptr);

}  // namespace gdelt::serve
