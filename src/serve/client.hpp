// Minimal blocking client for the gdelt_serve protocol.
//
// One TCP connection, one request line out, one response line back —
// enough for the gdelt_client tool, the protocol tests, the throughput
// bench and the router's shard fan-out. Not thread-safe; open one
// LineClient per thread.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "util/status.hpp"

namespace gdelt::serve {

/// Connection policy for LineClient::Connect: a bounded connect timeout
/// and retry-with-backoff, the same shape as convert::ChunkFetcher's
/// fetch policy (deterministic per-endpoint jitter, injectable sleep).
struct ConnectOptions {
  /// Per-attempt connect timeout; 0 blocks on the kernel default.
  std::int64_t connect_timeout_ms = 5'000;
  std::uint32_t max_attempts = 1;  ///< total connect attempts
  std::uint64_t backoff_initial_ms = 100;
  double backoff_multiplier = 2.0;
  std::uint64_t backoff_max_ms = 2'000;
  /// Seed for the deterministic jitter (xor'd with the endpoint hash and
  /// attempt number, as in ChunkFetcher::BackoffMs).
  std::uint64_t jitter_seed = 0;
  /// Test hook: replaces the real sleep between attempts.
  std::function<void(std::uint64_t /*ms*/)> sleep_fn;
};

class LineClient {
 public:
  /// Connects to host:port (IPv4 dotted quad or "localhost").
  static Result<LineClient> Connect(const std::string& host, int port);

  /// Connects under `options`: each attempt bounded by the connect
  /// timeout, failures retried with deterministic jittered backoff.
  static Result<LineClient> Connect(const std::string& host, int port,
                                    const ConnectOptions& options);

  LineClient(LineClient&& other) noexcept;
  LineClient& operator=(LineClient&& other) noexcept;
  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;
  ~LineClient();

  /// Sends one request line (newline appended if missing) and blocks for
  /// the matching response line, returned without its trailing newline.
  Result<std::string> RoundTrip(std::string_view request_line);

  /// Sends without waiting (for pipelined batches; pair with ReadLine).
  Status Send(std::string_view request_line);

  /// Blocks for the next response line (without trailing newline).
  Result<std::string> ReadLine();

  /// Bounds every subsequent recv by `ms` (SO_RCVTIMEO; 0 = no bound).
  /// An expired read comes back as a DeadlineExceeded-flavored IoError so
  /// the router can distinguish a slow shard from a dead one.
  Status SetRecvTimeoutMs(std::int64_t ms);

  void Close();

 private:
  explicit LineClient(int fd) : fd_(fd) {}

  int fd_ = -1;
  std::string buffer_;  ///< bytes received past the last returned line
};

}  // namespace gdelt::serve
