// Minimal blocking client for the gdelt_serve protocol.
//
// One TCP connection, one request line out, one response line back —
// enough for the gdelt_client tool, the protocol tests and the
// throughput bench. Not thread-safe; open one LineClient per thread.
#pragma once

#include <string>
#include <string_view>

#include "util/status.hpp"

namespace gdelt::serve {

class LineClient {
 public:
  /// Connects to host:port (IPv4 dotted quad or "localhost").
  static Result<LineClient> Connect(const std::string& host, int port);

  LineClient(LineClient&& other) noexcept;
  LineClient& operator=(LineClient&& other) noexcept;
  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;
  ~LineClient();

  /// Sends one request line (newline appended if missing) and blocks for
  /// the matching response line, returned without its trailing newline.
  Result<std::string> RoundTrip(std::string_view request_line);

  /// Sends without waiting (for pipelined batches; pair with ReadLine).
  Status Send(std::string_view request_line);

  /// Blocks for the next response line (without trailing newline).
  Result<std::string> ReadLine();

  void Close();

 private:
  explicit LineClient(int fd) : fd_(fd) {}

  int fd_ = -1;
  std::string buffer_;  ///< bytes received past the last returned line
};

}  // namespace gdelt::serve
