#include "serve/protocol.hpp"

#include <array>
#include <cmath>

#include "gtime/timestamp.hpp"
#include "serve/json.hpp"
#include "util/strings.hpp"

namespace gdelt::serve {
namespace {

constexpr std::array<std::string_view, 11> kQueryKinds = {
    "stats",   "top-sources", "top-events",      "quarterly",
    "coreport", "follow",     "country-coreport", "cross-report",
    "delay",   "tone",        "first-reports",
};

/// Extracts a non-negative integer member with range validation.
Status TakeInt(const JsonValue& v, std::string_view key, std::int64_t max,
               std::int64_t& out) {
  if (!v.is_number()) {
    return status::InvalidArgument("'" + std::string(key) +
                                   "' must be a number");
  }
  const double d = v.AsNumber();
  if (d < 0 || d > static_cast<double>(max) || d != std::floor(d)) {
    return status::InvalidArgument("'" + std::string(key) +
                                   "' out of range");
  }
  out = static_cast<std::int64_t>(d);
  return Status::Ok();
}

Status TakeString(const JsonValue& v, std::string_view key,
                  std::string& out) {
  if (!v.is_string()) {
    return status::InvalidArgument("'" + std::string(key) +
                                   "' must be a string");
  }
  out = v.AsString();
  return Status::Ok();
}

/// Parses a YYYYMMDDHHMMSS bound into a capture interval.
Status TakeBound(const std::string& raw, std::string_view key,
                 std::int64_t& interval) {
  const auto t = ParseGdeltTimestamp(raw);
  if (!t.ok()) {
    return status::InvalidArgument("bad '" + std::string(key) +
                                   "' timestamp: " + t.status().message());
  }
  interval = IntervalOfCivil(t.value());
  return Status::Ok();
}

}  // namespace

std::string_view ErrorCodeName(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kBadRequest: return "bad_request";
    case ErrorCode::kUnknownQuery: return "unknown_query";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kTimeout: return "timeout";
    case ErrorCode::kShuttingDown: return "shutting_down";
    case ErrorCode::kInternal: return "internal";
    case ErrorCode::kUnavailable: return "unavailable";
    case ErrorCode::kCancelled: return "cancelled";
  }
  return "internal";
}

bool IsKnownQueryKind(std::string_view kind) noexcept {
  for (const std::string_view k : kQueryKinds) {
    if (k == kind) return true;
  }
  return false;
}

bool IsBatchQueryKind(std::string_view kind) noexcept {
  return kind == "coreport" || kind == "follow" ||
         kind == "country-coreport" || kind == "first-reports";
}

bool IsPartialQueryKind(std::string_view kind) noexcept {
  return kind == "top-sources" || kind == "top-events" ||
         kind == "coreport" || kind == "follow" ||
         kind == "country-coreport" || kind == "cross-report" ||
         kind == "delay" || kind == "first-reports";
}

bool Request::IsQuery() const noexcept { return IsKnownQueryKind(kind); }

Result<Request> ParseRequest(std::string_view line) {
  GDELT_ASSIGN_OR_RETURN(const JsonValue root, JsonValue::Parse(line));
  if (!root.is_object()) {
    return status::InvalidArgument("request must be a JSON object");
  }
  Request r;
  std::int64_t n = 0;
  bool saw_shard = false;
  bool saw_of = false;
  for (const auto& [key, value] : root.members()) {
    if (key == "id") {
      GDELT_RETURN_IF_ERROR(TakeString(value, key, r.id));
    } else if (key == "query") {
      GDELT_RETURN_IF_ERROR(TakeString(value, key, r.kind));
    } else if (key == "top") {
      GDELT_RETURN_IF_ERROR(TakeInt(value, key, 1'000'000, n));
      r.top_k = static_cast<std::size_t>(n);
    } else if (key == "from") {
      GDELT_RETURN_IF_ERROR(TakeString(value, key, r.from));
    } else if (key == "to") {
      GDELT_RETURN_IF_ERROR(TakeString(value, key, r.to));
    } else if (key == "min_confidence") {
      GDELT_RETURN_IF_ERROR(TakeInt(value, key, 255, n));
      r.min_confidence = static_cast<int>(n);
    } else if (key == "timeout_ms") {
      GDELT_RETURN_IF_ERROR(TakeInt(value, key, 3'600'000, r.timeout_ms));
    } else if (key == "debug_sleep_ms") {
      GDELT_RETURN_IF_ERROR(TakeInt(value, key, 60'000, r.debug_sleep_ms));
    } else if (key == "trace") {
      if (!value.is_bool()) {
        return status::InvalidArgument("'trace' must be a boolean");
      }
      r.trace = value.AsBool();
    } else if (key == "partial") {
      if (!value.is_bool()) {
        return status::InvalidArgument("'partial' must be a boolean");
      }
      r.partial = value.AsBool();
    } else if (key == "shard") {
      GDELT_RETURN_IF_ERROR(TakeInt(value, key, 4'095, n));
      r.shard = static_cast<std::uint32_t>(n);
      saw_shard = true;
    } else if (key == "of") {
      GDELT_RETURN_IF_ERROR(TakeInt(value, key, 4'096, n));
      if (n < 1) {
        return status::InvalidArgument("'of' must be >= 1");
      }
      r.of = static_cast<std::uint32_t>(n);
      saw_of = true;
    } else if (key == "export") {
      GDELT_RETURN_IF_ERROR(TakeString(value, key, r.export_path));
    } else if (key == "mentions") {
      GDELT_RETURN_IF_ERROR(TakeString(value, key, r.mentions_path));
    } else {
      return status::InvalidArgument("unknown request key '" + key + "'");
    }
  }
  if (r.kind.empty()) {
    return status::InvalidArgument("request needs a 'query' field");
  }
  if (!r.from.empty()) {
    GDELT_RETURN_IF_ERROR(TakeBound(r.from, "from", r.filter.begin_interval));
    r.restricted = true;
  }
  if (!r.to.empty()) {
    GDELT_RETURN_IF_ERROR(TakeBound(r.to, "to", r.filter.end_interval));
    r.restricted = true;
  }
  if (r.min_confidence > 0) {
    r.filter.min_confidence = static_cast<std::uint8_t>(r.min_confidence);
    r.restricted = true;
  }
  if (r.kind == "ingest" && r.export_path.empty() &&
      r.mentions_path.empty()) {
    return status::InvalidArgument(
        "ingest needs 'export' and/or 'mentions' paths");
  }
  if (r.kind == "cancel" && r.id.empty()) {
    return status::InvalidArgument(
        "cancel needs an 'id' naming the request to abort");
  }
  if ((saw_shard || saw_of) && !r.partial) {
    return status::InvalidArgument(
        "'shard'/'of' require '\"partial\":true'");
  }
  if (r.partial) {
    if (!IsKnownQueryKind(r.kind)) {
      return status::InvalidArgument(
          "'partial' applies only to query kinds");
    }
    if (!IsPartialQueryKind(r.kind)) {
      return status::InvalidArgument("query '" + r.kind +
                                     "' does not decompose into partials");
    }
    if (r.shard >= r.of) {
      return status::InvalidArgument("'shard' must be < 'of'");
    }
  }
  return r;
}

std::string CanonicalKey(const Request& r) {
  // Normalized bounds (parsed intervals, not raw text) so equivalent
  // spellings of a timestamp share an entry.
  std::string key =
      StrFormat("%s|top=%zu|begin=%lld|end=%lld|conf=%d", r.kind.c_str(),
                r.top_k, static_cast<long long>(r.filter.begin_interval),
                static_cast<long long>(r.filter.end_interval),
                r.min_confidence);
  if (r.partial) {
    key += StrFormat("|part=%u/%u", r.shard, r.of);
  }
  return key;
}

std::string OkResponse(const Request& r, std::string_view text, bool cached,
                       double wall_ms) {
  return OkResponse(r, text, cached, wall_ms, {}, {});
}

std::string OkResponse(const Request& r, std::string_view text, bool cached,
                       double wall_ms,
                       const std::vector<StageTiming>& stages,
                       const std::vector<SpanTiming>& spans) {
  std::string out = "{\"id\":";
  AppendJsonString(out, r.id);
  out += ",\"ok\":true,\"query\":";
  AppendJsonString(out, r.kind);
  out += cached ? ",\"cached\":true" : ",\"cached\":false";
  out += StrFormat(",\"wall_ms\":%.3f", wall_ms);
  if (r.effective_timeout_ms > 0) {
    out += StrFormat(",\"deadline_ms\":%lld",
                     static_cast<long long>(r.effective_timeout_ms));
  }
  if (!stages.empty()) {
    out += ",\"trace\":{\"stages\":[";
    bool first = true;
    for (const StageTiming& stage : stages) {
      if (!first) out += ",";
      first = false;
      out += "{\"name\":";
      AppendJsonString(out, stage.name);
      out += StrFormat(",\"ms\":%.3f}", stage.ms);
    }
    out += "]";
    if (!spans.empty()) {
      out += ",\"spans\":[";
      first = true;
      for (const SpanTiming& span : spans) {
        if (!first) out += ",";
        first = false;
        out += "{\"name\":";
        AppendJsonString(out, span.name);
        out += StrFormat(",\"ms\":%.3f,\"depth\":%d}", span.ms, span.depth);
      }
      out += "]";
    }
    out += "}";
  }
  if (r.partial) {
    // Partial-aggregate requests carry a pre-rendered JSON frame, not
    // display text; splice it in unquoted (docs/PROTOCOL.md).
    out += ",\"partial\":";
    out += text;
  } else {
    out += ",\"text\":";
    AppendJsonString(out, text);
  }
  out += "}\n";
  return out;
}

std::string OkJsonResponse(const Request& r, std::string_view field,
                           std::string_view payload_json) {
  std::string out = "{\"id\":";
  AppendJsonString(out, r.id);
  out += ",\"ok\":true,\"";
  out += field;
  out += "\":";
  out += payload_json;
  out += "}\n";
  return out;
}

std::string ErrorResponse(std::string_view id, ErrorCode code,
                          std::string_view message) {
  return ErrorResponse(id, code, message, /*retry_after_ms=*/0);
}

std::string ErrorResponse(std::string_view id, ErrorCode code,
                          std::string_view message,
                          std::int64_t retry_after_ms) {
  std::string out = "{\"id\":";
  AppendJsonString(out, id);
  out += ",\"ok\":false,\"error\":{\"code\":";
  AppendJsonString(out, ErrorCodeName(code));
  out += ",\"message\":";
  AppendJsonString(out, message);
  if (retry_after_ms > 0) {
    out += StrFormat(",\"retry_after_ms\":%lld",
                     static_cast<long long>(retry_after_ms));
  }
  out += "}}\n";
  return out;
}

}  // namespace gdelt::serve
