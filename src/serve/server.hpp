// Long-lived query service over a loaded database.
//
// `Server` owns the request path of the gdelt_serve daemon: a TCP accept
// loop speaking the newline-delimited JSON protocol (docs/PROTOCOL.md),
// thread-per-connection framing, an admission-controlled worker pool that
// runs the shared query renderer, an epoch-keyed LRU result cache, and
// the metrics surface. The database is loaded once by the caller and
// shared read-only across all workers — the whole point of serving: pay
// the mmap + index cost once, answer every query after that at memory
// speed.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "engine/database.hpp"
#include "serve/cache.hpp"
#include "serve/metrics.hpp"
#include "serve/protocol.hpp"
#include "serve/scheduler.hpp"
#include "stream/delta_store.hpp"
#include "util/cancel.hpp"
#include "util/status.hpp"
#include "util/sync.hpp"

namespace gdelt::serve {

struct ServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;  ///< 0 = pick an ephemeral port (read back via port())
  Scheduler::Options scheduler;
  std::size_t cache_entries = 1024;      ///< 0 disables the result cache
  std::int64_t default_timeout_ms = 30'000;
  /// Ceiling for client-supplied `timeout_ms` (and the default). The
  /// effective, clamped deadline is echoed back as `"deadline_ms"`.
  std::int64_t max_timeout_ms = 300'000;
  /// Cooperative cancellation: per-request CancelToken threaded into the
  /// kernels, deadline enforced mid-scan, disconnects and `cancel` verbs
  /// abort in-flight work. Off = the pre-cancellation behavior (deadline
  /// checked only between requests) — the bench_serve_throughput A/B.
  bool cancellation = true;
  int metrics_log_interval_s = 0;        ///< 0 disables the periodic log line
  std::size_t max_line_bytes = 1 << 20;  ///< request line length cap
  std::int64_t slow_query_ms = 0;  ///< log queries slower than this; 0 = off
  std::string trace_dir;  ///< Chrome trace dump directory on Stop; "" = off
};

class Server {
 public:
  /// `db` must outlive the server. `delta` may be null (no ingest support);
  /// when given it supplies the cache epoch and the `ingest` request, and
  /// must also outlive the server — Stop() still reads it for the final
  /// drain summary.
  Server(const engine::Database& db, stream::DeltaStore* delta,
         const ServerOptions& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and starts the accept loop. Fails on bind errors.
  Status Start();

  /// Graceful drain: stop admitting, finish every in-flight and queued
  /// request, flush responses, then tear down connections. Idempotent.
  void Stop();

  /// The bound port (valid after Start; useful with ephemeral ports).
  int port() const noexcept { return port_; }

  /// Current cache epoch (the delta store's ingest generation, 0 if none).
  std::uint64_t Epoch() const noexcept {
    return delta_ ? delta_->Generation() : 0;
  }

  /// Handles one request line and returns the full response line
  /// (terminating '\n' included). This is the whole protocol minus the
  /// socket framing — exposed so tests can drive it without a network.
  ///
  /// `client_fd` (optional) is the connection's socket: while the request
  /// is queued or executing, the fd is polled for hangup and an orphaned
  /// request is cancelled instead of scanning for a client that left.
  /// -1 (the default, and what tests use) disables disconnect detection.
  std::string HandleLine(const std::string& line, int client_fd = -1);

  const ServerMetrics& metrics() const noexcept { return metrics_; }
  ServerMetrics::Gauges GaugesNow() const;

 private:
  std::string HandleQuery(Request request,
                          std::chrono::steady_clock::time_point received,
                          double parse_ms, int client_fd);
  std::string HandleCancel(const Request& request);
  std::string HandleIngest(const Request& request);
  /// Backoff hint for shed work: queue depth x observed p50 execution
  /// time, floored at one execution slot. Records the hint gauge.
  std::int64_t RetryAfterMsNow();
  void AcceptLoop();
  void HandleConnection(int fd);
  void MetricsLogLoop();

  const engine::Database& db_;
  stream::DeltaStore* delta_;  ///< may be null
  ServerOptions opt_;

  Scheduler scheduler_;
  ResultCache cache_;
  ServerMetrics metrics_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  // Atomic because GaugesNow() reads it from connection threads while the
  // main thread may still be inside Start()/Stop().
  std::atomic<bool> started_{false};
  std::chrono::steady_clock::time_point start_time_;
  std::atomic<std::uint64_t> active_requests_{0};

  std::thread accept_thread_;
  std::thread log_thread_;
  sync::Mutex log_stop_mu_;
  sync::CondVar log_stop_cv_;

  sync::Mutex conn_mu_;
  std::vector<int> conn_fds_ GDELT_GUARDED_BY(conn_mu_);
  std::vector<std::thread> conn_threads_ GDELT_GUARDED_BY(conn_mu_);

  // --- cooperative cancellation state ---
  /// In-flight requests addressable by a `cancel` verb, keyed by the
  /// client-chosen request id. Entries are registered before Submit and
  /// unregistered (by matching token, so a reused id never erases a
  /// newer request) when the response is ready.
  sync::Mutex cancel_mu_;
  std::unordered_map<std::string, std::shared_ptr<util::CancelToken>>
      inflight_ GDELT_GUARDED_BY(cancel_mu_);
  /// Execution-time histogram (misses only, not cache hits) feeding the
  /// p50 behind retry_after_ms.
  LatencyHistogram exec_latency_;
  std::atomic<std::int64_t> last_retry_after_ms_{0};

  /// Serializes ingest requests (the DeltaStore additionally guards its
  /// own state; this keeps fetch+apply of one request an atomic unit).
  sync::Mutex ingest_mu_;
  // Ingest health for the metrics surface: generation after the last
  // successful ingest and when it happened (ms since start_; -1 = never).
  std::atomic<std::uint64_t> last_ingest_generation_{0};
  std::atomic<std::int64_t> last_ingest_ms_{-1};
};

}  // namespace gdelt::serve
