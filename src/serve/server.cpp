#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <future>
#include <memory>
#include <optional>

#include "serve/prom.hpp"
#include "serve/render.hpp"
#include "trace/trace.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

namespace gdelt::serve {
namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Writes the whole buffer, retrying on short writes / EINTR.
bool WriteAll(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::write(fd, data.data(), data.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

/// True once the peer has hung up (or the socket errored): the request
/// this connection is waiting on has no reader left.
bool PeerGone(int fd) {
  if (fd < 0) return false;
#ifdef POLLRDHUP
  pollfd pfd{fd, POLLRDHUP, 0};
#else
  pollfd pfd{fd, 0, 0};
#endif
  if (::poll(&pfd, 1, /*timeout_ms=*/0) <= 0) return false;
  return (pfd.revents & (POLLHUP | POLLERR
#ifdef POLLRDHUP
                         | POLLRDHUP
#endif
                         )) != 0;
}

/// Token-polling sleep for `debug_sleep_ms`: stalls in short slices so a
/// deadline or cancel landing mid-stall aborts within ~one slice, the
/// same cadence a real kernel polls at morsel granularity.
void CancellableSleep(std::int64_t ms, const util::CancelToken* cancel) {
  constexpr std::int64_t kSliceMs = 100;
  const auto until = Clock::now() + std::chrono::milliseconds(ms);
  while (!util::Cancelled(cancel)) {
    const auto now = Clock::now();
    if (now >= until) return;
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(until - now)
            .count();
    std::this_thread::sleep_for(
        std::chrono::milliseconds(std::min<std::int64_t>(left, kSliceMs)));
  }
}

}  // namespace

Server::Server(const engine::Database& db, stream::DeltaStore* delta,
               const ServerOptions& options)
    : db_(db),
      delta_(delta),
      opt_(options),
      scheduler_(options.scheduler),
      cache_(options.cache_entries) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(opt_.port));
  if (::inet_pton(AF_INET, opt_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status::InvalidArgument("bad listen host '" + opt_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status::Internal("bind " + opt_.host + ":" +
                            std::to_string(opt_.port) + ": " + err);
  }
  if (::listen(listen_fd_, 64) < 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status::Internal("listen: " + err);
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  start_time_ = Clock::now();
  started_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  if (opt_.metrics_log_interval_s > 0) {
    log_thread_ = std::thread([this] { MetricsLogLoop(); });
  }
  GDELT_LOG(kInfo, StrFormat("serve: listening on %s:%d (workers=%d "
                             "threads/query=%d queue=%zu cache=%zu)",
                             opt_.host.c_str(), port_, scheduler_.workers(),
                             scheduler_.threads_per_query(),
                             scheduler_.queue_capacity(), opt_.cache_entries));
  return Status::Ok();
}

void Server::Stop() {
  if (stopping_.exchange(true)) return;
  if (!started_) return;

  // 1. Stop taking new connections.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();

  // 2. Run every admitted request to completion (workers join after).
  scheduler_.Drain();

  // 3. Let connection threads flush their in-flight responses before the
  //    sockets go away.
  const auto grace_end = Clock::now() + std::chrono::seconds(2);
  while (active_requests_.load() > 0 && Clock::now() < grace_end) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // 4. Unblock readers and join connection threads.
  {
    sync::MutexLock lock(conn_mu_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  std::vector<std::thread> threads;
  {
    sync::MutexLock lock(conn_mu_);
    threads.swap(conn_threads_);
  }
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }

  {
    sync::MutexLock lock(log_stop_mu_);
  }
  log_stop_cv_.NotifyAll();
  if (log_thread_.joinable()) log_thread_.join();

  if (!opt_.trace_dir.empty()) {
    const std::string path = opt_.trace_dir + "/serve_trace.json";
    const Status written = trace::WriteChromeTrace(path);
    if (written.ok()) {
      GDELT_LOG(kInfo, "serve: wrote trace to " + path);
    } else {
      GDELT_LOG(kWarning, "serve: trace dump failed: " + written.message());
    }
  }

  GDELT_LOG(kInfo, "serve: drained — " + metrics_.Summary(GaugesNow()));
}

ServerMetrics::Gauges Server::GaugesNow() const {
  ServerMetrics::Gauges g;
  g.queue_depth = scheduler_.QueueDepth();
  g.queue_capacity = scheduler_.queue_capacity();
  g.workers = scheduler_.workers();
  g.threads_per_query = scheduler_.threads_per_query();
  g.epoch = Epoch();
  g.cache_entries = cache_.entries();
  g.cache_text_bytes = cache_.text_bytes();
  g.cache_evicted_stale = cache_.evicted_stale();
  g.uptime_s = started_ ? std::chrono::duration<double>(Clock::now() -
                                                        start_time_)
                              .count()
                        : 0.0;
  if (delta_) {
    const auto fetch = delta_->fetch_stats();
    g.ingest_retries = fetch.retries;
    g.ingest_quarantined = fetch.quarantined;
  }
  g.morsels_skipped = parallel::MorselPool::Shared().stats().morsels_skipped;
  g.retry_after_ms = last_retry_after_ms_.load();
  g.last_ingest_generation = last_ingest_generation_.load();
  const std::int64_t last_ms = last_ingest_ms_.load();
  g.last_ingest_age_s = last_ms < 0 ? -1.0
                                    : g.uptime_s - static_cast<double>(
                                                       last_ms) /
                                                       1e3;
  return g;
}

std::string Server::HandleLine(const std::string& line, int client_fd) {
  const auto received = Clock::now();
  TRACE_SPAN("serve.request");
  metrics_.requests_total.fetch_add(1);
  if (stopping_.load()) {
    return ErrorResponse("", ErrorCode::kShuttingDown,
                         "server is shutting down");
  }
  auto parsed = ParseRequest(line);
  const double parse_ms = MsSince(received);
  if (!parsed.ok()) {
    metrics_.bad_requests.fetch_add(1);
    return ErrorResponse("", ErrorCode::kBadRequest,
                         parsed.status().message());
  }
  const Request& r = *parsed;

  if (r.kind == "ping") {
    return OkJsonResponse(r, "pong", "true");
  }
  if (r.kind == "metrics") {
    return OkJsonResponse(r, "metrics", metrics_.ToJson(GaugesNow()));
  }
  if (r.kind == "metrics_prom") {
    // Prometheus exposition text travels in the standard text envelope;
    // a scraper sidecar unwraps the one JSON field.
    return OkResponse(r,
                      PrometheusText(metrics_, GaugesNow(),
                                     trace::Aggregates()),
                      /*cached=*/false, MsSince(received));
  }
  if (r.kind == "ingest") {
    return HandleIngest(r);
  }
  if (r.kind == "cancel") {
    // Handled inline on the connection thread — a cancel must never sit
    // in the queue behind the very work it is trying to abort.
    return HandleCancel(r);
  }
  if (!IsKnownQueryKind(r.kind)) {
    metrics_.unknown_queries.fetch_add(1);
    return ErrorResponse(r.id, ErrorCode::kUnknownQuery,
                         "unknown query '" + r.kind + "'");
  }
  return HandleQuery(r, received, parse_ms, client_fd);
}

std::string Server::HandleCancel(const Request& request) {
  std::shared_ptr<util::CancelToken> token;
  {
    sync::MutexLock lock(cancel_mu_);
    const auto it = inflight_.find(request.id);
    if (it != inflight_.end()) token = it->second;
  }
  if (token == nullptr) {
    // Already finished (or never seen) — cancellation is best-effort and
    // idempotent, so this is a normal answer, not an error.
    return OkJsonResponse(request, "cancelled", "false");
  }
  token->Cancel(util::CancelReason::kRouter);
  return OkJsonResponse(request, "cancelled", "true");
}

std::int64_t Server::RetryAfterMsNow() {
  const auto snap = exec_latency_.Snap();
  // No completions yet: assume a modest slot cost instead of handing out
  // a zero hint that would invite an immediate, equally doomed retry.
  const double p50_ms = snap.count > 0 ? snap.QuantileMs(0.50) : 25.0;
  const auto depth = static_cast<double>(scheduler_.QueueDepth() + 1);
  const auto hint = static_cast<std::int64_t>(depth * std::max(p50_ms, 1.0));
  last_retry_after_ms_.store(hint);
  return hint;
}

std::string Server::HandleQuery(Request request, Clock::time_point received,
                                double parse_ms, int client_fd) {
  // Clamp the requested budget to the server's ceiling; the effective
  // value is what the deadline below enforces and what the response
  // envelope echoes as "deadline_ms".
  const std::int64_t timeout_ms = std::min(
      request.timeout_ms > 0 ? request.timeout_ms : opt_.default_timeout_ms,
      opt_.max_timeout_ms);
  request.effective_timeout_ms = timeout_ms;
  const auto deadline = received + std::chrono::milliseconds(timeout_ms);

  const std::uint64_t epoch = Epoch();
  const std::string key = CanonicalKey(request);
  const auto lookup_start = Clock::now();
  auto cached_hit = cache_.GetTagged(key, epoch);
  const double lookup_ms = MsSince(lookup_start);
  if (cached_hit) {
    metrics_.cache_hits.fetch_add(1);
    if (cached_hit->late) {
      // This exact result once cost a client its deadline; the cache
      // turned that sunk scan into a hit.
      metrics_.timeouts_salvaged_by_cache.fetch_add(1);
    }
    metrics_.responses_ok.fetch_add(1);
    metrics_.RecordLatency(request.kind,
                           MsSince(received) / 1e3);
    std::vector<StageTiming> stages;
    if (request.trace) {
      stages = {{"parse", parse_ms}, {"cache_lookup", lookup_ms}};
    }
    return OkResponse(request, *cached_hit->text, /*cached=*/true,
                      MsSince(received), stages, {});
  }
  metrics_.cache_misses.fetch_add(1);

  // One token per admitted request: armed with the deadline at dequeue,
  // cancellable by the client hanging up or a `cancel` verb meanwhile.
  std::shared_ptr<util::CancelToken> token;
  if (opt_.cancellation) {
    token = std::make_shared<util::CancelToken>();
    if (!request.id.empty()) {
      sync::MutexLock lock(cancel_mu_);
      inflight_[request.id] = token;
    }
  }
  // Deregister on every exit path (matching by token so a reused id
  // belonging to a newer in-flight request is left alone).
  const auto deregister = [this, &request, &token] {
    if (token == nullptr || request.id.empty()) return;
    sync::MutexLock lock(cancel_mu_);
    const auto it = inflight_.find(request.id);
    if (it != inflight_.end() && it->second == token) inflight_.erase(it);
  };

  auto promise = std::make_shared<std::promise<std::string>>();
  auto future = promise->get_future();
  const auto submitted = Clock::now();
  const bool admitted = scheduler_.Submit([this, request, key, epoch,
                                           received, deadline, submitted,
                                           parse_ms, lookup_ms, promise,
                                           token] {
    // The queue wait straddles two threads: enqueued on the connection
    // thread, measured here at dequeue on the worker.
    const auto dequeued = Clock::now();
    const double queue_wait_ms =
        std::chrono::duration<double, std::milli>(dequeued - submitted)
            .count();
    trace::RecordManual("serve.queue_wait", submitted, dequeued);
    // Deadline check at dequeue: a request that sat in the queue past its
    // deadline is answered without burning a scan on it. The shed client
    // gets the same backoff hint as an admission rejection.
    if (Clock::now() >= deadline) {
      metrics_.timeouts.fetch_add(1);
      promise->set_value(ErrorResponse(request.id, ErrorCode::kTimeout,
                                       "deadline expired in queue",
                                       RetryAfterMsNow()));
      return;
    }
    // A queued cancel (disconnect or verb) also sheds before the scan.
    if (util::Cancelled(token.get())) {
      const bool disconnect =
          token->reason() == util::CancelReason::kDisconnect;
      (disconnect ? metrics_.cancelled_disconnect : metrics_.cancelled_router)
          .fetch_add(1);
      promise->set_value(ErrorResponse(request.id, ErrorCode::kCancelled,
                                       disconnect
                                           ? "client disconnected in queue"
                                           : "cancelled in queue"));
      return;
    }
    // Arm the deadline now that execution begins: from here on the token
    // trips inside the kernels at morsel granularity, so a 100ms budget
    // aborts a multi-second scan within ~one morsel of the deadline.
    if (token) token->ArmDeadline(deadline);
    // A traced request gets a thread-local collector: every span the
    // kernels finish on this thread lands in the response, even with
    // global tracing off.
    std::optional<trace::Collector> collector;
    if (request.trace) collector.emplace();
    const auto exec_start = Clock::now();
    Result<RenderedQuery> rendered = status::Internal("not rendered");
    // The epoch captured at request entry only served the cache lookup.
    // The data this render actually executes against is whatever is
    // published when execution starts, which may be generations newer if
    // ingests landed while the request sat in the queue (or stalled in
    // the debug sleep). Pin the snapshot here and key the Put with *its*
    // generation, so a result rendered from generation G+1 can never be
    // cached — or served to a concurrent reader — under epoch G.
    std::uint64_t render_epoch = epoch;
    std::shared_ptr<const stream::DeltaSnapshot> snap;
    {
      TRACE_SPAN("serve.execute");
      if (request.debug_sleep_ms > 0) {
        CancellableSleep(request.debug_sleep_ms, token.get());
      }
      if (!util::Cancelled(token.get())) {
        if (delta_ != nullptr) {
          snap = delta_->Acquire();
          render_epoch = snap->generation();
        }
        rendered = RenderQuery(db_, request,
                               scheduler_.use_morsel_pool()
                                   ? parallel::Backend::kMorselPool
                                   : parallel::Backend::kOpenMp,
                               token.get());
      } else {
        rendered = status::Cancelled("cancelled before execution");
      }
    }
    const double execute_ms = MsSince(exec_start);
    exec_latency_.Record(execute_ms / 1e3);
    if (!rendered.ok()) {
      if (rendered.status().code() == StatusCode::kCancelled && token) {
        // Nothing cancelled is ever cached: the kernels bailed mid-scan
        // and the discarded partial text must not poison the cache.
        switch (token->reason()) {
          case util::CancelReason::kDeadline:
            metrics_.timeouts.fetch_add(1);
            metrics_.cancelled_deadline.fetch_add(1);
            promise->set_value(
                ErrorResponse(request.id, ErrorCode::kTimeout,
                              "deadline expired during execution "
                              "(cancelled mid-scan)",
                              RetryAfterMsNow()));
            return;
          case util::CancelReason::kDisconnect:
            metrics_.cancelled_disconnect.fetch_add(1);
            promise->set_value(ErrorResponse(request.id, ErrorCode::kCancelled,
                                             "client disconnected"));
            return;
          case util::CancelReason::kRouter:
          case util::CancelReason::kNone:
            metrics_.cancelled_router.fetch_add(1);
            promise->set_value(ErrorResponse(request.id, ErrorCode::kCancelled,
                                             "cancelled by request"));
            return;
        }
      }
      metrics_.internal_errors.fetch_add(1);
      promise->set_value(ErrorResponse(request.id, ErrorCode::kInternal,
                                       rendered.status().message()));
      return;
    }
    if (!rendered->note.empty()) GDELT_LOG(kDebug, rendered->note);
    // The render ran to completion (the token never tripped), but the
    // deadline may still have passed in the final stretch — e.g. inside
    // the last debug-sleep slice or between the kernel finishing and
    // here. The text is complete and correct, so cache it tagged late:
    // the scan is already paid for, and a retry of the same canonical
    // key turns this timeout into a salvaged hit.
    const bool late = Clock::now() >= deadline;
    const auto put_start = Clock::now();
    cache_.Put(key, render_epoch, rendered->text, late);
    const double cache_put_ms = MsSince(put_start);
    if (late) {
      metrics_.timeouts.fetch_add(1);
      promise->set_value(ErrorResponse(request.id, ErrorCode::kTimeout,
                                       "deadline expired during execution"));
      return;
    }
    metrics_.responses_ok.fetch_add(1);
    const double wall_ms = MsSince(received);
    metrics_.RecordLatency(request.kind, wall_ms / 1e3);
    if (opt_.slow_query_ms > 0 && wall_ms >= static_cast<double>(
                                                 opt_.slow_query_ms)) {
      GDELT_LOG(kWarning,
                StrFormat("serve: slow query kind=%s wall_ms=%.1f "
                          "parse=%.2f cache_lookup=%.2f queue_wait=%.2f "
                          "execute=%.2f cache_put=%.2f",
                          request.kind.c_str(), wall_ms, parse_ms, lookup_ms,
                          queue_wait_ms, execute_ms, cache_put_ms));
    }
    std::vector<StageTiming> stages;
    std::vector<SpanTiming> spans;
    if (request.trace) {
      stages = {{"parse", parse_ms},
                {"cache_lookup", lookup_ms},
                {"queue_wait", queue_wait_ms},
                {"execute", execute_ms},
                {"cache_put", cache_put_ms}};
      for (const trace::SpanRecord& s : collector->spans()) {
        spans.push_back({s.name, static_cast<double>(s.dur_us) / 1e3,
                         static_cast<int>(s.depth)});
      }
    }
    promise->set_value(OkResponse(request, rendered->text, /*cached=*/false,
                                  wall_ms, stages, spans));
  },
                                          IsBatchQueryKind(request.kind)
                                              ? parallel::Priority::kBatch
                                              : parallel::Priority::kInteractive);
  if (!admitted) {
    deregister();
    metrics_.rejected_overloaded.fetch_add(1);
    return ErrorResponse(
        request.id, ErrorCode::kOverloaded,
        StrFormat("request queue full (%zu pending); retry later",
                  scheduler_.queue_capacity()),
        RetryAfterMsNow());
  }
  // Every admitted task runs (even during drain), so this wait is bounded
  // by queue depth * per-query time; the worker enforces the deadline.
  // With a live socket attached, watch it while waiting: a client that
  // hangs up mid-queue or mid-scan has its work cancelled instead of
  // burning a scan nobody will read.
  if (token && client_fd >= 0) {
    while (future.wait_for(std::chrono::milliseconds(20)) !=
           std::future_status::ready) {
      if (PeerGone(client_fd)) {
        token->Cancel(util::CancelReason::kDisconnect);
        break;
      }
    }
  }
  std::string response = future.get();
  deregister();
  return response;
}

std::string Server::HandleIngest(const Request& request) {
  if (delta_ == nullptr) {
    return ErrorResponse(request.id, ErrorCode::kBadRequest,
                         "server was started without a delta store "
                         "(--follow); ingest is unavailable");
  }
  Status status = Status::Ok();
  {
    // One ingest at a time; the DeltaStore's own mutex protects its state
    // against concurrent queries, which keep running against the
    // pre-ingest snapshot meanwhile.
    sync::MutexLock lock(ingest_mu_);
    status = delta_->IngestArchivePair(request.export_path,
                                       request.mentions_path);
  }
  if (!status.ok()) {
    metrics_.ingest_failures.fetch_add(1);
    return ErrorResponse(request.id, ErrorCode::kBadRequest,
                         status.message());
  }
  metrics_.ingests.fetch_add(1);
  // One snapshot for every post-ingest fact: the generation the cache
  // observes, the one the status page reports, the delta counts in the
  // log line, and the epoch echoed to the client all come from the same
  // publication. Separate convenience-accessor calls would each acquire
  // their own snapshot and could straddle a concurrent ingest tick.
  const auto snap = delta_->Acquire();
  // Eagerly collect entries stranded under the previous epoch so the
  // cache's entries()/text_bytes() reflect servable data immediately,
  // not whenever a same-key lookup happens to land.
  cache_.ObserveEpoch(snap->generation());
  last_ingest_generation_.store(snap->generation());
  last_ingest_ms_.store(static_cast<std::int64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                            start_time_)
          .count()));
  GDELT_LOG(kInfo, StrFormat("serve: ingest ok — epoch=%llu delta_events=%llu "
                             "delta_mentions=%llu",
                             static_cast<unsigned long long>(
                                 snap->generation()),
                             static_cast<unsigned long long>(
                                 snap->delta_events()),
                             static_cast<unsigned long long>(
                                 snap->delta_mentions())));
  return OkJsonResponse(request, "epoch",
                        std::to_string(snap->generation()));
}

void Server::AcceptLoop() {
  while (!stopping_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    metrics_.connections_opened.fetch_add(1);
    sync::MutexLock lock(conn_mu_);
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { HandleConnection(fd); });
  }
}

void Server::HandleConnection(int fd) {
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start);
         nl != std::string::npos && open;
         start = nl + 1, nl = buffer.find('\n', start)) {
      std::string line = buffer.substr(start, nl - start);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      active_requests_.fetch_add(1);
      const std::string response = HandleLine(line, fd);
      open = WriteAll(fd, response);
      active_requests_.fetch_sub(1);
    }
    buffer.erase(0, start);
    if (buffer.size() > opt_.max_line_bytes) {
      active_requests_.fetch_add(1);
      metrics_.bad_requests.fetch_add(1);
      WriteAll(fd, ErrorResponse("", ErrorCode::kBadRequest,
                                 "request line too long"));
      active_requests_.fetch_sub(1);
      break;
    }
  }
  ::close(fd);
}

void Server::MetricsLogLoop() {
  sync::MutexLock lock(log_stop_mu_);
  while (!stopping_.load()) {
    log_stop_cv_.WaitFor(log_stop_mu_,
                         std::chrono::seconds(opt_.metrics_log_interval_s));
    if (stopping_.load()) break;
    GDELT_LOG(kInfo, "serve: " + metrics_.Summary(GaugesNow()));
  }
}

}  // namespace gdelt::serve
