// LRU result cache for the query service.
//
// Keys are the canonical request text (serve::CanonicalKey) plus the
// database epoch — the DeltaStore's ingest generation — so a cache entry
// is implicitly invalidated the moment new data lands: the epoch moves on
// and the stale entry ages out through normal LRU eviction. Thread-safe;
// a Get and a Put from different workers never block a query scan (the
// critical sections only move list nodes and strings).
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>

#include "util/sync.hpp"

namespace gdelt::serve {

class ResultCache {
 public:
  /// `max_entries` == 0 disables caching entirely.
  explicit ResultCache(std::size_t max_entries) : max_entries_(max_entries) {}

  /// The cached text for (key, epoch), marking it most-recently used.
  /// An entry stored under an older epoch is dropped and counts as a miss.
  std::optional<std::string> Get(const std::string& key, std::uint64_t epoch);

  /// A Get result that also reports how the entry got there.
  struct Hit {
    std::string text;
    bool late = false;  ///< true if cached by a render that missed its
                        ///< deadline (a salvaged timeout)
  };

  /// Like Get, but surfaces the `late` tag so the server can count a
  /// timeout-salvaged hit distinctly from an ordinary one.
  std::optional<Hit> GetTagged(const std::string& key, std::uint64_t epoch);

  /// Inserts/overwrites the entry, evicting from the LRU tail as needed.
  /// `late` tags text that finished rendering only after its request's
  /// deadline had expired — still complete and correct (the cancel token
  /// was never observed), just too slow for the client that paid for it.
  void Put(const std::string& key, std::uint64_t epoch, std::string text,
           bool late = false);

  void Clear();

  // --- observability (see ServerMetrics::ToJson) ---
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::size_t entries() const;
  std::uint64_t text_bytes() const;

 private:
  struct Entry {
    std::string key;
    std::uint64_t epoch;
    std::string text;
    bool late = false;
  };

  const std::size_t max_entries_;
  mutable sync::Mutex mu_;
  /// front = most recently used
  std::list<Entry> lru_ GDELT_GUARDED_BY(mu_);
  std::unordered_map<std::string, std::list<Entry>::iterator> index_
      GDELT_GUARDED_BY(mu_);
  std::uint64_t hits_ GDELT_GUARDED_BY(mu_) = 0;
  std::uint64_t misses_ GDELT_GUARDED_BY(mu_) = 0;
  std::uint64_t text_bytes_ GDELT_GUARDED_BY(mu_) = 0;
};

}  // namespace gdelt::serve
