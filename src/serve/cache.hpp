// Sharded LRU result cache for the query service.
//
// Keys are the canonical request text (serve::CanonicalKey) plus the
// database epoch — the DeltaStore's ingest generation — so a cache entry
// is invalidated the moment new data lands. Entries are spread over
// N shards by key hash, each with its own mutex and LRU list, so
// concurrent workers contend only when they touch the same shard.
// Payloads are shared_ptr<const std::string>: a hit hands back a
// refcount bump, never a copy of the response bytes under a lock.
//
// Epoch rules:
//  - Get/GetTagged with a newer epoch than an entry drops that entry
//    (it can never be served again).
//  - Put refuses to replace an entry carrying a newer epoch, and refuses
//    to insert below the latest epoch the shard has observed — a slow
//    render keyed to a pre-ingest epoch can neither clobber a fresh
//    entry nor park dead bytes in the LRU.
//  - ObserveEpoch(e) (called on ingest) eagerly sweeps every shard's
//    stale entries so entries()/text_bytes() reflect servable data
//    instead of waiting for a same-key Get to collect them.
// Every stale removal — lazy or swept — counts in evicted_stale().
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/sync.hpp"

namespace gdelt::serve {

class ResultCache {
 public:
  /// `max_entries` == 0 disables caching entirely. Small caches
  /// (< kShardThreshold entries) use a single shard and behave as one
  /// exact global LRU; larger ones split capacity over kShards shards,
  /// making eviction LRU-per-shard (approximately global).
  explicit ResultCache(std::size_t max_entries);

  /// The cached text for (key, epoch), marking it most-recently used.
  /// An entry stored under an older epoch is dropped and counts as a miss.
  std::optional<std::string> Get(const std::string& key, std::uint64_t epoch);

  /// A Get result that also reports how the entry got there.
  struct Hit {
    std::shared_ptr<const std::string> text;  ///< never null
    bool late = false;  ///< true if cached by a render that missed its
                        ///< deadline (a salvaged timeout)
  };

  /// Like Get, but surfaces the `late` tag and shares the payload
  /// instead of copying it.
  std::optional<Hit> GetTagged(const std::string& key, std::uint64_t epoch);

  /// Inserts the entry, evicting from the shard's LRU tail as needed.
  /// Refused (returns false) when the slot already holds a newer epoch
  /// or the shard has observed a newer epoch — see the header comment.
  /// `late` tags text that finished rendering only after its request's
  /// deadline had expired — still complete and correct (the cancel token
  /// was never observed), just too slow for the client that paid for it.
  bool Put(const std::string& key, std::uint64_t epoch, std::string text,
           bool late = false);

  /// Tells the cache the database moved to `epoch`: sweeps every shard's
  /// now-stale entries so they stop occupying capacity and counters.
  void ObserveEpoch(std::uint64_t epoch);

  void Clear();

  // --- observability (see ServerMetrics::ToJson) ---
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::size_t entries() const;
  std::uint64_t text_bytes() const;
  /// Entries removed because their epoch went stale (lazy drop or sweep).
  std::uint64_t evicted_stale() const;

  static constexpr std::size_t kShards = 8;
  static constexpr std::size_t kShardThreshold = 64;

 private:
  struct Entry {
    std::string key;
    std::uint64_t epoch;
    std::shared_ptr<const std::string> text;
    bool late = false;
  };

  struct Shard {
    mutable sync::Mutex mu;
    /// front = most recently used
    std::list<Entry> lru GDELT_GUARDED_BY(mu);
    std::unordered_map<std::string, std::list<Entry>::iterator> index
        GDELT_GUARDED_BY(mu);
    std::uint64_t text_bytes GDELT_GUARDED_BY(mu) = 0;
    /// Highest epoch this shard has seen (via Get/Put/ObserveEpoch);
    /// puts below it are refused.
    std::uint64_t seen_epoch GDELT_GUARDED_BY(mu) = 0;
    std::size_t max_entries = 0;
  };

  Shard& ShardFor(const std::string& key);
  /// Drops `it` from `shard`, charging it to the stale counter iff
  /// `stale`. Caller must hold shard.mu.
  void EraseLocked(Shard& shard, std::list<Entry>::iterator it, bool stale)
      GDELT_REQUIRES(shard.mu);
  void SweepShardLocked(Shard& shard, std::uint64_t epoch)
      GDELT_REQUIRES(shard.mu);

  const std::size_t max_entries_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evicted_stale_{0};
};

}  // namespace gdelt::serve
