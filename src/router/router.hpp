// Scatter/gather query router over gdelt_serve shard backends.
//
// Speaks the same newline-delimited JSON protocol as gdelt_serve
// (docs/PROTOCOL.md), so existing clients point at the router unchanged.
// Decomposable query kinds are split into per-shard partial-aggregate
// sub-requests (`"partial":true`, serve/partial.hpp), scattered to the
// shard backends under one deadline, and merged into a response whose
// `"text"` is byte-identical to what a single gdelt_serve holding the
// whole database would render. Kinds whose floating-point reductions are
// evaluation-order-sensitive (stats, quarterly, tone) are relayed whole
// to one backend picked by the canonical-key hash, which also keeps
// their per-backend result caches hot.
//
// Robustness: per-shard replica failover with bounded retries, endpoints
// marked down after consecutive failures (BackendPool), a health thread
// that probes `metrics` to revive them and track queue saturation, and
// structured degraded responses — when some shards fail inside the
// deadline the survivors are still merged and the response carries a
// `"partial_failure"` array naming the missing shards.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "router/pool.hpp"
#include "router/topology.hpp"
#include "serve/json.hpp"
#include "serve/metrics.hpp"
#include "serve/protocol.hpp"
#include "util/status.hpp"
#include "util/sync.hpp"

namespace gdelt::router {

struct RouterOptions {
  std::string host = "127.0.0.1";
  int port = 0;  ///< 0 = pick an ephemeral port (read back via port())
  Topology topology;
  std::int64_t default_timeout_ms = 30'000;
  std::size_t max_line_bytes = 1 << 20;

  /// Concurrent scattered queries admitted. Beyond it, batch kinds are
  /// shed immediately and interactive kinds wait a bounded slice for a
  /// slot — the same two-lane posture as the backend scheduler.
  std::size_t max_inflight = 64;
  std::int64_t interactive_wait_ms = 250;

  /// Passes over a shard's replica list before the shard is declared
  /// failed for this request (each pass walks every live replica).
  std::uint32_t scatter_passes = 2;

  std::uint32_t down_after_failures = 3;
  std::size_t max_idle_per_endpoint = 4;
  /// Health probe period; 0 disables the background thread (tests drive
  /// BackendPool::ProbeAll directly).
  int health_interval_ms = 0;
  /// Dial policy for every backend connection (scatter and probe).
  serve::ConnectOptions connect;
};

/// Router-side counters (the backend keeps its own; `metrics` against
/// the router reports these plus per-endpoint pool health).
struct RouterMetrics {
  std::atomic<std::uint64_t> requests_total{0};
  std::atomic<std::uint64_t> responses_ok{0};
  std::atomic<std::uint64_t> relays{0};
  std::atomic<std::uint64_t> scatters{0};
  std::atomic<std::uint64_t> shard_failures{0};
  std::atomic<std::uint64_t> degraded_responses{0};
  /// Best-effort `cancel` verbs sent to surviving shards after a sibling
  /// shard hard-failed — their partial work is doomed (the merge already
  /// lost a shard or the whole scatter died), so stop paying for it.
  std::atomic<std::uint64_t> cancels_sent{0};
  std::atomic<std::uint64_t> rejected_overloaded{0};
  std::atomic<std::uint64_t> bad_requests{0};
  std::atomic<std::uint64_t> unknown_queries{0};
  std::atomic<std::uint64_t> unavailable{0};
  std::atomic<std::uint64_t> connections_opened{0};
};

class Router {
 public:
  explicit Router(const RouterOptions& options);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Binds, listens and starts the accept loop (and the health thread
  /// when configured). Fails on bind errors.
  Status Start();

  /// Stops accepting, lets in-flight requests flush, joins everything.
  /// Idempotent.
  void Stop();

  /// The bound port (valid after Start; useful with ephemeral ports).
  int port() const noexcept { return port_; }

  /// Handles one request line and returns the full response line
  /// (terminating '\n' included) — the protocol minus the socket
  /// framing, exposed so tests can drive it without a network.
  std::string HandleLine(const std::string& line);

  BackendPool& pool() noexcept { return pool_; }
  const RouterMetrics& metrics() const noexcept { return metrics_; }

 private:
  using Clock = std::chrono::steady_clock;

  std::string HandleQuery(const serve::Request& r, const std::string& line,
                          Clock::time_point received);
  std::string ScatterGather(const serve::Request& r,
                            Clock::time_point received,
                            Clock::time_point deadline);

  /// Relays `line` verbatim to a replica of `shard` and returns the raw
  /// response line (no trailing newline).
  Result<std::string> RelayLine(std::size_t shard, const std::string& line,
                                Clock::time_point deadline);

  /// Fetches partition `shard` of `r` from the owning backend and
  /// returns the parsed `"partial"` frame. The sub-request is sent under
  /// `scatter_id` (one id per scatter, shared by every shard) so a later
  /// `cancel` verb can address the whole scatter's in-flight work.
  Result<serve::JsonValue> FetchShardFrame(const serve::Request& r,
                                           std::uint32_t shard,
                                           const std::string& scatter_id,
                                           Clock::time_point deadline);

  /// Best-effort: sends `{"query":"cancel","id":scatter_id}` to one
  /// replica of every shard (down replicas are skipped by the pool).
  /// Called after the gather joins when some shard hard-failed: any
  /// backend still scanning under this scatter's id — a replica the
  /// router abandoned mid-round-trip, a deadline-expired sub-request —
  /// is working for nobody. Never retries, never blocks beyond a short
  /// receive window, never touches replica health accounting.
  void BroadcastCancel(const std::string& scatter_id);

  /// One deadline-bounded round-trip against a replica of `shard`,
  /// retried across replicas/passes. `make_line` rebuilds the request
  /// line from the remaining budget so the backend enforces the same
  /// deadline. Backend `overloaded` rejections are retried (another
  /// replica may have queue room); other backend errors are final.
  template <typename MakeLine>
  Result<std::string> ShardRoundTrip(std::size_t shard, MakeLine&& make_line,
                                     Clock::time_point deadline);

  bool AdmitScatter(bool batch, Clock::time_point deadline);
  void ReleaseScatter();

  std::string MetricsJson();
  std::string PrometheusText();

  void AcceptLoop();
  void HandleConnection(int fd);
  void HealthLoop();

  const RouterOptions opt_;
  BackendPool pool_;
  RouterMetrics metrics_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> started_{false};
  std::atomic<std::uint64_t> active_requests_{0};

  std::thread accept_thread_;
  std::thread health_thread_;
  sync::Mutex health_stop_mu_;
  sync::CondVar health_stop_cv_;

  sync::Mutex conn_mu_;
  std::vector<int> conn_fds_ GDELT_GUARDED_BY(conn_mu_);
  std::vector<std::thread> conn_threads_ GDELT_GUARDED_BY(conn_mu_);

  sync::Mutex inflight_mu_;
  sync::CondVar inflight_cv_;
  std::size_t inflight_ GDELT_GUARDED_BY(inflight_mu_) = 0;

  /// Monotonic scatter ids ("rc-<n>") addressing in-flight sub-requests.
  std::atomic<std::uint64_t> scatter_seq_{0};
  /// Scatter wall-time histogram feeding the shed-path retry_after_ms.
  serve::LatencyHistogram scatter_latency_;
  std::atomic<std::int64_t> last_retry_after_ms_{0};
};

}  // namespace gdelt::router
