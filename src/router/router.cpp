#include "router/router.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <utility>

#include "serve/partial.hpp"
#include "trace/trace.hpp"
#include "util/hash.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

namespace gdelt::router {
namespace {

using Clock = std::chrono::steady_clock;
using serve::ErrorCode;

double MsSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

std::int64_t MsUntil(Clock::time_point deadline) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                               Clock::now())
      .count();
}

/// Slack added to the per-shard socket read beyond the request
/// deadline: the backend enforces the same deadline itself and answers
/// with a structured timeout error at it, so the router waits a beat
/// longer to relay that envelope instead of racing it and reporting the
/// shard unavailable.
constexpr std::int64_t kRecvGraceMs = 250;

/// Writes the whole buffer, retrying on short writes / EINTR.
bool WriteAll(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::write(fd, data.data(), data.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

/// True when the (already parsed) backend response is an admission
/// rejection — worth retrying on a less loaded replica.
bool IsOverloadedResponse(const serve::JsonValue& response) {
  const serve::JsonValue* ok = response.Find("ok");
  if (ok == nullptr || ok->AsBool(true)) return false;
  const serve::JsonValue* error = response.Find("error");
  if (error == nullptr) return false;
  const serve::JsonValue* code = error->Find("code");
  return code != nullptr && code->AsString() == "overloaded";
}

}  // namespace

Router::Router(const RouterOptions& options)
    : opt_(options),
      pool_(options.topology, [&options] {
        BackendPoolOptions pool_options;
        pool_options.down_after_failures = options.down_after_failures;
        pool_options.max_idle_per_endpoint = options.max_idle_per_endpoint;
        pool_options.connect = options.connect;
        return pool_options;
      }()) {}

Router::~Router() { Stop(); }

Status Router::Start() {
  if (pool_.num_shards() == 0) {
    return status::InvalidArgument("router needs at least one shard");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(opt_.port));
  if (::inet_pton(AF_INET, opt_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status::InvalidArgument("bad listen host '" + opt_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status::Internal("bind " + opt_.host + ":" +
                            std::to_string(opt_.port) + ": " + err);
  }
  if (::listen(listen_fd_, 64) < 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status::Internal("listen: " + err);
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  started_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  if (opt_.health_interval_ms > 0) {
    health_thread_ = std::thread([this] { HealthLoop(); });
  }
  GDELT_LOG(kInfo,
            StrFormat("router: listening on %s:%d (%zu shards, "
                      "max_inflight=%zu)",
                      opt_.host.c_str(), port_, pool_.num_shards(),
                      opt_.max_inflight));
  return Status::Ok();
}

void Router::Stop() {
  if (stopping_.exchange(true)) return;
  if (!started_) return;

  // 1. Stop taking new connections.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();

  // 2. Unblock anyone waiting for a scatter slot (AdmitScatter checks
  //    stopping_ on wake) and let in-flight responses flush.
  inflight_cv_.NotifyAll();
  const auto grace_end = Clock::now() + std::chrono::seconds(2);
  while (active_requests_.load() > 0 && Clock::now() < grace_end) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // 3. Unblock readers and join connection threads.
  {
    sync::MutexLock lock(conn_mu_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  std::vector<std::thread> threads;
  {
    sync::MutexLock lock(conn_mu_);
    threads.swap(conn_threads_);
  }
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }

  {
    sync::MutexLock lock(health_stop_mu_);
  }
  health_stop_cv_.NotifyAll();
  if (health_thread_.joinable()) health_thread_.join();

  GDELT_LOG(kInfo,
            StrFormat("router: drained — %llu requests, %llu scattered, "
                      "%llu relayed, %llu degraded",
                      static_cast<unsigned long long>(
                          metrics_.requests_total.load()),
                      static_cast<unsigned long long>(
                          metrics_.scatters.load()),
                      static_cast<unsigned long long>(metrics_.relays.load()),
                      static_cast<unsigned long long>(
                          metrics_.degraded_responses.load())));
}

std::string Router::HandleLine(const std::string& line) {
  const auto received = Clock::now();
  TRACE_SPAN("router.request");
  metrics_.requests_total.fetch_add(1);
  if (stopping_.load()) {
    return serve::ErrorResponse("", ErrorCode::kShuttingDown,
                                "router is shutting down");
  }
  auto parsed = serve::ParseRequest(line);
  if (!parsed.ok()) {
    metrics_.bad_requests.fetch_add(1);
    return serve::ErrorResponse("", ErrorCode::kBadRequest,
                                parsed.status().message());
  }
  const serve::Request& r = *parsed;

  if (r.kind == "ping") {
    return serve::OkJsonResponse(r, "pong", "true");
  }
  if (r.kind == "metrics") {
    return serve::OkJsonResponse(r, "metrics", MetricsJson());
  }
  if (r.kind == "metrics_prom") {
    return serve::OkResponse(r, PrometheusText(), /*cached=*/false,
                             MsSince(received));
  }
  if (r.kind == "ingest") {
    metrics_.bad_requests.fetch_add(1);
    return serve::ErrorResponse(
        r.id, ErrorCode::kBadRequest,
        "router does not accept ingest; send it to the shard backends");
  }
  if (!serve::IsKnownQueryKind(r.kind)) {
    metrics_.unknown_queries.fetch_add(1);
    return serve::ErrorResponse(r.id, ErrorCode::kUnknownQuery,
                                "unknown query '" + r.kind + "'");
  }
  return HandleQuery(r, line, received);
}

std::string Router::HandleQuery(const serve::Request& r,
                                const std::string& line,
                                Clock::time_point received) {
  const std::int64_t timeout_ms =
      r.timeout_ms > 0 ? r.timeout_ms : opt_.default_timeout_ms;
  const auto deadline = received + std::chrono::milliseconds(timeout_ms);
  const std::size_t num_shards = pool_.num_shards();

  // Whole-query relay: single-shard topologies, kinds whose merge is
  // evaluation-order-sensitive, and partial sub-requests addressed to
  // the router itself. The canonical-key hash pins a (query, options)
  // pair to one backend, keeping that backend's result cache hot.
  if (num_shards == 1 || r.partial || !serve::IsPartialQueryKind(r.kind)) {
    const std::size_t target =
        num_shards == 1
            ? 0
            : static_cast<std::size_t>(Fnv1a64(serve::CanonicalKey(r)) %
                                       num_shards);
    metrics_.relays.fetch_add(1);
    auto response = RelayLine(target, line, deadline);
    if (!response.ok()) {
      metrics_.unavailable.fetch_add(1);
      return serve::ErrorResponse(r.id, ErrorCode::kUnavailable,
                                  "shard " + std::to_string(target) + ": " +
                                      response.status().message());
    }
    metrics_.responses_ok.fetch_add(1);
    return *response + "\n";
  }
  return ScatterGather(r, received, deadline);
}

template <typename MakeLine>
Result<std::string> Router::ShardRoundTrip(std::size_t shard,
                                           MakeLine&& make_line,
                                           Clock::time_point deadline) {
  const std::uint32_t passes = std::max<std::uint32_t>(1, opt_.scatter_passes);
  Status last_error = status::IoError("never attempted");
  for (std::uint32_t pass = 1; pass <= passes; ++pass) {
    std::int64_t remaining = MsUntil(deadline);
    if (remaining <= 0) {
      return status::IoError("deadline expired (last: " +
                             last_error.message() + ")");
    }
    if (pass > 1) {
      // Brief pause before re-walking the replica list: an overloaded or
      // restarting backend gets a moment to recover.
      const auto nap = std::chrono::milliseconds(
          std::min<std::int64_t>(50 * pass, std::max<std::int64_t>(
                                                1, remaining / 8)));
      std::this_thread::sleep_for(nap);
      remaining = MsUntil(deadline);
      if (remaining <= 0) {
        return status::IoError("deadline expired (last: " +
                               last_error.message() + ")");
      }
    }
    auto lease = pool_.Acquire(shard);
    if (!lease.ok()) {
      last_error = lease.status();
      continue;
    }
    const std::size_t replica = lease->replica;
    (void)lease->client.SetRecvTimeoutMs(remaining + kRecvGraceMs);
    auto response = lease->client.RoundTrip(make_line(remaining));
    if (!response.ok()) {
      pool_.ReportFailure(shard, replica);
      pool_.Release(std::move(*lease), /*reusable=*/false);
      last_error = response.status();
      continue;
    }
    pool_.ReportSuccess(shard, replica);
    bool overloaded = false;
    if (auto parsed = serve::JsonValue::Parse(*response);
        parsed.ok() && parsed->is_object()) {
      overloaded = IsOverloadedResponse(*parsed);
    }
    pool_.Release(std::move(*lease), /*reusable=*/true);
    if (overloaded) {
      last_error = status::IoError("replica " + std::to_string(replica) +
                                   " rejected: overloaded");
      continue;
    }
    return *std::move(response);
  }
  return last_error;
}

Result<std::string> Router::RelayLine(std::size_t shard,
                                      const std::string& line,
                                      Clock::time_point deadline) {
  return ShardRoundTrip(
      shard, [&line](std::int64_t) { return line; }, deadline);
}

Result<serve::JsonValue> Router::FetchShardFrame(const serve::Request& r,
                                                 std::uint32_t shard,
                                                 const std::string& scatter_id,
                                                 Clock::time_point deadline) {
  serve::Request sub = r;
  // Every shard of one scatter runs under the same router-chosen id, so a
  // single `cancel` line aborts the whole scatter's in-flight work. The
  // client's id still names the merged response; only the sub-requests
  // are re-keyed.
  sub.id = scatter_id;
  const auto of = static_cast<std::uint32_t>(pool_.num_shards());
  auto response = ShardRoundTrip(
      static_cast<std::size_t>(shard),
      [&sub, shard, of](std::int64_t remaining) {
        // The sub-request carries the remaining budget so the backend
        // sheds work the router would discard anyway.
        sub.timeout_ms = remaining;
        return serve::BuildShardRequestLine(sub, shard, of);
      },
      deadline);
  if (!response.ok()) return response.status();
  auto parsed = serve::JsonValue::Parse(*response);
  if (!parsed.ok() || !parsed->is_object()) {
    return status::Internal("unparseable backend response");
  }
  const serve::JsonValue* ok = parsed->Find("ok");
  if (ok == nullptr || !ok->AsBool(false)) {
    std::string message = "backend error";
    if (const serve::JsonValue* error = parsed->Find("error")) {
      if (const serve::JsonValue* code = error->Find("code")) {
        message = code->AsString();
      }
      if (const serve::JsonValue* text = error->Find("message")) {
        message += ": " + text->AsString();
      }
    }
    return status::IoError(message);
  }
  const serve::JsonValue* frame = parsed->Find("partial");
  if (frame == nullptr || !frame->is_object()) {
    return status::Internal("backend answered without a partial frame");
  }
  return *frame;
}

void Router::BroadcastCancel(const std::string& scatter_id) {
  std::string line = "{\"id\":";
  serve::AppendJsonString(line, scatter_id);
  line += ",\"query\":\"cancel\"}";
  const std::size_t num_shards = pool_.num_shards();
  for (std::size_t shard = 0; shard < num_shards; ++shard) {
    auto lease = pool_.Acquire(shard);
    if (!lease.ok()) continue;
    // Short window, one attempt, and no ReportFailure on error: a lost
    // cancel costs some wasted scan time, not correctness, and it must
    // not skew replica health accounting.
    (void)lease->client.SetRecvTimeoutMs(kRecvGraceMs);
    auto response = lease->client.RoundTrip(line);
    pool_.Release(std::move(*lease), /*reusable=*/response.ok());
    if (response.ok()) metrics_.cancels_sent.fetch_add(1);
  }
}

std::string Router::ScatterGather(const serve::Request& r,
                                  Clock::time_point received,
                                  Clock::time_point deadline) {
  TRACE_SPAN("router.scatter");
  const bool batch = serve::IsBatchQueryKind(r.kind);
  if (!AdmitScatter(batch, deadline)) {
    metrics_.rejected_overloaded.fetch_add(1);
    // Backoff hint: roughly when a scatter slot should free up — the
    // observed p50 scatter wall time (50ms until we have samples).
    const auto snap = scatter_latency_.Snap();
    const double p50 = snap.count > 0 ? snap.QuantileMs(0.50) : 50.0;
    const auto retry_after_ms =
        static_cast<std::int64_t>(std::max(p50, 1.0));
    last_retry_after_ms_.store(retry_after_ms);
    return serve::ErrorResponse(
        r.id, ErrorCode::kOverloaded,
        StrFormat("router scatter limit (%zu in flight); retry later",
                  opt_.max_inflight),
        retry_after_ms);
  }
  const std::size_t num_shards = pool_.num_shards();
  const std::string scatter_id =
      "rc-" + std::to_string(scatter_seq_.fetch_add(1) + 1);
  struct Outcome {
    bool ok = false;
    serve::JsonValue frame;
    std::string error;
  };
  std::vector<Outcome> outcomes(num_shards);
  {
    std::vector<std::thread> threads;
    threads.reserve(num_shards);
    for (std::size_t i = 0; i < num_shards; ++i) {
      threads.emplace_back([this, &r, &outcomes, &scatter_id, i, deadline] {
        auto frame = FetchShardFrame(r, static_cast<std::uint32_t>(i),
                                     scatter_id, deadline);
        if (frame.ok()) {
          outcomes[i].ok = true;
          outcomes[i].frame = *std::move(frame);
        } else {
          outcomes[i].error = frame.status().message();
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  ReleaseScatter();
  metrics_.scatters.fetch_add(1);
  scatter_latency_.Record(MsSince(received) / 1e3);
  // A hard-failed shard means this scatter is settled as degraded (or
  // worse) — but backends may still be scanning under its id: a replica
  // the router abandoned mid-round-trip, a sub-request past its
  // deadline. Tell every reachable shard to stop. After the join, so a
  // survivor's frame can never be cancelled out from under the merge;
  // for sub-requests that already finished the verb is an idempotent
  // no-op.
  const bool any_failed = std::any_of(
      outcomes.begin(), outcomes.end(),
      [](const Outcome& outcome) { return !outcome.ok; });
  if (any_failed) BroadcastCancel(scatter_id);

  std::vector<serve::JsonValue> frames;
  std::vector<std::uint32_t> failed;
  std::string first_error;
  for (std::size_t i = 0; i < num_shards; ++i) {
    if (outcomes[i].ok) {
      frames.push_back(std::move(outcomes[i].frame));
    } else {
      failed.push_back(static_cast<std::uint32_t>(i));
      if (first_error.empty()) first_error = outcomes[i].error;
      GDELT_LOG(kWarning, StrFormat("router: %s shard %zu failed: %s",
                                    r.kind.c_str(), i,
                                    outcomes[i].error.c_str()));
    }
  }
  metrics_.shard_failures.fetch_add(failed.size());
  if (frames.empty()) {
    metrics_.unavailable.fetch_add(1);
    return serve::ErrorResponse(r.id, ErrorCode::kUnavailable,
                                "no shard answered: " + first_error);
  }
  auto merged = serve::MergePartialFrames(r, frames);
  if (!merged.ok()) {
    return serve::ErrorResponse(r.id, ErrorCode::kInternal,
                                merged.status().message());
  }
  const double wall_ms = MsSince(received);
  if (failed.empty()) {
    metrics_.responses_ok.fetch_add(1);
    return serve::OkResponse(r, *merged, /*cached=*/false, wall_ms);
  }

  // Degraded: the surviving shards' merge, plus the failed shard list.
  // Same envelope as OkResponse with `"partial_failure"` spliced in
  // before the text so clients can tell an undercount from a full
  // answer.
  metrics_.degraded_responses.fetch_add(1);
  metrics_.responses_ok.fetch_add(1);
  std::string out = "{\"id\":";
  serve::AppendJsonString(out, r.id);
  out += ",\"ok\":true,\"query\":";
  serve::AppendJsonString(out, r.kind);
  out += ",\"cached\":false";
  out += StrFormat(",\"wall_ms\":%.3f", wall_ms);
  out += ",\"partial_failure\":[";
  for (std::size_t i = 0; i < failed.size(); ++i) {
    if (i != 0) out += ",";
    out += std::to_string(failed[i]);
  }
  out += "],\"text\":";
  serve::AppendJsonString(out, *merged);
  out += "}\n";
  return out;
}

bool Router::AdmitScatter(bool batch, Clock::time_point deadline) {
  sync::MutexLock lock(inflight_mu_);
  if (inflight_ < opt_.max_inflight) {
    ++inflight_;
    return true;
  }
  // Two-lane admission, mirroring the backend scheduler: batch kinds
  // shed immediately at the limit, interactive kinds wait a bounded
  // slice for a slot.
  if (batch) return false;
  const auto wait_deadline =
      std::min(deadline, Clock::now() + std::chrono::milliseconds(
                                            opt_.interactive_wait_ms));
  while (inflight_ >= opt_.max_inflight) {
    if (stopping_.load()) return false;
    const auto now = Clock::now();
    if (now >= wait_deadline) return false;
    inflight_cv_.WaitFor(inflight_mu_, wait_deadline - now);
  }
  ++inflight_;
  return true;
}

void Router::ReleaseScatter() {
  {
    sync::MutexLock lock(inflight_mu_);
    --inflight_;
  }
  inflight_cv_.NotifyOne();
}

std::string Router::MetricsJson() {
  std::string out = "{";
  const auto counter = [&out](const char* name, std::uint64_t value) {
    out += StrFormat("\"%s\":%llu,", name,
                     static_cast<unsigned long long>(value));
  };
  counter("requests_total", metrics_.requests_total.load());
  counter("responses_ok", metrics_.responses_ok.load());
  counter("relays", metrics_.relays.load());
  counter("scatters", metrics_.scatters.load());
  counter("shard_failures", metrics_.shard_failures.load());
  counter("degraded_responses", metrics_.degraded_responses.load());
  counter("cancels_sent", metrics_.cancels_sent.load());
  counter("rejected_overloaded", metrics_.rejected_overloaded.load());
  counter("bad_requests", metrics_.bad_requests.load());
  counter("unknown_queries", metrics_.unknown_queries.load());
  counter("unavailable", metrics_.unavailable.load());
  counter("connections_opened", metrics_.connections_opened.load());
  out += StrFormat("\"retry_after_ms\":%lld,",
                   static_cast<long long>(last_retry_after_ms_.load()));
  out += StrFormat("\"num_shards\":%zu,\"shards\":", pool_.num_shards());
  out += pool_.HealthJson();
  out += "}";
  return out;
}

std::string Router::PrometheusText() {
  std::string out;
  out.reserve(1024);
  const auto counter = [&out](const char* name, std::uint64_t value) {
    out += StrFormat("# TYPE %s counter\n%s %llu\n", name, name,
                     static_cast<unsigned long long>(value));
  };
  counter("gdelt_router_requests_total", metrics_.requests_total.load());
  counter("gdelt_router_responses_ok_total", metrics_.responses_ok.load());
  counter("gdelt_router_relays_total", metrics_.relays.load());
  counter("gdelt_router_scatters_total", metrics_.scatters.load());
  counter("gdelt_router_shard_failures_total",
          metrics_.shard_failures.load());
  counter("gdelt_router_degraded_responses_total",
          metrics_.degraded_responses.load());
  counter("gdelt_router_cancels_sent_total", metrics_.cancels_sent.load());
  counter("gdelt_router_rejected_overloaded_total",
          metrics_.rejected_overloaded.load());
  counter("gdelt_router_bad_requests_total", metrics_.bad_requests.load());
  counter("gdelt_router_unavailable_total", metrics_.unavailable.load());
  out += StrFormat(
      "# TYPE gdelt_router_retry_after_ms gauge\n"
      "gdelt_router_retry_after_ms %lld\n",
      static_cast<long long>(last_retry_after_ms_.load()));
  return out;
}

void Router::AcceptLoop() {
  while (!stopping_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    metrics_.connections_opened.fetch_add(1);
    sync::MutexLock lock(conn_mu_);
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { HandleConnection(fd); });
  }
}

void Router::HandleConnection(int fd) {
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start);
         nl != std::string::npos && open;
         start = nl + 1, nl = buffer.find('\n', start)) {
      std::string line = buffer.substr(start, nl - start);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      active_requests_.fetch_add(1);
      const std::string response = HandleLine(line);
      open = WriteAll(fd, response);
      active_requests_.fetch_sub(1);
    }
    buffer.erase(0, start);
    if (buffer.size() > opt_.max_line_bytes) {
      active_requests_.fetch_add(1);
      metrics_.bad_requests.fetch_add(1);
      WriteAll(fd, serve::ErrorResponse("", ErrorCode::kBadRequest,
                                        "request line too long"));
      active_requests_.fetch_sub(1);
      break;
    }
  }
  ::close(fd);
}

void Router::HealthLoop() {
  sync::MutexLock lock(health_stop_mu_);
  while (!stopping_.load()) {
    health_stop_cv_.WaitFor(
        health_stop_mu_, std::chrono::milliseconds(opt_.health_interval_ms));
    if (stopping_.load()) break;
    pool_.ProbeAll();
  }
}

}  // namespace gdelt::router
