#include "router/topology.hpp"

#include <charconv>

namespace gdelt::router {
namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

Result<Endpoint> ParseEndpoint(std::string_view token) {
  token = Trim(token);
  const std::size_t colon = token.rfind(':');
  if (colon == std::string_view::npos || colon == 0) {
    return status::InvalidArgument("endpoint '" + std::string(token) +
                                   "' is not host:port");
  }
  const std::string_view host = token.substr(0, colon);
  const std::string_view port_text = token.substr(colon + 1);
  int port = 0;
  const auto [end, ec] = std::from_chars(
      port_text.data(), port_text.data() + port_text.size(), port);
  if (ec != std::errc{} || end != port_text.data() + port_text.size() ||
      port < 1 || port > 65535) {
    return status::InvalidArgument("endpoint '" + std::string(token) +
                                   "' has a bad port");
  }
  return Endpoint{std::string(host), port};
}

}  // namespace

Result<Topology> ParseTopology(std::string_view spec) {
  Topology topology;
  std::size_t start = 0;
  // A trailing ';' would read as an empty shard; reject it like any other.
  while (start <= spec.size()) {
    std::size_t semi = spec.find(';', start);
    if (semi == std::string_view::npos) semi = spec.size();
    const std::string_view shard_spec = Trim(spec.substr(start, semi - start));
    if (shard_spec.empty()) {
      return status::InvalidArgument(
          "topology spec has an empty shard (shard " +
          std::to_string(topology.shards.size()) + ")");
    }
    std::vector<Endpoint> replicas;
    std::size_t rep_start = 0;
    while (rep_start <= shard_spec.size()) {
      std::size_t comma = shard_spec.find(',', rep_start);
      if (comma == std::string_view::npos) comma = shard_spec.size();
      auto endpoint =
          ParseEndpoint(shard_spec.substr(rep_start, comma - rep_start));
      if (!endpoint.ok()) return endpoint.status();
      replicas.push_back(std::move(*endpoint));
      if (comma == shard_spec.size()) break;
      rep_start = comma + 1;
    }
    topology.shards.push_back(std::move(replicas));
    if (semi == spec.size()) break;
    start = semi + 1;
  }
  if (topology.shards.empty()) {
    return status::InvalidArgument("topology spec is empty");
  }
  return topology;
}

}  // namespace gdelt::router
