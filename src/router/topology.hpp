// Shard topology of a gdelt_router deployment.
//
// A topology is an ordered list of logical shards; each shard is a list
// of replica endpoints that serve identical data for that shard (the
// same converted database directory behind each). The router scatters
// partition i of a decomposable query to any live replica of shard i,
// so replica order within a shard is a preference order, not a
// partition assignment.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.hpp"

namespace gdelt::router {

/// One backend address (IPv4 dotted quad or "localhost").
struct Endpoint {
  std::string host;
  int port = 0;

  std::string Label() const { return host + ":" + std::to_string(port); }
};

/// shards[i] holds the replica list of logical shard i.
struct Topology {
  std::vector<std::vector<Endpoint>> shards;

  std::size_t num_shards() const noexcept { return shards.size(); }
};

/// Parses a topology spec: shards separated by ';', replicas of one
/// shard by ',', each endpoint "host:port". Example with two shards,
/// the first one replicated:
///
///   127.0.0.1:7001,127.0.0.1:7002;127.0.0.1:7003
///
/// Strict: empty shards, missing ports and out-of-range ports are
/// rejected rather than guessed at, matching the protocol parser's
/// posture.
Result<Topology> ParseTopology(std::string_view spec);

}  // namespace gdelt::router
