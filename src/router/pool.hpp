// Per-shard backend connection pools with health tracking.
//
// The pool owns, for every endpoint in the topology: a small stack of
// idle reusable connections, a consecutive-failure counter that marks
// the endpoint down after `down_after_failures` strikes, and the
// queue_depth/queue_capacity gauges from the endpoint's last `metrics`
// probe (a saturated backend is deprioritized, not skipped — shedding
// is the backend's own admission controller's job). All of it lives
// behind one sync::Mutex; connects and probes run outside the lock so a
// hung backend cannot stall the whole router.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "router/topology.hpp"
#include "serve/client.hpp"
#include "util/status.hpp"
#include "util/sync.hpp"

namespace gdelt::router {

struct BackendPoolOptions {
  /// Consecutive round-trip/connect failures before an endpoint is
  /// marked down. A down endpoint is only tried as a last resort (which
  /// doubles as its recovery probe) until a success or a health probe
  /// revives it.
  std::uint32_t down_after_failures = 3;
  /// Idle connections kept per endpoint for reuse.
  std::size_t max_idle_per_endpoint = 4;
  /// Connect policy for every dial (scatter and probe alike).
  serve::ConnectOptions connect;
};

class BackendPool {
 public:
  BackendPool(Topology topology, BackendPoolOptions options);

  std::size_t num_shards() const noexcept { return num_shards_; }

  /// A leased connection to one replica of one shard. Return it with
  /// Release; dropping it on the floor just closes the socket.
  struct Lease {
    serve::LineClient client;
    std::size_t shard = 0;
    std::size_t replica = 0;
  };

  /// Leases a connection to a replica of `shard`. Preference order: up
  /// and unsaturated replicas first, then up-but-saturated, then down
  /// ones as a recovery probe. Reuses an idle connection when one is
  /// pooled, else dials under the connect policy. Every replica
  /// refusing yields an IoError carrying the last dial failure.
  Result<Lease> Acquire(std::size_t shard);

  /// Returns the lease's connection to the idle pool (`reusable`) or
  /// drops it. Does not touch the health counters — call ReportSuccess
  /// or ReportFailure for that.
  void Release(Lease lease, bool reusable);

  /// Resets the failure streak and revives the endpoint.
  void ReportSuccess(std::size_t shard, std::size_t replica);

  /// One strike; marks the endpoint down on the configured streak and
  /// drops its idle connections (they share the broken backend).
  void ReportFailure(std::size_t shard, std::size_t replica);

  /// True when every replica of `shard` is marked down.
  bool AllReplicasDown(std::size_t shard) const;

  /// One health sweep: round-trips `{"query":"metrics"}` on every
  /// endpoint, reviving responders, striking the rest, and refreshing
  /// the queue gauges. Runs the probes outside the pool lock.
  void ProbeAll();

  /// JSON array of per-endpoint health for the router metrics surface.
  std::string HealthJson() const;

 private:
  struct EndpointState {
    Endpoint endpoint;
    std::uint32_t consecutive_failures = 0;
    bool down = false;
    bool saturated = false;  ///< queue full at the last probe
    std::uint64_t queue_depth = 0;
    std::uint64_t queue_capacity = 0;
    /// Backend's cache epoch (delta ingest generation) at the last probe:
    /// skew across replicas of one shard means an ingest landed unevenly.
    std::uint64_t epoch = 0;
    std::vector<serve::LineClient> idle;
  };

  EndpointState* StateOf(std::size_t shard, std::size_t replica)
      GDELT_REQUIRES(mu_);

  const BackendPoolOptions opt_;
  const std::size_t num_shards_;

  mutable sync::Mutex mu_;
  std::vector<std::vector<EndpointState>> shards_ GDELT_GUARDED_BY(mu_);
};

}  // namespace gdelt::router
