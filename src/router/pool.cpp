#include "router/pool.hpp"

#include <utility>

#include "serve/json.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

namespace gdelt::router {
namespace {

/// Outcome of one metrics probe, applied back under the pool lock.
struct ProbeResult {
  bool alive = false;
  std::uint64_t queue_depth = 0;
  std::uint64_t queue_capacity = 0;
  std::uint64_t epoch = 0;
};

ProbeResult ProbeEndpoint(const Endpoint& endpoint,
                          const serve::ConnectOptions& connect) {
  ProbeResult result;
  auto client = serve::LineClient::Connect(endpoint.host, endpoint.port,
                                           connect);
  if (!client.ok()) return result;
  if (connect.connect_timeout_ms > 0) {
    // A backend that accepts but never answers is as dead as one that
    // refuses; bound the probe read by the same budget as the dial.
    (void)client->SetRecvTimeoutMs(connect.connect_timeout_ms);
  }
  auto response = client->RoundTrip("{\"query\":\"metrics\"}");
  if (!response.ok()) return result;
  auto parsed = serve::JsonValue::Parse(*response);
  if (!parsed.ok() || !parsed->is_object()) return result;
  const serve::JsonValue* ok = parsed->Find("ok");
  if (ok == nullptr || !ok->AsBool(false)) return result;
  result.alive = true;
  if (const serve::JsonValue* metrics = parsed->Find("metrics");
      metrics != nullptr && metrics->is_object()) {
    if (const serve::JsonValue* depth = metrics->Find("queue_depth")) {
      result.queue_depth = static_cast<std::uint64_t>(depth->AsInt(0));
    }
    if (const serve::JsonValue* cap = metrics->Find("queue_capacity")) {
      result.queue_capacity = static_cast<std::uint64_t>(cap->AsInt(0));
    }
    if (const serve::JsonValue* epoch = metrics->Find("epoch")) {
      result.epoch = static_cast<std::uint64_t>(epoch->AsInt(0));
    }
  }
  return result;
}

}  // namespace

BackendPool::BackendPool(Topology topology, BackendPoolOptions options)
    : opt_(options), num_shards_(topology.shards.size()) {
  sync::MutexLock lock(mu_);
  shards_.reserve(topology.shards.size());
  for (auto& replicas : topology.shards) {
    std::vector<EndpointState> states;
    states.reserve(replicas.size());
    for (auto& endpoint : replicas) {
      EndpointState state;
      state.endpoint = std::move(endpoint);
      states.push_back(std::move(state));
    }
    shards_.push_back(std::move(states));
  }
}

BackendPool::EndpointState* BackendPool::StateOf(std::size_t shard,
                                                 std::size_t replica) {
  if (shard >= shards_.size() || replica >= shards_[shard].size()) {
    return nullptr;
  }
  return &shards_[shard][replica];
}

Result<BackendPool::Lease> BackendPool::Acquire(std::size_t shard) {
  struct Candidate {
    std::size_t replica = 0;
    Endpoint endpoint;
    std::optional<serve::LineClient> idle;
  };
  std::vector<Candidate> candidates;
  {
    sync::MutexLock lock(mu_);
    if (shard >= shards_.size()) {
      return status::InvalidArgument("no shard " + std::to_string(shard) +
                                     " in the topology");
    }
    auto& replicas = shards_[shard];
    const auto add_tier = [&](bool want_down, bool want_saturated) {
      for (std::size_t i = 0; i < replicas.size(); ++i) {
        EndpointState& state = replicas[i];
        if (state.down != want_down) continue;
        if (!want_down && state.saturated != want_saturated) continue;
        Candidate c;
        c.replica = i;
        c.endpoint = state.endpoint;
        if (!state.idle.empty()) {
          c.idle.emplace(std::move(state.idle.back()));
          state.idle.pop_back();
        }
        candidates.push_back(std::move(c));
      }
    };
    add_tier(/*down=*/false, /*saturated=*/false);
    add_tier(/*down=*/false, /*saturated=*/true);
    add_tier(/*down=*/true, /*saturated=*/false);
    add_tier(/*down=*/true, /*saturated=*/true);
  }

  Status last_error = status::IoError(
      "shard " + std::to_string(shard) + " has no replicas");
  for (Candidate& candidate : candidates) {
    if (candidate.idle.has_value()) {
      return Lease{std::move(*candidate.idle), shard, candidate.replica};
    }
    auto client = serve::LineClient::Connect(candidate.endpoint.host,
                                             candidate.endpoint.port,
                                             opt_.connect);
    if (client.ok()) {
      return Lease{std::move(*client), shard, candidate.replica};
    }
    ReportFailure(shard, candidate.replica);
    last_error = client.status();
  }
  return status::IoError("shard " + std::to_string(shard) +
                         " unavailable: " + last_error.message());
}

void BackendPool::Release(Lease lease, bool reusable) {
  if (!reusable) return;  // the LineClient destructor closes the socket
  sync::MutexLock lock(mu_);
  EndpointState* state = StateOf(lease.shard, lease.replica);
  if (state == nullptr || state->down ||
      state->idle.size() >= opt_.max_idle_per_endpoint) {
    return;
  }
  state->idle.push_back(std::move(lease.client));
}

void BackendPool::ReportSuccess(std::size_t shard, std::size_t replica) {
  sync::MutexLock lock(mu_);
  EndpointState* state = StateOf(shard, replica);
  if (state == nullptr) return;
  if (state->down) {
    GDELT_LOG(kInfo, "router: backend " + state->endpoint.Label() +
                         " is back up");
  }
  state->consecutive_failures = 0;
  state->down = false;
}

void BackendPool::ReportFailure(std::size_t shard, std::size_t replica) {
  sync::MutexLock lock(mu_);
  EndpointState* state = StateOf(shard, replica);
  if (state == nullptr) return;
  ++state->consecutive_failures;
  state->idle.clear();
  if (!state->down &&
      state->consecutive_failures >= opt_.down_after_failures) {
    state->down = true;
    GDELT_LOG(kWarning,
              StrFormat("router: marking backend %s down after %u "
                        "consecutive failures (shard %zu replica %zu)",
                        state->endpoint.Label().c_str(),
                        state->consecutive_failures, shard, replica));
  }
}

bool BackendPool::AllReplicasDown(std::size_t shard) const {
  sync::MutexLock lock(mu_);
  if (shard >= shards_.size()) return true;
  for (const EndpointState& state : shards_[shard]) {
    if (!state.down) return false;
  }
  return true;
}

void BackendPool::ProbeAll() {
  struct Target {
    std::size_t shard = 0;
    std::size_t replica = 0;
    Endpoint endpoint;
  };
  std::vector<Target> targets;
  {
    sync::MutexLock lock(mu_);
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      for (std::size_t r = 0; r < shards_[s].size(); ++r) {
        targets.push_back({s, r, shards_[s][r].endpoint});
      }
    }
  }
  for (const Target& target : targets) {
    const ProbeResult probe = ProbeEndpoint(target.endpoint, opt_.connect);
    if (probe.alive) {
      ReportSuccess(target.shard, target.replica);
      sync::MutexLock lock(mu_);
      if (EndpointState* state = StateOf(target.shard, target.replica)) {
        state->queue_depth = probe.queue_depth;
        state->queue_capacity = probe.queue_capacity;
        state->epoch = probe.epoch;
        state->saturated = probe.queue_capacity > 0 &&
                           probe.queue_depth >= probe.queue_capacity;
      }
    } else {
      ReportFailure(target.shard, target.replica);
    }
  }
}

std::string BackendPool::HealthJson() const {
  sync::MutexLock lock(mu_);
  std::string out = "[";
  bool first = true;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    for (std::size_t r = 0; r < shards_[s].size(); ++r) {
      const EndpointState& state = shards_[s][r];
      if (!first) out += ",";
      first = false;
      out += StrFormat("{\"shard\":%zu,\"replica\":%zu,\"endpoint\":", s, r);
      serve::AppendJsonString(out, state.endpoint.Label());
      out += StrFormat(",\"down\":%s,\"consecutive_failures\":%u,"
                       "\"queue_depth\":%llu,\"queue_capacity\":%llu,"
                       "\"epoch\":%llu}",
                       state.down ? "true" : "false",
                       state.consecutive_failures,
                       static_cast<unsigned long long>(state.queue_depth),
                       static_cast<unsigned long long>(state.queue_capacity),
                       static_cast<unsigned long long>(state.epoch));
    }
  }
  out += "]";
  return out;
}

}  // namespace gdelt::router
