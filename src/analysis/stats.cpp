#include "analysis/stats.hpp"

#include <algorithm>

#include "analysis/distributions.hpp"
#include "util/strings.hpp"

namespace gdelt::analysis {

std::string DatasetStatistics::ToText() const {
  std::string out;
  out += "General dataset statistics (cf. paper Table I)\n";
  out += StrFormat("  Sources                               %s\n",
                   WithThousands(sources).c_str());
  out += StrFormat("  Events                                %s\n",
                   WithThousands(events).c_str());
  out += StrFormat("  Capture intervals                     %s\n",
                   WithThousands(capture_intervals).c_str());
  out += StrFormat("  Articles                              %s\n",
                   WithThousands(articles).c_str());
  out += StrFormat("  Min articles per event                %s\n",
                   WithThousands(min_articles_per_event).c_str());
  out += StrFormat("  Max articles per event                %s\n",
                   WithThousands(max_articles_per_event).c_str());
  out += StrFormat("  Articles per event (weighted average) %.2f\n",
                   weighted_avg_articles_per_event);
  return out;
}

DatasetStatistics ComputeDatasetStatistics(const engine::Database& db) {
  DatasetStatistics stats;
  stats.sources = db.num_sources();
  stats.events = db.num_events();
  stats.articles = db.num_mentions();
  stats.capture_intervals =
      db.num_mentions() == 0
          ? 0
          : static_cast<std::uint64_t>(db.last_interval() -
                                       db.first_interval() + 1);
  const auto counts = db.event_article_count();
  std::uint64_t min_c = counts.empty() ? 0 : UINT64_MAX;
  std::uint64_t max_c = 0;
  for (const std::uint32_t c : counts) {
    min_c = std::min<std::uint64_t>(min_c, c);
    max_c = std::max<std::uint64_t>(max_c, c);
  }
  stats.min_articles_per_event = counts.empty() ? 0 : min_c;
  stats.max_articles_per_event = max_c;
  stats.weighted_avg_articles_per_event = AverageArticlesPerEvent(db);
  return stats;
}

}  // namespace gdelt::analysis
