#include "analysis/tone.hpp"

#include "parallel/parallel.hpp"

namespace gdelt::analysis {
namespace {

/// Generic parallel mean-by-bin over events: per-thread partials, merged
/// deterministically.
template <typename BinFn, typename ValueFn>
std::vector<MeanAccumulator> MeanByBin(const engine::Database& db,
                                       std::size_t bins, BinFn&& bin_of,
                                       ValueFn&& value_of) {
  const auto nt = static_cast<std::size_t>(MaxThreads());
  std::vector<std::vector<MeanAccumulator>> locals(nt);
  ParallelForChunks(db.num_events(), [&](IndexRange r, int tid) {
    auto& local = locals[static_cast<std::size_t>(tid)];
    local.assign(bins, MeanAccumulator{});
    for (std::size_t e = r.begin; e < r.end; ++e) {
      const std::size_t b = bin_of(e);
      if (b >= bins) continue;
      local[b].sum += value_of(e);
      ++local[b].count;
    }
  });
  std::vector<MeanAccumulator> merged(bins);
  for (const auto& local : locals) {
    if (local.empty()) continue;
    for (std::size_t b = 0; b < bins; ++b) {
      merged[b].sum += local[b].sum;
      merged[b].count += local[b].count;
    }
  }
  return merged;
}

}  // namespace

std::vector<MeanAccumulator> AverageToneByCountry(
    const engine::Database& db) {
  const auto country = db.event_country();
  const auto tone = db.events_tone();
  return MeanByBin(
      db, Countries().size(),
      [&](std::size_t e) -> std::size_t {
        return country[e] == kNoCountry ? SIZE_MAX : country[e];
      },
      [&](std::size_t e) { return tone[e]; });
}

QuadClassTone ToneByQuadClass(const engine::Database& db) {
  const auto quad = db.event_quad_class();
  const auto tone = db.events_tone();
  const auto goldstein = db.event_goldstein();
  QuadClassTone result;
  const auto tones = MeanByBin(
      db, 5, [&](std::size_t e) -> std::size_t { return quad[e]; },
      [&](std::size_t e) { return tone[e]; });
  const auto scores = MeanByBin(
      db, 5, [&](std::size_t e) -> std::size_t { return quad[e]; },
      [&](std::size_t e) { return goldstein[e]; });
  for (std::size_t q = 0; q < 5; ++q) {
    result.tone[q] = tones[q];
    result.goldstein[q] = scores[q];
  }
  return result;
}

QuarterlyTone QuarterlyAverageTone(const engine::Database& db) {
  const auto w = engine::QuartersOf(db);
  const auto added = db.event_added_interval();
  const auto tone = db.events_tone();
  QuarterlyTone result;
  result.first_quarter = w.first;
  result.values = MeanByBin(
      db, static_cast<std::size_t>(w.count),
      [&](std::size_t e) -> std::size_t {
        const std::int32_t q =
            QuarterOfUnixSeconds(IntervalStartUnixSeconds(added[e])) -
            w.first;
        return q < 0 ? SIZE_MAX : static_cast<std::size_t>(q);
      },
      [&](std::size_t e) { return tone[e]; });
  return result;
}

}  // namespace gdelt::analysis
