// Publishing-delay analyses (paper Sections VI-E and VI-F).
//
// Delay = capture interval of an article minus the interval of the event
// it reports, in 15-minute units. 96 intervals = the 24-hour news cycle.
// Articles whose event time postdates the capture (the Table II defect)
// are excluded from the statistics.
#pragma once

#include <cstdint>
#include <vector>

#include "engine/database.hpp"
#include "engine/queries.hpp"
#include "parallel/morsel.hpp"

namespace gdelt::analysis {

/// Per-source publishing delay summary (Fig 9 / Table VIII rows).
struct DelayStats {
  std::uint64_t article_count = 0;  ///< valid (non-negative-delay) articles
  std::int64_t min = 0;
  std::int64_t max = 0;
  double average = 0.0;
  std::int64_t median = 0;
};

/// Delay statistics for every source id. Sources with no valid articles
/// have article_count == 0. Parallel over sources via the source index;
/// each source is computed wholly within one morsel, so the float
/// average is bitwise identical on both backends.
std::vector<DelayStats> PerSourceDelayStats(
    const engine::Database& db,
    parallel::Backend backend = parallel::Backend::kMorselPool,
    const util::CancelToken* cancel = nullptr);

/// Partial-aggregate kernel for scatter-gather serving: delay stats for
/// only the sources with `s % of == shard`; all other entries stay
/// zeroed. Each owned source is computed whole (sort + sequential sum
/// over its sorted delays), exactly like PerSourceDelayStats, so the
/// union of the strided results is bitwise identical to the full run.
std::vector<DelayStats> PerSourceDelayStatsStrided(
    const engine::Database& db, std::uint32_t shard, std::uint32_t of,
    const util::CancelToken* cancel = nullptr);

/// Histogram over sources of one delay metric, in power-of-two bins
/// [1,2), [2,4), ... plus bin 0 for exact zero. Used to print Fig 9.
enum class DelayMetric { kMin, kAverage, kMedian, kMax };
std::vector<std::uint64_t> DelayMetricHistogram(
    const std::vector<DelayStats>& stats, DelayMetric metric, int num_bins);

/// Per-quarter average and median delay over all articles (Fig 10).
struct QuarterlyDelay {
  QuarterId first_quarter = 0;
  std::vector<double> average;
  std::vector<std::int64_t> median;
};
QuarterlyDelay QuarterlyDelayStats(const engine::Database& db);

/// Partial-aggregate kernel for scatter-gather serving: quarterly delay
/// reduced for only the quarters with `q % of == shard`; other entries
/// stay zeroed. The full grouping pass (count, scatter, partition) is
/// replicated so each owned quarter sums its delays in exactly the order
/// QuarterlyDelayStats does — the merged averages are bitwise identical.
QuarterlyDelay QuarterlyDelayStatsStrided(const engine::Database& db,
                                          std::uint32_t shard,
                                          std::uint32_t of);

/// Articles per quarter with delay > 96 intervals / 24 h (Fig 11).
engine::QuarterSeries SlowArticlesPerQuarter(const engine::Database& db,
                                             std::int64_t threshold = 96);

}  // namespace gdelt::analysis
