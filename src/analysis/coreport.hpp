// Co-reporting analysis (paper Section VI-B).
//
// For sources i, j: e_i = events i reported on, e_ij = events both
// reported on, and the co-reporting factor is the Jaccard index
//     c_ij = e_ij / (e_i + e_j - e_ij).
// Following the paper, the pair counts are accumulated into a dense matrix
// (~1.8 GB for all 21 k real sources; a few MB at our scale) because the
// update count is enormous.
//
// Every kernel below consumes the database's memoized event ->
// distinct-source index (engine::Database::event_distinct_sources()), so
// the per-event sort/dedup is paid once per database, not once per query.
// The default kernel is the atomic-free tiled one; the shared-matrix
// atomic kernel and the hash-based sparse kernel stay available as the
// representation ablation (bench_ablation_coreport_repr), which quantifies
// the win. All kernels produce bitwise-identical count matrices.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "engine/database.hpp"
#include "graph/matrix.hpp"
#include "util/cancel.hpp"

namespace gdelt::analysis {

/// Dense symmetric co-reporting counts over a set of sources.
class CoReportMatrix {
 public:
  /// `n` sources; allocates the n*n count matrix zeroed.
  explicit CoReportMatrix(std::size_t n);

  std::size_t size() const noexcept { return n_; }

  /// Events co-reported by (i, j); e_i on the diagonal.
  std::uint32_t PairCount(std::size_t i, std::size_t j) const noexcept {
    return counts_[i * n_ + j];
  }

  /// Jaccard co-reporting factor c_ij in [0, 1].
  double Jaccard(std::size_t i, std::size_t j) const noexcept {
    const double eij = PairCount(i, j);
    const double denom =
        PairCount(i, i) + PairCount(j, j) - eij;
    return denom <= 0.0 ? 0.0 : eij / denom;
  }

  std::vector<std::uint32_t>& mutable_counts() noexcept { return counts_; }
  const std::vector<std::uint32_t>& counts() const noexcept { return counts_; }

 private:
  std::size_t n_;
  std::vector<std::uint32_t> counts_;
};

/// Tuning knobs for the tiled kernel; the defaults are right for
/// production use — tests lower them to force the large-n sparse path.
struct TiledCoReportOptions {
  /// Ceiling on the total size of per-thread dense partial matrices
  /// (threads * n * n * 4 bytes). Below it each thread accumulates into a
  /// private dense upper-triangular matrix; above it threads accumulate
  /// sparse (hashed) partials compressed to sorted runs instead.
  std::size_t dense_partials_budget_bytes = std::size_t{512} << 20;
  /// Merge granularity: elements per output tile (dense merge) and the
  /// basis for the row-tile width (sparse merge).
  std::size_t tile_elems = std::size_t{1} << 14;
  /// Run event morsels on the shared work-stealing pool (default) or on
  /// a private OpenMP team (scheduling-ablation baseline). Both produce
  /// bitwise-identical matrices.
  bool use_morsel_pool = true;
  /// Cooperative cancellation: polled per morsel (pool path) or per
  /// iteration chunk (OpenMP path). A cancelled run returns an
  /// unspecified partial matrix — the caller must check the token and
  /// discard it (see util/cancel.hpp).
  const util::CancelToken* cancel = nullptr;
};

/// Computes co-reporting over a subset of sources (empty subset = all).
/// `subset[k]` is the source id occupying matrix row/col k.
/// This is the atomic-free tiled kernel: parallel over event ranges with
/// per-thread private accumulation, merged deterministically in tile
/// order (parallel/MergeTiledPartials) — no atomics on the hot path and
/// bitwise-reproducible output at any thread count.
CoReportMatrix ComputeCoReporting(const engine::Database& db,
                                  std::span<const std::uint32_t> subset = {},
                                  const TiledCoReportOptions& options = {});

/// Partial-aggregate kernel for scatter-gather serving (docs/PROTOCOL.md
/// partial frames): pair counts accumulated over only the events in
/// [events_begin, events_end). Counts are integer sums over disjoint
/// per-event contributions, so summing the matrices of a partition of
/// the event axis reproduces ComputeCoReporting exactly. The result is
/// mirrored (full symmetric matrix) like every other kernel here.
CoReportMatrix ComputeCoReportingOnEvents(
    const engine::Database& db, std::span<const std::uint32_t> subset,
    std::size_t events_begin, std::size_t events_end,
    const util::CancelToken* cancel = nullptr);

/// Co-reporting restricted to a filtered mention row set (an
/// engine::SelectMentions result): each event's distinct-source set is
/// rebuilt from only the selected mentions, so time-window / confidence
/// restrictions narrow the pair counts exactly like they narrow the other
/// filtered kernels. Orphan mentions and sources outside `subset` are
/// skipped. With a row set covering every mention this produces counts
/// identical to the unfiltered kernel.
CoReportMatrix ComputeCoReporting(const engine::Database& db,
                                  std::span<const std::uint32_t> subset,
                                  std::span<const std::uint64_t> rows,
                                  const util::CancelToken* cancel = nullptr);

/// The pre-tiling baseline kept for the representation ablation: a shared
/// dense matrix updated with per-pair atomics. Identical counts,
/// contended at high thread counts.
CoReportMatrix ComputeCoReportingDenseAtomic(
    const engine::Database& db, std::span<const std::uint32_t> subset = {});

/// Hash-based alternative (the ablation of DESIGN.md section 5):
/// accumulates per-thread hash maps of pair counts and merges them.
/// Produces identical counts; compared for speed/memory in the bench.
CoReportMatrix ComputeCoReportingSparse(
    const engine::Database& db, std::span<const std::uint32_t> subset = {});

/// The paper's literal scale-out plan (Section VI-B): "a global
/// co-reporting matrix can be assembled from smaller matrices that cover
/// only a limited time span. These matrices can then be compressed into a
/// sparse format and assembled into a larger sparse matrix."
///
/// Events are sliced by the quarter of their DATEADDED (each event lands
/// wholly in one slice, so the assembled counts equal the dense result
/// exactly); every slice builds its own compressed sparse matrix over all
/// sources, and the slices are summed into one global sparse matrix.
/// Returns the symmetric pair-count matrix (diagonal = e_i) in CSR form.
graph::SparseMatrix ComputeCoReportingTimeSliced(const engine::Database& db);

}  // namespace gdelt::analysis
