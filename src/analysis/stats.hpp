// Dataset-level statistics (paper Table I).
#pragma once

#include <cstdint>
#include <string>

#include "engine/database.hpp"

namespace gdelt::analysis {

/// The general dataset statistics of Table I.
struct DatasetStatistics {
  std::uint64_t sources = 0;
  std::uint64_t events = 0;
  std::uint64_t capture_intervals = 0;  ///< 15-min intervals spanned
  std::uint64_t articles = 0;
  std::uint64_t min_articles_per_event = 0;
  std::uint64_t max_articles_per_event = 0;
  double weighted_avg_articles_per_event = 0.0;

  /// Renders as the two-column table of the paper.
  std::string ToText() const;
};

DatasetStatistics ComputeDatasetStatistics(const engine::Database& db);

}  // namespace gdelt::analysis
