#include "analysis/firstreport.hpp"

#include <algorithm>
#include <cmath>

#include "parallel/parallel.hpp"

namespace gdelt::analysis {
namespace {

/// Per-worker partial accumulators (one matrix row per counter family).
struct FirstReportLocal {
  std::vector<std::uint64_t> first_reports;
  std::vector<std::uint64_t> hist;
  std::uint64_t within_hour = 0;
  std::vector<std::uint64_t> repeat_events;
  std::vector<std::uint64_t> repeat_articles;
  std::vector<std::uint32_t> multiplicity;  // scratch

  void EnsureSized(std::size_t ns, std::size_t bins) {
    if (first_reports.size() == ns && hist.size() == bins) return;
    first_reports.assign(ns, 0);
    hist.assign(bins, 0);
    repeat_events.assign(ns, 0);
    repeat_articles.assign(ns, 0);
  }
};

/// Accumulates first-report statistics for events [r.begin, r.end).
/// `cancel` is polled every 256 events; morsel bodies pass nullptr (the
/// pool already polls per morsel).
void FirstReportEventsRange(const engine::Database& db, IndexRange r,
                            FirstReportLocal& local,
                            const util::CancelToken* cancel = nullptr) {
  const auto src = db.mention_source_id();
  const auto when = db.mention_interval();
  const auto event_when = db.mention_event_interval();
  const auto& index = db.event_distinct_sources();
  for (std::size_t e = r.begin; e < r.end; ++e) {
    if ((e & 255) == 0 && util::Cancelled(cancel)) return;
    const auto rows =
        db.mentions_by_event().RowsOf(static_cast<std::uint32_t>(e));
    if (rows.empty()) continue;
    // Rows are in capture order; find the earliest interval (ties ->
    // first row).
    std::uint64_t first_row = rows.front();
    for (const std::uint64_t row : rows) {
      if (when[row] < when[first_row]) first_row = row;
    }
    ++local.first_reports[src[first_row]];
    const std::int64_t delay = when[first_row] - event_when[first_row];
    if (delay >= 0) {
      std::size_t bin = 0;
      if (delay >= 1) {
        bin = 1 +
              static_cast<std::size_t>(std::log2(static_cast<double>(delay)));
      }
      bin = std::min(bin, local.hist.size() - 1);
      ++local.hist[bin];
      if (delay <= 4) ++local.within_hour;
    }
    // Repeat coverage: multiplicity per source within this event. The
    // memoized index holds the event's distinct sources sorted, so
    // instead of re-sorting the mention rows we bucket each row against
    // that list; events with as many distinct sources as rows (the
    // common case) have no repeats and are skipped outright.
    const auto distinct = index.ValuesOf(static_cast<std::uint32_t>(e));
    if (distinct.size() < rows.size()) {
      local.multiplicity.assign(distinct.size(), 0);
      for (const std::uint64_t row : rows) {
        const auto at =
            std::lower_bound(distinct.begin(), distinct.end(), src[row]) -
            distinct.begin();
        ++local.multiplicity[static_cast<std::size_t>(at)];
      }
      for (std::size_t d = 0; d < distinct.size(); ++d) {
        if (local.multiplicity[d] >= 2) {
          ++local.repeat_events[distinct[d]];
          local.repeat_articles[distinct[d]] += local.multiplicity[d] - 1;
        }
      }
    }
  }
}

}  // namespace

FirstReportStats ComputeFirstReports(const engine::Database& db,
                                     int histogram_bins,
                                     parallel::Backend backend,
                                     const util::CancelToken* cancel) {
  const std::size_t ns = db.num_sources();
  const auto bins = static_cast<std::size_t>(histogram_bins);
  FirstReportStats stats;
  stats.first_reports.assign(ns, 0);
  stats.first_delay_histogram.assign(bins, 0);
  stats.repeat_events.assign(ns, 0);
  stats.repeat_articles.assign(ns, 0);

  std::vector<FirstReportLocal> locals;
  if (backend == parallel::Backend::kMorselPool) {
    locals.resize(parallel::PoolSlots());
    parallel::PoolParallelFor(
        db.num_events(),
        [&](IndexRange r, std::size_t slot) {
          auto& local = locals[slot];
          local.EnsureSized(ns, bins);
          FirstReportEventsRange(db, r, local);
        },
        /*morsel_rows=*/0, cancel);
  } else {
    // Ablation baseline: private OpenMP team.
    locals.resize(static_cast<std::size_t>(MaxThreads()));
    // gdelt-lint: allow(raw-omp) — deliberate holdout, the kOpenMp
    // backend of the morsel-pool migration (DESIGN.md section 5c).
#pragma omp parallel
    {
      const auto tid = static_cast<std::size_t>(omp_get_thread_num());
      FirstReportLocal& local = locals[tid];
      local.EnsureSized(ns, bins);
#pragma omp for schedule(dynamic, 256)
      for (std::int64_t e = 0; e < static_cast<std::int64_t>(db.num_events());
           ++e) {
        if ((e & 255) == 0 && util::Cancelled(cancel)) continue;
        FirstReportEventsRange(
            db,
            IndexRange{static_cast<std::size_t>(e),
                       static_cast<std::size_t>(e) + 1},
            local);
      }
    }
  }

  // Slot-ordered merge (integer sums, so the result is independent of
  // which worker ran which morsel).
  for (const FirstReportLocal& local : locals) {
    if (local.first_reports.size() != ns || local.hist.size() != bins) {
      continue;  // slot never ran a morsel
    }
    for (std::size_t s = 0; s < ns; ++s) {
      stats.first_reports[s] += local.first_reports[s];
      stats.repeat_events[s] += local.repeat_events[s];
      stats.repeat_articles[s] += local.repeat_articles[s];
    }
    for (std::size_t b = 0; b < bins; ++b) {
      stats.first_delay_histogram[b] += local.hist[b];
    }
    stats.events_broken_within_hour += local.within_hour;
  }
  return stats;
}

FirstReportStats ComputeFirstReportsOnEvents(const engine::Database& db,
                                             std::size_t events_begin,
                                             std::size_t events_end,
                                             int histogram_bins,
                                             const util::CancelToken* cancel) {
  const std::size_t ns = db.num_sources();
  const auto bins = static_cast<std::size_t>(histogram_bins);
  FirstReportStats stats;
  stats.first_reports.assign(ns, 0);
  stats.first_delay_histogram.assign(bins, 0);
  stats.repeat_events.assign(ns, 0);
  stats.repeat_articles.assign(ns, 0);
  events_end = std::min(events_end, db.num_events());
  if (events_begin >= events_end) return stats;
  FirstReportLocal local;
  local.EnsureSized(ns, bins);
  FirstReportEventsRange(db, IndexRange{events_begin, events_end}, local,
                         cancel);
  stats.first_reports = std::move(local.first_reports);
  stats.first_delay_histogram = std::move(local.hist);
  stats.repeat_events = std::move(local.repeat_events);
  stats.repeat_articles = std::move(local.repeat_articles);
  stats.events_broken_within_hour = local.within_hour;
  return stats;
}

}  // namespace gdelt::analysis
