// Country-level analyses (paper Sections VI-C and VI-D).
//
// Co-reporting between countries (Table V): Jaccard over the sets of
// events that each country's press reported on. A country "reports" an
// event when any source attributed to it (by TLD) published an article.
//
// Cross-reporting (Tables VI/VII, Fig 8) lives in engine/queries.hpp as
// the headline aggregated query; this header adds the Jaccard analysis.
#pragma once

#include <cstdint>
#include <vector>

#include "engine/database.hpp"
#include "util/cancel.hpp"

namespace gdelt::analysis {

/// Country-by-country co-reporting counts.
struct CountryCoReport {
  std::size_t n = 0;                        ///< number of countries
  std::vector<std::uint64_t> event_counts;  ///< e_c: events reported by c
  std::vector<std::uint64_t> pair_counts;   ///< e_cd (dense n*n, symmetric)

  std::uint64_t Pair(std::size_t c, std::size_t d) const noexcept {
    return pair_counts[c * n + d];
  }
  /// Jaccard co-reporting factor between countries c and d.
  double Jaccard(std::size_t c, std::size_t d) const noexcept {
    const double e_cd = static_cast<double>(Pair(c, d));
    const double denom = static_cast<double>(event_counts[c]) +
                         static_cast<double>(event_counts[d]) - e_cd;
    return denom <= 0.0 ? 0.0 : e_cd / denom;
  }
};

/// Computes country co-reporting over all events. Parallel over events;
/// each event's publisher-country set is packed into a 64-bit mask
/// (the registry is <= 64 countries by design; statically asserted).
CountryCoReport ComputeCountryCoReporting(
    const engine::Database& db, const util::CancelToken* cancel = nullptr);

/// Partial-aggregate kernel for scatter-gather serving: the same counts
/// accumulated over only the events in [events_begin, events_end).
/// Summing pair_counts of a partition of the event axis (and re-deriving
/// event_counts from the diagonal) reproduces ComputeCountryCoReporting
/// exactly.
CountryCoReport ComputeCountryCoReportingOnEvents(
    const engine::Database& db, std::size_t events_begin,
    std::size_t events_end, const util::CancelToken* cancel = nullptr);

}  // namespace gdelt::analysis
