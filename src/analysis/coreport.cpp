#include "analysis/coreport.hpp"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "convert/binary_format.hpp"
#include "engine/queries.hpp"
#include "parallel/morsel.hpp"
#include "parallel/parallel.hpp"
#include "trace/trace.hpp"

namespace gdelt::analysis {
namespace {

/// Maps source id -> matrix slot (-1 = not selected).
std::vector<std::int32_t> SlotMap(const engine::Database& db,
                                  std::span<const std::uint32_t> subset) {
  std::vector<std::int32_t> slot(db.num_sources(), -1);
  if (subset.empty()) {
    for (std::uint32_t s = 0; s < db.num_sources(); ++s) {
      slot[s] = static_cast<std::int32_t>(s);
    }
  } else {
    for (std::size_t k = 0; k < subset.size(); ++k) {
      slot[subset[k]] = static_cast<std::int32_t>(k);
    }
  }
  return slot;
}

/// Selected matrix slots of the sources reporting event e. The memoized
/// index already holds the distinct sorted source ids, so this is a pure
/// filter-and-map: the result is distinct but, under an arbitrary subset
/// ordering, not necessarily ascending — pair updates use (min, max).
void SelectSlots(const CsrSetIndex& index,
                 const std::vector<std::int32_t>& slot, std::uint32_t e,
                 std::vector<std::uint32_t>& out) {
  out.clear();
  for (const std::uint32_t s : index.ValuesOf(e)) {
    const std::int32_t k = slot[s];
    if (k >= 0) out.push_back(static_cast<std::uint32_t>(k));
  }
}

/// Packs an unordered slot pair into the upper-triangular key i <= j.
inline std::uint64_t UpperKey(std::uint32_t a, std::uint32_t b) noexcept {
  const std::uint32_t i = std::min(a, b);
  const std::uint32_t j = std::max(a, b);
  return static_cast<std::uint64_t>(i) << 32 | j;
}

/// Copies the upper triangle (including diagonal) onto the lower one.
void MirrorLowerTriangle(std::uint32_t* counts, std::size_t n) {
  ParallelFor(n, [&](std::size_t i) {
    for (std::size_t j = 0; j < i; ++j) {
      counts[i * n + j] = counts[j * n + i];
    }
  });
}

/// Dense pair-count accumulation for events [r.begin, r.end). `cancel`
/// is polled every 256 events; morsel bodies pass nullptr (the pool
/// already polls per morsel), serial range kernels pass their token.
void DenseEventsRange(const CsrSetIndex& index,
                      const std::vector<std::int32_t>& slot, std::size_t n,
                      IndexRange r, std::vector<std::uint32_t>& slots,
                      std::vector<std::uint32_t>& local,
                      const util::CancelToken* cancel = nullptr) {
  for (std::size_t e = r.begin; e < r.end; ++e) {
    if ((e & 255) == 0 && util::Cancelled(cancel)) return;
    SelectSlots(index, slot, static_cast<std::uint32_t>(e), slots);
    for (std::size_t a = 0; a < slots.size(); ++a) {
      ++local[static_cast<std::size_t>(slots[a]) * n + slots[a]];
      for (std::size_t b = a + 1; b < slots.size(); ++b) {
        const std::uint64_t key = UpperKey(slots[a], slots[b]);
        ++local[(key >> 32) * n + (key & 0xFFFFFFFFu)];
      }
    }
  }
}

/// Tiled kernel, dense flavor: each worker accumulates into a private
/// n*n matrix (upper triangle only), merged deterministically in
/// part/slot order (integer sums commute, so work stealing cannot
/// change the result).
void TiledDense(const engine::Database& db, const CsrSetIndex& index,
                const std::vector<std::int32_t>& slot, std::size_t n,
                std::size_t num_parts, const TiledCoReportOptions& options,
                CoReportMatrix& matrix) {
  std::vector<std::vector<std::uint32_t>> locals;
  {
    TRACE_SPAN("coreport.tiles");
    if (options.use_morsel_pool) {
      locals.resize(parallel::PoolSlots());
      std::vector<std::vector<std::uint32_t>> scratch(parallel::PoolSlots());
      parallel::PoolParallelFor(
          db.num_events(),
          [&](IndexRange r, std::size_t s) {
            auto& local = locals[s];
            if (local.size() != n * n) local.assign(n * n, 0);
            DenseEventsRange(index, slot, n, r, scratch[s], local);
          },
          /*morsel_rows=*/0, options.cancel);
    } else {
      const auto parts = SplitRange(db.num_events(), num_parts);
      locals.resize(parts.size());
      ParallelFor(parts.size(), [&](std::size_t p) {
        auto& local = locals[p];
        local.assign(n * n, 0);
        std::vector<std::uint32_t> slots;
        DenseEventsRange(index, slot, n, parts[p], slots, local,
                         options.cancel);
      });
    }
  }
  TRACE_SPAN("coreport.merge");
  MergeTiledPartials(std::span<std::uint32_t>(matrix.mutable_counts()),
                     locals, options.tile_elems);
}

/// Tiled kernel, sparse flavor for large n: per-part hash accumulation
/// compressed to key-sorted runs, then merged into the dense result by
/// disjoint row tiles — each tile is written by exactly one task, runs are
/// visited in part order, so the merge is atomic-free and deterministic.
void TiledSparse(const engine::Database& db, const CsrSetIndex& index,
                 const std::vector<std::int32_t>& slot, std::size_t n,
                 std::size_t num_parts, const TiledCoReportOptions& options,
                 CoReportMatrix& matrix) {
  using Run = std::vector<std::pair<std::uint64_t, std::uint32_t>>;
  std::vector<Run> runs;
  if (options.use_morsel_pool) {
    // Per-slot hash accumulation across morsels, compressed to sorted
    // runs afterwards. The tile merge below visits runs in slot order,
    // and per-tile sums commute, so the counts match the OpenMP flavor.
    std::vector<std::unordered_map<std::uint64_t, std::uint32_t>> accs(
        parallel::PoolSlots());
    std::vector<std::vector<std::uint32_t>> scratch(parallel::PoolSlots());
    parallel::PoolParallelFor(
        db.num_events(),
        [&](IndexRange r, std::size_t s) {
          auto& acc = accs[s];
          auto& slots = scratch[s];
          for (std::size_t e = r.begin; e < r.end; ++e) {
            SelectSlots(index, slot, static_cast<std::uint32_t>(e), slots);
            for (std::size_t a = 0; a < slots.size(); ++a) {
              ++acc[UpperKey(slots[a], slots[a])];
              for (std::size_t b = a + 1; b < slots.size(); ++b) {
                ++acc[UpperKey(slots[a], slots[b])];
              }
            }
          }
        },
        /*morsel_rows=*/0, options.cancel);
    runs.resize(accs.size());
    parallel::PoolParallelFor(
        accs.size(),
        [&](IndexRange r, std::size_t) {
          for (std::size_t p = r.begin; p < r.end; ++p) {
            runs[p].assign(accs[p].begin(), accs[p].end());
            std::sort(runs[p].begin(), runs[p].end());
          }
        },
        /*morsel_rows=*/1, options.cancel);
  } else {
    const auto parts = SplitRange(db.num_events(), num_parts);
    runs.resize(parts.size());
    ParallelFor(parts.size(), [&](std::size_t p) {
      std::unordered_map<std::uint64_t, std::uint32_t> acc;
      std::vector<std::uint32_t> slots;
      for (std::size_t e = parts[p].begin; e < parts[p].end; ++e) {
        if ((e & 255) == 0 && util::Cancelled(options.cancel)) break;
        SelectSlots(index, slot, static_cast<std::uint32_t>(e), slots);
        for (std::size_t a = 0; a < slots.size(); ++a) {
          ++acc[UpperKey(slots[a], slots[a])];
          for (std::size_t b = a + 1; b < slots.size(); ++b) {
            ++acc[UpperKey(slots[a], slots[b])];
          }
        }
      }
      runs[p].assign(acc.begin(), acc.end());
      std::sort(runs[p].begin(), runs[p].end());
    });
  }

  auto* counts = matrix.mutable_counts().data();
  const std::size_t tile_rows =
      std::max<std::size_t>(1, options.tile_elems / std::max<std::size_t>(n, 1));
  const std::size_t num_tiles = (n + tile_rows - 1) / tile_rows;
  const auto merge_tile = [&](std::size_t t) {
    const std::uint64_t row_begin = t * tile_rows;
    const std::uint64_t row_end =
        std::min<std::uint64_t>(n, row_begin + tile_rows);
    const std::uint64_t key_begin = row_begin << 32;
    const std::uint64_t key_end = row_end << 32;
    for (const Run& run : runs) {
      auto it = std::lower_bound(
          run.begin(), run.end(), key_begin,
          [](const auto& entry, std::uint64_t key) { return entry.first < key; });
      for (; it != run.end() && it->first < key_end; ++it) {
        counts[(it->first >> 32) * n + (it->first & 0xFFFFFFFFu)] += it->second;
      }
    }
  };
  if (options.use_morsel_pool) {
    parallel::PoolParallelFor(
        num_tiles,
        [&](IndexRange r, std::size_t) {
          for (std::size_t t = r.begin; t < r.end; ++t) merge_tile(t);
        },
        /*morsel_rows=*/1, options.cancel);
  } else {
    ParallelFor(num_tiles, merge_tile);
  }
}

}  // namespace

CoReportMatrix::CoReportMatrix(std::size_t n) : n_(n), counts_(n * n, 0) {}

CoReportMatrix ComputeCoReporting(const engine::Database& db,
                                  std::span<const std::uint32_t> subset,
                                  const TiledCoReportOptions& options) {
  TRACE_SPAN("coreport.compute");
  const auto slot = SlotMap(db, subset);
  const std::size_t n = subset.empty() ? db.num_sources() : subset.size();
  CoReportMatrix matrix(n);
  if (n == 0 || db.num_events() == 0) return matrix;
  const auto& index = [&]() -> decltype(db.event_distinct_sources()) {
    TRACE_SPAN("coreport.index");
    return db.event_distinct_sources();
  }();

  const auto num_parts = static_cast<std::size_t>(MaxThreads());
  // The pool path keeps one partial per pool slot (workers + callers),
  // so its footprint, not the OpenMP team's, drives the dense/sparse cut.
  const std::size_t num_partials =
      options.use_morsel_pool ? parallel::PoolSlots() : num_parts;
  const std::size_t dense_bytes = num_partials * n * n * sizeof(std::uint32_t);
  if (dense_bytes <= options.dense_partials_budget_bytes) {
    TiledDense(db, index, slot, n, num_parts, options, matrix);
  } else {
    TiledSparse(db, index, slot, n, num_parts, options, matrix);
  }
  MirrorLowerTriangle(matrix.mutable_counts().data(), n);
  return matrix;
}

CoReportMatrix ComputeCoReportingOnEvents(const engine::Database& db,
                                          std::span<const std::uint32_t> subset,
                                          std::size_t events_begin,
                                          std::size_t events_end,
                                          const util::CancelToken* cancel) {
  TRACE_SPAN("coreport.compute.partial");
  const auto slot = SlotMap(db, subset);
  const std::size_t n = subset.empty() ? db.num_sources() : subset.size();
  CoReportMatrix matrix(n);
  events_end = std::min(events_end, db.num_events());
  if (n == 0 || events_begin >= events_end) return matrix;
  const auto& index = db.event_distinct_sources();
  std::vector<std::uint32_t> slots;
  DenseEventsRange(index, slot, n, IndexRange{events_begin, events_end},
                   slots, matrix.mutable_counts(), cancel);
  MirrorLowerTriangle(matrix.mutable_counts().data(), n);
  return matrix;
}

CoReportMatrix ComputeCoReporting(const engine::Database& db,
                                  std::span<const std::uint32_t> subset,
                                  std::span<const std::uint64_t> rows,
                                  const util::CancelToken* cancel) {
  TRACE_SPAN("coreport.compute.filtered");
  const auto slot = SlotMap(db, subset);
  const std::size_t n = subset.empty() ? db.num_sources() : subset.size();
  CoReportMatrix matrix(n);
  if (n == 0 || rows.empty()) return matrix;

  const auto event_row = db.mention_event_row();
  const auto src = db.mention_source_id();

  // Distinct (event, slot) pairs over the selected mentions; the memoized
  // index cannot be used here because it covers all mentions.
  std::vector<std::uint64_t> pairs;
  pairs.reserve(rows.size());
  for (const std::uint64_t i : rows) {
    const std::uint32_t e = event_row[i];
    if (e == convert::kOrphanEventRow) continue;
    const std::int32_t k = slot[src[i]];
    if (k < 0) continue;
    pairs.push_back(static_cast<std::uint64_t>(e) << 32 |
                    static_cast<std::uint32_t>(k));
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());

  auto& counts = matrix.mutable_counts();
  std::size_t groups = 0;
  for (std::size_t a = 0; a < pairs.size();) {
    if ((groups++ & 255) == 0 && util::Cancelled(cancel)) break;
    const std::uint64_t ev = pairs[a] >> 32;
    std::size_t b = a;
    while (b < pairs.size() && (pairs[b] >> 32) == ev) ++b;
    for (std::size_t x = a; x < b; ++x) {
      const auto sx = static_cast<std::uint32_t>(pairs[x]);
      ++counts[static_cast<std::size_t>(sx) * n + sx];
      for (std::size_t y = x + 1; y < b; ++y) {
        const std::uint64_t key =
            UpperKey(sx, static_cast<std::uint32_t>(pairs[y]));
        ++counts[(key >> 32) * n + (key & 0xFFFFFFFFu)];
      }
    }
    a = b;
  }
  MirrorLowerTriangle(counts.data(), n);
  return matrix;
}

CoReportMatrix ComputeCoReportingDenseAtomic(
    const engine::Database& db, std::span<const std::uint32_t> subset) {
  const auto slot = SlotMap(db, subset);
  const std::size_t n = subset.empty() ? db.num_sources() : subset.size();
  CoReportMatrix matrix(n);
  if (n == 0) return matrix;
  const auto& index = db.event_distinct_sources();
  auto* counts = matrix.mutable_counts().data();

  // gdelt-lint: allow(raw-omp) — deliberate holdout: the contended-atomics
  // baseline of the representation ablation (bench_ablation_coreport_repr).
#pragma omp parallel
  {
    std::vector<std::uint32_t> slots;
    // gdelt-astcheck: allow(cancel-poll) — re-audited: still bench-only.
    // gdelt-lint: allow(cancel-blind-loop) — ablation holdout, never runs
    // under the server; benches want the uninterrupted full scan.
#pragma omp for schedule(dynamic, 256)
    for (std::int64_t e = 0; e < static_cast<std::int64_t>(db.num_events());
         ++e) {
      SelectSlots(index, slot, static_cast<std::uint32_t>(e), slots);
      // Update the shared symmetric matrix: diagonal carries e_i.
      for (std::size_t a = 0; a < slots.size(); ++a) {
        {
          std::uint32_t& diag =
              counts[static_cast<std::size_t>(slots[a]) * n + slots[a]];
#pragma omp atomic
          ++diag;
        }
        for (std::size_t b = a + 1; b < slots.size(); ++b) {
          const std::uint64_t key = UpperKey(slots[a], slots[b]);
          std::uint32_t& upper = counts[(key >> 32) * n + (key & 0xFFFFFFFFu)];
#pragma omp atomic
          ++upper;
        }
      }
    }
  }
  MirrorLowerTriangle(counts, n);
  return matrix;
}

CoReportMatrix ComputeCoReportingSparse(const engine::Database& db,
                                        std::span<const std::uint32_t> subset) {
  const auto slot = SlotMap(db, subset);
  const std::size_t n = subset.empty() ? db.num_sources() : subset.size();
  CoReportMatrix matrix(n);
  if (n == 0) return matrix;
  const auto& index = db.event_distinct_sources();

  // Per-thread sparse accumulation keyed by packed (i, j), merged at the
  // end. Same result as the dense path; trades atomics for hashing.
  const auto nt = static_cast<std::size_t>(MaxThreads());
  std::vector<std::unordered_map<std::uint64_t, std::uint32_t>> locals(nt);
  // gdelt-lint: allow(raw-omp) — deliberate holdout: the hash-based
  // baseline of the representation ablation (bench_ablation_coreport_repr).
#pragma omp parallel
  {
    const auto tid = static_cast<std::size_t>(omp_get_thread_num());
    auto& local = locals[tid];
    std::vector<std::uint32_t> slots;
    // gdelt-astcheck: allow(cancel-poll) — re-audited: still bench-only.
    // gdelt-lint: allow(cancel-blind-loop) — ablation holdout, never runs
    // under the server; benches want the uninterrupted full scan.
#pragma omp for schedule(dynamic, 256)
    for (std::int64_t e = 0; e < static_cast<std::int64_t>(db.num_events());
         ++e) {
      SelectSlots(index, slot, static_cast<std::uint32_t>(e), slots);
      for (std::size_t a = 0; a < slots.size(); ++a) {
        ++local[UpperKey(slots[a], slots[a])];
        for (std::size_t b = a + 1; b < slots.size(); ++b) {
          ++local[UpperKey(slots[a], slots[b])];
        }
      }
    }
  }
  auto& counts = matrix.mutable_counts();
  for (const auto& local : locals) {
    for (const auto& [key, count] : local) {
      const std::size_t i = key >> 32;
      const std::size_t j = key & 0xFFFFFFFFu;
      counts[i * n + j] += count;
    }
  }
  MirrorLowerTriangle(counts.data(), n);
  return matrix;
}

graph::SparseMatrix ComputeCoReportingTimeSliced(const engine::Database& db) {
  const std::size_t n = db.num_sources();
  const auto added = db.event_added_interval();
  const auto& index = db.event_distinct_sources();

  // Slice events by the quarter they entered the database.
  const auto w = engine::QuartersOf(db);
  const auto nq = static_cast<std::size_t>(std::max(w.count, 1));
  std::vector<std::vector<std::uint32_t>> slice_events(nq);
  // gdelt-astcheck: allow(cancel-poll) — re-audited: still bench-only.
  // gdelt-lint: allow(cancel-blind-loop) — time-sliced ablation kernel
  // (bench-only, no token plumbed); the slicing pass is cheap relative
  // to the per-slice matrix build.
  for (std::size_t e = 0; e < db.num_events(); ++e) {
    std::int64_t q =
        QuarterOfUnixSeconds(IntervalStartUnixSeconds(added[e])) - w.first;
    q = std::clamp<std::int64_t>(q, 0, static_cast<std::int64_t>(nq) - 1);
    slice_events[static_cast<std::size_t>(q)].push_back(
        static_cast<std::uint32_t>(e));
  }

  // One compressed sparse matrix per time slice (upper triangle + diag),
  // built in parallel across slices. The memoized index hands every event
  // its distinct sources already sorted, so keys come out ordered per
  // event without any per-event sort.
  std::vector<graph::SparseMatrix> slices(nq);
  // gdelt-lint: allow(raw-omp) — deliberate holdout: the paper's literal
  // time-sliced scale-out plan, kept on its own OpenMP team as published.
#pragma omp parallel
  {
#pragma omp for schedule(dynamic)
    for (std::int64_t qi = 0; qi < static_cast<std::int64_t>(nq); ++qi) {
      std::unordered_map<std::uint64_t, std::uint32_t> acc;
      for (const std::uint32_t e : slice_events[static_cast<std::size_t>(qi)]) {
        const auto slots = index.ValuesOf(e);
        for (std::size_t a = 0; a < slots.size(); ++a) {
          for (std::size_t b = a; b < slots.size(); ++b) {
            ++acc[static_cast<std::uint64_t>(slots[a]) << 32 | slots[b]];
          }
        }
      }
      // Compress this slice to CSR (sorted keys give sorted columns).
      std::vector<std::pair<std::uint64_t, std::uint32_t>> entries(
          acc.begin(), acc.end());
      std::sort(entries.begin(), entries.end());
      graph::SparseMatrix& m = slices[static_cast<std::size_t>(qi)];
      m.rows = n;
      m.cols = n;
      m.row_offsets.assign(n + 1, 0);
      m.col_index.reserve(entries.size());
      m.values.reserve(entries.size());
      for (const auto& [key, count] : entries) {
        ++m.row_offsets[(key >> 32) + 1];
        m.col_index.push_back(static_cast<std::uint32_t>(key));
        m.values.push_back(static_cast<double>(count));
      }
      for (std::size_t r = 0; r < n; ++r) {
        m.row_offsets[r + 1] += m.row_offsets[r];
      }
    }
  }

  // Assemble: sum the per-slice sparse matrices by merging row streams.
  graph::SparseMatrix global;
  global.rows = n;
  global.cols = n;
  global.row_offsets.assign(n + 1, 0);
  std::vector<std::vector<std::uint32_t>> row_cols(n);
  std::vector<std::vector<double>> row_vals(n);
  // gdelt-lint: allow(raw-omp) — deliberate holdout: assembly stage of the
  // time-sliced baseline above.
#pragma omp parallel
  {
    std::vector<double> acc(n, 0.0);
    std::vector<std::uint32_t> touched;
#pragma omp for schedule(dynamic, 64)
    for (std::int64_t r = 0; r < static_cast<std::int64_t>(n); ++r) {
      touched.clear();
      for (const auto& m : slices) {
        for (std::uint64_t k = m.row_offsets[r]; k < m.row_offsets[r + 1];
             ++k) {
          const std::uint32_t c = m.col_index[k];
          if (acc[c] == 0.0) touched.push_back(c);
          acc[c] += m.values[k];
        }
      }
      std::sort(touched.begin(), touched.end());
      auto& cols = row_cols[static_cast<std::size_t>(r)];
      auto& vals = row_vals[static_cast<std::size_t>(r)];
      for (const std::uint32_t c : touched) {
        cols.push_back(c);
        vals.push_back(acc[c]);
        acc[c] = 0.0;
      }
    }
  }
  for (std::size_t r = 0; r < n; ++r) {
    global.row_offsets[r + 1] = global.row_offsets[r] + row_cols[r].size();
  }
  global.col_index.reserve(global.row_offsets.back());
  global.values.reserve(global.row_offsets.back());
  for (std::size_t r = 0; r < n; ++r) {
    global.col_index.insert(global.col_index.end(), row_cols[r].begin(),
                            row_cols[r].end());
    global.values.insert(global.values.end(), row_vals[r].begin(),
                         row_vals[r].end());
  }
  // Mirror the upper triangle sparsely: build the transpose of the
  // strictly-upper part with a counting sort (columns stay sorted within
  // rows), then merge the two sorted row streams.
  graph::SparseMatrix lower;
  lower.rows = n;
  lower.cols = n;
  lower.row_offsets.assign(n + 1, 0);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::uint64_t k = global.row_offsets[r]; k < global.row_offsets[r + 1];
         ++k) {
      if (global.col_index[k] != r) ++lower.row_offsets[global.col_index[k] + 1];
    }
  }
  for (std::size_t r = 0; r < n; ++r) {
    lower.row_offsets[r + 1] += lower.row_offsets[r];
  }
  lower.col_index.resize(lower.row_offsets.back());
  lower.values.resize(lower.row_offsets.back());
  {
    std::vector<std::uint64_t> cursor(lower.row_offsets.begin(),
                                      lower.row_offsets.end() - 1);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::uint64_t k = global.row_offsets[r];
           k < global.row_offsets[r + 1]; ++k) {
        const std::uint32_t c = global.col_index[k];
        if (c == r) continue;
        lower.col_index[cursor[c]] = static_cast<std::uint32_t>(r);
        lower.values[cursor[c]] = global.values[k];
        ++cursor[c];
      }
    }
  }

  graph::SparseMatrix full;
  full.rows = n;
  full.cols = n;
  full.row_offsets.assign(n + 1, 0);
  for (std::size_t r = 0; r < n; ++r) {
    // Disjoint column sets (strictly-upper + diag vs strictly-lower), so
    // the merged row size is just the sum.
    full.row_offsets[r + 1] =
        full.row_offsets[r] +
        (global.row_offsets[r + 1] - global.row_offsets[r]) +
        (lower.row_offsets[r + 1] - lower.row_offsets[r]);
  }
  full.col_index.resize(full.row_offsets.back());
  full.values.resize(full.row_offsets.back());
  ParallelFor(n, [&](std::size_t r) {
    std::uint64_t at = full.row_offsets[r];
    std::uint64_t ku = global.row_offsets[r];
    std::uint64_t kl = lower.row_offsets[r];
    const std::uint64_t eu = global.row_offsets[r + 1];
    const std::uint64_t el = lower.row_offsets[r + 1];
    while (ku < eu || kl < el) {
      const bool take_lower =
          ku >= eu ||
          (kl < el && lower.col_index[kl] < global.col_index[ku]);
      if (take_lower) {
        full.col_index[at] = lower.col_index[kl];
        full.values[at] = lower.values[kl];
        ++kl;
      } else {
        full.col_index[at] = global.col_index[ku];
        full.values[at] = global.values[ku];
        ++ku;
      }
      ++at;
    }
  });
  return full;
}

}  // namespace gdelt::analysis
