// Tone and Goldstein-scale analytics over the Events table.
//
// GDELT codes every event with an average document tone and a Goldstein
// conflict-cooperation score. The paper's engine focuses on volume and
// timing, but tone is the database's most-used derived signal; these
// aggregations round the engine out (and exercise the f64 columns of the
// binary store).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "engine/database.hpp"
#include "engine/queries.hpp"

namespace gdelt::analysis {

/// Mean/count pair for incremental aggregation.
struct MeanAccumulator {
  double sum = 0.0;
  std::uint64_t count = 0;

  double Mean() const noexcept {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

/// Average event tone per located country (index = CountryId).
std::vector<MeanAccumulator> AverageToneByCountry(const engine::Database& db);

/// Average tone and Goldstein per CAMEO quad class (index 0 unused;
/// 1..4 = verbal/material cooperation, verbal/material conflict).
struct QuadClassTone {
  std::array<MeanAccumulator, 5> tone;
  std::array<MeanAccumulator, 5> goldstein;
};
QuadClassTone ToneByQuadClass(const engine::Database& db);

/// Average event tone per quarter (by DATEADDED).
struct QuarterlyTone {
  QuarterId first_quarter = 0;
  std::vector<MeanAccumulator> values;
};
QuarterlyTone QuarterlyAverageTone(const engine::Database& db);

}  // namespace gdelt::analysis
