#include "analysis/followreport.hpp"

#include <algorithm>

#include "engine/queries.hpp"
#include "parallel/parallel.hpp"
#include "trace/trace.hpp"

namespace gdelt::analysis {
namespace {

/// Per-worker scratch reused across the events of one morsel: subset
/// members that have already published on the current event, with their
/// first publication interval.
struct FollowScratch {
  std::vector<std::int64_t> first_pub;
  std::vector<std::uint32_t> seen;  // slots in first-publication order
};

/// Accumulates follow counts for events [r.begin, r.end) into `local`.
/// `cancel` is polled every 256 events; morsel bodies pass nullptr (the
/// pool already polls per morsel).
void FollowEventsRange(const engine::Database& db,
                       const std::vector<std::int32_t>& slot, std::size_t n,
                       IndexRange r, FollowScratch& scratch,
                       std::vector<std::uint64_t>& local,
                       const util::CancelToken* cancel = nullptr) {
  const auto src = db.mention_source_id();
  const auto when = db.mention_interval();
  const auto& index = db.event_distinct_sources();
  scratch.first_pub.resize(n);
  for (std::size_t e = r.begin; e < r.end; ++e) {
    if ((e & 255) == 0 && util::Cancelled(cancel)) return;
    // Prefilter on the memoized distinct-source list: most events have
    // no subset member at all, so their mention rows are never walked.
    bool any_member = false;
    for (const std::uint32_t s :
         index.ValuesOf(static_cast<std::uint32_t>(e))) {
      if (slot[s] >= 0) {
        any_member = true;
        break;
      }
    }
    if (!any_member) continue;
    const auto rows =
        db.mentions_by_event().RowsOf(static_cast<std::uint32_t>(e));
    if (rows.size() < 2) continue;
    scratch.seen.clear();
    for (const std::uint64_t row : rows) {
      const std::int32_t j = slot[src[row]];
      if (j < 0) continue;
      const std::int64_t t = when[row];
      // Count this article once per member that published strictly
      // earlier (including j itself on an earlier article).
      for (const std::uint32_t i : scratch.seen) {
        if (scratch.first_pub[i] < t) {
          ++local[i * n + static_cast<std::size_t>(j)];
        }
      }
      // Record j's first publication time.
      if (std::find(scratch.seen.begin(), scratch.seen.end(),
                    static_cast<std::uint32_t>(j)) == scratch.seen.end()) {
        scratch.seen.push_back(static_cast<std::uint32_t>(j));
        scratch.first_pub[static_cast<std::size_t>(j)] = t;
      }
    }
  }
}

}  // namespace

FollowReportMatrix ComputeFollowReporting(const engine::Database& db,
                                          std::span<const std::uint32_t> subset,
                                          parallel::Backend backend,
                                          const util::CancelToken* cancel) {
  TRACE_SPAN("followreport.compute");
  FollowReportMatrix result;
  result.n = subset.size();
  result.follow_counts.assign(result.n * result.n, 0);
  result.articles.assign(result.n, 0);

  std::vector<std::int32_t> slot(db.num_sources(), -1);
  for (std::size_t k = 0; k < subset.size(); ++k) {
    slot[subset[k]] = static_cast<std::int32_t>(k);
  }
  const auto per_source = engine::ArticlesPerSource(db);
  for (std::size_t k = 0; k < subset.size(); ++k) {
    result.articles[k] = per_source[subset[k]];
  }
  const std::size_t n = result.n;

  // Per-slot count matrices merged in slot order: no atomics on the hot
  // path and deterministic output under any scheduling (integer sums
  // commute across morsels).
  if (backend == parallel::Backend::kMorselPool) {
    const std::size_t slots = parallel::PoolSlots();
    std::vector<std::vector<std::uint64_t>> locals(slots);
    std::vector<FollowScratch> scratch(slots);
    parallel::PoolParallelFor(
        db.num_events(),
        [&](IndexRange r, std::size_t s) {
          auto& local = locals[s];
          if (local.size() != n * n) local.assign(n * n, 0);
          FollowEventsRange(db, slot, n, r, scratch[s], local);
        },
        /*morsel_rows=*/0, cancel);
    MergeTiledPartials(std::span<std::uint64_t>(result.follow_counts), locals);
    return result;
  }

  // Ablation baseline: private OpenMP team.
  const auto nt = static_cast<std::size_t>(MaxThreads());
  std::vector<std::vector<std::uint64_t>> locals(nt);
  std::vector<FollowScratch> scratch(nt);
  // gdelt-lint: allow(raw-omp) — deliberate holdout, the kOpenMp backend
  // of the morsel-pool migration (DESIGN.md section 5c).
#pragma omp parallel
  {
    const auto tid = static_cast<std::size_t>(omp_get_thread_num());
    auto& local = locals[tid];
    local.assign(n * n, 0);
#pragma omp for schedule(dynamic, 256)
    for (std::int64_t e = 0; e < static_cast<std::int64_t>(db.num_events());
         ++e) {
      if ((e & 255) == 0 && util::Cancelled(cancel)) continue;
      FollowEventsRange(db, slot, n,
                        IndexRange{static_cast<std::size_t>(e),
                                   static_cast<std::size_t>(e) + 1},
                        scratch[tid], local);
    }
  }
  MergeTiledPartials(std::span<std::uint64_t>(result.follow_counts), locals);
  return result;
}

FollowReportMatrix ComputeFollowReportingOnEvents(
    const engine::Database& db, std::span<const std::uint32_t> subset,
    std::size_t events_begin, std::size_t events_end,
    const util::CancelToken* cancel) {
  TRACE_SPAN("followreport.compute.partial");
  FollowReportMatrix result;
  result.n = subset.size();
  result.follow_counts.assign(result.n * result.n, 0);
  result.articles.assign(result.n, 0);

  std::vector<std::int32_t> slot(db.num_sources(), -1);
  for (std::size_t k = 0; k < subset.size(); ++k) {
    slot[subset[k]] = static_cast<std::int32_t>(k);
  }
  const auto per_source = engine::ArticlesPerSource(db);
  for (std::size_t k = 0; k < subset.size(); ++k) {
    result.articles[k] = per_source[subset[k]];
  }
  events_end = std::min(events_end, db.num_events());
  if (result.n == 0 || events_begin >= events_end) return result;
  FollowScratch scratch;
  FollowEventsRange(db, slot, result.n, IndexRange{events_begin, events_end},
                    scratch, result.follow_counts, cancel);
  return result;
}

}  // namespace gdelt::analysis
