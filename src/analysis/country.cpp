#include "analysis/country.hpp"

#include <bit>

#include "parallel/parallel.hpp"
#include "trace/trace.hpp"

namespace gdelt::analysis {

CountryCoReport ComputeCountryCoReporting(const engine::Database& db,
                                          const util::CancelToken* cancel) {
  TRACE_SPAN("country.coreport");
  const std::size_t nc = Countries().size();
  static_assert(sizeof(std::uint64_t) * 8 >= 64);
  // The 64-bit mask kernel requires the registry to fit one word.
  if (nc > 64) std::abort();

  const auto src = db.mention_source_id();
  const auto source_country = db.source_country();

  // Pass 1: publisher-country mask per event (parallel, disjoint writes).
  std::vector<std::uint64_t> masks(db.num_events(), 0);
  ParallelFor(
      db.num_events(),
      [&](std::size_t e) {
        if ((e & 255) == 0 && util::Cancelled(cancel)) return;
        std::uint64_t mask = 0;
        for (const std::uint64_t row :
             db.mentions_by_event().RowsOf(static_cast<std::uint32_t>(e))) {
          const std::uint16_t c = source_country[src[row]];
          if (c != kNoCountry) mask |= 1ull << c;
        }
        masks[e] = mask;
      },
      Schedule::kDynamic);

  // Pass 2: accumulate e_c and e_cd from masks with per-thread partials.
  CountryCoReport report;
  report.n = nc;
  report.event_counts.assign(nc, 0);
  report.pair_counts.assign(nc * nc, 0);

  const auto nt = static_cast<std::size_t>(MaxThreads());
  std::vector<std::vector<std::uint64_t>> local_pairs(nt);
  ParallelForChunks(masks.size(), [&](IndexRange r, int tid) {
    auto& local = local_pairs[static_cast<std::size_t>(tid)];
    local.assign(nc * nc, 0);
    for (std::size_t e = r.begin; e < r.end; ++e) {
      if ((e & 4095) == 0 && util::Cancelled(cancel)) return;
      std::uint64_t m1 = masks[e];
      while (m1) {
        const unsigned c = static_cast<unsigned>(std::countr_zero(m1));
        m1 &= m1 - 1;
        ++local[c * nc + c];  // diagonal = e_c
        std::uint64_t m2 = m1;  // strictly higher bits -> pairs once
        while (m2) {
          const unsigned d = static_cast<unsigned>(std::countr_zero(m2));
          m2 &= m2 - 1;
          ++local[c * nc + d];
        }
      }
    }
  });
  for (const auto& local : local_pairs) {
    if (local.empty()) continue;
    for (std::size_t i = 0; i < nc * nc; ++i) {
      report.pair_counts[i] += local[i];
    }
  }
  for (std::size_t c = 0; c < nc; ++c) {
    report.event_counts[c] = report.pair_counts[c * nc + c];
    for (std::size_t d = 0; d < c; ++d) {
      report.pair_counts[c * nc + d] = report.pair_counts[d * nc + c];
    }
  }
  return report;
}

CountryCoReport ComputeCountryCoReportingOnEvents(
    const engine::Database& db, std::size_t events_begin,
    std::size_t events_end, const util::CancelToken* cancel) {
  TRACE_SPAN("country.coreport.partial");
  const std::size_t nc = Countries().size();
  if (nc > 64) std::abort();

  const auto src = db.mention_source_id();
  const auto source_country = db.source_country();

  CountryCoReport report;
  report.n = nc;
  report.event_counts.assign(nc, 0);
  report.pair_counts.assign(nc * nc, 0);
  events_end = std::min(events_end, db.num_events());

  for (std::size_t e = events_begin; e < events_end; ++e) {
    if ((e & 255) == 0 && util::Cancelled(cancel)) break;
    std::uint64_t mask = 0;
    for (const std::uint64_t row :
         db.mentions_by_event().RowsOf(static_cast<std::uint32_t>(e))) {
      const std::uint16_t c = source_country[src[row]];
      if (c != kNoCountry) mask |= 1ull << c;
    }
    std::uint64_t m1 = mask;
    while (m1) {
      const unsigned c = static_cast<unsigned>(std::countr_zero(m1));
      m1 &= m1 - 1;
      ++report.pair_counts[c * nc + c];
      std::uint64_t m2 = m1;
      while (m2) {
        const unsigned d = static_cast<unsigned>(std::countr_zero(m2));
        m2 &= m2 - 1;
        ++report.pair_counts[c * nc + d];
      }
    }
  }
  for (std::size_t c = 0; c < nc; ++c) {
    report.event_counts[c] = report.pair_counts[c * nc + c];
    for (std::size_t d = 0; d < c; ++d) {
      report.pair_counts[c * nc + d] = report.pair_counts[d * nc + c];
    }
  }
  return report;
}

}  // namespace gdelt::analysis
