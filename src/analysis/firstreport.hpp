// First-reporter and repeat-coverage analysis — the follow-up research the
// paper sketches at the end of Section VI-E:
//
//   "Observed delay for the very first article from any source on a
//    particular topic might be relevant to reporting speediness and
//    potential news wildfires. Repeated articles on an event by a single
//    source might very well be an indicator of thorough and responsible
//    reporting. However, it could also be an indication of intentional
//    spreading of misinformation."
//
// This module measures both signals: per-source first-reporter counts
// (who breaks stories), the distribution of first-article delays over
// events (how fast the fastest coverage is), and per-source repeat-
// coverage rates (who re-publishes on the same event).
#pragma once

#include <cstdint>
#include <vector>

#include "engine/database.hpp"
#include "parallel/morsel.hpp"

namespace gdelt::analysis {

struct FirstReportStats {
  /// Events where source s published the earliest article (ties broken by
  /// capture order, as GDELT itself would).
  std::vector<std::uint64_t> first_reports;      ///< per source id
  /// Histogram over events of the first article's delay, power-of-two
  /// bins as in DelayMetricHistogram (bin 0 = delay 0, bin k = [2^(k-1),2^k)).
  std::vector<std::uint64_t> first_delay_histogram;
  /// Events whose first article arrived within 1 hour (4 intervals) —
  /// wildfire-relevant immediacy.
  std::uint64_t events_broken_within_hour = 0;

  /// Per source: number of (event, source) pairs with >= 2 articles.
  std::vector<std::uint64_t> repeat_events;      ///< per source id
  /// Per source: articles beyond the first per covered event.
  std::vector<std::uint64_t> repeat_articles;    ///< per source id

  /// Repeat-coverage rate of a source: repeat articles / total articles.
  double RepeatRate(std::uint32_t source,
                    std::uint64_t total_articles) const noexcept {
    return total_articles == 0
               ? 0.0
               : static_cast<double>(repeat_articles[source]) /
                     static_cast<double>(total_articles);
  }
};

/// Computes all first-reporter statistics in one pass over the event
/// index. Events whose first delay is negative (the Table II defect) are
/// excluded from the delay histogram but still count for first-reports.
/// Integer partials merged in scratch-slot order — bitwise identical on
/// both backends.
FirstReportStats ComputeFirstReports(
    const engine::Database& db, int histogram_bins = 18,
    parallel::Backend backend = parallel::Backend::kMorselPool,
    const util::CancelToken* cancel = nullptr);

/// Partial-aggregate kernel for scatter-gather serving: the same
/// statistics accumulated over only the events in
/// [events_begin, events_end). Every counter is an integer sum over
/// disjoint per-event contributions, so summing the stats of a
/// partition of the event axis reproduces ComputeFirstReports exactly.
FirstReportStats ComputeFirstReportsOnEvents(
    const engine::Database& db, std::size_t events_begin,
    std::size_t events_end, int histogram_bins = 18,
    const util::CancelToken* cancel = nullptr);

}  // namespace gdelt::analysis
