#include "analysis/delay.hpp"

#include <algorithm>
#include <cmath>

#include "parallel/parallel.hpp"
#include "trace/trace.hpp"

namespace gdelt::analysis {
namespace {

/// True median of a non-empty range (partially reorders it). Odd counts
/// return the middle element; even counts return the mean of the two middle
/// elements, floored to stay integral. A bare nth_element at n/2 would give
/// the *upper* median for even counts, which overstates the typical delay.
std::int64_t MedianInPlace(std::int64_t* begin, std::int64_t* end) {
  const auto n = static_cast<std::size_t>(end - begin);
  std::nth_element(begin, begin + n / 2, end);
  const std::int64_t upper = begin[n / 2];
  if (n % 2 != 0) return upper;
  const std::int64_t lower = *std::max_element(begin, begin + n / 2);
  return lower + (upper - lower) / 2;
}

}  // namespace

namespace {

/// Stats for one source; `delays` is reusable scratch.
void OneSourceDelayStats(const engine::Database& db,
                         std::span<const std::int64_t> when,
                         std::span<const std::int64_t> event_when,
                         std::uint32_t s, std::vector<std::int64_t>& delays,
                         DelayStats& st) {
  delays.clear();
  for (const std::uint64_t row : db.mentions_by_source().RowsOf(s)) {
    const std::int64_t d = when[row] - event_when[row];
    if (d >= 0) delays.push_back(d);
  }
  st.article_count = delays.size();
  if (delays.empty()) return;
  std::sort(delays.begin(), delays.end());
  st.min = delays.front();
  st.max = delays.back();
  st.median = MedianInPlace(delays.data(), delays.data() + delays.size());
  double sum = 0.0;
  for (const std::int64_t d : delays) sum += static_cast<double>(d);
  st.average = sum / static_cast<double>(delays.size());
}

}  // namespace

std::vector<DelayStats> PerSourceDelayStats(const engine::Database& db,
                                            parallel::Backend backend,
                                            const util::CancelToken* cancel) {
  TRACE_SPAN("delay.per_source");
  const auto when = db.mention_interval();
  const auto event_when = db.mention_event_interval();
  const std::size_t ns = db.num_sources();
  std::vector<DelayStats> stats(ns);
  db.mentions_by_source();  // force the memoized index outside the region

  if (backend == parallel::Backend::kMorselPool) {
    // Per-source work is skewed (article counts follow a power law), so
    // sources get small morsels: the pool's stealing does the balancing
    // the old schedule(dynamic, 16) did.
    std::vector<std::vector<std::int64_t>> scratch(parallel::PoolSlots());
    parallel::PoolParallelFor(
        ns,
        [&](IndexRange r, std::size_t slot) {
          auto& delays = scratch[slot];
          for (std::size_t s = r.begin; s < r.end; ++s) {
            OneSourceDelayStats(db, when, event_when,
                                static_cast<std::uint32_t>(s), delays,
                                stats[s]);
          }
        },
        /*morsel_rows=*/64, cancel);
    return stats;
  }

  // Ablation baseline: private OpenMP team.
  // gdelt-lint: allow(raw-omp) — deliberate holdout, the kOpenMp backend
  // of the morsel-pool migration (DESIGN.md section 5c).
#pragma omp parallel
  {
    std::vector<std::int64_t> delays;
#pragma omp for schedule(dynamic, 16)
    for (std::int64_t s = 0; s < static_cast<std::int64_t>(ns); ++s) {
      if ((s & 255) == 0 && util::Cancelled(cancel)) continue;
      OneSourceDelayStats(db, when, event_when, static_cast<std::uint32_t>(s),
                          delays, stats[static_cast<std::size_t>(s)]);
    }
  }
  return stats;
}

std::vector<DelayStats> PerSourceDelayStatsStrided(
    const engine::Database& db, std::uint32_t shard, std::uint32_t of,
    const util::CancelToken* cancel) {
  TRACE_SPAN("delay.per_source.partial");
  const auto when = db.mention_interval();
  const auto event_when = db.mention_event_interval();
  const std::size_t ns = db.num_sources();
  std::vector<DelayStats> stats(ns);
  db.mentions_by_source();
  std::vector<std::int64_t> delays;
  std::size_t visited = 0;
  for (std::size_t s = shard; s < ns; s += of) {
    if ((visited++ & 255) == 0 && util::Cancelled(cancel)) break;
    OneSourceDelayStats(db, when, event_when, static_cast<std::uint32_t>(s),
                        delays, stats[s]);
  }
  return stats;
}

std::vector<std::uint64_t> DelayMetricHistogram(
    const std::vector<DelayStats>& stats, DelayMetric metric, int num_bins) {
  std::vector<std::uint64_t> bins(static_cast<std::size_t>(num_bins), 0);
  for (const DelayStats& st : stats) {
    if (st.article_count == 0) continue;
    double value = 0.0;
    switch (metric) {
      case DelayMetric::kMin: value = static_cast<double>(st.min); break;
      case DelayMetric::kAverage: value = st.average; break;
      case DelayMetric::kMedian: value = static_cast<double>(st.median); break;
      case DelayMetric::kMax: value = static_cast<double>(st.max); break;
    }
    std::size_t bin = 0;
    if (value >= 1.0) {
      bin = 1 + static_cast<std::size_t>(std::log2(value));
    }
    bin = std::min(bin, bins.size() - 1);
    ++bins[bin];
  }
  return bins;
}

QuarterlyDelay QuarterlyDelayStats(const engine::Database& db) {
  TRACE_SPAN("delay.quarterly");
  const auto w = engine::QuartersOf(db);
  const auto quarters = engine::MentionQuarters(db);
  const auto when = db.mention_interval();
  const auto event_when = db.mention_event_interval();
  const auto nq = static_cast<std::size_t>(w.count);

  QuarterlyDelay result;
  result.first_quarter = w.first;
  result.average.assign(nq, 0.0);
  result.median.assign(nq, 0);
  if (nq == 0) return result;

  // Group delays by quarter (serial scatter after a parallel count), then
  // reduce each quarter independently in parallel.
  std::vector<std::uint64_t> counts =
      ParallelHistogram(quarters.size(), nq, [&](std::size_t i) {
        return static_cast<std::size_t>(quarters[i]);
      });
  std::vector<std::uint64_t> offsets(nq + 1, 0);
  for (std::size_t q = 0; q < nq; ++q) offsets[q + 1] = offsets[q] + counts[q];
  std::vector<std::int64_t> delays(quarters.size());
  std::vector<std::uint64_t> cursor(offsets.begin(), offsets.end() - 1);
  for (std::size_t i = 0; i < quarters.size(); ++i) {
    const auto q = static_cast<std::size_t>(quarters[i]);
    delays[cursor[q]++] = when[i] - event_when[i];
  }

  ParallelFor(nq, [&](std::size_t q) {
    auto* begin = delays.data() + offsets[q];
    auto* end = delays.data() + offsets[q + 1];
    // Exclude negative (defective) delays.
    end = std::partition(begin, end, [](std::int64_t d) { return d >= 0; });
    const auto n = static_cast<std::size_t>(end - begin);
    if (n == 0) return;
    double sum = 0.0;
    for (auto* p = begin; p != end; ++p) sum += static_cast<double>(*p);
    result.average[q] = sum / static_cast<double>(n);
    result.median[q] = MedianInPlace(begin, end);
  });
  return result;
}

QuarterlyDelay QuarterlyDelayStatsStrided(const engine::Database& db,
                                          std::uint32_t shard,
                                          std::uint32_t of) {
  TRACE_SPAN("delay.quarterly.partial");
  const auto w = engine::QuartersOf(db);
  const auto quarters = engine::MentionQuarters(db);
  const auto when = db.mention_interval();
  const auto event_when = db.mention_event_interval();
  const auto nq = static_cast<std::size_t>(w.count);

  QuarterlyDelay result;
  result.first_quarter = w.first;
  result.average.assign(nq, 0.0);
  result.median.assign(nq, 0);
  if (nq == 0) return result;

  // Replicate the full kernel's grouping byte-for-byte: the scatter fixes
  // the per-quarter delay order, which fixes the float summation order.
  std::vector<std::uint64_t> counts =
      ParallelHistogram(quarters.size(), nq, [&](std::size_t i) {
        return static_cast<std::size_t>(quarters[i]);
      });
  std::vector<std::uint64_t> offsets(nq + 1, 0);
  for (std::size_t q = 0; q < nq; ++q) offsets[q + 1] = offsets[q] + counts[q];
  std::vector<std::int64_t> delays(quarters.size());
  std::vector<std::uint64_t> cursor(offsets.begin(), offsets.end() - 1);
  for (std::size_t i = 0; i < quarters.size(); ++i) {
    const auto q = static_cast<std::size_t>(quarters[i]);
    delays[cursor[q]++] = when[i] - event_when[i];
  }

  for (std::size_t q = shard; q < nq; q += of) {
    auto* begin = delays.data() + offsets[q];
    auto* end = delays.data() + offsets[q + 1];
    end = std::partition(begin, end, [](std::int64_t d) { return d >= 0; });
    const auto n = static_cast<std::size_t>(end - begin);
    if (n == 0) continue;
    double sum = 0.0;
    for (auto* p = begin; p != end; ++p) sum += static_cast<double>(*p);
    result.average[q] = sum / static_cast<double>(n);
    result.median[q] = MedianInPlace(begin, end);
  }
  return result;
}

engine::QuarterSeries SlowArticlesPerQuarter(const engine::Database& db,
                                             std::int64_t threshold) {
  TRACE_SPAN("delay.slow_articles");
  const auto w = engine::QuartersOf(db);
  const auto quarters = engine::MentionQuarters(db);
  const auto when = db.mention_interval();
  const auto event_when = db.mention_event_interval();
  engine::QuarterSeries series;
  series.first_quarter = w.first;
  series.values = ParallelHistogram(
      quarters.size(), static_cast<std::size_t>(w.count),
      [&](std::size_t i) -> std::size_t {
        const std::int64_t d = when[i] - event_when[i];
        if (d <= threshold) return SIZE_MAX;
        return static_cast<std::size_t>(quarters[i]);
      });
  return series;
}

}  // namespace gdelt::analysis
