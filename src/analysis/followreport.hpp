// Follow-reporting analysis (paper Section VI-B, Table IV, Fig 7).
//
// f_ij = n_ij / n_j, where n_ij counts articles by site j on events that
// site i published about in an earlier capture interval, and n_j is the
// total number of articles j published. The diagonal counts follow-ups on
// a site's own earlier reporting.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "engine/database.hpp"
#include "parallel/morsel.hpp"

namespace gdelt::analysis {

/// Follow-reporting counts over an ordered subset of sources.
struct FollowReportMatrix {
  std::size_t n = 0;
  /// n_ij (first publisher i = row, follow-up publisher j = column).
  std::vector<std::uint64_t> follow_counts;
  /// n_j: total articles by each subset member across the whole dataset.
  std::vector<std::uint64_t> articles;

  std::uint64_t FollowCount(std::size_t i, std::size_t j) const noexcept {
    return follow_counts[i * n + j];
  }
  /// f_ij in [0, 1].
  double F(std::size_t i, std::size_t j) const noexcept {
    return articles[j] == 0 ? 0.0
                            : static_cast<double>(FollowCount(i, j)) /
                                  static_cast<double>(articles[j]);
  }
  /// Column sum of f (the "Sum" row of Table IV): fraction of j's articles
  /// that follow any subset member (multi-counted per leader, as in the
  /// paper where values can approach the number of leaders).
  double ColumnSum(std::size_t j) const noexcept {
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) sum += F(i, j);
    return sum;
  }
};

/// Computes follow-reporting over `subset` (matrix order = subset order).
/// An article counts as following i if i published on the same event in a
/// strictly earlier capture interval. Partial count matrices are merged
/// in scratch-slot order, so both backends are bitwise identical.
FollowReportMatrix ComputeFollowReporting(
    const engine::Database& db, std::span<const std::uint32_t> subset,
    parallel::Backend backend = parallel::Backend::kMorselPool,
    const util::CancelToken* cancel = nullptr);

/// Partial-aggregate kernel for scatter-gather serving: follow counts
/// accumulated over only the events in [events_begin, events_end).
/// `articles` is still the whole-dataset per-source total (every shard
/// reports the same values; the router checks they agree). Summing the
/// follow_counts of a partition of the event axis reproduces
/// ComputeFollowReporting exactly.
FollowReportMatrix ComputeFollowReportingOnEvents(
    const engine::Database& db, std::span<const std::uint32_t> subset,
    std::size_t events_begin, std::size_t events_end,
    const util::CancelToken* cancel = nullptr);

}  // namespace gdelt::analysis
