#include "analysis/distributions.hpp"

#include <cmath>

#include "parallel/parallel.hpp"

namespace gdelt::analysis {

std::vector<std::uint64_t> EventSizeDistribution(const engine::Database& db) {
  const auto counts = db.event_article_count();
  std::uint32_t max_count = 0;
  for (const std::uint32_t c : counts) max_count = std::max(max_count, c);
  return ParallelHistogram(counts.size(), max_count + 1,
                           [&](std::size_t e) -> std::size_t {
                             return counts[e];
                           });
}

double PowerLawAlphaMle(std::span<const std::uint64_t> samples,
                        std::uint64_t xmin) {
  if (xmin == 0) return 0.0;
  double log_sum = 0.0;
  std::uint64_t n = 0;
  for (const std::uint64_t x : samples) {
    if (x < xmin) continue;
    log_sum += std::log(static_cast<double>(x) / static_cast<double>(xmin));
    ++n;
  }
  if (n < 2 || log_sum <= 0.0) return 0.0;
  return 1.0 + static_cast<double>(n) / log_sum;
}

double EventSizePowerLawAlpha(const engine::Database& db, std::uint64_t xmin) {
  const auto counts = db.event_article_count();
  std::vector<std::uint64_t> samples;
  samples.reserve(counts.size());
  for (const std::uint32_t c : counts) samples.push_back(c);
  return PowerLawAlphaMle(samples, xmin);
}

double AverageArticlesPerEvent(const engine::Database& db) {
  return db.num_events() == 0
             ? 0.0
             : static_cast<double>(db.num_mentions()) /
                   static_cast<double>(db.num_events());
}

}  // namespace gdelt::analysis
