// Event-size distribution and power-law fitting (paper Fig 2).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "engine/database.hpp"

namespace gdelt::analysis {

/// events_with[k] = number of events that have exactly k articles
/// (index 0 unused; events always have >= 1 article).
std::vector<std::uint64_t> EventSizeDistribution(const engine::Database& db);

/// Continuous-MLE power-law exponent over samples >= xmin:
///   alpha = 1 + n / sum(ln(x_i / xmin)).
/// Returns 0 when fewer than 2 samples qualify.
double PowerLawAlphaMle(std::span<const std::uint64_t> samples,
                        std::uint64_t xmin);

/// Fits alpha of the event-size distribution (xmin = 1 by default).
double EventSizePowerLawAlpha(const engine::Database& db,
                              std::uint64_t xmin = 1);

/// Weighted average articles per event (the paper's 3.36 in Table I);
/// equals mentions / events.
double AverageArticlesPerEvent(const engine::Database& db);

}  // namespace gdelt::analysis
