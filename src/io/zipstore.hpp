// Store-mode (method 0, uncompressed) PKZIP container reader/writer.
//
// GDELT distributes each 15-minute chunk as "<stamp>.export.CSV.zip" /
// "<stamp>.mentions.CSV.zip". The synthetic generator emits the same
// container format and the converter reads it back, so the whole
// "download -> unpack -> parse" pipeline of the paper is exercised
// end-to-end without external compression libraries. Only method 0 is
// supported; entries are CRC-checked on read.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "io/file.hpp"
#include "util/status.hpp"

namespace gdelt {

/// Streams entries into a .zip file (store mode).
class ZipWriter {
 public:
  /// Creates/truncates the archive file.
  Status Open(const std::string& path);

  /// Appends one entry. Names must be unique (checked at Finish).
  Status AddEntry(std::string_view name, std::string_view data);

  /// Writes central directory + end record and closes the file.
  Status Finish();

 private:
  struct Entry {
    std::string name;
    std::uint32_t crc = 0;
    std::uint64_t size = 0;
    std::uint64_t local_header_offset = 0;
  };

  BinaryWriter writer_;
  std::vector<Entry> entries_;
};

/// Parses a .zip archive from an in-memory buffer (caller keeps it alive).
class ZipReader {
 public:
  struct Entry {
    std::string name;
    std::uint32_t crc = 0;
    std::uint64_t size = 0;
    std::uint64_t local_header_offset = 0;
  };

  /// Parses the central directory. `buffer` must outlive the reader.
  static Result<ZipReader> Open(std::string_view buffer);

  const std::vector<Entry>& entries() const noexcept { return entries_; }

  /// Extracts one entry by name, verifying its CRC-32.
  Result<std::string> ReadEntry(std::string_view name) const;

  /// Extracts entry by index, verifying its CRC-32.
  Result<std::string> ReadEntry(std::size_t index) const;

 private:
  std::string_view buffer_;
  std::vector<Entry> entries_;
};

}  // namespace gdelt
