// CRC-32 (IEEE 802.3 / zlib polynomial), table-driven.
//
// Used for ZIP container entries and as the integrity checksum in the
// binary column-store footer.
#pragma once

#include <cstdint>
#include <string_view>

namespace gdelt {

/// Updates a running CRC-32 with more bytes. Start with crc = 0.
std::uint32_t Crc32Update(std::uint32_t crc, const void* data,
                          std::size_t size) noexcept;

/// One-shot CRC-32.
inline std::uint32_t Crc32(std::string_view data) noexcept {
  return Crc32Update(0, data.data(), data.size());
}

}  // namespace gdelt
