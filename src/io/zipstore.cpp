#include "io/zipstore.hpp"

#include <algorithm>
#include <cstring>
#include <set>

#include "io/crc32.hpp"
#include "io/fault.hpp"

namespace gdelt {
namespace {

constexpr std::uint32_t kLocalHeaderSig = 0x04034b50;
constexpr std::uint32_t kCentralHeaderSig = 0x02014b50;
constexpr std::uint32_t kEndOfCentralDirSig = 0x06054b50;
constexpr std::uint16_t kVersion = 20;
constexpr std::uint16_t kMethodStored = 0;

}  // namespace

Status ZipWriter::Open(const std::string& path) { return writer_.Open(path); }

Status ZipWriter::AddEntry(std::string_view name, std::string_view data) {
  if (name.empty() || name.size() > 0xFFFF) {
    return status::InvalidArgument("zip entry name empty or too long");
  }
  if (data.size() > 0xFFFFFFFFull) {
    return status::InvalidArgument("zip64 not supported (entry too large)");
  }
  Entry entry;
  entry.name = std::string(name);
  entry.crc = Crc32(data);
  entry.size = data.size();
  entry.local_header_offset = writer_.offset();

  GDELT_RETURN_IF_ERROR(writer_.WritePod(kLocalHeaderSig));
  GDELT_RETURN_IF_ERROR(writer_.WritePod(kVersion));               // version needed
  GDELT_RETURN_IF_ERROR(writer_.WritePod(std::uint16_t{0}));       // flags
  GDELT_RETURN_IF_ERROR(writer_.WritePod(kMethodStored));          // method
  GDELT_RETURN_IF_ERROR(writer_.WritePod(std::uint32_t{0}));       // dos time+date
  GDELT_RETURN_IF_ERROR(writer_.WritePod(entry.crc));
  const auto size32 = static_cast<std::uint32_t>(entry.size);
  GDELT_RETURN_IF_ERROR(writer_.WritePod(size32));                 // compressed
  GDELT_RETURN_IF_ERROR(writer_.WritePod(size32));                 // uncompressed
  const auto name_len = static_cast<std::uint16_t>(entry.name.size());
  GDELT_RETURN_IF_ERROR(writer_.WritePod(name_len));
  GDELT_RETURN_IF_ERROR(writer_.WritePod(std::uint16_t{0}));       // extra len
  GDELT_RETURN_IF_ERROR(writer_.WriteBytes(entry.name.data(), entry.name.size()));
  GDELT_RETURN_IF_ERROR(writer_.WriteBytes(data.data(), data.size()));

  entries_.push_back(std::move(entry));
  return Status::Ok();
}

Status ZipWriter::Finish() {
  std::set<std::string_view> names;
  for (const auto& e : entries_) {
    if (!names.insert(e.name).second) {
      return status::AlreadyExists("duplicate zip entry '" + e.name + "'");
    }
  }
  const std::uint64_t central_start = writer_.offset();
  for (const auto& e : entries_) {
    GDELT_RETURN_IF_ERROR(writer_.WritePod(kCentralHeaderSig));
    GDELT_RETURN_IF_ERROR(writer_.WritePod(kVersion));            // made by
    GDELT_RETURN_IF_ERROR(writer_.WritePod(kVersion));            // needed
    GDELT_RETURN_IF_ERROR(writer_.WritePod(std::uint16_t{0}));    // flags
    GDELT_RETURN_IF_ERROR(writer_.WritePod(kMethodStored));
    GDELT_RETURN_IF_ERROR(writer_.WritePod(std::uint32_t{0}));    // dos time+date
    GDELT_RETURN_IF_ERROR(writer_.WritePod(e.crc));
    const auto size32 = static_cast<std::uint32_t>(e.size);
    GDELT_RETURN_IF_ERROR(writer_.WritePod(size32));
    GDELT_RETURN_IF_ERROR(writer_.WritePod(size32));
    GDELT_RETURN_IF_ERROR(
        writer_.WritePod(static_cast<std::uint16_t>(e.name.size())));
    GDELT_RETURN_IF_ERROR(writer_.WritePod(std::uint16_t{0}));    // extra len
    GDELT_RETURN_IF_ERROR(writer_.WritePod(std::uint16_t{0}));    // comment len
    GDELT_RETURN_IF_ERROR(writer_.WritePod(std::uint16_t{0}));    // disk number
    GDELT_RETURN_IF_ERROR(writer_.WritePod(std::uint16_t{0}));    // internal attrs
    GDELT_RETURN_IF_ERROR(writer_.WritePod(std::uint32_t{0}));    // external attrs
    GDELT_RETURN_IF_ERROR(
        writer_.WritePod(static_cast<std::uint32_t>(e.local_header_offset)));
    GDELT_RETURN_IF_ERROR(writer_.WriteBytes(e.name.data(), e.name.size()));
  }
  const std::uint64_t central_size = writer_.offset() - central_start;
  GDELT_RETURN_IF_ERROR(writer_.WritePod(kEndOfCentralDirSig));
  GDELT_RETURN_IF_ERROR(writer_.WritePod(std::uint16_t{0}));      // this disk
  GDELT_RETURN_IF_ERROR(writer_.WritePod(std::uint16_t{0}));      // cd start disk
  const auto count = static_cast<std::uint16_t>(entries_.size());
  GDELT_RETURN_IF_ERROR(writer_.WritePod(count));                 // entries (disk)
  GDELT_RETURN_IF_ERROR(writer_.WritePod(count));                 // entries (total)
  GDELT_RETURN_IF_ERROR(
      writer_.WritePod(static_cast<std::uint32_t>(central_size)));
  GDELT_RETURN_IF_ERROR(
      writer_.WritePod(static_cast<std::uint32_t>(central_start)));
  GDELT_RETURN_IF_ERROR(writer_.WritePod(std::uint16_t{0}));      // comment len
  return writer_.Close();
}

Result<ZipReader> ZipReader::Open(std::string_view buffer) {
  // EOCD is at the very end when there is no archive comment; scan a short
  // window backwards to also accept commented archives.
  constexpr std::size_t kEocdMinSize = 22;
  if (buffer.size() < kEocdMinSize) {
    return status::DataLoss("zip too small for end-of-central-directory");
  }
  const std::size_t scan_limit =
      buffer.size() >= kEocdMinSize + 0xFFFF ? buffer.size() - 0xFFFF : 0;
  std::size_t eocd_pos = std::string_view::npos;
  for (std::size_t pos = buffer.size() - kEocdMinSize;; --pos) {
    std::uint32_t sig = 0;
    std::memcpy(&sig, buffer.data() + pos, sizeof(sig));
    if (sig == kEndOfCentralDirSig) {
      eocd_pos = pos;
      break;
    }
    if (pos == scan_limit) break;
  }
  if (eocd_pos == std::string_view::npos) {
    return status::DataLoss("zip end-of-central-directory not found");
  }

  BinaryReader eocd(buffer.data() + eocd_pos, buffer.size() - eocd_pos);
  std::uint32_t sig = 0;
  std::uint16_t u16 = 0;
  std::uint16_t total_entries = 0;
  std::uint32_t central_size = 0;
  std::uint32_t central_start = 0;
  GDELT_RETURN_IF_ERROR(eocd.ReadPod(sig));
  GDELT_RETURN_IF_ERROR(eocd.ReadPod(u16));            // this disk
  GDELT_RETURN_IF_ERROR(eocd.ReadPod(u16));            // cd start disk
  GDELT_RETURN_IF_ERROR(eocd.ReadPod(u16));            // entries this disk
  GDELT_RETURN_IF_ERROR(eocd.ReadPod(total_entries));
  GDELT_RETURN_IF_ERROR(eocd.ReadPod(central_size));
  GDELT_RETURN_IF_ERROR(eocd.ReadPod(central_start));
  if (central_start + static_cast<std::uint64_t>(central_size) >
      buffer.size()) {
    return status::DataLoss("zip central directory out of bounds");
  }

  ZipReader reader;
  reader.buffer_ = buffer;
  BinaryReader cd(buffer.data() + central_start, central_size);
  for (std::uint16_t i = 0; i < total_entries; ++i) {
    std::uint16_t method = 0;
    std::uint16_t name_len = 0;
    std::uint16_t extra_len = 0;
    std::uint16_t comment_len = 0;
    std::uint32_t u32 = 0;
    Entry entry;
    GDELT_RETURN_IF_ERROR(cd.ReadPod(sig));
    if (sig != kCentralHeaderSig) {
      return status::DataLoss("bad central directory entry signature");
    }
    GDELT_RETURN_IF_ERROR(cd.ReadPod(u16));            // made by
    GDELT_RETURN_IF_ERROR(cd.ReadPod(u16));            // needed
    GDELT_RETURN_IF_ERROR(cd.ReadPod(u16));            // flags
    GDELT_RETURN_IF_ERROR(cd.ReadPod(method));
    GDELT_RETURN_IF_ERROR(cd.ReadPod(u32));            // dos time+date
    GDELT_RETURN_IF_ERROR(cd.ReadPod(entry.crc));
    GDELT_RETURN_IF_ERROR(cd.ReadPod(u32));            // compressed size
    entry.size = u32;
    GDELT_RETURN_IF_ERROR(cd.ReadPod(u32));            // uncompressed size
    if (u32 != entry.size && method == kMethodStored) {
      return status::DataLoss("stored zip entry size mismatch");
    }
    GDELT_RETURN_IF_ERROR(cd.ReadPod(name_len));
    GDELT_RETURN_IF_ERROR(cd.ReadPod(extra_len));
    GDELT_RETURN_IF_ERROR(cd.ReadPod(comment_len));
    GDELT_RETURN_IF_ERROR(cd.ReadPod(u16));            // disk number
    GDELT_RETURN_IF_ERROR(cd.ReadPod(u16));            // internal attrs
    GDELT_RETURN_IF_ERROR(cd.ReadPod(u32));            // external attrs
    GDELT_RETURN_IF_ERROR(cd.ReadPod(u32));            // local header offset
    entry.local_header_offset = u32;
    GDELT_ASSIGN_OR_RETURN(const std::string_view name, cd.ReadView(name_len));
    entry.name = std::string(name);
    GDELT_RETURN_IF_ERROR(cd.Skip(extra_len));
    GDELT_RETURN_IF_ERROR(cd.Skip(comment_len));
    if (method != kMethodStored) {
      return status::Unimplemented("zip entry '" + entry.name +
                                   "' uses unsupported compression method");
    }
    reader.entries_.push_back(std::move(entry));
  }
  return reader;
}

Result<std::string> ZipReader::ReadEntry(std::string_view name) const {
  const auto it =
      std::find_if(entries_.begin(), entries_.end(),
                   [&](const Entry& e) { return e.name == name; });
  if (it == entries_.end()) {
    return status::NotFound("zip entry '" + std::string(name) + "' not found");
  }
  return ReadEntry(static_cast<std::size_t>(it - entries_.begin()));
}

Result<std::string> ZipReader::ReadEntry(std::size_t index) const {
  if (index >= entries_.size()) {
    return status::OutOfRange("zip entry index out of range");
  }
  const Entry& entry = entries_[index];
  if (entry.local_header_offset >= buffer_.size()) {
    return status::DataLoss("zip local header out of bounds");
  }
  BinaryReader local(buffer_.data() + entry.local_header_offset,
                     buffer_.size() - entry.local_header_offset);
  std::uint32_t sig = 0;
  std::uint16_t u16 = 0;
  std::uint16_t name_len = 0;
  std::uint16_t extra_len = 0;
  std::uint32_t u32 = 0;
  GDELT_RETURN_IF_ERROR(local.ReadPod(sig));
  if (sig != kLocalHeaderSig) {
    return status::DataLoss("bad local header signature for '" + entry.name +
                            "'");
  }
  GDELT_RETURN_IF_ERROR(local.ReadPod(u16));          // version needed
  GDELT_RETURN_IF_ERROR(local.ReadPod(u16));          // flags
  GDELT_RETURN_IF_ERROR(local.ReadPod(u16));          // method
  GDELT_RETURN_IF_ERROR(local.ReadPod(u32));          // dos time+date
  GDELT_RETURN_IF_ERROR(local.ReadPod(u32));          // crc
  GDELT_RETURN_IF_ERROR(local.ReadPod(u32));          // compressed size
  GDELT_RETURN_IF_ERROR(local.ReadPod(u32));          // uncompressed size
  GDELT_RETURN_IF_ERROR(local.ReadPod(name_len));
  GDELT_RETURN_IF_ERROR(local.ReadPod(extra_len));
  GDELT_RETURN_IF_ERROR(local.Skip(name_len));
  GDELT_RETURN_IF_ERROR(local.Skip(extra_len));
  GDELT_ASSIGN_OR_RETURN(std::string_view data, local.ReadView(entry.size));
  // Fault injection: a truncated entry read models a torn archive on disk.
  GDELT_ASSIGN_OR_RETURN(const std::size_t keep,
                         fault::Global().OnRead(entry.name, data.size()));
  if (keep < data.size()) {
    return status::DataLoss("fault-injected truncated zip entry read in '" +
                            entry.name + "'");
  }
  if (Crc32(data) != entry.crc) {
    return status::DataLoss("crc mismatch in zip entry '" + entry.name + "'");
  }
  return std::string(data);
}

}  // namespace gdelt
