#include "io/crc32.hpp"

#include <array>

namespace gdelt {
namespace {

constexpr std::array<std::uint32_t, 256> MakeCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr auto kCrcTable = MakeCrcTable();

}  // namespace

std::uint32_t Crc32Update(std::uint32_t crc, const void* data,
                          std::size_t size) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (std::size_t i = 0; i < size; ++i) {
    crc = kCrcTable[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace gdelt
