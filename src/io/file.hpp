// Buffered file I/O helpers for the converter and the binary table format.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.hpp"

namespace gdelt {

/// Reads an entire file into a string.
Result<std::string> ReadWholeFile(const std::string& path);

/// Writes (truncates) a file with the given bytes.
Status WriteWholeFile(const std::string& path, std::string_view data);

/// Fsyncs `tmp_path` and atomically renames it over `path` (same
/// filesystem). After this returns OK, `path` is either the old file or
/// the complete new one — never a torn mix, even across kill -9.
Status AtomicReplaceFile(const std::string& tmp_path,
                         const std::string& path);

/// Crash-safe WriteWholeFile: writes `path + ".tmp"`, fsyncs, renames.
Status WriteWholeFileAtomic(const std::string& path, std::string_view data);

/// Recursively removes a file or directory tree (no error if absent).
Status RemoveAll(const std::string& path);

/// True if the path exists and is a regular file.
bool FileExists(const std::string& path) noexcept;

/// Size of a regular file, or error.
Result<std::uint64_t> FileSize(const std::string& path);

/// Recursively creates directories (no error if they exist).
Status MakeDirectories(const std::string& path);

/// Lists regular files in a directory (non-recursive), sorted by name.
Result<std::vector<std::string>> ListDirectoryFiles(const std::string& path);

/// Sequential binary writer with an internal buffer and POD helpers.
/// All multi-byte values are little-endian (native on every target we
/// support; asserted in the table format header).
class BinaryWriter {
 public:
  BinaryWriter() = default;
  ~BinaryWriter();
  BinaryWriter(const BinaryWriter&) = delete;
  BinaryWriter& operator=(const BinaryWriter&) = delete;

  /// Opens (truncates) the file for writing.
  Status Open(const std::string& path);

  /// Appends raw bytes.
  Status WriteBytes(const void* data, std::size_t size);

  /// Appends a trivially-copyable value.
  template <typename T>
  Status WritePod(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    return WriteBytes(&value, sizeof(value));
  }

  /// Appends a length-prefixed (u32) string.
  Status WriteString(std::string_view s);

  /// Bytes written so far.
  std::uint64_t offset() const noexcept { return offset_; }

  /// Flushes and closes; returns any deferred write error.
  Status Close();

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  std::uint64_t offset_ = 0;
};

/// Sequential binary reader over an in-memory byte span (callers mmap or
/// slurp the file first; tables are consumed fully anyway).
class BinaryReader {
 public:
  BinaryReader(const void* data, std::size_t size) noexcept
      : data_(static_cast<const unsigned char*>(data)), size_(size) {}

  Status ReadBytes(void* out, std::size_t size) noexcept;

  template <typename T>
  Status ReadPod(T& out) noexcept {
    static_assert(std::is_trivially_copyable_v<T>);
    return ReadBytes(&out, sizeof(out));
  }

  /// Reads a length-prefixed (u32) string.
  Status ReadString(std::string& out);

  /// Returns a view over `size` bytes at the cursor and advances, without
  /// copying. The view aliases the underlying buffer.
  Result<std::string_view> ReadView(std::size_t size) noexcept;

  Status Skip(std::size_t size) noexcept;
  Status SeekTo(std::uint64_t offset) noexcept;

  std::uint64_t offset() const noexcept { return offset_; }
  std::size_t remaining() const noexcept { return size_ - offset_; }

 private:
  const unsigned char* data_;
  std::size_t size_;
  std::uint64_t offset_ = 0;
};

}  // namespace gdelt
