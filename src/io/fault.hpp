// Deterministic, process-wide I/O fault injection.
//
// The ingest tier must survive flaky mirrors, torn writes and kill -9
// without human babysitting; this module makes those failures cheap to
// reproduce. A single global Injector is threaded through the low-level
// I/O primitives (ReadWholeFile, BinaryWriter, MemoryMappedFile,
// ZipReader::ReadEntry). When armed it can fail the Nth open/read, hand
// back truncated read buffers, tear writes short, or hard-kill the
// process mid-run — all driven by one seed so the exact failure sequence
// replays bit-for-bit.
//
// Configuration is programmatic (tests) or via the GDELT_FAULT
// environment variable (tools, CI). Spec grammar:
//
//   spec    := clause (',' clause)* [':' seed]
//   clause  := op '@' N        -- fire exactly on the Nth op (1-based)
//            | op '~' M        -- fire each op with probability M/1000
//   op      := open | read | trunc | write | kill
//
// Examples: "open@3", "read~50:7", "write@2,trunc~10:42", "kill@25".
// `open`/`read` fail cleanly with IoError; `trunc` returns a short read
// buffer (torn read); `write` writes a prefix then errors (torn write);
// `kill` calls _Exit(137) at the Nth open — a deterministic kill -9.
//
// When disarmed (the default) every hook is a single relaxed atomic load.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/rng.hpp"
#include "util/status.hpp"
#include "util/sync.hpp"

namespace gdelt::fault {

/// Which I/O primitive a clause targets.
enum class Op : std::uint8_t { kOpen, kRead, kTruncate, kWrite, kKill };

std::string_view OpName(Op op) noexcept;

/// One failure rule.
struct Clause {
  Op op = Op::kOpen;
  std::uint64_t nth = 0;       ///< fire exactly on the Nth op; 0 = unused
  std::uint32_t permille = 0;  ///< else fire with probability permille/1000
};

/// A parsed fault specification.
struct Config {
  std::vector<Clause> clauses;
  std::uint64_t seed = 0;
};

/// Parses the GDELT_FAULT grammar documented above.
Result<Config> ParseSpec(std::string_view spec);

/// The process-wide injector. All hooks are safe to call concurrently.
class Injector {
 public:
  void Arm(const Config& config);
  void Disarm();
  bool armed() const noexcept {
    return armed_.load(std::memory_order_relaxed);
  }

  /// Hook before opening `path` (read or write side). May _Exit for a
  /// `kill` clause; returns IoError for an `open` clause.
  Status OnOpen(const std::string& path);

  /// Hook after reading `size` bytes. Returns the number of bytes the
  /// caller should keep: `size` normally, less for a torn read (`trunc`
  /// clause), or IoError for a `read` clause.
  Result<std::size_t> OnRead(const std::string& path, std::size_t size);

  /// Hook before writing `size` bytes. Returns `size` normally; for a
  /// `write` clause returns the prefix length the caller must write
  /// before failing with IoError (a torn write).
  Result<std::size_t> OnWrite(const std::string& path, std::size_t size);

  /// Total faults fired since the last Arm().
  std::uint64_t injected() const noexcept {
    return injected_.load(std::memory_order_relaxed);
  }

 private:
  /// True when `clause` fires on this op occurrence; advances rng_.
  bool ClauseFires(const Clause& clause, std::uint64_t count)
      GDELT_REQUIRES(mu_);

  std::atomic<bool> armed_{false};
  std::atomic<std::uint64_t> injected_{0};
  sync::Mutex mu_;
  Config config_ GDELT_GUARDED_BY(mu_);
  Xoshiro256 rng_ GDELT_GUARDED_BY(mu_){0};
  std::uint64_t op_counts_[3] GDELT_GUARDED_BY(mu_) = {};  // open, read, write
};

/// The process-wide injector, armed from GDELT_FAULT on first use.
Injector& Global();

/// RAII guard for tests: arms the global injector, disarms on scope exit.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(const Config& config) {
    Global().Arm(config);
  }
  /// Spec must parse; aborts otherwise (test-only convenience).
  explicit ScopedFaultInjection(std::string_view spec);
  ~ScopedFaultInjection() { Global().Disarm(); }
  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;
};

}  // namespace gdelt::fault
