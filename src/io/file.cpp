#include "io/file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>

#include "io/fault.hpp"

namespace gdelt {

namespace fs = std::filesystem;

Result<std::string> ReadWholeFile(const std::string& path) {
  GDELT_RETURN_IF_ERROR(fault::Global().OnOpen(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    return status::IoError("cannot open '" + path +
                           "': " + std::strerror(errno));
  }
  std::string data;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    data.append(buf, n);
  }
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) {
    return status::IoError("read error on '" + path + "'");
  }
  // Fault injection: a clean read error or a torn (short) buffer.
  GDELT_ASSIGN_OR_RETURN(const std::size_t keep,
                         fault::Global().OnRead(path, data.size()));
  if (keep < data.size()) data.resize(keep);
  return data;
}

Status WriteWholeFile(const std::string& path, std::string_view data) {
  BinaryWriter writer;
  GDELT_RETURN_IF_ERROR(writer.Open(path));
  GDELT_RETURN_IF_ERROR(writer.WriteBytes(data.data(), data.size()));
  return writer.Close();
}

Status AtomicReplaceFile(const std::string& tmp_path,
                         const std::string& path) {
  // Flush the temp file's data to stable storage before the rename makes
  // it visible; otherwise a power cut could expose an empty renamed file.
  const int fd = ::open(tmp_path.c_str(), O_RDONLY);
  if (fd < 0) {
    return status::IoError("cannot open '" + tmp_path +
                           "' for sync: " + std::strerror(errno));
  }
  const bool sync_failed = ::fsync(fd) != 0;
  ::close(fd);
  if (sync_failed) {
    return status::IoError("fsync failed on '" + tmp_path + "'");
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    return status::IoError("cannot rename '" + tmp_path + "' to '" + path +
                           "': " + std::strerror(errno));
  }
  // Persist the directory entry too (best effort; the rename itself is
  // already atomic against process death).
  const std::string dir = fs::path(path).parent_path().string();
  if (!dir.empty()) {
    const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd >= 0) {
      ::fsync(dfd);
      ::close(dfd);
    }
  }
  return Status::Ok();
}

Status WriteWholeFileAtomic(const std::string& path, std::string_view data) {
  const std::string tmp = path + ".tmp";
  GDELT_RETURN_IF_ERROR(WriteWholeFile(tmp, data));
  return AtomicReplaceFile(tmp, path);
}

Status RemoveAll(const std::string& path) {
  std::error_code ec;
  fs::remove_all(path, ec);
  if (ec) {
    return status::IoError("cannot remove '" + path + "': " + ec.message());
  }
  return Status::Ok();
}

bool FileExists(const std::string& path) noexcept {
  std::error_code ec;
  return fs::is_regular_file(path, ec);
}

Result<std::uint64_t> FileSize(const std::string& path) {
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  if (ec) {
    return status::IoError("cannot stat '" + path + "': " + ec.message());
  }
  return static_cast<std::uint64_t>(size);
}

Status MakeDirectories(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec) {
    return status::IoError("cannot create directory '" + path +
                           "': " + ec.message());
  }
  return Status::Ok();
}

Result<std::vector<std::string>> ListDirectoryFiles(const std::string& path) {
  std::error_code ec;
  if (!fs::is_directory(path, ec)) {
    return status::NotFound("not a directory: '" + path + "'");
  }
  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(path, ec)) {
    if (entry.is_regular_file(ec)) {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

BinaryWriter::~BinaryWriter() {
  if (file_) std::fclose(file_);
}

Status BinaryWriter::Open(const std::string& path) {
  if (file_) return status::FailedPrecondition("writer already open");
  GDELT_RETURN_IF_ERROR(fault::Global().OnOpen(path));
  file_ = std::fopen(path.c_str(), "wb");
  if (!file_) {
    return status::IoError("cannot create '" + path +
                           "': " + std::strerror(errno));
  }
  path_ = path;
  offset_ = 0;
  return Status::Ok();
}

Status BinaryWriter::WriteBytes(const void* data, std::size_t size) {
  if (!file_) return status::FailedPrecondition("writer not open");
  if (size == 0) return Status::Ok();
  // Fault injection: a torn write persists a strict prefix, then errors —
  // exactly what a full disk or a crashed NFS server leaves behind.
  GDELT_ASSIGN_OR_RETURN(const std::size_t keep,
                         fault::Global().OnWrite(path_, size));
  if (keep < size) {
    offset_ += std::fwrite(data, 1, keep, file_);
    return status::IoError("fault-injected torn write on '" + path_ + "'");
  }
  if (std::fwrite(data, 1, size, file_) != size) {
    return status::IoError("write failed on '" + path_ + "'");
  }
  offset_ += size;
  return Status::Ok();
}

Status BinaryWriter::WriteString(std::string_view s) {
  const auto len = static_cast<std::uint32_t>(s.size());
  GDELT_RETURN_IF_ERROR(WritePod(len));
  return WriteBytes(s.data(), s.size());
}

Status BinaryWriter::Close() {
  if (!file_) return Status::Ok();
  const bool flush_failed = std::fflush(file_) != 0;
  const bool close_failed = std::fclose(file_) != 0;
  file_ = nullptr;
  if (flush_failed || close_failed) {
    return status::IoError("close failed on '" + path_ + "'");
  }
  return Status::Ok();
}

Status BinaryReader::ReadBytes(void* out, std::size_t size) noexcept {
  if (size > remaining()) {
    return status::DataLoss("unexpected end of input");
  }
  // Zero-length columns hand us a null destination; memcpy forbids that
  // even for size 0.
  if (size != 0) std::memcpy(out, data_ + offset_, size);
  offset_ += size;
  return Status::Ok();
}

Status BinaryReader::ReadString(std::string& out) {
  std::uint32_t len = 0;
  GDELT_RETURN_IF_ERROR(ReadPod(len));
  if (len > remaining()) {
    return status::DataLoss("string length exceeds remaining input");
  }
  out.assign(reinterpret_cast<const char*>(data_ + offset_), len);
  offset_ += len;
  return Status::Ok();
}

Result<std::string_view> BinaryReader::ReadView(std::size_t size) noexcept {
  if (size > remaining()) {
    return status::DataLoss("unexpected end of input");
  }
  std::string_view view(reinterpret_cast<const char*>(data_ + offset_), size);
  offset_ += size;
  return view;
}

Status BinaryReader::Skip(std::size_t size) noexcept {
  if (size > remaining()) {
    return status::DataLoss("skip past end of input");
  }
  offset_ += size;
  return Status::Ok();
}

Status BinaryReader::SeekTo(std::uint64_t offset) noexcept {
  if (offset > size_) {
    return status::OutOfRange("seek past end of input");
  }
  offset_ = offset;
  return Status::Ok();
}

}  // namespace gdelt
