// Read-only memory-mapped files.
//
// The binary column store is loaded via mmap so that multi-GB tables appear
// in memory without a copy, and page-in happens lazily during the first
// parallel scan (combined with first-touch placement, see parallel/numa.hpp).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "util/status.hpp"

namespace gdelt {

/// RAII wrapper over an mmap'd read-only file.
class MemoryMappedFile {
 public:
  MemoryMappedFile() = default;
  ~MemoryMappedFile();
  MemoryMappedFile(MemoryMappedFile&& other) noexcept;
  MemoryMappedFile& operator=(MemoryMappedFile&& other) noexcept;
  MemoryMappedFile(const MemoryMappedFile&) = delete;
  MemoryMappedFile& operator=(const MemoryMappedFile&) = delete;

  /// Maps the whole file read-only. Empty files map to a null span.
  static Result<MemoryMappedFile> Open(const std::string& path);

  const char* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }
  std::string_view view() const noexcept { return {data_, size_}; }
  bool is_open() const noexcept { return data_ != nullptr || size_ == 0; }

 private:
  void Release() noexcept;

  char* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
};

}  // namespace gdelt
