#include "io/mmap.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "io/fault.hpp"

namespace gdelt {

MemoryMappedFile::~MemoryMappedFile() { Release(); }

MemoryMappedFile::MemoryMappedFile(MemoryMappedFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      mapped_(std::exchange(other.mapped_, false)) {}

MemoryMappedFile& MemoryMappedFile::operator=(
    MemoryMappedFile&& other) noexcept {
  if (this != &other) {
    Release();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    mapped_ = std::exchange(other.mapped_, false);
  }
  return *this;
}

void MemoryMappedFile::Release() noexcept {
  if (mapped_ && data_) {
    ::munmap(data_, size_);
  }
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
}

Result<MemoryMappedFile> MemoryMappedFile::Open(const std::string& path) {
  GDELT_RETURN_IF_ERROR(fault::Global().OnOpen(path));
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return status::IoError("cannot open '" + path +
                           "': " + std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return status::IoError("cannot stat '" + path +
                           "': " + std::strerror(errno));
  }
  MemoryMappedFile file;
  file.size_ = static_cast<std::size_t>(st.st_size);
  if (file.size_ > 0) {
    void* addr = ::mmap(nullptr, file.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      ::close(fd);
      return status::IoError("mmap failed on '" + path +
                             "': " + std::strerror(errno));
    }
    file.data_ = static_cast<char*>(addr);
    file.mapped_ = true;
  }
  ::close(fd);  // mapping persists after close
  return file;
}

}  // namespace gdelt
