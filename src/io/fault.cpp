#include "io/fault.hpp"

#include <cstdio>
#include <cstdlib>

#include "util/strings.hpp"

namespace gdelt::fault {
namespace {

/// Index into Injector::op_counts_ for the counter a given op shares.
/// kTruncate shares the read counter; kKill shares the open counter, so
/// "kill@N" and "open@N" refer to the same Nth operation.
int CounterOf(Op op) noexcept {
  switch (op) {
    case Op::kOpen:
    case Op::kKill:
      return 0;
    case Op::kRead:
    case Op::kTruncate:
      return 1;
    case Op::kWrite:
      return 2;
  }
  return 0;
}

Result<Op> ParseOp(std::string_view token) {
  if (token == "open") return Op::kOpen;
  if (token == "read") return Op::kRead;
  if (token == "trunc") return Op::kTruncate;
  if (token == "write") return Op::kWrite;
  if (token == "kill") return Op::kKill;
  return status::InvalidArgument("unknown fault op '" + std::string(token) +
                                 "' (want open|read|trunc|write|kill)");
}

Result<std::uint64_t> ParseNumber(std::string_view token,
                                  const char* what) {
  const auto n = ParseUint64(token);
  if (!n) {
    return status::InvalidArgument(std::string("bad fault ") + what + " '" +
                                   std::string(token) + "'");
  }
  return *n;
}

}  // namespace

std::string_view OpName(Op op) noexcept {
  switch (op) {
    case Op::kOpen: return "open";
    case Op::kRead: return "read";
    case Op::kTruncate: return "trunc";
    case Op::kWrite: return "write";
    case Op::kKill: return "kill";
  }
  return "?";
}

Result<Config> ParseSpec(std::string_view spec) {
  Config config;
  // Optional trailing ":seed".
  if (const auto colon = spec.rfind(':'); colon != std::string_view::npos) {
    GDELT_ASSIGN_OR_RETURN(config.seed,
                           ParseNumber(spec.substr(colon + 1), "seed"));
    spec = spec.substr(0, colon);
  }
  while (!spec.empty()) {
    const auto comma = spec.find(',');
    const std::string_view clause_text = spec.substr(0, comma);
    spec = comma == std::string_view::npos ? std::string_view{}
                                           : spec.substr(comma + 1);
    const auto at = clause_text.find('@');
    const auto tilde = clause_text.find('~');
    Clause clause;
    if (at != std::string_view::npos) {
      GDELT_ASSIGN_OR_RETURN(clause.op, ParseOp(clause_text.substr(0, at)));
      GDELT_ASSIGN_OR_RETURN(
          clause.nth, ParseNumber(clause_text.substr(at + 1), "count"));
      if (clause.nth == 0) {
        return status::InvalidArgument("fault count must be >= 1");
      }
    } else if (tilde != std::string_view::npos) {
      GDELT_ASSIGN_OR_RETURN(clause.op,
                             ParseOp(clause_text.substr(0, tilde)));
      GDELT_ASSIGN_OR_RETURN(
          const std::uint64_t permille,
          ParseNumber(clause_text.substr(tilde + 1), "permille"));
      if (permille == 0 || permille > 1000) {
        return status::InvalidArgument("fault permille must be in [1, 1000]");
      }
      clause.permille = static_cast<std::uint32_t>(permille);
    } else {
      return status::InvalidArgument("fault clause '" +
                                     std::string(clause_text) +
                                     "' lacks '@N' or '~M'");
    }
    config.clauses.push_back(clause);
  }
  if (config.clauses.empty()) {
    return status::InvalidArgument("empty fault spec");
  }
  return config;
}

bool Injector::ClauseFires(const Clause& clause, std::uint64_t count) {
  return clause.nth != 0 ? count == clause.nth
                         : UniformBelow(rng_, 1000) < clause.permille;
}

void Injector::Arm(const Config& config) {
  sync::MutexLock lock(mu_);
  config_ = config;
  rng_ = Xoshiro256(config.seed);
  op_counts_[0] = op_counts_[1] = op_counts_[2] = 0;
  injected_.store(0, std::memory_order_relaxed);
  armed_.store(!config.clauses.empty(), std::memory_order_relaxed);
}

void Injector::Disarm() {
  sync::MutexLock lock(mu_);
  config_.clauses.clear();
  armed_.store(false, std::memory_order_relaxed);
}

Status Injector::OnOpen(const std::string& path) {
  if (!armed()) return Status::Ok();
  sync::MutexLock lock(mu_);
  const std::uint64_t count = ++op_counts_[CounterOf(Op::kOpen)];
  bool open_fault = false;
  bool kill_fault = false;
  for (const Clause& clause : config_.clauses) {
    if (clause.op != Op::kOpen && clause.op != Op::kKill) continue;
    if (!ClauseFires(clause, count)) continue;
    (clause.op == Op::kKill ? kill_fault : open_fault) = true;
  }
  if (kill_fault) {
    // A deterministic kill -9: no unwinding, no atexit, no stdio flush.
    std::fprintf(stderr, "fault-injected kill at open #%llu ('%s')\n",
                 static_cast<unsigned long long>(count), path.c_str());
    std::_Exit(137);
  }
  if (open_fault) {
    injected_.fetch_add(1, std::memory_order_relaxed);
    return status::IoError("fault-injected open failure on '" + path + "'");
  }
  return Status::Ok();
}

Result<std::size_t> Injector::OnRead(const std::string& path,
                                     std::size_t size) {
  if (!armed()) return size;
  sync::MutexLock lock(mu_);
  const std::uint64_t count = ++op_counts_[CounterOf(Op::kRead)];
  for (const Clause& clause : config_.clauses) {
    if (clause.op != Op::kRead && clause.op != Op::kTruncate) continue;
    if (!ClauseFires(clause, count)) continue;
    injected_.fetch_add(1, std::memory_order_relaxed);
    if (clause.op == Op::kRead) {
      return status::IoError("fault-injected read failure on '" + path +
                             "'");
    }
    // Torn read: keep a strict prefix.
    return size == 0 ? 0 : static_cast<std::size_t>(UniformBelow(rng_, size));
  }
  return size;
}

Result<std::size_t> Injector::OnWrite(const std::string& path,
                                      std::size_t size) {
  if (!armed()) return size;
  sync::MutexLock lock(mu_);
  const std::uint64_t count = ++op_counts_[CounterOf(Op::kWrite)];
  for (const Clause& clause : config_.clauses) {
    if (clause.op != Op::kWrite) continue;
    if (!ClauseFires(clause, count)) continue;
    injected_.fetch_add(1, std::memory_order_relaxed);
    // Torn write: the caller persists a strict prefix, then fails.
    (void)path;
    return size == 0 ? 0 : static_cast<std::size_t>(UniformBelow(rng_, size));
  }
  return size;
}

Injector& Global() {
  static Injector* injector = [] {
    auto* inj = new Injector;
    if (const char* spec = std::getenv("GDELT_FAULT")) {
      auto config = ParseSpec(spec);
      if (config.ok()) {
        inj->Arm(*config);
      } else {
        std::fprintf(stderr, "ignoring bad GDELT_FAULT spec: %s\n",
                     config.status().ToString().c_str());
      }
    }
    return inj;
  }();
  return *injector;
}

ScopedFaultInjection::ScopedFaultInjection(std::string_view spec) {
  auto config = ParseSpec(spec);
  if (!config.ok()) {
    std::fprintf(stderr, "bad fault spec '%s': %s\n",
                 std::string(spec).c_str(),
                 config.status().ToString().c_str());
    std::abort();
  }
  Global().Arm(*config);
}

}  // namespace gdelt::fault
