#include "gen/world.hpp"

#include <algorithm>
#include <cassert>

#include "util/strings.hpp"

namespace gdelt::gen {
namespace {

/// Name stems for synthetic domains; combined with an index and the
/// country TLD they give unique, realistic-looking hosts.
constexpr const char* kStems[] = {
    "herald",  "gazette", "times",   "post",     "tribune", "echo",
    "courier", "press",   "journal", "observer", "mirror",  "chronicle",
    "star",    "daily",   "express", "standard", "argus",   "record",
    "sentinel", "bulletin",
};
constexpr std::size_t kNumStems = sizeof(kStems) / sizeof(kStems[0]);

std::string DomainName(std::uint32_t index, CountryId country) {
  const std::string_view tld = Countries()[country].tld;
  std::string host = kStems[index % kNumStems];
  host += std::to_string(index / kNumStems);
  host += '.';
  if (tld == "uk") {
    host += "co.uk";  // British papers use .co.uk
  } else {
    host += tld;
  }
  return host;
}

}  // namespace

CountryEventWeights MakeEventWeights() {
  // Approximates the "Reported Country" ranking of Table VI: the USA
  // accounts for ~40 % of located articles, the UK ~5 %, then
  // India/China/Australia/Canada/Nigeria/Russia/Israel/Pakistan at 1-3 %,
  // and a thin tail over the remaining registry.
  CountryEventWeights w;
  const auto& countries = Countries();
  w.weight.assign(countries.size(), 0.4);  // tail countries
  w.weight[country::kUSA] = 40.0;
  w.weight[country::kUK] = 5.0;
  w.weight[country::kIndia] = 2.9;
  w.weight[country::kChina] = 2.7;
  w.weight[country::kAustralia] = 2.9;
  w.weight[country::kCanada] = 2.4;
  w.weight[country::kNigeria] = 1.45;
  w.weight[country::kRussia] = 3.0;
  w.weight[country::kIsrael] = 2.5;
  w.weight[country::kPakistan] = 1.4;
  w.weight[country::kItaly] = 1.1;
  w.weight[country::kSouthAfrica] = 0.9;
  w.weight[country::kBangladesh] = 0.7;
  w.weight[country::kPhilippines] = 0.7;

  w.cumulative.resize(w.weight.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < w.weight.size(); ++i) {
    acc += w.weight[i];
    w.cumulative[i] = acc;
  }
  return w;
}

CountryPublishingWeights MakePublishingWeights() {
  // Publishing-side volume (Table VI columns): UK slightly above USA
  // (regional British papers push enormous article counts), Australia
  // third, then India and a long tail of English-language press.
  CountryPublishingWeights w;
  const auto& countries = Countries();
  w.weight.assign(countries.size(), 0.02);
  w.weight[country::kUK] = 34.0;
  w.weight[country::kUSA] = 26.0;
  w.weight[country::kAustralia] = 12.0;
  w.weight[country::kIndia] = 1.6;
  w.weight[country::kItaly] = 0.95;
  w.weight[country::kCanada] = 0.85;
  w.weight[country::kSouthAfrica] = 0.55;
  w.weight[country::kNigeria] = 0.45;
  w.weight[country::kBangladesh] = 0.38;
  w.weight[country::kPhilippines] = 0.30;
  return w;
}

World BuildWorld(const GeneratorConfig& config, Xoshiro256& rng) {
  assert(config.num_sources >=
         config.media_group_count * config.media_group_size);
  World world;
  world.first_quarter = QuarterOfCivil(config.start_date);
  // end_date is exclusive; the quarter containing (end - 1 interval) is the
  // last one. Using end_date directly is fine unless it is exactly at a
  // quarter boundary, so subtract one second for the computation.
  const auto last_q = QuarterOfUnixSeconds(ToUnixSeconds(config.end_date) - 1);
  world.num_quarters = last_q - world.first_quarter + 1;

  const auto publishing = MakePublishingWeights();
  std::vector<double> pub_cumulative(publishing.weight.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < publishing.weight.size(); ++i) {
    acc += publishing.weight[i];
    pub_cumulative[i] = acc;
  }

  world.sources.reserve(config.num_sources);
  world.group_members.resize(config.media_group_count);

  for (std::uint32_t i = 0; i < config.num_sources; ++i) {
    SourceModel src;
    const bool in_group =
        i < config.media_group_count * config.media_group_size;
    if (in_group) {
      const std::uint32_t group = i / config.media_group_size;
      src.media_group = static_cast<std::int32_t>(group);
      // Group 0 is the dominant UK regional group; later groups fall in
      // the USA and Australia, mirroring the anglophone ranking.
      src.country = group == 0 ? country::kUK
                   : group % 3 == 1 ? country::kUSA
                   : group % 3 == 2 ? country::kAustralia
                                    : country::kUK;
      world.group_members[group].push_back(i);
    } else {
      // Every country gets a small baseline press corps (one daily, one
      // periodical) before the rest is sampled by publishing weight —
      // real GDELT covers the whole English-language world, so even the
      // 50th-ranked country has sources reporting on the USA (Fig 8's
      // bright first row).
      const std::uint32_t ordinal =
          i - config.media_group_count * config.media_group_size;
      const auto num_countries =
          static_cast<std::uint32_t>(Countries().size());
      if (ordinal < 2 * num_countries) {
        src.country = static_cast<CountryId>(ordinal % num_countries);
        src.baseline_daily = ordinal < num_countries;
      } else {
        src.country =
            static_cast<CountryId>(SampleCumulative(pub_cumulative, rng));
      }
    }
    src.domain = DomainName(i, src.country);

    // Productivity model: media-group members are prolific content mills;
    // independents split into many tiny periodicals and Pareto-distributed
    // dailies (capped so no lucky independent outranks the flagship group).
    if (in_group) {
      src.productivity = 18.0 + 3.0 * UniformDouble(rng);
      if (src.media_group == 0) src.productivity *= 2.2;
    } else if (src.baseline_daily) {
      src.productivity = 1.0 + UniformDouble(rng);  // modest national daily
    } else if (Bernoulli(rng, config.periodical_fraction)) {
      src.productivity =
          config.periodical_weight * LogNormalDouble(rng, 0.0, 0.5);
    } else {
      const double pareto =
          std::pow(1.0 - UniformDouble(rng), -1.0 / config.daily_pareto_alpha);
      src.productivity = std::min(pareto, 30.0);
    }

    const double speed_draw = UniformDouble(rng);
    if (in_group) {
      src.speed = SpeedClass::kAverage;  // Table VIII: Top 10 are average
    } else if (speed_draw < config.fast_source_fraction) {
      src.speed = SpeedClass::kFast;
    } else if (speed_draw < config.fast_source_fraction +
                                config.slow_source_fraction) {
      src.speed = SpeedClass::kSlow;
    } else {
      src.speed = SpeedClass::kAverage;
    }

    src.active_quarters.resize(static_cast<std::size_t>(world.num_quarters));
    for (std::int32_t q = 0; q < world.num_quarters; ++q) {
      src.active_quarters[static_cast<std::size_t>(q)] =
          in_group || Bernoulli(rng, config.quarterly_activity_rate);
    }
    // Ensure every source is active somewhere so it appears in the data.
    if (std::none_of(src.active_quarters.begin(), src.active_quarters.end(),
                     [](bool b) { return b; })) {
      src.active_quarters[UniformBelow(
          rng, static_cast<std::uint64_t>(world.num_quarters))] = true;
    }
    world.sources.push_back(std::move(src));
  }

  world.event_weights = MakeEventWeights();
  return world;
}

}  // namespace gdelt::gen
