// In-memory representation of a generated raw dataset plus the ground
// truth the generator knows about it (used by tests to validate the whole
// convert -> load -> query pipeline, and by benches to label outputs).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gen/world.hpp"
#include "gtime/timestamp.hpp"

namespace gdelt::gen {

/// One synthetic GDELT event (row of the Events/"export" table).
struct EventRecord {
  std::uint64_t global_event_id = 0;
  IntervalId event_interval = 0;   ///< when the event happened
  IntervalId added_interval = 0;   ///< DATEADDED: first article's capture
  CountryId location = kNoCountry; ///< ActionGeo country (kNoCountry = untagged)
  std::string source_url;          ///< first article URL ("" = injected defect)
  double goldstein = 0.0;
  double avg_tone = 0.0;
  std::uint8_t quad_class = 1;
  std::uint32_t num_articles = 0;  ///< ground-truth mention count
  bool is_mega = false;
};

/// One synthetic article (row of the Mentions table).
struct MentionRecord {
  std::uint64_t global_event_id = 0;
  IntervalId event_interval = 0;
  IntervalId mention_interval = 0;
  std::uint32_t source_index = 0;  ///< into World::sources
  std::uint32_t article_seq = 0;   ///< per-event sequence for URL building
  std::uint8_t confidence = 100;
};

/// What the generator knows to be true about the dataset it made.
struct GroundTruth {
  std::uint64_t num_events = 0;
  std::uint64_t num_mentions = 0;
  std::uint64_t num_intervals = 0;       ///< timeline length in 15-min units
  std::uint32_t num_sources_modeled = 0; ///< world size (appearing may be fewer)
  std::uint64_t min_articles_per_event = 0;
  std::uint64_t max_articles_per_event = 0;
  /// Injected defect counts (should be re-discovered by the converter).
  std::uint32_t malformed_master_entries = 0;
  std::uint32_t missing_archives = 0;
  std::uint32_t missing_source_url = 0;
  std::uint32_t future_event_dates = 0;
  /// Articles per source index (world order), for Fig 6 cross-checks.
  std::vector<std::uint64_t> articles_per_source;
};

/// A complete generated dataset before serialization.
struct RawDataset {
  World world;
  std::vector<EventRecord> events;      ///< sorted by added_interval
  std::vector<MentionRecord> mentions;  ///< sorted by mention_interval
  GroundTruth truth;
  IntervalId first_interval = 0;        ///< timeline start
  IntervalId end_interval = 0;          ///< exclusive
};

/// Article URL for a mention (deterministic from its fields).
std::string MentionUrl(const World& world, const MentionRecord& m);

}  // namespace gdelt::gen
