#include "gen/generator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_map>

#include "util/strings.hpp"

namespace gdelt::gen {
namespace {

/// Per-quarter categorical samplers over sources (global and per-country),
/// weighted by productivity and restricted to quarter-active sources.
struct QuarterSamplers {
  // [quarter] -> parallel arrays (cumulative weight, source index)
  std::vector<std::vector<double>> global_cum;
  std::vector<std::vector<std::uint32_t>> global_ids;
  // [quarter][country] -> same, for home-biased draws
  std::vector<std::vector<std::vector<double>>> home_cum;
  std::vector<std::vector<std::vector<std::uint32_t>>> home_ids;
};

QuarterSamplers BuildSamplers(const World& world) {
  QuarterSamplers s;
  const auto nq = static_cast<std::size_t>(world.num_quarters);
  const std::size_t nc = Countries().size();
  s.global_cum.resize(nq);
  s.global_ids.resize(nq);
  s.home_cum.assign(nq, std::vector<std::vector<double>>(nc));
  s.home_ids.assign(nq, std::vector<std::vector<std::uint32_t>>(nc));
  for (std::size_t q = 0; q < nq; ++q) {
    double acc = 0.0;
    std::vector<double> home_acc(nc, 0.0);
    for (std::uint32_t i = 0; i < world.sources.size(); ++i) {
      const SourceModel& src = world.sources[i];
      if (!src.active_quarters[q]) continue;
      acc += src.productivity;
      s.global_cum[q].push_back(acc);
      s.global_ids[q].push_back(i);
      if (src.country != kNoCountry) {
        home_acc[src.country] += src.productivity;
        s.home_cum[q][src.country].push_back(home_acc[src.country]);
        s.home_ids[q][src.country].push_back(i);
      }
    }
  }
  return s;
}

std::uint32_t DrawFrom(const std::vector<double>& cum,
                       const std::vector<std::uint32_t>& ids,
                       Xoshiro256& rng) {
  const std::size_t at = SampleCumulative(cum, rng);
  return ids[at];
}

/// Discrete power-law sample on [1, cap]: P(A) ~ A^-alpha.
std::uint32_t SampleArticleCount(Xoshiro256& rng, double alpha,
                                 std::uint32_t cap) {
  double u = UniformDouble(rng);
  if (u >= 1.0) u = std::nextafter(1.0, 0.0);
  const double x = std::pow(1.0 - u, -1.0 / (alpha - 1.0));
  const auto a = static_cast<std::uint32_t>(x);
  return std::min(std::max<std::uint32_t>(a, 1), cap);
}

/// One publishing delay in 15-minute intervals.
IntervalId SampleDelay(const GeneratorConfig& cfg, SpeedClass speed,
                       double tail_prob, Xoshiro256& rng) {
  if (Bernoulli(rng, tail_prob)) {
    // Heavy-tail republication: week / month / year anniversaries (the
    // three outlier groups visible in Fig 9's maximum-delay plot).
    const double u = UniformDouble(rng);
    const double mode = u < 0.50 ? 672.0 : u < 0.85 ? 2880.0 : 35040.0;
    const double d = mode * LogNormalDouble(rng, 0.0, 0.06);
    return std::max<IntervalId>(1, static_cast<IntervalId>(std::llround(d)));
  }
  double mu = cfg.delay_lognormal_mu;
  double sigma = cfg.delay_lognormal_sigma;
  switch (speed) {
    case SpeedClass::kFast:
      mu = 1.45;   // median ~4 intervals = 1 h
      sigma = 0.65;
      break;
    case SpeedClass::kAverage:
      break;       // config body: median ~17 intervals ~ 4.2 h
    case SpeedClass::kSlow:
      mu = 6.0;    // median ~4 days
      sigma = 1.0;
      break;
  }
  const double d = LogNormalDouble(rng, mu, sigma);
  return std::max<IntervalId>(1, static_cast<IntervalId>(std::llround(d)));
}

/// Activity trend factor for a quarter (slight 2018-19 decline, Figs 3-5).
double DeclineFactor(const GeneratorConfig& cfg, QuarterId q) {
  const std::int32_t year = q / 4;
  if (year <= 2017) return 1.0;
  return std::pow(cfg.late_period_decline, year - 2017);
}

class Generator {
 public:
  explicit Generator(const GeneratorConfig& cfg)
      : cfg_(cfg), rng_(cfg.seed) {}

  RawDataset Run() {
    RawDataset ds;
    ds.world = BuildWorld(cfg_, rng_);
    ds.first_interval = IntervalOfCivil(cfg_.start_date);
    ds.end_interval = IntervalOfCivil(cfg_.end_date);
    const auto total =
        static_cast<std::uint64_t>(ds.end_interval - ds.first_interval);

    samplers_ = BuildSamplers(ds.world);
    // Normalized publishing share per country, used to scale the
    // home-country draw probability so the Table VII diagonal boost is a
    // uniform modest factor rather than exploding for small countries.
    {
      const auto pub = MakePublishingWeights();
      double total = 0.0;
      for (const double v : pub.weight) total += v;
      pub_share_.resize(pub.weight.size());
      for (std::size_t c = 0; c < pub.weight.size(); ++c) {
        pub_share_[c] = pub.weight[c] / total;
      }
    }
    // Agenda-share weights: the flagship group 0 receives ~5x the agenda
    // of any other group.
    group_agenda_cum_.clear();
    double agenda_acc = 0.0;
    for (std::size_t g = 0; g < ds.world.group_members.size(); ++g) {
      agenda_acc += g == 0 ? 5.0 : 1.0;
      group_agenda_cum_.push_back(agenda_acc);
    }

    // Precompute interval -> relative quarter (runs of equal value).
    quarter_of_.resize(total);
    for (std::uint64_t t = 0; t < total; ++t) {
      const QuarterId q = QuarterOfUnixSeconds(
          IntervalStartUnixSeconds(ds.first_interval + static_cast<IntervalId>(t)));
      quarter_of_[t] = q - ds.world.first_quarter;
    }

    next_event_id_ = 410000000ull;
    ds.truth.articles_per_source.assign(ds.world.sources.size(), 0);

    for (std::uint64_t t = 0; t < total; ++t) {
      const double decline = DeclineFactor(
          cfg_, ds.world.first_quarter + quarter_of_[t]);
      const std::uint64_t n =
          PoissonCount(rng_, cfg_.events_per_interval_mean * decline);
      for (std::uint64_t k = 0; k < n; ++k) {
        GenerateOrdinaryEvent(ds, static_cast<IntervalId>(t));
      }
    }
    PlantMegaEvents(ds, total);
    InjectRecordDefects(ds);
    Finalize(ds);
    return ds;
  }

 private:
  void GenerateOrdinaryEvent(RawDataset& ds, IntervalId rel_t) {
    const IntervalId abs_t = ds.first_interval + rel_t;
    const std::int32_t q = quarter_of_[static_cast<std::size_t>(rel_t)];

    EventRecord ev;
    ev.global_event_id = next_event_id_++;
    ev.event_interval = abs_t;
    // ~12 % of events carry no geotag (the paper notes local news is often
    // untagged); they are excluded from the country tables but still count
    // for everything else.
    ev.location = Bernoulli(rng_, 0.88)
                      ? static_cast<CountryId>(SampleCumulative(
                            ds.world.event_weights.cumulative, rng_))
                      : kNoCountry;
    ev.quad_class = static_cast<std::uint8_t>(1 + UniformBelow(rng_, 4));
    // Conflict events (CAMEO quad classes 3/4) carry negative tone and
    // Goldstein scores; cooperation is mildly positive — gives the tone
    // analytics real signal to find.
    const bool conflict = ev.quad_class >= 3;
    ev.goldstein = (conflict ? -4.0 : 3.0) + NormalDouble(rng_) * 3.0;
    ev.avg_tone = (conflict ? -3.5 : 1.0) + NormalDouble(rng_) * 2.5;

    // Media-group agenda: a share of all events (regardless of location —
    // the real Newsquest papers cover US stories heavily, cf. Table VI)
    // enters one group's shared agenda, creating the intra-group
    // co-reporting block of Table IV / Fig 7. The flagship UK group 0
    // gets the lion's share, which is what pushes its members to the top
    // of the publisher ranking (Fig 6).
    std::int32_t agenda_group = -1;
    agenda_participants_.clear();
    if (!ds.world.group_members.empty() && Bernoulli(rng_, 0.30)) {
      agenda_group = static_cast<std::int32_t>(
          SampleCumulative(group_agenda_cum_, rng_));
      // Only a subset of the group picks up any given agenda story; this
      // keeps individual member volume high while holding the pairwise
      // overlap (and so Table IV's f_ij) at the paper's modest level.
      for (const std::uint32_t m :
           ds.world.group_members[static_cast<std::size_t>(agenda_group)]) {
        if (Bernoulli(rng_, 0.35)) agenda_participants_.push_back(m);
      }
      if (agenda_participants_.empty()) agenda_group = -1;
    }

    const std::uint32_t target = SampleArticleCount(
        rng_, cfg_.event_popularity_alpha, cfg_.max_articles_per_event);
    const double tail_prob = TailProb(ds, abs_t);

    std::uint32_t emitted = 0;
    // First article: a quick report fixes DATEADDED.
    {
      const std::uint32_t src = DrawSource(q, ev.location, agenda_group);
      const IntervalId delay = 1 + static_cast<IntervalId>(UniformBelow(rng_, 3));
      if (!EmitMention(ds, ev, src, delay, emitted)) return;  // censored
      ev.added_interval = abs_t + delay;
      ev.source_url = MentionUrl(ds.world, ds.mentions.back());
    }
    for (std::uint32_t a = 1; a < target; ++a) {
      const std::uint32_t src = DrawSource(q, ev.location, agenda_group);
      const IntervalId delay =
          SampleDelay(cfg_, ds.world.sources[src].speed, tail_prob, rng_);
      EmitMention(ds, ev, src, delay, emitted);
      // Repeat articles by the same site (thorough reporting / syndication
      // refreshes) — these land on the diagonal of Table IV.
      if (Bernoulli(rng_, cfg_.repeat_article_rate)) {
        const IntervalId extra =
            delay + 1 +
            static_cast<IntervalId>(std::llround(LogNormalDouble(rng_, 1.5, 0.8)));
        EmitMention(ds, ev, src, extra, emitted);
      }
    }
    if (emitted == 0) return;
    ev.num_articles = emitted;
    ds.events.push_back(std::move(ev));
  }

  /// Chooses the publishing source for one article of an event.
  std::uint32_t DrawSource(std::int32_t q, CountryId location,
                           std::int32_t agenda_group) {
    if (agenda_group >= 0 && Bernoulli(rng_, 0.45)) {
      return agenda_participants_[UniformBelow(rng_,
                                               agenda_participants_.size())];
    }
    const auto qi = static_cast<std::size_t>(q);
    if (location != kNoCountry &&
        !samplers_.home_cum[qi][location].empty() &&
        Bernoulli(rng_, HomeShare(location))) {
      return DrawFrom(samplers_.home_cum[qi][location],
                      samplers_.home_ids[qi][location], rng_);
    }
    return DrawFrom(samplers_.global_cum[qi], samplers_.global_ids[qi], rng_);
  }

  /// Probability that an article about an event in `location` is drawn
  /// from that country's own press. Scaling by the country's publishing
  /// share makes the home boost a uniform (1 + bias) factor on the
  /// Table VII diagonal, matching the paper's modest elevation (e.g.
  /// Australia 5.3 % vs a 2.8 % baseline) for small and large countries
  /// alike.
  double HomeShare(CountryId location) const noexcept {
    return std::min(0.5, cfg_.home_country_bias * pub_share_[location]);
  }

  double TailProb(const RawDataset& ds, IntervalId abs_t) const noexcept {
    const double span =
        static_cast<double>(ds.end_interval - ds.first_interval);
    const double x = static_cast<double>(abs_t - ds.first_interval) / span;
    return cfg_.delay_tail_prob_initial +
           (cfg_.delay_tail_prob_final - cfg_.delay_tail_prob_initial) * x;
  }

  /// Appends one mention if it falls inside the capture window.
  bool EmitMention(RawDataset& ds, const EventRecord& ev, std::uint32_t src,
                   IntervalId delay, std::uint32_t& emitted) {
    const IntervalId at = ev.event_interval + delay;
    if (at >= ds.end_interval) return false;  // censored by dataset end
    MentionRecord m;
    m.global_event_id = ev.global_event_id;
    m.event_interval = ev.event_interval;
    m.mention_interval = at;
    m.source_index = src;
    m.article_seq = emitted;
    m.confidence = static_cast<std::uint8_t>(10 + UniformBelow(rng_, 91));
    ds.mentions.push_back(std::move(m));
    ds.truth.articles_per_source[src]++;
    ++emitted;
    return true;
  }

  void PlantMegaEvents(RawDataset& ds, std::uint64_t total_intervals) {
    // Spread across the middle of the timeline; 9 located in the USA and
    // one in Russia, mirroring Table III's composition.
    for (std::uint32_t k = 0; k < cfg_.mega_event_count; ++k) {
      const auto rel_t = static_cast<IntervalId>(
          total_intervals * (k + 1) / (cfg_.mega_event_count + 2));
      const IntervalId abs_t = ds.first_interval + rel_t;
      const std::int32_t q = quarter_of_[static_cast<std::size_t>(rel_t)];

      EventRecord ev;
      ev.global_event_id = next_event_id_++;
      ev.event_interval = abs_t;
      ev.location = (k == cfg_.mega_event_count - 1) ? country::kRussia
                                                     : country::kUSA;
      ev.goldstein = -8.0;
      ev.avg_tone = -6.0;
      ev.quad_class = 4;
      ev.is_mega = true;

      std::uint32_t emitted = 0;
      const double tail_prob = TailProb(ds, abs_t) * 0.3;
      bool first = true;
      // Graded coverage: the biggest mega event reaches ~`coverage` of the
      // then-active sources, later ones slightly less, giving the smooth
      // top-10 falloff of Table III.
      const double coverage =
          cfg_.mega_event_coverage * (1.0 - 0.035 * k);
      const auto qi = static_cast<std::size_t>(q);
      const double active_count =
          static_cast<double>(samplers_.global_ids[qi].size());
      // Mega events must outrank every ordinary event, whose article count
      // is capped (plus ~25 % repeats). When the active-source pool is
      // small relative to the cap, run several coverage rounds (repeat
      // waves of reporting on the big story) to clear the bar.
      const double min_target = 1.8 * cfg_.max_articles_per_event;
      const double per_round = std::max(coverage * active_count * 1.35, 1.0);
      const int rounds = static_cast<int>(
          std::clamp(std::ceil(min_target / per_round), 1.0, 8.0));
      for (int round = 0; round < rounds; ++round) {
        for (std::size_t j = 0; j < samplers_.global_ids[qi].size(); ++j) {
          const std::uint32_t src = samplers_.global_ids[qi][j];
          if (!Bernoulli(rng_, coverage)) continue;
          const IntervalId delay =
              first ? 1
                    : SampleDelay(cfg_, ds.world.sources[src].speed,
                                  tail_prob, rng_);
          if (EmitMention(ds, ev, src, delay, emitted) && first) {
            ev.added_interval = abs_t + delay;
            ev.source_url = MentionUrl(ds.world, ds.mentions.back());
            first = false;
          }
          // Follow-up coverage on the big story.
          if (Bernoulli(rng_, 0.35)) {
            const IntervalId extra = delay + 2 + static_cast<IntervalId>(
                std::llround(LogNormalDouble(rng_, 2.0, 0.9)));
            EmitMention(ds, ev, src, extra, emitted);
          }
        }
      }
      if (emitted == 0) continue;
      ev.num_articles = emitted;
      ds.events.push_back(std::move(ev));
    }
  }

  void InjectRecordDefects(RawDataset& ds) {
    // Missing SOURCEURL (Table II row 3).
    std::uint32_t injected = 0;
    for (std::size_t i = 0; i < ds.events.size() &&
                            injected < cfg_.defect_missing_source_url;
         i += 97) {
      if (ds.events[i].is_mega) continue;
      ds.events[i].source_url.clear();
      ++injected;
    }
    ds.truth.missing_source_url = injected;

    // Event date recorded after the first article's publication
    // (Table II row 4): shift the event time past its first mention.
    injected = 0;
    for (std::size_t i = 50; i < ds.events.size() &&
                             injected < cfg_.defect_future_event_dates;
         i += 211) {
      EventRecord& ev = ds.events[i];
      if (ev.is_mega) continue;
      // First mention is at added_interval; move the event 6 h past it.
      ev.event_interval = ev.added_interval + 24;
      ++injected;
    }
    ds.truth.future_event_dates = injected;
    // Note: mentions keep their original event_interval copy only for
    // non-defective events; re-sync below in Finalize.
  }

  void Finalize(RawDataset& ds) {
    // Re-sync the event_interval carried by mentions with their event
    // (after defect injection) — GDELT mentions repeat the event time.
    std::unordered_map<std::uint64_t, IntervalId> event_time;
    event_time.reserve(ds.events.size());
    for (const auto& ev : ds.events) {
      event_time.emplace(ev.global_event_id, ev.event_interval);
    }
    for (auto& m : ds.mentions) {
      const auto it = event_time.find(m.global_event_id);
      if (it != event_time.end()) m.event_interval = it->second;
    }

    std::sort(ds.events.begin(), ds.events.end(),
              [](const EventRecord& a, const EventRecord& b) {
                if (a.added_interval != b.added_interval) {
                  return a.added_interval < b.added_interval;
                }
                return a.global_event_id < b.global_event_id;
              });
    std::sort(ds.mentions.begin(), ds.mentions.end(),
              [](const MentionRecord& a, const MentionRecord& b) {
                if (a.mention_interval != b.mention_interval) {
                  return a.mention_interval < b.mention_interval;
                }
                if (a.global_event_id != b.global_event_id) {
                  return a.global_event_id < b.global_event_id;
                }
                return a.article_seq < b.article_seq;
              });

    GroundTruth& t = ds.truth;
    t.num_events = ds.events.size();
    t.num_mentions = ds.mentions.size();
    t.num_intervals =
        static_cast<std::uint64_t>(ds.end_interval - ds.first_interval);
    t.num_sources_modeled = static_cast<std::uint32_t>(ds.world.sources.size());
    t.min_articles_per_event = ~0ull;
    t.max_articles_per_event = 0;
    for (const auto& ev : ds.events) {
      t.min_articles_per_event =
          std::min<std::uint64_t>(t.min_articles_per_event, ev.num_articles);
      t.max_articles_per_event =
          std::max<std::uint64_t>(t.max_articles_per_event, ev.num_articles);
    }
    if (ds.events.empty()) t.min_articles_per_event = 0;
  }

  const GeneratorConfig& cfg_;
  Xoshiro256 rng_;
  QuarterSamplers samplers_;
  std::vector<double> group_agenda_cum_;
  std::vector<double> pub_share_;
  std::vector<std::uint32_t> agenda_participants_;
  std::vector<std::int32_t> quarter_of_;
  std::uint64_t next_event_id_ = 0;
};

}  // namespace

std::string MentionUrl(const World& world, const MentionRecord& m) {
  return StrFormat("https://%s/articles/%llu-%u",
                   world.sources[m.source_index].domain.c_str(),
                   static_cast<unsigned long long>(m.global_event_id),
                   m.article_seq);
}

RawDataset GenerateDataset(const GeneratorConfig& config) {
  return Generator(config).Run();
}

}  // namespace gdelt::gen
