// The static part of the synthetic world: countries, sources, media groups.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gen/config.hpp"
#include "schema/countries.hpp"
#include "util/rng.hpp"

namespace gdelt::gen {

/// Publishing-speed class of a source (Section VI-E's three groups).
enum class SpeedClass : std::uint8_t { kFast = 0, kAverage = 1, kSlow = 2 };

/// One modeled news website.
struct SourceModel {
  std::string domain;          ///< e.g. "heraldpost3.co.uk"
  CountryId country = kNoCountry;
  std::int32_t media_group = -1;  ///< -1 = independent
  double productivity = 1.0;   ///< base draw weight
  /// True for the guaranteed one-daily-per-country baseline source.
  bool baseline_daily = false;
  SpeedClass speed = SpeedClass::kAverage;
  /// Bitset over quarters (index relative to the timeline start quarter):
  /// true = source publishes this quarter.
  std::vector<bool> active_quarters;
};

/// Relative share of world events located in each country (drives the
/// "reported on" axis of Tables VI-VII: USA ~40 %, UK ~5 %, then a tail).
struct CountryEventWeights {
  std::vector<double> weight;      ///< indexed by CountryId
  std::vector<double> cumulative;  ///< for sampling
};

/// Relative share of the publishing world per country (drives the
/// "publishing" axis: UK and USA dominate article volume).
struct CountryPublishingWeights {
  std::vector<double> weight;  ///< indexed by CountryId
};

/// Full static world.
struct World {
  std::vector<SourceModel> sources;
  CountryEventWeights event_weights;
  std::int32_t first_quarter = 0;  ///< QuarterId of the timeline start
  std::int32_t num_quarters = 0;

  /// Sources owned by media group g (same order as generation).
  std::vector<std::vector<std::uint32_t>> group_members;
};

/// Builds the deterministic world for a config.
World BuildWorld(const GeneratorConfig& config, Xoshiro256& rng);

/// The event-location weight table used by BuildWorld (exposed for tests
/// and for benches that need the ground-truth ranking).
CountryEventWeights MakeEventWeights();

/// Publishing weights (how many sources/articles each country contributes).
CountryPublishingWeights MakePublishingWeights();

}  // namespace gdelt::gen
