// Sampling engine of the synthetic GDELT world (see config.hpp for the
// modeled phenomena and the paper sections they back).
#pragma once

#include "gen/config.hpp"
#include "gen/dataset.hpp"

namespace gdelt::gen {

/// Generates a complete dataset in memory. Deterministic in config.seed.
RawDataset GenerateDataset(const GeneratorConfig& config);

}  // namespace gdelt::gen
