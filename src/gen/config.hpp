// Configuration of the synthetic GDELT 2.0 world model.
//
// The real study ingests 1.09 B articles over 324 M events from 20,996
// sources (Table I) — data we cannot download here. The generator produces
// a scaled world with the same *shapes*: power-law event popularity
// (Fig 2), ~1/3 quarterly source activity (Fig 3), a UK media group
// dominating the top publishers (Fig 6, Table IV), country-skewed event
// locations and home-biased reporting (Tables V-VII), a multi-modal
// publishing-delay mixture with 24 h / week / month / year modes
// (Fig 9, Table VIII), and a declining heavy-delay fraction over time
// (Figs 10-11). Defects of Table II are injected deliberately so the
// cleaning pipeline has something to find.
#pragma once

#include <cstdint>
#include <string>

#include "gtime/timestamp.hpp"

namespace gdelt::gen {

/// Tunable knobs of the world model. Defaults give a "small" dataset that
/// generates in ~1 s; presets scale it.
struct GeneratorConfig {
  std::uint64_t seed = 42;

  // --- timeline ---
  /// First capture interval (paper: 2015-02-18).
  CivilDateTime start_date{2015, 2, 18, 0, 0, 0};
  /// One past the last capture interval (paper: end of 2019).
  CivilDateTime end_date{2016, 2, 18, 0, 0, 0};
  /// How many 15-minute intervals share one emitted chunk-file pair.
  /// 1 matches GDELT exactly; 96 emits daily archives, keeping file counts
  /// manageable for long timelines without changing any row content.
  std::uint32_t intervals_per_chunk = 96;

  // --- sources ---
  std::uint32_t num_sources = 1200;
  /// Sources per co-owned media group; group 0 models the Newsquest-like
  /// cluster of regional UK papers that dominates the paper's Top 10.
  std::uint32_t media_group_count = 6;
  std::uint32_t media_group_size = 12;
  /// Fraction of ordinary sources that are low-volume "periodical
  /// publications" (the paper notes many tracked sources are periodicals,
  /// not dailies — this is what makes only ~1/3 active per quarter and
  /// keeps half the sources from ever reporting within 15 minutes).
  double periodical_fraction = 0.65;
  /// Relative productivity of a periodical (dailies are Pareto-distributed
  /// around ~5).
  double periodical_weight = 0.02;
  /// Pareto tail index of daily-newspaper productivity.
  double daily_pareto_alpha = 1.2;
  /// Probability an ordinary source is active in a given quarter (~1/3 in
  /// the paper, Fig 3). Media-group members are always active.
  double quarterly_activity_rate = 0.34;

  // --- events ---
  /// Mean newly-recorded events per 15-minute interval (before the
  /// quarterly trend factor).
  double events_per_interval_mean = 4.0;
  /// Power-law exponent for articles-per-event (Fig 2 tail).
  double event_popularity_alpha = 2.35;
  /// Cap on sampled articles per ordinary event.
  std::uint32_t max_articles_per_event = 400;
  /// Number of planted "mega events" (Table III); each is reported by
  /// ~`mega_event_coverage` of then-active sources.
  std::uint32_t mega_event_count = 10;
  double mega_event_coverage = 0.85;
  /// Multiplicative activity decline per year after 2017 (Figs 3-5 show a
  /// slight 2018-19 decrease).
  double late_period_decline = 0.93;

  // --- publishing delay model (in 15-minute intervals) ---
  /// Log-normal body: median exp(mu) ~= 17 intervals ~= 4.2 h (Fig 9).
  double delay_lognormal_mu = 2.83;
  double delay_lognormal_sigma = 0.75;
  /// Initial probability that an article is a heavy-tail republication
  /// (week/month/year mode). Declines linearly to
  /// `delay_tail_prob_final` across the timeline (drives Figs 10-11).
  double delay_tail_prob_initial = 0.030;
  double delay_tail_prob_final = 0.006;
  /// Fraction of sources in the fast class (median < 8 intervals) and the
  /// slow class (days-months); the rest follow the 24 h cycle.
  double fast_source_fraction = 0.08;
  double slow_source_fraction = 0.25;

  // --- reporting behaviour ---
  /// Relative home-country reporting boost: an event located in country c
  /// draws from c's own press with probability bias * publishing_share(c),
  /// i.e. roughly a (1 + bias) elevation of the Table VII diagonal.
  double home_country_bias = 0.8;
  /// Articles a media-group member adds on its group's agenda events.
  double group_agenda_boost = 10.0;
  /// Mean extra articles a source publishes per event it covers (drives
  /// the 3.36 weighted articles-per-event average of Table I).
  double repeat_article_rate = 0.08;

  // --- defect injection (Table II) ---
  std::uint32_t defect_malformed_master_entries = 5;
  std::uint32_t defect_missing_archives = 2;
  std::uint32_t defect_missing_source_url = 1;
  std::uint32_t defect_future_event_dates = 4;

  /// A quick configuration for unit tests: ~2 weeks, few sources.
  static GeneratorConfig Tiny();
  /// Default one-year config (benches that need speed).
  static GeneratorConfig Small();
  /// Full paper timeline 2015-02-18 .. 2019-12-31, more sources; used by
  /// the headline benches.
  static GeneratorConfig Medium();
};

}  // namespace gdelt::gen
