#include "gen/emit.hpp"

#include <algorithm>
#include <cstdio>
#include <set>

#include "io/crc32.hpp"
#include "io/file.hpp"
#include "io/zipstore.hpp"
#include "util/strings.hpp"

namespace gdelt::gen {
namespace {

std::string Stamp(IntervalId interval) {
  return FormatGdeltTimestamp(IntervalStartCivil(interval));
}

/// Appends "<size> <crc32 hex> <name>\n".
void AppendMasterLine(std::string& master, std::string_view file_bytes,
                      const std::string& name) {
  master += StrFormat("%zu %08x ", file_bytes.size(), Crc32(file_bytes));
  master += name;
  master += '\n';
}

}  // namespace

void AppendEventRow(std::string& out, const World& world,
                    const EventRecord& ev) {
  (void)world;
  const CivilDateTime when = IntervalStartCivil(ev.event_interval);
  const CivilDateTime added = IntervalStartCivil(ev.added_interval);
  const std::uint64_t day = static_cast<std::uint64_t>(when.year) * 10000 +
                            when.month * 100 + when.day;
  const int month_year = when.year * 100 + when.month;
  const double fraction_date =
      when.year + (when.month - 1) / 12.0 + (when.day - 1) / 365.0;
  const bool tagged = ev.location != kNoCountry;

  // 61 tab-separated fields in wire order; actor fields are left empty the
  // way sparse real rows are.
  out += std::to_string(ev.global_event_id);             // GlobalEventID
  out += '\t';
  out += std::to_string(day);                            // Day
  out += '\t';
  out += std::to_string(month_year);                     // MonthYear
  out += '\t';
  out += std::to_string(when.year);                      // Year
  out += '\t';
  out += StrFormat("%.4f", fraction_date);               // FractionDate
  for (int i = 0; i < 20; ++i) out += '\t';              // Actor1*/Actor2* (empty)
  out += "\t1";                                          // IsRootEvent
  out += "\t010\t010\t01";                               // Event(Base/Root)Code
  out += '\t';
  out += std::to_string(ev.quad_class);                  // QuadClass
  out += '\t';
  out += StrFormat("%.1f", ev.goldstein);                // GoldsteinScale
  out += '\t';
  out += std::to_string(ev.num_articles);                // NumMentions
  out += '\t';
  out += std::to_string(std::max<std::uint32_t>(1, ev.num_articles / 3));  // NumSources
  out += '\t';
  out += std::to_string(ev.num_articles);                // NumArticles
  out += '\t';
  out += StrFormat("%.2f", ev.avg_tone);                 // AvgTone
  for (int i = 0; i < 16; ++i) out += '\t';              // Actor1Geo_*, Actor2Geo_* (empty)
  out += '\t';
  out += tagged ? "1" : "0";                             // ActionGeo_Type
  out += '\t';
  if (tagged) out += CountryName(ev.location);           // ActionGeo_FullName
  out += '\t';
  if (tagged) out += CountryFips(ev.location);           // ActionGeo_CountryCode
  out += "\t\t";                                         // ADM1, ADM2
  out += "\t0\t0\t";                                     // Lat, Long, FeatureID
  out += '\t';
  out += FormatGdeltTimestamp(added);                    // DATEADDED
  out += '\t';
  out += ev.source_url;                                  // SOURCEURL
  out += '\n';
}

void AppendMentionRow(std::string& out, const World& world,
                      const MentionRecord& m) {
  const SourceModel& src = world.sources[m.source_index];
  out += std::to_string(m.global_event_id);              // GlobalEventID
  out += '\t';
  out += FormatGdeltTimestamp(IntervalStartCivil(m.event_interval));
  out += '\t';
  out += FormatGdeltTimestamp(IntervalStartCivil(m.mention_interval));
  out += "\t1\t";                                        // MentionType = web
  out += src.domain;                                     // MentionSourceName
  out += '\t';
  out += MentionUrl(world, m);                           // MentionIdentifier
  out += "\t1\t-1\t-1\t100\t1\t";                        // SentenceID..InRawText
  out += std::to_string(m.confidence);                   // Confidence
  out += "\t2500\t-2.5\t\t";                             // DocLen, DocTone, Translation, Extras
  out += '\n';
}

Result<EmitResult> EmitDataset(const RawDataset& dataset,
                               const GeneratorConfig& config,
                               const std::string& out_dir) {
  GDELT_RETURN_IF_ERROR(MakeDirectories(out_dir));

  const std::uint64_t total_intervals =
      static_cast<std::uint64_t>(dataset.end_interval -
                                 dataset.first_interval);
  const std::uint64_t ipc = std::max<std::uint32_t>(1, config.intervals_per_chunk);
  const std::uint64_t num_chunks = (total_intervals + ipc - 1) / ipc;

  // Deterministically select chunks whose archives will be "missing".
  // Spread them through the middle of the timeline.
  std::set<std::uint64_t> missing_chunks;
  for (std::uint32_t k = 0;
       k < config.defect_missing_archives && num_chunks > 2; ++k) {
    missing_chunks.insert(1 + (k * 37 + 11) % (num_chunks - 2));
  }

  EmitResult result;
  result.num_chunks = num_chunks;
  std::string master;

  std::size_t ev_cursor = 0;
  std::size_t me_cursor = 0;
  std::string events_csv;
  std::string mentions_csv;

  for (std::uint64_t chunk = 0; chunk < num_chunks; ++chunk) {
    const IntervalId chunk_begin =
        dataset.first_interval + static_cast<IntervalId>(chunk * ipc);
    const IntervalId chunk_end =
        std::min<IntervalId>(chunk_begin + static_cast<IntervalId>(ipc),
                             dataset.end_interval);
    events_csv.clear();
    mentions_csv.clear();

    std::uint64_t chunk_events = 0;
    std::uint64_t chunk_mentions = 0;
    while (ev_cursor < dataset.events.size() &&
           dataset.events[ev_cursor].added_interval < chunk_end) {
      AppendEventRow(events_csv, dataset.world, dataset.events[ev_cursor]);
      ++ev_cursor;
      ++chunk_events;
    }
    while (me_cursor < dataset.mentions.size() &&
           dataset.mentions[me_cursor].mention_interval < chunk_end) {
      AppendMentionRow(mentions_csv, dataset.world,
                       dataset.mentions[me_cursor]);
      ++me_cursor;
      ++chunk_mentions;
    }

    const std::string stamp = Stamp(chunk_begin);
    const std::string export_name = stamp + ".export.CSV";
    const std::string mentions_name = stamp + ".mentions.CSV";

    // Serialize both archives in memory first so the master list can carry
    // their true size and checksum even for "missing" ones.
    for (const auto& [csv, base] :
         {std::pair<const std::string&, const std::string&>(events_csv,
                                                            export_name),
          std::pair<const std::string&, const std::string&>(mentions_csv,
                                                            mentions_name)}) {
      const std::string zip_name = base + ".zip";
      const std::string zip_path = out_dir + "/" + zip_name;
      ZipWriter zip;
      GDELT_RETURN_IF_ERROR(zip.Open(zip_path));
      GDELT_RETURN_IF_ERROR(zip.AddEntry(base, csv));
      GDELT_RETURN_IF_ERROR(zip.Finish());
      GDELT_ASSIGN_OR_RETURN(std::string bytes, ReadWholeFile(zip_path));
      AppendMasterLine(master, bytes, zip_name);
      if (missing_chunks.count(chunk)) {
        // Listed in the master but absent on disk: delete what we wrote.
        std::remove(zip_path.c_str());
      } else {
        ++result.chunk_files_written;
      }
    }
    if (missing_chunks.count(chunk)) {
      result.dropped_events += chunk_events;
      result.dropped_mentions += chunk_mentions;
    }

    // Sprinkle malformed master entries between chunk blocks.
    if (chunk < config.defect_malformed_master_entries) {
      switch (chunk % 3) {
        case 0: master += "corrupt-master-entry\n"; break;
        case 1: master += "12345 deadbeef\n"; break;   // missing filename
        default: master += "notanumber ffff0000 bogus.export.CSV.zip\n";
      }
    }
  }
  // Any remaining malformed entries go at the end (tiny datasets).
  for (std::uint64_t k = num_chunks;
       k < config.defect_malformed_master_entries; ++k) {
    master += "corrupt-master-entry\n";
  }

  result.master_path = out_dir + "/masterfilelist.txt";
  GDELT_RETURN_IF_ERROR(WriteWholeFile(result.master_path, master));
  return result;
}

}  // namespace gdelt::gen
