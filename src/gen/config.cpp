#include "gen/config.hpp"

namespace gdelt::gen {

GeneratorConfig GeneratorConfig::Tiny() {
  GeneratorConfig cfg;
  cfg.start_date = {2015, 2, 18, 0, 0, 0};
  cfg.end_date = {2015, 3, 18, 0, 0, 0};  // four weeks
  cfg.intervals_per_chunk = 96;           // daily archives
  cfg.num_sources = 120;
  cfg.media_group_count = 3;
  cfg.media_group_size = 8;
  cfg.events_per_interval_mean = 1.0;
  cfg.max_articles_per_event = 120;
  cfg.mega_event_count = 2;
  cfg.defect_malformed_master_entries = 2;
  cfg.defect_missing_archives = 1;
  cfg.defect_missing_source_url = 1;
  cfg.defect_future_event_dates = 2;
  return cfg;
}

GeneratorConfig GeneratorConfig::Small() {
  GeneratorConfig cfg;  // defaults: one year, 1200 sources
  return cfg;
}

GeneratorConfig GeneratorConfig::Medium() {
  GeneratorConfig cfg;
  cfg.start_date = {2015, 2, 18, 0, 0, 0};
  cfg.end_date = {2020, 1, 1, 0, 0, 0};  // the paper's full window
  cfg.intervals_per_chunk = 672;         // weekly archives keep file counts sane
  cfg.num_sources = 2100;                // 1/10 of the paper's 20,996
  cfg.media_group_count = 8;
  cfg.media_group_size = 12;
  cfg.events_per_interval_mean = 2.0;
  cfg.defect_malformed_master_entries = 53;  // Table II values
  cfg.defect_missing_archives = 8;
  cfg.defect_missing_source_url = 1;
  cfg.defect_future_event_dates = 4;
  return cfg;
}

}  // namespace gdelt::gen
