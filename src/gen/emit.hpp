// Serializes a RawDataset to disk in GDELT 2.0 wire format:
//   <out_dir>/masterfilelist.txt          (size, checksum, filename per line)
//   <out_dir>/<stamp>.export.CSV.zip      (Events rows of the chunk)
//   <out_dir>/<stamp>.mentions.CSV.zip    (Mentions rows of the chunk)
//
// Defects from the config are materialized here: malformed master-list
// lines, and archives that are listed but absent on disk (their rows are
// lost, exactly as a failed download would lose them).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gen/dataset.hpp"
#include "util/status.hpp"

namespace gdelt::gen {

/// Outcome of emission, including what the injected missing archives cost.
struct EmitResult {
  std::string master_path;
  std::uint64_t num_chunks = 0;
  std::uint64_t chunk_files_written = 0;
  /// Rows lost because their chunk archive was injected as "missing".
  std::uint64_t dropped_events = 0;
  std::uint64_t dropped_mentions = 0;
};

/// Writes the dataset under `out_dir` (created if needed).
Result<EmitResult> EmitDataset(const RawDataset& dataset,
                               const GeneratorConfig& config,
                               const std::string& out_dir);

/// Serializes one Events row in the 61-column wire format (exposed for
/// round-trip tests).
void AppendEventRow(std::string& out, const World& world,
                    const EventRecord& ev);

/// Serializes one Mentions row in the 16-column wire format.
void AppendMentionRow(std::string& out, const World& world,
                      const MentionRecord& m);

}  // namespace gdelt::gen
