#include "convert/fetcher.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "io/crc32.hpp"
#include "io/file.hpp"
#include "io/zipstore.hpp"
#include "util/hash.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace gdelt::convert {
namespace {

/// One verification-included acquisition attempt.
Result<std::string> FetchOnce(const std::string& path,
                              const std::string& file_name,
                              std::optional<std::uint32_t> expected_crc) {
  GDELT_ASSIGN_OR_RETURN(std::string bytes, ReadWholeFile(path));
  if (expected_crc && Crc32(bytes) != *expected_crc) {
    return status::DataLoss("archive checksum mismatch: " + file_name);
  }
  GDELT_ASSIGN_OR_RETURN(ZipReader zip, ZipReader::Open(bytes));
  if (zip.entries().empty()) {
    return status::DataLoss("archive has no entries: " + file_name);
  }
  return zip.ReadEntry(std::size_t{0});
}

std::uint64_t NowMs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ChunkFetcher::ChunkFetcher(FetchPolicy policy) : policy_(std::move(policy)) {
  sleep_fn_ = [](std::uint64_t ms) {
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  };
}

std::uint64_t ChunkFetcher::BackoffMs(const std::string& file_name,
                                      std::uint32_t attempt) const {
  double base = static_cast<double>(policy_.backoff_initial_ms);
  for (std::uint32_t i = 2; i < attempt; ++i) {
    base *= policy_.backoff_multiplier;
  }
  const auto capped = static_cast<std::uint64_t>(
      std::min(base, static_cast<double>(policy_.backoff_max_ms)));
  if (capped == 0) return 0;
  // Deterministic jitter in [capped/2, capped]: seeded per archive and
  // attempt, so a replay with the same seed sleeps identically while
  // distinct archives still decorrelate.
  Xoshiro256 rng(policy_.jitter_seed ^ Fnv1a64(file_name) ^
                 (static_cast<std::uint64_t>(attempt) << 32));
  const std::uint64_t half = capped / 2;
  return half + UniformBelow(rng, capped - half + 1);
}

void ChunkFetcher::Quarantine(const std::string& dir,
                              const std::string& file_name,
                              const Status& why) {
  if (policy_.quarantine_dir.empty()) return;
  // Best-effort and non-destructive: the original stays on the mirror so
  // an operator (or a later mirror repair) can retry; the copy plus the
  // reason file give them everything needed to diagnose offline.
  if (!MakeDirectories(policy_.quarantine_dir).ok()) return;
  const std::string src = dir + "/" + file_name;
  const std::string dst = policy_.quarantine_dir + "/" + file_name;
  if (auto bytes = ReadWholeFile(src); bytes.ok()) {
    if (!WriteWholeFile(dst, *bytes).ok()) return;
  }
  (void)WriteWholeFile(dst + ".reason", why.ToString() + "\n");
  {
    sync::MutexLock lock(stats_mu_);
    ++stats_.quarantined;
  }
  GDELT_LOG(kWarning, "quarantined archive '" + file_name + "': " +
                          why.ToString());
}

Result<std::string> ChunkFetcher::FetchCsv(
    const std::string& dir, const std::string& file_name,
    std::optional<std::uint32_t> expected_crc) {
  const std::string path = dir + "/" + file_name;
  const std::uint64_t start_ms = NowMs();
  Status last_error = status::Internal("fetch never attempted");
  for (std::uint32_t attempt = 1; attempt <= policy_.max_attempts;
       ++attempt) {
    if (attempt > 1) {
      const std::uint64_t delay = BackoffMs(file_name, attempt);
      // The deadline bounds the whole archive, sleeps included; better to
      // give up and move on than stall the run on one bad chunk.
      if (NowMs() - start_ms + delay > policy_.archive_deadline_ms) {
        last_error = status::IoError(
            "archive '" + file_name + "' exceeded fetch deadline: " +
            last_error.ToString());
        break;
      }
      if (delay > 0) sleep_fn_(delay);
      sync::MutexLock lock(stats_mu_);
      ++stats_.retries;
    }
    {
      sync::MutexLock lock(stats_mu_);
      ++stats_.attempts;
    }
    auto csv = FetchOnce(path, file_name, expected_crc);
    if (csv.ok()) return csv;
    last_error = csv.status();
  }
  {
    sync::MutexLock lock(stats_mu_);
    ++stats_.failures;
  }
  Quarantine(dir, file_name, last_error);
  return last_error;
}

FetchStats ChunkFetcher::stats() const noexcept {
  sync::MutexLock lock(stats_mu_);
  return stats_;
}

}  // namespace gdelt::convert
