#include "convert/master_list.hpp"

#include "csv/tsv.hpp"
#include "util/strings.hpp"

namespace gdelt::convert {

ArchiveKind ClassifyArchive(std::string_view file_name) noexcept {
  if (EndsWith(file_name, ".export.CSV.zip")) return ArchiveKind::kExport;
  if (EndsWith(file_name, ".mentions.CSV.zip")) return ArchiveKind::kMentions;
  return ArchiveKind::kOther;
}

MasterList ParseMasterList(std::string_view text) {
  MasterList list;
  LineIterator lines(text);
  std::string_view line;
  std::vector<std::string_view> fields;
  while (lines.Next(line)) {
    if (TrimView(line).empty()) continue;
    SplitInto(line, ' ', fields);
    bool ok = fields.size() == 3;
    MasterEntry entry;
    if (ok) {
      const auto size = ParseUint64(fields[0]);
      ok = size.has_value();
      if (ok) entry.size = *size;
    }
    if (ok) {
      // CRC is 8 hex digits.
      ok = fields[1].size() == 8;
      if (ok) {
        std::uint32_t crc = 0;
        for (char c : fields[1]) {
          const int digit = c >= '0' && c <= '9'   ? c - '0'
                            : c >= 'a' && c <= 'f' ? c - 'a' + 10
                            : c >= 'A' && c <= 'F' ? c - 'A' + 10
                                                   : -1;
          if (digit < 0) {
            ok = false;
            break;
          }
          crc = crc << 4 | static_cast<std::uint32_t>(digit);
        }
        entry.crc32 = crc;
      }
    }
    if (ok) {
      entry.file_name = std::string(fields[2]);
      ok = !entry.file_name.empty();
    }
    if (!ok) {
      ++list.malformed_entries;
      if (list.malformed_samples.size() < 10) {
        list.malformed_samples.emplace_back(line);
      }
      continue;
    }
    entry.kind = ClassifyArchive(entry.file_name);
    list.entries.push_back(std::move(entry));
  }
  return list;
}

}  // namespace gdelt::convert
