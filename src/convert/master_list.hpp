// GDELT master file list handling.
//
// The master list enumerates every 15-minute archive with its size and
// checksum. Parsing is defensive: the real list contains malformed entries
// (53 of them in the paper's window, Table II), and archives it names can
// be absent from the mirror (8 in the paper). Both conditions are counted,
// not fatal.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace gdelt::convert {

/// Kind of archive a master entry points at.
enum class ArchiveKind : std::uint8_t { kExport, kMentions, kOther };

/// One well-formed master list entry.
struct MasterEntry {
  std::uint64_t size = 0;
  std::uint32_t crc32 = 0;
  std::string file_name;
  ArchiveKind kind = ArchiveKind::kOther;
};

/// Parse result, with defect counters.
struct MasterList {
  std::vector<MasterEntry> entries;
  std::uint32_t malformed_entries = 0;
  std::vector<std::string> malformed_samples;  ///< up to 10, for the report
};

/// Parses master list text ("<size> <crc32-hex> <name>" per line).
MasterList ParseMasterList(std::string_view text);

/// Classifies an archive file name.
ArchiveKind ClassifyArchive(std::string_view file_name) noexcept;

}  // namespace gdelt::convert
