#include "convert/converter.hpp"

#include <set>
#include <unordered_map>

#include "columnar/dictionary.hpp"
#include "columnar/table.hpp"
#include "convert/binary_format.hpp"
#include "convert/master_list.hpp"
#include "csv/tsv.hpp"
#include "gtime/timestamp.hpp"
#include "io/crc32.hpp"
#include "io/file.hpp"
#include "io/zipstore.hpp"
#include "schema/countries.hpp"
#include "schema/gdelt_schema.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

namespace gdelt::convert {
namespace {

/// Parses a 14-digit GDELT timestamp field into an interval id.
/// Returns false (and leaves `out` unchanged) on malformed input.
bool FieldToInterval(std::string_view field, IntervalId& out) {
  const auto parsed = ParseGdeltTimestamp(field);
  if (!parsed.ok()) return false;
  out = IntervalOfCivil(parsed.value());
  return true;
}

/// Parses the Events "Day" field (YYYYMMDD) into the interval of midnight.
bool DayToInterval(std::string_view field, IntervalId& out) {
  const auto day = ParseUint64(field);
  if (!day || *day < 19000101 || *day > 99991231) return false;
  const auto packed = *day * 1000000ull;  // midnight
  const auto parsed = ParseGdeltTimestamp(packed);
  if (!parsed.ok()) return false;
  out = IntervalOfCivil(parsed.value());
  return true;
}

struct EventColumns {
  Column* global_id;
  Column* event_interval;
  Column* added_interval;
  Column* country;
  Column* num_articles_wire;
  Column* goldstein;
  Column* avg_tone;
  Column* quad_class;
  Column* source_url;
};

struct MentionColumns {
  Column* event_row;
  Column* global_event_id;
  Column* event_interval;
  Column* mention_interval;
  Column* source_id;
  Column* confidence;
  Column* url;  // may be null when keep_urls = false
};

}  // namespace

std::string ConvertReport::ToText() const {
  std::string out;
  out += "GDELT conversion report\n";
  out += "=======================\n";
  out += StrFormat("archives processed:              %llu\n",
                   static_cast<unsigned long long>(archives_processed));
  out += StrFormat("event rows:                      %llu\n",
                   static_cast<unsigned long long>(event_rows));
  out += StrFormat("mention rows:                    %llu\n",
                   static_cast<unsigned long long>(mention_rows));
  out += StrFormat("distinct sources:                %u\n", num_sources);
  out += "\nProblems found during dataset analysis (cf. paper Table II)\n";
  out += StrFormat("missformatted master entries:    %u\n",
                   malformed_master_entries);
  out += StrFormat("missing archives:                %u\n", missing_archives);
  out += StrFormat("missing event source URL:        %u\n",
                   missing_event_source_url);
  out += StrFormat("event date after first article:  %u\n",
                   future_event_dates);
  out += StrFormat("corrupt archives:                %u\n", corrupt_archives);
  out += StrFormat("malformed rows:                  %llu\n",
                   static_cast<unsigned long long>(malformed_rows));
  out += StrFormat("orphan mentions:                 %llu\n",
                   static_cast<unsigned long long>(orphan_mentions));
  for (const auto& note : notes) {
    out += "note: " + note + "\n";
  }
  return out;
}

Result<ConvertReport> ConvertDataset(const ConvertOptions& options) {
  ConvertReport report;

  GDELT_ASSIGN_OR_RETURN(
      const std::string master_text,
      ReadWholeFile(options.input_dir + "/masterfilelist.txt"));
  MasterList master = ParseMasterList(master_text);
  report.malformed_master_entries = master.malformed_entries;
  for (const auto& sample : master.malformed_samples) {
    report.notes.push_back("malformed master entry: '" + sample + "'");
  }

  // Check archive availability once; classify into processing lists.
  // Missing archives are counted per dataset chunk (distinct timestamp
  // prefix), matching the paper's "missing archives for dataset chunks".
  std::vector<const MasterEntry*> export_archives;
  std::vector<const MasterEntry*> mention_archives;
  std::set<std::string_view> missing_chunk_stamps;
  for (const auto& entry : master.entries) {
    const std::string path = options.input_dir + "/" + entry.file_name;
    if (!FileExists(path)) {
      const std::string_view name = entry.file_name;
      missing_chunk_stamps.insert(name.substr(0, name.find('.')));
      continue;
    }
    switch (entry.kind) {
      case ArchiveKind::kExport: export_archives.push_back(&entry); break;
      case ArchiveKind::kMentions: mention_archives.push_back(&entry); break;
      case ArchiveKind::kOther:
        report.notes.push_back("unrecognized archive name: " +
                               entry.file_name);
        break;
    }
  }
  report.missing_archives =
      static_cast<std::uint32_t>(missing_chunk_stamps.size());

  // Loads and CRC-checks one archive, returning the contained CSV text.
  auto load_archive = [&](const MasterEntry& entry) -> Result<std::string> {
    const std::string path = options.input_dir + "/" + entry.file_name;
    GDELT_ASSIGN_OR_RETURN(std::string bytes, ReadWholeFile(path));
    if (options.verify_archive_checksums && Crc32(bytes) != entry.crc32) {
      return status::DataLoss("archive checksum mismatch: " +
                              entry.file_name);
    }
    GDELT_ASSIGN_OR_RETURN(ZipReader zip, ZipReader::Open(bytes));
    if (zip.entries().empty()) {
      return status::DataLoss("archive has no entries: " + entry.file_name);
    }
    return zip.ReadEntry(std::size_t{0});
  };

  // ---- Pass A: events --------------------------------------------------
  Table events;
  EventColumns ec{};
  ec.global_id = &events.AddColumn(std::string(events_col::kGlobalId),
                                   ColumnType::kU64);
  ec.event_interval = &events.AddColumn(
      std::string(events_col::kEventInterval), ColumnType::kI64);
  ec.added_interval = &events.AddColumn(
      std::string(events_col::kAddedInterval), ColumnType::kI64);
  ec.country =
      &events.AddColumn(std::string(events_col::kCountry), ColumnType::kU16);
  ec.num_articles_wire = &events.AddColumn(
      std::string(events_col::kNumArticlesWire), ColumnType::kU32);
  ec.goldstein = &events.AddColumn(std::string(events_col::kGoldstein),
                                   ColumnType::kF64);
  ec.avg_tone =
      &events.AddColumn(std::string(events_col::kAvgTone), ColumnType::kF64);
  ec.quad_class = &events.AddColumn(std::string(events_col::kQuadClass),
                                    ColumnType::kU8);
  ec.source_url = &events.AddColumn(std::string(events_col::kSourceUrl),
                                    ColumnType::kStr);

  std::unordered_map<std::uint64_t, std::uint32_t> event_row_of;

  for (const MasterEntry* entry : export_archives) {
    auto csv = load_archive(*entry);
    if (!csv.ok()) {
      ++report.corrupt_archives;
      report.notes.push_back(csv.status().ToString());
      continue;
    }
    ++report.archives_processed;
    RowReader rows(*csv, kEventFieldCount);
    const std::vector<std::string_view>* fields = nullptr;
    while (rows.Next(fields)) {
      const auto& f = *fields;
      const auto gid = ParseUint64(f[Index(EventField::kGlobalEventId)]);
      IntervalId day_interval = 0;
      IntervalId added_interval = 0;
      if (!gid ||
          !DayToInterval(f[Index(EventField::kDay)], day_interval) ||
          !FieldToInterval(f[Index(EventField::kDateAdded)],
                           added_interval)) {
        ++report.malformed_rows;
        continue;
      }
      const std::string_view url = f[Index(EventField::kSourceUrl)];
      if (url.empty()) ++report.missing_event_source_url;

      CountryId country = kNoCountry;
      const std::string_view fips =
          f[Index(EventField::kActionGeoCountryCode)];
      if (!fips.empty()) {
        if (const auto c = CountryByFips(fips)) country = *c;
      }
      const auto row = static_cast<std::uint32_t>(events.num_rows());
      if (!event_row_of.emplace(*gid, row).second) {
        ++report.malformed_rows;  // duplicate event id
        continue;
      }
      ec.global_id->Append<std::uint64_t>(*gid);
      ec.event_interval->Append<std::int64_t>(day_interval);
      ec.added_interval->Append<std::int64_t>(added_interval);
      ec.country->Append<std::uint16_t>(country);
      ec.num_articles_wire->Append<std::uint32_t>(static_cast<std::uint32_t>(
          ParseUint64(f[Index(EventField::kNumArticles)]).value_or(0)));
      ec.goldstein->Append<double>(
          ParseDouble(f[Index(EventField::kGoldsteinScale)]).value_or(0.0));
      ec.avg_tone->Append<double>(
          ParseDouble(f[Index(EventField::kAvgTone)]).value_or(0.0));
      ec.quad_class->Append<std::uint8_t>(static_cast<std::uint8_t>(
          ParseUint64(f[Index(EventField::kQuadClass)]).value_or(0)));
      ec.source_url->AppendString(url);
    }
    report.malformed_rows += rows.errors().size();
  }
  report.event_rows = events.num_rows();

  // ---- Pass B: mentions ------------------------------------------------
  Table mentions;
  MentionColumns mc{};
  mc.event_row = &mentions.AddColumn(std::string(mentions_col::kEventRow),
                                     ColumnType::kU32);
  mc.global_event_id = &mentions.AddColumn(
      std::string(mentions_col::kGlobalEventId), ColumnType::kU64);
  mc.event_interval = &mentions.AddColumn(
      std::string(mentions_col::kEventInterval), ColumnType::kI64);
  mc.mention_interval = &mentions.AddColumn(
      std::string(mentions_col::kMentionInterval), ColumnType::kI64);
  mc.source_id = &mentions.AddColumn(std::string(mentions_col::kSourceId),
                                     ColumnType::kU32);
  mc.confidence = &mentions.AddColumn(std::string(mentions_col::kConfidence),
                                      ColumnType::kU8);
  mc.url = options.keep_urls
               ? &mentions.AddColumn(std::string(mentions_col::kUrl),
                                     ColumnType::kStr)
               : nullptr;

  StringDictionary sources;
  // Events whose recorded time postdates one of their article captures
  // (Table II row 4). Flag per dense event row, counted once per event.
  std::vector<bool> future_dated(events.num_rows(), false);

  for (const MasterEntry* entry : mention_archives) {
    auto csv = load_archive(*entry);
    if (!csv.ok()) {
      ++report.corrupt_archives;
      report.notes.push_back(csv.status().ToString());
      continue;
    }
    ++report.archives_processed;
    RowReader rows(*csv, kMentionFieldCount);
    const std::vector<std::string_view>* fields = nullptr;
    while (rows.Next(fields)) {
      const auto& f = *fields;
      const auto gid = ParseUint64(f[Index(MentionField::kGlobalEventId)]);
      IntervalId event_interval = 0;
      IntervalId mention_interval = 0;
      if (!gid ||
          !FieldToInterval(f[Index(MentionField::kEventTimeDate)],
                           event_interval) ||
          !FieldToInterval(f[Index(MentionField::kMentionTimeDate)],
                           mention_interval)) {
        ++report.malformed_rows;
        continue;
      }
      const std::string_view source_name =
          f[Index(MentionField::kMentionSourceName)];
      if (source_name.empty()) {
        ++report.malformed_rows;
        continue;
      }
      std::uint32_t event_row = kOrphanEventRow;
      const auto it = event_row_of.find(*gid);
      if (it != event_row_of.end()) {
        event_row = it->second;
        if (mention_interval < event_interval && !future_dated[event_row]) {
          future_dated[event_row] = true;
          ++report.future_event_dates;
        }
      } else {
        ++report.orphan_mentions;
      }
      mc.event_row->Append<std::uint32_t>(event_row);
      mc.global_event_id->Append<std::uint64_t>(*gid);
      mc.event_interval->Append<std::int64_t>(event_interval);
      mc.mention_interval->Append<std::int64_t>(mention_interval);
      mc.source_id->Append<std::uint32_t>(sources.GetOrAdd(source_name));
      mc.confidence->Append<std::uint8_t>(static_cast<std::uint8_t>(
          ParseUint64(f[Index(MentionField::kConfidence)]).value_or(0)));
      if (mc.url) {
        mc.url->AppendString(f[Index(MentionField::kMentionIdentifier)]);
      }
    }
    report.malformed_rows += rows.errors().size();
  }
  report.mention_rows = mentions.num_rows();
  report.num_sources = sources.size();

  // ---- Write the binary database ----------------------------------------
  GDELT_RETURN_IF_ERROR(MakeDirectories(options.output_dir));
  GDELT_RETURN_IF_ERROR(events.WriteToFile(
      options.output_dir + "/" + std::string(kEventsTableFile)));
  GDELT_RETURN_IF_ERROR(mentions.WriteToFile(
      options.output_dir + "/" + std::string(kMentionsTableFile)));
  GDELT_RETURN_IF_ERROR(sources.WriteToFile(
      options.output_dir + "/" + std::string(kSourcesDictFile)));
  GDELT_RETURN_IF_ERROR(WriteWholeFile(
      options.output_dir + "/" + std::string(kReportFile), report.ToText()));
  GDELT_LOG(kInfo,
            StrFormat("converted %llu events, %llu mentions, %u sources",
                      static_cast<unsigned long long>(report.event_rows),
                      static_cast<unsigned long long>(report.mention_rows),
                      report.num_sources));
  return report;
}

}  // namespace gdelt::convert
