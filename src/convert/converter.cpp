#include "convert/converter.hpp"

#include <charconv>
#include <cstdio>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include <unistd.h>

#include "columnar/dictionary.hpp"
#include "columnar/table.hpp"
#include "convert/binary_format.hpp"
#include "convert/master_list.hpp"
#include "csv/tsv.hpp"
#include "gtime/timestamp.hpp"
#include "io/crc32.hpp"
#include "io/file.hpp"
#include "schema/countries.hpp"
#include "schema/gdelt_schema.hpp"
#include "trace/trace.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

namespace gdelt::convert {
namespace {

constexpr std::string_view kJournalFile = "convert.journal";
constexpr std::string_view kSpillDir = ".convert_spill";

/// Parses a 14-digit GDELT timestamp field into an interval id.
/// Returns false (and leaves `out` unchanged) on malformed input.
bool FieldToInterval(std::string_view field, IntervalId& out) {
  const auto parsed = ParseGdeltTimestamp(field);
  if (!parsed.ok()) return false;
  out = IntervalOfCivil(parsed.value());
  return true;
}

/// Parses the Events "Day" field (YYYYMMDD) into the interval of midnight.
bool DayToInterval(std::string_view field, IntervalId& out) {
  const auto day = ParseUint64(field);
  if (!day || *day < 19000101 || *day > 99991231) return false;
  const auto packed = *day * 1000000ull;  // midnight
  const auto parsed = ParseGdeltTimestamp(packed);
  if (!parsed.ok()) return false;
  out = IntervalOfCivil(parsed.value());
  return true;
}

struct EventColumns {
  Column* global_id;
  Column* event_interval;
  Column* added_interval;
  Column* country;
  Column* num_articles_wire;
  Column* goldstein;
  Column* avg_tone;
  Column* quad_class;
  Column* source_url;
};

EventColumns AddEventColumns(Table& table) {
  EventColumns ec{};
  ec.global_id = &table.AddColumn(std::string(events_col::kGlobalId),
                                  ColumnType::kU64);
  ec.event_interval = &table.AddColumn(
      std::string(events_col::kEventInterval), ColumnType::kI64);
  ec.added_interval = &table.AddColumn(
      std::string(events_col::kAddedInterval), ColumnType::kI64);
  ec.country =
      &table.AddColumn(std::string(events_col::kCountry), ColumnType::kU16);
  ec.num_articles_wire = &table.AddColumn(
      std::string(events_col::kNumArticlesWire), ColumnType::kU32);
  ec.goldstein = &table.AddColumn(std::string(events_col::kGoldstein),
                                  ColumnType::kF64);
  ec.avg_tone =
      &table.AddColumn(std::string(events_col::kAvgTone), ColumnType::kF64);
  ec.quad_class = &table.AddColumn(std::string(events_col::kQuadClass),
                                   ColumnType::kU8);
  ec.source_url = &table.AddColumn(std::string(events_col::kSourceUrl),
                                   ColumnType::kStr);
  return ec;
}

struct MentionColumns {
  Column* event_row;
  Column* global_event_id;
  Column* event_interval;
  Column* mention_interval;
  Column* source_id;
  Column* confidence;
  Column* url;  // may be null when keep_urls = false
};

MentionColumns AddMentionColumns(Table& table, bool keep_urls) {
  MentionColumns mc{};
  mc.event_row = &table.AddColumn(std::string(mentions_col::kEventRow),
                                  ColumnType::kU32);
  mc.global_event_id = &table.AddColumn(
      std::string(mentions_col::kGlobalEventId), ColumnType::kU64);
  mc.event_interval = &table.AddColumn(
      std::string(mentions_col::kEventInterval), ColumnType::kI64);
  mc.mention_interval = &table.AddColumn(
      std::string(mentions_col::kMentionInterval), ColumnType::kI64);
  mc.source_id = &table.AddColumn(std::string(mentions_col::kSourceId),
                                  ColumnType::kU32);
  mc.confidence = &table.AddColumn(std::string(mentions_col::kConfidence),
                                   ColumnType::kU8);
  mc.url = keep_urls ? &table.AddColumn(std::string(mentions_col::kUrl),
                                        ColumnType::kStr)
                     : nullptr;
  return mc;
}

// Mention spill columns: parsed fields with the source still a string (the
// dictionary is built deterministically at merge time, in master order).
namespace spill_col {
constexpr std::string_view kGid = "gid";
constexpr std::string_view kEventInterval = "event_interval";
constexpr std::string_view kMentionInterval = "mention_interval";
constexpr std::string_view kSourceName = "source_name";
constexpr std::string_view kConfidence = "confidence";
constexpr std::string_view kUrl = "url";
}  // namespace spill_col

struct MentionSpillColumns {
  Column* gid;
  Column* event_interval;
  Column* mention_interval;
  Column* source_name;
  Column* confidence;
  Column* url;  // may be null when keep_urls = false
};

MentionSpillColumns AddMentionSpillColumns(Table& table, bool keep_urls) {
  MentionSpillColumns sc{};
  sc.gid = &table.AddColumn(std::string(spill_col::kGid), ColumnType::kU64);
  sc.event_interval = &table.AddColumn(
      std::string(spill_col::kEventInterval), ColumnType::kI64);
  sc.mention_interval = &table.AddColumn(
      std::string(spill_col::kMentionInterval), ColumnType::kI64);
  sc.source_name = &table.AddColumn(std::string(spill_col::kSourceName),
                                    ColumnType::kStr);
  sc.confidence = &table.AddColumn(std::string(spill_col::kConfidence),
                                   ColumnType::kU8);
  sc.url = keep_urls ? &table.AddColumn(std::string(spill_col::kUrl),
                                        ColumnType::kStr)
                     : nullptr;
  return sc;
}

/// Per-archive parse outcome; persisted in the journal so a resumed run
/// restores the same report counters without re-parsing.
struct ArchiveRecord {
  char kind = '?';  ///< 'e' events, 'm' mentions
  std::uint64_t rows = 0;
  std::uint64_t malformed = 0;
  std::uint32_t missing_url = 0;
};

// ---- Journal ----------------------------------------------------------
//
// Append-only text file in the output directory. Each line is
// "<crc32-8hex> <body>\n" where the CRC covers the body, so a line torn
// by kill -9 is detected and replay stops there. Bodies:
//   begin <master-list crc32> <keep_urls 0|1>
//   archive <e|m> <rows> <malformed> <missing_url> <file name>
//   corrupt <file name>

class Journal {
 public:
  ~Journal() { Close(); }

  Status Open(const std::string& path) {
    file_ = std::fopen(path.c_str(), "ab");
    if (!file_) {
      return status::IoError("cannot open journal '" + path + "'");
    }
    path_ = path;
    return Status::Ok();
  }

  Status Append(const std::string& body) {
    if (!file_) return status::FailedPrecondition("journal not open");
    const std::string line = StrFormat("%08x ", Crc32(body)) + body + "\n";
    if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||
        std::fflush(file_) != 0) {
      return status::IoError("journal append failed on '" + path_ + "'");
    }
    ::fsync(::fileno(file_));  // an unjournaled archive is merely redone
    return Status::Ok();
  }

  void Close() {
    if (file_) std::fclose(file_);
    file_ = nullptr;
  }

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
};

/// Journal replay result: which archives an earlier run already handled.
struct JournalState {
  bool header_ok = false;
  std::unordered_map<std::string, ArchiveRecord> done;
  std::unordered_set<std::string> corrupt;
};

std::optional<std::uint32_t> ParseHex32(std::string_view s) {
  std::uint32_t v = 0;
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), v, 16);
  if (ec != std::errc() || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

/// Replays a journal left by an interrupted run. Tolerant by design:
/// any torn or mismatched content just means "start that work over".
JournalState ReplayJournal(const std::string& path,
                           std::uint32_t master_crc, bool keep_urls) {
  JournalState state;
  if (!FileExists(path)) return state;
  auto text = ReadWholeFile(path);
  if (!text.ok()) return state;
  bool first = true;
  for (std::string_view rest = *text; !rest.empty();) {
    const auto nl = rest.find('\n');
    if (nl == std::string_view::npos) break;  // torn tail line
    const std::string_view line = rest.substr(0, nl);
    rest = rest.substr(nl + 1);
    if (line.size() < 10 || line[8] != ' ') break;
    const auto crc = ParseHex32(line.substr(0, 8));
    const std::string_view body = line.substr(9);
    if (!crc || *crc != Crc32(body)) break;  // torn or corrupted line
    const auto fields = SplitView(body, ' ');
    if (first) {
      first = false;
      // Header must match this run's input and options exactly; anything
      // else is a journal from a different conversion.
      if (fields.size() != 3 || fields[0] != "begin" ||
          ParseUint64(fields[1]).value_or(~0ull) != master_crc ||
          fields[2] != (keep_urls ? "1" : "0")) {
        return state;
      }
      state.header_ok = true;
      continue;
    }
    if (fields.size() == 6 && fields[0] == "archive" &&
        fields[1].size() == 1 &&
        (fields[1][0] == 'e' || fields[1][0] == 'm')) {
      ArchiveRecord rec;
      rec.kind = fields[1][0];
      const auto rows = ParseUint64(fields[2]);
      const auto malformed = ParseUint64(fields[3]);
      const auto missing = ParseUint64(fields[4]);
      if (!rows || !malformed || !missing) break;
      rec.rows = *rows;
      rec.malformed = *malformed;
      rec.missing_url = static_cast<std::uint32_t>(*missing);
      state.done.emplace(std::string(fields[5]), rec);
    } else if (fields.size() == 2 && fields[0] == "corrupt") {
      state.corrupt.insert(std::string(fields[1]));
    } else {
      break;  // unknown record: stop trusting the rest
    }
  }
  return state;
}

// ---- Per-archive parsing into spill tables ----------------------------

/// Parses one export archive's CSV into a spill table. Duplicate global
/// ids are NOT resolved here — dedup needs global order and happens at
/// merge time so resumed runs stay deterministic.
ArchiveRecord ParseEventsCsv(std::string_view csv, Table& spill) {
  ArchiveRecord rec;
  rec.kind = 'e';
  EventColumns ec = AddEventColumns(spill);
  RowReader rows(csv, kEventFieldCount);
  const std::vector<std::string_view>* fields = nullptr;
  while (rows.Next(fields)) {
    const auto& f = *fields;
    const auto gid = ParseUint64(f[Index(EventField::kGlobalEventId)]);
    IntervalId day_interval = 0;
    IntervalId added_interval = 0;
    if (!gid || !DayToInterval(f[Index(EventField::kDay)], day_interval) ||
        !FieldToInterval(f[Index(EventField::kDateAdded)], added_interval)) {
      ++rec.malformed;
      continue;
    }
    const std::string_view url = f[Index(EventField::kSourceUrl)];
    if (url.empty()) ++rec.missing_url;

    CountryId country = kNoCountry;
    const std::string_view fips = f[Index(EventField::kActionGeoCountryCode)];
    if (!fips.empty()) {
      if (const auto c = CountryByFips(fips)) country = *c;
    }
    ec.global_id->Append<std::uint64_t>(*gid);
    ec.event_interval->Append<std::int64_t>(day_interval);
    ec.added_interval->Append<std::int64_t>(added_interval);
    ec.country->Append<std::uint16_t>(country);
    ec.num_articles_wire->Append<std::uint32_t>(static_cast<std::uint32_t>(
        ParseUint64(f[Index(EventField::kNumArticles)]).value_or(0)));
    ec.goldstein->Append<double>(
        ParseDouble(f[Index(EventField::kGoldsteinScale)]).value_or(0.0));
    ec.avg_tone->Append<double>(
        ParseDouble(f[Index(EventField::kAvgTone)]).value_or(0.0));
    ec.quad_class->Append<std::uint8_t>(static_cast<std::uint8_t>(
        ParseUint64(f[Index(EventField::kQuadClass)]).value_or(0)));
    ec.source_url->AppendString(url);
    ++rec.rows;
  }
  rec.malformed += rows.errors().size();
  return rec;
}

/// Parses one mentions archive's CSV into a spill table. Event-row and
/// source-id resolution (which need global state) happen at merge time.
ArchiveRecord ParseMentionsCsv(std::string_view csv, bool keep_urls,
                               Table& spill) {
  ArchiveRecord rec;
  rec.kind = 'm';
  MentionSpillColumns sc = AddMentionSpillColumns(spill, keep_urls);
  RowReader rows(csv, kMentionFieldCount);
  const std::vector<std::string_view>* fields = nullptr;
  while (rows.Next(fields)) {
    const auto& f = *fields;
    const auto gid = ParseUint64(f[Index(MentionField::kGlobalEventId)]);
    IntervalId event_interval = 0;
    IntervalId mention_interval = 0;
    if (!gid ||
        !FieldToInterval(f[Index(MentionField::kEventTimeDate)],
                         event_interval) ||
        !FieldToInterval(f[Index(MentionField::kMentionTimeDate)],
                         mention_interval)) {
      ++rec.malformed;
      continue;
    }
    const std::string_view source_name =
        f[Index(MentionField::kMentionSourceName)];
    if (source_name.empty()) {
      ++rec.malformed;
      continue;
    }
    sc.gid->Append<std::uint64_t>(*gid);
    sc.event_interval->Append<std::int64_t>(event_interval);
    sc.mention_interval->Append<std::int64_t>(mention_interval);
    sc.source_name->AppendString(source_name);
    sc.confidence->Append<std::uint8_t>(static_cast<std::uint8_t>(
        ParseUint64(f[Index(MentionField::kConfidence)]).value_or(0)));
    if (sc.url) sc.url->AppendString(f[Index(MentionField::kMentionIdentifier)]);
    ++rec.rows;
  }
  rec.malformed += rows.errors().size();
  return rec;
}

std::string SpillPath(const std::string& spill_dir,
                      const std::string& file_name) {
  return spill_dir + "/" + file_name + ".spill";
}

/// Fetches a required spill column or fails with DataLoss (a foreign or
/// damaged spill must abort the merge, not crash it).
Result<const Column*> SpillColumn(const Table& spill, std::string_view name,
                                  ColumnType type,
                                  const std::string& spill_path) {
  const Column* col = spill.FindColumn(name);
  if (!col || col->type() != type) {
    return status::DataLoss("spill file '" + spill_path +
                            "' lacks column '" + std::string(name) + "'");
  }
  return col;
}

}  // namespace

std::string ConvertReport::ToText() const {
  std::string out;
  out += "GDELT conversion report\n";
  out += "=======================\n";
  out += StrFormat("archives processed:              %llu\n",
                   static_cast<unsigned long long>(archives_processed));
  out += StrFormat("event rows:                      %llu\n",
                   static_cast<unsigned long long>(event_rows));
  out += StrFormat("mention rows:                    %llu\n",
                   static_cast<unsigned long long>(mention_rows));
  out += StrFormat("distinct sources:                %u\n", num_sources);
  out += "\nProblems found during dataset analysis (cf. paper Table II)\n";
  out += StrFormat("missformatted master entries:    %u\n",
                   malformed_master_entries);
  out += StrFormat("missing archives:                %u\n", missing_archives);
  out += StrFormat("missing event source URL:        %u\n",
                   missing_event_source_url);
  out += StrFormat("event date after first article:  %u\n",
                   future_event_dates);
  out += StrFormat("corrupt archives:                %u\n", corrupt_archives);
  out += StrFormat("malformed rows:                  %llu\n",
                   static_cast<unsigned long long>(malformed_rows));
  out += StrFormat("orphan mentions:                 %llu\n",
                   static_cast<unsigned long long>(orphan_mentions));
  out += "\nOperational robustness\n";
  out += StrFormat("fetch retries:                   %llu\n",
                   static_cast<unsigned long long>(fetch_retries));
  out += StrFormat("quarantined archives:            %u\n",
                   quarantined_archives);
  out += StrFormat("resumed (journaled) archives:    %u\n", resumed_archives);
  for (const auto& note : notes) {
    out += "note: " + note + "\n";
  }
  return out;
}

Result<ConvertReport> ConvertDataset(const ConvertOptions& options) {
  TRACE_SPAN("convert.dataset");
  ConvertReport report;

  trace::Span master_span("convert.master_list");
  GDELT_ASSIGN_OR_RETURN(
      const std::string master_text,
      ReadWholeFile(options.input_dir + "/masterfilelist.txt"));
  const std::uint32_t master_crc = Crc32(master_text);
  MasterList master = ParseMasterList(master_text);
  master_span.Finish();
  report.malformed_master_entries = master.malformed_entries;
  for (const auto& sample : master.malformed_samples) {
    report.notes.push_back("malformed master entry: '" + sample + "'");
  }

  GDELT_RETURN_IF_ERROR(MakeDirectories(options.output_dir));
  const std::string journal_path =
      options.output_dir + "/" + std::string(kJournalFile);
  const std::string spill_dir =
      options.output_dir + "/" + std::string(kSpillDir);

  JournalState resumed;
  if (options.resume) {
    resumed = ReplayJournal(journal_path, master_crc, options.keep_urls);
    if (!resumed.header_ok && FileExists(journal_path)) {
      report.notes.push_back(
          "resume requested but journal does not match this input; "
          "starting fresh");
    }
  }
  if (!resumed.header_ok) {
    // Fresh conversion: stale journal or spills belong to another run.
    GDELT_RETURN_IF_ERROR(RemoveAll(journal_path));
    GDELT_RETURN_IF_ERROR(RemoveAll(spill_dir));
  }
  GDELT_RETURN_IF_ERROR(MakeDirectories(spill_dir));

  Journal journal;
  GDELT_RETURN_IF_ERROR(journal.Open(journal_path));
  if (!resumed.header_ok) {
    GDELT_RETURN_IF_ERROR(journal.Append(StrFormat(
        "begin %llu %s", static_cast<unsigned long long>(master_crc),
        options.keep_urls ? "1" : "0")));
  }

  // Check archive availability once; classify into processing lists.
  // Missing archives are counted per dataset chunk (distinct timestamp
  // prefix), matching the paper's "missing archives for dataset chunks".
  // Archives the journal already settled are never re-statted: their
  // outcome is fixed even if the mirror changed under us.
  std::vector<const MasterEntry*> export_archives;
  std::vector<const MasterEntry*> mention_archives;
  std::set<std::string_view> missing_chunk_stamps;
  for (const auto& entry : master.entries) {
    const bool settled = resumed.done.count(entry.file_name) != 0 ||
                         resumed.corrupt.count(entry.file_name) != 0;
    if (!settled && !FileExists(options.input_dir + "/" + entry.file_name)) {
      const std::string_view name = entry.file_name;
      missing_chunk_stamps.insert(name.substr(0, name.find('.')));
      continue;
    }
    switch (entry.kind) {
      case ArchiveKind::kExport: export_archives.push_back(&entry); break;
      case ArchiveKind::kMentions: mention_archives.push_back(&entry); break;
      case ArchiveKind::kOther:
        report.notes.push_back("unrecognized archive name: " +
                               entry.file_name);
        break;
    }
  }
  report.missing_archives =
      static_cast<std::uint32_t>(missing_chunk_stamps.size());

  ChunkFetcher fetcher(options.fetch);

  // Acquires, parses and spills one archive (or restores its journaled
  // outcome). Only bookkeeping differs between the two archive kinds.
  auto process = [&](const MasterEntry& entry, char kind) -> Status {
    if (const auto it = resumed.done.find(entry.file_name);
        it != resumed.done.end()) {
      const ArchiveRecord& rec = it->second;
      ++report.archives_processed;
      ++report.resumed_archives;
      report.malformed_rows += rec.malformed;
      report.missing_event_source_url += rec.missing_url;
      return Status::Ok();
    }
    if (resumed.corrupt.count(entry.file_name) != 0) {
      ++report.corrupt_archives;
      report.notes.push_back("corrupt archive (journaled): " +
                             entry.file_name);
      return Status::Ok();
    }
    auto csv = fetcher.FetchCsv(
        options.input_dir, entry.file_name,
        options.verify_archive_checksums
            ? std::optional<std::uint32_t>(entry.crc32)
            : std::nullopt);
    if (!csv.ok()) {
      ++report.corrupt_archives;
      report.notes.push_back(csv.status().ToString());
      return journal.Append("corrupt " + entry.file_name);
    }
    Table spill;
    const ArchiveRecord rec =
        kind == 'e' ? ParseEventsCsv(*csv, spill)
                    : ParseMentionsCsv(*csv, options.keep_urls, spill);
    // Spill first, then journal: an archive is "done" only once its spill
    // is durably on disk, so a crash between the two merely redoes it.
    GDELT_RETURN_IF_ERROR(spill.WriteToFileAtomic(
        SpillPath(spill_dir, entry.file_name)));
    GDELT_RETURN_IF_ERROR(journal.Append(StrFormat(
        "archive %c %llu %llu %u %s", kind,
        static_cast<unsigned long long>(rec.rows),
        static_cast<unsigned long long>(rec.malformed), rec.missing_url,
        entry.file_name.c_str())));
    ++report.archives_processed;
    report.malformed_rows += rec.malformed;
    report.missing_event_source_url += rec.missing_url;
    return Status::Ok();
  };

  {
    TRACE_SPAN("convert.spill");
    for (const MasterEntry* entry : export_archives) {
      GDELT_RETURN_IF_ERROR(process(*entry, 'e'));
    }
    for (const MasterEntry* entry : mention_archives) {
      GDELT_RETURN_IF_ERROR(process(*entry, 'm'));
    }
  }

  // ---- Merge pass: spills (in master order) -> final tables ------------
  // Everything that needs global state lives here: duplicate-event
  // resolution, the source dictionary, event-row binding, orphan and
  // future-dated counting. The merge is a pure function of the spill set,
  // so interrupted and uninterrupted runs produce byte-identical tables.

  trace::Span merge_events_span("convert.merge_events");
  Table events;
  EventColumns ec = AddEventColumns(events);
  std::unordered_map<std::uint64_t, std::uint32_t> event_row_of;
  for (const MasterEntry* entry : export_archives) {
    if (resumed.corrupt.count(entry->file_name) != 0) continue;
    const std::string path = SpillPath(spill_dir, entry->file_name);
    if (!FileExists(path)) continue;  // archive went corrupt this run
    GDELT_ASSIGN_OR_RETURN(Table spill, Table::ReadFromFile(path));
    GDELT_ASSIGN_OR_RETURN(
        const Column* gid_col,
        SpillColumn(spill, events_col::kGlobalId, ColumnType::kU64, path));
    const auto gids = gid_col->Values<std::uint64_t>();
    for (std::size_t i = 0; i < gids.size(); ++i) {
      const auto row = static_cast<std::uint32_t>(events.num_rows());
      if (!event_row_of.emplace(gids[i], row).second) {
        ++report.malformed_rows;  // duplicate event id
        continue;
      }
      ec.global_id->Append<std::uint64_t>(gids[i]);
      ec.event_interval->Append<std::int64_t>(
          spill.GetColumn(events_col::kEventInterval)
              .Values<std::int64_t>()[i]);
      ec.added_interval->Append<std::int64_t>(
          spill.GetColumn(events_col::kAddedInterval)
              .Values<std::int64_t>()[i]);
      ec.country->Append<std::uint16_t>(
          spill.GetColumn(events_col::kCountry).Values<std::uint16_t>()[i]);
      ec.num_articles_wire->Append<std::uint32_t>(
          spill.GetColumn(events_col::kNumArticlesWire)
              .Values<std::uint32_t>()[i]);
      ec.goldstein->Append<double>(
          spill.GetColumn(events_col::kGoldstein).Values<double>()[i]);
      ec.avg_tone->Append<double>(
          spill.GetColumn(events_col::kAvgTone).Values<double>()[i]);
      ec.quad_class->Append<std::uint8_t>(
          spill.GetColumn(events_col::kQuadClass).Values<std::uint8_t>()[i]);
      ec.source_url->AppendString(
          spill.GetColumn(events_col::kSourceUrl).StringAt(i));
    }
  }
  report.event_rows = events.num_rows();
  merge_events_span.Finish();

  trace::Span merge_mentions_span("convert.merge_mentions");
  Table mentions;
  MentionColumns mc = AddMentionColumns(mentions, options.keep_urls);
  StringDictionary sources;
  // Events whose recorded time postdates one of their article captures
  // (Table II row 4). Flag per dense event row, counted once per event.
  std::vector<bool> future_dated(events.num_rows(), false);
  for (const MasterEntry* entry : mention_archives) {
    if (resumed.corrupt.count(entry->file_name) != 0) continue;
    const std::string path = SpillPath(spill_dir, entry->file_name);
    if (!FileExists(path)) continue;
    GDELT_ASSIGN_OR_RETURN(Table spill, Table::ReadFromFile(path));
    GDELT_ASSIGN_OR_RETURN(
        const Column* gid_col,
        SpillColumn(spill, spill_col::kGid, ColumnType::kU64, path));
    const auto gids = gid_col->Values<std::uint64_t>();
    const auto event_ivs =
        spill.GetColumn(spill_col::kEventInterval).Values<std::int64_t>();
    const auto mention_ivs =
        spill.GetColumn(spill_col::kMentionInterval).Values<std::int64_t>();
    const auto confidences =
        spill.GetColumn(spill_col::kConfidence).Values<std::uint8_t>();
    const Column& names = spill.GetColumn(spill_col::kSourceName);
    const Column* urls =
        options.keep_urls ? spill.FindColumn(spill_col::kUrl) : nullptr;
    if (options.keep_urls && !urls) {
      return status::DataLoss("spill file '" + path + "' lacks URLs");
    }
    for (std::size_t i = 0; i < gids.size(); ++i) {
      std::uint32_t event_row = kOrphanEventRow;
      const auto it = event_row_of.find(gids[i]);
      if (it != event_row_of.end()) {
        event_row = it->second;
        if (mention_ivs[i] < event_ivs[i] && !future_dated[event_row]) {
          future_dated[event_row] = true;
          ++report.future_event_dates;
        }
      } else {
        ++report.orphan_mentions;
      }
      mc.event_row->Append<std::uint32_t>(event_row);
      mc.global_event_id->Append<std::uint64_t>(gids[i]);
      mc.event_interval->Append<std::int64_t>(event_ivs[i]);
      mc.mention_interval->Append<std::int64_t>(mention_ivs[i]);
      mc.source_id->Append<std::uint32_t>(sources.GetOrAdd(names.StringAt(i)));
      mc.confidence->Append<std::uint8_t>(confidences[i]);
      if (mc.url) mc.url->AppendString(urls->StringAt(i));
    }
  }
  report.mention_rows = mentions.num_rows();
  report.num_sources = sources.size();
  merge_mentions_span.Finish();

  const FetchStats fetch_stats = fetcher.stats();
  report.fetch_retries = fetch_stats.retries;
  report.quarantined_archives =
      static_cast<std::uint32_t>(fetch_stats.quarantined);

  // ---- Write the binary database ---------------------------------------
  // Atomic renames: a reader (or a crash) never sees a torn table. The
  // journal and spills are only removed after all three tables landed, so
  // a failure anywhere below resumes straight into the merge.
  TRACE_SPAN("convert.write_tables");
  GDELT_RETURN_IF_ERROR(events.WriteToFileAtomic(
      options.output_dir + "/" + std::string(kEventsTableFile)));
  GDELT_RETURN_IF_ERROR(mentions.WriteToFileAtomic(
      options.output_dir + "/" + std::string(kMentionsTableFile)));
  GDELT_RETURN_IF_ERROR(sources.WriteToFileAtomic(
      options.output_dir + "/" + std::string(kSourcesDictFile)));
  GDELT_RETURN_IF_ERROR(WriteWholeFileAtomic(
      options.output_dir + "/" + std::string(kReportFile), report.ToText()));
  journal.Close();
  GDELT_RETURN_IF_ERROR(RemoveAll(journal_path));
  GDELT_RETURN_IF_ERROR(RemoveAll(spill_dir));
  GDELT_LOG(kInfo,
            StrFormat("converted %llu events, %llu mentions, %u sources",
                      static_cast<unsigned long long>(report.event_rows),
                      static_cast<unsigned long long>(report.mention_rows),
                      report.num_sources));
  return report;
}

}  // namespace gdelt::convert
