// The preprocessing tool: raw GDELT archives -> indexed binary database.
//
// "Before working with the data, we once convert GDELT database files with
//  our preprocessing tool in order to build indexed version of the database
//  which contains data fields in machine-readable binary format."
//  (Section IV.) Cleaning happens here; the defects found are reported in
//  the style of Table II.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "convert/fetcher.hpp"
#include "util/status.hpp"

namespace gdelt::convert {

struct ConvertOptions {
  std::string input_dir;   ///< directory with masterfilelist.txt + archives
  std::string output_dir;  ///< destination for the binary database
  /// Keep article URLs in the binary mentions table. Costs most of the
  /// storage; the paper's queries don't need them, but the data is there.
  bool keep_urls = true;
  /// Verify each archive's CRC against the master list before parsing.
  bool verify_archive_checksums = true;
  /// Skip archives journaled by an interrupted earlier run against the
  /// same input. The resumed run produces byte-identical tables.
  bool resume = false;
  /// Retry/backoff/quarantine policy for archive acquisition.
  FetchPolicy fetch;
};

/// Everything the conversion learned — Table II plus bookkeeping.
struct ConvertReport {
  // volume
  std::uint64_t archives_processed = 0;
  std::uint64_t event_rows = 0;
  std::uint64_t mention_rows = 0;
  std::uint32_t num_sources = 0;

  // Table II defects
  std::uint32_t malformed_master_entries = 0;
  std::uint32_t missing_archives = 0;
  std::uint32_t missing_event_source_url = 0;
  std::uint32_t future_event_dates = 0;

  // additional cleaning results
  std::uint32_t corrupt_archives = 0;     ///< CRC/zip failures after retries
  std::uint64_t malformed_rows = 0;       ///< wrong column count / bad fields
  std::uint64_t orphan_mentions = 0;      ///< mention of an unknown event

  // operational robustness
  std::uint64_t fetch_retries = 0;        ///< extra fetch attempts
  std::uint32_t quarantined_archives = 0; ///< copied to quarantine dir
  std::uint32_t resumed_archives = 0;     ///< skipped via --resume journal

  std::vector<std::string> notes;

  /// Renders the report as text (written next to the binary tables).
  std::string ToText() const;
};

/// Runs the conversion. The output directory will contain events.tbl,
/// mentions.tbl, sources.dict and convert_report.txt.
Result<ConvertReport> ConvertDataset(const ConvertOptions& options);

}  // namespace gdelt::convert
