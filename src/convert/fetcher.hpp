// Robust archive acquisition for the ingest tier.
//
// The mirror directory stands in for GDELT's HTTP mirror, whose transient
// failures are the common case at scale. ChunkFetcher wraps the raw
// read-verify-unzip sequence with bounded retries, exponential backoff
// with deterministic jitter, a per-archive wall-clock deadline, CRC
// re-verification on every attempt, and a quarantine directory for
// archives that stay corrupt after all retries. Both the batch converter
// and the streaming DeltaStore acquire archives through this class, so
// they share one failure policy and one set of health counters.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "util/status.hpp"
#include "util/sync.hpp"

namespace gdelt::convert {

/// Retry/backoff/quarantine knobs. The defaults suit tests and local
/// mirrors; production deployments raise the deadline and backoff.
struct FetchPolicy {
  std::uint32_t max_attempts = 3;        ///< total tries per archive
  std::uint64_t backoff_initial_ms = 25; ///< delay after the first failure
  double backoff_multiplier = 2.0;
  std::uint64_t backoff_max_ms = 2000;
  std::uint64_t archive_deadline_ms = 30000;  ///< wall budget per archive
  std::uint64_t jitter_seed = 0;  ///< jitter PRNG seed (replayable)
  std::string quarantine_dir;     ///< empty = do not quarantine
};

/// Counters describing the fetcher's life so far. Plain values — a
/// consistent snapshot copied under the fetcher's mutex (all four counters
/// from the same instant), safe to read from the serving thread while
/// ingest is running.
struct FetchStats {
  std::uint64_t attempts = 0;     ///< individual fetch attempts
  std::uint64_t retries = 0;      ///< attempts beyond the first
  std::uint64_t failures = 0;     ///< archives given up on
  std::uint64_t quarantined = 0;  ///< archives copied to quarantine
};

/// Fetches one archive's CSV payload with retries. Thread-compatible for
/// fetching (external synchronization); stats() is thread-safe.
class ChunkFetcher {
 public:
  explicit ChunkFetcher(FetchPolicy policy);

  /// Reads `dir/file_name`, verifies its CRC-32 against `expected_crc`
  /// when provided, opens the zip and returns entry 0's bytes. Retries
  /// per policy; on final failure copies the archive (and a `.reason`
  /// file) into the quarantine directory and returns the last error.
  Result<std::string> FetchCsv(const std::string& dir,
                               const std::string& file_name,
                               std::optional<std::uint32_t> expected_crc);

  /// Snapshot of the health counters.
  FetchStats stats() const noexcept;

  const FetchPolicy& policy() const noexcept { return policy_; }

  /// Test hook: replaces the real sleep between attempts.
  using SleepFn = std::function<void(std::uint64_t /*ms*/)>;
  void set_sleep_fn(SleepFn fn) { sleep_fn_ = std::move(fn); }

 private:
  /// Backoff delay before attempt `attempt` (2-based) of `file_name`,
  /// with deterministic per-archive jitter.
  std::uint64_t BackoffMs(const std::string& file_name,
                          std::uint32_t attempt) const;

  void Quarantine(const std::string& dir, const std::string& file_name,
                  const Status& why);

  FetchPolicy policy_;
  SleepFn sleep_fn_;
  /// Counter bumps sit on the retry/failure slow path (milliseconds of
  /// backoff dwarf a lock), so a mutex buys a consistent snapshot for
  /// free.
  mutable sync::Mutex stats_mu_;
  FetchStats stats_ GDELT_GUARDED_BY(stats_mu_);
};

}  // namespace gdelt::convert
