// Names of the files and columns of the converted binary database.
// Shared contract between the converter (writer) and the engine (reader).
#pragma once

#include <string_view>

namespace gdelt::convert {

inline constexpr std::string_view kEventsTableFile = "events.tbl";
inline constexpr std::string_view kMentionsTableFile = "mentions.tbl";
inline constexpr std::string_view kSourcesDictFile = "sources.dict";
inline constexpr std::string_view kReportFile = "convert_report.txt";

// Events table columns (row order = dense event index).
namespace events_col {
inline constexpr std::string_view kGlobalId = "global_id";
inline constexpr std::string_view kEventInterval = "event_interval";
inline constexpr std::string_view kAddedInterval = "added_interval";
inline constexpr std::string_view kCountry = "country";          // u16, 0xFFFF = untagged
inline constexpr std::string_view kNumArticlesWire = "num_articles_wire";
inline constexpr std::string_view kGoldstein = "goldstein";
inline constexpr std::string_view kAvgTone = "avg_tone";
inline constexpr std::string_view kQuadClass = "quad_class";
inline constexpr std::string_view kSourceUrl = "source_url";
}  // namespace events_col

// Mentions table columns (row order = capture order).
namespace mentions_col {
inline constexpr std::string_view kEventRow = "event_row";       // u32 dense; 0xFFFFFFFF = orphan
inline constexpr std::string_view kGlobalEventId = "global_event_id";
inline constexpr std::string_view kEventInterval = "event_interval";
inline constexpr std::string_view kMentionInterval = "mention_interval";
inline constexpr std::string_view kSourceId = "source_id";       // u32 dictionary id
inline constexpr std::string_view kConfidence = "confidence";
inline constexpr std::string_view kUrl = "url";
}  // namespace mentions_col

/// Sentinel for a mention whose event row is unknown (event lost with a
/// missing archive).
inline constexpr std::uint32_t kOrphanEventRow = 0xFFFFFFFFu;

}  // namespace gdelt::convert
