#include "stream/delta_store.hpp"

#include <algorithm>
#include <filesystem>
#include <numeric>

#include "convert/binary_format.hpp"
#include "csv/tsv.hpp"
#include "gtime/timestamp.hpp"
#include "schema/gdelt_schema.hpp"
#include "util/strings.hpp"

namespace gdelt::stream {
namespace {

bool FieldToInterval(std::string_view field, std::int64_t& out) {
  const auto parsed = ParseGdeltTimestamp(field);
  if (!parsed.ok()) return false;
  out = IntervalOfCivil(parsed.value());
  return true;
}

}  // namespace

DeltaStore::DeltaStore(const engine::Database* base)
    : base_(base),
      fetcher_(std::make_shared<convert::ChunkFetcher>(
          convert::FetchPolicy{})) {
  if (base_) {
    base_sources_ = base_->num_sources();
    // Global event id -> base row, for resolving delta mentions of events
    // that entered the database before streaming began. No other thread
    // can hold the store yet, but the lock keeps the guarded-field
    // invariant uniform.
    sync::MutexLock lock(mu_);
    base_event_row_of_.reserve(base_->num_events());
    const auto gids = base_->event_global_id();
    for (std::size_t r = 0; r < gids.size(); ++r) {
      base_event_row_of_.emplace(gids[r], static_cast<std::uint32_t>(r));
    }
  }
}

std::uint32_t DeltaStore::SourceIdForLocked(std::string_view domain) {
  if (base_) {
    if (const auto id = base_->sources().Find(domain)) return *id;
  }
  const auto it = new_source_ids_.find(std::string(domain));
  if (it != new_source_ids_.end()) return base_sources_ + it->second;
  const auto idx = static_cast<std::uint32_t>(new_sources_.size());
  new_sources_.emplace_back(domain);
  new_source_ids_.emplace(new_sources_.back(), idx);
  return base_sources_ + idx;
}

std::uint32_t DeltaStore::NumSourcesLocked() const {
  return base_sources_ + static_cast<std::uint32_t>(new_sources_.size());
}

std::uint32_t DeltaStore::num_sources() const {
  sync::MutexLock lock(mu_);
  return NumSourcesLocked();
}

std::uint64_t DeltaStore::delta_events() const {
  sync::MutexLock lock(mu_);
  return event_interval_.size();
}

std::uint64_t DeltaStore::delta_mentions() const {
  sync::MutexLock lock(mu_);
  return mention_source_.size();
}

std::uint64_t DeltaStore::malformed_rows() const {
  sync::MutexLock lock(mu_);
  return malformed_rows_;
}

std::string DeltaStore::source_domain(std::uint32_t id) const {
  if (id < base_sources_) return std::string(base_->source_domain(id));
  // Copied under the lock: SSO strings live inside the vector's buffer,
  // so a view into an element would dangle when a concurrent ingest grows
  // new_sources_ past capacity.
  sync::MutexLock lock(mu_);
  return new_sources_[id - base_sources_];
}

void DeltaStore::set_fetch_policy(const convert::FetchPolicy& policy) {
  sync::MutexLock lock(mu_);
  fetcher_ = std::make_shared<convert::ChunkFetcher>(policy);
}

convert::FetchStats DeltaStore::fetch_stats() const {
  sync::MutexLock lock(mu_);
  return fetcher_->stats();
}

Status DeltaStore::IngestArchivePair(const std::string& export_zip_path,
                                     const std::string& mentions_zip_path) {
  // Acquire and verify BOTH archives before touching store state: the zip
  // entry CRC check inside the fetcher rejects torn payloads, and the row
  // parsers below never fail (malformed rows are counted). So a failure on
  // either side leaves the store — and Generation() — exactly as it was.
  //
  // The fetch itself (retries, backoff sleeps) runs without the store
  // lock so combined queries keep answering while a flaky archive is
  // retried for seconds. set_fetch_policy during an in-flight fetch swaps
  // the pointer for later calls; the snapshot keeps this one alive.
  std::shared_ptr<convert::ChunkFetcher> fetcher;
  {
    sync::MutexLock lock(mu_);
    fetcher = fetcher_;
  }
  auto fetch = [&](const std::string& path) -> Result<std::string> {
    const std::filesystem::path p(path);
    return fetcher->FetchCsv(p.parent_path().string(),
                             p.filename().string(), std::nullopt);
  };
  std::string events_csv;
  std::string mentions_csv;
  if (!export_zip_path.empty()) {
    GDELT_ASSIGN_OR_RETURN(events_csv, fetch(export_zip_path));
  }
  if (!mentions_zip_path.empty()) {
    GDELT_ASSIGN_OR_RETURN(mentions_csv, fetch(mentions_zip_path));
  }
  {
    sync::MutexLock lock(mu_);
    if (!export_zip_path.empty()) ApplyEventsCsvLocked(events_csv);
    if (!mentions_zip_path.empty()) ApplyMentionsCsvLocked(mentions_csv);
    // Bumped inside the critical section so a query that sees post-ingest
    // rows never pairs them with the pre-ingest generation.
    generation_.fetch_add(1, std::memory_order_release);
  }
  return Status::Ok();
}

Status DeltaStore::IngestEventsCsv(std::string_view csv) {
  sync::MutexLock lock(mu_);
  ApplyEventsCsvLocked(csv);
  generation_.fetch_add(1, std::memory_order_release);
  return Status::Ok();
}

Status DeltaStore::IngestMentionsCsv(std::string_view csv) {
  sync::MutexLock lock(mu_);
  ApplyMentionsCsvLocked(csv);
  generation_.fetch_add(1, std::memory_order_release);
  return Status::Ok();
}

void DeltaStore::ApplyEventsCsvLocked(std::string_view csv) {
  RowReader rows(csv, kEventFieldCount);
  const std::vector<std::string_view>* fields = nullptr;
  while (rows.Next(fields)) {
    const auto& f = *fields;
    const auto gid = ParseUint64(f[Index(EventField::kGlobalEventId)]);
    std::int64_t added = 0;
    if (!gid ||
        !FieldToInterval(f[Index(EventField::kDateAdded)], added)) {
      ++malformed_rows_;
      continue;
    }
    if (base_event_row_of_.count(*gid) || event_row_of_.count(*gid)) {
      ++malformed_rows_;  // duplicate event
      continue;
    }
    CountryId country = kNoCountry;
    const std::string_view fips =
        f[Index(EventField::kActionGeoCountryCode)];
    if (!fips.empty()) {
      if (const auto c = CountryByFips(fips)) country = *c;
    }
    const auto row = static_cast<std::uint32_t>(event_interval_.size());
    event_interval_.push_back(added);
    event_country_.push_back(country);
    event_row_of_.emplace(*gid, row);
  }
  malformed_rows_ += rows.errors().size();
}

void DeltaStore::ApplyMentionsCsvLocked(std::string_view csv) {
  RowReader rows(csv, kMentionFieldCount);
  const std::vector<std::string_view>* fields = nullptr;
  while (rows.Next(fields)) {
    const auto& f = *fields;
    const auto gid = ParseUint64(f[Index(MentionField::kGlobalEventId)]);
    std::int64_t when = 0;
    const std::string_view source =
        f[Index(MentionField::kMentionSourceName)];
    if (!gid || source.empty() ||
        !FieldToInterval(f[Index(MentionField::kMentionTimeDate)], when)) {
      ++malformed_rows_;
      continue;
    }
    std::uint32_t event_ref = kUnknownEvent;
    if (const auto it = event_row_of_.find(*gid); it != event_row_of_.end()) {
      event_ref = it->second;
    } else if (const auto bit = base_event_row_of_.find(*gid);
               bit != base_event_row_of_.end()) {
      event_ref = bit->second | kBaseFlag;
    }
    mention_source_.push_back(SourceIdForLocked(source));
    mention_interval_.push_back(when);
    mention_event_.push_back(event_ref);
    mention_event_gid_.push_back(*gid);
  }
  malformed_rows_ += rows.errors().size();
}

std::vector<std::uint64_t> DeltaStore::CombinedArticlesPerSource() const {
  // The base is immutable, so its (potentially large) scan runs before
  // taking the lock; only the delta walk holds it.
  std::vector<std::uint64_t> base_counts;
  if (base_) base_counts = engine::ArticlesPerSource(*base_);
  sync::MutexLock lock(mu_);
  std::vector<std::uint64_t> counts(NumSourcesLocked(), 0);
  std::copy(base_counts.begin(), base_counts.end(), counts.begin());
  for (const std::uint32_t s : mention_source_) ++counts[s];
  return counts;
}

std::uint64_t DeltaStore::CombinedMentionCount() const {
  return (base_ ? base_->num_mentions() : 0) + delta_mentions();
}

std::vector<std::uint32_t> DeltaStore::CombinedTopSources(
    std::size_t k) const {
  const auto counts = CombinedArticlesPerSource();
  std::vector<std::uint32_t> ids(counts.size());
  std::iota(ids.begin(), ids.end(), 0u);
  const std::size_t take = std::min(k, ids.size());
  std::partial_sort(ids.begin(),
                    ids.begin() + static_cast<std::ptrdiff_t>(take),
                    ids.end(), [&](std::uint32_t a, std::uint32_t b) {
                      if (counts[a] != counts[b]) return counts[a] > counts[b];
                      return a < b;
                    });
  ids.resize(take);
  return ids;
}

std::uint64_t DeltaStore::CombinedArticlesAboutCountry(
    CountryId country) const {
  std::uint64_t total = 0;
  if (base_) {
    const auto event_row = base_->mention_event_row();
    const auto event_country = base_->event_country();
    for (const std::uint32_t row : event_row) {
      if (row != convert::kOrphanEventRow && event_country[row] == country) {
        ++total;
      }
    }
  }
  sync::MutexLock lock(mu_);
  for (const std::uint32_t ref : mention_event_) {
    if (ref == kUnknownEvent) continue;
    if (ref & kBaseFlag) {
      if (base_->event_country()[ref & ~kBaseFlag] == country) ++total;
    } else if (event_country_[ref] == country) {
      ++total;
    }
  }
  return total;
}

}  // namespace gdelt::stream
