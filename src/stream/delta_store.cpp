#include "stream/delta_store.hpp"

#include <algorithm>
#include <filesystem>
#include <numeric>

#include "convert/binary_format.hpp"
#include "csv/tsv.hpp"
#include "gtime/timestamp.hpp"
#include "schema/gdelt_schema.hpp"
#include "util/strings.hpp"

namespace gdelt::stream {
namespace {

bool FieldToInterval(std::string_view field, std::int64_t& out) {
  const auto parsed = ParseGdeltTimestamp(field);
  if (!parsed.ok()) return false;
  out = IntervalOfCivil(parsed.value());
  return true;
}

}  // namespace

// ------------------------------------------------------- DeltaSnapshot --

std::string_view DeltaSnapshot::source_domain(std::uint32_t id) const {
  if (id < base_sources_) return base_->source_domain(id);
  const std::uint32_t idx = id - base_sources_;
  // Chunk holding new-source `idx`: offsets are strictly increasing with
  // a one-past-the-end sentinel, so upper_bound-1 is the owning chunk.
  const auto it =
      std::upper_bound(source_offset_.begin(), source_offset_.end(), idx);
  const auto c = static_cast<std::size_t>(it - source_offset_.begin()) - 1;
  // gdelt-astcheck: allow(view-escape) — the snapshot is immutable after
  // publication: chunks_ and every chunk's new_sources are frozen at
  // construction, and the caller's shared_ptr pins the chunk (and its
  // strings) for as long as the view can be looked at.
  return chunks_[c]->new_sources[idx - source_offset_[c]];
}

std::uint16_t DeltaSnapshot::EventCountryOf(std::uint32_t row) const {
  const auto it =
      std::upper_bound(event_offset_.begin(), event_offset_.end(), row);
  const auto c = static_cast<std::size_t>(it - event_offset_.begin()) - 1;
  return chunks_[c]->event_country[row - event_offset_[c]];
}

std::vector<std::uint64_t> DeltaSnapshot::CombinedArticlesPerSource(
    const util::CancelToken* cancel) const {
  // The base is immutable and the snapshot frozen, so nothing here takes
  // a lock; the base scan is the expensive part.
  std::vector<std::uint64_t> counts(num_sources(), 0);
  if (base_) {
    const auto base_counts = engine::ArticlesPerSource(*base_);
    std::copy(base_counts.begin(), base_counts.end(), counts.begin());
  }
  for (const std::shared_ptr<const DeltaChunk>& chunk : chunks_) {
    if (util::Cancelled(cancel)) return counts;  // partial; caller re-checks
    for (const std::uint32_t s : chunk->mention_source) ++counts[s];
  }
  return counts;
}

std::vector<std::uint32_t> DeltaSnapshot::CombinedTopSources(
    std::size_t k, const util::CancelToken* cancel) const {
  const auto counts = CombinedArticlesPerSource(cancel);
  if (util::Cancelled(cancel)) return {};
  std::vector<std::uint32_t> ids(counts.size());
  std::iota(ids.begin(), ids.end(), 0u);
  const std::size_t take = std::min(k, ids.size());
  std::partial_sort(ids.begin(),
                    ids.begin() + static_cast<std::ptrdiff_t>(take),
                    ids.end(), [&](std::uint32_t a, std::uint32_t b) {
                      if (counts[a] != counts[b]) return counts[a] > counts[b];
                      return a < b;
                    });
  ids.resize(take);
  return ids;
}

std::uint64_t DeltaSnapshot::CombinedArticlesAboutCountry(
    CountryId country, const util::CancelToken* cancel) const {
  std::uint64_t total = 0;
  if (base_) {
    const auto event_row = base_->mention_event_row();
    const auto event_country = base_->event_country();
    for (std::size_t i = 0; i < event_row.size(); ++i) {
      if ((i & 8191) == 0 && util::Cancelled(cancel)) return total;
      const std::uint32_t row = event_row[i];
      if (row != convert::kOrphanEventRow && event_country[row] == country) {
        ++total;
      }
    }
  }
  for (const std::shared_ptr<const DeltaChunk>& chunk : chunks_) {
    if (util::Cancelled(cancel)) return total;  // partial; caller re-checks
    for (const std::uint32_t ref : chunk->mention_event) {
      if (ref == DeltaChunk::kUnknownEvent) continue;
      if (ref & DeltaChunk::kBaseFlag) {
        if (base_->event_country()[ref & ~DeltaChunk::kBaseFlag] == country) {
          ++total;
        }
      } else if (EventCountryOf(ref) == country) {
        ++total;
      }
    }
  }
  return total;
}

// ---------------------------------------------------------- DeltaStore --

DeltaStore::DeltaStore(const engine::Database* base)
    : base_(base),
      fetcher_(std::make_shared<convert::ChunkFetcher>(
          convert::FetchPolicy{})) {
  auto initial = std::make_shared<DeltaSnapshot>();
  initial->base_ = base;
  if (base_) {
    base_sources_ = base_->num_sources();
    initial->base_sources_ = base_sources_;
    // Global event id -> base row, for resolving delta mentions of events
    // that entered the database before streaming began. No other thread
    // can hold the store yet, but the lock keeps the guarded-field
    // invariant uniform.
    sync::MutexLock lock(mu_);
    base_event_row_of_.reserve(base_->num_events());
    const auto gids = base_->event_global_id();
    for (std::size_t r = 0; r < gids.size(); ++r) {
      base_event_row_of_.emplace(gids[r], static_cast<std::uint32_t>(r));
    }
  }
  snapshot_.store(std::move(initial), std::memory_order_release);
}

std::uint32_t DeltaStore::SourceIdForLocked(std::string_view domain,
                                            DeltaChunk& chunk) {
  if (base_) {
    if (const auto id = base_->sources().Find(domain)) return *id;
  }
  const auto it = new_source_ids_.find(std::string(domain));
  if (it != new_source_ids_.end()) return base_sources_ + it->second;
  const auto idx = static_cast<std::uint32_t>(new_source_ids_.size());
  chunk.new_sources.emplace_back(domain);
  new_source_ids_.emplace(chunk.new_sources.back(), idx);
  return base_sources_ + idx;
}

void DeltaStore::set_fetch_policy(const convert::FetchPolicy& policy) {
  sync::MutexLock lock(mu_);
  fetcher_ = std::make_shared<convert::ChunkFetcher>(policy);
}

convert::FetchStats DeltaStore::fetch_stats() const {
  sync::MutexLock lock(mu_);
  return fetcher_->stats();
}

Status DeltaStore::IngestArchivePair(const std::string& export_zip_path,
                                     const std::string& mentions_zip_path) {
  // Acquire and verify BOTH archives before building any snapshot: the
  // zip entry CRC check inside the fetcher rejects torn payloads, and the
  // row parsers below never fail (malformed rows are counted). So a
  // failure on either side leaves the published snapshot — and
  // Generation() — exactly as it was.
  //
  // The fetch itself (retries, backoff sleeps) runs without the writer
  // lock so set_fetch_policy and stats reads stay responsive while a
  // flaky archive is retried for seconds (combined queries never block on
  // ingest at all — they read the published snapshot). set_fetch_policy
  // during an in-flight fetch swaps the pointer for later calls; the
  // snapshot keeps this one alive.
  std::shared_ptr<convert::ChunkFetcher> fetcher;
  {
    sync::MutexLock lock(mu_);
    fetcher = fetcher_;
  }
  auto fetch = [&](const std::string& path) -> Result<std::string> {
    const std::filesystem::path p(path);
    return fetcher->FetchCsv(p.parent_path().string(),
                             p.filename().string(), std::nullopt);
  };
  std::string events_csv;
  std::string mentions_csv;
  if (!export_zip_path.empty()) {
    GDELT_ASSIGN_OR_RETURN(events_csv, fetch(export_zip_path));
  }
  if (!mentions_zip_path.empty()) {
    GDELT_ASSIGN_OR_RETURN(mentions_csv, fetch(mentions_zip_path));
  }
  {
    sync::MutexLock lock(mu_);
    DeltaChunk chunk;
    if (!export_zip_path.empty()) ApplyEventsCsvLocked(events_csv, chunk);
    if (!mentions_zip_path.empty()) {
      ApplyMentionsCsvLocked(mentions_csv, chunk);
    }
    // One publication for the pair: a reader sees both sides land
    // together with a single generation bump, or neither.
    PublishLocked(std::move(chunk));
  }
  return Status::Ok();
}

Status DeltaStore::IngestEventsCsv(std::string_view csv) {
  sync::MutexLock lock(mu_);
  DeltaChunk chunk;
  ApplyEventsCsvLocked(csv, chunk);
  PublishLocked(std::move(chunk));
  return Status::Ok();
}

Status DeltaStore::IngestMentionsCsv(std::string_view csv) {
  sync::MutexLock lock(mu_);
  DeltaChunk chunk;
  ApplyMentionsCsvLocked(csv, chunk);
  PublishLocked(std::move(chunk));
  return Status::Ok();
}

void DeltaStore::ApplyEventsCsvLocked(std::string_view csv,
                                      DeltaChunk& chunk) {
  // Global delta rows are allocated sequentially; every applied event has
  // a unique gid entry, so the map size is the next row number.
  RowReader rows(csv, kEventFieldCount);
  const std::vector<std::string_view>* fields = nullptr;
  while (rows.Next(fields)) {
    const auto& f = *fields;
    const auto gid = ParseUint64(f[Index(EventField::kGlobalEventId)]);
    std::int64_t added = 0;
    if (!gid ||
        !FieldToInterval(f[Index(EventField::kDateAdded)], added)) {
      ++malformed_rows_;
      continue;
    }
    if (base_event_row_of_.count(*gid) || event_row_of_.count(*gid)) {
      ++malformed_rows_;  // duplicate event
      continue;
    }
    CountryId country = kNoCountry;
    const std::string_view fips =
        f[Index(EventField::kActionGeoCountryCode)];
    if (!fips.empty()) {
      if (const auto c = CountryByFips(fips)) country = *c;
    }
    const auto row = static_cast<std::uint32_t>(event_row_of_.size());
    chunk.event_interval.push_back(added);
    chunk.event_country.push_back(country);
    event_row_of_.emplace(*gid, row);
  }
  malformed_rows_ += rows.errors().size();
}

void DeltaStore::ApplyMentionsCsvLocked(std::string_view csv,
                                        DeltaChunk& chunk) {
  RowReader rows(csv, kMentionFieldCount);
  const std::vector<std::string_view>* fields = nullptr;
  while (rows.Next(fields)) {
    const auto& f = *fields;
    const auto gid = ParseUint64(f[Index(MentionField::kGlobalEventId)]);
    std::int64_t when = 0;
    const std::string_view source =
        f[Index(MentionField::kMentionSourceName)];
    if (!gid || source.empty() ||
        !FieldToInterval(f[Index(MentionField::kMentionTimeDate)], when)) {
      ++malformed_rows_;
      continue;
    }
    std::uint32_t event_ref = kUnknownEvent;
    if (const auto it = event_row_of_.find(*gid); it != event_row_of_.end()) {
      event_ref = it->second;
    } else if (const auto bit = base_event_row_of_.find(*gid);
               bit != base_event_row_of_.end()) {
      event_ref = bit->second | kBaseFlag;
    }
    chunk.mention_source.push_back(SourceIdForLocked(source, chunk));
    chunk.mention_interval.push_back(when);
    chunk.mention_event.push_back(event_ref);
    chunk.mention_event_gid.push_back(*gid);
  }
  malformed_rows_ += rows.errors().size();
}

void DeltaStore::PublishLocked(DeltaChunk&& chunk) {
  const auto cur = snapshot_.load(std::memory_order_acquire);
  // Copying the snapshot copies chunk *pointers* and the (tick-count
  // sized) offset tables — never rows. The new chunk is the only freshly
  // allocated row storage, so a tick costs O(new rows).
  auto next = std::make_shared<DeltaSnapshot>(*cur);
  next->generation_ = cur->generation_ + 1;
  next->malformed_rows_ = malformed_rows_;
  next->delta_events_ += chunk.event_interval.size();
  next->delta_mentions_ += chunk.mention_source.size();
  next->num_new_sources_ += static_cast<std::uint32_t>(
      chunk.new_sources.size());
  next->event_offset_.push_back(
      next->event_offset_.back() + chunk.event_interval.size());
  next->source_offset_.push_back(
      next->source_offset_.back() +
      static_cast<std::uint32_t>(chunk.new_sources.size()));
  next->chunks_.push_back(
      std::make_shared<const DeltaChunk>(std::move(chunk)));
  snapshot_.store(std::move(next), std::memory_order_release);
}

}  // namespace gdelt::stream
