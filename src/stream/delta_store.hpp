// Live ingestion of new GDELT chunks on top of a converted base database.
//
// GDELT uploads an Events + Mentions file pair every 15 minutes; the paper
// notes that "following current events only poses a moderate challenge for
// modern computers" while historical analysis needs the converted store.
// DeltaStore is that following path: it parses freshly arrived chunk
// archives into an in-memory delta (sharing the base's source dictionary,
// extending it for never-seen sources) and answers combined base+delta
// queries without reconverting anything. Periodically the delta would be
// folded into the base by re-running the converter.
//
// Thread safety: all delta state is guarded by an internal mutex (Clang
// TSA-annotated), so combined queries may run concurrently with an ingest
// call — each sees either the pre- or post-ingest snapshot, never a torn
// one. Archive fetching (the slow, retrying part) happens outside the
// lock; only row application holds it.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "convert/fetcher.hpp"
#include "engine/database.hpp"
#include "engine/queries.hpp"
#include "util/status.hpp"
#include "util/sync.hpp"

namespace gdelt::stream {

/// Accumulates newly arrived chunks over an optional base database.
class DeltaStore {
 public:
  /// `base` may be null (cold start, pure streaming). If given, it must
  /// outlive the store.
  explicit DeltaStore(const engine::Database* base);

  /// Parses one pair of chunk archives (store-mode .zip as produced by
  /// GDELT / the generator). Either path may be empty to skip that side.
  /// All-or-nothing: both archives are fetched and verified (with retries
  /// per the fetch policy) before any row is applied, so a truncated or
  /// corrupt archive leaves the store — and Generation() — untouched.
  Status IngestArchivePair(const std::string& export_zip_path,
                           const std::string& mentions_zip_path);

  /// Parses raw CSV text (already unzipped).
  Status IngestEventsCsv(std::string_view csv);
  Status IngestMentionsCsv(std::string_view csv);

  /// Replaces the archive-fetch retry/backoff policy (resets fetch stats).
  void set_fetch_policy(const convert::FetchPolicy& policy);

  /// Fetch health counters; safe to read while another thread ingests.
  convert::FetchStats fetch_stats() const;

  // --- delta-side sizes ---
  std::uint64_t delta_events() const;
  std::uint64_t delta_mentions() const;
  std::uint64_t malformed_rows() const;

  /// Monotonic ingest epoch: bumped inside the ingest critical section on
  /// every successful ingest call, so result caches keyed by
  /// (query, generation) invalidate as soon as new data lands and a query
  /// never observes post-ingest rows paired with the pre-ingest epoch.
  /// Safe to read concurrently with serving threads.
  std::uint64_t Generation() const noexcept {
    return generation_.load(std::memory_order_acquire);
  }

  /// Total sources across base + newly discovered ones.
  std::uint32_t num_sources() const;

  /// Domain for a combined source id (base ids first, then new ones).
  /// Returned by value: new-source strings are stored in a growable
  /// vector, so a view into one could dangle across a concurrent ingest.
  std::string source_domain(std::uint32_t id) const;

  // --- combined queries (base + delta) ---
  /// Articles per combined source id.
  std::vector<std::uint64_t> CombinedArticlesPerSource() const;
  /// Total articles.
  std::uint64_t CombinedMentionCount() const;
  /// Top combined sources by articles, descending.
  std::vector<std::uint32_t> CombinedTopSources(std::size_t k) const;
  /// Articles about events located in `country` (base + delta; delta
  /// mentions of base events resolve their location through the base).
  std::uint64_t CombinedArticlesAboutCountry(CountryId country) const;

 private:
  std::uint32_t SourceIdForLocked(std::string_view domain)
      GDELT_REQUIRES(mu_);
  std::uint32_t NumSourcesLocked() const GDELT_REQUIRES(mu_);

  /// Row-apply halves of the CSV ingests; never fail, do not bump the
  /// generation (the public entry points do).
  void ApplyEventsCsvLocked(std::string_view csv) GDELT_REQUIRES(mu_);
  void ApplyMentionsCsvLocked(std::string_view csv) GDELT_REQUIRES(mu_);

  const engine::Database* base_;  ///< may be null
  std::uint32_t base_sources_ = 0;  ///< set once in the constructor

  mutable sync::Mutex mu_;

  /// Guarded so set_fetch_policy cannot race a stats read. Shared, not
  /// unique: IngestArchivePair snapshots the pointer and fetches outside
  /// the lock, and the snapshot must keep the fetcher alive if the policy
  /// is swapped mid-fetch. The pointee is internally thread-safe.
  std::shared_ptr<convert::ChunkFetcher> fetcher_ GDELT_GUARDED_BY(mu_);

  // delta events (dense, in arrival order)
  std::vector<std::int64_t> event_interval_ GDELT_GUARDED_BY(mu_);
  std::vector<std::uint16_t> event_country_ GDELT_GUARDED_BY(mu_);
  /// delta rows
  std::unordered_map<std::uint64_t, std::uint32_t> event_row_of_
      GDELT_GUARDED_BY(mu_);
  std::unordered_map<std::uint64_t, std::uint32_t> base_event_row_of_
      GDELT_GUARDED_BY(mu_);

  // delta mentions
  /// combined source ids
  std::vector<std::uint32_t> mention_source_ GDELT_GUARDED_BY(mu_);
  std::vector<std::int64_t> mention_interval_ GDELT_GUARDED_BY(mu_);
  /// delta row | kBase|row | kUnknown
  std::vector<std::uint32_t> mention_event_ GDELT_GUARDED_BY(mu_);
  std::vector<std::uint64_t> mention_event_gid_ GDELT_GUARDED_BY(mu_);

  // new sources (combined id = base_sources_ + index)
  std::vector<std::string> new_sources_ GDELT_GUARDED_BY(mu_);
  std::unordered_map<std::string, std::uint32_t> new_source_ids_
      GDELT_GUARDED_BY(mu_);

  std::uint64_t malformed_rows_ GDELT_GUARDED_BY(mu_) = 0;
  std::atomic<std::uint64_t> generation_{0};

  static constexpr std::uint32_t kBaseFlag = 0x80000000u;
  static constexpr std::uint32_t kUnknownEvent = 0xFFFFFFFFu;
};

}  // namespace gdelt::stream
