// Live ingestion of new GDELT chunks on top of a converted base database.
//
// GDELT uploads an Events + Mentions file pair every 15 minutes; the paper
// notes that "following current events only poses a moderate challenge for
// modern computers" while historical analysis needs the converted store.
// DeltaStore is that following path: it parses freshly arrived chunk
// archives into an in-memory delta (sharing the base's source dictionary,
// extending it for never-seen sources) and answers combined base+delta
// queries without reconverting anything. Periodically the delta would be
// folded into the base by re-running the converter.
//
// Concurrency model: RCU-style snapshot publication. All delta state a
// reader can observe lives in an immutable `DeltaSnapshot` — delta
// columns, the new-source dictionary, and the ingest generation baked
// into the same object — published by a single release-store
// `shared_ptr` swap. `Acquire()` returns the current snapshot; every
// accessor on it is a read of frozen data, so a request that acquires
// once and then calls any number of `Combined*` accessors gets counts
// that are mutually consistent with exactly one generation, no matter
// how many 15-minute ticks land meanwhile. Readers take no lock and
// copy no rows. Ingest builds the next snapshot off to the side —
// chunk/tail-sharing makes a tick O(new rows), not O(accumulated
// delta) — and the store's internal mutex serializes only writers (and
// the fetch-policy swap).
//
// The convenience accessors directly on DeltaStore (`delta_events()`,
// `CombinedMentionCount()`, ...) each acquire their own snapshot, so two
// consecutive calls may straddle a tick. Anything that needs
// cross-accessor consistency — a stats render, a cache keyed by
// generation — must hold one snapshot and read everything from it.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "convert/fetcher.hpp"
#include "engine/database.hpp"
#include "engine/queries.hpp"
#include "util/cancel.hpp"
#include "util/status.hpp"
#include "util/sync.hpp"

namespace gdelt::stream {

/// One ingest call's worth of parsed delta rows. Immutable once the
/// snapshot holding it is published; successive snapshots share all
/// previous chunks by pointer, so publishing tick N+1 never copies the
/// rows of ticks 1..N.
struct DeltaChunk {
  // events appended by this tick (delta row = chunk-local index + the
  // chunk's event offset in the snapshot)
  std::vector<std::int64_t> event_interval;
  std::vector<std::uint16_t> event_country;

  // mentions appended by this tick
  /// combined source ids
  std::vector<std::uint32_t> mention_source;
  std::vector<std::int64_t> mention_interval;
  /// global delta event row | kBaseFlag|base row | kUnknownEvent
  std::vector<std::uint32_t> mention_event;
  std::vector<std::uint64_t> mention_event_gid;

  /// domains first seen by this tick (combined id = the chunk's source
  /// offset in the snapshot + index)
  std::vector<std::string> new_sources;

  static constexpr std::uint32_t kBaseFlag = 0x80000000u;
  static constexpr std::uint32_t kUnknownEvent = 0xFFFFFFFFu;
};

/// A frozen view of the delta at one ingest generation. Everything here
/// is immutable after publication: holding the shared_ptr keeps every
/// chunk (and every string a returned view points into) alive, and all
/// accessors are const reads with no synchronization whatsoever.
class DeltaSnapshot {
 public:
  /// The ingest generation this snapshot was published at. Data and
  /// generation live in the same immutable object, so they can never be
  /// observed torn against each other.
  std::uint64_t generation() const noexcept { return generation_; }

  std::uint64_t delta_events() const noexcept { return delta_events_; }
  std::uint64_t delta_mentions() const noexcept { return delta_mentions_; }
  std::uint64_t malformed_rows() const noexcept { return malformed_rows_; }

  /// Total sources across base + newly discovered ones.
  std::uint32_t num_sources() const noexcept {
    return base_sources_ + num_new_sources_;
  }

  /// Domain for a combined source id (base ids first, then new ones).
  /// The view stays valid for as long as this snapshot is held.
  std::string_view source_domain(std::uint32_t id) const;

  // --- combined queries (base + delta) ---
  // Every accessor below reads only this frozen snapshot (plus the
  // immutable base), so a sequence of calls on one snapshot yields a
  // mutually consistent, single-generation result. `cancel` follows the
  // kernel convention (analysis/country.cpp): the scan polls the token
  // and bails early, returning a partial value the caller must discard
  // after re-checking the token.

  /// Articles per combined source id.
  std::vector<std::uint64_t> CombinedArticlesPerSource(
      const util::CancelToken* cancel = nullptr) const;
  /// Total articles.
  std::uint64_t CombinedMentionCount() const noexcept {
    return (base_ ? base_->num_mentions() : 0) + delta_mentions_;
  }
  /// Top combined sources by articles, descending.
  std::vector<std::uint32_t> CombinedTopSources(
      std::size_t k, const util::CancelToken* cancel = nullptr) const;
  /// Articles about events located in `country` (base + delta; delta
  /// mentions of base events resolve their location through the base).
  std::uint64_t CombinedArticlesAboutCountry(
      CountryId country, const util::CancelToken* cancel = nullptr) const;

 private:
  friend class DeltaStore;

  /// Country of a global delta event row (binary search over the chunk
  /// offsets; the chunk count is the tick count, so this is cheap).
  std::uint16_t EventCountryOf(std::uint32_t row) const;

  const engine::Database* base_ = nullptr;  ///< may be null
  std::uint32_t base_sources_ = 0;
  std::uint32_t num_new_sources_ = 0;
  std::uint64_t generation_ = 0;
  std::uint64_t delta_events_ = 0;
  std::uint64_t delta_mentions_ = 0;
  std::uint64_t malformed_rows_ = 0;

  /// All published ticks, oldest first; shared (not copied) with every
  /// other snapshot that contains them.
  std::vector<std::shared_ptr<const DeltaChunk>> chunks_;
  /// event_offset_[i] = global delta event row of chunks_[i]'s first
  /// event; one-past-the-end sentinel at the back (size chunks_+1).
  std::vector<std::uint64_t> event_offset_ = {0};
  /// source_offset_[i] = combined source id of chunks_[i]'s first new
  /// source, minus base_sources_; sentinel at the back.
  std::vector<std::uint32_t> source_offset_ = {0};
};

/// Accumulates newly arrived chunks over an optional base database.
class DeltaStore {
 public:
  /// `base` may be null (cold start, pure streaming). If given, it must
  /// outlive the store.
  explicit DeltaStore(const engine::Database* base);

  /// The current immutable snapshot (never null). One atomic
  /// acquire-load; no lock, no row copies. Hold it for the duration of a
  /// request to get cross-accessor consistency.
  std::shared_ptr<const DeltaSnapshot> Acquire() const noexcept {
    return snapshot_.load(std::memory_order_acquire);
  }

  /// Parses one pair of chunk archives (store-mode .zip as produced by
  /// GDELT / the generator). Either path may be empty to skip that side.
  /// All-or-nothing: both archives are fetched and verified (with retries
  /// per the fetch policy) before any row is applied, so a truncated or
  /// corrupt archive leaves the published snapshot — and Generation() —
  /// untouched.
  Status IngestArchivePair(const std::string& export_zip_path,
                           const std::string& mentions_zip_path);

  /// Parses raw CSV text (already unzipped).
  Status IngestEventsCsv(std::string_view csv);
  Status IngestMentionsCsv(std::string_view csv);

  /// Replaces the archive-fetch retry/backoff policy (resets fetch stats).
  void set_fetch_policy(const convert::FetchPolicy& policy);

  /// Fetch health counters; safe to read while another thread ingests.
  convert::FetchStats fetch_stats() const;

  // --- snapshot-forwarding accessors ---
  // Each call acquires its own snapshot; see the header comment for the
  // consistency contract across multiple calls.
  std::uint64_t delta_events() const noexcept {
    return Acquire()->delta_events();
  }
  std::uint64_t delta_mentions() const noexcept {
    return Acquire()->delta_mentions();
  }
  std::uint64_t malformed_rows() const noexcept {
    return Acquire()->malformed_rows();
  }

  /// Monotonic ingest epoch: baked into the snapshot published by every
  /// successful ingest call, so result caches keyed by
  /// (query, generation) invalidate as soon as new data lands and a
  /// reader can never observe post-ingest rows paired with the
  /// pre-ingest epoch — both live in the same immutable object.
  std::uint64_t Generation() const noexcept {
    return Acquire()->generation();
  }

  /// Total sources across base + newly discovered ones.
  std::uint32_t num_sources() const noexcept {
    return Acquire()->num_sources();
  }

  /// Domain for a combined source id. Returned by value: the backing
  /// string lives in a snapshot this call releases before returning.
  std::string source_domain(std::uint32_t id) const {
    return std::string(Acquire()->source_domain(id));
  }

  // --- combined queries (base + delta), each on its own snapshot ---
  std::vector<std::uint64_t> CombinedArticlesPerSource(
      const util::CancelToken* cancel = nullptr) const {
    return Acquire()->CombinedArticlesPerSource(cancel);
  }
  std::uint64_t CombinedMentionCount() const noexcept {
    return Acquire()->CombinedMentionCount();
  }
  std::vector<std::uint32_t> CombinedTopSources(
      std::size_t k, const util::CancelToken* cancel = nullptr) const {
    return Acquire()->CombinedTopSources(k, cancel);
  }
  std::uint64_t CombinedArticlesAboutCountry(
      CountryId country, const util::CancelToken* cancel = nullptr) const {
    return Acquire()->CombinedArticlesAboutCountry(country, cancel);
  }

 private:
  std::uint32_t SourceIdForLocked(std::string_view domain, DeltaChunk& chunk)
      GDELT_REQUIRES(mu_);

  /// Row-apply halves of the CSV ingests; never fail. They fill `chunk`
  /// and update the writer-side lookup maps; PublishLocked turns the
  /// chunk into the next snapshot.
  void ApplyEventsCsvLocked(std::string_view csv, DeltaChunk& chunk)
      GDELT_REQUIRES(mu_);
  void ApplyMentionsCsvLocked(std::string_view csv, DeltaChunk& chunk)
      GDELT_REQUIRES(mu_);

  /// Builds generation+1 from the current snapshot plus `chunk` (sharing
  /// every existing chunk by pointer) and publishes it with one
  /// release-store swap.
  void PublishLocked(DeltaChunk&& chunk) GDELT_REQUIRES(mu_);

  const engine::Database* base_;    ///< may be null
  std::uint32_t base_sources_ = 0;  ///< set once in the constructor

  /// The published snapshot; readers acquire-load it, PublishLocked
  /// release-stores the successor. Never null after construction.
  std::atomic<std::shared_ptr<const DeltaSnapshot>> snapshot_;

  /// Writer-side mutex: serializes ingests and guards the mutable lookup
  /// state below. Readers never take it.
  mutable sync::Mutex mu_;

  /// Guarded so set_fetch_policy cannot race a stats read. Shared, not
  /// unique: IngestArchivePair snapshots the pointer and fetches outside
  /// the lock, and the snapshot must keep the fetcher alive if the policy
  /// is swapped mid-fetch. The pointee is internally thread-safe.
  std::shared_ptr<convert::ChunkFetcher> fetcher_ GDELT_GUARDED_BY(mu_);

  // Writer-only lookup state (readers resolve everything through the
  // snapshot): global event id -> delta row / base row, domain -> new
  // source index, running malformed-row tally.
  std::unordered_map<std::uint64_t, std::uint32_t> event_row_of_
      GDELT_GUARDED_BY(mu_);
  std::unordered_map<std::uint64_t, std::uint32_t> base_event_row_of_
      GDELT_GUARDED_BY(mu_);
  std::unordered_map<std::string, std::uint32_t> new_source_ids_
      GDELT_GUARDED_BY(mu_);
  std::uint64_t malformed_rows_ GDELT_GUARDED_BY(mu_) = 0;

  static constexpr std::uint32_t kBaseFlag = DeltaChunk::kBaseFlag;
  static constexpr std::uint32_t kUnknownEvent = DeltaChunk::kUnknownEvent;
};

}  // namespace gdelt::stream
