// gdelt_generate: writes a synthetic GDELT 2.0 raw dataset (master file
// list + 15-minute chunk archives) to a directory.
//
// Usage: gdelt_generate --out <dir> [--preset tiny|small|medium]
//                       [--seed N] [--sources N] [--events-per-interval X]
#include <cstdio>

#include "gen/emit.hpp"
#include "gen/generator.hpp"
#include "util/args.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"

using namespace gdelt;

int main(int argc, char** argv) {
  ArgParser args(
      "Generates a synthetic GDELT 2.0 dataset (Events + Mentions chunk "
      "archives and a master file list) with the distributional properties "
      "the paper measures.");
  args.AddString("out", "gdelt_raw", "output directory");
  args.AddString("preset", "small", "tiny | small | medium");
  args.AddInt("seed", 42, "random seed");
  args.AddInt("sources", 0, "override number of sources (0 = preset)");
  args.AddDouble("events-per-interval", 0.0,
                 "override mean events per 15-minute interval (0 = preset)");
  args.AddBool("help", false, "print usage");
  if (const Status s = args.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n%s", s.ToString().c_str(),
                 args.HelpText().c_str());
    return 2;
  }
  if (args.GetBool("help")) {
    std::printf("%s", args.HelpText().c_str());
    return 0;
  }

  gen::GeneratorConfig cfg;
  const std::string preset = args.GetString("preset");
  if (preset == "tiny") {
    cfg = gen::GeneratorConfig::Tiny();
  } else if (preset == "small") {
    cfg = gen::GeneratorConfig::Small();
  } else if (preset == "medium") {
    cfg = gen::GeneratorConfig::Medium();
  } else {
    std::fprintf(stderr, "unknown preset '%s'\n", preset.c_str());
    return 2;
  }
  cfg.seed = static_cast<std::uint64_t>(args.GetInt("seed"));
  if (args.GetInt("sources") > 0) {
    cfg.num_sources = static_cast<std::uint32_t>(args.GetInt("sources"));
  }
  if (args.GetDouble("events-per-interval") > 0) {
    cfg.events_per_interval_mean = args.GetDouble("events-per-interval");
  }

  WallTimer timer;
  const gen::RawDataset dataset = gen::GenerateDataset(cfg);
  GDELT_LOG(kInfo, StrFormat("generated %zu events, %zu mentions in %.2fs",
                             dataset.events.size(), dataset.mentions.size(),
                             timer.ElapsedSeconds()));

  timer.Reset();
  const auto emitted =
      gen::EmitDataset(dataset, cfg, args.GetString("out"));
  if (!emitted.ok()) {
    std::fprintf(stderr, "emit failed: %s\n",
                 emitted.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "wrote %llu chunk files (%llu chunks) to %s in %.2fs\n"
      "injected defects: %u malformed master entries, %u missing archives "
      "(dropping %llu events, %llu mentions), %u missing URLs, %u future "
      "event dates\n",
      static_cast<unsigned long long>(emitted->chunk_files_written),
      static_cast<unsigned long long>(emitted->num_chunks),
      args.GetString("out").c_str(), timer.ElapsedSeconds(),
      dataset.truth.malformed_master_entries + cfg.defect_malformed_master_entries,
      cfg.defect_missing_archives,
      static_cast<unsigned long long>(emitted->dropped_events),
      static_cast<unsigned long long>(emitted->dropped_mentions),
      dataset.truth.missing_source_url, dataset.truth.future_event_dates);
  return 0;
}
