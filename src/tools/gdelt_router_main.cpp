// gdelt_router: scatter/gather front-end over gdelt_serve shard backends.
//
// Speaks the same NDJSON-over-TCP protocol as gdelt_serve, so clients
// point here unchanged. Decomposable queries are split into per-shard
// partial-aggregate sub-requests, scattered under one deadline and
// merged into text byte-identical to a single-node answer; the rest are
// relayed whole to one backend. See docs/OPERATIONS.md for the topology
// format, health-check behavior and the degraded-mode runbook.
//
// Usage: gdelt_router --shards "h:p[,h:p...][;h:p...]" [--port 0] ...
#include <csignal>
#include <cstdio>
#include <thread>

#include "router/router.hpp"
#include "router/topology.hpp"
#include "util/args.hpp"
#include "util/strings.hpp"

using namespace gdelt;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("Routes gdelt_serve queries across shard backends.");
  args.AddString("shards", "",
                 "topology: shards separated by ';', replicas of one shard "
                 "by ',', each endpoint host:port");
  args.AddString("host", "127.0.0.1", "listen address (IPv4)");
  args.AddInt("port", 0, "listen port (0 = pick an ephemeral port)");
  args.AddInt("timeout-ms", 30000, "default per-request deadline");
  args.AddInt("max-inflight", 64, "concurrent scattered queries");
  args.AddInt("scatter-passes", 2,
              "passes over a shard's replica list before giving up");
  args.AddInt("down-after", 3,
              "consecutive failures before a backend is marked down");
  args.AddInt("health-interval-ms", 2000,
              "backend health probe period (0 disables)");
  args.AddInt("connect-timeout-ms", 1000, "per-dial connect timeout");
  args.AddBool("help", false, "print usage");
  if (const Status s = args.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n%s", s.ToString().c_str(),
                 args.HelpText().c_str());
    return 2;
  }
  if (args.GetBool("help")) {
    std::printf("%s", args.HelpText().c_str());
    return 0;
  }
  if (args.GetString("shards").empty()) {
    std::fprintf(stderr, "--shards is required\n%s", args.HelpText().c_str());
    return 2;
  }
  auto topology = router::ParseTopology(args.GetString("shards"));
  if (!topology.ok()) {
    std::fprintf(stderr, "bad --shards: %s\n",
                 topology.status().ToString().c_str());
    return 2;
  }

  router::RouterOptions options;
  options.host = args.GetString("host");
  options.port = static_cast<int>(args.GetInt("port"));
  options.topology = std::move(*topology);
  options.default_timeout_ms = args.GetInt("timeout-ms");
  options.max_inflight = static_cast<std::size_t>(args.GetInt("max-inflight"));
  options.scatter_passes =
      static_cast<std::uint32_t>(args.GetInt("scatter-passes"));
  options.down_after_failures =
      static_cast<std::uint32_t>(args.GetInt("down-after"));
  options.health_interval_ms =
      static_cast<int>(args.GetInt("health-interval-ms"));
  options.connect.connect_timeout_ms = args.GetInt("connect-timeout-ms");

  router::Router router(options);
  if (const Status s = router.Start(); !s.ok()) {
    std::fprintf(stderr, "start failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // Smoke scripts parse this line to find the ephemeral port.
  std::printf("READY port=%d\n", router.port());
  std::fflush(stdout);

  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  router.Stop();
  return 0;
}
