// gdelt_serve: long-lived query daemon over a converted binary database.
//
// Loads the database once, then answers newline-delimited JSON requests
// over TCP (protocol: docs/PROTOCOL.md) until SIGTERM/SIGINT, draining
// in-flight queries before exiting. With --follow it stacks a DeltaStore
// on top so `ingest` requests can absorb fresh 15-minute chunk pairs
// without a restart; each ingest bumps the cache epoch.
//
// Usage: gdelt_serve --db <dir> [--port 0] [--workers N] [--queue N]
//                    [--threads-per-query N] [--cache N] [--follow]
#include <csignal>
#include <cstdio>
#include <memory>
#include <thread>

#include "engine/database.hpp"
#include "io/file.hpp"
#include "serve/server.hpp"
#include "stream/delta_store.hpp"
#include "trace/trace.hpp"
#include "util/args.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"

using namespace gdelt;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("Serves the paper's analyses over newline-delimited JSON.");
  args.AddString("db", "gdelt_db", "binary database directory");
  args.AddString("host", "127.0.0.1", "listen address (IPv4)");
  args.AddInt("port", 0, "listen port (0 = pick an ephemeral port)");
  args.AddInt("workers", 2, "query worker threads");
  args.AddInt("queue", 64, "admission queue capacity");
  args.AddInt("threads-per-query", 0,
              "OpenMP threads per query (0 = cores / workers)");
  args.AddInt("cache", 1024, "result cache entries (0 disables)");
  args.AddInt("timeout-ms", 30000, "default per-request deadline");
  args.AddInt("max-timeout-ms", 300000,
              "ceiling for client-supplied timeout_ms; requests asking for "
              "more are clamped and the effective deadline is echoed back");
  args.AddBool("no-cancellation", false,
               "disable cooperative cancellation (deadlines checked only "
               "between requests, not mid-scan) — for A/B benchmarking");
  args.AddInt("metrics-interval", 60,
              "seconds between metrics log lines (0 disables)");
  args.AddInt("slow-ms", 0,
              "log queries slower than this many ms with a per-stage "
              "breakdown (0 disables)");
  args.AddString("trace-dir", "",
                 "enable span tracing and dump a Chrome trace_event JSON "
                 "file here on shutdown");
  args.AddBool("follow", false,
               "attach a streaming delta store (enables `ingest` requests)");
  args.AddBool("help", false, "print usage");
  if (const Status s = args.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n%s", s.ToString().c_str(),
                 args.HelpText().c_str());
    return 2;
  }
  if (args.GetBool("help")) {
    std::printf("%s", args.HelpText().c_str());
    return 0;
  }

  WallTimer load_timer;
  auto db = engine::Database::Load(args.GetString("db"));
  if (!db.ok()) {
    std::fprintf(stderr, "load failed: %s\n", db.status().ToString().c_str());
    return 1;
  }
  GDELT_LOG(kInfo, StrFormat("serve: database loaded in %.2fs (%llu events, "
                             "%llu mentions, %u sources)",
                             load_timer.ElapsedSeconds(),
                             static_cast<unsigned long long>(db->num_events()),
                             static_cast<unsigned long long>(
                                 db->num_mentions()),
                             db->num_sources()));

  std::unique_ptr<stream::DeltaStore> delta;
  if (args.GetBool("follow")) {
    delta = std::make_unique<stream::DeltaStore>(&*db);
  }

  serve::ServerOptions options;
  options.host = args.GetString("host");
  options.port = static_cast<int>(args.GetInt("port"));
  options.scheduler.workers = static_cast<int>(args.GetInt("workers"));
  options.scheduler.queue_capacity =
      static_cast<std::size_t>(args.GetInt("queue"));
  options.scheduler.threads_per_query =
      static_cast<int>(args.GetInt("threads-per-query"));
  options.cache_entries = static_cast<std::size_t>(args.GetInt("cache"));
  options.default_timeout_ms = args.GetInt("timeout-ms");
  options.max_timeout_ms = args.GetInt("max-timeout-ms");
  options.cancellation = !args.GetBool("no-cancellation");
  options.metrics_log_interval_s =
      static_cast<int>(args.GetInt("metrics-interval"));
  options.slow_query_ms = args.GetInt("slow-ms");
  options.trace_dir = args.GetString("trace-dir");
  if (!options.trace_dir.empty()) {
    if (const Status s = MakeDirectories(options.trace_dir); !s.ok()) {
      std::fprintf(stderr, "bad --trace-dir: %s\n", s.ToString().c_str());
      return 2;
    }
    trace::SetEnabled(true);
  }

  serve::Server server(*db, delta.get(), options);
  if (const Status s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "start failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // Smoke scripts parse this line to find the ephemeral port.
  std::printf("READY port=%d\n", server.port());
  std::fflush(stdout);

  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  GDELT_LOG(kInfo, "serve: signal received, draining");
  server.Stop();
  return 0;
}
