// gdelt_convert: the preprocessing tool. Converts raw GDELT chunk archives
// into the indexed binary database the query engine loads.
//
// Usage: gdelt_convert --in <raw dir> --out <binary dir> [--no-urls]
//                      [--resume] [--quarantine-dir <dir>] [--retries <n>]
#include <cstdio>

#include "convert/converter.hpp"
#include "util/args.hpp"
#include "util/timer.hpp"

using namespace gdelt;

int main(int argc, char** argv) {
  ArgParser args(
      "Converts a raw GDELT 2.0 dataset (masterfilelist.txt + chunk "
      "archives) into the binary column-store database, cleaning and "
      "validating along the way (cf. paper Table II).");
  args.AddString("in", "gdelt_raw", "input directory with masterfilelist.txt");
  args.AddString("out", "gdelt_db", "output directory for binary tables");
  args.AddBool("no-urls", false, "drop article URLs from the binary tables");
  args.AddBool("no-verify", false, "skip archive checksum verification");
  args.AddBool("resume", false,
               "skip archives journaled by an interrupted earlier run");
  args.AddString("quarantine-dir", "",
                 "copy persistently corrupt archives here for diagnosis");
  args.AddInt("retries", 3, "fetch attempts per archive (>= 1)");
  args.AddBool("help", false, "print usage");
  if (const Status s = args.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n%s", s.ToString().c_str(),
                 args.HelpText().c_str());
    return 2;
  }
  if (args.GetBool("help")) {
    std::printf("%s", args.HelpText().c_str());
    return 0;
  }

  convert::ConvertOptions options;
  options.input_dir = args.GetString("in");
  options.output_dir = args.GetString("out");
  options.keep_urls = !args.GetBool("no-urls");
  options.verify_archive_checksums = !args.GetBool("no-verify");
  options.resume = args.GetBool("resume");
  options.fetch.quarantine_dir = args.GetString("quarantine-dir");
  const std::int64_t retries = args.GetInt("retries");
  if (retries < 1) {
    std::fprintf(stderr, "--retries must be >= 1\n");
    return 2;
  }
  options.fetch.max_attempts = static_cast<std::uint32_t>(retries);

  WallTimer timer;
  const auto report = convert::ConvertDataset(options);
  if (!report.ok()) {
    std::fprintf(stderr, "conversion failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\nconversion took %.2fs\n", report->ToText().c_str(),
              timer.ElapsedSeconds());
  return 0;
}
