// gdelt_query: runs the paper's analyses against a converted binary
// database and prints the corresponding table/figure data.
//
// Usage: gdelt_query --db <dir> --query <name> [--top N] [--threads N]
//   queries: stats | top-sources | top-events | quarterly | coreport |
//            follow | country-coreport | cross-report | delay | tone |
//            first-reports | scaling
#include <algorithm>
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "analysis/coreport.hpp"
#include "analysis/country.hpp"
#include "analysis/delay.hpp"
#include "analysis/distributions.hpp"
#include "analysis/followreport.hpp"
#include "analysis/firstreport.hpp"
#include "analysis/stats.hpp"
#include "analysis/tone.hpp"
#include "engine/database.hpp"
#include "engine/filter.hpp"
#include "gtime/timestamp.hpp"
#include "engine/queries.hpp"
#include "util/args.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"

using namespace gdelt;

namespace {

void PrintQuarterSeries(const char* label,
                        const engine::QuarterSeries& series) {
  std::printf("%s\n", label);
  for (std::size_t q = 0; q < series.values.size(); ++q) {
    std::printf("  %s  %s\n",
                QuarterLabel(series.first_quarter +
                             static_cast<QuarterId>(q))
                    .c_str(),
                WithThousands(series.values[q]).c_str());
  }
}

/// Window/confidence restriction shared by the filter-aware queries.
struct QueryRestriction {
  engine::MentionFilter filter;
  bool active = false;
};

int RunQuery(const engine::Database& db, const std::string& query,
             std::size_t top_k, const QueryRestriction& restrict_to) {
  if (restrict_to.active &&
      (query == "top-sources" || query == "cross-report")) {
    const auto rows = engine::SelectMentions(db, restrict_to.filter);
    std::fprintf(stderr, "[filter selects %zu of %zu mentions]\n",
                 rows.size(), db.num_mentions());
    if (query == "top-sources") {
      const auto counts = engine::ArticlesPerSource(db, rows);
      std::vector<std::uint32_t> ids(counts.size());
      std::iota(ids.begin(), ids.end(), 0u);
      const std::size_t take = std::min(top_k, ids.size());
      std::partial_sort(ids.begin(),
                        ids.begin() + static_cast<std::ptrdiff_t>(take),
                        ids.end(), [&](std::uint32_t a, std::uint32_t b) {
                          return counts[a] > counts[b];
                        });
      std::printf("Top %zu sources (restricted):\n", take);
      for (std::size_t k = 0; k < take; ++k) {
        std::printf("  %-28s %s\n",
                    std::string(db.source_domain(ids[k])).c_str(),
                    WithThousands(counts[ids[k]]).c_str());
      }
      return 0;
    }
    const auto report = engine::CountryCrossReporting(db, rows);
    const auto reported = engine::CountriesByReportedEvents(db, top_k);
    const auto publishing = engine::CountriesByPublishedArticles(db, top_k);
    std::printf("Country cross-reporting (restricted window):\n");
    for (const CountryId r : reported) {
      std::printf("  %-14s", std::string(CountryName(r)).c_str());
      for (const CountryId p : publishing) {
        std::printf(" %-12s", WithThousands(report.At(r, p)).c_str());
      }
      std::printf("\n");
    }
    return 0;
  }
  if (query == "stats") {
    std::printf("%s", analysis::ComputeDatasetStatistics(db).ToText().c_str());
    std::printf("Event-size power-law alpha (MLE, xmin=2): %.2f\n",
                analysis::EventSizePowerLawAlpha(db, 2));
    return 0;
  }
  if (query == "top-sources") {
    const auto counts = engine::ArticlesPerSource(db);
    const auto top = engine::TopSourcesByArticles(db, top_k);
    std::printf("Top %zu sources by article count:\n", top.size());
    for (const std::uint32_t s : top) {
      std::printf("  %-28s %s\n", std::string(db.source_domain(s)).c_str(),
                  WithThousands(counts[s]).c_str());
    }
    return 0;
  }
  if (query == "top-events") {
    const auto top = engine::TopReportedEvents(db, top_k);
    std::printf("Top %zu most reported events (cf. Table III):\n",
                top.size());
    std::printf("  %-9s %s\n", "Mentions", "Event source URL");
    for (const auto& ev : top) {
      std::printf("  %-9u %s\n", ev.articles,
                  std::string(db.event_source_url(ev.event_row)).c_str());
    }
    return 0;
  }
  if (query == "quarterly") {
    PrintQuarterSeries("Active sources per quarter (Fig 3):",
                       engine::ActiveSourcesPerQuarter(db));
    PrintQuarterSeries("Events per quarter (Fig 4):",
                       engine::EventsPerQuarter(db));
    PrintQuarterSeries("Articles per quarter (Fig 5):",
                       engine::ArticlesPerQuarter(db));
    return 0;
  }
  if (query == "coreport") {
    const auto top = engine::TopSourcesByArticles(db, top_k);
    const auto matrix = analysis::ComputeCoReporting(db, top);
    std::printf("Co-reporting (Jaccard) among top %zu sources:\n",
                top.size());
    for (std::size_t i = 0; i < top.size(); ++i) {
      std::printf("  %-28s", std::string(db.source_domain(top[i])).c_str());
      for (std::size_t j = 0; j < top.size(); ++j) {
        std::printf(" %.3f", matrix.Jaccard(i, j));
      }
      std::printf("\n");
    }
    return 0;
  }
  if (query == "follow") {
    const auto top = engine::TopSourcesByArticles(db, top_k);
    const auto matrix = analysis::ComputeFollowReporting(db, top);
    std::printf("Follow-reporting f_ij among top %zu sources "
                "(cf. Table IV):\n", top.size());
    for (std::size_t i = 0; i < top.size(); ++i) {
      std::printf("  %-28s", std::string(db.source_domain(top[i])).c_str());
      for (std::size_t j = 0; j < top.size(); ++j) {
        std::printf(" %.3f", matrix.F(i, j));
      }
      std::printf("\n");
    }
    std::printf("  %-28s", "Sum");
    for (std::size_t j = 0; j < top.size(); ++j) {
      std::printf(" %.3f", matrix.ColumnSum(j));
    }
    std::printf("\n");
    return 0;
  }
  if (query == "country-coreport") {
    const auto report = analysis::ComputeCountryCoReporting(db);
    const auto top = engine::CountriesByPublishedArticles(db, top_k);
    std::printf("Country co-reporting (Jaccard, cf. Table V):\n  %-14s",
                "");
    for (const CountryId c : top) {
      std::printf(" %-12s", std::string(CountryName(c)).c_str());
    }
    std::printf("\n");
    for (const CountryId c : top) {
      std::printf("  %-14s", std::string(CountryName(c)).c_str());
      for (const CountryId d : top) {
        if (c == d) {
          std::printf(" %-12s", "-");
        } else {
          std::printf(" %-12.3f", report.Jaccard(c, d));
        }
      }
      std::printf("\n");
    }
    return 0;
  }
  if (query == "cross-report") {
    const auto report = engine::CountryCrossReporting(db);
    const auto reported = engine::CountriesByReportedEvents(db, top_k);
    const auto publishing = engine::CountriesByPublishedArticles(db, top_k);
    std::printf("Country cross-reporting counts (cf. Table VI):\n  %-14s",
                "");
    for (const CountryId p : publishing) {
      std::printf(" %-12s", std::string(CountryName(p)).c_str());
    }
    std::printf("\n");
    for (const CountryId r : reported) {
      std::printf("  %-14s", std::string(CountryName(r)).c_str());
      for (const CountryId p : publishing) {
        std::printf(" %-12s", WithThousands(report.At(r, p)).c_str());
      }
      std::printf("\n");
    }
    std::printf("\nAs percentage of publisher's articles (cf. Table VII):\n");
    for (const CountryId r : reported) {
      std::printf("  %-14s", std::string(CountryName(r)).c_str());
      for (const CountryId p : publishing) {
        std::printf(" %-12.2f", report.Percent(r, p));
      }
      std::printf("\n");
    }
    return 0;
  }
  if (query == "delay") {
    const auto stats = analysis::PerSourceDelayStats(db);
    const auto top = engine::TopSourcesByArticles(db, top_k);
    std::printf("Publication delay for top %zu sources "
                "(cf. Table VIII; 15-min intervals):\n", top.size());
    std::printf("  %-28s %8s %8s %8s %8s\n", "Publisher", "Min", "Max",
                "Average", "Median");
    for (const std::uint32_t s : top) {
      const auto& st = stats[s];
      std::printf("  %-28s %8lld %8lld %8.0f %8lld\n",
                  std::string(db.source_domain(s)).c_str(),
                  static_cast<long long>(st.min),
                  static_cast<long long>(st.max), st.average,
                  static_cast<long long>(st.median));
    }
    const auto quarterly = analysis::QuarterlyDelayStats(db);
    std::printf("\nQuarterly delay (Fig 10):\n");
    for (std::size_t q = 0; q < quarterly.average.size(); ++q) {
      std::printf("  %s  avg %.1f  median %lld\n",
                  QuarterLabel(quarterly.first_quarter +
                               static_cast<QuarterId>(q))
                      .c_str(),
                  quarterly.average[q],
                  static_cast<long long>(quarterly.median[q]));
    }
    return 0;
  }
  if (query == "tone") {
    const auto by_quad = analysis::ToneByQuadClass(db);
    static constexpr const char* kQuadNames[] = {
        "", "verbal cooperation", "material cooperation", "verbal conflict",
        "material conflict"};
    std::printf("Average tone / Goldstein by CAMEO quad class:\n");
    for (std::size_t q = 1; q <= 4; ++q) {
      std::printf("  %-22s tone %+6.2f  goldstein %+6.2f  (%s events)\n",
                  kQuadNames[q], by_quad.tone[q].Mean(),
                  by_quad.goldstein[q].Mean(),
                  WithThousands(by_quad.tone[q].count).c_str());
    }
    const auto by_country = analysis::AverageToneByCountry(db);
    const auto reported = engine::CountriesByReportedEvents(db, top_k);
    std::printf("\nAverage event tone by located country:\n");
    for (const CountryId c : reported) {
      std::printf("  %-14s %+6.2f  (%s events)\n",
                  std::string(CountryName(c)).c_str(),
                  by_country[c].Mean(),
                  WithThousands(by_country[c].count).c_str());
    }
    return 0;
  }
  if (query == "first-reports") {
    const auto stats = analysis::ComputeFirstReports(db);
    const auto counts = engine::ArticlesPerSource(db);
    std::vector<std::uint32_t> by_breaks(db.num_sources());
    std::iota(by_breaks.begin(), by_breaks.end(), 0u);
    std::partial_sort(by_breaks.begin(),
                      by_breaks.begin() + static_cast<std::ptrdiff_t>(
                          std::min<std::size_t>(top_k, by_breaks.size())),
                      by_breaks.end(),
                      [&](std::uint32_t a, std::uint32_t b) {
                        return stats.first_reports[a] > stats.first_reports[b];
                      });
    std::printf("Sources breaking the most stories (wildfire pool "
                "candidates):\n");
    std::printf("  %-28s %10s %10s %12s\n", "Source", "breaks", "articles",
                "repeat-rate");
    for (std::size_t k = 0; k < top_k && k < by_breaks.size(); ++k) {
      const auto s = by_breaks[k];
      std::printf("  %-28s %10s %10s %11.1f%%\n",
                  std::string(db.source_domain(s)).c_str(),
                  WithThousands(stats.first_reports[s]).c_str(),
                  WithThousands(counts[s]).c_str(),
                  100.0 * stats.RepeatRate(s, counts[s]));
    }
    std::printf("\nevents first reported within 1 hour: %s of %s\n",
                WithThousands(stats.events_broken_within_hour).c_str(),
                WithThousands(db.num_events()).c_str());
    return 0;
  }
  if (query == "scaling") {
    const int max_threads = MaxThreads();
    std::printf("Aggregated-query scaling (cf. Fig 12):\n");
    for (int t = 1; t <= max_threads; t *= 2) {
      SetThreads(t);
      WallTimer timer;
      const auto report = engine::CountryCrossReporting(db);
      (void)report;
      std::printf("  %2d thread(s): %.3fs\n", t, timer.ElapsedSeconds());
    }
    SetThreads(max_threads);
    return 0;
  }
  std::fprintf(stderr, "unknown query '%s'\n", query.c_str());
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(
      "Runs the paper's analyses against a converted binary GDELT "
      "database.");
  args.AddString("db", "gdelt_db", "binary database directory");
  args.AddString("query", "stats",
                 "stats | top-sources | top-events | quarterly | coreport | "
                 "follow | country-coreport | cross-report | delay | scaling");
  args.AddInt("top", 10, "number of rows for top-k queries");
  args.AddInt("threads", 0, "OpenMP threads (0 = default)");
  args.AddString("from", "",
                 "restrict top-sources/cross-report to captures at/after "
                 "this YYYYMMDDHHMMSS timestamp");
  args.AddString("to", "",
                 "restrict to captures before this YYYYMMDDHHMMSS timestamp");
  args.AddInt("min-confidence", 0,
              "restrict to mentions with at least this GDELT confidence");
  args.AddBool("help", false, "print usage");
  if (const Status s = args.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n%s", s.ToString().c_str(),
                 args.HelpText().c_str());
    return 2;
  }
  if (args.GetBool("help")) {
    std::printf("%s", args.HelpText().c_str());
    return 0;
  }
  if (args.GetInt("threads") > 0) {
    SetThreads(static_cast<int>(args.GetInt("threads")));
  }

  WallTimer load_timer;
  auto db = engine::Database::Load(args.GetString("db"));
  if (!db.ok()) {
    std::fprintf(stderr, "load failed: %s\n", db.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "[load took %.2fs]\n", load_timer.ElapsedSeconds());

  QueryRestriction restrict_to;
  if (!args.GetString("from").empty()) {
    const auto t = ParseGdeltTimestamp(args.GetString("from"));
    if (!t.ok()) {
      std::fprintf(stderr, "bad --from: %s\n", t.status().ToString().c_str());
      return 2;
    }
    restrict_to.filter.begin_interval = IntervalOfCivil(t.value());
    restrict_to.active = true;
  }
  if (!args.GetString("to").empty()) {
    const auto t = ParseGdeltTimestamp(args.GetString("to"));
    if (!t.ok()) {
      std::fprintf(stderr, "bad --to: %s\n", t.status().ToString().c_str());
      return 2;
    }
    restrict_to.filter.end_interval = IntervalOfCivil(t.value());
    restrict_to.active = true;
  }
  if (args.GetInt("min-confidence") > 0) {
    restrict_to.filter.min_confidence =
        static_cast<std::uint8_t>(args.GetInt("min-confidence"));
    restrict_to.active = true;
  }

  WallTimer query_timer;
  const int rc = RunQuery(*db, args.GetString("query"),
                          static_cast<std::size_t>(args.GetInt("top")),
                          restrict_to);
  std::fprintf(stderr, "[query took %.3fs]\n", query_timer.ElapsedSeconds());
  return rc;
}
