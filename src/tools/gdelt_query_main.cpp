// gdelt_query: runs the paper's analyses against a converted binary
// database and prints the corresponding table/figure data.
//
// The query dispatch and text rendering live in serve::RenderQuery, which
// is shared with the gdelt_serve daemon so both produce byte-identical
// output. Only `scaling` stays here: it mutates the process-wide thread
// count, which a shared server must never do.
//
// Usage: gdelt_query --db <dir> --query <name> [--top N] [--threads N]
//   queries: stats | top-sources | top-events | quarterly | coreport |
//            follow | country-coreport | cross-report | delay | tone |
//            first-reports | scaling
#include <cstdio>
#include <string>

#include "engine/database.hpp"
#include "engine/queries.hpp"
#include "gtime/timestamp.hpp"
#include "serve/render.hpp"
#include "trace/trace.hpp"
#include "util/args.hpp"
#include "util/timer.hpp"

using namespace gdelt;

namespace {

int RunScaling(const engine::Database& db) {
  const int max_threads = MaxThreads();
  std::printf("Aggregated-query scaling (cf. Fig 12):\n");
  for (int t = 1; t <= max_threads; t *= 2) {
    SetThreads(t);
    WallTimer timer;
    const auto report = engine::CountryCrossReporting(db);
    (void)report;
    std::printf("  %2d thread(s): %.3fs\n", t, timer.ElapsedSeconds());
  }
  SetThreads(max_threads);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(
      "Runs the paper's analyses against a converted binary GDELT "
      "database.");
  args.AddString("db", "gdelt_db", "binary database directory");
  args.AddString("query", "stats",
                 "stats | top-sources | top-events | quarterly | coreport | "
                 "follow | country-coreport | cross-report | delay | scaling");
  args.AddInt("top", 10, "number of rows for top-k queries");
  args.AddInt("threads", 0, "OpenMP threads (0 = default)");
  args.AddString("from", "",
                 "restrict top-sources/coreport/cross-report to captures "
                 "at/after this YYYYMMDDHHMMSS timestamp");
  args.AddString("to", "",
                 "restrict to captures before this YYYYMMDDHHMMSS timestamp");
  args.AddInt("min-confidence", 0,
              "restrict to mentions with at least this GDELT confidence");
  args.AddString("trace-out", "",
                 "enable span tracing and write a Chrome trace_event JSON "
                 "file here after the query");
  args.AddBool("help", false, "print usage");
  if (const Status s = args.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n%s", s.ToString().c_str(),
                 args.HelpText().c_str());
    return 2;
  }
  if (args.GetBool("help")) {
    std::printf("%s", args.HelpText().c_str());
    return 0;
  }
  if (args.GetInt("threads") > 0) {
    SetThreads(static_cast<int>(args.GetInt("threads")));
  }
  const std::string trace_out = args.GetString("trace-out");
  if (!trace_out.empty()) trace::SetEnabled(true);

  WallTimer load_timer;
  auto db = engine::Database::Load(args.GetString("db"));
  if (!db.ok()) {
    std::fprintf(stderr, "load failed: %s\n", db.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "[load took %.2fs]\n", load_timer.ElapsedSeconds());

  serve::Request request;
  request.kind = args.GetString("query");
  request.top_k = static_cast<std::size_t>(args.GetInt("top"));
  if (!args.GetString("from").empty()) {
    const auto t = ParseGdeltTimestamp(args.GetString("from"));
    if (!t.ok()) {
      std::fprintf(stderr, "bad --from: %s\n", t.status().ToString().c_str());
      return 2;
    }
    request.filter.begin_interval = IntervalOfCivil(t.value());
    request.restricted = true;
  }
  if (!args.GetString("to").empty()) {
    const auto t = ParseGdeltTimestamp(args.GetString("to"));
    if (!t.ok()) {
      std::fprintf(stderr, "bad --to: %s\n", t.status().ToString().c_str());
      return 2;
    }
    request.filter.end_interval = IntervalOfCivil(t.value());
    request.restricted = true;
  }
  if (args.GetInt("min-confidence") > 0) {
    request.filter.min_confidence =
        static_cast<std::uint8_t>(args.GetInt("min-confidence"));
    request.restricted = true;
  }

  WallTimer query_timer;
  int rc = 0;
  if (request.kind == "scaling") {
    rc = RunScaling(*db);
  } else {
    const auto rendered = serve::RenderQuery(*db, request);
    if (!rendered.ok()) {
      std::fprintf(stderr, "%s\n", rendered.status().message().c_str());
      rc = 2;
    } else {
      if (!rendered->note.empty()) {
        std::fprintf(stderr, "%s\n", rendered->note.c_str());
      }
      std::fputs(rendered->text.c_str(), stdout);
    }
  }
  std::fprintf(stderr, "[query took %.3fs]\n", query_timer.ElapsedSeconds());
  if (!trace_out.empty()) {
    if (const Status s = trace::WriteChromeTrace(trace_out); !s.ok()) {
      std::fprintf(stderr, "trace write failed: %s\n", s.ToString().c_str());
    } else {
      std::fprintf(stderr, "[trace written to %s]\n", trace_out.c_str());
    }
  }
  return rc;
}
