// gdelt_client: sends requests to a running gdelt_serve daemon.
//
// One-shot:  gdelt_client --port 7450 --request '{"query":"stats"}'
// Batch:     printf '%s\n' '{"query":"stats"}' '{"query":"quarterly"}' \
//              | gdelt_client --port 7450
//
// Responses are printed one JSON line each to stdout, in request order.
// Exit code is 0 only if every response had "ok":true.
#include <cstdio>
#include <iostream>
#include <string>

#include "serve/client.hpp"
#include "serve/json.hpp"
#include "util/args.hpp"

using namespace gdelt;

namespace {

/// Prints the response and reports whether it carried "ok":true.
bool PrintResponse(const std::string& line) {
  std::printf("%s\n", line.c_str());
  const auto parsed = serve::JsonValue::Parse(line);
  if (!parsed.ok()) return false;
  const auto* ok = parsed->Find("ok");
  return ok != nullptr && ok->AsBool();
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("Client for the gdelt_serve newline-delimited JSON API.");
  args.AddString("host", "127.0.0.1", "server address");
  args.AddInt("port", 7450, "server port");
  args.AddString("request", "",
                 "single request JSON line (default: batch from stdin)");
  args.AddInt("repeat", 1, "send the --request line this many times");
  args.AddBool("help", false, "print usage");
  if (const Status s = args.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n%s", s.ToString().c_str(),
                 args.HelpText().c_str());
    return 2;
  }
  if (args.GetBool("help")) {
    std::printf("%s", args.HelpText().c_str());
    return 0;
  }

  auto client = serve::LineClient::Connect(args.GetString("host"),
                                           static_cast<int>(
                                               args.GetInt("port")));
  if (!client.ok()) {
    std::fprintf(stderr, "%s\n", client.status().ToString().c_str());
    return 1;
  }

  bool all_ok = true;
  const auto send_one = [&](const std::string& request) {
    const auto response = client->RoundTrip(request);
    if (!response.ok()) {
      std::fprintf(stderr, "%s\n", response.status().ToString().c_str());
      all_ok = false;
      return false;
    }
    all_ok = PrintResponse(*response) && all_ok;
    return true;
  };

  if (!args.GetString("request").empty()) {
    const auto repeat = args.GetInt("repeat");
    for (std::int64_t i = 0; i < repeat; ++i) {
      if (!send_one(args.GetString("request"))) return 1;
    }
    return all_ok ? 0 : 1;
  }

  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (!send_one(line)) return 1;
  }
  return all_ok ? 0 : 1;
}
