// Aggregated query kernels over the in-memory database.
//
// These are the "most intensive aggregated queries" the paper parallelizes
// with OpenMP (Sections IV, VI-G). Each kernel is a single scan with
// per-thread partials merged deterministically at the end.
#pragma once

#include <cstdint>
#include <vector>

#include "engine/database.hpp"
#include "gtime/timestamp.hpp"
#include "parallel/parallel.hpp"

namespace gdelt::engine {

/// Article count per source id (Fig 6 input). One parallel histogram scan.
std::vector<std::uint64_t> ArticlesPerSource(
    const Database& db, Schedule schedule = Schedule::kStatic);

/// Source ids with the most articles, descending (ties by id).
std::vector<std::uint32_t> TopSourcesByArticles(const Database& db,
                                                std::size_t k);

/// One row of the Table III result.
struct TopEvent {
  std::uint32_t event_row = 0;
  std::uint32_t articles = 0;
};

/// Event rows with the most articles, descending (Table III).
std::vector<TopEvent> TopReportedEvents(const Database& db, std::size_t k);

/// A per-quarter series starting at `first_quarter`.
struct QuarterSeries {
  QuarterId first_quarter = 0;
  std::vector<std::uint64_t> values;
};

/// Relative quarter index of every mention (parallel precomputation used
/// by the trend queries). Values index from the database's first quarter.
std::vector<std::int32_t> MentionQuarters(const Database& db);

/// Quarter window covered by the database's mentions.
struct QuarterWindow {
  QuarterId first = 0;
  std::int32_t count = 0;
};
QuarterWindow QuartersOf(const Database& db);

/// Articles observed per quarter (Fig 5).
QuarterSeries ArticlesPerQuarter(const Database& db);

/// Events observed per quarter, by DATEADDED (Fig 4).
QuarterSeries EventsPerQuarter(const Database& db);

/// Sources with at least one article in each quarter (Fig 3).
QuarterSeries ActiveSourcesPerQuarter(const Database& db);

/// Per-quarter article counts for each requested source (Fig 6 series).
std::vector<QuarterSeries> SourceArticlesPerQuarter(
    const Database& db, std::span<const std::uint32_t> source_ids);

/// Result of the paper's headline aggregated query: country-cross-reporting
/// (Tables VI and VII; Fig 8) computed in one scan over all mentions.
struct CountryCrossReport {
  std::size_t num_countries = 0;
  /// counts[reported * num_countries + publishing] = articles published in
  /// `publishing` about events located in `reported`.
  std::vector<std::uint64_t> counts;
  /// Articles per publishing country (column totals incl. untagged events).
  std::vector<std::uint64_t> articles_per_publisher;

  std::uint64_t At(CountryId reported, CountryId publishing) const noexcept {
    return counts[static_cast<std::size_t>(reported) * num_countries +
                  publishing];
  }
  /// Percentage of `publishing`'s articles that report on `reported`
  /// (Table VII semantics).
  double Percent(CountryId reported, CountryId publishing) const noexcept {
    const std::uint64_t total = articles_per_publisher[publishing];
    return total == 0 ? 0.0
                      : 100.0 * static_cast<double>(At(reported, publishing)) /
                            static_cast<double>(total);
  }
};

/// Runs the aggregated query with the current OpenMP thread count.
/// `schedule` is exposed for the scheduling ablation bench.
CountryCrossReport CountryCrossReporting(
    const Database& db, Schedule schedule = Schedule::kStatic);

/// Countries ranked by located events (the Table VI row ordering).
std::vector<CountryId> CountriesByReportedEvents(const Database& db,
                                                 std::size_t k);

/// Countries ranked by published articles (the Table VI column ordering).
std::vector<CountryId> CountriesByPublishedArticles(const Database& db,
                                                    std::size_t k);

}  // namespace gdelt::engine
