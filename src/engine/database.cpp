#include "engine/database.hpp"

#include <algorithm>

#include "convert/binary_format.hpp"
#include "parallel/numa.hpp"
#include "parallel/parallel.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

namespace gdelt::engine {
namespace {

using convert::kOrphanEventRow;

/// Fetches a typed span from a table column, validating name and type.
template <typename T>
Status BindSpan(const Table& table, std::string_view name,
                std::span<const T>& out) {
  const Column* col = table.FindColumn(name);
  if (!col) {
    return status::DataLoss("missing column '" + std::string(name) + "'");
  }
  if (col->type() != column_detail::TypeTag<T>::value) {
    return status::DataLoss("column '" + std::string(name) +
                            "' has unexpected type");
  }
  out = col->Values<T>();
  return Status::Ok();
}

/// Builds the event -> distinct-source index: one parallel pass where each
/// thread sorts/dedups its contiguous event range into a private buffer,
/// then a prefix sum over per-event counts and a parallel copy into the
/// final CSR arrays. Deterministic: output depends only on the data.
CsrSetIndex BuildEventDistinctSources(const CsrIndex& by_event,
                                      std::span<const std::uint32_t> src,
                                      std::size_t num_events) {
  CsrSetIndex index;
  index.offsets.assign(num_events + 1, 0);

  const auto parts = SplitRange(num_events, static_cast<std::size_t>(MaxThreads()));
  std::vector<std::vector<std::uint32_t>> locals(parts.size());
  ParallelFor(parts.size(), [&](std::size_t p) {
    auto& local = locals[p];
    std::vector<std::uint32_t> scratch;
    for (std::size_t e = parts[p].begin; e < parts[p].end; ++e) {
      scratch.clear();
      for (const std::uint64_t row :
           by_event.RowsOf(static_cast<std::uint32_t>(e))) {
        scratch.push_back(src[row]);
      }
      std::sort(scratch.begin(), scratch.end());
      scratch.erase(std::unique(scratch.begin(), scratch.end()),
                    scratch.end());
      index.offsets[e + 1] = scratch.size();
      local.insert(local.end(), scratch.begin(), scratch.end());
    }
  });
  for (std::size_t e = 0; e < num_events; ++e) {
    index.offsets[e + 1] += index.offsets[e];
  }
  index.values.resize(index.offsets[num_events]);
  ParallelFor(parts.size(), [&](std::size_t p) {
    if (parts[p].empty()) return;
    std::copy(locals[p].begin(), locals[p].end(),
              index.values.begin() +
                  static_cast<std::ptrdiff_t>(index.offsets[parts[p].begin]));
  });
  return index;
}

}  // namespace

const CsrSetIndex& Database::event_distinct_sources() const {
  std::call_once(lazy_->distinct_sources_once, [this] {
    lazy_->distinct_sources = BuildEventDistinctSources(
        mentions_by_event_, mention_source_id_, num_events_);
  });
  return lazy_->distinct_sources;
}

Result<Database> Database::Load(const std::string& dir,
                                const LoadOptions& options) {
  Database db;
  GDELT_ASSIGN_OR_RETURN(
      db.events_,
      Table::ReadFromFile(dir + "/" + std::string(convert::kEventsTableFile)));
  GDELT_ASSIGN_OR_RETURN(db.mentions_,
                         Table::ReadFromFile(
                             dir + "/" + std::string(convert::kMentionsTableFile)));
  GDELT_ASSIGN_OR_RETURN(
      db.sources_, StringDictionary::ReadFromFile(
                       dir + "/" + std::string(convert::kSourcesDictFile)));

  db.num_events_ = db.events_.num_rows();
  db.num_mentions_ = db.mentions_.num_rows();

  namespace ec = convert::events_col;
  namespace mc = convert::mentions_col;
  GDELT_RETURN_IF_ERROR(
      BindSpan(db.mentions_, mc::kEventRow, db.mention_event_row_));
  GDELT_RETURN_IF_ERROR(
      BindSpan(db.mentions_, mc::kEventInterval, db.mention_event_interval_));
  GDELT_RETURN_IF_ERROR(
      BindSpan(db.mentions_, mc::kMentionInterval, db.mention_interval_));
  GDELT_RETURN_IF_ERROR(
      BindSpan(db.mentions_, mc::kSourceId, db.mention_source_id_));
  GDELT_RETURN_IF_ERROR(
      BindSpan(db.mentions_, mc::kConfidence, db.mention_confidence_));
  GDELT_RETURN_IF_ERROR(
      BindSpan(db.events_, ec::kGlobalId, db.event_global_id_));
  GDELT_RETURN_IF_ERROR(
      BindSpan(db.events_, ec::kAddedInterval, db.event_added_interval_));
  GDELT_RETURN_IF_ERROR(BindSpan(db.events_, ec::kCountry, db.event_country_));
  GDELT_RETURN_IF_ERROR(BindSpan(db.events_, ec::kAvgTone, db.event_tone_));
  GDELT_RETURN_IF_ERROR(
      BindSpan(db.events_, ec::kGoldstein, db.event_goldstein_));
  GDELT_RETURN_IF_ERROR(
      BindSpan(db.events_, ec::kQuadClass, db.event_quad_class_));
  if (!db.events_.HasColumn(ec::kSourceUrl)) {
    return status::DataLoss("missing column 'source_url'");
  }

  // Referential integrity: every non-orphan event_row must be in range and
  // every source id must be in the dictionary.
  for (const std::uint32_t row : db.mention_event_row_) {
    if (row != kOrphanEventRow && row >= db.num_events_) {
      return status::DataLoss("mention references event row out of range");
    }
  }
  for (const std::uint32_t sid : db.mention_source_id_) {
    if (sid >= db.sources_.size()) {
      return status::DataLoss("mention references unknown source id");
    }
  }

  // Derived: source -> country via the TLD heuristic (Section VI-C).
  db.source_country_.resize(db.sources_.size());
  ParallelFor(db.sources_.size(), [&](std::size_t i) {
    const auto country =
        CountryOfSourceDomain(db.sources_.At(static_cast<std::uint32_t>(i)));
    db.source_country_[i] = country.value_or(kNoCountry);
  });

  // Derived: true article counts per event.
  db.event_article_count_.assign(db.num_events_, 0);
  {
    auto counts = ParallelHistogram(
        db.num_mentions_, db.num_events_, [&](std::size_t i) -> std::size_t {
          const std::uint32_t row = db.mention_event_row_[i];
          return row == kOrphanEventRow ? SIZE_MAX : row;
        });
    ParallelFor(db.num_events_, [&](std::size_t e) {
      db.event_article_count_[e] = static_cast<std::uint32_t>(counts[e]);
    });
  }

  // Timeline bounds.
  db.first_interval_ = ParallelReduce<std::int64_t>(
      db.num_mentions_, INT64_MAX,
      [&](std::size_t i) { return db.mention_interval_[i]; },
      [](std::int64_t a, std::int64_t b) { return std::min(a, b); });
  db.last_interval_ = ParallelReduce<std::int64_t>(
      db.num_mentions_, INT64_MIN,
      [&](std::size_t i) { return db.mention_interval_[i]; },
      [](std::int64_t a, std::int64_t b) { return std::max(a, b); });
  if (db.num_mentions_ == 0) {
    db.first_interval_ = db.last_interval_ = 0;
  }

  if (options.build_indexes) {
    // Orphan mentions go into an extra trailing bucket so keys stay dense.
    std::vector<std::uint32_t> event_keys(db.num_mentions_);
    ParallelFor(db.num_mentions_, [&](std::size_t i) {
      const std::uint32_t row = db.mention_event_row_[i];
      event_keys[i] = row == kOrphanEventRow
                          ? static_cast<std::uint32_t>(db.num_events_)
                          : row;
    });
    db.mentions_by_event_ = BuildCsrIndex(event_keys, db.num_events_ + 1);
    db.mentions_by_source_ =
        BuildCsrIndex(db.mention_source_id_, db.sources_.size());
  }

  if (options.numa_first_touch) {
    // Fault the big read-side buffers in with the same static thread
    // distribution the scan kernels use (read-only page warming).
    WarmPagesParallel(db.mention_interval_.data(),
                      db.mention_interval_.size() * sizeof(std::int64_t));
    WarmPagesParallel(db.mention_event_interval_.data(),
                      db.mention_event_interval_.size() * sizeof(std::int64_t));
    WarmPagesParallel(db.mention_source_id_.data(),
                      db.mention_source_id_.size() * sizeof(std::uint32_t));
  }

  GDELT_LOG(kInfo, StrFormat("database loaded: %zu events, %zu mentions, "
                             "%u sources, %.1f MiB resident",
                             db.num_events_, db.num_mentions_,
                             db.sources_.size(),
                             static_cast<double>(db.MemoryBytes()) /
                                 (1024.0 * 1024.0)));
  return db;
}

std::size_t Database::MemoryBytes() const noexcept {
  std::size_t total = events_.MemoryBytes() + mentions_.MemoryBytes();
  total += source_country_.capacity() * sizeof(std::uint16_t);
  total += event_article_count_.capacity() * sizeof(std::uint32_t);
  total += mentions_by_event_.offsets.capacity() * sizeof(std::uint64_t) +
           mentions_by_event_.rows.capacity() * sizeof(std::uint64_t);
  total += mentions_by_source_.offsets.capacity() * sizeof(std::uint64_t) +
           mentions_by_source_.rows.capacity() * sizeof(std::uint64_t);
  if (lazy_) total += lazy_->distinct_sources.MemoryBytes();
  return total;
}

}  // namespace gdelt::engine
