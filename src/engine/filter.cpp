#include "engine/filter.hpp"

#include <algorithm>

#include "convert/binary_format.hpp"
#include "parallel/parallel.hpp"
#include "trace/trace.hpp"

namespace gdelt::engine {
namespace {

/// Evaluates the conjunction for one mention row.
bool Matches(const Database& db, const MentionFilter& f, std::uint64_t i) {
  const std::int64_t at = db.mention_interval()[i];
  if (at < f.begin_interval || at >= f.end_interval) return false;
  if (db.mention_confidence()[i] < f.min_confidence) return false;
  if (f.publisher_country != kNoCountry &&
      db.source_country()[db.mention_source_id()[i]] != f.publisher_country) {
    return false;
  }
  const std::uint32_t row = db.mention_event_row()[i];
  if (row == convert::kOrphanEventRow) {
    if (f.exclude_orphans || f.event_country != kNoCountry) return false;
  } else if (f.event_country != kNoCountry &&
             db.event_country()[row] != f.event_country) {
    return false;
  }
  return true;
}

}  // namespace

std::vector<std::uint64_t> SelectMentions(const Database& db,
                                          const MentionFilter& filter) {
  TRACE_SPAN("engine.select_mentions");
  const std::size_t n = db.num_mentions();
  // Pass 1: per-chunk match counts; pass 2: scatter rows in order.
  const auto nt = static_cast<std::size_t>(MaxThreads());
  std::vector<std::uint64_t> chunk_counts(nt, 0);
  std::vector<IndexRange> chunk_ranges(nt);
  ParallelForChunks(n, [&](IndexRange r, int tid) {
    chunk_ranges[static_cast<std::size_t>(tid)] = r;
    std::uint64_t count = 0;
    for (std::size_t i = r.begin; i < r.end; ++i) {
      if (Matches(db, filter, i)) ++count;
    }
    chunk_counts[static_cast<std::size_t>(tid)] = count;
  });
  std::vector<std::uint64_t> offsets(nt, 0);
  std::uint64_t total = 0;
  for (std::size_t t = 0; t < nt; ++t) {
    offsets[t] = total;
    total += chunk_counts[t];
  }
  std::vector<std::uint64_t> rows(total);
  ParallelForChunks(n, [&](IndexRange r, int tid) {
    // Ranges are deterministic, so this chunk matches pass 1's.
    std::uint64_t at = offsets[static_cast<std::size_t>(tid)];
    for (std::size_t i = r.begin; i < r.end; ++i) {
      if (Matches(db, filter, i)) rows[at++] = i;
    }
  });
  return rows;
}

std::vector<std::uint64_t> ArticlesPerSource(
    const Database& db, std::span<const std::uint64_t> rows) {
  TRACE_SPAN("engine.articles_per_source.filtered");
  const auto src = db.mention_source_id();
  return ParallelHistogram(rows.size(), db.num_sources(),
                           [&](std::size_t k) -> std::size_t {
                             return src[rows[k]];
                           });
}

CountryCrossReport CountryCrossReporting(
    const Database& db, std::span<const std::uint64_t> rows) {
  TRACE_SPAN("engine.cross_report.filtered");
  const std::size_t nc = Countries().size();
  const auto event_row = db.mention_event_row();
  const auto src = db.mention_source_id();
  const auto event_country = db.event_country();
  const auto source_country = db.source_country();

  CountryCrossReport report;
  report.num_countries = nc;
  const std::size_t matrix_bins = nc * nc;
  auto flat = ParallelHistogram(
      rows.size(), matrix_bins + nc, [&](std::size_t k) -> std::size_t {
        const std::uint64_t i = rows[k];
        const std::uint16_t pub = source_country[src[i]];
        if (pub == kNoCountry) return SIZE_MAX;
        const std::uint32_t row = event_row[i];
        if (row == convert::kOrphanEventRow) return matrix_bins + pub;
        const std::uint16_t rep = event_country[row];
        if (rep == kNoCountry) return matrix_bins + pub;
        return static_cast<std::size_t>(rep) * nc + pub;
      });
  report.counts.assign(flat.begin(),
                       flat.begin() + static_cast<std::ptrdiff_t>(matrix_bins));
  report.articles_per_publisher.assign(
      flat.begin() + static_cast<std::ptrdiff_t>(matrix_bins), flat.end());
  for (std::size_t rep = 0; rep < nc; ++rep) {
    for (std::size_t pub = 0; pub < nc; ++pub) {
      report.articles_per_publisher[pub] += report.counts[rep * nc + pub];
    }
  }
  return report;
}

QuarterSeries ArticlesPerQuarter(const Database& db,
                                 std::span<const std::uint64_t> rows) {
  const QuarterWindow w = QuartersOf(db);
  const auto when = db.mention_interval();
  QuarterSeries series;
  series.first_quarter = w.first;
  series.values = ParallelHistogram(
      rows.size(), static_cast<std::size_t>(w.count),
      [&](std::size_t k) -> std::size_t {
        const std::int32_t q =
            QuarterOfUnixSeconds(IntervalStartUnixSeconds(when[rows[k]])) -
            w.first;
        return q < 0 ? SIZE_MAX : static_cast<std::size_t>(q);
      });
  return series;
}

std::uint64_t DistinctEvents(const Database& db,
                             std::span<const std::uint64_t> rows) {
  const auto event_row = db.mention_event_row();
  // Flag array over events; orphans tracked separately by global id being
  // unavailable — they are excluded from the distinct count.
  std::vector<std::uint8_t> seen(db.num_events() + 1, 0);
  for (const std::uint64_t i : rows) {
    const std::uint32_t row = event_row[i];
    if (row != convert::kOrphanEventRow) seen[row] = 1;
  }
  std::uint64_t count = 0;
  for (const std::uint8_t s : seen) count += s;
  return count;
}

}  // namespace gdelt::engine
