#include "engine/filter.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

#include "convert/binary_format.hpp"
#include "parallel/morsel.hpp"
#include "parallel/parallel.hpp"
#include "trace/trace.hpp"

namespace gdelt::engine {
namespace {

/// Evaluates the conjunction for one mention row (scalar reference; the
/// bitmap passes below must agree with this bit-for-bit).
bool Matches(const Database& db, const MentionFilter& f, std::uint64_t i) {
  const std::int64_t at = db.mention_interval()[i];
  if (at < f.begin_interval || at >= f.end_interval) return false;
  if (db.mention_confidence()[i] < f.min_confidence) return false;
  if (f.publisher_country != kNoCountry &&
      db.source_country()[db.mention_source_id()[i]] != f.publisher_country) {
    return false;
  }
  const std::uint32_t row = db.mention_event_row()[i];
  if (row == convert::kOrphanEventRow) {
    if (f.exclude_orphans || f.event_country != kNoCountry) return false;
  } else if (f.event_country != kNoCountry &&
             db.event_country()[row] != f.event_country) {
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// SIMD dispatch
// ---------------------------------------------------------------------------

/// AVX2 present on this CPU (independent of the env/runtime toggle).
bool HardwareHasSimd() noexcept {
#if defined(__x86_64__)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

/// Hardware support minus the GDELT_DISABLE_SIMD=1 escape hatch.
bool DefaultSimd() noexcept {
  if (!HardwareHasSimd()) return false;
  const char* env = std::getenv("GDELT_DISABLE_SIMD");
  return env == nullptr || *env == '\0' || std::strcmp(env, "0") == 0;
}

std::atomic<bool> g_simd_enabled{DefaultSimd()};

// ---------------------------------------------------------------------------
// Per-word compare kernels: each returns a 64-bit lane mask for up to 64
// consecutive rows (bit b = row base+b passes). The AVX2 variants handle
// exactly 64 rows; tails fall back to the scalar variants.
// ---------------------------------------------------------------------------

#if defined(__x86_64__)
/// begin <= at[i] < end over 64 consecutive int64 intervals.
__attribute__((target("avx2"))) std::uint64_t IntervalWordAvx2(
    const std::int64_t* at, std::int64_t begin, std::int64_t end) {
  const __m256i lo = _mm256_set1_epi64x(begin);
  const __m256i hi = _mm256_set1_epi64x(end);
  std::uint64_t bits = 0;
  for (int k = 0; k < 16; ++k) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(at + 4 * k));
    // pass = !(a < begin) && (a < end); andnot avoids begin-1 overflow.
    const __m256i below = _mm256_cmpgt_epi64(lo, a);
    const __m256i above_ok = _mm256_cmpgt_epi64(hi, a);
    const __m256i pass = _mm256_andnot_si256(below, above_ok);
    const auto m = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_castsi256_pd(pass)));
    bits |= static_cast<std::uint64_t>(m) << (4 * k);
  }
  return bits;
}

/// conf[i] >= min_conf (unsigned) over 64 consecutive bytes.
__attribute__((target("avx2"))) std::uint64_t ConfidenceWordAvx2(
    const std::uint8_t* conf, std::uint8_t min_conf) {
  const __m256i min_v = _mm256_set1_epi8(static_cast<char>(min_conf));
  std::uint64_t bits = 0;
  for (int k = 0; k < 2; ++k) {
    const __m256i c =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(conf + 32 * k));
    // unsigned >=: max(c, min) == c
    const __m256i ge = _mm256_cmpeq_epi8(_mm256_max_epu8(c, min_v), c);
    const auto m = static_cast<unsigned>(_mm256_movemask_epi8(ge));
    bits |= static_cast<std::uint64_t>(m) << (32 * k);
  }
  return bits;
}
#endif  // __x86_64__

std::uint64_t IntervalWordScalar(const std::int64_t* at, std::size_t rows,
                                 std::int64_t begin, std::int64_t end) {
  std::uint64_t bits = 0;
  for (std::size_t i = 0; i < rows; ++i) {
    if (at[i] >= begin && at[i] < end) bits |= std::uint64_t{1} << i;
  }
  return bits;
}

std::uint64_t ConfidenceWordScalar(const std::uint8_t* conf, std::size_t rows,
                                   std::uint8_t min_conf) {
  std::uint64_t bits = 0;
  for (std::size_t i = 0; i < rows; ++i) {
    if (conf[i] >= min_conf) bits |= std::uint64_t{1} << i;
  }
  return bits;
}

std::uint64_t IntervalWord(bool simd, const std::int64_t* at, std::size_t rows,
                           std::int64_t begin, std::int64_t end) {
#if defined(__x86_64__)
  if (simd && rows == 64) return IntervalWordAvx2(at, begin, end);
#endif
  (void)simd;
  return IntervalWordScalar(at, rows, begin, end);
}

std::uint64_t ConfidenceWord(bool simd, const std::uint8_t* conf,
                             std::size_t rows, std::uint8_t min_conf) {
#if defined(__x86_64__)
  if (simd && rows == 64) return ConfidenceWordAvx2(conf, min_conf);
#endif
  (void)simd;
  return ConfidenceWordScalar(conf, rows, min_conf);
}

/// Words per pool morsel for bitmap-granular loops, matching the
/// row-granular morsel size so ablation sweeps move both together.
std::size_t WordsPerMorsel() {
  return std::max<std::size_t>(1, parallel::MorselRows() / 64);
}

/// Deterministic pool histogram over the set bits of a bitmap:
/// per-slot partials merged in slot order (integer sums commute, so the
/// result is identical no matter which worker ran which morsel).
template <typename BinOf>
std::vector<std::uint64_t> BitmapHistogram(const SelectionBitmap& sel,
                                           std::size_t num_bins,
                                           BinOf&& bin_of) {
  std::vector<std::vector<std::uint64_t>> partials(parallel::PoolSlots());
  parallel::PoolParallelFor(
      sel.words.size(),
      [&](IndexRange r, std::size_t slot) {
        auto& local = partials[slot];
        if (local.size() != num_bins) local.assign(num_bins, 0);
        for (std::size_t w = r.begin; w < r.end; ++w) {
          std::uint64_t bits = sel.words[w];
          while (bits) {
            const auto b = static_cast<unsigned>(std::countr_zero(bits));
            bits &= bits - 1;
            const std::size_t bin = bin_of(w * 64 + b);
            if (bin < num_bins) ++local[bin];
          }
        }
      },
      WordsPerMorsel());
  std::vector<std::uint64_t> merged(num_bins, 0);
  for (const auto& local : partials) {
    if (local.size() != num_bins) continue;  // slot never ran a morsel
    for (std::size_t b = 0; b < num_bins; ++b) merged[b] += local[b];
  }
  return merged;
}

}  // namespace

void SetSimdEnabled(bool enabled) noexcept {
  g_simd_enabled.store(enabled && HardwareHasSimd(),
                       std::memory_order_relaxed);
}

bool SimdEnabled() noexcept {
  return g_simd_enabled.load(std::memory_order_relaxed);
}

std::uint64_t SelectionBitmap::CountSet() const noexcept {
  std::uint64_t total = 0;
  for (const std::uint64_t w : words) {
    total += static_cast<std::uint64_t>(std::popcount(w));
  }
  return total;
}

std::vector<std::uint64_t> SelectionBitmap::ToRows() const {
  const std::size_t nw = words.size();
  const std::size_t bw = WordsPerMorsel();
  const std::size_t num_blocks = (nw + bw - 1) / bw;
  // Pass 1: per-block set counts. Each pool morsel is exactly one block
  // (same words-per-morsel), so block index = r.begin / bw is unique and
  // deterministic regardless of which worker ran it.
  std::vector<std::uint64_t> offsets(num_blocks, 0);
  parallel::PoolParallelFor(
      nw,
      [&](IndexRange r, std::size_t) {
        std::uint64_t count = 0;
        for (std::size_t w = r.begin; w < r.end; ++w) {
          count += static_cast<std::uint64_t>(std::popcount(words[w]));
        }
        offsets[r.begin / bw] = count;
      },
      bw);
  const std::uint64_t total = ExclusivePrefixSum(offsets);
  // Pass 2: scatter ascending row ids at each block's offset.
  std::vector<std::uint64_t> rows(total);
  parallel::PoolParallelFor(
      nw,
      [&](IndexRange r, std::size_t) {
        std::uint64_t at = offsets[r.begin / bw];
        for (std::size_t w = r.begin; w < r.end; ++w) {
          std::uint64_t bits = words[w];
          while (bits) {
            const auto b = static_cast<unsigned>(std::countr_zero(bits));
            bits &= bits - 1;
            rows[at++] = w * 64 + b;
          }
        }
      },
      bw);
  return rows;
}

SelectionBitmap SelectMentionsBitmap(const Database& db,
                                     const MentionFilter& filter) {
  TRACE_SPAN("engine.select_mentions");
  SelectionBitmap sel;
  const std::size_t n = db.num_mentions();
  sel.num_rows = n;
  const std::size_t nw = (n + 63) / 64;
  sel.words.assign(nw, ~std::uint64_t{0});
  if (nw == 0) return sel;
  if (const std::size_t tail = n & 63; tail != 0) {
    sel.words[nw - 1] = ~std::uint64_t{0} >> (64 - tail);
  }

  const bool interval_pass = filter.begin_interval != INT64_MIN ||
                             filter.end_interval != INT64_MAX;
  const bool conf_pass = filter.min_confidence > 0;
  const bool pub_pass = filter.publisher_country != kNoCountry;
  const bool event_pass =
      filter.event_country != kNoCountry || filter.exclude_orphans;
  if (!interval_pass && !conf_pass && !pub_pass && !event_pass) return sel;

  const bool simd = SimdEnabled();
  const auto at = db.mention_interval();
  const auto conf = db.mention_confidence();
  const auto src = db.mention_source_id();
  const auto source_country = db.source_country();
  const auto event_row = db.mention_event_row();
  const auto event_country = db.event_country();

  parallel::PoolParallelFor(
      nw,
      [&](IndexRange r, std::size_t) {
        for (std::size_t w = r.begin; w < r.end; ++w) {
          const std::size_t row0 = w * 64;
          const std::size_t rows_here = std::min<std::size_t>(64, n - row0);
          std::uint64_t bits = sel.words[w];
          // Sequential-column passes first (SIMD-friendly, cheapest).
          if (interval_pass) {
            bits &= IntervalWord(simd, at.data() + row0, rows_here,
                                 filter.begin_interval, filter.end_interval);
          }
          if (bits != 0 && conf_pass) {
            bits &= ConfidenceWord(simd, conf.data() + row0, rows_here,
                                   filter.min_confidence);
          }
          // Gather-dependent passes only visit surviving bits, so a
          // selective window never touches the indirection columns for
          // rejected rows (and whole zero words are skipped outright).
          if (bits != 0 && pub_pass) {
            std::uint64_t scan = bits;
            while (scan) {
              const auto b = static_cast<unsigned>(std::countr_zero(scan));
              scan &= scan - 1;
              if (source_country[src[row0 + b]] != filter.publisher_country) {
                bits &= ~(std::uint64_t{1} << b);
              }
            }
          }
          if (bits != 0 && event_pass) {
            std::uint64_t scan = bits;
            while (scan) {
              const auto b = static_cast<unsigned>(std::countr_zero(scan));
              scan &= scan - 1;
              const std::uint32_t row = event_row[row0 + b];
              bool keep;
              if (row == convert::kOrphanEventRow) {
                keep = !filter.exclude_orphans &&
                       filter.event_country == kNoCountry;
              } else {
                keep = filter.event_country == kNoCountry ||
                       event_country[row] == filter.event_country;
              }
              if (!keep) bits &= ~(std::uint64_t{1} << b);
            }
          }
          sel.words[w] = bits;
        }
      },
      WordsPerMorsel());
  return sel;
}

std::vector<std::uint64_t> SelectMentions(const Database& db,
                                          const MentionFilter& filter) {
  return SelectMentionsBitmap(db, filter).ToRows();
}

std::vector<std::uint64_t> SelectMentionsBaseline(const Database& db,
                                                  const MentionFilter& filter) {
  TRACE_SPAN("engine.select_mentions.baseline");
  const std::size_t n = db.num_mentions();
  // Pass 1: per-chunk match counts; pass 2: scatter rows in order.
  const auto nt = static_cast<std::size_t>(MaxThreads());
  std::vector<std::uint64_t> chunk_counts(nt, 0);
  std::vector<IndexRange> chunk_ranges(nt);
  ParallelForChunks(n, [&](IndexRange r, int tid) {
    chunk_ranges[static_cast<std::size_t>(tid)] = r;
    std::uint64_t count = 0;
    for (std::size_t i = r.begin; i < r.end; ++i) {
      if (Matches(db, filter, i)) ++count;
    }
    chunk_counts[static_cast<std::size_t>(tid)] = count;
  });
  std::vector<std::uint64_t> offsets(nt, 0);
  std::uint64_t total = 0;
  for (std::size_t t = 0; t < nt; ++t) {
    offsets[t] = total;
    total += chunk_counts[t];
  }
  std::vector<std::uint64_t> rows(total);
  ParallelForChunks(n, [&](IndexRange r, int tid) {
    // Ranges are deterministic, so this chunk matches pass 1's.
    std::uint64_t at = offsets[static_cast<std::size_t>(tid)];
    for (std::size_t i = r.begin; i < r.end; ++i) {
      if (Matches(db, filter, i)) rows[at++] = i;
    }
  });
  return rows;
}

std::vector<std::uint64_t> ArticlesPerSource(
    const Database& db, std::span<const std::uint64_t> rows) {
  TRACE_SPAN("engine.articles_per_source.filtered");
  const auto src = db.mention_source_id();
  return ParallelHistogram(rows.size(), db.num_sources(),
                           [&](std::size_t k) -> std::size_t {
                             return src[rows[k]];
                           });
}

std::vector<std::uint64_t> ArticlesPerSource(const Database& db,
                                             const SelectionBitmap& sel) {
  TRACE_SPAN("engine.articles_per_source.filtered");
  const auto src = db.mention_source_id();
  return BitmapHistogram(sel, db.num_sources(),
                         [&](std::uint64_t i) -> std::size_t {
                           return src[i];
                         });
}

namespace {

/// Shared bin layout of the cross-reporting histogram: the nc*nc count
/// matrix followed by nc publisher totals for orphan/unlocated rows.
template <typename Hist>
CountryCrossReport CrossReportFromHistogram(std::size_t nc, Hist&& histogram) {
  CountryCrossReport report;
  report.num_countries = nc;
  const std::size_t matrix_bins = nc * nc;
  auto flat = histogram(matrix_bins);
  report.counts.assign(flat.begin(),
                       flat.begin() + static_cast<std::ptrdiff_t>(matrix_bins));
  report.articles_per_publisher.assign(
      flat.begin() + static_cast<std::ptrdiff_t>(matrix_bins), flat.end());
  for (std::size_t rep = 0; rep < nc; ++rep) {
    for (std::size_t pub = 0; pub < nc; ++pub) {
      report.articles_per_publisher[pub] += report.counts[rep * nc + pub];
    }
  }
  return report;
}

}  // namespace

CountryCrossReport CountryCrossReporting(
    const Database& db, std::span<const std::uint64_t> rows) {
  TRACE_SPAN("engine.cross_report.filtered");
  const std::size_t nc = Countries().size();
  const auto event_row = db.mention_event_row();
  const auto src = db.mention_source_id();
  const auto event_country = db.event_country();
  const auto source_country = db.source_country();
  const auto bin_of = [&](std::uint64_t i, std::size_t matrix_bins,
                          std::size_t ncs) -> std::size_t {
    const std::uint16_t pub = source_country[src[i]];
    if (pub == kNoCountry) return SIZE_MAX;
    const std::uint32_t row = event_row[i];
    if (row == convert::kOrphanEventRow) return matrix_bins + pub;
    const std::uint16_t rep = event_country[row];
    if (rep == kNoCountry) return matrix_bins + pub;
    return static_cast<std::size_t>(rep) * ncs + pub;
  };
  return CrossReportFromHistogram(nc, [&](std::size_t matrix_bins) {
    return ParallelHistogram(rows.size(), matrix_bins + nc,
                             [&](std::size_t k) -> std::size_t {
                               return bin_of(rows[k], matrix_bins, nc);
                             });
  });
}

CountryCrossReport CountryCrossReporting(const Database& db,
                                         const SelectionBitmap& sel) {
  TRACE_SPAN("engine.cross_report.filtered");
  const std::size_t nc = Countries().size();
  const auto event_row = db.mention_event_row();
  const auto src = db.mention_source_id();
  const auto event_country = db.event_country();
  const auto source_country = db.source_country();
  return CrossReportFromHistogram(nc, [&](std::size_t matrix_bins) {
    return BitmapHistogram(
        sel, matrix_bins + nc, [&](std::uint64_t i) -> std::size_t {
          const std::uint16_t pub = source_country[src[i]];
          if (pub == kNoCountry) return SIZE_MAX;
          const std::uint32_t row = event_row[i];
          if (row == convert::kOrphanEventRow) return matrix_bins + pub;
          const std::uint16_t rep = event_country[row];
          if (rep == kNoCountry) return matrix_bins + pub;
          return static_cast<std::size_t>(rep) * nc + pub;
        });
  });
}

QuarterSeries ArticlesPerQuarter(const Database& db,
                                 std::span<const std::uint64_t> rows) {
  const QuarterWindow w = QuartersOf(db);
  const auto when = db.mention_interval();
  QuarterSeries series;
  series.first_quarter = w.first;
  series.values = ParallelHistogram(
      rows.size(), static_cast<std::size_t>(w.count),
      [&](std::size_t k) -> std::size_t {
        const std::int32_t q =
            QuarterOfUnixSeconds(IntervalStartUnixSeconds(when[rows[k]])) -
            w.first;
        return q < 0 ? SIZE_MAX : static_cast<std::size_t>(q);
      });
  return series;
}

QuarterSeries ArticlesPerQuarter(const Database& db,
                                 const SelectionBitmap& sel) {
  const QuarterWindow w = QuartersOf(db);
  const auto when = db.mention_interval();
  QuarterSeries series;
  series.first_quarter = w.first;
  series.values = BitmapHistogram(
      sel, static_cast<std::size_t>(w.count),
      [&](std::uint64_t i) -> std::size_t {
        const std::int32_t q =
            QuarterOfUnixSeconds(IntervalStartUnixSeconds(when[i])) - w.first;
        return q < 0 ? SIZE_MAX : static_cast<std::size_t>(q);
      });
  return series;
}

std::uint64_t DistinctEvents(const Database& db,
                             std::span<const std::uint64_t> rows) {
  const auto event_row = db.mention_event_row();
  // Flag array over events; orphans tracked separately by global id being
  // unavailable — they are excluded from the distinct count.
  std::vector<std::uint8_t> seen(db.num_events() + 1, 0);
  for (const std::uint64_t i : rows) {
    const std::uint32_t row = event_row[i];
    if (row != convert::kOrphanEventRow) seen[row] = 1;
  }
  std::uint64_t count = 0;
  for (const std::uint8_t s : seen) count += s;
  return count;
}

std::uint64_t DistinctEvents(const Database& db, const SelectionBitmap& sel) {
  const auto event_row = db.mention_event_row();
  std::vector<std::uint8_t> seen(db.num_events() + 1, 0);
  for (std::size_t w = 0; w < sel.words.size(); ++w) {
    std::uint64_t bits = sel.words[w];
    while (bits) {
      const auto b = static_cast<unsigned>(std::countr_zero(bits));
      bits &= bits - 1;
      const std::uint32_t row = event_row[w * 64 + b];
      if (row != convert::kOrphanEventRow) seen[row] = 1;
    }
  }
  std::uint64_t count = 0;
  for (const std::uint8_t s : seen) count += s;
  return count;
}

}  // namespace gdelt::engine
