// Sharded execution of the aggregated queries — the paper's planned
// distributed-memory (MPI) extension, simulated in-process.
//
// "It is expected that this will require adding distributed memory
//  capabilities using MPI to handle the substantial amount of additional
//  data." (Section VII.)
//
// The mentions table is range-partitioned into contiguous shards (capture
// order == time order, so these are time shards — exactly how per-period
// sub-databases would live on different ranks). Each shard computes its
// partial aggregate independently; partials are then reduced, mirroring
// an MPI_Allreduce. Results are bit-identical to the single-node kernels,
// which the tests assert.
#pragma once

#include <cstdint>
#include <vector>

#include "engine/database.hpp"
#include "engine/filter.hpp"
#include "engine/queries.hpp"
#include "util/cancel.hpp"

namespace gdelt::engine {

/// A contiguous range of mention rows processed as one shard.
struct Shard {
  std::uint64_t begin = 0;  ///< first mention row
  std::uint64_t end = 0;    ///< one past the last mention row
};

/// Splits the database's mentions into `num_shards` near-equal contiguous
/// row ranges (time ranges, since rows are in capture order).
std::vector<Shard> MakeTimeShards(const Database& db, std::size_t num_shards);

/// Per-shard partial of the country cross-reporting aggregate.
struct CrossReportPartial {
  std::vector<std::uint64_t> counts;              ///< nc * nc
  std::vector<std::uint64_t> articles_per_publisher;  ///< nc (untagged only)
};

/// Computes one shard's partial (what a single MPI rank would do).
/// `cancel` is polled per row chunk; a cancelled partial is garbage and
/// must be discarded by the caller (util/cancel.hpp semantics).
CrossReportPartial CrossReportingOnShard(const Database& db,
                                         const Shard& shard,
                                         const util::CancelToken* cancel =
                                             nullptr);

/// Filtered flavor for the router's restricted cross-report partials:
/// only rows selected by `sel` contribute. The binning matches the
/// filtered single-node kernel (CountryCrossReporting(db, sel)) exactly,
/// so reducing the partials of a row-range partition reproduces it.
CrossReportPartial CrossReportingOnShard(const Database& db,
                                         const Shard& shard,
                                         const SelectionBitmap& sel,
                                         const util::CancelToken* cancel =
                                             nullptr);

/// Reduces shard partials into the final report (the allreduce step).
CountryCrossReport ReduceCrossReport(
    const std::vector<CrossReportPartial>& partials);

/// End-to-end sharded aggregated query; equals CountryCrossReporting().
CountryCrossReport ShardedCountryCrossReporting(
    const Database& db, std::size_t num_shards,
    const util::CancelToken* cancel = nullptr);

/// Sharded per-source article counts (simple additive reduction).
std::vector<std::uint64_t> ShardedArticlesPerSource(
    const Database& db, std::size_t num_shards,
    const util::CancelToken* cancel = nullptr);

}  // namespace gdelt::engine
