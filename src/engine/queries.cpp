#include "engine/queries.hpp"

#include <algorithm>
#include <numeric>

#include "convert/binary_format.hpp"
#include "trace/trace.hpp"

namespace gdelt::engine {

std::vector<std::uint64_t> ArticlesPerSource(const Database& db,
                                             Schedule schedule) {
  TRACE_SPAN("engine.articles_per_source");
  const auto src = db.mention_source_id();
  const std::size_t n_sources = db.num_sources();
  // ParallelHistogram is static-scheduled internally; for the ablation we
  // also offer a per-thread-accumulator variant under other schedules.
  if (schedule == Schedule::kStatic) {
    return ParallelHistogram(src.size(), n_sources,
                             [&](std::size_t i) -> std::size_t {
                               return src[i];
                             });
  }
  // Per-thread accumulators merged in thread order: no atomics, and the
  // counts are identical whichever schedule dealt out the iterations.
  const auto nt = static_cast<std::size_t>(MaxThreads());
  std::vector<std::vector<std::uint64_t>> locals(nt);
  for (auto& local : locals) local.assign(n_sources, 0);
  ParallelFor(
      src.size(),
      [&](std::size_t i) {
        ++locals[static_cast<std::size_t>(omp_get_thread_num())][src[i]];
      },
      schedule);
  std::vector<std::uint64_t> counts(n_sources, 0);
  MergeTiledPartials(std::span<std::uint64_t>(counts), locals);
  return counts;
}

std::vector<std::uint32_t> TopSourcesByArticles(const Database& db,
                                                std::size_t k) {
  const auto counts = ArticlesPerSource(db);
  std::vector<std::uint32_t> ids(counts.size());
  std::iota(ids.begin(), ids.end(), 0u);
  const std::size_t take = std::min(k, ids.size());
  std::partial_sort(ids.begin(), ids.begin() + static_cast<std::ptrdiff_t>(take),
                    ids.end(), [&](std::uint32_t a, std::uint32_t b) {
                      if (counts[a] != counts[b]) return counts[a] > counts[b];
                      return a < b;
                    });
  ids.resize(take);
  return ids;
}

std::vector<TopEvent> TopReportedEvents(const Database& db, std::size_t k) {
  const auto counts = db.event_article_count();
  std::vector<std::uint32_t> rows(counts.size());
  std::iota(rows.begin(), rows.end(), 0u);
  const std::size_t take = std::min(k, rows.size());
  std::partial_sort(rows.begin(),
                    rows.begin() + static_cast<std::ptrdiff_t>(take),
                    rows.end(), [&](std::uint32_t a, std::uint32_t b) {
                      if (counts[a] != counts[b]) return counts[a] > counts[b];
                      return a < b;
                    });
  std::vector<TopEvent> out(take);
  for (std::size_t i = 0; i < take; ++i) {
    out[i] = {rows[i], counts[rows[i]]};
  }
  return out;
}

QuarterWindow QuartersOf(const Database& db) {
  QuarterWindow w;
  w.first = QuarterOfUnixSeconds(IntervalStartUnixSeconds(db.first_interval()));
  const QuarterId last =
      QuarterOfUnixSeconds(IntervalStartUnixSeconds(db.last_interval()));
  w.count = db.num_mentions() == 0 ? 0 : last - w.first + 1;
  return w;
}

std::vector<std::int32_t> MentionQuarters(const Database& db) {
  const auto intervals = db.mention_interval();
  const QuarterWindow w = QuartersOf(db);
  std::vector<std::int32_t> quarters(intervals.size());
  ParallelFor(intervals.size(), [&](std::size_t i) {
    quarters[i] =
        QuarterOfUnixSeconds(IntervalStartUnixSeconds(intervals[i])) - w.first;
  });
  return quarters;
}

QuarterSeries ArticlesPerQuarter(const Database& db) {
  TRACE_SPAN("engine.articles_per_quarter");
  const QuarterWindow w = QuartersOf(db);
  const auto quarters = MentionQuarters(db);
  QuarterSeries series;
  series.first_quarter = w.first;
  series.values = ParallelHistogram(
      quarters.size(), static_cast<std::size_t>(w.count),
      [&](std::size_t i) -> std::size_t {
        return static_cast<std::size_t>(quarters[i]);
      });
  return series;
}

QuarterSeries EventsPerQuarter(const Database& db) {
  TRACE_SPAN("engine.events_per_quarter");
  const QuarterWindow w = QuartersOf(db);
  const auto added = db.event_added_interval();
  QuarterSeries series;
  series.first_quarter = w.first;
  series.values = ParallelHistogram(
      added.size(), static_cast<std::size_t>(w.count),
      [&](std::size_t i) -> std::size_t {
        const std::int32_t q =
            QuarterOfUnixSeconds(IntervalStartUnixSeconds(added[i])) - w.first;
        return q < 0 ? SIZE_MAX : static_cast<std::size_t>(q);
      });
  return series;
}

QuarterSeries ActiveSourcesPerQuarter(const Database& db) {
  TRACE_SPAN("engine.active_sources_per_quarter");
  const QuarterWindow w = QuartersOf(db);
  const auto quarters = MentionQuarters(db);
  const auto src = db.mention_source_id();
  const std::size_t nq = static_cast<std::size_t>(w.count);
  const std::size_t ns = db.num_sources();

  // (source, quarter) presence bitmap, built with per-thread OR then merged.
  const auto nt = static_cast<std::size_t>(MaxThreads());
  std::vector<std::vector<std::uint8_t>> locals(nt);
  ParallelForChunks(quarters.size(), [&](IndexRange r, int tid) {
    auto& local = locals[static_cast<std::size_t>(tid)];
    local.assign(nq * ns, 0);
    for (std::size_t i = r.begin; i < r.end; ++i) {
      local[static_cast<std::size_t>(quarters[i]) * ns + src[i]] = 1;
    }
  });
  QuarterSeries series;
  series.first_quarter = w.first;
  series.values.assign(nq, 0);
  for (std::size_t q = 0; q < nq; ++q) {
    std::uint64_t active = 0;
    for (std::size_t s = 0; s < ns; ++s) {
      for (const auto& local : locals) {
        if (!local.empty() && local[q * ns + s]) {
          ++active;
          break;
        }
      }
    }
    series.values[q] = active;
  }
  return series;
}

std::vector<QuarterSeries> SourceArticlesPerQuarter(
    const Database& db, std::span<const std::uint32_t> source_ids) {
  const QuarterWindow w = QuartersOf(db);
  const auto nq = static_cast<std::size_t>(w.count);
  const auto quarters = MentionQuarters(db);
  const auto src = db.mention_source_id();

  // Map requested ids to output slots.
  std::vector<std::int32_t> slot_of(db.num_sources(), -1);
  for (std::size_t s = 0; s < source_ids.size(); ++s) {
    slot_of[source_ids[s]] = static_cast<std::int32_t>(s);
  }
  const std::size_t bins = source_ids.size() * nq;
  auto flat = ParallelHistogram(
      quarters.size(), bins, [&](std::size_t i) -> std::size_t {
        const std::int32_t slot = slot_of[src[i]];
        if (slot < 0) return SIZE_MAX;
        return static_cast<std::size_t>(slot) * nq +
               static_cast<std::size_t>(quarters[i]);
      });

  std::vector<QuarterSeries> out(source_ids.size());
  for (std::size_t s = 0; s < source_ids.size(); ++s) {
    out[s].first_quarter = w.first;
    out[s].values.assign(flat.begin() + static_cast<std::ptrdiff_t>(s * nq),
                         flat.begin() + static_cast<std::ptrdiff_t>((s + 1) * nq));
  }
  return out;
}

CountryCrossReport CountryCrossReporting(const Database& db,
                                         Schedule schedule) {
  TRACE_SPAN("engine.cross_report");
  const std::size_t nc = Countries().size();
  const auto event_row = db.mention_event_row();
  const auto src = db.mention_source_id();
  const auto event_country = db.event_country();
  const auto source_country = db.source_country();

  CountryCrossReport report;
  report.num_countries = nc;

  // counts: publishing column is defined for every mention with a known
  // source country; the reported row additionally needs a geotagged event.
  const std::size_t matrix_bins = nc * nc;
  const std::size_t total_bins = matrix_bins + nc;  // + publisher totals
  std::vector<std::uint64_t> flat;
  auto binner = [&](std::size_t i) -> std::size_t {
    const std::uint16_t pub = source_country[src[i]];
    if (pub == kNoCountry) return SIZE_MAX;
    const std::uint32_t row = event_row[i];
    if (row == convert::kOrphanEventRow) return matrix_bins + pub;
    const std::uint16_t rep = event_country[row];
    if (rep == kNoCountry) return matrix_bins + pub;
    // A located article contributes to both the matrix cell and the
    // publisher total; encode matrix cell here, add totals in a second
    // cheap pass below.
    return static_cast<std::size_t>(rep) * nc + pub;
  };
  (void)schedule;  // one-pass histogram is static; ablation uses kernels
  flat = ParallelHistogram(event_row.size(), total_bins, binner);

  report.counts.assign(flat.begin(),
                       flat.begin() + static_cast<std::ptrdiff_t>(matrix_bins));
  report.articles_per_publisher.assign(
      flat.begin() + static_cast<std::ptrdiff_t>(matrix_bins), flat.end());
  // Publisher totals = untagged bucket + all located cells of the column.
  for (std::size_t rep = 0; rep < nc; ++rep) {
    for (std::size_t pub = 0; pub < nc; ++pub) {
      report.articles_per_publisher[pub] += report.counts[rep * nc + pub];
    }
  }
  return report;
}

std::vector<CountryId> CountriesByReportedEvents(const Database& db,
                                                 std::size_t k) {
  const auto country = db.event_country();
  auto counts = ParallelHistogram(country.size(), Countries().size(),
                                  [&](std::size_t i) -> std::size_t {
                                    return country[i] == kNoCountry
                                               ? SIZE_MAX
                                               : country[i];
                                  });
  std::vector<CountryId> ids(counts.size());
  std::iota(ids.begin(), ids.end(), static_cast<CountryId>(0));
  const std::size_t take = std::min(k, ids.size());
  std::partial_sort(ids.begin(), ids.begin() + static_cast<std::ptrdiff_t>(take),
                    ids.end(), [&](CountryId a, CountryId b) {
                      if (counts[a] != counts[b]) return counts[a] > counts[b];
                      return a < b;
                    });
  ids.resize(take);
  return ids;
}

std::vector<CountryId> CountriesByPublishedArticles(const Database& db,
                                                    std::size_t k) {
  const auto src = db.mention_source_id();
  const auto source_country = db.source_country();
  auto counts = ParallelHistogram(src.size(), Countries().size(),
                                  [&](std::size_t i) -> std::size_t {
                                    const std::uint16_t c =
                                        source_country[src[i]];
                                    return c == kNoCountry ? SIZE_MAX : c;
                                  });
  std::vector<CountryId> ids(counts.size());
  std::iota(ids.begin(), ids.end(), static_cast<CountryId>(0));
  const std::size_t take = std::min(k, ids.size());
  std::partial_sort(ids.begin(), ids.begin() + static_cast<std::ptrdiff_t>(take),
                    ids.end(), [&](CountryId a, CountryId b) {
                      if (counts[a] != counts[b]) return counts[a] > counts[b];
                      return a < b;
                    });
  ids.resize(take);
  return ids;
}

}  // namespace gdelt::engine
