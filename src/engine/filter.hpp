// User-defined query restriction: predicate filters over the mentions
// table, materialized as row sets that the aggregate kernels accept.
//
// The paper's engine processes "user-defined queries ... optimized for
// in-memory handling" (Section IV). The headline tables are full-table
// aggregates, but real use restricts by time window (one quarter, one
// week of a crisis), by GDELT's extraction confidence, or by
// publisher/event country. A MentionFilter captures those predicates; the
// filtered kernel overloads then aggregate only the selected rows.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "engine/database.hpp"
#include "engine/queries.hpp"

namespace gdelt::engine {

/// Conjunctive predicates over mention rows. Default-constructed = all.
struct MentionFilter {
  /// Capture-interval window [begin, end).
  std::int64_t begin_interval = INT64_MIN;
  std::int64_t end_interval = INT64_MAX;
  /// Minimum GDELT extraction confidence (0 = any).
  std::uint8_t min_confidence = 0;
  /// Restrict to articles from this country's press (kNoCountry = any).
  CountryId publisher_country = kNoCountry;
  /// Restrict to events located in this country (kNoCountry = any).
  CountryId event_country = kNoCountry;
  /// Drop mentions whose event row is unknown (lost archives).
  bool exclude_orphans = false;

  /// True if every mention passes (the no-op filter).
  bool IsAll() const noexcept {
    return begin_interval == INT64_MIN && end_interval == INT64_MAX &&
           min_confidence == 0 && publisher_country == kNoCountry &&
           event_country == kNoCountry && !exclude_orphans;
  }
};

/// Mention rows matching the filter, ascending. Parallel two-pass build.
std::vector<std::uint64_t> SelectMentions(const Database& db,
                                          const MentionFilter& filter);

/// Article count per source over a row subset.
std::vector<std::uint64_t> ArticlesPerSource(
    const Database& db, std::span<const std::uint64_t> rows);

/// Country cross-reporting over a row subset (same semantics as the
/// full-table kernel).
CountryCrossReport CountryCrossReporting(
    const Database& db, std::span<const std::uint64_t> rows);

/// Articles per quarter over a row subset.
QuarterSeries ArticlesPerQuarter(const Database& db,
                                 std::span<const std::uint64_t> rows);

/// Distinct events touched by a row subset.
std::uint64_t DistinctEvents(const Database& db,
                             std::span<const std::uint64_t> rows);

}  // namespace gdelt::engine
