// User-defined query restriction: predicate filters over the mentions
// table, materialized as row sets that the aggregate kernels accept.
//
// The paper's engine processes "user-defined queries ... optimized for
// in-memory handling" (Section IV). The headline tables are full-table
// aggregates, but real use restricts by time window (one quarter, one
// week of a crisis), by GDELT's extraction confidence, or by
// publisher/event country. A MentionFilter captures those predicates; the
// filtered kernel overloads then aggregate only the selected rows.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "engine/database.hpp"
#include "engine/queries.hpp"

namespace gdelt::engine {

/// Conjunctive predicates over mention rows. Default-constructed = all.
struct MentionFilter {
  /// Capture-interval window [begin, end).
  std::int64_t begin_interval = INT64_MIN;
  std::int64_t end_interval = INT64_MAX;
  /// Minimum GDELT extraction confidence (0 = any).
  std::uint8_t min_confidence = 0;
  /// Restrict to articles from this country's press (kNoCountry = any).
  CountryId publisher_country = kNoCountry;
  /// Restrict to events located in this country (kNoCountry = any).
  CountryId event_country = kNoCountry;
  /// Drop mentions whose event row is unknown (lost archives).
  bool exclude_orphans = false;

  /// True if every mention passes (the no-op filter).
  bool IsAll() const noexcept {
    return begin_interval == INT64_MIN && end_interval == INT64_MAX &&
           min_confidence == 0 && publisher_country == kNoCountry &&
           event_country == kNoCountry && !exclude_orphans;
  }
};

/// Dense selection over the mentions table: bit i set = row i selected.
/// Produced column-at-a-time by the vectorized filter passes and
/// consumed directly by the bitmap aggregate overloads below, so a
/// filter→aggregate chain never re-touches non-matching rows.
struct SelectionBitmap {
  std::size_t num_rows = 0;
  /// ceil(num_rows / 64) little-endian words; tail bits are clear.
  std::vector<std::uint64_t> words;

  bool Test(std::uint64_t i) const noexcept {
    return (words[i >> 6] >> (i & 63)) & 1u;
  }
  /// Number of selected rows (popcount over the words).
  std::uint64_t CountSet() const noexcept;
  /// Materializes the selected row ids, ascending.
  std::vector<std::uint64_t> ToRows() const;
};

/// Column-at-a-time vectorized selection: AVX2 compare kernels for the
/// interval-window and min-confidence columns, zero-word-skipping scalar
/// passes for the gather-dependent country/orphan predicates. Runs on
/// the shared morsel pool; byte-identical to SelectMentionsBaseline.
SelectionBitmap SelectMentionsBitmap(const Database& db,
                                     const MentionFilter& filter);

/// Mention rows matching the filter, ascending
/// (= SelectMentionsBitmap(...).ToRows()).
std::vector<std::uint64_t> SelectMentions(const Database& db,
                                          const MentionFilter& filter);

/// Row-at-a-time scalar baseline (OpenMP two-pass build). Kept for the
/// scalar-vs-SIMD ablation bench and the golden equivalence tests.
std::vector<std::uint64_t> SelectMentionsBaseline(const Database& db,
                                                  const MentionFilter& filter);

/// Runtime SIMD toggle. Defaults to CPU detection, and
/// GDELT_DISABLE_SIMD=1 pins it off for the whole process; benches and
/// tests flip it per measurement to compare code paths in one run.
/// Enabling is a no-op on hosts without AVX2.
void SetSimdEnabled(bool enabled) noexcept;
bool SimdEnabled() noexcept;

/// Article count per source over a row subset.
std::vector<std::uint64_t> ArticlesPerSource(
    const Database& db, std::span<const std::uint64_t> rows);

/// Country cross-reporting over a row subset (same semantics as the
/// full-table kernel).
CountryCrossReport CountryCrossReporting(
    const Database& db, std::span<const std::uint64_t> rows);

/// Articles per quarter over a row subset.
QuarterSeries ArticlesPerQuarter(const Database& db,
                                 std::span<const std::uint64_t> rows);

/// Distinct events touched by a row subset.
std::uint64_t DistinctEvents(const Database& db,
                             std::span<const std::uint64_t> rows);

// Bitmap-consuming aggregate overloads: identical results to the
// row-vector versions over ToRows(), without materializing the rows.
std::vector<std::uint64_t> ArticlesPerSource(const Database& db,
                                             const SelectionBitmap& sel);
CountryCrossReport CountryCrossReporting(const Database& db,
                                         const SelectionBitmap& sel);
QuarterSeries ArticlesPerQuarter(const Database& db,
                                 const SelectionBitmap& sel);
std::uint64_t DistinctEvents(const Database& db, const SelectionBitmap& sel);

}  // namespace gdelt::engine
