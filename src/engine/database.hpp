// The in-memory GDELT database.
//
// Loads the converter's binary tables, materializes the inverted indexes
// (event -> mentions, source -> mentions) and derived columns (source ->
// country via TLD), and hands out typed spans for the query kernels. After
// Load() everything is read-only — the paper's core architectural bet —
// so queries run lock-free across all threads.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "columnar/csr.hpp"
#include "columnar/dictionary.hpp"
#include "columnar/table.hpp"
#include "schema/countries.hpp"
#include "util/status.hpp"

namespace gdelt::engine {

struct LoadOptions {
  /// Build the event/source inverted indexes (needed by co-reporting,
  /// follow-reporting and per-source delay queries).
  bool build_indexes = true;
  /// Run a parallel first-touch pass over the large buffers so pages are
  /// distributed across NUMA nodes before the first scan.
  bool numa_first_touch = true;
};

/// Read-only, fully materialized database.
class Database {
 public:
  /// Loads a directory written by convert::ConvertDataset.
  static Result<Database> Load(const std::string& dir,
                               const LoadOptions& options = {});

  // --- sizes ---
  std::size_t num_events() const noexcept { return num_events_; }
  std::size_t num_mentions() const noexcept { return num_mentions_; }
  std::uint32_t num_sources() const noexcept { return sources_.size(); }

  // --- mentions columns ---
  std::span<const std::uint32_t> mention_event_row() const noexcept {
    return mention_event_row_;
  }
  std::span<const std::int64_t> mention_event_interval() const noexcept {
    return mention_event_interval_;
  }
  std::span<const std::int64_t> mention_interval() const noexcept {
    return mention_interval_;
  }
  std::span<const std::uint32_t> mention_source_id() const noexcept {
    return mention_source_id_;
  }
  std::span<const std::uint8_t> mention_confidence() const noexcept {
    return mention_confidence_;
  }

  // --- events columns ---
  std::span<const std::uint64_t> event_global_id() const noexcept {
    return event_global_id_;
  }
  std::span<const std::int64_t> event_added_interval() const noexcept {
    return event_added_interval_;
  }
  std::span<const std::uint16_t> event_country() const noexcept {
    return event_country_;
  }
  /// Average document tone of each event.
  std::span<const double> events_tone() const noexcept { return event_tone_; }
  /// Goldstein conflict-cooperation score of each event.
  std::span<const double> event_goldstein() const noexcept {
    return event_goldstein_;
  }
  /// CAMEO quad class (1..4) of each event.
  std::span<const std::uint8_t> event_quad_class() const noexcept {
    return event_quad_class_;
  }
  /// First-article URL of event row r.
  std::string_view event_source_url(std::size_t r) const noexcept {
    return events_.GetColumn("source_url").StringAt(r);
  }

  // --- derived ---
  /// Country of each dictionary source (TLD heuristic); kNoCountry if the
  /// TLD is unknown.
  std::span<const std::uint16_t> source_country() const noexcept {
    return source_country_;
  }
  /// True article count per event row (orphans excluded).
  std::span<const std::uint32_t> event_article_count() const noexcept {
    return event_article_count_;
  }

  // --- indexes (valid when LoadOptions::build_indexes) ---
  /// Mentions of each event row, ascending capture time.
  const CsrIndex& mentions_by_event() const noexcept {
    return mentions_by_event_;
  }
  /// Mentions of each source id, ascending capture time.
  const CsrIndex& mentions_by_source() const noexcept {
    return mentions_by_source_;
  }

  /// Memoized event -> distinct-source index: for every event row, the
  /// sorted, deduplicated source ids that reported on it. Built lazily in
  /// parallel on first use (thread-safe) and cached for the lifetime of
  /// the database; the whole co-reporting query family shares it instead
  /// of re-walking mentions_by_event() and re-sorting per event on every
  /// invocation. Requires LoadOptions::build_indexes.
  const CsrSetIndex& event_distinct_sources() const;

  const StringDictionary& sources() const noexcept { return sources_; }

  /// Domain name of a source id.
  std::string_view source_domain(std::uint32_t id) const noexcept {
    return sources_.At(id);
  }

  /// Timeline bounds over mention capture intervals ([first, last]).
  std::int64_t first_interval() const noexcept { return first_interval_; }
  std::int64_t last_interval() const noexcept { return last_interval_; }

  /// Total heap footprint (tables + indexes), for the load report.
  std::size_t MemoryBytes() const noexcept;

 private:
  Table events_;
  Table mentions_;
  StringDictionary sources_;

  std::size_t num_events_ = 0;
  std::size_t num_mentions_ = 0;

  // cached spans into the tables
  std::span<const std::uint32_t> mention_event_row_;
  std::span<const std::int64_t> mention_event_interval_;
  std::span<const std::int64_t> mention_interval_;
  std::span<const std::uint32_t> mention_source_id_;
  std::span<const std::uint8_t> mention_confidence_;
  std::span<const std::uint64_t> event_global_id_;
  std::span<const std::int64_t> event_added_interval_;
  std::span<const std::uint16_t> event_country_;
  std::span<const double> event_tone_;
  std::span<const double> event_goldstein_;
  std::span<const std::uint8_t> event_quad_class_;

  std::vector<std::uint16_t> source_country_;
  std::vector<std::uint32_t> event_article_count_;
  CsrIndex mentions_by_event_;
  CsrIndex mentions_by_source_;
  std::int64_t first_interval_ = 0;
  std::int64_t last_interval_ = 0;

  // Lazily built query-side indexes. Held behind a pointer so Database
  // stays movable (std::once_flag is not).
  struct LazyIndexes {
    std::once_flag distinct_sources_once;
    CsrSetIndex distinct_sources;
  };
  std::unique_ptr<LazyIndexes> lazy_ = std::make_unique<LazyIndexes>();
};

}  // namespace gdelt::engine
