#include "engine/sharded.hpp"

#include "convert/binary_format.hpp"
#include "parallel/morsel.hpp"
#include "parallel/parallel.hpp"
#include "trace/trace.hpp"

namespace gdelt::engine {

std::vector<Shard> MakeTimeShards(const Database& db,
                                  std::size_t num_shards) {
  const auto ranges = SplitRange(db.num_mentions(), num_shards);
  std::vector<Shard> shards;
  shards.reserve(ranges.size());
  for (const auto& r : ranges) {
    shards.push_back({r.begin, r.end});
  }
  return shards;
}

CrossReportPartial CrossReportingOnShard(const Database& db,
                                         const Shard& shard,
                                         const util::CancelToken* cancel) {
  const std::size_t nc = Countries().size();
  const auto event_row = db.mention_event_row();
  const auto src = db.mention_source_id();
  const auto event_country = db.event_country();
  const auto source_country = db.source_country();

  CrossReportPartial partial;
  partial.counts.assign(nc * nc, 0);
  partial.articles_per_publisher.assign(nc, 0);
  for (std::uint64_t i = shard.begin; i < shard.end; ++i) {
    if ((i & 4095) == 0 && util::Cancelled(cancel)) break;
    const std::uint16_t pub = source_country[src[i]];
    if (pub == kNoCountry) continue;
    const std::uint32_t row = event_row[i];
    const std::uint16_t rep = row == convert::kOrphanEventRow
                                  ? kNoCountry
                                  : event_country[row];
    if (rep == kNoCountry) {
      ++partial.articles_per_publisher[pub];
    } else {
      ++partial.counts[static_cast<std::size_t>(rep) * nc + pub];
    }
  }
  return partial;
}

CrossReportPartial CrossReportingOnShard(const Database& db,
                                         const Shard& shard,
                                         const SelectionBitmap& sel,
                                         const util::CancelToken* cancel) {
  const std::size_t nc = Countries().size();
  const auto event_row = db.mention_event_row();
  const auto src = db.mention_source_id();
  const auto event_country = db.event_country();
  const auto source_country = db.source_country();

  CrossReportPartial partial;
  partial.counts.assign(nc * nc, 0);
  partial.articles_per_publisher.assign(nc, 0);
  for (std::uint64_t i = shard.begin; i < shard.end; ++i) {
    if ((i & 4095) == 0 && util::Cancelled(cancel)) break;
    if (!sel.Test(i)) continue;
    const std::uint16_t pub = source_country[src[i]];
    if (pub == kNoCountry) continue;
    const std::uint32_t row = event_row[i];
    const std::uint16_t rep = row == convert::kOrphanEventRow
                                  ? kNoCountry
                                  : event_country[row];
    if (rep == kNoCountry) {
      ++partial.articles_per_publisher[pub];
    } else {
      ++partial.counts[static_cast<std::size_t>(rep) * nc + pub];
    }
  }
  return partial;
}

CountryCrossReport ReduceCrossReport(
    const std::vector<CrossReportPartial>& partials) {
  TRACE_SPAN("engine.sharded.reduce");
  const std::size_t nc = Countries().size();
  CountryCrossReport report;
  report.num_countries = nc;
  report.counts.assign(nc * nc, 0);
  report.articles_per_publisher.assign(nc, 0);
  for (const auto& partial : partials) {
    for (std::size_t k = 0; k < nc * nc; ++k) {
      report.counts[k] += partial.counts[k];
    }
    for (std::size_t c = 0; c < nc; ++c) {
      report.articles_per_publisher[c] += partial.articles_per_publisher[c];
    }
  }
  // Publisher totals include located articles (column sums), as in the
  // single-node kernel.
  for (std::size_t rep = 0; rep < nc; ++rep) {
    for (std::size_t pub = 0; pub < nc; ++pub) {
      report.articles_per_publisher[pub] += report.counts[rep * nc + pub];
    }
  }
  return report;
}

CountryCrossReport ShardedCountryCrossReporting(
    const Database& db, std::size_t num_shards,
    const util::CancelToken* cancel) {
  TRACE_SPAN("engine.sharded.cross_report");
  const auto shards = MakeTimeShards(db, num_shards);
  std::vector<CrossReportPartial> partials(shards.size());
  // One-shard morsels on the shared pool — the local stand-in for one rank
  // each; stealing balances shards with uneven mention density.
  parallel::PoolParallelFor(
      shards.size(),
      [&](IndexRange r, std::size_t) {
        for (std::size_t s = r.begin; s < r.end; ++s) {
          partials[s] = CrossReportingOnShard(db, shards[s], cancel);
        }
      },
      /*morsel_rows=*/1, cancel);
  return ReduceCrossReport(partials);
}

std::vector<std::uint64_t> ShardedArticlesPerSource(
    const Database& db, std::size_t num_shards,
    const util::CancelToken* cancel) {
  const auto shards = MakeTimeShards(db, num_shards);
  const auto src = db.mention_source_id();
  std::vector<std::vector<std::uint64_t>> partials(
      shards.size(), std::vector<std::uint64_t>(db.num_sources(), 0));
  parallel::PoolParallelFor(
      shards.size(),
      [&](IndexRange r, std::size_t) {
        for (std::size_t s = r.begin; s < r.end; ++s) {
          auto& local = partials[s];
          const Shard& shard = shards[s];
          for (std::uint64_t i = shard.begin; i < shard.end; ++i) {
            if ((i & 4095) == 0 && util::Cancelled(cancel)) break;
            ++local[src[i]];
          }
        }
      },
      /*morsel_rows=*/1, cancel);
  std::vector<std::uint64_t> merged(db.num_sources(), 0);
  for (const auto& local : partials) {
    for (std::size_t k = 0; k < merged.size(); ++k) merged[k] += local[k];
  }
  return merged;
}

}  // namespace gdelt::engine
