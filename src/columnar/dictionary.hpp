// Dictionary encoding for low-cardinality string columns.
//
// GDELT's 1.09 B mention rows name only ~21 k distinct source domains, so
// the converter replaces each MentionSourceName with a dense u32 id. Scans
// then compare integers, and per-source aggregations (articles per source,
// delay statistics, co-reporting) become direct array indexing.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "util/status.hpp"

namespace gdelt {

/// Append-only string <-> dense-id bijection.
class StringDictionary {
 public:
  /// Returns the id of `s`, inserting it if new. Ids are dense from 0 in
  /// first-seen order (stable across runs for identical input order).
  std::uint32_t GetOrAdd(std::string_view s);

  /// Id of `s` if present.
  std::optional<std::uint32_t> Find(std::string_view s) const noexcept;

  /// The string for a valid id.
  std::string_view At(std::uint32_t id) const noexcept {
    return strings_[id];
  }

  std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(strings_.size());
  }

  /// Serializes to the table file format (single "value" string column,
  /// row i = string with id i).
  Status WriteToFile(const std::string& path) const;

  /// Crash-safe WriteToFile (temp file + fsync + atomic rename).
  Status WriteToFileAtomic(const std::string& path) const;

  static Result<StringDictionary> ReadFromFile(const std::string& path);

 private:
  // deque: element addresses are stable under growth, so the string_view
  // keys in index_ (which alias the stored strings, SSO included) stay valid.
  std::deque<std::string> strings_;
  std::unordered_map<std::string_view, std::uint32_t> index_;
};

}  // namespace gdelt
