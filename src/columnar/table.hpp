// A named collection of equal-length columns with a checksummed binary
// file format ("convert once, scan forever").
//
// File layout (little-endian):
//   magic "GDLTTBL1"
//   u32 format version
//   u32 column count, u64 row count
//   per column: name (u32 len + bytes), u8 type,
//               u64 payload bytes, u64 chars bytes (0 unless kStr)
//   per column payload:
//     fixed width: the raw element array
//     kStr: (rows+1) u64 offsets, then the chars blob
//   integrity footer:
//     u64 body length (bytes above the footer)
//     u32 CRC-32 of the body
//     magic "GDLTEND1"
//
// Readers verify magics, version, the footer's body length, per-column
// sizes and the CRC, so truncation and bit corruption surface as DataLoss
// instead of bad results.
#pragma once

#include <map>
#include <string>

#include "columnar/column.hpp"
#include "util/status.hpp"

namespace gdelt {

/// An immutable-after-build table of equal-length columns.
class Table {
 public:
  /// Adds a column; all columns must end up the same length.
  /// Returns the new column for appending.
  Column& AddColumn(const std::string& name, ColumnType type);

  /// Column by name; nullptr if absent.
  const Column* FindColumn(std::string_view name) const noexcept;
  Column* FindColumn(std::string_view name) noexcept;

  /// Column by name; aborts if absent (engine-internal access to columns
  /// whose presence was validated at load).
  const Column& GetColumn(std::string_view name) const;

  bool HasColumn(std::string_view name) const noexcept {
    return FindColumn(name) != nullptr;
  }

  std::size_t num_columns() const noexcept { return columns_.size(); }

  /// Rows, taken from the first column (0 for an empty table).
  std::size_t num_rows() const noexcept;

  /// Checks all columns have equal length.
  Status Validate() const;

  /// Total heap bytes across columns.
  std::size_t MemoryBytes() const noexcept;

  /// Serializes to a file (see format above).
  Status WriteToFile(const std::string& path) const;

  /// Crash-safe WriteToFile: writes `path + ".tmp"`, fsyncs, renames, so
  /// `path` is never left torn even across kill -9 mid-write.
  Status WriteToFileAtomic(const std::string& path) const;

  /// Loads a table, verifying framing, footer length and checksum.
  static Result<Table> ReadFromFile(const std::string& path);

  const std::map<std::string, Column>& columns() const noexcept {
    return columns_;
  }

 private:
  std::map<std::string, Column> columns_;
};

}  // namespace gdelt
