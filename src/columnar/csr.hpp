// CSR-style inverted indexes over columns.
//
// The converter materializes two of these alongside the mentions table:
//   event  -> rows of its mentions (who reported on this event)
//   source -> rows of its mentions (everything a site published)
// They are what make co-reporting and follow-reporting (Section VI-B)
// feasible: both walk "all articles of an event" lists instead of
// re-scanning the full table per pair.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "parallel/parallel.hpp"

namespace gdelt {

/// Rows grouped by a dense u32 key: offsets[k]..offsets[k+1] index into
/// `rows`, which lists the row ids with key k in ascending row order.
struct CsrIndex {
  std::vector<std::uint64_t> offsets;  ///< size num_keys + 1
  std::vector<std::uint64_t> rows;     ///< size = number of input rows

  std::size_t num_keys() const noexcept {
    return offsets.empty() ? 0 : offsets.size() - 1;
  }

  /// Row ids having key k.
  std::span<const std::uint64_t> RowsOf(std::uint32_t k) const noexcept {
    // gdelt-astcheck: allow(view-escape) — a CsrIndex is built once by
    // BuildCsrIndex and never mutated afterwards; rows cannot
    // reallocate under a span a query kernel holds.
    return {rows.data() + offsets[k],
            static_cast<std::size_t>(offsets[k + 1] - offsets[k])};
  }

  /// Group size for key k.
  std::uint64_t CountOf(std::uint32_t k) const noexcept {
    return offsets[k + 1] - offsets[k];
  }
};

/// CSR-shaped mapping from a dense u32 key to a *sorted, deduplicated*
/// list of u32 values: values[offsets[k]..offsets[k+1]) are the distinct
/// values of key k in ascending order. This is the shape of the memoized
/// event -> distinct-source index: the per-event sort/dedup that every
/// co-reporting-family query used to redo per invocation is paid once and
/// shared (see engine::Database::event_distinct_sources()).
struct CsrSetIndex {
  std::vector<std::uint64_t> offsets;  ///< size num_keys + 1
  std::vector<std::uint32_t> values;   ///< sorted unique within each key

  std::size_t num_keys() const noexcept {
    return offsets.empty() ? 0 : offsets.size() - 1;
  }

  /// Distinct values of key k, ascending.
  std::span<const std::uint32_t> ValuesOf(std::uint32_t k) const noexcept {
    // gdelt-astcheck: allow(view-escape) — built once (memoized in
    // engine::Database), immutable afterwards; values cannot reallocate
    // under a span a query kernel holds.
    return {values.data() + offsets[k],
            static_cast<std::size_t>(offsets[k + 1] - offsets[k])};
  }

  /// Number of distinct values of key k.
  std::uint64_t CountOf(std::uint32_t k) const noexcept {
    return offsets[k + 1] - offsets[k];
  }

  std::size_t MemoryBytes() const noexcept {
    return offsets.capacity() * sizeof(std::uint64_t) +
           values.capacity() * sizeof(std::uint32_t);
  }
};

/// Builds a CsrIndex from a key column. `keys[i]` < num_keys for all i
/// (callers guarantee this; checked in debug builds). Two-pass counting
/// sort; the counting pass is parallel, the scatter pass is sequential to
/// keep row order within each key ascending (stability matters for
/// follow-reporting, which relies on time-sorted mention rows).
inline CsrIndex BuildCsrIndex(std::span<const std::uint32_t> keys,
                              std::size_t num_keys) {
  CsrIndex csr;
  std::vector<std::uint64_t> counts =
      ParallelHistogram(keys.size(), num_keys,
                        [&](std::size_t i) -> std::size_t { return keys[i]; });
  // gdelt-lint: allow(unchecked-copy) — num_keys comes from the caller's
  // in-memory dictionary, never from a file; ReadFromFile bounds it before
  // any index is built.
  // gdelt-astcheck: allow(bounded-alloc) — same contract as above.
  csr.offsets.resize(num_keys + 1);
  std::uint64_t acc = 0;
  for (std::size_t k = 0; k < num_keys; ++k) {
    csr.offsets[k] = acc;
    acc += counts[k];
  }
  csr.offsets[num_keys] = acc;

  // gdelt-lint: allow(unchecked-copy) — acc is the sum of in-memory
  // histogram counts, == keys.size() by construction.
  // gdelt-astcheck: allow(bounded-alloc) — acc == keys.size() by
  // construction (sum of the histogram over the in-memory key column).
  csr.rows.resize(acc);
  std::vector<std::uint64_t> cursor(csr.offsets.begin(),
                                    csr.offsets.end() - 1);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    csr.rows[cursor[keys[i]]++] = i;
  }
  return csr;
}

}  // namespace gdelt
