#include "columnar/table.hpp"

#include <cstring>
#include <limits>

#include "io/crc32.hpp"
#include "io/file.hpp"
#include "io/mmap.hpp"
#include "util/strings.hpp"

namespace gdelt {
namespace {

constexpr char kMagicHead[8] = {'G', 'D', 'L', 'T', 'T', 'B', 'L', '1'};
constexpr char kMagicTail[8] = {'G', 'D', 'L', 'T', 'E', 'N', 'D', '1'};
constexpr std::uint32_t kFormatVersion = 2;  // v2 added the body-length footer

}  // namespace

Column& Table::AddColumn(const std::string& name, ColumnType type) {
  auto [it, inserted] = columns_.emplace(name, Column(type));
  if (!inserted) std::abort();  // duplicate column name is a programming bug
  return it->second;
}

const Column* Table::FindColumn(std::string_view name) const noexcept {
  const auto it = columns_.find(std::string(name));
  return it == columns_.end() ? nullptr : &it->second;
}

Column* Table::FindColumn(std::string_view name) noexcept {
  const auto it = columns_.find(std::string(name));
  return it == columns_.end() ? nullptr : &it->second;
}

const Column& Table::GetColumn(std::string_view name) const {
  const Column* col = FindColumn(name);
  if (!col) std::abort();
  return *col;
}

std::size_t Table::num_rows() const noexcept {
  return columns_.empty() ? 0 : columns_.begin()->second.size();
}

Status Table::Validate() const {
  const std::size_t rows = num_rows();
  for (const auto& [name, col] : columns_) {
    if (col.size() != rows) {
      return status::Internal(StrFormat(
          "column '%s' has %zu rows, expected %zu", name.c_str(), col.size(),
          rows));
    }
  }
  return Status::Ok();
}

std::size_t Table::MemoryBytes() const noexcept {
  std::size_t total = 0;
  for (const auto& [name, col] : columns_) total += col.MemoryBytes();
  return total;
}

namespace {

/// Accumulates a CRC while forwarding writes to the file.
class ChecksummedWriter {
 public:
  explicit ChecksummedWriter(BinaryWriter& w) : writer_(w) {}

  Status Write(const void* data, std::size_t size) {
    crc_ = Crc32Update(crc_, data, size);
    return writer_.WriteBytes(data, size);
  }
  template <typename T>
  Status WritePod(const T& v) {
    return Write(&v, sizeof(v));
  }
  Status WriteString(std::string_view s) {
    GDELT_RETURN_IF_ERROR(WritePod(static_cast<std::uint32_t>(s.size())));
    return Write(s.data(), s.size());
  }
  std::uint32_t crc() const noexcept { return crc_; }

 private:
  BinaryWriter& writer_;
  std::uint32_t crc_ = 0;
};

}  // namespace

Status Table::WriteToFile(const std::string& path) const {
  GDELT_RETURN_IF_ERROR(Validate());
  BinaryWriter file;
  GDELT_RETURN_IF_ERROR(file.Open(path));
  ChecksummedWriter out(file);

  GDELT_RETURN_IF_ERROR(out.Write(kMagicHead, sizeof(kMagicHead)));
  GDELT_RETURN_IF_ERROR(out.WritePod(kFormatVersion));
  GDELT_RETURN_IF_ERROR(
      out.WritePod(static_cast<std::uint32_t>(columns_.size())));
  GDELT_RETURN_IF_ERROR(out.WritePod(static_cast<std::uint64_t>(num_rows())));

  for (const auto& [name, col] : columns_) {
    GDELT_RETURN_IF_ERROR(out.WriteString(name));
    GDELT_RETURN_IF_ERROR(out.WritePod(static_cast<std::uint8_t>(col.type())));
    if (col.type() == ColumnType::kStr) {
      GDELT_RETURN_IF_ERROR(out.WritePod(static_cast<std::uint64_t>(
          col.raw_offsets().size() * sizeof(std::uint64_t))));
      GDELT_RETURN_IF_ERROR(
          out.WritePod(static_cast<std::uint64_t>(col.raw_chars().size())));
    } else {
      GDELT_RETURN_IF_ERROR(
          out.WritePod(static_cast<std::uint64_t>(col.raw_bytes().size())));
      GDELT_RETURN_IF_ERROR(out.WritePod(std::uint64_t{0}));
    }
  }

  for (const auto& [name, col] : columns_) {
    if (col.type() == ColumnType::kStr) {
      GDELT_RETURN_IF_ERROR(
          out.Write(col.raw_offsets().data(),
                    col.raw_offsets().size() * sizeof(std::uint64_t)));
      GDELT_RETURN_IF_ERROR(
          out.Write(col.raw_chars().data(), col.raw_chars().size()));
    } else {
      GDELT_RETURN_IF_ERROR(
          out.Write(col.raw_bytes().data(), col.raw_bytes().size()));
    }
  }

  GDELT_RETURN_IF_ERROR(file.WritePod(file.offset()));  // body length
  GDELT_RETURN_IF_ERROR(file.WritePod(out.crc()));
  GDELT_RETURN_IF_ERROR(file.WriteBytes(kMagicTail, sizeof(kMagicTail)));
  return file.Close();
}

Status Table::WriteToFileAtomic(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  GDELT_RETURN_IF_ERROR(WriteToFile(tmp));
  return AtomicReplaceFile(tmp, path);
}

Result<Table> Table::ReadFromFile(const std::string& path) {
  GDELT_ASSIGN_OR_RETURN(MemoryMappedFile file, MemoryMappedFile::Open(path));
  const std::string_view buffer = file.view();
  constexpr std::size_t kFooter = sizeof(std::uint64_t) /* body length */ +
                                  sizeof(std::uint32_t) /* crc */ +
                                  sizeof(kMagicTail);
  if (buffer.size() < sizeof(kMagicHead) + kFooter) {
    return status::DataLoss("table file '" + path + "' is truncated");
  }
  if (std::memcmp(buffer.data(), kMagicHead, sizeof(kMagicHead)) != 0) {
    return status::DataLoss("bad table header magic in '" + path + "'");
  }
  if (std::memcmp(buffer.data() + buffer.size() - sizeof(kMagicTail),
                  kMagicTail, sizeof(kMagicTail)) != 0) {
    return status::DataLoss("bad table trailer magic in '" + path + "'");
  }
  const std::size_t body_size = buffer.size() - kFooter;
  std::uint64_t stored_body_size = 0;
  std::memcpy(&stored_body_size, buffer.data() + body_size,
              sizeof(stored_body_size));
  if (stored_body_size != body_size) {
    return status::DataLoss("integrity footer length mismatch in '" + path +
                            "' (truncated or foreign file)");
  }
  std::uint32_t stored_crc = 0;
  std::memcpy(&stored_crc,
              buffer.data() + body_size + sizeof(stored_body_size),
              sizeof(stored_crc));
  const std::uint32_t actual_crc =
      Crc32Update(0, buffer.data(), body_size);
  if (stored_crc != actual_crc) {
    return status::DataLoss("checksum mismatch in table file '" + path + "'");
  }

  BinaryReader in(buffer.data(), body_size);
  GDELT_RETURN_IF_ERROR(in.Skip(sizeof(kMagicHead)));
  std::uint32_t version = 0;
  std::uint32_t num_columns = 0;
  std::uint64_t num_rows = 0;
  GDELT_RETURN_IF_ERROR(in.ReadPod(version));
  if (version != kFormatVersion) {
    return status::DataLoss(
        StrFormat("unsupported table format version %u", version));
  }
  GDELT_RETURN_IF_ERROR(in.ReadPod(num_columns));
  GDELT_RETURN_IF_ERROR(in.ReadPod(num_rows));

  // Every allocation below is sized by these two counts, which come from
  // the file — checksummed, but a foreign or corrupt-yet-CRC-consistent
  // file is still untrusted input. Bound them against the bytes actually
  // present BEFORE allocating, so a kilobyte of garbage cannot demand
  // gigabytes of memory (or overflow the size arithmetic) while parsing.
  constexpr std::uint64_t kMinDescBytes =
      sizeof(std::uint32_t) /* name length */ +
      sizeof(std::uint8_t) /* type */ + 2 * sizeof(std::uint64_t);
  if (num_columns > in.remaining() / kMinDescBytes) {
    return status::DataLoss(StrFormat(
        "table file '%s' claims %u columns but only %zu bytes remain",
        path.c_str(), num_columns, in.remaining()));
  }
  if (num_rows >=
      std::numeric_limits<std::uint64_t>::max() / sizeof(std::uint64_t)) {
    return status::DataLoss(StrFormat(
        "table file '%s' claims an impossible row count %llu", path.c_str(),
        static_cast<unsigned long long>(num_rows)));
  }

  struct ColumnDesc {
    std::string name;
    ColumnType type;
    std::uint64_t payload_bytes;
    std::uint64_t chars_bytes;
  };
  std::vector<ColumnDesc> descs(num_columns);
  for (auto& d : descs) {
    GDELT_RETURN_IF_ERROR(in.ReadString(d.name));
    std::uint8_t type = 0;
    GDELT_RETURN_IF_ERROR(in.ReadPod(type));
    if (type > static_cast<std::uint8_t>(ColumnType::kStr)) {
      return status::DataLoss("invalid column type in '" + path + "'");
    }
    d.type = static_cast<ColumnType>(type);
    GDELT_RETURN_IF_ERROR(in.ReadPod(d.payload_bytes));
    GDELT_RETURN_IF_ERROR(in.ReadPod(d.chars_bytes));
  }

  Table table;
  for (const auto& d : descs) {
    Column& col = table.AddColumn(d.name, d.type);
    if (d.type == ColumnType::kStr) {
      const std::uint64_t expected =
          (num_rows + 1) * sizeof(std::uint64_t);
      if (d.payload_bytes != expected) {
        return status::DataLoss("string column '" + d.name +
                                "' has inconsistent offsets size");
      }
      if (expected > in.remaining()) {
        return status::DataLoss("string column '" + d.name +
                                "' offsets exceed the file");
      }
      auto& offsets = col.mutable_raw_offsets();
      offsets.resize(num_rows + 1);
      GDELT_RETURN_IF_ERROR(
          in.ReadBytes(offsets.data(), static_cast<std::size_t>(expected)));
      if (d.chars_bytes > in.remaining()) {
        return status::DataLoss("string column '" + d.name +
                                "' character data exceeds the file");
      }
      auto& chars = col.mutable_raw_chars();
      chars.resize(static_cast<std::size_t>(d.chars_bytes));
      GDELT_RETURN_IF_ERROR(in.ReadBytes(
          chars.data(), static_cast<std::size_t>(d.chars_bytes)));
      if (offsets.front() != 0 || offsets.back() != chars.size()) {
        return status::DataLoss("string column '" + d.name +
                                "' has corrupt offsets");
      }
      for (std::size_t i = 0; i + 1 < offsets.size(); ++i) {
        if (offsets[i] > offsets[i + 1]) {
          return status::DataLoss("string column '" + d.name +
                                  "' offsets not monotone");
        }
      }
    } else {
      const std::uint64_t expected = num_rows * ColumnTypeSize(d.type);
      if (d.payload_bytes != expected) {
        return status::DataLoss("column '" + d.name +
                                "' has inconsistent payload size");
      }
      if (expected > in.remaining()) {
        return status::DataLoss("column '" + d.name +
                                "' payload exceeds the file");
      }
      auto& bytes = col.mutable_raw_bytes();
      bytes.resize(static_cast<std::size_t>(expected));
      GDELT_RETURN_IF_ERROR(
          in.ReadBytes(bytes.data(), static_cast<std::size_t>(expected)));
    }
  }
  GDELT_RETURN_IF_ERROR(table.Validate());
  return table;
}

}  // namespace gdelt
