// Typed in-memory columns for the binary column store.
//
// The paper's key design decision (Section IV) is converting GDELT's text
// tables once into "machine-readable binary format" so queries scan flat
// arrays instead of re-parsing CSV. A Column is a contiguous typed buffer;
// string columns are offset+blob pairs. Buffers are plain vectors so a
// parallel first-touch pass can place their pages across NUMA nodes.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.hpp"

namespace gdelt {

/// Physical type of a column.
enum class ColumnType : std::uint8_t {
  kU8 = 0,
  kU16 = 1,
  kU32 = 2,
  kU64 = 3,
  kI64 = 4,
  kF64 = 5,
  kStr = 6,
};

/// Size in bytes of one element of a fixed-width type (0 for kStr).
constexpr std::size_t ColumnTypeSize(ColumnType t) noexcept {
  switch (t) {
    case ColumnType::kU8: return 1;
    case ColumnType::kU16: return 2;
    case ColumnType::kU32: return 4;
    case ColumnType::kU64: return 8;
    case ColumnType::kI64: return 8;
    case ColumnType::kF64: return 8;
    case ColumnType::kStr: return 0;
  }
  return 0;
}

std::string_view ColumnTypeName(ColumnType t) noexcept;

namespace column_detail {
template <typename T>
struct TypeTag;
template <> struct TypeTag<std::uint8_t> {
  static constexpr ColumnType value = ColumnType::kU8;
};
template <> struct TypeTag<std::uint16_t> {
  static constexpr ColumnType value = ColumnType::kU16;
};
template <> struct TypeTag<std::uint32_t> {
  static constexpr ColumnType value = ColumnType::kU32;
};
template <> struct TypeTag<std::uint64_t> {
  static constexpr ColumnType value = ColumnType::kU64;
};
template <> struct TypeTag<std::int64_t> {
  static constexpr ColumnType value = ColumnType::kI64;
};
template <> struct TypeTag<double> {
  static constexpr ColumnType value = ColumnType::kF64;
};
}  // namespace column_detail

/// One column of a table. Fixed-width data lives in `bytes_`; strings in
/// `offsets_` (size rows+1) plus `chars_`.
class Column {
 public:
  /// Creates an empty column of the given type.
  explicit Column(ColumnType type = ColumnType::kU64) : type_(type) {
    if (type_ == ColumnType::kStr) offsets_.push_back(0);
  }

  ColumnType type() const noexcept { return type_; }

  /// Row count.
  std::size_t size() const noexcept {
    if (type_ == ColumnType::kStr) return offsets_.size() - 1;
    const std::size_t es = ColumnTypeSize(type_);
    return es ? bytes_.size() / es : 0;
  }

  /// Appends a fixed-width value; T must match the column type exactly.
  template <typename T>
  void Append(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (column_detail::TypeTag<T>::value != type_) {
      // Type confusion is a programming error, not a data error.
      std::abort();
    }
    const std::size_t at = bytes_.size();
    bytes_.resize(at + sizeof(T));
    std::memcpy(bytes_.data() + at, &value, sizeof(T));
  }

  /// Appends to a string column.
  void AppendString(std::string_view s) {
    chars_.append(s);
    offsets_.push_back(chars_.size());
  }

  /// Typed read-only view of a fixed-width column.
  template <typename T>
  std::span<const T> Values() const {
    static_assert(std::is_trivially_copyable_v<T>);
    if (column_detail::TypeTag<T>::value != type_) std::abort();
    return {reinterpret_cast<const T*>(bytes_.data()),
            bytes_.size() / sizeof(T)};
  }

  /// Typed mutable view (used by in-place builders).
  template <typename T>
  std::span<T> MutableValues() {
    static_assert(std::is_trivially_copyable_v<T>);
    if (column_detail::TypeTag<T>::value != type_) std::abort();
    return {reinterpret_cast<T*>(bytes_.data()), bytes_.size() / sizeof(T)};
  }

  /// String at row i (valid while the column lives).
  std::string_view StringAt(std::size_t i) const noexcept {
    const std::uint64_t b = offsets_[i];
    const std::uint64_t e = offsets_[i + 1];
    // gdelt-astcheck: allow(view-escape) — columns are immutable once
    // loaded (AppendString only runs during conversion, never on a
    // column a reader holds), so chars_ never reallocates under a view.
    return {chars_.data() + b, static_cast<std::size_t>(e - b)};
  }

  /// Pre-allocates for n fixed-width rows (or n strings of avg_len bytes).
  void Reserve(std::size_t n, std::size_t avg_len = 16) {
    if (type_ == ColumnType::kStr) {
      // gdelt-lint: allow(unchecked-copy) — n is an in-memory dictionary
      // size from the caller, never a length parsed out of a file.
      // gdelt-astcheck: allow(bounded-alloc) — same in-memory contract.
      offsets_.reserve(n + 1);
      chars_.reserve(n * avg_len);
    } else {
      // gdelt-lint: allow(unchecked-copy) — same: capacity hint, not
      // untrusted input.
      // gdelt-astcheck: allow(bounded-alloc) — same capacity-hint contract.
      bytes_.reserve(n * ColumnTypeSize(type_));
    }
  }

  /// Resizes a fixed-width column to n zero-initialized rows.
  void ResizeFixed(std::size_t n) {
    // gdelt-astcheck: allow(bounded-alloc) — n is a row count the loader
    // already validated against the file's framing (BinaryReader bounds
    // every section length before a column is sized from it).
    bytes_.assign(n * ColumnTypeSize(type_), 0);
  }

  /// Total heap bytes held (for the memory accounting the paper reports).
  std::size_t MemoryBytes() const noexcept {
    return bytes_.capacity() + offsets_.capacity() * sizeof(std::uint64_t) +
           chars_.capacity();
  }

  // --- serialization (raw buffers; framing is done by Table) ---
  const std::vector<std::uint8_t>& raw_bytes() const noexcept { return bytes_; }
  const std::vector<std::uint64_t>& raw_offsets() const noexcept {
    return offsets_;
  }
  const std::string& raw_chars() const noexcept { return chars_; }
  std::vector<std::uint8_t>& mutable_raw_bytes() noexcept { return bytes_; }
  std::vector<std::uint64_t>& mutable_raw_offsets() noexcept {
    return offsets_;
  }
  std::string& mutable_raw_chars() noexcept { return chars_; }

 private:
  ColumnType type_;
  std::vector<std::uint8_t> bytes_;     ///< fixed-width payload
  std::vector<std::uint64_t> offsets_;  ///< kStr: rows+1 boundaries
  std::string chars_;                   ///< kStr: concatenated bytes
};

}  // namespace gdelt
