#include "columnar/dictionary.hpp"

#include <memory>

#include "columnar/table.hpp"

namespace gdelt {

std::uint32_t StringDictionary::GetOrAdd(std::string_view s) {
  const auto it = index_.find(s);
  if (it != index_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(strings_.size());
  strings_.emplace_back(s);
  index_.emplace(std::string_view(strings_.back()), id);
  return id;
}

std::optional<std::uint32_t> StringDictionary::Find(
    std::string_view s) const noexcept {
  const auto it = index_.find(s);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

Status StringDictionary::WriteToFile(const std::string& path) const {
  Table table;
  Column& col = table.AddColumn("value", ColumnType::kStr);
  col.Reserve(strings_.size());
  for (const auto& s : strings_) col.AppendString(s);
  return table.WriteToFile(path);
}

Status StringDictionary::WriteToFileAtomic(const std::string& path) const {
  Table table;
  Column& col = table.AddColumn("value", ColumnType::kStr);
  col.Reserve(strings_.size());
  for (const auto& s : strings_) col.AppendString(s);
  return table.WriteToFileAtomic(path);
}

Result<StringDictionary> StringDictionary::ReadFromFile(
    const std::string& path) {
  GDELT_ASSIGN_OR_RETURN(Table table, Table::ReadFromFile(path));
  const Column* col = table.FindColumn("value");
  if (!col || col->type() != ColumnType::kStr) {
    return status::DataLoss("dictionary file '" + path +
                            "' lacks a string 'value' column");
  }
  StringDictionary dict;
  for (std::size_t i = 0; i < col->size(); ++i) {
    dict.GetOrAdd(col->StringAt(i));
  }
  if (dict.size() != col->size()) {
    return status::DataLoss("dictionary file '" + path +
                            "' contains duplicate entries");
  }
  return dict;
}

}  // namespace gdelt
