#include "gtime/timestamp.hpp"

#include "util/strings.hpp"

namespace gdelt {

std::int64_t DaysFromCivil(std::int32_t y, unsigned m, unsigned d) noexcept {
  // Howard Hinnant's days_from_civil, shifting March to month 0 so leap days
  // land at the end of the internal year.
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const auto yoe = static_cast<unsigned>(y - era * 400);             // [0,399]
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

void CivilFromDays(std::int64_t days, std::int32_t& y, unsigned& m,
                   unsigned& d) noexcept {
  days += 719468;
  const std::int64_t era = (days >= 0 ? days : days - 146096) / 146097;
  const auto doe = static_cast<unsigned>(days - era * 146097);  // [0,146096]
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;    // [0,399]
  const auto internal_year = static_cast<std::int32_t>(yoe) +
                             static_cast<std::int32_t>(era) * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);  // [0,365]
  const unsigned mp = (5 * doy + 2) / 153;                       // [0,11]
  d = doy - (153 * mp + 2) / 5 + 1;
  m = mp + (mp < 10 ? 3 : -9);
  y = internal_year + (m <= 2);
}

std::int64_t ToUnixSeconds(const CivilDateTime& t) noexcept {
  return DaysFromCivil(t.year, t.month, t.day) * 86400 + t.hour * 3600 +
         t.minute * 60 + t.second;
}

CivilDateTime FromUnixSeconds(std::int64_t seconds) noexcept {
  std::int64_t days = seconds / 86400;
  std::int64_t rem = seconds % 86400;
  if (rem < 0) {
    rem += 86400;
    --days;
  }
  CivilDateTime t;
  unsigned m = 0;
  unsigned d = 0;
  CivilFromDays(days, t.year, m, d);
  t.month = static_cast<std::uint8_t>(m);
  t.day = static_cast<std::uint8_t>(d);
  t.hour = static_cast<std::uint8_t>(rem / 3600);
  t.minute = static_cast<std::uint8_t>((rem % 3600) / 60);
  t.second = static_cast<std::uint8_t>(rem % 60);
  return t;
}

std::uint64_t ToGdeltTimestamp(const CivilDateTime& t) noexcept {
  return static_cast<std::uint64_t>(t.year) * 10000000000ull +
         static_cast<std::uint64_t>(t.month) * 100000000ull +
         static_cast<std::uint64_t>(t.day) * 1000000ull +
         static_cast<std::uint64_t>(t.hour) * 10000ull +
         static_cast<std::uint64_t>(t.minute) * 100ull + t.second;
}

Result<CivilDateTime> ParseGdeltTimestamp(std::uint64_t packed) noexcept {
  CivilDateTime t;
  t.second = static_cast<std::uint8_t>(packed % 100);
  packed /= 100;
  t.minute = static_cast<std::uint8_t>(packed % 100);
  packed /= 100;
  t.hour = static_cast<std::uint8_t>(packed % 100);
  packed /= 100;
  t.day = static_cast<std::uint8_t>(packed % 100);
  packed /= 100;
  t.month = static_cast<std::uint8_t>(packed % 100);
  packed /= 100;
  if (packed > 9999) {
    return status::ParseError("timestamp year out of range");
  }
  t.year = static_cast<std::int32_t>(packed);
  if (t.year < 1900) {
    return status::ParseError("timestamp year " + std::to_string(t.year) +
                              " before 1900");
  }
  if (t.month < 1 || t.month > 12) {
    return status::ParseError("timestamp month out of range");
  }
  if (t.day < 1 || t.day > DaysInMonth(t.year, t.month)) {
    return status::ParseError("timestamp day out of range");
  }
  if (t.hour > 23 || t.minute > 59 || t.second > 59) {
    return status::ParseError("timestamp time-of-day out of range");
  }
  return t;
}

Result<CivilDateTime> ParseGdeltTimestamp(std::string_view text) noexcept {
  if (text.size() != 14) {
    return status::ParseError("timestamp must be 14 digits, got '" +
                              std::string(text) + "'");
  }
  const auto packed = ParseUint64(text);
  if (!packed) {
    return status::ParseError("timestamp is not numeric: '" +
                              std::string(text) + "'");
  }
  return ParseGdeltTimestamp(*packed);
}

std::string FormatGdeltTimestamp(const CivilDateTime& t) {
  return StrFormat("%04d%02u%02u%02u%02u%02u", t.year, t.month, t.day, t.hour,
                   t.minute, t.second);
}

IntervalId IntervalOfUnixSeconds(std::int64_t seconds) noexcept {
  // Floor division (timestamps before 1970 round down, not toward zero).
  std::int64_t q = seconds / kSecondsPerInterval;
  if (seconds % kSecondsPerInterval < 0) --q;
  return q;
}

IntervalId IntervalOfCivil(const CivilDateTime& t) noexcept {
  return IntervalOfUnixSeconds(ToUnixSeconds(t));
}

std::int64_t IntervalStartUnixSeconds(IntervalId id) noexcept {
  return id * kSecondsPerInterval;
}

CivilDateTime IntervalStartCivil(IntervalId id) noexcept {
  return FromUnixSeconds(IntervalStartUnixSeconds(id));
}

QuarterId QuarterOfCivil(const CivilDateTime& t) noexcept {
  return t.year * 4 + (t.month - 1) / 3;
}

QuarterId QuarterOfUnixSeconds(std::int64_t seconds) noexcept {
  return QuarterOfCivil(FromUnixSeconds(seconds));
}

std::string QuarterLabel(QuarterId q) {
  return StrFormat("%dQ%d", q / 4, q % 4 + 1);
}

CivilDateTime QuarterStartCivil(QuarterId q) noexcept {
  CivilDateTime t;
  t.year = q / 4;
  t.month = static_cast<std::uint8_t>((q % 4) * 3 + 1);
  t.day = 1;
  return t;
}

}  // namespace gdelt
