// Time handling for GDELT 2.0 data.
//
// GDELT encodes times as decimal YYYYMMDDHHMMSS integers and publishes one
// Events + Mentions file pair every 15 minutes. The paper measures
// publishing delay in units of these 15-minute capture intervals, and
// aggregates trends by calendar quarter. This module provides exact civil
// calendar math (Hinnant's algorithms) with strict validation — the
// preprocessing tool relies on it to detect the malformed records counted
// in Table II.
#pragma once

#include <cstdint>
#include <string>

#include "util/status.hpp"

namespace gdelt {

/// A Gregorian calendar date-time (no timezone; GDELT is UTC).
struct CivilDateTime {
  std::int32_t year = 1970;
  std::uint8_t month = 1;   ///< 1..12
  std::uint8_t day = 1;     ///< 1..31
  std::uint8_t hour = 0;    ///< 0..23
  std::uint8_t minute = 0;  ///< 0..59
  std::uint8_t second = 0;  ///< 0..59

  friend bool operator==(const CivilDateTime&, const CivilDateTime&) = default;
};

/// True for Gregorian leap years.
constexpr bool IsLeapYear(std::int32_t y) noexcept {
  return y % 4 == 0 && (y % 100 != 0 || y % 400 == 0);
}

/// Days in a month (1..12) of a given year.
constexpr int DaysInMonth(std::int32_t year, unsigned month) noexcept {
  constexpr int kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (month == 2 && IsLeapYear(year)) return 29;
  return kDays[month - 1];
}

/// Days since 1970-01-01 for a civil date (proleptic Gregorian).
std::int64_t DaysFromCivil(std::int32_t y, unsigned m, unsigned d) noexcept;

/// Inverse of DaysFromCivil.
void CivilFromDays(std::int64_t days, std::int32_t& y, unsigned& m,
                   unsigned& d) noexcept;

/// Seconds since the Unix epoch for a civil date-time (UTC).
std::int64_t ToUnixSeconds(const CivilDateTime& t) noexcept;

/// Civil date-time (UTC) for a Unix timestamp.
CivilDateTime FromUnixSeconds(std::int64_t seconds) noexcept;

/// Packs into GDELT's YYYYMMDDHHMMSS decimal encoding.
std::uint64_t ToGdeltTimestamp(const CivilDateTime& t) noexcept;

/// Parses and fully validates a YYYYMMDDHHMMSS value (month/day ranges,
/// leap years, hour/minute/second bounds). Returns ParseError on violation.
Result<CivilDateTime> ParseGdeltTimestamp(std::uint64_t packed) noexcept;

/// Parses the textual form, e.g. "20150218230000".
Result<CivilDateTime> ParseGdeltTimestamp(std::string_view text) noexcept;

/// Formats as the 14-digit GDELT string.
std::string FormatGdeltTimestamp(const CivilDateTime& t);

// ---------------------------------------------------------------------------
// 15-minute capture intervals

/// Index of a 15-minute capture interval, counted from the Unix epoch.
/// The paper's publishing delay (Figures 9-11, Table VIII) is a difference
/// of two IntervalIds.
using IntervalId = std::int64_t;

constexpr std::int64_t kSecondsPerInterval = 15 * 60;
/// Intervals per day: 96 == the paper's "24 hour news cycle" boundary.
constexpr std::int64_t kIntervalsPerDay = 96;

/// The interval containing a given time (floor).
IntervalId IntervalOfUnixSeconds(std::int64_t seconds) noexcept;
IntervalId IntervalOfCivil(const CivilDateTime& t) noexcept;

/// Start of an interval as Unix seconds / civil time.
std::int64_t IntervalStartUnixSeconds(IntervalId id) noexcept;
CivilDateTime IntervalStartCivil(IntervalId id) noexcept;

// ---------------------------------------------------------------------------
// Quarters

/// A calendar quarter, densely ordered: year * 4 + quarter_index.
/// Trend figures (3, 4, 5, 6, 10, 11) bucket by QuarterId.
using QuarterId = std::int32_t;

QuarterId QuarterOfCivil(const CivilDateTime& t) noexcept;
QuarterId QuarterOfUnixSeconds(std::int64_t seconds) noexcept;

/// Quarter label, e.g. "2015Q1".
std::string QuarterLabel(QuarterId q);

/// First civil instant of the quarter.
CivilDateTime QuarterStartCivil(QuarterId q) noexcept;

/// Makes a QuarterId from (year, quarter 1..4).
constexpr QuarterId MakeQuarter(std::int32_t year, int quarter) noexcept {
  return year * 4 + (quarter - 1);
}

}  // namespace gdelt
