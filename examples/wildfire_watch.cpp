// Example: identifying the "fast pool" of near-real-time news sources.
//
// The paper's motivation is tracking digital wildfires — fast-spreading
// misinformation. Section VI-E closes: the several hundred publishers
// that typically report in under two hours "represent a most important
// pool of core news sources that are as close to real time reporting as
// possible". This example computes per-source delay statistics, splits
// sources into the paper's slow / average / fast groups, lists the fast
// pool, and then replays the biggest event hour by hour showing how far a
// wildfire monitor restricted to the fast pool would lag.
//
// Usage: ./examples/wildfire_watch [work_dir]
#include <algorithm>
#include <cstdio>

#include "analysis/delay.hpp"
#include "convert/converter.hpp"
#include "engine/queries.hpp"
#include "gen/emit.hpp"
#include "gen/generator.hpp"
#include "util/strings.hpp"

using namespace gdelt;

namespace {

/// The paper's source speed taxonomy from Section VI-E.
enum class Pool { kFast, kAverage, kSlow };

Pool Classify(const analysis::DelayStats& st) {
  if (st.median < 8) return Pool::kFast;       // < 2 hours
  if (st.median <= 96) return Pool::kAverage;  // 24-hour news cycle
  return Pool::kSlow;                          // days to months behind
}

}  // namespace

int main(int argc, char** argv) {
  const std::string work_dir = argc > 1 ? argv[1] : "wildfire_data";

  gen::GeneratorConfig config = gen::GeneratorConfig::Small();
  config.num_sources = 600;
  config.events_per_interval_mean = 1.5;
  std::printf("Generating one year of synthetic GDELT ...\n");
  const gen::RawDataset dataset = gen::GenerateDataset(config);
  if (const auto e = gen::EmitDataset(dataset, config, work_dir + "/raw");
      !e.ok()) {
    std::fprintf(stderr, "%s\n", e.status().ToString().c_str());
    return 1;
  }
  convert::ConvertOptions options;
  options.input_dir = work_dir + "/raw";
  options.output_dir = work_dir + "/db";
  if (const auto r = convert::ConvertDataset(options); !r.ok()) {
    std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
    return 1;
  }
  auto db = engine::Database::Load(work_dir + "/db");
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }

  // --- Speed taxonomy ------------------------------------------------------
  const auto stats = analysis::PerSourceDelayStats(*db);
  std::vector<std::uint32_t> fast_pool;
  int n_fast = 0, n_avg = 0, n_slow = 0;
  for (std::uint32_t s = 0; s < db->num_sources(); ++s) {
    if (stats[s].article_count < 10) continue;  // too little signal
    switch (Classify(stats[s])) {
      case Pool::kFast:
        ++n_fast;
        fast_pool.push_back(s);
        break;
      case Pool::kAverage: ++n_avg; break;
      case Pool::kSlow: ++n_slow; break;
    }
  }
  std::printf("\nSource speed groups (median delay): %d fast (<2h), "
              "%d average (24h cycle), %d slow (paper: a several-hundred "
              "strong fast pool, a large average group, a large slow "
              "group)\n", n_fast, n_avg, n_slow);

  std::sort(fast_pool.begin(), fast_pool.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return stats[a].median < stats[b].median;
            });
  std::printf("\nFastest wildfire-monitoring sources:\n");
  for (std::size_t k = 0; k < fast_pool.size() && k < 10; ++k) {
    const auto s = fast_pool[k];
    std::printf("  %-26s median %lld intervals (%lld min), %s articles\n",
                std::string(db->source_domain(s)).c_str(),
                static_cast<long long>(stats[s].median),
                static_cast<long long>(stats[s].median * 15),
                WithThousands(stats[s].article_count).c_str());
  }

  // --- Replay the biggest story through the fast pool ----------------------
  const auto top_events = engine::TopReportedEvents(*db, 1);
  if (top_events.empty()) return 0;
  const auto event_row = top_events[0].event_row;
  std::printf("\nReplaying the most reported event (%u articles):\n",
              top_events[0].articles);
  std::vector<bool> in_fast_pool(db->num_sources(), false);
  for (const auto s : fast_pool) in_fast_pool[s] = true;

  const auto when = db->mention_interval();
  const auto event_when = db->mention_event_interval();
  const auto src = db->mention_source_id();
  const auto rows = db->mentions_by_event().RowsOf(event_row);
  // Coverage at 1h, 2h, 6h, 24h after the event: all sources vs fast pool.
  for (const std::int64_t horizon : {4, 8, 24, 96}) {
    std::uint64_t all = 0;
    std::uint64_t fast = 0;
    for (const std::uint64_t row : rows) {
      const std::int64_t delay = when[row] - event_when[row];
      if (delay < 0 || delay > horizon) continue;
      ++all;
      if (in_fast_pool[src[row]]) ++fast;
    }
    std::printf("  within %3lld h: %4llu articles total, %4llu from the "
                "fast pool\n", static_cast<long long>(horizon / 4),
                static_cast<unsigned long long>(all),
                static_cast<unsigned long long>(fast));
  }
  std::printf("\nA monitor subscribed only to the fast pool sees the story "
              "almost as early as one ingesting everything — the paper's "
              "argument for curating this pool.\n");
  return 0;
}
