// Quickstart: the full workflow of the high-performance GDELT mining
// system in one file —
//   1. generate a small synthetic GDELT 2.0 raw dataset (in production you
//      would download the real 15-minute archives instead),
//   2. convert it once to the indexed binary format (the paper's
//      preprocessing step, discovering the Table II data problems),
//   3. load everything into memory and run a few aggregated queries.
//
// Build & run:  ./examples/quickstart [work_dir]
#include <cstdio>

#include "analysis/stats.hpp"
#include "convert/converter.hpp"
#include "engine/database.hpp"
#include "engine/queries.hpp"
#include "gen/emit.hpp"
#include "gen/generator.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"

using namespace gdelt;

int main(int argc, char** argv) {
  const std::string work_dir = argc > 1 ? argv[1] : "quickstart_data";

  // -- 1. Generate a month of synthetic GDELT ------------------------------
  gen::GeneratorConfig config = gen::GeneratorConfig::Tiny();
  config.seed = 7;
  std::printf("Generating a synthetic GDELT 2.0 dataset ...\n");
  const gen::RawDataset dataset = gen::GenerateDataset(config);
  const auto emitted = gen::EmitDataset(dataset, config, work_dir + "/raw");
  if (!emitted.ok()) {
    std::fprintf(stderr, "emit failed: %s\n",
                 emitted.status().ToString().c_str());
    return 1;
  }
  std::printf("  %zu events, %zu articles in %llu chunk archives\n",
              dataset.events.size(), dataset.mentions.size(),
              static_cast<unsigned long long>(emitted->chunk_files_written));

  // -- 2. Convert once to the indexed binary format ------------------------
  convert::ConvertOptions options;
  options.input_dir = work_dir + "/raw";
  options.output_dir = work_dir + "/db";
  const auto report = convert::ConvertDataset(options);
  if (!report.ok()) {
    std::fprintf(stderr, "conversion failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("\nConversion report (cleaning results, cf. paper Table II):\n"
              "  malformed master entries: %u, missing archives: %u,\n"
              "  missing source URLs: %u, future-dated events: %u\n",
              report->malformed_master_entries, report->missing_archives,
              report->missing_event_source_url, report->future_event_dates);

  // -- 3. Load into memory and query ---------------------------------------
  WallTimer load_timer;
  auto db = engine::Database::Load(work_dir + "/db");
  if (!db.ok()) {
    std::fprintf(stderr, "load failed: %s\n", db.status().ToString().c_str());
    return 1;
  }
  std::printf("\nDatabase resident in %.2fs (%.1f MiB).\n",
              load_timer.ElapsedSeconds(),
              static_cast<double>(db->MemoryBytes()) / (1024.0 * 1024.0));

  std::printf("\n%s\n", analysis::ComputeDatasetStatistics(*db).ToText().c_str());

  const auto counts = engine::ArticlesPerSource(*db);
  const auto top = engine::TopSourcesByArticles(*db, 5);
  std::printf("Most productive sources:\n");
  for (const std::uint32_t s : top) {
    std::printf("  %-26s %s articles\n",
                std::string(db->source_domain(s)).c_str(),
                WithThousands(counts[s]).c_str());
  }

  const auto top_events = engine::TopReportedEvents(*db, 3);
  std::printf("\nMost reported events:\n");
  for (const auto& ev : top_events) {
    std::printf("  %5u mentions  %s\n", ev.articles,
                std::string(db->event_source_url(ev.event_row)).c_str());
  }
  return 0;
}
