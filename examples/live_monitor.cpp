// Example: following GDELT in (simulated) real time.
//
// GDELT publishes a new Events/Mentions archive pair every 15 minutes.
// This example converts the bulk of a synthetic dataset into the binary
// store (the historical base), then replays the final week of chunk
// archives one pair at a time through a streaming DeltaStore — printing a
// monitoring dashboard after each "arrival": new articles, running top
// publishers, and USA coverage — without ever reconverting the base.
//
// Usage: ./examples/live_monitor [work_dir]
#include <cstdio>

#include "convert/converter.hpp"
#include "convert/master_list.hpp"
#include "engine/database.hpp"
#include "gen/emit.hpp"
#include "gen/generator.hpp"
#include "io/crc32.hpp"
#include "io/file.hpp"
#include "stream/delta_store.hpp"
#include "util/strings.hpp"

using namespace gdelt;

int main(int argc, char** argv) {
  const std::string work_dir = argc > 1 ? argv[1] : "live_monitor_data";

  gen::GeneratorConfig config = gen::GeneratorConfig::Tiny();
  config.defect_missing_archives = 0;
  config.defect_malformed_master_entries = 0;
  config.intervals_per_chunk = 96;  // daily arrivals for a readable demo
  std::printf("Generating four weeks of synthetic GDELT ...\n");
  const gen::RawDataset dataset = gen::GenerateDataset(config);
  if (const auto e = gen::EmitDataset(dataset, config, work_dir + "/raw");
      !e.ok()) {
    std::fprintf(stderr, "%s\n", e.status().ToString().c_str());
    return 1;
  }

  // Partition the archives: everything except the last 7 pairs is "the
  // past" and goes through the converter; the tail arrives live.
  const auto master_text =
      ReadWholeFile(work_dir + "/raw/masterfilelist.txt");
  if (!master_text.ok()) return 1;
  const auto master = convert::ParseMasterList(*master_text);
  std::vector<std::string> exports;
  std::vector<std::string> mentions;
  for (const auto& e : master.entries) {
    (e.kind == convert::ArchiveKind::kExport ? exports : mentions)
        .push_back(e.file_name);
  }
  const std::size_t live_pairs = 7;
  const std::size_t cut =
      exports.size() > live_pairs ? exports.size() - live_pairs : 0;

  if (MakeDirectories(work_dir + "/base").ok()) {
    std::string base_master;
    for (std::size_t i = 0; i < cut; ++i) {
      for (const std::string* name : {&exports[i], &mentions[i]}) {
        const auto bytes = ReadWholeFile(work_dir + "/raw/" + *name);
        if (!bytes.ok()) return 1;
        if (!WriteWholeFile(work_dir + "/base/" + *name, *bytes).ok()) {
          return 1;
        }
        base_master += StrFormat("%zu %08x ", bytes->size(), Crc32(*bytes));
        base_master += *name + "\n";
      }
    }
    if (!WriteWholeFile(work_dir + "/base/masterfilelist.txt", base_master)
             .ok()) {
      return 1;
    }
  }
  convert::ConvertOptions options;
  options.input_dir = work_dir + "/base";
  options.output_dir = work_dir + "/db";
  if (const auto r = convert::ConvertDataset(options); !r.ok()) {
    std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
    return 1;
  }
  auto db = engine::Database::Load(work_dir + "/db");
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  std::printf("Historical base: %zu events, %zu articles.\n\n",
              db->num_events(), db->num_mentions());

  stream::DeltaStore delta(&*db);
  std::uint64_t last_mentions = 0;
  for (std::size_t i = cut; i < exports.size(); ++i) {
    if (const auto s = delta.IngestArchivePair(
            work_dir + "/raw/" + exports[i], work_dir + "/raw/" + mentions[i]);
        !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    const std::uint64_t arrived = delta.delta_mentions() - last_mentions;
    last_mentions = delta.delta_mentions();
    // The archive name starts with its capture timestamp.
    std::printf("chunk %s | +%s articles | total %s | about the USA: %s\n",
                exports[i].substr(0, 8).c_str(),
                WithThousands(arrived).c_str(),
                WithThousands(delta.CombinedMentionCount()).c_str(),
                WithThousands(
                    delta.CombinedArticlesAboutCountry(country::kUSA))
                    .c_str());
    const auto counts = delta.CombinedArticlesPerSource();
    const auto top = delta.CombinedTopSources(3);
    std::printf("  leaders:");
    for (const auto s : top) {
      std::printf("  %s (%s)", std::string(delta.source_domain(s)).c_str(),
                  WithThousands(counts[s]).c_str());
    }
    std::printf("\n");
  }
  std::printf("\nStreamed %s new articles across %zu live chunk pairs "
              "without reconverting the base.\n",
              WithThousands(delta.delta_mentions()).c_str(), live_pairs);
  return 0;
}
