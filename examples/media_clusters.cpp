// Example: discovering co-owned media groups with Markov clustering.
//
// The paper observes that most of its Top-10 publishers belong to one
// media group (Newsquest) and suggests that "more clusters of heavily
// co-reporting and likely co-owned news websites can be found by applying
// clustering algorithms (e.g. Markov clustering) to the co-reporting
// matrix" (Section VI-B). This example does exactly that: it builds the
// co-reporting Jaccard matrix over the most productive sources and runs
// MCL on it, then checks the found clusters against the generator's
// planted media groups.
//
// Usage: ./examples/media_clusters [work_dir] [top_n]
#include <cstdio>
#include <map>

#include "analysis/coreport.hpp"
#include "convert/converter.hpp"
#include "engine/queries.hpp"
#include "gen/emit.hpp"
#include "gen/generator.hpp"
#include "graph/mcl.hpp"
#include "util/strings.hpp"

using namespace gdelt;

int main(int argc, char** argv) {
  const std::string work_dir = argc > 1 ? argv[1] : "media_clusters_data";
  const std::size_t top_n =
      argc > 2 ? ParseUint64(argv[2]).value_or(80) : 80;

  // Build a one-year dataset with several media groups.
  gen::GeneratorConfig config = gen::GeneratorConfig::Small();
  config.num_sources = 400;
  config.media_group_count = 5;
  config.media_group_size = 10;
  config.events_per_interval_mean = 1.5;
  std::printf("Generating dataset with %u planted media groups ...\n",
              config.media_group_count);
  const gen::RawDataset dataset = gen::GenerateDataset(config);
  if (const auto e = gen::EmitDataset(dataset, config, work_dir + "/raw");
      !e.ok()) {
    std::fprintf(stderr, "%s\n", e.status().ToString().c_str());
    return 1;
  }
  convert::ConvertOptions options;
  options.input_dir = work_dir + "/raw";
  options.output_dir = work_dir + "/db";
  if (const auto r = convert::ConvertDataset(options); !r.ok()) {
    std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
    return 1;
  }
  auto db = engine::Database::Load(work_dir + "/db");
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }

  // Co-reporting Jaccard over the top publishers (the paper recommends the
  // symmetric co-reporting matrix over follow-reporting for clustering).
  const auto top = engine::TopSourcesByArticles(*db, top_n);
  const auto coreport = analysis::ComputeCoReporting(*db, top);
  // Mega events and very popular stories give every pair a co-reporting
  // floor, which would glue the graph into one blob. Sparsify to each
  // node's strongest neighbors (mutualized) before clustering — the usual
  // preprocessing for similarity-graph clustering.
  constexpr std::size_t kNeighbors = 6;
  graph::DenseMatrix similarity(top.size(), top.size());
  std::vector<std::pair<double, std::size_t>> row(top.size());
  for (std::size_t i = 0; i < top.size(); ++i) {
    for (std::size_t j = 0; j < top.size(); ++j) {
      row[j] = {i == j ? -1.0 : coreport.Jaccard(i, j), j};
    }
    std::partial_sort(row.begin(), row.begin() + kNeighbors, row.end(),
                      std::greater<>());
    for (std::size_t k = 0; k < kNeighbors; ++k) {
      const auto [score, j] = row[k];
      if (score <= 0.0) break;
      similarity.At(i, j) = std::max(similarity.At(i, j), score);
      similarity.At(j, i) = similarity.At(i, j);  // keep it symmetric
    }
  }

  graph::MclOptions mcl_options;
  mcl_options.inflation = 2.4;
  const graph::MclResult result =
      graph::MarkovCluster(graph::DenseToSparse(similarity, 1e-4),
                           mcl_options);
  std::printf("MCL converged after %d iterations: %u clusters over the top "
              "%zu sources\n", result.iterations, result.num_clusters,
              top.size());

  // Ground truth: media group of each selected source (domain lookup).
  std::map<std::string, std::int32_t> group_of_domain;
  for (const auto& src : dataset.world.sources) {
    group_of_domain[src.domain] = src.media_group;
  }

  // Report each non-trivial cluster with its dominant planted group.
  std::map<std::uint32_t, std::vector<std::size_t>> members;
  for (std::size_t i = 0; i < result.cluster.size(); ++i) {
    members[result.cluster[i]].push_back(i);
  }
  int matched_clusters = 0;
  for (const auto& [label, rows] : members) {
    if (rows.size() < 3) continue;
    std::map<std::int32_t, int> group_votes;
    for (const std::size_t r : rows) {
      ++group_votes[group_of_domain[std::string(
          db->source_domain(top[r]))]];
    }
    const auto dominant = std::max_element(
        group_votes.begin(), group_votes.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    const double purity = static_cast<double>(dominant->second) /
                          static_cast<double>(rows.size());
    std::printf("  cluster %u: %zu sources, dominant planted group %d "
                "(purity %.0f%%):", label, rows.size(), dominant->first,
                purity * 100.0);
    for (std::size_t k = 0; k < rows.size() && k < 6; ++k) {
      std::printf(" %s", std::string(db->source_domain(top[rows[k]])).c_str());
    }
    if (rows.size() > 6) std::printf(" ...");
    std::printf("\n");
    if (dominant->first >= 0 && purity >= 0.6) ++matched_clusters;
  }
  std::printf("clusters recovering a planted media group: %d of %u planted\n",
              matched_clusters, config.media_group_count);
  return 0;
}
