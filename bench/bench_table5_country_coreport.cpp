// Reproduces Table V: common reporting (Jaccard) between world regions.
//
// Paper shape: a strong UK-USA-Australia cluster (0.09-0.11), India with a
// weaker link to the three (0.016-0.028), and far weaker co-reporting
// among the remaining countries (<= 0.02). Canada notably NOT part of the
// anglophone cluster.
#include "analysis/country.hpp"
#include "common/fixture.hpp"

namespace gdelt::bench {
namespace {

void BM_CountryCoReporting(benchmark::State& state) {
  const auto& db = Db();
  for (auto _ : state) {
    auto report = analysis::ComputeCountryCoReporting(db);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(db.num_mentions()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CountryCoReporting);

void Print() {
  const auto& db = Db();
  const auto r = analysis::ComputeCountryCoReporting(db);
  const auto top = engine::CountriesByPublishedArticles(db, 10);
  std::printf("\n=== Table V: common reporting between world regions ===\n");
  std::printf("  %-13s", "");
  for (const CountryId c : top) {
    std::printf(" %-9.9s", std::string(CountryName(c)).c_str());
  }
  std::printf("\n");
  for (const CountryId c : top) {
    std::printf("  %-13.13s", std::string(CountryName(c)).c_str());
    for (const CountryId d : top) {
      if (c == d) {
        std::printf(" %-9s", "");
      } else {
        std::printf(" %-9.3f", r.Jaccard(c, d));
      }
    }
    std::printf("\n");
  }
  const double anglo = (r.Jaccard(country::kUK, country::kUSA) +
                        r.Jaccard(country::kUK, country::kAustralia) +
                        r.Jaccard(country::kUSA, country::kAustralia)) /
                       3.0;
  const double india = (r.Jaccard(country::kIndia, country::kUK) +
                        r.Jaccard(country::kIndia, country::kUSA) +
                        r.Jaccard(country::kIndia, country::kAustralia)) /
                       3.0;
  const double canada_uk = r.Jaccard(country::kCanada, country::kUK);
  std::printf("mean UK-USA-AUS: %.3f | mean India-cluster: %.3f | "
              "Canada-UK: %.3f\n", anglo, india, canada_uk);
  std::printf("Paper shape: UK-USA-AUS ~0.10 >> India links ~0.02 >> "
              "Canada outside the cluster (0.003)\n");
}

}  // namespace
}  // namespace gdelt::bench

GDELT_BENCH_MAIN(gdelt::bench::Print)
