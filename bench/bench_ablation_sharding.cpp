// Ablation / future-work: sharded (simulated distributed-memory) execution
// of the aggregated query vs the single-node OpenMP kernel.
//
// The paper plans MPI scale-out for the non-English data (Section VII).
// This bench runs the time-sharded variant at several shard counts and
// verifies the reduction reproduces the single-node result exactly,
// measuring the partition+reduce overhead a rank decomposition would add
// on one node.
#include "common/fixture.hpp"
#include "engine/sharded.hpp"

namespace gdelt::bench {
namespace {

void BM_SingleNodeAggregated(benchmark::State& state) {
  const auto& db = Db();
  for (auto _ : state) {
    auto report = engine::CountryCrossReporting(db);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(db.num_mentions()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SingleNodeAggregated);

void BM_ShardedAggregated(benchmark::State& state) {
  const auto& db = Db();
  const auto shards = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto report = engine::ShardedCountryCrossReporting(db, shards);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(db.num_mentions()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ShardedAggregated)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void Print() {
  const auto& db = Db();
  const auto single = engine::CountryCrossReporting(db);
  const auto sharded = engine::ShardedCountryCrossReporting(db, 8);
  std::printf("\n=== Ablation: sharded (simulated MPI) execution ===\n");
  std::printf("8-shard reduction equals single-node result: %s\n",
              single.counts == sharded.counts ? "yes" : "NO (BUG)");
  std::printf("Time-range shards model the paper's per-period sub-database "
              "plan; the reduce step is the MPI_Allreduce equivalent.\n");
}

}  // namespace
}  // namespace gdelt::bench

GDELT_BENCH_MAIN(gdelt::bench::Print)
