// Reproduces Figure 9: histograms over sources of the minimum, average,
// median and maximum publication delay (in 15-minute intervals).
//
// Paper shape: ~half the sources have minimum delay of one interval; most
// averages fall at 2-8 hours with a slow tail months out; medians peak at
// 4-5 hours with rapid decay toward the 24 h mark; maxima cluster at the
// 24 h news cycle (96) with clear groups at a week, a month and a year.
#include "analysis/delay.hpp"
#include "common/fixture.hpp"
#include "util/strings.hpp"

namespace gdelt::bench {
namespace {

constexpr int kBins = 18;  // log2 bins up to ~1.5 years

void BM_PerSourceDelayStats(benchmark::State& state) {
  const auto& db = Db();
  for (auto _ : state) {
    auto stats = analysis::PerSourceDelayStats(db);
    benchmark::DoNotOptimize(stats);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(db.num_mentions()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PerSourceDelayStats);

void PrintHist(const char* name,
               const std::vector<std::uint64_t>& hist) {
  std::printf("  %s delay histogram (bin = [2^(k-1), 2^k) intervals):\n",
              name);
  for (std::size_t k = 0; k < hist.size(); ++k) {
    if (hist[k] == 0) continue;
    const std::uint64_t lo = k == 0 ? 0 : 1ull << (k - 1);
    std::printf("    >=%7llu  %s\n", static_cast<unsigned long long>(lo),
                WithThousands(hist[k]).c_str());
  }
}

void Print() {
  const auto& db = Db();
  const auto stats = analysis::PerSourceDelayStats(db);
  std::printf("\n=== Figure 9: per-source delay distributions ===\n");
  PrintHist("minimum",
            analysis::DelayMetricHistogram(stats, analysis::DelayMetric::kMin,
                                           kBins));
  PrintHist("average",
            analysis::DelayMetricHistogram(
                stats, analysis::DelayMetric::kAverage, kBins));
  PrintHist("median",
            analysis::DelayMetricHistogram(
                stats, analysis::DelayMetric::kMedian, kBins));
  PrintHist("maximum",
            analysis::DelayMetricHistogram(stats, analysis::DelayMetric::kMax,
                                           kBins));
  // Headline fractions the paper quotes.
  std::uint64_t min_one = 0, active = 0, max_day = 0, max_year = 0;
  for (const auto& st : stats) {
    if (st.article_count == 0) continue;
    ++active;
    if (st.min <= 1) ++min_one;
    if (st.max <= 192) ++max_day;  // max within ~the 24 h news cycle
    if (st.max >= 20000) ++max_year;
  }
  std::printf("  sources reporting something within 15 min: %.0f%% "
              "(paper: ~half)\n",
              active ? 100.0 * static_cast<double>(min_one) /
                           static_cast<double>(active)
                     : 0.0);
  std::printf("  sources whose max delay ~ 24h cycle: %.0f%%; with year-old "
              "articles: %.0f%% (paper: majority at 24h; clear week/month/"
              "year outlier groups)\n",
              active ? 100.0 * static_cast<double>(max_day) /
                           static_cast<double>(active)
                     : 0.0,
              active ? 100.0 * static_cast<double>(max_year) /
                           static_cast<double>(active)
                     : 0.0);
}

}  // namespace
}  // namespace gdelt::bench

GDELT_BENCH_MAIN(gdelt::bench::Print)
