// Ingest-vs-query contention on the streaming delta path: the ROADMAP
// item 2 proof. One ingester publishes 15-minute-style ticks on a fixed
// pace while 1/8/32 reader threads hammer the multi-accessor stats
// render (CombinedArticlesPerSource + CombinedTopSources +
// CombinedArticlesAboutCountry + CombinedMentionCount), in two modes:
//
//   mutex     the pre-RCU concurrency profile: every render and every
//             ingest serializes on one global mutex — the discipline a
//             single-lock DeltaStore forces on a torn-read-free
//             multi-accessor render.
//   snapshot  the shipped design: renders run lock-free on one acquired
//             immutable snapshot; the ingester publishes new snapshots
//             concurrently and never blocks a reader.
//
// Both modes execute identical scan code on an identical, deterministic
// dataset (stores are pre-grown with the same chunky tick history; live
// ticks are pre-built, paced, capped and tiny) — the only variable is
// the locking discipline, so the throughput gap is pure contention. The
// q/s ratio needs real hardware parallelism to open up: on >= 8 hardware
// threads mutex mode stays pinned at the serialized render rate while
// snapshot mode scales with min(readers, cores), so the 32-reader ratio
// clears 3x comfortably. On a 1-core container the modes converge to
// ~1.0x across the board — the work-conserving scheduler hands the lone
// CPU to somebody either way — which doubles as a sanity check that the
// two modes really do run the same work. Raise
// GDELT_DELTA_BENCH_TICK_MENTIONS to make live ticks chunky again and
// the mutex-mode pathologies reappear even on one core: p99 render
// latency collapses (readers stuck behind an in-flight ingest holding
// the lock) and the ingester starves (readers' convoy steals the lock),
// at the price of the two modes no longer scanning equal-size data.
//
// Knobs (see EXPERIMENTS.md):
//   GDELT_DELTA_BENCH_RENDERS        renders per reader thread     [300]
//   GDELT_DELTA_BENCH_SEED_MENTIONS  mentions pre-loaded           [20000]
//   GDELT_DELTA_BENCH_PREGROW_TICKS  chunky ticks applied pre-run  [100]
//   GDELT_DELTA_BENCH_PREGROW_TICK_MENTIONS  mentions per such tick [200]
//   GDELT_DELTA_BENCH_TICK_MENTIONS  mentions per live ingest tick [20]
//   GDELT_DELTA_BENCH_TICK_PACE_US   ingester sleep between ticks  [1000]
//   GDELT_DELTA_BENCH_MAX_TICKS      live ingest ticks per scenario [50]
//
// Writes BENCH_delta_contention.json (kernel = mutex|snapshot, threads =
// reader count; fixed work per scenario, so wall_s ratios are inverse
// throughput ratios).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/fixture.hpp"
#include "schema/countries.hpp"
#include "schema/gdelt_schema.hpp"
#include "stream/delta_store.hpp"
#include "util/sync.hpp"
#include "util/timer.hpp"

namespace gdelt::bench {
namespace {

std::size_t Knob(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? static_cast<std::size_t>(std::strtoull(v, nullptr, 10))
                      : fallback;
}

const std::size_t kSeedEvents = 2'000;
const std::size_t kSeedSources = 64;
const std::size_t kRendersPerReader = Knob("GDELT_DELTA_BENCH_RENDERS", 300);
const std::size_t kSeedMentions =
    Knob("GDELT_DELTA_BENCH_SEED_MENTIONS", 20'000);
// Both stores are pre-grown with the same chunky tick history before the
// window opens, so renders in both modes scan an identical ~100-chunk
// dataset shaped like a store that has been live all day.
const std::size_t kPregrowTicks = Knob("GDELT_DELTA_BENCH_PREGROW_TICKS", 100);
const std::size_t kPregrowTickMentions =
    Knob("GDELT_DELTA_BENCH_PREGROW_TICK_MENTIONS", 200);
// Live ticks stay small and capped: a mutex-mode run starves the
// ingester (the readers' convoy steals the lock), so any sizable live
// growth would leave the two modes scanning different dataset sizes and
// poison the q/s comparison. 50 ticks x 20 mentions is < 3% growth.
const std::size_t kMentionsPerTick =
    Knob("GDELT_DELTA_BENCH_TICK_MENTIONS", 20);
const std::size_t kTickPaceUs = Knob("GDELT_DELTA_BENCH_TICK_PACE_US", 1'000);
const std::size_t kMaxTicks = Knob("GDELT_DELTA_BENCH_MAX_TICKS", 50);
const int kReaderCounts[] = {1, 8, 32};

std::string JoinRow(const std::vector<std::string>& fields) {
  std::string row;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    row += fields[i];
    row += i + 1 < fields.size() ? '\t' : '\n';
  }
  return row;
}

std::string EventRow(std::uint64_t gid, bool usa) {
  std::vector<std::string> f(kEventFieldCount);
  f[Index(EventField::kGlobalEventId)] = std::to_string(gid);
  f[Index(EventField::kDateAdded)] = "20240101000000";
  f[Index(EventField::kActionGeoCountryCode)] = usa ? "US" : "FR";
  return JoinRow(f);
}

std::string MentionRow(std::uint64_t gid, const std::string& domain) {
  std::vector<std::string> f(kMentionFieldCount);
  f[Index(MentionField::kGlobalEventId)] = std::to_string(gid);
  f[Index(MentionField::kMentionTimeDate)] = "20240101001500";
  f[Index(MentionField::kMentionSourceName)] = domain;
  return JoinRow(f);
}

/// `count` tick payloads of `mentions_per_tick` mentions each, built once
/// so CSV string assembly never competes with the readers for CPU inside
/// the measured window.
std::vector<std::string> BuildTicks(std::size_t count,
                                    std::size_t mentions_per_tick) {
  std::vector<std::string> ticks(count);
  for (std::size_t t = 0; t < count; ++t) {
    for (std::size_t m = 0; m < mentions_per_tick; ++m) {
      ticks[t] += MentionRow(
          1'000'000 + (t * mentions_per_tick + m) % kSeedEvents,
          "s" + std::to_string(m % kSeedSources) + ".com");
    }
  }
  return ticks;
}

/// Fresh store with the same deterministic seed data and chunky
/// pre-grown tick history for every scenario, so both modes render over
/// an identical dataset shape.
void Seed(stream::DeltaStore& delta,
          const std::vector<std::string>& pregrow_ticks) {
  std::string events;
  for (std::size_t e = 0; e < kSeedEvents; ++e) {
    events += EventRow(1'000'000 + e, (e % 2) == 0);
  }
  delta.IngestEventsCsv(events);
  std::string mentions;
  for (std::size_t m = 0; m < kSeedMentions; ++m) {
    mentions += MentionRow(1'000'000 + m % kSeedEvents,
                           "s" + std::to_string(m % kSeedSources) + ".com");
  }
  delta.IngestMentionsCsv(mentions);
  for (const std::string& tick : pregrow_ticks) {
    delta.IngestMentionsCsv(tick);
  }
}

/// The multi-accessor stats render under test: one snapshot, four reads.
std::uint64_t RenderOnce(const stream::DeltaStore& delta) {
  const auto snap = delta.Acquire();
  std::uint64_t sink = snap->CombinedMentionCount();
  const auto per_source = snap->CombinedArticlesPerSource();
  sink += per_source.empty() ? 0 : per_source[0];
  const auto top = snap->CombinedTopSources(10);
  sink += top.empty() ? 0 : top[0];
  sink += snap->CombinedArticlesAboutCountry(country::kUSA);
  return sink;
}

struct ScenarioResult {
  double wall_s = 0.0;
  std::uint64_t ticks = 0;  ///< ingest ticks published inside the window
  std::vector<double> latencies_ms;
};

/// Runs one (mode, readers) scenario on a freshly seeded store. In mutex
/// mode `contention_mu` serializes every render and every ingest; in
/// snapshot mode it is never taken. The ingest schedule (payloads, pace,
/// cap) is identical across modes.
ScenarioResult RunScenario(bool use_mutex, int readers,
                           const std::vector<std::string>& pregrow_ticks,
                           const std::vector<std::string>& tick_payloads) {
  stream::DeltaStore delta(nullptr);
  Seed(delta, pregrow_ticks);
  sync::Mutex contention_mu;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> ticks{0};

  std::thread ingester([&] {
    for (std::size_t tick = 0;
         tick < kMaxTicks && !stop.load(std::memory_order_acquire); ++tick) {
      if (use_mutex) {
        sync::MutexLock lock(contention_mu);
        delta.IngestMentionsCsv(tick_payloads[tick]);
      } else {
        delta.IngestMentionsCsv(tick_payloads[tick]);
      }
      ticks.store(tick + 1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::microseconds(kTickPaceUs));
    }
  });

  std::vector<std::vector<double>> per_reader(
      static_cast<std::size_t>(readers));
  std::vector<std::thread> threads;
  std::atomic<std::uint64_t> sink{0};
  WallTimer timer;
  for (int r = 0; r < readers; ++r) {
    threads.emplace_back([&, r] {
      auto& latencies = per_reader[static_cast<std::size_t>(r)];
      latencies.reserve(kRendersPerReader);
      for (std::size_t i = 0; i < kRendersPerReader; ++i) {
        WallTimer render_timer;
        std::uint64_t v;
        if (use_mutex) {
          sync::MutexLock lock(contention_mu);
          v = RenderOnce(delta);
        } else {
          v = RenderOnce(delta);
        }
        sink.fetch_add(v, std::memory_order_relaxed);
        latencies.push_back(render_timer.ElapsedSeconds() * 1e3);
      }
    });
  }
  for (auto& t : threads) t.join();
  ScenarioResult result;
  result.wall_s = timer.ElapsedSeconds();
  result.ticks = ticks.load(std::memory_order_relaxed);
  stop.store(true, std::memory_order_release);
  ingester.join();
  for (auto& v : per_reader) {
    result.latencies_ms.insert(result.latencies_ms.end(), v.begin(), v.end());
  }
  return result;
}

void Print() {
  const std::vector<std::string> pregrow_ticks =
      BuildTicks(kPregrowTicks, kPregrowTickMentions);
  const std::vector<std::string> tick_payloads =
      BuildTicks(kMaxTicks, kMentionsPerTick);
  BenchJsonWriter json("delta_contention");
  std::printf(
      "--- delta ingest-vs-query contention (%zu renders/reader, 1 paced "
      "ingester, %zu seed + %zu pre-grown mentions in %zu chunks, "
      "%u hw threads) ---\n",
      kRendersPerReader, kSeedMentions, kPregrowTicks * kPregrowTickMentions,
      kPregrowTicks, std::thread::hardware_concurrency());
  for (const int readers : kReaderCounts) {
    const auto mutex_run =
        RunScenario(/*use_mutex=*/true, readers, pregrow_ticks, tick_payloads);
    const auto snap_run = RunScenario(/*use_mutex=*/false, readers,
                                      pregrow_ticks, tick_payloads);
    json.RecordLatencies("mutex", readers, mutex_run.wall_s,
                         mutex_run.latencies_ms);
    json.RecordLatencies("snapshot", readers, snap_run.wall_s,
                         snap_run.latencies_ms);
    const double total =
        static_cast<double>(readers) * static_cast<double>(kRendersPerReader);
    const double mutex_qps =
        mutex_run.wall_s > 0.0 ? total / mutex_run.wall_s : 0.0;
    const double snap_qps =
        snap_run.wall_s > 0.0 ? total / snap_run.wall_s : 0.0;
    std::printf("  %2d readers: mutex %9.0f q/s (%.3fs, %llu ticks)  "
                "snapshot %9.0f q/s (%.3fs, %llu ticks)  speedup %.2fx\n",
                readers, mutex_qps, mutex_run.wall_s,
                static_cast<unsigned long long>(mutex_run.ticks), snap_qps,
                snap_run.wall_s,
                static_cast<unsigned long long>(snap_run.ticks),
                mutex_qps > 0.0 ? snap_qps / mutex_qps : 0.0);
  }
}

}  // namespace
}  // namespace gdelt::bench

GDELT_BENCH_MAIN(gdelt::bench::Print)
