// Serving throughput: requests/sec through the gdelt_serve request path,
// cold (every request renders against the database) vs cached (the LRU
// result cache answers without touching a kernel).
//
// The server runs in-process on an ephemeral loopback port with real
// sockets and real worker admission, so the measured path is exactly what
// a deployed daemon executes — protocol parse, cache lookup, scheduler
// hop, render, response framing.
#include <thread>
#include <vector>

#include "common/fixture.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "trace/trace.hpp"
#include "util/timer.hpp"

namespace gdelt::bench {
namespace {

constexpr int kClients = 4;
constexpr int kRequestsPerClient = 50;
const char* const kRequestLine = R"({"query":"top-sources","top":5})";

serve::ServerOptions ServeOptions(std::size_t cache_entries) {
  serve::ServerOptions options;
  options.scheduler.workers = 2;
  options.cache_entries = cache_entries;
  return options;
}

/// Sends `count` copies of the canonical request, asserting transport ok.
void Hammer(int port, int count) {
  auto client = serve::LineClient::Connect("127.0.0.1", port);
  if (!client.ok()) return;
  for (int i = 0; i < count; ++i) {
    const auto response = client->RoundTrip(kRequestLine);
    if (!response.ok()) return;
  }
}

/// Wall seconds for kClients concurrent clients to push their requests.
double MeasureOnce(serve::Server& server) {
  WallTimer timer;
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back(
        [&server] { Hammer(server.port(), kRequestsPerClient); });
  }
  for (auto& t : threads) t.join();
  return timer.ElapsedSeconds();
}

void BM_ServeRoundTripCold(benchmark::State& state) {
  serve::Server server(Db(), nullptr, ServeOptions(/*cache_entries=*/0));
  if (!server.Start().ok()) return;
  auto client = serve::LineClient::Connect("127.0.0.1", server.port());
  if (!client.ok()) return;
  for (auto _ : state) {
    auto response = client->RoundTrip(kRequestLine);
    benchmark::DoNotOptimize(response);
  }
  state.SetItemsProcessed(state.iterations());
  server.Stop();
}
BENCHMARK(BM_ServeRoundTripCold);

void BM_ServeRoundTripCached(benchmark::State& state) {
  serve::Server server(Db(), nullptr, ServeOptions(/*cache_entries=*/64));
  if (!server.Start().ok()) return;
  auto client = serve::LineClient::Connect("127.0.0.1", server.port());
  if (!client.ok()) return;
  (void)client->RoundTrip(kRequestLine);  // prime the cache
  for (auto _ : state) {
    auto response = client->RoundTrip(kRequestLine);
    benchmark::DoNotOptimize(response);
  }
  state.SetItemsProcessed(state.iterations());
  server.Stop();
}
BENCHMARK(BM_ServeRoundTripCached);

void Print() {
  const int total = kClients * kRequestsPerClient;
  BenchJsonWriter writer("serve_throughput");

  serve::Server cold(Db(), nullptr, ServeOptions(/*cache_entries=*/0));
  if (!cold.Start().ok()) return;
  const double cold_s = MeasureOnce(cold);
  cold.Stop();
  writer.Record("cold_" + std::to_string(total) + "req", kClients, cold_s);

  serve::Server cached(Db(), nullptr, ServeOptions(/*cache_entries=*/64));
  if (!cached.Start().ok()) return;
  Hammer(cached.port(), 1);  // prime
  const double cached_s = MeasureOnce(cached);
  cached.Stop();
  writer.Record("cached_" + std::to_string(total) + "req", kClients,
                cached_s);

  // Tracing overhead: the same cold workload with span tracing armed
  // (every TRACE_SPAN records into the global ring). The disabled run
  // above is the baseline; the acceptance bar is that *compiled-in but
  // disabled* tracing costs nothing, and even armed tracing stays cheap.
  trace::Reset();
  trace::SetEnabled(true);
  serve::Server traced(Db(), nullptr, ServeOptions(/*cache_entries=*/0));
  if (!traced.Start().ok()) {
    trace::SetEnabled(false);
    return;
  }
  const double traced_s = MeasureOnce(traced);
  traced.Stop();
  trace::SetEnabled(false);
  const std::uint64_t spans_recorded = trace::RecordedCount();
  trace::Reset();
  writer.Record("cold_traced_" + std::to_string(total) + "req", kClients,
                traced_s);

  std::printf("\n=== Serving throughput (%d clients x %d requests) ===\n",
              kClients, kRequestsPerClient);
  std::printf("  cold          : %8.1f req/s  (%.3fs total)\n",
              total / cold_s, cold_s);
  std::printf("  cached        : %8.1f req/s  (%.3fs total)\n",
              total / cached_s, cached_s);
  std::printf("  speedup       : %.1fx\n", cold_s / cached_s);
  std::printf("  cold + tracing: %8.1f req/s  (%.3fs total, %llu spans, "
              "%+.1f%% vs cold)\n",
              total / traced_s, traced_s,
              static_cast<unsigned long long>(spans_recorded),
              (traced_s / cold_s - 1.0) * 100.0);
}

}  // namespace
}  // namespace gdelt::bench

GDELT_BENCH_MAIN(gdelt::bench::Print)
