// Serving throughput: requests/sec through the gdelt_serve request path,
// cold (every request renders against the database) vs cached (the LRU
// result cache answers without touching a kernel).
//
// The server runs in-process on an ephemeral loopback port with real
// sockets and real worker admission, so the measured path is exactly what
// a deployed daemon executes — protocol parse, cache lookup, scheduler
// hop, render, response framing.
#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "common/fixture.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "trace/trace.hpp"
#include "util/sync.hpp"
#include "util/timer.hpp"

namespace gdelt::bench {
namespace {

constexpr int kClients = 4;
constexpr int kRequestsPerClient = 50;
const char* const kRequestLine = R"({"query":"top-sources","top":5})";
/// A saturating batch query: full-table co-reporting over the top
/// sources (classified kBatch by the scheduler).
const char* const kBatchRequestLine = R"({"query":"coreport","top":16})";

serve::ServerOptions ServeOptions(std::size_t cache_entries) {
  serve::ServerOptions options;
  options.scheduler.workers = 2;
  options.cache_entries = cache_entries;
  return options;
}

/// Sends `count` copies of the canonical request, asserting transport
/// ok; appends each round-trip's latency to `latencies_ms` when given.
void Hammer(int port, int count, std::vector<double>* latencies_ms = nullptr) {
  auto client = serve::LineClient::Connect("127.0.0.1", port);
  if (!client.ok()) return;
  for (int i = 0; i < count; ++i) {
    WallTimer timer;
    const auto response = client->RoundTrip(kRequestLine);
    if (!response.ok()) return;
    if (latencies_ms != nullptr) {
      latencies_ms->push_back(timer.ElapsedSeconds() * 1e3);
    }
  }
}

/// Wall seconds for kClients concurrent clients to push their requests;
/// fills `latencies_ms` with every request's round-trip latency.
double MeasureOnce(serve::Server& server, std::vector<double>& latencies_ms) {
  WallTimer timer;
  std::vector<std::vector<double>> per_client(kClients);
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&server, &per_client, c] {
      Hammer(server.port(), kRequestsPerClient, &per_client[c]);
    });
  }
  for (auto& t : threads) t.join();
  const double wall = timer.ElapsedSeconds();
  for (auto& v : per_client) {
    latencies_ms.insert(latencies_ms.end(), v.begin(), v.end());
  }
  return wall;
}

/// Interactive latency under batch load: `background` connections loop
/// full-table co-reporting requests while one foreground client sends
/// `count` cheap top-sources requests; returns the foreground latencies.
/// The result cache is off, so every request renders.
std::vector<double> MeasureInteractiveUnderLoad(bool use_morsel_pool,
                                                int count) {
  serve::ServerOptions options = ServeOptions(/*cache_entries=*/0);
  // One execution worker: the contrast under test is pure scheduling —
  // FIFO behind the batch scan vs the priority lane passing it.
  options.scheduler.workers = 1;
  options.scheduler.use_morsel_pool = use_morsel_pool;
  serve::Server server(Db(), nullptr, options);
  if (!server.Start().ok()) return {};

  std::atomic<bool> stop{false};
  constexpr int kBackground = 2;
  std::vector<std::thread> background;
  for (int b = 0; b < kBackground; ++b) {
    background.emplace_back([&server, &stop] {
      auto client = serve::LineClient::Connect("127.0.0.1", server.port());
      if (!client.ok()) return;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto response = client->RoundTrip(kBatchRequestLine);
        if (!response.ok()) return;
      }
    });
  }

  std::vector<double> latencies_ms;
  {
    auto client = serve::LineClient::Connect("127.0.0.1", server.port());
    if (client.ok()) {
      for (int i = 0; i < count; ++i) {
        WallTimer timer;
        const auto response = client->RoundTrip(kRequestLine);
        if (!response.ok()) break;
        latencies_ms.push_back(timer.ElapsedSeconds() * 1e3);
      }
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : background) t.join();
  server.Stop();
  return latencies_ms;
}

/// Doomed-flood: every other request is a full-table co-reporting scan
/// with a 1ms deadline — guaranteed dead on arrival — interleaved with
/// cheap interactive requests ("goodput"). With cooperative cancellation
/// the workers notice the expired deadline at dequeue (or a few morsels
/// in) and move on; without it every doomed scan runs to completion
/// before its timeout error is even written, starving the good half.
struct FloodResult {
  double wall_s = 0.0;
  int good_ok = 0;
  std::vector<double> good_latencies_ms;
};

FloodResult MeasureDoomedFlood(bool cancellation) {
  const char* const kDoomedLine =
      R"({"query":"coreport","top":64,"timeout_ms":1})";
  serve::ServerOptions options = ServeOptions(/*cache_entries=*/0);
  options.cancellation = cancellation;
  serve::Server server(Db(), nullptr, options);
  FloodResult result;
  if (!server.Start().ok()) return result;

  // As many clients as workers: a doomed request usually meets an idle
  // worker, clears the dequeue-time deadline check (which both modes
  // share — it predates cancellation) and *starts the scan*. What this
  // measures is the mid-scan contrast: with cancellation the armed token
  // trips at the first morsel poll; without it the worker serves the
  // full dead scan before the timeout error is written.
  constexpr int kFloodClients = 2;
  constexpr int kPerClient = 30;  // 15 doomed + 15 good each
  std::atomic<int> good_ok{0};
  std::vector<std::vector<double>> per_client(kFloodClients);
  WallTimer timer;
  std::vector<std::thread> threads;
  for (int c = 0; c < kFloodClients; ++c) {
    threads.emplace_back([&server, &good_ok, &per_client, kDoomedLine, c] {
      auto client = serve::LineClient::Connect("127.0.0.1", server.port());
      if (!client.ok()) return;
      for (int i = 0; i < kPerClient; ++i) {
        if (i % 2 == 0) {
          // Doomed half: the response is always a timeout/cancelled
          // error; only how long the server burns on it differs.
          if (!client->RoundTrip(kDoomedLine).ok()) return;
          continue;
        }
        WallTimer request_timer;
        const auto response = client->RoundTrip(kRequestLine);
        if (!response.ok()) return;
        if (response->find("\"ok\":true") != std::string::npos) {
          good_ok.fetch_add(1, std::memory_order_relaxed);
          per_client[c].push_back(request_timer.ElapsedSeconds() * 1e3);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  result.wall_s = timer.ElapsedSeconds();
  server.Stop();
  result.good_ok = good_ok.load();
  for (auto& v : per_client) {
    result.good_latencies_ms.insert(result.good_latencies_ms.end(),
                                    v.begin(), v.end());
  }
  return result;
}

void BM_ServeRoundTripCold(benchmark::State& state) {
  serve::Server server(Db(), nullptr, ServeOptions(/*cache_entries=*/0));
  if (!server.Start().ok()) return;
  auto client = serve::LineClient::Connect("127.0.0.1", server.port());
  if (!client.ok()) return;
  for (auto _ : state) {
    auto response = client->RoundTrip(kRequestLine);
    benchmark::DoNotOptimize(response);
  }
  state.SetItemsProcessed(state.iterations());
  server.Stop();
}
BENCHMARK(BM_ServeRoundTripCold);

void BM_ServeRoundTripCached(benchmark::State& state) {
  serve::Server server(Db(), nullptr, ServeOptions(/*cache_entries=*/64));
  if (!server.Start().ok()) return;
  auto client = serve::LineClient::Connect("127.0.0.1", server.port());
  if (!client.ok()) return;
  (void)client->RoundTrip(kRequestLine);  // prime the cache
  for (auto _ : state) {
    auto response = client->RoundTrip(kRequestLine);
    benchmark::DoNotOptimize(response);
  }
  state.SetItemsProcessed(state.iterations());
  server.Stop();
}
BENCHMARK(BM_ServeRoundTripCached);

double Percentile(std::vector<double> ms, double p) {
  if (ms.empty()) return 0.0;
  std::sort(ms.begin(), ms.end());
  auto at = static_cast<std::size_t>(p * static_cast<double>(ms.size()));
  return ms[std::min(at, ms.size() - 1)];
}

void Print() {
  const int total = kClients * kRequestsPerClient;
  BenchJsonWriter writer("serve_throughput");

  std::vector<double> cold_lat;
  serve::Server cold(Db(), nullptr, ServeOptions(/*cache_entries=*/0));
  if (!cold.Start().ok()) return;
  const double cold_s = MeasureOnce(cold, cold_lat);
  cold.Stop();
  writer.RecordLatencies("cold_" + std::to_string(total) + "req", kClients,
                         cold_s, cold_lat);

  std::vector<double> cached_lat;
  serve::Server cached(Db(), nullptr, ServeOptions(/*cache_entries=*/64));
  if (!cached.Start().ok()) return;
  Hammer(cached.port(), 1);  // prime
  const double cached_s = MeasureOnce(cached, cached_lat);
  cached.Stop();
  writer.RecordLatencies("cached_" + std::to_string(total) + "req", kClients,
                         cached_s, cached_lat);

  // Tracing overhead: the same cold workload with span tracing armed
  // (every TRACE_SPAN records into the global ring). The disabled run
  // above is the baseline; the acceptance bar is that *compiled-in but
  // disabled* tracing costs nothing, and even armed tracing stays cheap.
  trace::Reset();
  trace::SetEnabled(true);
  serve::Server traced(Db(), nullptr, ServeOptions(/*cache_entries=*/0));
  if (!traced.Start().ok()) {
    trace::SetEnabled(false);
    return;
  }
  std::vector<double> traced_lat;
  const double traced_s = MeasureOnce(traced, traced_lat);
  traced.Stop();
  trace::SetEnabled(false);
  const std::uint64_t spans_recorded = trace::RecordedCount();
  trace::Reset();
  writer.RecordLatencies("cold_traced_" + std::to_string(total) + "req",
                         kClients, traced_s, traced_lat);

  // Interactive latency under a saturating batch query: the morsel-pool
  // scheduler (priority lane + shared pool) vs the thread-per-query
  // baseline (FIFO queue, private OpenMP teams). Same load, same
  // requests; the p99 gap is the scheduling win the ISSUE asks for.
  constexpr int kInteractiveCount = 200;
  const auto pool_lat =
      MeasureInteractiveUnderLoad(/*use_morsel_pool=*/true,
                                  kInteractiveCount);
  const auto baseline_lat =
      MeasureInteractiveUnderLoad(/*use_morsel_pool=*/false,
                                  kInteractiveCount);
  writer.RecordLatencies("interactive_under_batch_morsel_pool", 1,
                         /*wall_seconds=*/0.0, pool_lat);
  writer.RecordLatencies("interactive_under_batch_thread_per_query", 1,
                         /*wall_seconds=*/0.0, baseline_lat);

  // Doomed-flood: goodput with cooperative cancellation on vs off. The
  // acceptance bar (ISSUE 8) is >=2x goodput with cancellation on.
  const auto flood_on = MeasureDoomedFlood(/*cancellation=*/true);
  const auto flood_off = MeasureDoomedFlood(/*cancellation=*/false);
  writer.RecordLatencies("doomed_flood_cancellation_on", 2, flood_on.wall_s,
                         flood_on.good_latencies_ms);
  writer.RecordLatencies("doomed_flood_cancellation_off", 2, flood_off.wall_s,
                         flood_off.good_latencies_ms);

  std::printf("\n=== Serving throughput (%d clients x %d requests) ===\n",
              kClients, kRequestsPerClient);
  std::printf("  cold          : %8.1f req/s  (%.3fs total, p50 %.1fms "
              "p99 %.1fms)\n",
              total / cold_s, cold_s, Percentile(cold_lat, 0.50),
              Percentile(cold_lat, 0.99));
  std::printf("  cached        : %8.1f req/s  (%.3fs total, p50 %.1fms "
              "p99 %.1fms)\n",
              total / cached_s, cached_s, Percentile(cached_lat, 0.50),
              Percentile(cached_lat, 0.99));
  std::printf("  speedup       : %.1fx\n", cold_s / cached_s);
  std::printf("  cold + tracing: %8.1f req/s  (%.3fs total, %llu spans, "
              "%+.1f%% vs cold)\n",
              total / traced_s, traced_s,
              static_cast<unsigned long long>(spans_recorded),
              (traced_s / cold_s - 1.0) * 100.0);
  std::printf("\n--- interactive p99 under full-table co-reporting load "
              "(%d requests, 1 worker) ---\n",
              kInteractiveCount);
  std::printf("  morsel pool      : p50 %7.1fms  p95 %7.1fms  p99 %7.1fms\n",
              Percentile(pool_lat, 0.50), Percentile(pool_lat, 0.95),
              Percentile(pool_lat, 0.99));
  std::printf("  thread-per-query : p50 %7.1fms  p95 %7.1fms  p99 %7.1fms\n",
              Percentile(baseline_lat, 0.50), Percentile(baseline_lat, 0.95),
              Percentile(baseline_lat, 0.99));
  const double p99_pool = Percentile(pool_lat, 0.99);
  const double p99_base = Percentile(baseline_lat, 0.99);
  if (p99_pool > 0.0 && p99_base > 0.0) {
    std::printf("  p99 improvement  : %.2fx\n", p99_base / p99_pool);
  }

  std::printf("\n--- doomed flood: 50%% of requests carry a 1ms deadline "
              "onto a full-table scan ---\n");
  const double goodput_on =
      flood_on.wall_s > 0.0 ? flood_on.good_ok / flood_on.wall_s : 0.0;
  const double goodput_off =
      flood_off.wall_s > 0.0 ? flood_off.good_ok / flood_off.wall_s : 0.0;
  std::printf("  cancellation on  : %7.1f good req/s  (%d ok in %.3fs, "
              "p99 %.1fms)\n",
              goodput_on, flood_on.good_ok, flood_on.wall_s,
              Percentile(flood_on.good_latencies_ms, 0.99));
  std::printf("  cancellation off : %7.1f good req/s  (%d ok in %.3fs, "
              "p99 %.1fms)\n",
              goodput_off, flood_off.good_ok, flood_off.wall_s,
              Percentile(flood_off.good_latencies_ms, 0.99));
  if (goodput_on > 0.0 && goodput_off > 0.0) {
    std::printf("  goodput gain     : %.2fx\n", goodput_on / goodput_off);
  }
}

}  // namespace
}  // namespace gdelt::bench

GDELT_BENCH_MAIN(gdelt::bench::Print)
