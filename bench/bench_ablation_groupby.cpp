// Ablation: aggregation strategy for the per-source article count —
// per-thread histogram merge (the engine's choice) vs hash-map group-by
// vs sort-based group-by (DESIGN.md section 5).
#include <unordered_map>

#include "common/fixture.hpp"
#include "parallel/parallel.hpp"
#include "parallel/sort.hpp"

namespace gdelt::bench {
namespace {

void BM_GroupByHistogram(benchmark::State& state) {
  const auto& db = Db();
  const auto src = db.mention_source_id();
  for (auto _ : state) {
    auto counts = ParallelHistogram(src.size(), db.num_sources(),
                                    [&](std::size_t i) -> std::size_t {
                                      return src[i];
                                    });
    benchmark::DoNotOptimize(counts);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(src.size()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_GroupByHistogram);

void BM_GroupByHashMap(benchmark::State& state) {
  const auto& db = Db();
  const auto src = db.mention_source_id();
  for (auto _ : state) {
    std::unordered_map<std::uint32_t, std::uint64_t> counts;
    counts.reserve(db.num_sources());
    for (const std::uint32_t s : src) ++counts[s];
    benchmark::DoNotOptimize(counts);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(src.size()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_GroupByHashMap);

void BM_GroupBySort(benchmark::State& state) {
  const auto& db = Db();
  const auto src = db.mention_source_id();
  for (auto _ : state) {
    std::vector<std::uint32_t> keys(src.begin(), src.end());
    ParallelSort(keys);
    // Run-length encode the sorted keys.
    std::vector<std::pair<std::uint32_t, std::uint64_t>> counts;
    counts.reserve(db.num_sources());
    for (std::size_t i = 0; i < keys.size();) {
      std::size_t j = i;
      while (j < keys.size() && keys[j] == keys[i]) ++j;
      counts.emplace_back(keys[i], j - i);
      i = j;
    }
    benchmark::DoNotOptimize(counts);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(src.size()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_GroupBySort);

void Print() {
  std::printf("\n=== Ablation: group-by strategy ===\n");
  std::printf("Expected ordering on dense low-cardinality keys: histogram "
              "< hash-map < sort (the engine uses the per-thread histogram "
              "merge; sort-based wins only for very high cardinality).\n");
}

}  // namespace
}  // namespace gdelt::bench

GDELT_BENCH_MAIN(gdelt::bench::Print)
