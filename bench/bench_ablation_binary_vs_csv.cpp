// Ablation: the paper's core architectural claim — convert once to an
// indexed binary format, then query from memory, instead of re-parsing
// the CSV archives per query (Section IV).
//
// Compares (a) loading the binary tables + running the per-source count,
// against (b) unzipping + parsing every mentions archive and computing the
// same counts directly from the text — what a "query the raw data" system
// pays on every single query.
#include <unordered_map>

#include "common/fixture.hpp"
#include "convert/master_list.hpp"
#include "csv/tsv.hpp"
#include "io/file.hpp"
#include "io/zipstore.hpp"
#include "schema/gdelt_schema.hpp"

namespace gdelt::bench {
namespace {

void BM_QueryFromBinary(benchmark::State& state) {
  for (auto _ : state) {
    // Includes the (amortizable) load: full table read + index build.
    auto db = engine::Database::Load(DbDir());
    if (!db.ok()) std::abort();
    auto counts = engine::ArticlesPerSource(*db);
    benchmark::DoNotOptimize(counts);
  }
}
BENCHMARK(BM_QueryFromBinary)->Unit(benchmark::kMillisecond)->Iterations(2);

void BM_QueryFromBinaryLoaded(benchmark::State& state) {
  // The steady-state cost once the database is resident (every query after
  // the first).
  const auto& db = Db();
  for (auto _ : state) {
    auto counts = engine::ArticlesPerSource(db);
    benchmark::DoNotOptimize(counts);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(db.num_mentions()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_QueryFromBinaryLoaded);

std::uint64_t CountFromRawCsv() {
  auto master_text = ReadWholeFile(RawDir() + "/masterfilelist.txt");
  if (!master_text.ok()) std::abort();
  const auto master = convert::ParseMasterList(*master_text);
  std::unordered_map<std::string, std::uint64_t> counts;
  std::uint64_t rows = 0;
  for (const auto& entry : master.entries) {
    if (entry.kind != convert::ArchiveKind::kMentions) continue;
    auto bytes = ReadWholeFile(RawDir() + "/" + entry.file_name);
    if (!bytes.ok()) continue;  // injected missing archives
    auto zip = ZipReader::Open(*bytes);
    if (!zip.ok()) continue;
    auto csv = zip->ReadEntry(std::size_t{0});
    if (!csv.ok()) continue;
    RowReader reader(*csv, kMentionFieldCount);
    const std::vector<std::string_view>* fields = nullptr;
    while (reader.Next(fields)) {
      ++counts[std::string(
          (*fields)[Index(MentionField::kMentionSourceName)])];
      ++rows;
    }
  }
  return rows;
}

void BM_QueryFromRawCsv(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountFromRawCsv());
  }
}
BENCHMARK(BM_QueryFromRawCsv)->Unit(benchmark::kMillisecond)->Iterations(1);

void Print() {
  std::printf("\n=== Ablation: binary column store vs raw CSV re-parse ===\n");
  std::printf("The binary path pays load once per session and then scans "
              "flat arrays; the raw path re-reads, unzips and re-tokenizes "
              "every archive per query. The paper's design converts once "
              "for exactly this reason (Section IV).\n");
}

}  // namespace
}  // namespace gdelt::bench

GDELT_BENCH_MAIN(gdelt::bench::Print)
