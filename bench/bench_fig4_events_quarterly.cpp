// Reproduces Figure 4: number of events observed by quarter.
//
// Paper shape: roughly stable with a slight decrease over 2018-2019; the
// first point (2015Q1 starting 18 Feb) is a partial quarter.
#include "common/fixture.hpp"

namespace gdelt::bench {
namespace {

void BM_EventsPerQuarter(benchmark::State& state) {
  const auto& db = Db();
  for (auto _ : state) {
    auto series = engine::EventsPerQuarter(db);
    benchmark::DoNotOptimize(series);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(db.num_events()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EventsPerQuarter);

void Print() {
  const auto series = engine::EventsPerQuarter(Db());
  std::printf("\n=== Figure 4: events per quarter ===\n");
  PrintQuarterSeries("", series);
  if (series.values.size() >= 8) {
    const double early = static_cast<double>(series.values[4]);
    const double late =
        static_cast<double>(series.values[series.values.size() - 2]);
    std::printf("late/early ratio: %.2f (paper: slight decline in "
                "2018-2019)\n", late / early);
  }
}

}  // namespace
}  // namespace gdelt::bench

GDELT_BENCH_MAIN(gdelt::bench::Print)
