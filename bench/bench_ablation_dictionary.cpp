// Ablation: dictionary-encoded source column vs raw string comparison
// (DESIGN.md section 5).
//
// The converter replaces every MentionSourceName with a dense u32 id.
// This bench measures the per-source counting scan both ways: integer ids
// against materialized strings, quantifying why the binary format encodes
// low-cardinality strings as dictionary ids.
#include <string>
#include <unordered_map>
#include <vector>

#include "common/fixture.hpp"
#include "parallel/parallel.hpp"

namespace gdelt::bench {
namespace {

/// Materialized raw-string column (what scanning CSV-shaped data means).
const std::vector<std::string>& RawStrings() {
  static const std::vector<std::string> strings = [] {
    const auto& db = Db();
    std::vector<std::string> out;
    out.reserve(db.num_mentions());
    for (const std::uint32_t id : db.mention_source_id()) {
      out.emplace_back(db.source_domain(id));
    }
    return out;
  }();
  return strings;
}

void BM_CountByDictionaryId(benchmark::State& state) {
  const auto& db = Db();
  for (auto _ : state) {
    auto counts = engine::ArticlesPerSource(db);
    benchmark::DoNotOptimize(counts);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(db.num_mentions()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CountByDictionaryId);

void BM_CountByRawString(benchmark::State& state) {
  const auto& strings = RawStrings();
  for (auto _ : state) {
    std::unordered_map<std::string_view, std::uint64_t> counts;
    for (const auto& s : strings) {
      ++counts[std::string_view(s)];
    }
    benchmark::DoNotOptimize(counts);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(strings.size()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CountByRawString);

void Print() {
  const auto& db = Db();
  std::size_t string_bytes = 0;
  for (const auto& s : RawStrings()) string_bytes += s.size();
  std::printf("\n=== Ablation: dictionary encoding ===\n");
  std::printf("raw string column: %zu MiB; dictionary-id column: %zu MiB "
              "(%u distinct sources)\n",
              string_bytes / (1024 * 1024),
              db.num_mentions() * 4 / (1024 * 1024), db.num_sources());
}

}  // namespace
}  // namespace gdelt::bench

GDELT_BENCH_MAIN(gdelt::bench::Print)
