// Reproduces Table IV: the follow-reporting matrix f_ij for the ten most
// productive news websites, plus the column sums.
//
// Paper shape: values balanced across the top publishers (each site is
// roughly as often leader as follower), diagonal (self-follow-up) of the
// same magnitude as the off-diagonal, large column sums showing that most
// of a top publisher's articles follow earlier coverage inside the group.
#include "analysis/followreport.hpp"
#include "common/fixture.hpp"

namespace gdelt::bench {
namespace {

void BM_FollowReportingTop10(benchmark::State& state) {
  const auto& db = Db();
  const auto top = engine::TopSourcesByArticles(db, 10);
  for (auto _ : state) {
    auto matrix = analysis::ComputeFollowReporting(db, top);
    benchmark::DoNotOptimize(matrix);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(db.num_mentions()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FollowReportingTop10);

void Print() {
  const auto& db = Db();
  const auto top = engine::TopSourcesByArticles(db, 10);
  const auto m = analysis::ComputeFollowReporting(db, top);
  std::printf("\n=== Table IV: follow-reporting matrix (top 10) ===\n");
  std::printf("  rows = first publisher, cols = follow-up publisher\n  %-4s",
              "");
  for (std::size_t j = 0; j < m.n; ++j) {
    std::printf(" %6c", static_cast<char>('A' + j));
  }
  std::printf("\n");
  for (std::size_t i = 0; i < m.n; ++i) {
    std::printf("  %-4c", static_cast<char>('A' + i));
    for (std::size_t j = 0; j < m.n; ++j) {
      std::printf(" %6.3f", m.F(i, j));
    }
    std::printf("\n");
  }
  std::printf("  %-4s", "Sum");
  for (std::size_t j = 0; j < m.n; ++j) {
    std::printf(" %6.3f", m.ColumnSum(j));
  }
  std::printf("\n");
  for (std::size_t s = 0; s < top.size(); ++s) {
    std::printf("  %c = %s\n", static_cast<char>('A' + s),
                std::string(db.source_domain(top[s])).c_str());
  }
  // Balance metric: max/min of off-diagonal among the top 5 (paper notes
  // the top-5 block is "relatively balanced").
  double lo = 1.0;
  double hi = 0.0;
  for (std::size_t i = 0; i < 5 && i < m.n; ++i) {
    for (std::size_t j = 0; j < 5 && j < m.n; ++j) {
      if (i == j) continue;
      lo = std::min(lo, m.F(i, j));
      hi = std::max(hi, m.F(i, j));
    }
  }
  std::printf("top-5 off-diagonal spread: %.3f..%.3f (paper: 0.068..0.093, "
              "balanced — no fixed leader/follower direction)\n", lo, hi);
}

}  // namespace
}  // namespace gdelt::bench

GDELT_BENCH_MAIN(gdelt::bench::Print)
