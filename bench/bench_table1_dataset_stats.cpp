// Reproduces Table I: general dataset statistics.
//
// Paper (full GDELT 2.0, 2015-02-18..2019-12-31):
//   20,996 sources / 324.6 M events / 168,266 capture intervals /
//   1.09 B articles / min 1, max 5,234 articles per event / 3.36 weighted
//   average articles per event.
// This reproduction runs on the synthetic dataset (~1/10 source scale);
// the invariants to compare are min = 1, weighted average ~3.3, and a
// max ~3 orders of magnitude above the typical event.
#include "analysis/stats.hpp"
#include "common/fixture.hpp"

namespace gdelt::bench {
namespace {

void BM_DatasetStatistics(benchmark::State& state) {
  const auto& db = Db();
  for (auto _ : state) {
    auto stats = analysis::ComputeDatasetStatistics(db);
    benchmark::DoNotOptimize(stats);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(db.num_mentions()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DatasetStatistics);

void Print() {
  const auto stats = analysis::ComputeDatasetStatistics(Db());
  std::printf("\n=== Table I: General dataset statistics ===\n");
  std::printf("%s", stats.ToText().c_str());
  std::printf("Paper reference: 20,996 / 324,564,472 / 168,266 / "
              "1,090,310,118 / 1 / 5,234 / 3.36\n");
}

}  // namespace
}  // namespace gdelt::bench

GDELT_BENCH_MAIN(gdelt::bench::Print)
