// Ablation: filtered (user-defined) queries — selection materialization
// cost vs the narrowed aggregation, against the full-table kernels.
//
// The paper's engine is built for "user-defined queries"; the common
// restriction patterns are a time window (one quarter of a crisis) and a
// country slice. This bench shows that a materialized row set amortizes:
// select once, run several aggregates over the subset.
#include <algorithm>

#include "common/fixture.hpp"
#include "engine/filter.hpp"
#include "parallel/morsel.hpp"
#include "util/timer.hpp"

namespace gdelt::bench {
namespace {

engine::MentionFilter QuarterWindowFilter() {
  const auto& db = Db();
  engine::MentionFilter f;
  const std::int64_t span = db.last_interval() - db.first_interval();
  f.begin_interval = db.first_interval() + span / 2;
  f.end_interval = f.begin_interval + span / 20;  // ~one quarter of 5 years
  return f;
}

void BM_SelectQuarterWindow(benchmark::State& state) {
  const auto& db = Db();
  const auto f = QuarterWindowFilter();
  for (auto _ : state) {
    auto rows = engine::SelectMentions(db, f);
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(db.num_mentions()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SelectQuarterWindow);

void BM_FilteredAggregate(benchmark::State& state) {
  const auto& db = Db();
  const auto rows = engine::SelectMentions(db, QuarterWindowFilter());
  for (auto _ : state) {
    auto report = engine::CountryCrossReporting(db, rows);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(rows.size()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FilteredAggregate);

void BM_FullTableAggregate(benchmark::State& state) {
  const auto& db = Db();
  for (auto _ : state) {
    auto report = engine::CountryCrossReporting(db);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(db.num_mentions()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FullTableAggregate);

void BM_SelectPublisherCountry(benchmark::State& state) {
  const auto& db = Db();
  engine::MentionFilter f;
  f.publisher_country = country::kUK;
  for (auto _ : state) {
    auto rows = engine::SelectMentions(db, f);
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(db.num_mentions()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SelectPublisherCountry);

/// SIMD-vs-scalar on the bitmap path (same pool, same morsel size; the
/// only variable is the compare kernels).
void BM_SelectBitmapSimdToggle(benchmark::State& state) {
  const auto& db = Db();
  const auto f = QuarterWindowFilter();
  const bool saved = engine::SimdEnabled();
  engine::SetSimdEnabled(state.range(0) != 0);
  for (auto _ : state) {
    auto sel = engine::SelectMentionsBitmap(db, f);
    benchmark::DoNotOptimize(sel);
  }
  engine::SetSimdEnabled(saved);
  state.SetItemsProcessed(static_cast<std::int64_t>(db.num_mentions()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SelectBitmapSimdToggle)->Arg(0)->Arg(1);

/// Wall seconds of `body`, best of `reps` runs (steady-state estimate).
template <typename Body>
double BestOf(int reps, Body&& body) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    WallTimer timer;
    body();
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best;
}

void Print() {
  const auto& db = Db();
  const auto f = QuarterWindowFilter();
  const auto rows = engine::SelectMentions(db, f);
  std::printf("\n=== Ablation: user-defined (filtered) queries ===\n");
  std::printf("quarter-window selection: %zu of %zu mentions (%.1f%%); "
              "aggregates over the row set touch only that fraction.\n",
              rows.size(), db.num_mentions(),
              100.0 * static_cast<double>(rows.size()) /
                  static_cast<double>(db.num_mentions()));

  // One JSON record per configuration: scalar-vs-SIMD toggle on the
  // vectorized selection, the legacy two-pass row baseline, and the
  // morsel-size sweep over the filter→aggregate chain.
  BenchJsonWriter writer("ablation_filter");
  constexpr int kReps = 5;
  const int threads = MaxThreads();
  const bool saved_simd = engine::SimdEnabled();

  engine::SetSimdEnabled(false);
  const double scalar_s = BestOf(kReps, [&] {
    auto sel = engine::SelectMentionsBitmap(db, f);
    benchmark::DoNotOptimize(sel);
  });
  writer.Record("select_bitmap_scalar", threads, scalar_s);

  engine::SetSimdEnabled(true);
  const bool simd_available = engine::SimdEnabled();
  const double simd_s = BestOf(kReps, [&] {
    auto sel = engine::SelectMentionsBitmap(db, f);
    benchmark::DoNotOptimize(sel);
  });
  writer.Record(simd_available ? "select_bitmap_simd"
                               : "select_bitmap_simd_unavailable",
                threads, simd_s);
  engine::SetSimdEnabled(saved_simd);

  const double baseline_s = BestOf(kReps, [&] {
    auto out = engine::SelectMentionsBaseline(db, f);
    benchmark::DoNotOptimize(out);
  });
  writer.Record("select_rows_baseline_two_pass", threads, baseline_s);

  std::printf("\nvectorized selection (interval+confidence passes):\n"
              "  scalar bitmap   : %8.3f ms\n"
              "  simd bitmap     : %8.3f ms%s\n"
              "  two-pass rows   : %8.3f ms\n"
              "  simd vs scalar  : %.2fx\n",
              scalar_s * 1e3, simd_s * 1e3,
              simd_available ? "" : "  (AVX2 unavailable: scalar fallback)",
              baseline_s * 1e3, scalar_s / simd_s);

  // Morsel-size sweep: selection + one bitmap aggregate per size, so the
  // sweep sees both the word-parallel passes and the aggregate reuse.
  std::printf("\nmorsel-size sweep (filter + cross-report aggregate):\n");
  for (const std::size_t morsel_rows :
       {std::size_t{1024}, std::size_t{4096}, std::size_t{16384},
        std::size_t{65536}, std::size_t{262144}}) {
    parallel::SetMorselRows(morsel_rows);
    const double sweep_s = BestOf(kReps, [&] {
      const auto sel = engine::SelectMentionsBitmap(db, f);
      auto report = engine::CountryCrossReporting(db, sel);
      benchmark::DoNotOptimize(report);
    });
    writer.Record("filter_aggregate_morsel_" + std::to_string(morsel_rows),
                  threads, sweep_s);
    std::printf("  %7zu rows/morsel: %8.3f ms\n", morsel_rows,
                sweep_s * 1e3);
  }
  parallel::SetMorselRows(0);
}

}  // namespace
}  // namespace gdelt::bench

GDELT_BENCH_MAIN(gdelt::bench::Print)
